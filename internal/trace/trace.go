// Package trace is the repository's zero-dependency tracing and
// profiling layer: it explains where plan cost actually goes, per plan
// node and per planner phase, so the paper's expected-cost model (Eq. 2/3)
// can be cross-checked against observed acquisition totals.
//
// Three concerns live here:
//
//   - Span: phase timings and search counters for one planner run,
//     carried through a context.Context. Planners (internal/opt) record
//     into the span when one is present and do nothing otherwise.
//   - ExecProfile: per-plan-node and per-attribute acquisition
//     attribution for one executor run (internal/exec).
//   - Snapshot: the JSON-ready rendering of a Span for API responses
//     (the /v1/plan "trace" section) and CLI output.
//
// Tracing is strictly opt-in. Every method is nil-safe: a nil *Span or
// nil *ExecProfile is the disabled state, and the disabled path performs
// no allocations (pinned by TestDisabledPathZeroAllocs and
// BenchmarkDisabledSpan) and never changes planner or executor output.
//
// The package never reads the wall clock itself: time enters only
// through the `now func() time.Time` injected into NewSpan (enforced by
// acqlint's tracedet analyzer), which keeps traces replayable under
// tests with a fake clock.
package trace

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Counter identifies one planner search counter. Counters are recorded
// with Span.Count from concurrent search workers, so they are atomics.
type Counter int

// Search counters. Candidates/Pruned/LeafExpansions are shared by both
// planners; Expanded/MemoHits/MemoStores belong to the exhaustive
// search; Spawned/Inlined count the bounded pool's placement decisions.
const (
	// Candidates counts candidate conditioning splits evaluated.
	Candidates Counter = iota
	// Pruned counts candidates abandoned by branch-and-bound before an
	// exact cost was obtained.
	Pruned
	// Expanded counts exhaustive-search subproblems expanded.
	Expanded
	// MemoHits counts exact subproblem memo hits.
	MemoHits
	// MemoStores counts exact subproblem results stored in the memo.
	MemoStores
	// LeafExpansions counts greedy leaf expansions applied to the plan.
	LeafExpansions
	// Spawned counts evaluations handed to a new pool goroutine.
	Spawned
	// Inlined counts evaluations run inline on the caller's goroutine.
	Inlined

	numCounters
)

// counterNames indexes Counter names for snapshots; order matches the
// constants above.
var counterNames = [numCounters]string{
	"candidates", "pruned", "expanded", "memo_hits", "memo_stores",
	"leaf_expansions", "workers_spawned", "inlined",
}

func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return "counter(?)"
	}
	return counterNames[c]
}

// CounterNames lists every counter name in Counter order, for callers
// that need deterministic iteration over a Snapshot's counters map.
func CounterNames() []string {
	out := make([]string, numCounters)
	copy(out, counterNames[:])
	return out
}

// PhaseRef identifies a phase opened by Begin; the zero of a disabled
// span is NoPhase.
type PhaseRef int

// NoPhase is the PhaseRef returned by a nil span's Begin; End accepts it
// as a no-op.
const NoPhase PhaseRef = -1

// phase is one timed planner phase.
type phase struct {
	name  string
	start time.Time
	dur   time.Duration
	open  bool
}

// Span collects phase timings and search counters for one planner run.
// A nil *Span is the disabled state: every method no-ops without
// allocating. Counters are safe for concurrent recording; phases are
// expected to be opened and closed from the goroutine driving the run.
type Span struct {
	now      func() time.Time
	counters [numCounters]atomic.Int64

	mu     sync.Mutex
	phases []phase
}

// NewSpan builds an enabled span whose clock is the injected now
// function (pass time.Now in production; a fake in tests). A nil now
// yields a span that still counts but records zero durations — the
// package itself never falls back to the wall clock.
func NewSpan(now func() time.Time) *Span {
	if now == nil {
		now = func() time.Time { return time.Time{} }
	}
	return &Span{now: now}
}

// Count adds n to the counter. Nil-safe and allocation-free.
func (s *Span) Count(c Counter, n int64) {
	if s == nil || c < 0 || c >= numCounters {
		return
	}
	count(&s.counters[c], n)
}

// count bumps an atomic counter through a value-returning call so that
// acqlint's errdrop — which indexes error-returning method names
// repo-wide — does not mistake atomic.Int64.Add for schema's Add.
func count(c *atomic.Int64, delta int64) int64 { return c.Add(delta) }

// Counter returns the counter's current value (0 on a nil span).
func (s *Span) Counter(c Counter) int64 {
	if s == nil || c < 0 || c >= numCounters {
		return 0
	}
	return s.counters[c].Load()
}

// Begin opens a named phase and returns its reference. On a nil span it
// returns NoPhase without allocating.
func (s *Span) Begin(name string) PhaseRef {
	if s == nil {
		return NoPhase
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.phases = append(s.phases, phase{name: name, start: s.now(), open: true})
	return PhaseRef(len(s.phases) - 1)
}

// End closes a phase opened by Begin, recording its duration. Nil spans
// and NoPhase references no-op; double-End keeps the first duration.
func (s *Span) End(ref PhaseRef) {
	if s == nil || ref < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(ref) >= len(s.phases) || !s.phases[ref].open {
		return
	}
	s.phases[ref].dur = s.now().Sub(s.phases[ref].start)
	s.phases[ref].open = false
}

// PhaseTiming is one phase of a snapshot.
type PhaseTiming struct {
	Name       string  `json:"name"`
	DurationMS float64 `json:"duration_ms"`
}

// Snapshot is the JSON-ready rendering of a span: the /v1/plan response
// "trace" section and the acqplan -trace output.
type Snapshot struct {
	Phases   []PhaseTiming    `json:"phases,omitempty"`
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Snapshot renders the span. Open phases are reported with the duration
// accumulated so far. A nil span snapshots to nil.
func (s *Span) Snapshot() *Snapshot {
	if s == nil {
		return nil
	}
	snap := &Snapshot{Counters: make(map[string]int64, numCounters)}
	for c := Counter(0); c < numCounters; c++ {
		if v := s.counters[c].Load(); v != 0 {
			snap.Counters[c.String()] = v
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, p := range s.phases {
		d := p.dur
		if p.open {
			d = s.now().Sub(p.start)
		}
		snap.Phases = append(snap.Phases, PhaseTiming{
			Name:       p.name,
			DurationMS: float64(d) / float64(time.Millisecond),
		})
	}
	return snap
}

// ctxKey is the context key carrying a *Span.
type ctxKey struct{}

// NewContext returns ctx carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil (the disabled
// state) when none is present. Allocation-free on both paths.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

package trace

import (
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a deterministic injected clock: each call advances by the
// step, so phase durations are exactly predictable.
type fakeClock struct {
	t    time.Time
	step time.Duration
}

func (f *fakeClock) now() time.Time {
	f.t = f.t.Add(f.step)
	return f.t
}

func TestSpanPhasesWithFakeClock(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: 10 * time.Millisecond}
	s := NewSpan(clk.now)

	ref := s.Begin("search")
	inner := s.Begin("seed")
	s.End(inner)
	s.End(ref)

	snap := s.Snapshot()
	if snap == nil || len(snap.Phases) != 2 {
		t.Fatalf("want 2 phases, got %+v", snap)
	}
	// Clock ticks: Begin(search)=10ms, Begin(seed)=20ms, End(seed)=30ms,
	// End(search)=40ms — so seed=10ms and search=30ms.
	if got := snap.Phases[0]; got.Name != "search" || got.DurationMS != 30 {
		t.Fatalf("search phase = %+v, want 30ms", got)
	}
	if got := snap.Phases[1]; got.Name != "seed" || got.DurationMS != 10 {
		t.Fatalf("seed phase = %+v, want 10ms", got)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	s := NewSpan(clk.now)
	ref := s.Begin("p")
	s.End(ref)
	first := s.Snapshot().Phases[0].DurationMS
	s.End(ref) // double End keeps the first duration
	s.End(PhaseRef(99))
	s.End(NoPhase)
	if got := s.Snapshot().Phases[0].DurationMS; got != first {
		t.Fatalf("double End changed duration: %v -> %v", first, got)
	}
}

func TestSpanCounters(t *testing.T) {
	s := NewSpan(nil)
	s.Count(Candidates, 3)
	s.Count(Candidates, 2)
	s.Count(MemoHits, 7)
	s.Count(Counter(-1), 5)
	s.Count(numCounters, 5)
	if got := s.Counter(Candidates); got != 5 {
		t.Fatalf("Candidates = %d, want 5", got)
	}
	if got := s.Counter(MemoHits); got != 7 {
		t.Fatalf("MemoHits = %d, want 7", got)
	}
	snap := s.Snapshot()
	if snap.Counters["candidates"] != 5 || snap.Counters["memo_hits"] != 7 {
		t.Fatalf("snapshot counters = %v", snap.Counters)
	}
	if _, ok := snap.Counters["pruned"]; ok {
		t.Fatalf("zero counters should be omitted, got %v", snap.Counters)
	}
}

func TestSpanConcurrentCount(t *testing.T) {
	s := NewSpan(nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				s.Count(Pruned, 1)
			}
		}()
	}
	wg.Wait()
	if got := s.Counter(Pruned); got != 8000 {
		t.Fatalf("Pruned = %d, want 8000", got)
	}
}

func TestNilSpanIsSafe(t *testing.T) {
	var s *Span
	s.Count(Candidates, 1)
	if got := s.Counter(Candidates); got != 0 {
		t.Fatalf("nil Counter = %d, want 0", got)
	}
	if ref := s.Begin("x"); ref != NoPhase {
		t.Fatalf("nil Begin = %v, want NoPhase", ref)
	}
	s.End(NoPhase)
	if snap := s.Snapshot(); snap != nil {
		t.Fatalf("nil Snapshot = %+v, want nil", snap)
	}
}

func TestContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatalf("FromContext(background) = %v, want nil", got)
	}
	s := NewSpan(nil)
	ctx := NewContext(context.Background(), s)
	if got := FromContext(ctx); got != s {
		t.Fatalf("FromContext lost the span")
	}
	var nilSpan *Span
	ctx = NewContext(context.Background(), nilSpan)
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(nil span) = %v, want nil", got)
	}
}

func TestCounterString(t *testing.T) {
	seen := map[string]bool{}
	for c := Counter(0); c < numCounters; c++ {
		name := c.String()
		if name == "" || name == "counter(?)" {
			t.Fatalf("counter %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate counter name %q", name)
		}
		seen[name] = true
	}
	if Counter(-1).String() != "counter(?)" || numCounters.String() != "counter(?)" {
		t.Fatalf("out-of-range counters should stringify to counter(?)")
	}
}

func TestSnapshotJSON(t *testing.T) {
	clk := &fakeClock{t: time.Unix(0, 0), step: time.Millisecond}
	s := NewSpan(clk.now)
	ref := s.Begin("search")
	s.Count(Candidates, 2)
	s.End(ref)
	b, err := json.Marshal(s.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, want := range []string{`"phases"`, `"search"`, `"counters"`, `"candidates":2`} {
		if !strings.Contains(string(b), want) {
			t.Fatalf("snapshot JSON %s missing %s", b, want)
		}
	}
}

func TestExecProfile(t *testing.T) {
	p := NewExecProfile(3, 2)
	p.Visit(0)
	p.Visit(0)
	p.Visit(2)
	p.Charge(0, 1, 50, 1)
	p.Charge(2, 0, 25, 1)
	p.Charge(2, 0, 25, 1)
	// Out-of-range node (replanned residual) still lands in totals.
	p.Charge(-1, 1, 10, 1)
	p.Charge(99, 99, 5, 1)
	p.FinishTuple()

	if p.NodeVisits[0] != 2 || p.NodeVisits[1] != 0 || p.NodeVisits[2] != 1 {
		t.Fatalf("NodeVisits = %v", p.NodeVisits)
	}
	if p.NodeCost[0] != 50 || p.NodeCost[2] != 50 {
		t.Fatalf("NodeCost = %v", p.NodeCost)
	}
	if p.AttrCost[0] != 50 || p.AttrCost[1] != 60 {
		t.Fatalf("AttrCost = %v", p.AttrCost)
	}
	if p.AttrAcquisitions[0] != 2 || p.AttrAcquisitions[1] != 2 {
		t.Fatalf("AttrAcquisitions = %v", p.AttrAcquisitions)
	}
	if p.TotalCost != 115 {
		t.Fatalf("TotalCost = %v, want 115", p.TotalCost)
	}
	if p.SumNodeCost() != 100 {
		t.Fatalf("SumNodeCost = %v, want 100", p.SumNodeCost())
	}
	if p.Tuples != 1 {
		t.Fatalf("Tuples = %d", p.Tuples)
	}
}

func TestNilExecProfileIsSafe(t *testing.T) {
	var p *ExecProfile
	p.Visit(0)
	p.Charge(0, 0, 1, 1)
	p.FinishTuple()
	if p.SumNodeCost() != 0 {
		t.Fatalf("nil SumNodeCost = %v", p.SumNodeCost())
	}
}

// TestDisabledPathZeroAllocs pins the tentpole invariant: the disabled
// (nil) path allocates nothing. Skipped under -race, where
// AllocsPerRun is unreliable.
func TestDisabledPathZeroAllocs(t *testing.T) {
	if RaceEnabled {
		t.Skip("AllocsPerRun is unreliable under -race")
	}
	var s *Span
	var p *ExecProfile
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		s.Count(Candidates, 1)
		ref := s.Begin("x")
		s.End(ref)
		_ = s.Counter(Candidates)
		got := FromContext(ctx)
		got.Count(Pruned, 1)
		p.Visit(0)
		p.Charge(0, 0, 1, 1)
		p.FinishTuple()
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledSpan(b *testing.B) {
	var s *Span
	var p *ExecProfile
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Count(Candidates, 1)
		ref := s.Begin("x")
		s.End(ref)
		got := FromContext(ctx)
		got.Count(Pruned, 1)
		p.Visit(0)
		p.Charge(0, 0, 1, 1)
	}
}

func BenchmarkEnabledSpanCount(b *testing.B) {
	s := NewSpan(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Count(Candidates, 1)
	}
}

//go:build !race

package trace

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false

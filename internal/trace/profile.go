package trace

// ExecProfile attributes one executor run's acquisitions to plan nodes
// and attributes: per-node visit counts and accumulated acquisition
// cost, per-attribute acquisition counts and cost, and run totals. A
// nil *ExecProfile is the disabled state: every method no-ops without
// allocating, so the pristine executor path is unchanged.
//
// Node IDs are the plan's pre-order indices (plan.NodeIDs); attribute
// indices are schema positions. Out-of-range IDs are ignored rather
// than rejected: replanned residual plans contain nodes that are not in
// the profiled plan, and their charges still land in the run totals.
//
// Cost accounting is exact, not approximate: every charge recorded via
// Charge is added to both the per-node and per-attribute accumulators
// and to TotalCost in the same order the executor pays it, so with
// integer-valued acquisition costs the per-node sum reproduces the
// executor's total bit for bit (pinned by TestProfileBitExactSum).
//
// An ExecProfile is not safe for concurrent use; profile one executor
// run at a time.
type ExecProfile struct {
	// NodeVisits[id] counts times node id was reached during traversal.
	NodeVisits []int64
	// NodeCost[id] accumulates acquisition cost charged while evaluating
	// node id (first-touch acquisitions, retries, surcharges).
	NodeCost []float64
	// AttrAcquisitions[a] counts acquisitions of attribute a.
	AttrAcquisitions []int64
	// AttrCost[a] accumulates acquisition cost charged for attribute a.
	AttrCost []float64
	// Tuples counts tuples executed through the profile.
	Tuples int64
	// TotalCost accumulates every charge recorded, including charges at
	// nodes outside the profiled plan (replanned residual nodes).
	TotalCost float64
}

// NewExecProfile sizes a profile for a plan with numNodes nodes over a
// schema with numAttrs attributes.
func NewExecProfile(numNodes, numAttrs int) *ExecProfile {
	if numNodes < 0 {
		numNodes = 0
	}
	if numAttrs < 0 {
		numAttrs = 0
	}
	return &ExecProfile{
		NodeVisits:       make([]int64, numNodes),
		NodeCost:         make([]float64, numNodes),
		AttrAcquisitions: make([]int64, numAttrs),
		AttrCost:         make([]float64, numAttrs),
	}
}

// Visit records that node id was reached. Nil profiles and out-of-range
// ids no-op.
func (p *ExecProfile) Visit(id int) {
	if p == nil || id < 0 || id >= len(p.NodeVisits) {
		return
	}
	p.NodeVisits[id]++
}

// Charge records acquisition cost c for attribute attr paid while
// evaluating node id. The charge always lands in TotalCost; the node
// and attribute accumulators are skipped when the index is out of range
// (replanned residual nodes, unknown attributes).
func (p *ExecProfile) Charge(id, attr int, c float64, acquisitions int64) {
	if p == nil {
		return
	}
	p.TotalCost += c
	if id >= 0 && id < len(p.NodeCost) {
		p.NodeCost[id] += c
	}
	if attr >= 0 && attr < len(p.AttrCost) {
		p.AttrCost[attr] += c
		p.AttrAcquisitions[attr] += acquisitions
	}
}

// FinishTuple records that one tuple completed.
func (p *ExecProfile) FinishTuple() {
	if p == nil {
		return
	}
	p.Tuples++
}

// SumNodeCost returns the sum over per-node accumulated cost, in node-ID
// order (a deterministic summation order, so it is reproducible).
func (p *ExecProfile) SumNodeCost() float64 {
	if p == nil {
		return 0
	}
	var total float64
	for _, c := range p.NodeCost {
		total += c
	}
	return total
}

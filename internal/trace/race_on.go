//go:build race

package trace

// RaceEnabled reports whether the race detector is compiled in.
// testing.AllocsPerRun is unreliable under -race (the detector itself
// allocates), so the zero-alloc gates skip when this is true.
const RaceEnabled = true

package stats

import (
	"math"
	"sync"
	"testing"

	"acqp/internal/query"
)

// TestConcurrentCondReaders hammers one shared Cond (and children derived
// from it) from many goroutines. Run under -race it proves the sync.Once
// publication of the lazy histogram/prefix caches: every reader must see
// fully computed, identical statistics, and concurrent Restrict calls must
// only read the shared parent.
func TestConcurrentCondReaders(t *testing.T) {
	tbl := buildTable(t)
	dists := map[string]Dist{
		"empirical": NewEmpirical(tbl),
		"weighted":  Compress(tbl),
	}
	for name, d := range dists {
		d := d
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			root := d.Root()
			wantHist := append([]float64(nil), root.Hist(1)...)
			wantP := root.ProbRange(2, query.Range{Lo: 1, Hi: 2})

			// A fresh root whose caches are cold, shared by all readers.
			shared := d.Root()
			const readers = 16
			var wg sync.WaitGroup
			errs := make(chan string, readers)
			for g := 0; g < readers; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for iter := 0; iter < 50; iter++ {
						h := shared.Hist(1)
						for v := range h {
							if math.Abs(h[v]-wantHist[v]) > 1e-12 {
								errs <- "histogram mismatch under concurrency"
								return
							}
						}
						if p := shared.ProbRange(2, query.Range{Lo: 1, Hi: 2}); math.Abs(p-wantP) > 1e-12 {
							errs <- "ProbRange mismatch under concurrency"
							return
						}
						// Deriving children concurrently must only read the
						// shared parent.
						child := shared.RestrictRange(0, query.Range{Lo: 0, Hi: 1})
						child.Hist(2)
						shared.RestrictPred(query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 2}}, true).ProbPred(
							query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 3}})
					}
				}()
			}
			wg.Wait()
			close(errs)
			for msg := range errs {
				t.Error(msg)
			}
		})
	}
}

// TestConcurrentHistIdentity checks that concurrent first-callers of Hist
// agree on one published slice: the cache hands every goroutine the same
// backing array, never a privately recomputed copy.
func TestConcurrentHistIdentity(t *testing.T) {
	shared := NewEmpirical(buildTable(t)).Root()
	const readers = 8
	ptrs := make([]*float64, readers)
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ptrs[g] = &shared.Hist(1)[0]
		}()
	}
	wg.Wait()
	for g := 1; g < readers; g++ {
		if ptrs[g] != ptrs[0] {
			t.Fatalf("goroutine %d saw a different published histogram slice", g)
		}
	}
}

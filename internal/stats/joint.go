package stats

import (
	"acqp/internal/floats"
	"acqp/internal/query"
)

// MaxJointPreds is the largest predicate count PredMaskJoint can
// represent: the joint is dense over 2^m satisfaction patterns, so m is
// capped well below the 2^32 slice-length wall. Planning entry points
// reject longer queries up front.
const MaxJointPreds = 30

// PredMaskJoint returns the joint distribution over the rediscretized
// query-predicate bits of Section 4.1.2: out[mask] is the probability,
// under the context, that exactly the predicates whose bit is set in mask
// are satisfied. Bit i of mask corresponds to q.Preds[i]. The slice has
// length 2^m for m = q.NumPreds().
//
// For empirical contexts this is a single pass over the context's rows
// (the "normalized joint histogram over the rediscretized attributes
// X'_1..X'_m" of Section 5.2). Other Cond implementations fall back to
// recursive conditioning, which costs O(2^m) Restrict calls and is only
// used for small m.
//
// Queries with more than MaxJointPreds predicates cannot be represented
// (the mask is 2^m cells) and panic; API layers validate q.NumPreds()
// against MaxJointPreds before planning so user queries surface a typed
// invalid-request error instead.
func PredMaskJoint(c Cond, q query.Query) []float64 {
	m := q.NumPreds()
	if m > MaxJointPreds {
		panic("stats: PredMaskJoint: too many predicates")
	}
	if ec, ok := c.(*empCond); ok {
		return ec.predMaskJoint(q)
	}
	if wc, ok := c.(*wCond); ok {
		return wc.predMaskJoint(q)
	}
	out := make([]float64, 1<<uint(m))
	fillMaskJoint(c, q, 0, 0, 1, out)
	return out
}

func fillMaskJoint(c Cond, q query.Query, i int, mask uint32, p float64, out []float64) {
	if floats.Zero(p) {
		return
	}
	if i == q.NumPreds() {
		out[mask] += p
		return
	}
	pt := c.ProbPred(q.Preds[i])
	if pt > 0 {
		fillMaskJoint(c.RestrictPred(q.Preds[i], true), q, i+1, mask|1<<uint(i), p*pt, out)
	}
	if pt < 1 {
		fillMaskJoint(c.RestrictPred(q.Preds[i], false), q, i+1, mask, p*(1-pt), out)
	}
}

func (c *empCond) predMaskJoint(q query.Query) []float64 {
	m := q.NumPreds()
	out := make([]float64, 1<<uint(m))
	if len(c.rows) == 0 {
		// Unsupported context: uniform over patterns.
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out
	}
	cols := make([][]uint16, m)
	for i, p := range q.Preds {
		cols[i] = c.tbl.Col(p.Attr)
	}
	for _, row := range c.rows {
		var mask uint32
		for i, p := range q.Preds {
			if p.Eval(cols[i][row]) {
				mask |= 1 << uint(i)
			}
		}
		out[mask]++
	}
	n := float64(len(c.rows))
	for i := range out {
		out[i] /= n
	}
	return out
}

func (c *wCond) predMaskJoint(q query.Query) []float64 {
	m := q.NumPreds()
	out := make([]float64, 1<<uint(m))
	if floats.Zero(c.weight) {
		u := 1 / float64(len(out))
		for i := range out {
			out[i] = u
		}
		return out
	}
	cols := make([][]uint16, m)
	for i, p := range q.Preds {
		cols[i] = c.w.cells.Col(p.Attr)
	}
	for _, row := range c.rows {
		var mask uint32
		for i, p := range q.Preds {
			if p.Eval(cols[i][row]) {
				mask |= 1 << uint(i)
			}
		}
		out[mask] += c.w.weights[row]
	}
	for i := range out {
		out[i] /= c.weight
	}
	return out
}

// SupersetSums transforms a mask joint in place so that out[S] becomes the
// probability that *at least* the predicates in S are satisfied,
// i.e. P(AND_{i in S} phi_i). This is the standard sum-over-supersets
// (zeta) transform, O(m * 2^m).
func SupersetSums(joint []float64, m int) {
	for bit := 0; bit < m; bit++ {
		step := 1 << uint(bit)
		for mask := range joint {
			if mask&step == 0 {
				joint[mask] += joint[mask|step]
			}
		}
	}
}

// CondSatProb returns P(phi_j | AND_{i in S} phi_i) from a superset-summed
// joint (the output of SupersetSums). S must not contain j.
func CondSatProb(satProb []float64, s uint32, j int) float64 {
	den := satProb[s]
	if den <= 0 {
		return 0.5 // unsupported conditioning set: uninformative
	}
	return clampProb(satProb[s|1<<uint(j)] / den)
}

package stats

import (
	"math"
	"math/rand"
	"testing"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

func weightedTestTable(rng *rand.Rand, s *schema.Schema, rows int) *table.Table {
	tbl := table.New(s, rows)
	for i := 0; i < rows; i++ {
		a := rng.Intn(s.K(0))
		b := (a + rng.Intn(2)) % s.K(1)
		tbl.MustAppendRow([]schema.Value{schema.Value(a), schema.Value(b)})
	}
	return tbl
}

func TestCompressDeduplicates(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 3, Cost: 1},
		schema.Attribute{Name: "b", K: 3, Cost: 1},
	)
	tbl := table.New(s, 10)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i % 2), schema.Value(i % 2)})
	}
	w := Compress(tbl)
	if w.NumCells() != 2 {
		t.Fatalf("NumCells = %d, want 2", w.NumCells())
	}
	if got := w.Root().Weight(); got != 10 {
		t.Errorf("total weight = %g, want 10", got)
	}
}

// Property: every probability the weighted distribution reports must match
// the raw empirical distribution exactly — compression is lossless.
func TestWeightedMatchesEmpirical(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 6, Cost: 1},
		schema.Attribute{Name: "b", K: 6, Cost: 1},
	)
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 20; trial++ {
		tbl := weightedTestTable(rng, s, 300)
		emp := NewEmpirical(tbl).Root()
		wtd := Compress(tbl).Root()
		if emp.Weight() != wtd.Weight() {
			t.Fatalf("weights differ: %g vs %g", emp.Weight(), wtd.Weight())
		}
		// Compare histograms at the root and after a chain of mixed
		// restrictions.
		checkSame := func(e, w Cond, label string) {
			for attr := 0; attr < 2; attr++ {
				eh, wh := e.Hist(attr), w.Hist(attr)
				for v := range eh {
					if math.Abs(eh[v]-wh[v]) > 1e-12 {
						t.Fatalf("%s: hist(%d)[%d]: %g vs %g", label, attr, v, eh[v], wh[v])
					}
				}
			}
			if math.Abs(e.Weight()-w.Weight()) > 1e-9 {
				t.Fatalf("%s: weight %g vs %g", label, e.Weight(), w.Weight())
			}
		}
		checkSame(emp, wtd, "root")
		r := query.Range{Lo: 1, Hi: 4}
		checkSame(emp.RestrictRange(0, r), wtd.RestrictRange(0, r), "range")
		p := query.Pred{Attr: 1, R: query.Range{Lo: 2, Hi: 3}, Negated: true}
		checkSame(emp.RestrictPred(p, true), wtd.RestrictPred(p, true), "pred")
		checkSame(
			emp.RestrictRange(0, r).RestrictPred(p, false),
			wtd.RestrictRange(0, r).RestrictPred(p, false),
			"chained")
	}
}

func TestWeightedPredMaskJointMatches(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 4, Cost: 1},
		schema.Attribute{Name: "b", K: 4, Cost: 1},
	)
	rng := rand.New(rand.NewSource(44))
	tbl := weightedTestTable(rng, s, 200)
	q := query.MustNewQuery(s,
		query.Pred{Attr: 0, R: query.Range{Lo: 1, Hi: 2}},
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}, Negated: true},
	)
	emp := PredMaskJoint(NewEmpirical(tbl).Root(), q)
	wtd := PredMaskJoint(Compress(tbl).Root(), q)
	for i := range emp {
		if math.Abs(emp[i]-wtd[i]) > 1e-12 {
			t.Errorf("mask %d: %g vs %g", i, emp[i], wtd[i])
		}
	}
}

func TestWeightedEmptyContextUniform(t *testing.T) {
	s := schema.New(schema.Attribute{Name: "a", K: 4, Cost: 1})
	tbl := table.New(s, 4)
	tbl.MustAppendRow([]schema.Value{0})
	w := Compress(tbl)
	c := w.Root().RestrictRange(0, query.Range{Lo: 2, Hi: 3})
	if c.Weight() != 0 {
		t.Fatalf("weight = %g", c.Weight())
	}
	h := c.Hist(0)
	for _, v := range h {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("empty-context hist not uniform: %v", h)
		}
	}
	joint := PredMaskJoint(c, query.MustNewQuery(s, query.Pred{Attr: 0, R: query.Range{Lo: 0, Hi: 1}}))
	if math.Abs(joint[0]-0.5) > 1e-12 || math.Abs(joint[1]-0.5) > 1e-12 {
		t.Errorf("empty-context mask joint not uniform: %v", joint)
	}
}

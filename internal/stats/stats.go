// Package stats implements the probability machinery of Section 5 of the
// paper: estimating the conditional probabilities
//
//	P(T_j | t)  and  P(X_i in [a, x-1] | R_1, ..., R_n)
//
// that the planning algorithms consume, from a historical dataset of
// samples (and, via internal/model, from compact distribution models).
//
// The core abstraction is a conditioning context (Cond): a distribution
// restricted by evidence accumulated along one branch of a plan. The
// empirical implementation conditions by partitioning selection vectors,
// which is exactly the incremental index scheme of Section 5.1 — every
// conditional probability is an O(1) ratio of counts after an
// O(rows-in-context) partition, and per-attribute histograms with prefix
// sums realize the incremental range rule of Equation (7).
package stats

import (
	"sync"

	"acqp/internal/floats"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// Dist is a joint distribution over the attributes of a schema from which
// conditioning contexts are created. Implementations: Empirical (this
// package, backed by a table) and the graphical models in internal/model.
type Dist interface {
	// Schema returns the schema the distribution is defined over.
	Schema() *schema.Schema
	// Root returns the unconditioned context.
	Root() Cond
}

// Cond is a distribution conditioned on the evidence gathered so far along
// one plan branch. All probabilities are conditional on that evidence.
//
// Conds are safe for concurrent use: lazily computed histograms and prefix
// sums are published through sync.Once and immutable afterwards, so one
// Cond (and any chain of contexts derived from it) can back many search
// goroutines without copies. Restrict methods only read the parent and
// return a fresh child context.
type Cond interface {
	// Weight is the effective number of tuples consistent with the
	// evidence (a count for empirical distributions, an expected count
	// for models). Zero weight means the context is unsupported and
	// probabilities fall back to uninformative defaults.
	Weight() float64

	// Hist returns the normalized histogram P(X_attr = v | evidence) for
	// v in [0, K_attr). The returned slice must not be mutated.
	Hist(attr int) []float64

	// ProbRange returns P(X_attr in r | evidence).
	ProbRange(attr int, r query.Range) float64

	// ProbPred returns P(pred satisfied | evidence).
	ProbPred(p query.Pred) float64

	// RestrictRange returns a child context further conditioned on
	// X_attr in r.
	RestrictRange(attr int, r query.Range) Cond

	// RestrictPred returns a child context further conditioned on the
	// predicate having truth value val. Unlike RestrictRange this
	// supports negated predicates, whose satisfying set is not a single
	// range.
	RestrictPred(p query.Pred, val bool) Cond
}

// Empirical is a Dist backed directly by a historical table, the
// "estimate from counts from a dataset D of d tuples" scheme of
// Sections 2.3 and 5.
type Empirical struct {
	tbl *table.Table
}

// NewEmpirical wraps a table as a distribution. The table must outlive the
// distribution and must not be mutated while in use.
func NewEmpirical(tbl *table.Table) *Empirical {
	return &Empirical{tbl: tbl}
}

// Schema implements Dist.
func (e *Empirical) Schema() *schema.Schema { return e.tbl.Schema() }

// NumTuples returns d, the number of historical samples.
func (e *Empirical) NumTuples() int { return e.tbl.NumRows() }

// Root implements Dist: the context over all d tuples.
func (e *Empirical) Root() Cond {
	rows := make([]int32, e.tbl.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	return newEmpCond(e.tbl, rows)
}

func newEmpCond(tbl *table.Table, rows []int32) *empCond {
	return &empCond{tbl: tbl, rows: rows, attrs: make([]attrStat, tbl.Schema().NumAttrs())}
}

// attrStat is one attribute's lazily published statistics: the normalized
// histogram and its prefix sums. once guards a single computation of both;
// after Do returns they are immutable, so any number of goroutines can
// share the slices without further synchronization.
type attrStat struct {
	once   sync.Once
	hist   []float64
	prefix []float64 // prefix[v] = P(X < v): the incremental rule of Eq. (7)
}

// empCond is a selection-vector conditioning context.
type empCond struct {
	tbl   *table.Table
	rows  []int32
	attrs []attrStat
}

func (c *empCond) Weight() float64 { return float64(len(c.rows)) }

// stat computes (once) and returns the attribute's histogram and prefix
// sums. This is the safe-publication point for the lazy caches.
func (c *empCond) stat(attr int) *attrStat {
	st := &c.attrs[attr]
	st.once.Do(func() {
		k := c.tbl.Schema().K(attr)
		h := make([]float64, k)
		col := c.tbl.Col(attr)
		for _, r := range c.rows {
			h[col[r]]++
		}
		if n := float64(len(c.rows)); n > 0 {
			for i := range h {
				h[i] /= n
			}
		} else {
			// Unsupported context: fall back to a uniform histogram so the
			// planners get finite, uninformative probabilities instead of
			// NaN (the high-variance regime Section 7 warns about).
			for i := range h {
				h[i] = 1 / float64(k)
			}
		}
		p := make([]float64, len(h)+1)
		for v, hv := range h {
			p[v+1] = p[v] + hv
		}
		st.hist, st.prefix = h, p
	})
	return st
}

func (c *empCond) Hist(attr int) []float64 { return c.stat(attr).hist }

// prefix returns cumulative sums of the attribute's histogram. Range
// probabilities follow in O(1): P(X in [lo,hi]) = prefix[hi+1] - prefix[lo].
func (c *empCond) prefix(attr int) []float64 { return c.stat(attr).prefix }

func (c *empCond) ProbRange(attr int, r query.Range) float64 {
	p := c.prefix(attr)
	hi := int(r.Hi) + 1
	if hi >= len(p) {
		hi = len(p) - 1
	}
	lo := int(r.Lo)
	if lo >= hi {
		return 0
	}
	return clampProb(p[hi] - p[lo])
}

func (c *empCond) ProbPred(p query.Pred) float64 {
	in := c.ProbRange(p.Attr, p.R)
	if p.Negated {
		return clampProb(1 - in)
	}
	return in
}

func (c *empCond) RestrictRange(attr int, r query.Range) Cond {
	col := c.tbl.Col(attr)
	sub := make([]int32, 0, len(c.rows)/2)
	for _, row := range c.rows {
		if r.Contains(col[row]) {
			sub = append(sub, row)
		}
	}
	return newEmpCond(c.tbl, sub)
}

func (c *empCond) RestrictPred(p query.Pred, val bool) Cond {
	col := c.tbl.Col(p.Attr)
	sub := make([]int32, 0, len(c.rows)/2)
	for _, row := range c.rows {
		if p.Eval(col[row]) == val {
			sub = append(sub, row)
		}
	}
	return newEmpCond(c.tbl, sub)
}

// clampProb keeps accumulated floating-point sums inside [0, 1].
func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// RestrictBox conditions a context on every non-full range of a box in one
// step. It is a convenience for planners that re-enter a memoized
// subproblem from a fresh root.
func RestrictBox(c Cond, s *schema.Schema, b query.Box) Cond {
	for i, r := range b {
		if !r.IsFull(s.K(i)) {
			c = c.RestrictRange(i, r)
		}
	}
	return c
}

// Selectivity returns the a-priori (marginal) probability that the
// predicate is satisfied, as the Naive planner of Section 4.1.1 uses it.
func Selectivity(d Dist, p query.Pred) float64 {
	return d.Root().ProbPred(p)
}

// QueryTruthProb returns P(phi(x) = true) under the distribution, the
// overall selectivity of the conjunctive query.
func QueryTruthProb(d Dist, q query.Query) float64 {
	c := d.Root()
	p := 1.0
	for _, pred := range q.Preds {
		pi := c.ProbPred(pred)
		p *= pi
		if floats.Zero(p) {
			return 0
		}
		c = c.RestrictPred(pred, true)
	}
	return p
}

package stats

import (
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// Weighted is an empirical distribution over deduplicated tuples: the
// "multi-dimensional probability distribution" representation of
// Section 2.5/Figure 4. After coarsening to an SPSF grid the domain is
// tiny, so a 100k-row training table typically collapses to a few hundred
// weighted cells — making every conditioning operation of the exhaustive
// planner O(cells) instead of O(rows).
type Weighted struct {
	s       *schema.Schema
	cells   *table.Table // one row per distinct tuple
	weights []float64    // occurrence counts
	total   float64
}

// Compress deduplicates the table into a weighted distribution.
func Compress(tbl *table.Table) *Weighted {
	s := tbl.Schema()
	w := &Weighted{s: s, cells: table.New(s, 256)}
	index := make(map[string]int, 1024)
	var row []schema.Value
	key := make([]byte, 2*s.NumAttrs())
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i, v := range row {
			key[2*i] = byte(v)
			key[2*i+1] = byte(v >> 8)
		}
		ks := string(key)
		if i, ok := index[ks]; ok {
			w.weights[i]++
		} else {
			index[ks] = len(w.weights)
			w.cells.MustAppendRow(row)
			w.weights = append(w.weights, 1)
		}
		w.total++
	}
	return w
}

// NumCells returns the number of distinct tuples.
func (w *Weighted) NumCells() int { return w.cells.NumRows() }

// Schema implements Dist.
func (w *Weighted) Schema() *schema.Schema { return w.s }

// Root implements Dist.
func (w *Weighted) Root() Cond {
	rows := make([]int32, w.cells.NumRows())
	for i := range rows {
		rows[i] = int32(i)
	}
	return &wCond{
		w:      w,
		rows:   rows,
		weight: w.total,
		attrs:  make([]attrStat, w.s.NumAttrs()),
	}
}

// wCond is a selection-vector context over weighted cells. Like empCond it
// publishes lazily computed histograms through sync.Once, so a shared
// context is safe for concurrent readers.
type wCond struct {
	w      *Weighted
	rows   []int32
	weight float64
	attrs  []attrStat
}

func (c *wCond) Weight() float64 { return c.weight }

func (c *wCond) Hist(attr int) []float64 {
	st := &c.attrs[attr]
	st.once.Do(func() {
		k := c.w.s.K(attr)
		h := make([]float64, k)
		col := c.w.cells.Col(attr)
		for _, r := range c.rows {
			h[col[r]] += c.w.weights[r]
		}
		if c.weight > 0 {
			for i := range h {
				h[i] /= c.weight
			}
		} else {
			for i := range h {
				h[i] = 1 / float64(k)
			}
		}
		st.hist = h
	})
	return st.hist
}

func (c *wCond) ProbRange(attr int, r query.Range) float64 {
	h := c.Hist(attr)
	var p float64
	for v := int(r.Lo); v <= int(r.Hi) && v < len(h); v++ {
		p += h[v]
	}
	return clampProb(p)
}

func (c *wCond) ProbPred(p query.Pred) float64 {
	in := c.ProbRange(p.Attr, p.R)
	if p.Negated {
		return clampProb(1 - in)
	}
	return in
}

func (c *wCond) RestrictRange(attr int, r query.Range) Cond {
	return c.restrict(attr, func(v schema.Value) bool { return r.Contains(v) })
}

func (c *wCond) RestrictPred(p query.Pred, val bool) Cond {
	return c.restrict(p.Attr, func(v schema.Value) bool { return p.Eval(v) == val })
}

func (c *wCond) restrict(attr int, keep func(schema.Value) bool) Cond {
	col := c.w.cells.Col(attr)
	sub := make([]int32, 0, len(c.rows)/2)
	var weight float64
	for _, row := range c.rows {
		if keep(col[row]) {
			sub = append(sub, row)
			weight += c.w.weights[row]
		}
	}
	return &wCond{w: c.w, rows: sub, weight: weight, attrs: make([]attrStat, c.w.s.NumAttrs())}
}

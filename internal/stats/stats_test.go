package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 4, Cost: 1},
		schema.Attribute{Name: "light", K: 4, Cost: 100},
		schema.Attribute{Name: "temp", K: 4, Cost: 100},
	)
}

// buildTable makes a small correlated dataset: light tracks hour, temp
// tracks light.
func buildTable(t *testing.T) *table.Table {
	t.Helper()
	tbl := table.New(testSchema(), 16)
	rows := [][]schema.Value{
		{0, 0, 0}, {0, 0, 1}, {0, 1, 0}, {0, 0, 0},
		{1, 1, 1}, {1, 1, 2}, {1, 2, 1}, {1, 1, 1},
		{2, 2, 2}, {2, 2, 3}, {2, 3, 2}, {2, 2, 2},
		{3, 3, 3}, {3, 3, 0}, {3, 0, 3}, {3, 3, 3},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestRootWeightAndHist(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	c := d.Root()
	if c.Weight() != 16 {
		t.Fatalf("root weight = %g, want 16", c.Weight())
	}
	h := c.Hist(0)
	for v := 0; v < 4; v++ {
		if math.Abs(h[v]-0.25) > 1e-12 {
			t.Errorf("Hist(hour)[%d] = %g, want 0.25", v, h[v])
		}
	}
}

func TestHistCaching(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	c := d.Root()
	h1 := c.Hist(1)
	h2 := c.Hist(1)
	if &h1[0] != &h2[0] {
		t.Error("Hist not cached")
	}
}

func TestProbRange(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	c := d.Root()
	// Light column: 0,0,1,0, 1,1,2,1, 2,2,3,2, 3,3,0,3 -> four of each value.
	if got := c.ProbRange(1, query.Range{Lo: 0, Hi: 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ProbRange(light,[0,1]) = %g, want %g", got, 0.5)
	}
	if got := c.ProbRange(1, query.Range{Lo: 0, Hi: 3}); math.Abs(got-1) > 1e-12 {
		t.Errorf("ProbRange(full) = %g, want 1", got)
	}
}

func TestConditioning(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	c := d.Root()
	// Condition on hour = 0: light is 0,0,1,0.
	c0 := c.RestrictRange(0, query.Range{Lo: 0, Hi: 0})
	if c0.Weight() != 4 {
		t.Fatalf("conditioned weight = %g, want 4", c0.Weight())
	}
	if got := c0.ProbRange(1, query.Range{Lo: 0, Hi: 0}); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("P(light=0 | hour=0) = %g, want 0.75", got)
	}
	// The original context is untouched.
	if got := c.ProbRange(1, query.Range{Lo: 0, Hi: 0}); math.Abs(got-4.0/16) > 1e-12 {
		t.Errorf("parent context mutated: %g", got)
	}
}

func TestRestrictPredNegated(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	p := query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 2}, Negated: true}
	c := d.Root().RestrictPred(p, true) // light NOT in [1,2] -> light in {0,3}
	if c.Weight() != 8 {
		t.Fatalf("negated restriction weight = %g, want 8", c.Weight())
	}
	cf := d.Root().RestrictPred(p, false) // light in [1,2]
	if cf.Weight() != 8 {
		t.Fatalf("complement weight = %g, want 8", cf.Weight())
	}
}

func TestProbPred(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	p := query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}}
	if got := d.Root().ProbPred(p); math.Abs(got-8.0/16) > 1e-12 {
		t.Errorf("ProbPred = %g, want 0.5", got)
	}
	p.Negated = true
	if got := d.Root().ProbPred(p); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("negated ProbPred = %g, want 0.5", got)
	}
}

func TestEmptyContextFallsBackToUniform(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	// hour=0 AND light=3 never co-occur.
	c := d.Root().
		RestrictRange(0, query.Range{Lo: 0, Hi: 0}).
		RestrictRange(1, query.Range{Lo: 3, Hi: 3})
	if c.Weight() != 0 {
		t.Fatalf("weight = %g, want 0", c.Weight())
	}
	if got := c.ProbRange(2, query.Range{Lo: 0, Hi: 1}); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("empty-context prob = %g, want uniform 0.5", got)
	}
}

func TestRestrictBox(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	s := testSchema()
	b := query.FullBox(s).
		With(0, query.Range{Lo: 0, Hi: 1}).
		With(1, query.Range{Lo: 0, Hi: 1})
	c := RestrictBox(d.Root(), s, b)
	// hour in [0,1] has 8 rows; of those, light in [0,1]: hour0 gives 4, hour1 gives 3.
	if c.Weight() != 7 {
		t.Errorf("RestrictBox weight = %g, want 7", c.Weight())
	}
}

func TestSelectivityAndQueryTruthProb(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	s := testSchema()
	p1 := query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}}
	p2 := query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}}
	if got := Selectivity(d, p1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Selectivity = %g", got)
	}
	q := query.MustNewQuery(s, p1, p2)
	// Count rows satisfying both: light<=1 && temp<=1:
	// rows: (0,0),(0,1),(1,0),(0,0) hour0 all 4; (1,1),(1,2)x,(2,1)x,(1,1) -> 3... let's count directly in code instead.
	want := 0.0
	tbl := buildTable(t)
	for r := 0; r < tbl.NumRows(); r++ {
		if q.Eval(tbl.Row(r, nil)) {
			want++
		}
	}
	want /= float64(tbl.NumRows())
	if got := QueryTruthProb(d, q); math.Abs(got-want) > 1e-12 {
		t.Errorf("QueryTruthProb = %g, want %g", got, want)
	}
}

func TestPredMaskJointEmpirical(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	s := testSchema()
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}},
	)
	joint := PredMaskJoint(d.Root(), q)
	if len(joint) != 4 {
		t.Fatalf("joint length = %d, want 4", len(joint))
	}
	var sum float64
	for _, p := range joint {
		sum += p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("joint sums to %g, want 1", sum)
	}
	// Cross-check mask counts against direct evaluation.
	tbl := buildTable(t)
	want := make([]float64, 4)
	for r := 0; r < tbl.NumRows(); r++ {
		row := tbl.Row(r, nil)
		mask := 0
		if q.Preds[0].Eval(row[1]) {
			mask |= 1
		}
		if q.Preds[1].Eval(row[2]) {
			mask |= 2
		}
		want[mask]++
	}
	for i := range want {
		want[i] /= float64(tbl.NumRows())
		if math.Abs(joint[i]-want[i]) > 1e-12 {
			t.Errorf("joint[%d] = %g, want %g", i, joint[i], want[i])
		}
	}
}

// The generic fallback (recursive conditioning) must agree with the
// empirical fast path.
type wrapCond struct{ Cond }

func (w wrapCond) RestrictPred(p query.Pred, val bool) Cond {
	return wrapCond{w.Cond.RestrictPred(p, val)}
}
func (w wrapCond) RestrictRange(attr int, r query.Range) Cond {
	return wrapCond{w.Cond.RestrictRange(attr, r)}
}

func TestPredMaskJointFallbackAgrees(t *testing.T) {
	d := NewEmpirical(buildTable(t))
	s := testSchema()
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 3}, Negated: true},
	)
	fast := PredMaskJoint(d.Root(), q)
	slow := PredMaskJoint(wrapCond{d.Root()}, q)
	for i := range fast {
		if math.Abs(fast[i]-slow[i]) > 1e-9 {
			t.Errorf("mask %d: fast %g, slow %g", i, fast[i], slow[i])
		}
	}
}

func TestSupersetSumsAndCondSatProb(t *testing.T) {
	// Hand-built joint over 2 predicates:
	// P(00)=0.1, P(01)=0.2, P(10)=0.3, P(11)=0.4.
	joint := []float64{0.1, 0.2, 0.3, 0.4}
	SupersetSums(joint, 2)
	// satProb[S] = P(all preds in S hold):
	// satProb[0]=1, satProb[01]=0.2+0.4=0.6, satProb[10]=0.3+0.4=0.7, satProb[11]=0.4.
	want := []float64{1.0, 0.6, 0.7, 0.4}
	for i := range want {
		if math.Abs(joint[i]-want[i]) > 1e-12 {
			t.Errorf("satProb[%d] = %g, want %g", i, joint[i], want[i])
		}
	}
	// P(phi_1 | phi_0) = 0.4/0.6.
	if got := CondSatProb(joint, 1, 1); math.Abs(got-0.4/0.6) > 1e-12 {
		t.Errorf("CondSatProb = %g", got)
	}
	// Unsupported conditioning set.
	zero := []float64{0, 0, 0, 0}
	if got := CondSatProb(zero, 1, 1); got != 0.5 {
		t.Errorf("CondSatProb on zero support = %g, want 0.5", got)
	}
}

// Property: for random data, ProbRange equals a direct count, and
// RestrictRange produces contexts whose weights partition the parent.
func TestEmpiricalCountsProperty(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 8, Cost: 1},
		schema.Attribute{Name: "b", K: 8, Cost: 1},
	)
	f := func(seed int64, cut uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := table.New(s, 64)
		for i := 0; i < 64; i++ {
			tbl.MustAppendRow([]schema.Value{schema.Value(rng.Intn(8)), schema.Value(rng.Intn(8))})
		}
		x := schema.Value(cut % 7) // split point in [0,6]
		c := NewEmpirical(tbl).Root()
		lo := c.RestrictRange(0, query.Range{Lo: 0, Hi: x})
		hi := c.RestrictRange(0, query.Range{Lo: x + 1, Hi: 7})
		if lo.Weight()+hi.Weight() != c.Weight() {
			return false
		}
		p := c.ProbRange(0, query.Range{Lo: 0, Hi: x})
		return math.Abs(p-lo.Weight()/c.Weight()) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Hist always sums to 1 (within epsilon), even for conditioned
// and empty contexts.
func TestHistNormalizationProperty(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 5, Cost: 1},
		schema.Attribute{Name: "b", K: 5, Cost: 1},
	)
	f := func(seed int64, lo, hi uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := table.New(s, 32)
		for i := 0; i < 32; i++ {
			tbl.MustAppendRow([]schema.Value{schema.Value(rng.Intn(5)), schema.Value(rng.Intn(5))})
		}
		a, b := schema.Value(lo%5), schema.Value(hi%5)
		if a > b {
			a, b = b, a
		}
		c := NewEmpirical(tbl).Root().RestrictRange(0, query.Range{Lo: a, Hi: b})
		h := c.Hist(1)
		var sum float64
		for _, v := range h {
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

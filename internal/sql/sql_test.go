package sql

import (
	"strings"
	"testing"

	"acqp/internal/boolq"
	"acqp/internal/query"
	"acqp/internal/schema"
)

func sqlSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 24, Cost: 1},
		schema.Attribute{Name: "nodeid", K: 10, Cost: 1},
		schema.Attribute{Name: "light", K: 32, Cost: 100,
			Disc: schema.MustDiscretizer(0, 1600, 32)}, // 50 units per bin
		schema.Attribute{Name: "temp", K: 32, Cost: 100,
			Disc: schema.MustDiscretizer(10, 42, 32)}, // 1 degree per bin
	)
}

func TestParseSelectList(t *testing.T) {
	s := sqlSchema()
	st, err := Parse(s, "SELECT light, temp WHERE light >= 800")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Select) != 2 || st.Select[0] != 2 || st.Select[1] != 3 {
		t.Errorf("Select = %v", st.Select)
	}
	star, err := Parse(s, "SELECT *")
	if err != nil {
		t.Fatal(err)
	}
	if len(star.Select) != 4 || star.Where != nil {
		t.Errorf("SELECT * = %+v", star)
	}
}

func TestParseConjunctiveQuery(t *testing.T) {
	s := sqlSchema()
	st, err := Parse(s, "select light, temp where 100 <= light <= 900 and temp >= 25 and nodeid = 3")
	if err != nil {
		t.Fatal(err)
	}
	q, ok := st.Conjunctive(s)
	if !ok {
		t.Fatal("conjunctive clause not recognized")
	}
	if q.NumPreds() != 3 {
		t.Fatalf("preds = %d", q.NumPreds())
	}
	// light in raw units: 100 -> bin 2, 900 -> bin 18.
	if p := q.Preds[0]; p.Attr != 2 || p.R.Lo != 2 || p.R.Hi != 18 {
		t.Errorf("light pred = %+v", p)
	}
	// temp >= 25C -> bin 15 .. 31.
	if p := q.Preds[1]; p.Attr != 3 || p.R.Lo != 15 || p.R.Hi != 31 {
		t.Errorf("temp pred = %+v", p)
	}
	if p := q.Preds[2]; p.Attr != 1 || p.R != (query.Range{Lo: 3, Hi: 3}) {
		t.Errorf("nodeid pred = %+v", p)
	}
}

func TestParseBetween(t *testing.T) {
	s := sqlSchema()
	e, err := ParseWhere(s, "hour BETWEEN 6 AND 18")
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != boolq.OpPred || e.Pred.R != (query.Range{Lo: 6, Hi: 18}) {
		t.Errorf("BETWEEN = %+v", e)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	s := sqlSchema()
	e, err := ParseWhere(s, "light >= 800 AND (hour < 6 OR hour >= 20) AND NOT nodeid = 0")
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != boolq.OpAnd || len(e.Kids) != 3 {
		t.Fatalf("top = %+v", e)
	}
	if e.Kids[1].Op != boolq.OpOr {
		t.Errorf("middle = %+v", e.Kids[1])
	}
	if e.Kids[2].Op != boolq.OpNot {
		t.Errorf("last = %+v", e.Kids[2])
	}
	// Semantics: hour < 6 means bins [0,5].
	or := e.Kids[1]
	if or.Kids[0].Pred.R != (query.Range{Lo: 0, Hi: 5}) {
		t.Errorf("hour < 6 = %+v", or.Kids[0].Pred)
	}
	if or.Kids[1].Pred.R != (query.Range{Lo: 20, Hi: 23}) {
		t.Errorf("hour >= 20 = %+v", or.Kids[1].Pred)
	}
	// A disjunctive clause is not conjunctive.
	st := Statement{Where: e}
	if _, ok := st.Conjunctive(s); ok {
		t.Error("disjunctive clause reported conjunctive")
	}
}

func TestParsePrecedence(t *testing.T) {
	s := sqlSchema()
	// AND binds tighter than OR: a OR b AND c == a OR (b AND c).
	e, err := ParseWhere(s, "hour = 0 OR hour = 1 AND nodeid = 2")
	if err != nil {
		t.Fatal(err)
	}
	if e.Op != boolq.OpOr || len(e.Kids) != 2 {
		t.Fatalf("top = %+v", e)
	}
	if e.Kids[1].Op != boolq.OpAnd {
		t.Errorf("right OR operand should be AND, got %+v", e.Kids[1])
	}
}

func TestParseOperatorEdges(t *testing.T) {
	s := sqlSchema()
	cases := []struct {
		in     string
		lo, hi schema.Value
	}{
		{"hour <= 5", 0, 5},
		{"hour < 5", 0, 4},
		{"hour > 20", 21, 23},
		{"hour >= 20", 20, 23},
		{"hour = 12", 12, 12},
		{"hour <= 99", 0, 23}, // clamped
	}
	for _, tc := range cases {
		e, err := ParseWhere(s, tc.in)
		if err != nil {
			t.Errorf("%q: %v", tc.in, err)
			continue
		}
		if e.Pred.R.Lo != tc.lo || e.Pred.R.Hi != tc.hi {
			t.Errorf("%q = %v, want [%d,%d]", tc.in, e.Pred.R, tc.lo, tc.hi)
		}
	}
}

func TestParseErrors(t *testing.T) {
	s := sqlSchema()
	cases := []string{
		"",                                    // no SELECT
		"WHERE hour = 1",                      // missing SELECT
		"SELECT bogus",                        // unknown attribute
		"SELECT light WHERE",                  // empty clause
		"SELECT light WHERE light",            // dangling attribute
		"SELECT light WHERE light ==",         // bad operator use
		"SELECT light WHERE hour < 0",         // empty range
		"SELECT light WHERE hour > 23",        // empty range
		"SELECT light WHERE 5 >= hour <= 7",   // chained ops must be < or <=
		"SELECT light WHERE (hour = 1",        // unclosed paren
		"SELECT light WHERE hour = 1 extra",   // trailing tokens
		"SELECT light WHERE hour = 1.5",       // non-integer for discrete attr
		"SELECT light WHERE hour BETWEEN 1 2", // missing AND
		"SELECT light WHERE nodeid @ 3",       // bad character
	}
	for _, in := range cases {
		if _, err := Parse(s, in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseWhereSemantics(t *testing.T) {
	// End-to-end: the parsed clause must agree with hand-built semantics
	// on every value.
	s := sqlSchema()
	e, err := ParseWhere(s, "NOT (6 <= hour <= 18) AND light >= 800")
	if err != nil {
		t.Fatal(err)
	}
	lightBin := s.Attr(2).Disc.Bin(800)
	row := make([]schema.Value, 4)
	for h := 0; h < 24; h++ {
		for _, lb := range []schema.Value{0, lightBin - 1, lightBin, 31} {
			row[0], row[2] = schema.Value(h), lb
			want := (h < 6 || h > 18) && lb >= lightBin
			if got := e.Eval(row); got != want {
				t.Fatalf("hour=%d light-bin=%d: got %v want %v", h, lb, got, want)
			}
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	s := sqlSchema()
	if _, err := Parse(s, "SeLeCt light WhErE light >= 100 aNd hour nOt"); err == nil {
		t.Error("garbage after clause accepted")
	}
	st, err := Parse(s, "SeLeCt light WhErE light >= 100 AnD hour <= 12")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.Conjunctive(s); !ok {
		t.Error("mixed-case conjunction not recognized")
	}
}

func TestConjunctiveRejectsDuplicateAttr(t *testing.T) {
	s := sqlSchema()
	st, err := Parse(s, "SELECT light WHERE hour >= 3 AND hour <= 20")
	if err != nil {
		t.Fatal(err)
	}
	// Two predicates on one attribute: a valid boolean clause but not a
	// single-range conjunction; planners should use the boolq path.
	if _, ok := st.Conjunctive(s); ok {
		t.Error("duplicate-attribute conjunction accepted")
	}
	if strings.Count(st.Where.Format(s), "hour") != 2 {
		t.Error("boolean clause lost a predicate")
	}
}

// Package sql parses TinyDB-style acquisitional queries into the
// library's query representations:
//
//	SELECT light, temp
//	WHERE 100 <= light <= 900 AND temp >= 25 AND NOT (nodeid = 3 OR hour < 6)
//
// Thresholds are written in raw sensor units when the attribute carries a
// discretizer (they are mapped to bins, so predicates are exact to bin
// granularity) and as discrete values otherwise. Pure conjunctions parse
// to a query.Query for the fast conjunctive planners; general boolean
// clauses parse to a boolq.Expr.
package sql

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind classifies lexer tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokOp // <= >= < > =
	tokLParen
	tokRParen
	tokComma
	tokStar
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// keywords are case-insensitive.
const (
	kwSelect  = "SELECT"
	kwWhere   = "WHERE"
	kwAnd     = "AND"
	kwOr      = "OR"
	kwNot     = "NOT"
	kwBetween = "BETWEEN"
)

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lex(in string) ([]token, error) {
	l := &lexer{in: in}
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '(':
			l.emit(tokLParen, "(")
		case c == ')':
			l.emit(tokRParen, ")")
		case c == ',':
			l.emit(tokComma, ",")
		case c == '*':
			l.emit(tokStar, "*")
		case c == '<' || c == '>' || c == '=':
			op := string(c)
			if c != '=' && l.pos+1 < len(l.in) && l.in[l.pos+1] == '=' {
				op += "="
				l.pos++
			}
			l.emit(tokOp, op)
		case c == '-' || c == '.' || (c >= '0' && c <= '9'):
			start := l.pos
			l.pos++
			for l.pos < len(l.in) && (l.in[l.pos] == '.' || l.in[l.pos] >= '0' && l.in[l.pos] <= '9') {
				l.pos++
			}
			l.toks = append(l.toks, token{tokNumber, l.in[start:l.pos], start})
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.in) && isIdentRune(rune(l.in[l.pos])) {
				l.pos++
			}
			l.toks = append(l.toks, token{tokIdent, l.in[start:l.pos], start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{tokEOF, "", len(l.in)})
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind, text, l.pos})
	l.pos += len(text)
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '.'
}

// isKeyword reports whether an identifier token is the given keyword,
// case-insensitively.
func (t token) isKeyword(kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (t token) number() (float64, error) {
	v, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, fmt.Errorf("sql: bad number %q at position %d", t.text, t.pos)
	}
	return v, nil
}

package sql

import (
	"testing"
)

// FuzzParse feeds arbitrary input to the lexer and parser: whatever the
// bytes, Parse and ParseWhere must return a value or an error — never
// panic, never hang. The schema mixes discretized (light, temp) and
// natively discrete (hour, nodeid) attributes so number handling hits
// both the Discretizer path and the raw-value path.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT *",
		"SELECT light, temp WHERE light >= 800",
		"select * where 100 <= light <= 900 and temp >= 25",
		"SELECT hour WHERE NOT (light < 200 OR temp > 30) AND nodeid = 3",
		"SELECT light WHERE light BETWEEN 100 AND 900",
		"SELECT light WHERE light >= 99999999999999999999",
		"SELECT light WHERE ((((light > 1))))",
		"SELECT light WHERE light = -0.5e308",
		"WHERE",
		"SELECT",
		"SELECT light WHERE light >",
		"SELECT nope WHERE nope = 1",
		"\x00\xff(*,",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	sch := sqlSchema()
	f.Fuzz(func(t *testing.T, input string) {
		st, err := Parse(sch, input)
		if err == nil {
			// A statement that parses must also survive downstream use.
			if q, ok := st.Conjunctive(sch); ok {
				for _, p := range q.Preds {
					if p.Attr < 0 || p.Attr >= sch.NumAttrs() {
						t.Fatalf("predicate attribute %d out of schema range", p.Attr)
					}
				}
			}
			for _, idx := range st.Select {
				if idx < 0 || idx >= sch.NumAttrs() {
					t.Fatalf("projection index %d out of schema range", idx)
				}
			}
		}
		if _, err := ParseWhere(sch, input); err == nil {
			return
		}
	})
}

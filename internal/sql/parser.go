package sql

import (
	"fmt"

	"acqp/internal/boolq"
	"acqp/internal/query"
	"acqp/internal/schema"
)

// Statement is a parsed acquisitional query.
type Statement struct {
	// Select lists the projected attribute indexes (the full schema for
	// SELECT *). Projection does not affect planning — the paper's cost
	// model concerns the WHERE clause — but is validated and carried for
	// callers.
	Select []int
	// Where is the boolean WHERE clause (nil when absent, meaning
	// "select everything").
	Where *boolq.Expr
}

// Conjunctive converts the WHERE clause to a query.Query when it is a
// pure conjunction of predicates; ok is false otherwise (use the boolq
// planners then).
func (st Statement) Conjunctive(s *schema.Schema) (query.Query, bool) {
	if st.Where == nil {
		return query.Query{}, false
	}
	preds, ok := flattenConjunction(st.Where)
	if !ok {
		return query.Query{}, false
	}
	q, err := query.NewQuery(s, preds...)
	if err != nil {
		// Multiple predicates on one attribute (e.g. "a<5 AND a>1" the
		// parser kept separate) are valid boolean clauses but not a
		// single-range conjunction.
		return query.Query{}, false
	}
	return q, true
}

// Predicates returns the WHERE clause's predicates when it is a pure
// conjunction of (possibly NOT-wrapped) range predicates; ok is false for
// clauses containing OR or NOT over a non-leaf. A nil WHERE clause yields
// the empty conjunction (trivially true) with ok true. Unlike
// Conjunctive, the list may contain several predicates on one attribute;
// query.Canonical merges them.
func (st Statement) Predicates() (preds []query.Pred, ok bool) {
	if st.Where == nil {
		return nil, true
	}
	return flattenConjunction(st.Where)
}

func flattenConjunction(e *boolq.Expr) ([]query.Pred, bool) {
	switch e.Op {
	case boolq.OpPred:
		return []query.Pred{e.Pred}, true
	case boolq.OpNot:
		// Fold NOT over a leaf into the predicate's Negated flag (NOT is
		// unary: Kids[0] is the operand). Deeper negations (De Morgan)
		// stay with the boolean planner.
		if kid := e.Kids[0]; kid.Op == boolq.OpPred {
			p := kid.Pred
			p.Negated = !p.Negated
			return []query.Pred{p}, true
		}
		return nil, false
	case boolq.OpAnd:
		var out []query.Pred
		for _, k := range e.Kids {
			kp, ok := flattenConjunction(k)
			if !ok {
				return nil, false
			}
			out = append(out, kp...)
		}
		return out, true
	default:
		return nil, false
	}
}

// Parse parses a full statement against the schema.
func Parse(s *schema.Schema, input string) (Statement, error) {
	toks, err := lex(input)
	if err != nil {
		return Statement{}, err
	}
	p := &parser{s: s, toks: toks}
	st, err := p.statement()
	if err != nil {
		return Statement{}, err
	}
	if p.peek().kind != tokEOF {
		return Statement{}, fmt.Errorf("sql: trailing input at position %d: %q", p.peek().pos, p.peek().text)
	}
	if st.Where != nil {
		if err := st.Where.Validate(s); err != nil {
			return Statement{}, err
		}
	}
	return st, nil
}

// ParseWhere parses just a boolean clause (no SELECT prefix).
func ParseWhere(s *schema.Schema, input string) (*boolq.Expr, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{s: s, toks: toks}
	e, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("sql: trailing input at position %d: %q", p.peek().pos, p.peek().text)
	}
	if err := e.Validate(s); err != nil {
		return nil, err
	}
	return e, nil
}

type parser struct {
	s    *schema.Schema
	toks []token
	i    int
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }

func (p *parser) statement() (Statement, error) {
	var st Statement
	if !p.peek().isKeyword(kwSelect) {
		return st, fmt.Errorf("sql: expected SELECT, got %q", p.peek().text)
	}
	p.next()
	// Projection list.
	if p.peek().kind == tokStar {
		p.next()
		for i := 0; i < p.s.NumAttrs(); i++ {
			st.Select = append(st.Select, i)
		}
	} else {
		for {
			t := p.next()
			if t.kind != tokIdent {
				return st, fmt.Errorf("sql: expected attribute name at position %d, got %q", t.pos, t.text)
			}
			idx := p.s.Index(t.text)
			if idx < 0 {
				return st, fmt.Errorf("sql: unknown attribute %q at position %d", t.text, t.pos)
			}
			st.Select = append(st.Select, idx)
			if p.peek().kind != tokComma {
				break
			}
			p.next()
		}
	}
	if p.peek().kind == tokEOF {
		return st, nil
	}
	if !p.peek().isKeyword(kwWhere) {
		return st, fmt.Errorf("sql: expected WHERE, got %q at position %d", p.peek().text, p.peek().pos)
	}
	p.next()
	where, err := p.orExpr()
	if err != nil {
		return st, err
	}
	st.Where = where
	return st, nil
}

// orExpr := andExpr (OR andExpr)*
func (p *parser) orExpr() (*boolq.Expr, error) {
	left, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []*boolq.Expr{left}
	for p.peek().isKeyword(kwOr) {
		p.next()
		right, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return boolq.Or(kids...), nil
}

// andExpr := unary (AND unary)*
func (p *parser) andExpr() (*boolq.Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	kids := []*boolq.Expr{left}
	for p.peek().isKeyword(kwAnd) {
		p.next()
		right, err := p.unary()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return boolq.And(kids...), nil
}

// unary := NOT unary | '(' orExpr ')' | comparison
func (p *parser) unary() (*boolq.Expr, error) {
	switch {
	case p.peek().isKeyword(kwNot):
		p.next()
		kid, err := p.unary()
		if err != nil {
			return nil, err
		}
		return boolq.Not(kid), nil
	case p.peek().kind == tokLParen:
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if p.peek().kind != tokRParen {
			return nil, fmt.Errorf("sql: expected ')' at position %d", p.peek().pos)
		}
		p.next()
		return e, nil
	default:
		return p.comparison()
	}
}

// comparison handles:
//
//	attr OP value
//	value OP attr OP value     (chained range, OPs must be < or <=)
//	attr BETWEEN lo AND hi
func (p *parser) comparison() (*boolq.Expr, error) {
	switch p.peek().kind {
	case tokNumber:
		lo := p.next()
		op1 := p.next()
		if op1.kind != tokOp || (op1.text != "<" && op1.text != "<=") {
			return nil, fmt.Errorf("sql: expected < or <= after %q, got %q", lo.text, op1.text)
		}
		attrTok := p.next()
		if attrTok.kind != tokIdent {
			return nil, fmt.Errorf("sql: expected attribute after %q, got %q", op1.text, attrTok.text)
		}
		op2 := p.next()
		if op2.kind != tokOp || (op2.text != "<" && op2.text != "<=") {
			return nil, fmt.Errorf("sql: expected < or <= after %q, got %q", attrTok.text, op2.text)
		}
		hi := p.next()
		if hi.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after %q, got %q", op2.text, hi.text)
		}
		return p.rangePred(attrTok, lo, op1.text == "<", hi, op2.text == "<")
	case tokIdent:
		attrTok := p.next()
		if p.peek().isKeyword(kwBetween) {
			p.next()
			lo := p.next()
			if lo.kind != tokNumber {
				return nil, fmt.Errorf("sql: expected number after BETWEEN, got %q", lo.text)
			}
			if !p.peek().isKeyword(kwAnd) {
				return nil, fmt.Errorf("sql: expected AND in BETWEEN at position %d", p.peek().pos)
			}
			p.next()
			hi := p.next()
			if hi.kind != tokNumber {
				return nil, fmt.Errorf("sql: expected number after BETWEEN ... AND, got %q", hi.text)
			}
			return p.rangePred(attrTok, lo, false, hi, false)
		}
		op := p.next()
		if op.kind != tokOp {
			return nil, fmt.Errorf("sql: expected comparison operator after %q, got %q", attrTok.text, op.text)
		}
		val := p.next()
		if val.kind != tokNumber {
			return nil, fmt.Errorf("sql: expected number after %q, got %q", op.text, val.text)
		}
		return p.simplePred(attrTok, op.text, val)
	default:
		return nil, fmt.Errorf("sql: expected predicate at position %d, got %q", p.peek().pos, p.peek().text)
	}
}

// bin maps a raw threshold to the attribute's discrete domain.
func (p *parser) bin(attr int, t token) (schema.Value, error) {
	v, err := t.number()
	if err != nil {
		return 0, err
	}
	a := p.s.Attr(attr)
	if a.Disc != nil {
		return a.Disc.Bin(v), nil
	}
	iv := int(v)
	if float64(iv) != v {
		return 0, fmt.Errorf("sql: attribute %s is discrete; %q is not an integer", a.Name, t.text)
	}
	if iv < 0 {
		return 0, nil
	}
	if iv >= a.K {
		return schema.Value(a.K - 1), nil
	}
	return schema.Value(iv), nil
}

func (p *parser) attrIndex(t token) (int, error) {
	idx := p.s.Index(t.text)
	if idx < 0 {
		return 0, fmt.Errorf("sql: unknown attribute %q at position %d", t.text, t.pos)
	}
	return idx, nil
}

// rangePred builds lo <= attr <= hi (strict bounds exclude one bin).
func (p *parser) rangePred(attrTok, lo token, loStrict bool, hi token, hiStrict bool) (*boolq.Expr, error) {
	attr, err := p.attrIndex(attrTok)
	if err != nil {
		return nil, err
	}
	loBin, err := p.bin(attr, lo)
	if err != nil {
		return nil, err
	}
	hiBin, err := p.bin(attr, hi)
	if err != nil {
		return nil, err
	}
	if loStrict && p.s.Attr(attr).Disc == nil {
		loBin++
	}
	if hiStrict && p.s.Attr(attr).Disc == nil {
		if hiBin == 0 {
			return nil, fmt.Errorf("sql: empty range for %s", attrTok.text)
		}
		hiBin--
	}
	if loBin > hiBin {
		return nil, fmt.Errorf("sql: empty range for %s", attrTok.text)
	}
	return boolq.Leaf(query.Pred{Attr: attr, R: query.Range{Lo: loBin, Hi: hiBin}}), nil
}

// simplePred builds attr OP value.
func (p *parser) simplePred(attrTok token, op string, val token) (*boolq.Expr, error) {
	attr, err := p.attrIndex(attrTok)
	if err != nil {
		return nil, err
	}
	v, err := p.bin(attr, val)
	if err != nil {
		return nil, err
	}
	k := schema.Value(p.s.K(attr))
	var r query.Range
	switch op {
	case "=":
		r = query.Range{Lo: v, Hi: v}
	case "<=":
		r = query.Range{Lo: 0, Hi: v}
	case "<":
		if v == 0 {
			return nil, fmt.Errorf("sql: %s < %s is empty", attrTok.text, val.text)
		}
		r = query.Range{Lo: 0, Hi: v - 1}
	case ">=":
		r = query.Range{Lo: v, Hi: k - 1}
	case ">":
		if v >= k-1 {
			return nil, fmt.Errorf("sql: %s > %s is empty", attrTok.text, val.text)
		}
		r = query.Range{Lo: v + 1, Hi: k - 1}
	default:
		return nil, fmt.Errorf("sql: unsupported operator %q", op)
	}
	return boolq.Leaf(query.Pred{Attr: attr, R: r}), nil
}

package plan

import (
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 2, Cost: 0},
		schema.Attribute{Name: "temp", K: 2, Cost: 1},
		schema.Attribute{Name: "light", K: 2, Cost: 1},
	)
}

// fig2Table reproduces the worked example of Figure 2: hour is a free
// binary attribute (0 = night, 1 = day); the temp predicate (bit = 1) has
// selectivity 0.1 at night and 0.9 during the day; the light predicate
// has selectivity 0.9 at night and 0.1 during the day. Marginals are 0.5.
func fig2Table() *table.Table {
	tbl := table.New(testSchema(), 200)
	add := func(count int, row []schema.Value) {
		for i := 0; i < count; i++ {
			tbl.MustAppendRow(row)
		}
	}
	// Night (hour=0): P(temp)=0.1, P(light)=0.9, independent given hour.
	add(9, []schema.Value{0, 1, 1})
	add(1, []schema.Value{0, 1, 0})
	add(81, []schema.Value{0, 0, 1})
	add(9, []schema.Value{0, 0, 0})
	// Day (hour=1): P(temp)=0.9, P(light)=0.1.
	add(9, []schema.Value{1, 1, 1})
	add(81, []schema.Value{1, 1, 0})
	add(1, []schema.Value{1, 0, 1})
	add(9, []schema.Value{1, 0, 0})
	return tbl
}

func fig2Query(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}}, // temp > 20C
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}}, // light < 100 Lux
	)
}

func TestFigure2WorkedExample(t *testing.T) {
	s := testSchema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)

	// Traditional sequential plan: temp then light. Expected cost
	// 1 + 0.5*1 = 1.5 units (Figure 2, left).
	seq := NewSeq(q.Preds)
	if got := ExpectedCostRoot(seq, d); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("sequential plan cost = %g, want 1.5", got)
	}

	// Conditional plan: condition on hour; at night temp first, during
	// the day light first. Expected cost 1.1 units (Figure 2, right).
	cond := NewSplit(0, 1,
		NewSeq(q.Preds), // night: temp, light
		NewSeq([]query.Pred{q.Preds[1], q.Preds[0]}), // day: light, temp
	)
	if got := ExpectedCostRoot(cond, d); math.Abs(got-1.1) > 1e-9 {
		t.Errorf("conditional plan cost = %g, want 1.1", got)
	}
	// Both plans compute the same query.
	if r := cond.Equivalent(s, q, fig2Table()); r != -1 {
		t.Errorf("conditional plan wrong at row %d", r)
	}
	if r := seq.Equivalent(s, q, fig2Table()); r != -1 {
		t.Errorf("sequential plan wrong at row %d", r)
	}
}

func TestExecuteChargesAttributeOnce(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 10, Cost: 7},
		schema.Attribute{Name: "b", K: 10, Cost: 3},
	)
	// Split twice on a, then a seq over a and b: a must cost 7 only once.
	p := NewSplit(0, 5,
		NewLeaf(false),
		NewSplit(0, 8,
			NewSeq([]query.Pred{
				{Attr: 0, R: query.Range{Lo: 5, Hi: 7}},
				{Attr: 1, R: query.Range{Lo: 0, Hi: 4}},
			}),
			NewLeaf(false),
		),
	)
	acquired := make([]bool, 2)
	res, cost := p.Execute(s, []schema.Value{6, 2}, acquired)
	if !res {
		t.Error("Execute result = false, want true")
	}
	if cost != 10 {
		t.Errorf("cost = %g, want 10 (7 for a once + 3 for b)", cost)
	}
	// A tuple rejected at the first split only pays for a.
	acquired = make([]bool, 2)
	res, cost = p.Execute(s, []schema.Value{0, 0}, acquired)
	if res || cost != 7 {
		t.Errorf("rejected tuple: result=%v cost=%g, want false/7", res, cost)
	}
}

func TestNodeCounts(t *testing.T) {
	p := NewSplit(0, 1,
		NewLeaf(false),
		NewSplit(1, 1, NewSeq([]query.Pred{{Attr: 2, R: query.Range{Lo: 0, Hi: 0}}}), NewLeaf(true)),
	)
	if got := p.NumSplits(); got != 2 {
		t.Errorf("NumSplits = %d, want 2", got)
	}
	if got := p.NumNodes(); got != 5 { // 2 splits + leaf + leaf + 1-pred seq
		t.Errorf("NumNodes = %d, want 5", got)
	}
	if got := p.Depth(); got != 3 {
		t.Errorf("Depth = %d, want 3", got)
	}
	set := p.Attrs(3)
	if !set[0] || !set[1] || !set[2] {
		t.Errorf("Attrs = %v, want all true", set)
	}
}

func TestValidate(t *testing.T) {
	s := testSchema()
	good := NewSplit(1, 1, NewLeaf(false), NewLeaf(true))
	if err := good.Validate(s); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name string
		p    *Node
	}{
		{"attr out of range", NewSplit(7, 1, NewLeaf(false), NewLeaf(true))},
		{"degenerate threshold 0", NewSplit(1, 0, NewLeaf(false), NewLeaf(true))},
		{"threshold beyond domain", NewSplit(1, 2, NewLeaf(false), NewLeaf(true))},
		{"missing child", &Node{Kind: Split, Attr: 1, X: 1, Left: NewLeaf(false)}},
		{"empty seq", &Node{Kind: Seq}},
		{"seq bad range", NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 1, Hi: 5}}})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.p.Validate(s); err == nil {
				t.Error("invalid plan accepted")
			}
		})
	}
}

func TestEquivalentDetectsWrongPlan(t *testing.T) {
	s := testSchema()
	q := fig2Query(s)
	wrong := NewLeaf(true) // claims everything passes
	if r := wrong.Equivalent(s, q, fig2Table()); r == -1 {
		t.Error("wrong plan reported equivalent")
	}
}

// randomPlan builds a random valid plan over the schema.
func randomPlan(rng *rand.Rand, s *schema.Schema, depth int) *Node {
	if depth <= 0 || rng.Float64() < 0.3 {
		switch rng.Intn(3) {
		case 0:
			return NewLeaf(rng.Intn(2) == 0)
		default:
			n := 1 + rng.Intn(3)
			preds := make([]query.Pred, n)
			for i := range preds {
				attr := rng.Intn(s.NumAttrs())
				k := s.K(attr)
				lo := rng.Intn(k)
				hi := lo + rng.Intn(k-lo)
				preds[i] = query.Pred{
					Attr:    attr,
					R:       query.Range{Lo: schema.Value(lo), Hi: schema.Value(hi)},
					Negated: rng.Intn(2) == 0,
				}
			}
			return NewSeq(preds)
		}
	}
	attr := rng.Intn(s.NumAttrs())
	x := 1 + rng.Intn(s.K(attr)-1)
	return NewSplit(attr, schema.Value(x), randomPlan(rng, s, depth-1), randomPlan(rng, s, depth-1))
}

func randomTable(rng *rand.Rand, s *schema.Schema, rows int) *table.Table {
	tbl := table.New(s, rows)
	row := make([]schema.Value, s.NumAttrs())
	for r := 0; r < rows; r++ {
		// Correlate: later attributes track the first one loosely so the
		// test exercises non-trivial conditional probabilities.
		base := rng.Intn(s.K(0))
		row[0] = schema.Value(base)
		for i := 1; i < s.NumAttrs(); i++ {
			v := (base*s.K(i))/s.K(0) + rng.Intn(3) - 1
			if v < 0 {
				v = 0
			}
			if v >= s.K(i) {
				v = s.K(i) - 1
			}
			row[i] = schema.Value(v)
		}
		tbl.MustAppendRow(row)
	}
	return tbl
}

// Property (Equation 4): on an empirical distribution built from table D,
// the analytic expected cost of any plan equals the average per-tuple
// execution cost over D exactly.
func TestExpectedCostMatchesEmpiricalAverage(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 6, Cost: 2},
		schema.Attribute{Name: "b", K: 4, Cost: 5},
		schema.Attribute{Name: "c", K: 8, Cost: 1},
	)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		tbl := randomTable(rng, s, 200)
		p := randomPlan(rng, s, 4)
		if err := p.Validate(s); err != nil {
			t.Fatalf("trial %d: random plan invalid: %v", trial, err)
		}
		want := 0.0
		acquired := make([]bool, s.NumAttrs())
		var row []schema.Value
		for r := 0; r < tbl.NumRows(); r++ {
			row = tbl.Row(r, row)
			for i := range acquired {
				acquired[i] = false
			}
			_, c := p.Execute(s, row, acquired)
			want += c
		}
		want /= float64(tbl.NumRows())
		got := ExpectedCostRoot(p, stats.NewEmpirical(tbl))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ExpectedCost = %.12f, empirical average = %.12f", trial, got, want)
		}
	}
}

// Property: encode/decode round-trips any random plan bit-exactly.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 6, Cost: 2},
		schema.Attribute{Name: "b", K: 4, Cost: 5},
		schema.Attribute{Name: "c", K: 8, Cost: 1},
	)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		p := randomPlan(rng, s, 5)
		enc := Encode(p)
		if Size(p) != len(enc) {
			t.Fatalf("Size disagrees with Encode length")
		}
		got, err := Decode(s, enc)
		if err != nil {
			t.Fatalf("trial %d: Decode: %v", trial, err)
		}
		if !reflect.DeepEqual(normalize(p), normalize(got)) {
			t.Fatalf("trial %d: round trip mismatch\nwant %#v\ngot  %#v", trial, p, got)
		}
	}
}

// normalize clears capacity-only differences in predicate slices.
func normalize(n *Node) *Node {
	cp := *n
	if n.Left != nil {
		cp.Left = normalize(n.Left)
	}
	if n.Right != nil {
		cp.Right = normalize(n.Right)
	}
	if n.Preds != nil {
		cp.Preds = append([]query.Pred(nil), n.Preds...)
	}
	return &cp
}

func TestDecodeErrors(t *testing.T) {
	s := testSchema()
	good := Encode(NewSplit(1, 1, NewLeaf(false), NewLeaf(true)))
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", []byte{'X', 'Q', 0x01}},
		{"truncated", good[:len(good)-1]},
		{"trailing", append(append([]byte{}, good...), 0x01)},
		{"unknown opcode", []byte{'A', 'Q', 0x7f}},
		{"zero-pred seq", []byte{'A', 'Q', opSeq, 0x00}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Decode(s, tc.data); err == nil {
				t.Error("Decode accepted malformed input")
			}
		})
	}
}

func TestDecodeRejectsInvalidPlan(t *testing.T) {
	// Structurally parseable but semantically invalid for this schema:
	// split threshold beyond the domain.
	s := testSchema()
	bad := Encode(NewSplit(1, 1, NewLeaf(false), NewLeaf(true)))
	// Rebuild with an out-of-domain threshold via a schema with larger K.
	big := schema.New(
		schema.Attribute{Name: "hour", K: 100, Cost: 0},
		schema.Attribute{Name: "temp", K: 100, Cost: 1},
		schema.Attribute{Name: "light", K: 100, Cost: 1},
	)
	bad = Encode(NewSplit(1, 50, NewLeaf(false), NewLeaf(true)))
	if _, err := Decode(big, bad); err != nil {
		t.Fatalf("plan valid for big schema rejected: %v", err)
	}
	if _, err := Decode(s, bad); err == nil {
		t.Error("plan with out-of-domain threshold accepted")
	}
}

func TestRender(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "hour", K: 24, Cost: 0},
		schema.Attribute{Name: "light", K: 16, Cost: 100, Disc: schema.MustDiscretizer(0, 1600, 16)},
	)
	p := NewSplit(0, 12,
		NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 0, Hi: 3}}}),
		NewLeaf(false),
	)
	out := Render(p, s)
	if !strings.Contains(out, "if hour >= 12") {
		t.Errorf("Render missing split: %q", out)
	}
	if !strings.Contains(out, "light") {
		t.Errorf("Render missing seq: %q", out)
	}
	dot := Dot(p, s)
	if !strings.Contains(dot, "digraph plan") || !strings.Contains(dot, "->") {
		t.Errorf("Dot output malformed: %q", dot)
	}
}

func TestExpectedCostDegenerateSplit(t *testing.T) {
	// A split whose threshold falls outside the already-restricted box
	// must route all probability mass to the single reachable branch.
	s := schema.New(schema.Attribute{Name: "a", K: 10, Cost: 1})
	tbl := table.New(s, 10)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i)})
	}
	d := stats.NewEmpirical(tbl)
	// Outer split a>=5; inner right split a>=2 is degenerate (always true).
	p := NewSplit(0, 5,
		NewLeaf(false),
		NewSplit(0, 2, NewLeaf(false), NewLeaf(true)),
	)
	// Only one acquisition of a, cost 1.
	if got := ExpectedCostRoot(p, d); math.Abs(got-1) > 1e-12 {
		t.Errorf("cost = %g, want 1", got)
	}
}

func TestSeqSharedAttributeNotDoubleCharged(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 10, Cost: 4},
	)
	tbl := table.New(s, 10)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i)})
	}
	d := stats.NewEmpirical(tbl)
	// Two predicates over the same attribute: cost must be 4, not 8.
	p := NewSeq([]query.Pred{
		{Attr: 0, R: query.Range{Lo: 2, Hi: 9}},
		{Attr: 0, R: query.Range{Lo: 0, Hi: 7}},
	})
	if got := ExpectedCostRoot(p, d); math.Abs(got-4) > 1e-12 {
		t.Errorf("cost = %g, want 4", got)
	}
}

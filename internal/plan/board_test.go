package plan

import (
	"math"
	"math/rand"
	"testing"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

func boardSchema(t *testing.T) *schema.Schema {
	t.Helper()
	s := schema.New(
		schema.Attribute{Name: "free", K: 4, Cost: 1},
		schema.Attribute{Name: "s1", K: 4, Cost: 5, Board: 1},
		schema.Attribute{Name: "s2", K: 4, Cost: 5, Board: 1},
	)
	if err := s.SetBoardCost(1, 50); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExecuteChargesBoardOnce(t *testing.T) {
	s := boardSchema(t)
	// Sequential plan touching both board sensors.
	p := NewSeq([]query.Pred{
		{Attr: 1, R: query.Range{Lo: 0, Hi: 3}}, // always true
		{Attr: 2, R: query.Range{Lo: 0, Hi: 3}},
	})
	acquired := make([]bool, 3)
	_, cost := p.Execute(s, []schema.Value{0, 1, 2}, acquired)
	// 50 (board) + 5 + 5 — not 110.
	if cost != 60 {
		t.Errorf("cost = %g, want 60", cost)
	}
}

func TestExecuteBoardNotChargedIfUnused(t *testing.T) {
	s := boardSchema(t)
	p := NewSeq([]query.Pred{
		{Attr: 0, R: query.Range{Lo: 2, Hi: 3}}, // fails for value 0
		{Attr: 1, R: query.Range{Lo: 0, Hi: 3}},
	})
	acquired := make([]bool, 3)
	res, cost := p.Execute(s, []schema.Value{0, 1, 2}, acquired)
	if res || cost != 1 {
		t.Errorf("res=%v cost=%g, want false/1 (board never powered)", res, cost)
	}
}

// The Equation-4 identity must hold with board costs too: analytic
// expected cost equals the empirical per-tuple average.
func TestExpectedCostMatchesEmpiricalAverageWithBoards(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 6, Cost: 2},
		schema.Attribute{Name: "b", K: 4, Cost: 5, Board: 1},
		schema.Attribute{Name: "c", K: 8, Cost: 1, Board: 1},
		schema.Attribute{Name: "d", K: 4, Cost: 3, Board: 2},
	)
	if err := s.SetBoardCost(1, 40); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBoardCost(2, 15); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 40; trial++ {
		tbl := randomTable(rng, s, 150)
		p := randomPlan(rng, s, 4)
		want := 0.0
		acquired := make([]bool, s.NumAttrs())
		var row []schema.Value
		for r := 0; r < tbl.NumRows(); r++ {
			row = tbl.Row(r, row)
			for i := range acquired {
				acquired[i] = false
			}
			_, c := p.Execute(s, row, acquired)
			want += c
		}
		want /= float64(tbl.NumRows())
		got := ExpectedCostRoot(p, stats.NewEmpirical(tbl))
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: ExpectedCost = %.12f, empirical average = %.12f\n%s",
				trial, got, want, Render(p, s))
		}
	}
}

func TestExpectedSeqCostBoardSharing(t *testing.T) {
	s := boardSchema(t)
	tbl := table.New(s, 8)
	for i := 0; i < 8; i++ {
		tbl.MustAppendRow([]schema.Value{
			schema.Value(i % 4), schema.Value(i % 4), schema.Value((i + 1) % 4),
		})
	}
	d := stats.NewEmpirical(tbl)
	// Both predicates always true: the seq acquires s1 then s2.
	p := NewSeq([]query.Pred{
		{Attr: 1, R: query.Range{Lo: 0, Hi: 3}},
		{Attr: 2, R: query.Range{Lo: 0, Hi: 3}},
	})
	if got := ExpectedCostRoot(p, d); math.Abs(got-60) > 1e-9 {
		t.Errorf("expected cost = %g, want 60 (board charged once)", got)
	}
}

package plan

import (
	"math/rand"
	"testing"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
)

func TestSimplifyCollapsesIdenticalChildren(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 8, Cost: 1},
		schema.Attribute{Name: "b", K: 8, Cost: 1},
	)
	p := NewSplit(0, 4,
		NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 0, Hi: 3}}}),
		NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 0, Hi: 3}}}),
	)
	got := Simplify(p, s)
	if got.Kind != Seq {
		t.Fatalf("identical children not collapsed: %+v", got)
	}
}

func TestSimplifyDropsDecidedSplit(t *testing.T) {
	s := schema.New(schema.Attribute{Name: "a", K: 8, Cost: 1})
	// Outer split a>=4; on the right branch, a>=2 is always true.
	p := NewSplit(0, 4,
		NewLeaf(false),
		NewSplit(0, 2, NewLeaf(false), NewLeaf(true)),
	)
	got := Simplify(p, s)
	if got.Kind != Split || got.X != 4 {
		t.Fatalf("outer split altered: %+v", got)
	}
	if got.Right.Kind != Leaf || !got.Right.Result {
		t.Fatalf("inner decided split not collapsed: %+v", got.Right)
	}
}

func TestSimplifyPrunesDecidedSeqPreds(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 8, Cost: 1},
		schema.Attribute{Name: "b", K: 8, Cost: 1},
	)
	// After a >= 4, the predicate a in [2,7] is proven; only b remains.
	p := NewSplit(0, 4,
		NewLeaf(false),
		NewSeq([]query.Pred{
			{Attr: 0, R: query.Range{Lo: 2, Hi: 7}},
			{Attr: 1, R: query.Range{Lo: 0, Hi: 3}},
		}),
	)
	got := Simplify(p, s)
	if got.Right.Kind != Seq || len(got.Right.Preds) != 1 || got.Right.Preds[0].Attr != 1 {
		t.Fatalf("proven predicate not dropped: %+v", got.Right)
	}
	// And a refuted predicate truncates to a false leaf.
	p2 := NewSplit(0, 4,
		NewSeq([]query.Pred{
			{Attr: 0, R: query.Range{Lo: 4, Hi: 7}}, // a < 4 here: refuted
			{Attr: 1, R: query.Range{Lo: 0, Hi: 3}},
		}),
		NewLeaf(false),
	)
	got2 := Simplify(p2, s)
	if got2.Kind != Leaf || got2.Result {
		t.Fatalf("refuted branch not truncated: %+v", got2)
	}
}

func TestSimplifyEmptySeqBecomesTrueLeaf(t *testing.T) {
	s := schema.New(schema.Attribute{Name: "a", K: 4, Cost: 1})
	p := NewSplit(0, 2,
		NewLeaf(false),
		NewSeq([]query.Pred{{Attr: 0, R: query.Range{Lo: 2, Hi: 3}}}),
	)
	got := Simplify(p, s)
	if got.Right.Kind != Leaf || !got.Right.Result {
		t.Fatalf("fully-proven seq not reduced to true leaf: %+v", got.Right)
	}
}

func TestEqual(t *testing.T) {
	a := NewSplit(0, 2, NewLeaf(false), NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 0, Hi: 1}}}))
	b := NewSplit(0, 2, NewLeaf(false), NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 0, Hi: 1}}}))
	if !Equal(a, b) {
		t.Error("identical plans not Equal")
	}
	c := NewSplit(0, 3, NewLeaf(false), NewLeaf(true))
	if Equal(a, c) {
		t.Error("different plans Equal")
	}
	if Equal(NewLeaf(true), NewLeaf(false)) {
		t.Error("different leaves Equal")
	}
}

// Property: Simplify preserves the output for every tuple in the domain,
// never increases per-tuple cost, and never increases the wire size —
// including under shared-board acquisition costs.
func TestSimplifyPreservesSemanticsProperty(t *testing.T) {
	plain := schema.New(
		schema.Attribute{Name: "a", K: 4, Cost: 3},
		schema.Attribute{Name: "b", K: 4, Cost: 5},
		schema.Attribute{Name: "c", K: 4, Cost: 1},
	)
	boards := schema.New(
		schema.Attribute{Name: "a", K: 4, Cost: 3, Board: 1},
		schema.Attribute{Name: "b", K: 4, Cost: 5, Board: 1},
		schema.Attribute{Name: "c", K: 4, Cost: 1},
	)
	if err := boards.SetBoardCost(1, 20); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*schema.Schema{plain, boards} {
		simplifyProperty(t, s)
	}
}

func simplifyProperty(t *testing.T, s *schema.Schema) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		p := randomPlan(rng, s, 4)
		sp := Simplify(p, s)
		if err := sp.Validate(s); err != nil {
			// An all-collapsed plan may be a single leaf, which is valid;
			// anything else invalid is a bug.
			t.Fatalf("trial %d: simplified plan invalid: %v", trial, err)
		}
		if Size(sp) > Size(p) {
			t.Fatalf("trial %d: Simplify grew the plan: %d -> %d bytes", trial, Size(p), Size(sp))
		}
		acquired := make([]bool, s.NumAttrs())
		row := make([]schema.Value, 3)
		for a := 0; a < 4; a++ {
			for b := 0; b < 4; b++ {
				for c := 0; c < 4; c++ {
					row[0], row[1], row[2] = schema.Value(a), schema.Value(b), schema.Value(c)
					for i := range acquired {
						acquired[i] = false
					}
					origRes, origCost := p.Execute(s, row, acquired)
					for i := range acquired {
						acquired[i] = false
					}
					simpRes, simpCost := sp.Execute(s, row, acquired)
					if origRes != simpRes {
						t.Fatalf("trial %d: output changed for %v: %v -> %v\norig:\n%s\nsimp:\n%s",
							trial, row, origRes, simpRes, Render(p, s), Render(sp, s))
					}
					if simpCost > origCost+1e-9 {
						t.Fatalf("trial %d: cost increased for %v: %g -> %g", trial, row, origCost, simpCost)
					}
				}
			}
		}
	}
}

// Simplified greedy-planner output still matches expected-cost accounting.
func TestSimplifyExpectedCostNeverWorse(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 6, Cost: 2},
		schema.Attribute{Name: "b", K: 6, Cost: 7},
	)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		tbl := randomTable(rng, s, 150)
		d := stats.NewEmpirical(tbl)
		p := randomPlan(rng, s, 4)
		sp := Simplify(p, s)
		orig := ExpectedCostRoot(p, d)
		simp := ExpectedCostRoot(sp, d)
		if simp > orig+1e-9 {
			t.Fatalf("trial %d: expected cost increased %g -> %g", trial, orig, simp)
		}
	}
}

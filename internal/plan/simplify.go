package plan

import (
	"acqp/internal/query"
	"acqp/internal/schema"
)

// Simplify returns a semantically identical plan with redundant structure
// removed. Plans produced by the greedy planner can contain splits whose
// branches are equivalent, splits already decided by the path above them,
// and sequential predicates already proven true — dead weight that costs
// zeta(P) bytes of radio on every dissemination (Section 2.4) without
// changing a single acquisition.
//
// Rewrites applied (bottom-up, to fixpoint within one pass):
//
//   - a split whose threshold falls outside the reachable range of its
//     attribute collapses to the only reachable child;
//   - sequential predicates decided True by the reachable box are
//     dropped; a predicate decided False truncates the plan to a false
//     leaf;
//   - a split whose children are structurally identical collapses to one
//     child, unless the split acquires an attribute some child still
//     needs (removing it would change which attributes are paid for
//     before the children run — impossible here, since identical
//     children pay for it themselves);
//   - two identical leaves collapse trivially under the rule above.
//
// Simplify never changes the plan's output for any tuple, and never
// increases its acquisition cost: the collapsed splits either tested an
// attribute the path had already acquired (cost 0) or are re-acquired by
// the children exactly where the original would have.
func Simplify(n *Node, s *schema.Schema) *Node {
	return simplify(n, s, query.FullBox(s))
}

func simplify(n *Node, s *schema.Schema, box query.Box) *Node {
	switch n.Kind {
	case Leaf:
		return NewLeaf(n.Result)
	case Split:
		r := box[n.Attr]
		// Decided splits: only one child is reachable. Collapsing is
		// cost-safe only if the split was free (attribute already
		// acquired on this path); otherwise the split's acquisition may
		// be relied on by the subtree, so keep it.
		if box.Observed(n.Attr, s.K(n.Attr)) {
			if n.X <= r.Lo {
				return simplify(n.Right, s, box)
			}
			if int(n.X) > int(r.Hi) {
				return simplify(n.Left, s, box)
			}
		}
		lo := query.Range{Lo: r.Lo, Hi: clampHi(n.X-1, r)}
		hi := query.Range{Lo: clampLo(n.X, r), Hi: r.Hi}
		left := simplify(n.Left, s, box.With(n.Attr, lo))
		right := simplify(n.Right, s, box.With(n.Attr, hi))
		// Identical children: the split contributes nothing to the
		// output, so collapse to one child. Cost never increases: if the
		// subtree re-tests the attribute it simply pays the acquisition
		// at first use instead of at the removed split; if it never
		// touches the attribute, the acquisition is saved outright.
		if Equal(left, right) {
			return left
		}
		return NewSplit(n.Attr, n.X, left, right)
	case Seq:
		preds := make([]query.Pred, 0, len(n.Preds))
		for _, p := range n.Preds {
			switch p.EvalRange(box[p.Attr]) {
			case query.True:
				continue // already proven; evaluating it is a no-op
			case query.False:
				// The reachable range (or, for an unobserved attribute,
				// the full domain) already refutes the predicate, so no
				// acquisition is needed to output false, and everything
				// after it is unreachable.
				return NewLeaf(false)
			default:
				preds = append(preds, p)
			}
		}
		return NewSeq(preds)
	default:
		panic("plan: invalid node kind")
	}
}

// Equal reports structural equality of two plans.
func Equal(a, b *Node) bool {
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Leaf:
		return a.Result == b.Result
	case Split:
		return a.Attr == b.Attr && a.X == b.X && Equal(a.Left, b.Left) && Equal(a.Right, b.Right)
	default:
		if len(a.Preds) != len(b.Preds) {
			return false
		}
		for i := range a.Preds {
			if a.Preds[i] != b.Preds[i] {
				return false
			}
		}
		return true
	}
}

func clampHi(v schema.Value, r query.Range) schema.Value {
	if v > r.Hi {
		return r.Hi
	}
	return v
}

func clampLo(v schema.Value, r query.Range) schema.Value {
	if v < r.Lo {
		return r.Lo
	}
	return v
}

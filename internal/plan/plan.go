// Package plan defines the query plans of the paper and the machinery to
// execute, cost, size, serialize, and render them.
//
// A conditional plan (Section 2.1) is a binary decision tree whose
// interior nodes carry conditioning predicates T(X_i >= x) and whose
// leaves either output the truth value of the WHERE clause directly or
// hold a *sequential plan* — an ordered list of query predicates evaluated
// until one fails (Section 4.1). The greedy planner of Section 4.2
// produces exactly this shape: a small tree of splits with sequential
// plans at the leaves; the exhaustive planner of Section 3 produces pure
// split trees.
//
// An attribute is acquired (and its cost C_i paid) the first time any node
// on the root-to-leaf path touches it; all later references are free
// (Equation 1).
package plan

import (
	"fmt"

	"acqp/internal/query"
	"acqp/internal/schema"
)

// Kind discriminates plan node types.
type Kind int8

// Plan node kinds.
const (
	// Leaf outputs a constant truth value.
	Leaf Kind = iota
	// Split evaluates the conditioning predicate T(X_Attr >= X) and
	// descends into Left (false) or Right (true).
	Split
	// Seq evaluates Preds in order, outputting false at the first failed
	// predicate and true if all pass.
	Seq
)

// Node is one node of a plan. A Plan is simply its root *Node.
type Node struct {
	Kind Kind

	// Leaf fields.
	Result bool

	// Split fields: test X_Attr >= X.
	Attr        int
	X           schema.Value
	Left, Right *Node

	// Seq fields.
	Preds []query.Pred
}

// NewLeaf returns a leaf node with the given output.
func NewLeaf(result bool) *Node { return &Node{Kind: Leaf, Result: result} }

// NewSplit returns a split node testing X_attr >= x.
func NewSplit(attr int, x schema.Value, left, right *Node) *Node {
	return &Node{Kind: Split, Attr: attr, X: x, Left: left, Right: right}
}

// NewSeq returns a sequential-plan node over the given predicate order. An
// empty predicate list is the constant-true plan.
func NewSeq(preds []query.Pred) *Node {
	if len(preds) == 0 {
		return NewLeaf(true)
	}
	return &Node{Kind: Seq, Preds: append([]query.Pred(nil), preds...)}
}

// NumNodes returns the number of nodes in the plan (a Seq counts as one
// node per predicate, matching how it is encoded on the wire).
func (n *Node) NumNodes() int {
	switch n.Kind {
	case Leaf:
		return 1
	case Split:
		return 1 + n.Left.NumNodes() + n.Right.NumNodes()
	default:
		return len(n.Preds)
	}
}

// NumSplits returns the number of conditioning splits in the plan — the
// quantity the paper's Heuristic-k bounds (Section 6: "at most k
// conditional branches").
func (n *Node) NumSplits() int {
	if n.Kind != Split {
		return 0
	}
	return 1 + n.Left.NumSplits() + n.Right.NumSplits()
}

// Depth returns the height of the plan tree (a leaf or Seq has depth 1).
func (n *Node) Depth() int {
	if n.Kind != Split {
		return 1
	}
	l, r := n.Left.Depth(), n.Right.Depth()
	if r > l {
		l = r
	}
	return 1 + l
}

// Execute traverses the plan for one tuple, returning the plan's output
// and the acquisition cost incurred (Equation 1). The acquired scratch
// bitset must have one entry per schema attribute and be all-false; it is
// left dirty for the caller to reuse via resetAcquired.
func (n *Node) Execute(s *schema.Schema, row []schema.Value, acquired []bool) (result bool, cost float64) {
	cur := n
	for {
		switch cur.Kind {
		case Leaf:
			return cur.Result, cost
		case Split:
			if !acquired[cur.Attr] {
				cost += s.AcquisitionCost(cur.Attr, acquired)
				acquired[cur.Attr] = true
			}
			if row[cur.Attr] >= cur.X {
				cur = cur.Right
			} else {
				cur = cur.Left
			}
		case Seq:
			for _, p := range cur.Preds {
				if !acquired[p.Attr] {
					cost += s.AcquisitionCost(p.Attr, acquired)
					acquired[p.Attr] = true
				}
				if !p.Eval(row[p.Attr]) {
					return false, cost
				}
			}
			return true, cost
		default:
			panic(fmt.Sprintf("plan: invalid node kind %d", cur.Kind))
		}
	}
}

// Validate checks structural invariants of the plan against a schema:
// split thresholds lie strictly inside the attribute's domain, attribute
// indexes are in range, children of splits are present, and Seq nodes have
// at least one predicate.
func (n *Node) Validate(s *schema.Schema) error {
	switch n.Kind {
	case Leaf:
		return nil
	case Split:
		if n.Attr < 0 || n.Attr >= s.NumAttrs() {
			return fmt.Errorf("plan: split attribute %d out of range", n.Attr)
		}
		if n.X == 0 || int(n.X) >= s.K(n.Attr) {
			return fmt.Errorf("plan: split %s >= %d is degenerate for domain [0,%d)", s.Name(n.Attr), n.X, s.K(n.Attr))
		}
		if n.Left == nil || n.Right == nil {
			return fmt.Errorf("plan: split on %s has missing child", s.Name(n.Attr))
		}
		if err := n.Left.Validate(s); err != nil {
			return err
		}
		return n.Right.Validate(s)
	case Seq:
		if len(n.Preds) == 0 {
			return fmt.Errorf("plan: empty sequential node")
		}
		for _, p := range n.Preds {
			if p.Attr < 0 || p.Attr >= s.NumAttrs() {
				return fmt.Errorf("plan: seq predicate attribute %d out of range", p.Attr)
			}
			if !p.R.Valid() || int(p.R.Hi) >= s.K(p.Attr) {
				return fmt.Errorf("plan: seq predicate range %v invalid for %s", p.R, s.Name(p.Attr))
			}
		}
		return nil
	default:
		return fmt.Errorf("plan: invalid node kind %d", n.Kind)
	}
}

// Equivalent checks that the plan computes phi(x) for every tuple of the
// table, returning the first violating row index, or -1 if the plan is
// correct on the whole table. It is the exhaustive correctness check used
// in tests and by the executor's verify mode.
func (n *Node) Equivalent(s *schema.Schema, q query.Query, tbl interface {
	NumRows() int
	Row(int, []schema.Value) []schema.Value
}) int {
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, _ := n.Execute(s, row, acquired)
		if got != q.Eval(row) {
			return r
		}
	}
	return -1
}

// Attrs returns the set of attributes the plan may acquire, as a bitset
// indexed by attribute.
func (n *Node) Attrs(numAttrs int) []bool {
	set := make([]bool, numAttrs)
	n.collectAttrs(set)
	return set
}

func (n *Node) collectAttrs(set []bool) {
	switch n.Kind {
	case Split:
		set[n.Attr] = true
		n.Left.collectAttrs(set)
		n.Right.collectAttrs(set)
	case Seq:
		for _, p := range n.Preds {
			set[p.Attr] = true
		}
	}
}

package plan

import (
	"fmt"
	"strings"

	"acqp/internal/schema"
)

// Render returns a human-readable indented rendering of the plan, in the
// style of Figure 9 of the paper. Thresholds for attributes that carry a
// discretizer are shown in raw units.
func Render(n *Node, s *schema.Schema) string {
	var sb strings.Builder
	render(&sb, n, s, "")
	return sb.String()
}

func render(sb *strings.Builder, n *Node, s *schema.Schema, indent string) {
	switch n.Kind {
	case Leaf:
		if n.Result {
			sb.WriteString(indent + "=> T\n")
		} else {
			sb.WriteString(indent + "=> F\n")
		}
	case Split:
		sb.WriteString(indent + "if " + threshold(s, n.Attr, n.X) + ":\n")
		render(sb, n.Right, s, indent+"    ")
		sb.WriteString(indent + "else:\n")
		render(sb, n.Left, s, indent+"    ")
	case Seq:
		parts := make([]string, len(n.Preds))
		for i, p := range n.Preds {
			parts[i] = p.Format(s)
		}
		sb.WriteString(indent + "eval " + strings.Join(parts, " ; ") + "\n")
	}
}

func threshold(s *schema.Schema, attr int, x schema.Value) string {
	a := s.Attr(attr)
	if a.Disc != nil {
		return fmt.Sprintf("%s >= %.4g", a.Name, a.Disc.Lower(x))
	}
	return fmt.Sprintf("%s >= %d", a.Name, x)
}

// Dot returns a Graphviz rendering of the plan for visual inspection.
func Dot(n *Node, s *schema.Schema) string {
	var sb strings.Builder
	sb.WriteString("digraph plan {\n  node [shape=box fontname=\"Helvetica\"];\n")
	id := 0
	dot(&sb, n, s, &id)
	sb.WriteString("}\n")
	return sb.String()
}

func dot(sb *strings.Builder, n *Node, s *schema.Schema, id *int) int {
	me := *id
	*id++
	switch n.Kind {
	case Leaf:
		label := "F"
		if n.Result {
			label = "T"
		}
		fmt.Fprintf(sb, "  n%d [label=%q shape=circle];\n", me, label)
	case Split:
		fmt.Fprintf(sb, "  n%d [label=%q];\n", me, threshold(s, n.Attr, n.X))
		l := dot(sb, n.Left, s, id)
		r := dot(sb, n.Right, s, id)
		fmt.Fprintf(sb, "  n%d -> n%d [label=\"no\"];\n", me, l)
		fmt.Fprintf(sb, "  n%d -> n%d [label=\"yes\"];\n", me, r)
	case Seq:
		parts := make([]string, len(n.Preds))
		for i, p := range n.Preds {
			parts[i] = p.Format(s)
		}
		fmt.Fprintf(sb, "  n%d [label=%q shape=note];\n", me, strings.Join(parts, "\\n"))
	}
	return me
}

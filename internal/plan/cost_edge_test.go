package plan

import (
	"math"
	"testing"

	"acqp/internal/floats"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// The cost-model edge cases of Equation (3): degenerate splits that leave
// only one reachable branch, sequences whose reach probability hits zero,
// and re-acquisition of already-observed attributes.

func costSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "a", K: 4, Cost: 10},
		schema.Attribute{Name: "b", K: 4, Cost: 5},
	)
}

// costDist holds a uniform on both attributes: a cycles 0..3, b repeats
// each value twice, so P(a >= 2) = 1/2 exactly.
func costDist() (*schema.Schema, *stats.Empirical) {
	s := costSchema()
	tbl := table.New(s, 8)
	for i := 0; i < 8; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i % 4), schema.Value(i / 2 % 4)})
	}
	return s, stats.NewEmpirical(tbl)
}

var bPred = query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}}

// TestDegenerateSplitLow: a split at x <= r.Lo sends all probability mass
// right (pRight = 1); the left subtree must contribute nothing even when
// it would be expensive.
func TestDegenerateSplitLow(t *testing.T) {
	_, d := costDist()
	n := NewSplit(0, 0, NewSeq([]query.Pred{bPred}), NewLeaf(true))
	got := ExpectedCostRoot(n, d)
	if !floats.Eq(got, 10) {
		t.Errorf("cost = %v, want 10 (acquire a, right leaf only)", got)
	}
}

// TestDegenerateSplitHigh: a split above the range (int(x) > int(r.Hi))
// sends all mass left (pRight = 0); the right subtree contributes nothing.
func TestDegenerateSplitHigh(t *testing.T) {
	_, d := costDist()
	n := NewSplit(0, 4, NewLeaf(false), NewSeq([]query.Pred{bPred}))
	got := ExpectedCostRoot(n, d)
	if !floats.Eq(got, 10) {
		t.Errorf("cost = %v, want 10 (acquire a, left leaf only)", got)
	}
}

// TestSplitBranchWeighting: an interior split charges each subtree by its
// branch probability: C = C_a + P(a < 2)*0 + P(a >= 2)*C_b.
func TestSplitBranchWeighting(t *testing.T) {
	_, d := costDist()
	n := NewSplit(0, 2, NewLeaf(false), NewSeq([]query.Pred{bPred}))
	got := ExpectedCostRoot(n, d)
	if want := 10 + 0.5*5; !floats.Eq(got, want) {
		t.Errorf("cost = %v, want %v", got, want)
	}
}

// TestSeqReachZero: once a predicate's satisfaction probability drives the
// reach to zero, later predicates are unreachable and must not be charged.
func TestSeqReachZero(t *testing.T) {
	s := costSchema()
	tbl := table.New(s, 4)
	for i := 0; i < 4; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i % 2), schema.Value(i)})
	}
	d := stats.NewEmpirical(tbl)
	impossible := query.Pred{Attr: 0, R: query.Range{Lo: 2, Hi: 3}} // a is only ever 0 or 1
	n := NewSeq([]query.Pred{impossible, bPred})
	got := ExpectedCostRoot(n, d)
	if !floats.Eq(got, 10) {
		t.Errorf("cost = %v, want 10 (b is unreachable after an impossible predicate)", got)
	}
}

// TestSeqObservedAttributesAreFree: attributes already restricted in the
// box (observed on the path) or acquired by an earlier predicate of the
// same sequence cost nothing again.
func TestSeqObservedAttributesAreFree(t *testing.T) {
	s, d := costDist()
	r := query.Range{Lo: 0, Hi: 1}
	c := d.Root().RestrictRange(0, r)
	box := query.FullBox(s).With(0, r)
	aPred := query.Pred{Attr: 0, R: query.Range{Lo: 0, Hi: 0}}
	if got := ExpectedCost(NewSeq([]query.Pred{aPred}), s, c, box); !floats.Zero(got) {
		t.Errorf("cost = %v, want 0 for an already-observed attribute", got)
	}
	// Within one sequence, the second predicate on `a` re-tests for free;
	// always-true first predicate keeps the reach at 1.
	wide := query.Pred{Attr: 0, R: query.Range{Lo: 0, Hi: 3}}
	n := NewSeq([]query.Pred{wide, aPred})
	if got := ExpectedCostRoot(n, d); !floats.Eq(got, 10) {
		t.Errorf("cost = %v, want 10 (single acquisition of a)", got)
	}
}

// TestCostFiniteNonNegative sweeps every split point, including ones
// outside the domain and unsupported (zero-weight) contexts: costs must
// stay finite, non-negative, and bounded by the total acquisition cost.
func TestCostFiniteNonNegative(t *testing.T) {
	s, d := costDist()
	const totalCost = 10 + 5
	for x := 0; x <= 4; x++ {
		n := NewSplit(0, schema.Value(x), NewSeq([]query.Pred{bPred}), NewSeq([]query.Pred{bPred}))
		got := ExpectedCostRoot(n, d)
		if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || !floats.Leq(got, totalCost) {
			t.Errorf("split at %d: cost = %v, want finite in [0, %d]", x, got, totalCost)
		}
	}
	// Unsupported context: no row has b = 3 after restricting b to 0, so
	// the context weight is zero and probabilities fall back to uniform;
	// the cost must still be finite.
	c := d.Root().RestrictRange(1, query.Range{Lo: 0, Hi: 0}).RestrictRange(1, query.Range{Lo: 3, Hi: 3})
	box := query.FullBox(s).With(1, query.Range{Lo: 3, Hi: 3})
	aPred := query.Pred{Attr: 0, R: query.Range{Lo: 1, Hi: 2}}
	got := ExpectedCost(NewSeq([]query.Pred{aPred, bPred}), s, c, box)
	if math.IsNaN(got) || math.IsInf(got, 0) || got < 0 || !floats.Leq(got, totalCost) {
		t.Errorf("zero-weight context: cost = %v, want finite in [0, %d]", got, totalCost)
	}
}

package plan

import (
	"encoding/binary"
	"fmt"

	"acqp/internal/query"
	"acqp/internal/schema"
)

// Wire format. Plans are disseminated to sensor nodes over a low-bandwidth
// radio (Section 2.4), so the encoding is deliberately compact: a two-byte
// header followed by a pre-order node stream using unsigned varints.
//
//	header:  'A' 'Q'
//	leaf:    0x00|result
//	split:   0x02, attr uvarint, x uvarint, len(left) uvarint, left, right
//	seq:     0x03, count uvarint, then per predicate:
//	         flags (bit0 = negated), attr uvarint, lo uvarint, hi uvarint
//
// Size(P) (the paper's zeta(P)) is the length of this encoding in bytes.
const (
	wireMagic0 = 'A'
	wireMagic1 = 'Q'

	opLeafFalse = 0x00
	opLeafTrue  = 0x01
	opSplit     = 0x02
	opSeq       = 0x03
)

// Encode serializes the plan to its wire format.
func Encode(n *Node) []byte {
	buf := []byte{wireMagic0, wireMagic1}
	return appendNode(buf, n)
}

// Size returns zeta(P), the size of the plan in bytes on the wire
// (Section 2.4's communication cost term).
func Size(n *Node) int { return len(Encode(n)) }

func appendNode(buf []byte, n *Node) []byte {
	switch n.Kind {
	case Leaf:
		if n.Result {
			return append(buf, opLeafTrue)
		}
		return append(buf, opLeafFalse)
	case Split:
		buf = append(buf, opSplit)
		buf = binary.AppendUvarint(buf, uint64(n.Attr))
		buf = binary.AppendUvarint(buf, uint64(n.X))
		left := appendNode(nil, n.Left)
		buf = binary.AppendUvarint(buf, uint64(len(left)))
		buf = append(buf, left...)
		return appendNode(buf, n.Right)
	case Seq:
		buf = append(buf, opSeq)
		buf = binary.AppendUvarint(buf, uint64(len(n.Preds)))
		for _, p := range n.Preds {
			var flags byte
			if p.Negated {
				flags |= 1
			}
			buf = append(buf, flags)
			buf = binary.AppendUvarint(buf, uint64(p.Attr))
			buf = binary.AppendUvarint(buf, uint64(p.R.Lo))
			buf = binary.AppendUvarint(buf, uint64(p.R.Hi))
		}
		return buf
	default:
		panic("plan: invalid node kind")
	}
}

// Decode parses a wire-format plan and validates it against the schema,
// as a sensor node would before installing a disseminated plan.
func Decode(s *schema.Schema, data []byte) (*Node, error) {
	if len(data) < 3 || data[0] != wireMagic0 || data[1] != wireMagic1 {
		return nil, fmt.Errorf("plan: bad magic")
	}
	n, rest, err := decodeNode(data[2:])
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("plan: %d trailing bytes", len(rest))
	}
	if err := n.Validate(s); err != nil {
		return nil, err
	}
	return n, nil
}

func decodeNode(data []byte) (*Node, []byte, error) {
	if len(data) == 0 {
		return nil, nil, fmt.Errorf("plan: truncated node")
	}
	op, data := data[0], data[1:]
	switch op {
	case opLeafFalse, opLeafTrue:
		return NewLeaf(op == opLeafTrue), data, nil
	case opSplit:
		attr, data, err := readUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		x, data, err := readUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		leftLen, data, err := readUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		if leftLen > uint64(len(data)) {
			return nil, nil, fmt.Errorf("plan: left subtree length %d exceeds remaining %d bytes", leftLen, len(data))
		}
		left, rest, err := decodeNode(data[:leftLen])
		if err != nil {
			return nil, nil, err
		}
		if len(rest) != 0 {
			return nil, nil, fmt.Errorf("plan: left subtree has trailing bytes")
		}
		right, data, err := decodeNode(data[leftLen:])
		if err != nil {
			return nil, nil, err
		}
		if x > uint64(schema.MaxDomain) {
			return nil, nil, fmt.Errorf("plan: split threshold %d out of range", x)
		}
		return NewSplit(int(attr), schema.Value(x), left, right), data, nil
	case opSeq:
		count, data, err := readUvarint(data)
		if err != nil {
			return nil, nil, err
		}
		if count == 0 || count > 4096 {
			return nil, nil, fmt.Errorf("plan: seq predicate count %d out of range", count)
		}
		preds := make([]query.Pred, 0, count)
		for i := uint64(0); i < count; i++ {
			if len(data) == 0 {
				return nil, nil, fmt.Errorf("plan: truncated seq predicate")
			}
			flags := data[0]
			data = data[1:]
			var attr, lo, hi uint64
			if attr, data, err = readUvarint(data); err != nil {
				return nil, nil, err
			}
			if lo, data, err = readUvarint(data); err != nil {
				return nil, nil, err
			}
			if hi, data, err = readUvarint(data); err != nil {
				return nil, nil, err
			}
			if lo > uint64(schema.MaxDomain) || hi > uint64(schema.MaxDomain) {
				return nil, nil, fmt.Errorf("plan: seq predicate range out of bounds")
			}
			preds = append(preds, query.Pred{
				Attr:    int(attr),
				R:       query.Range{Lo: schema.Value(lo), Hi: schema.Value(hi)},
				Negated: flags&1 != 0,
			})
		}
		return NewSeq(preds), data, nil
	default:
		return nil, nil, fmt.Errorf("plan: unknown opcode 0x%02x", op)
	}
}

func readUvarint(data []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("plan: bad varint")
	}
	return v, data[n:], nil
}

package plan

import (
	"acqp/internal/floats"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
)

// ExpectedCost evaluates Equation (3) of the paper: the expected
// acquisition cost of the plan under the conditioning context c, which
// must already be restricted to the given box (the evidence t gathered so
// far). For the cost of a complete plan, pass the distribution's root
// context and the full box.
func ExpectedCost(n *Node, s *schema.Schema, c stats.Cond, box query.Box) float64 {
	switch n.Kind {
	case Leaf:
		return 0
	case Split:
		var atomic float64
		if !box.Observed(n.Attr, s.K(n.Attr)) {
			atomic = s.AcquisitionCostWith(n.Attr, func(i int) bool {
				return box.Observed(i, s.K(i))
			})
		}
		r := box[n.Attr]
		// P(X >= x | evidence); clamp the split into the current range so
		// degenerate splits cost through the single reachable branch.
		var pRight float64
		switch {
		case n.X <= r.Lo:
			pRight = 1
		case int(n.X) > int(r.Hi):
			pRight = 0
		default:
			pRight = c.ProbRange(n.Attr, query.Range{Lo: n.X, Hi: r.Hi})
		}
		cost := atomic
		if pLeft := 1 - pRight; pLeft > 0 {
			lr := query.Range{Lo: r.Lo, Hi: n.X - 1}
			cost += pLeft * ExpectedCost(n.Left, s, c.RestrictRange(n.Attr, lr), box.With(n.Attr, lr))
		}
		if pRight > 0 {
			rr := query.Range{Lo: maxVal(n.X, r.Lo), Hi: r.Hi}
			cost += pRight * ExpectedCost(n.Right, s, c.RestrictRange(n.Attr, rr), box.With(n.Attr, rr))
		}
		return cost
	case Seq:
		return expectedSeqCost(n.Preds, s, c, box)
	default:
		panic("plan: invalid node kind")
	}
}

// expectedSeqCost computes the expected cost of evaluating the predicates
// in order, stopping at the first failure. Attributes already observed on
// the path (restricted in the box) or by an earlier predicate of the same
// sequence cost nothing to re-test.
func expectedSeqCost(preds []query.Pred, s *schema.Schema, c stats.Cond, box query.Box) float64 {
	acquired := make(map[int]bool, len(preds))
	isAcq := func(i int) bool { return acquired[i] || box.Observed(i, s.K(i)) }
	total := 0.0
	reach := 1.0 // probability execution reaches the current predicate
	for _, p := range preds {
		if !isAcq(p.Attr) {
			total += reach * s.AcquisitionCostWith(p.Attr, isAcq)
		}
		acquired[p.Attr] = true
		pSat := c.ProbPred(p)
		reach *= pSat
		if floats.Zero(reach) {
			// The remaining predicates are unreachable (or carry
			// negligible probability mass); their cost contributes
			// nothing.
			break
		}
		c = c.RestrictPred(p, true)
	}
	return total
}

// ExpectedCostRoot is ExpectedCost evaluated from an unconditioned
// distribution: C(P, {}) in the paper's notation.
func ExpectedCostRoot(n *Node, d stats.Dist) float64 {
	s := d.Schema()
	return ExpectedCost(n, s, d.Root(), query.FullBox(s))
}

func maxVal(a, b schema.Value) schema.Value {
	if a > b {
		return a
	}
	return b
}

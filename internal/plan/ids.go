package plan

// Node identity for tracing (internal/trace): a node's ID is its index
// in the pre-order traversal of the plan (root=0, then the false child,
// then the true child; Leaf and Seq nodes are single entries regardless
// of predicate count).
//
// Stability rule: both planners are plan-deterministic — the same
// statistics epoch, query, and planner parameters produce a
// byte-identical tree — so pre-order indices are stable across runs for
// the same plan and can be compared across processes. IDs are NOT
// stable across different plans: any change to statistics or planner
// parameters yields a new tree with its own numbering, which is why the
// /v1 API always returns the rendered plan alongside per-node data.

import "strconv"

// Preorder returns the plan's nodes in pre-order; the slice index is
// the node's ID.
func (n *Node) Preorder() []*Node {
	if n == nil {
		return nil
	}
	out := make([]*Node, 0, 8)
	var walk func(*Node)
	walk = func(cur *Node) {
		out = append(out, cur)
		if cur.Kind == Split {
			walk(cur.Left)
			walk(cur.Right)
		}
	}
	walk(n)
	return out
}

// NodeIDs maps each node of the plan to its pre-order ID. Executors use
// it to attribute acquisition cost to nodes; nodes not in the map (for
// example, nodes of a replanned residual plan) have no ID.
func NodeIDs(root *Node) map[*Node]int {
	nodes := root.Preorder()
	ids := make(map[*Node]int, len(nodes))
	for i, nd := range nodes {
		ids[nd] = i
	}
	return ids
}

// NodeLabel renders a short human-readable label for a node, used by
// cost-heatmap output: "split attr>=x", "seq a,b,c", "leaf true".
func NodeLabel(n *Node, name func(attr int) string) string {
	switch n.Kind {
	case Leaf:
		if n.Result {
			return "leaf true"
		}
		return "leaf false"
	case Split:
		return "split " + name(n.Attr) + ">=" + strconv.Itoa(int(n.X))
	default:
		s := "seq "
		for i, p := range n.Preds {
			if i > 0 {
				s += ","
			}
			s += name(p.Attr)
		}
		return s
	}
}

package plan

import (
	"strconv"
	"testing"

	"acqp/internal/query"
)

func TestPreorderIDs(t *testing.T) {
	// split(a0)
	//   L: seq(p1)
	//   R: split(a1)
	//        L: leaf false
	//        R: leaf true
	seq := NewSeq([]query.Pred{{Attr: 1, R: query.Range{Lo: 0, Hi: 3}}})
	inner := NewSplit(1, 2, NewLeaf(false), NewLeaf(true))
	root := NewSplit(0, 1, seq, inner)

	nodes := root.Preorder()
	if len(nodes) != 5 {
		t.Fatalf("Preorder returned %d nodes, want 5", len(nodes))
	}
	want := []*Node{root, seq, inner, inner.Left, inner.Right}
	for i, nd := range want {
		if nodes[i] != nd {
			t.Fatalf("Preorder[%d] wrong node", i)
		}
	}

	ids := NodeIDs(root)
	if len(ids) != 5 {
		t.Fatalf("NodeIDs has %d entries, want 5", len(ids))
	}
	for i, nd := range want {
		if ids[nd] != i {
			t.Fatalf("NodeIDs[%v] = %d, want %d", nd, ids[nd], i)
		}
	}
}

func TestPreorderStableAcrossCalls(t *testing.T) {
	root := NewSplit(0, 1, NewLeaf(false), NewSplit(1, 3, NewLeaf(false), NewLeaf(true)))
	a, b := root.Preorder(), root.Preorder()
	if len(a) != len(b) {
		t.Fatalf("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Preorder not stable at %d", i)
		}
	}
}

func TestPreorderNil(t *testing.T) {
	var n *Node
	if got := n.Preorder(); got != nil {
		t.Fatalf("nil Preorder = %v", got)
	}
}

func TestNodeLabel(t *testing.T) {
	name := func(a int) string { return "x" + strconv.Itoa(a) }
	if got := NodeLabel(NewLeaf(true), name); got != "leaf true" {
		t.Fatalf("leaf true label = %q", got)
	}
	if got := NodeLabel(NewLeaf(false), name); got != "leaf false" {
		t.Fatalf("leaf false label = %q", got)
	}
	if got := NodeLabel(NewSplit(2, 5, NewLeaf(false), NewLeaf(true)), name); got != "split x2>=5" {
		t.Fatalf("split label = %q", got)
	}
	seq := NewSeq([]query.Pred{
		{Attr: 0, R: query.Range{Lo: 0, Hi: 1}},
		{Attr: 3, R: query.Range{Lo: 0, Hi: 1}},
	})
	if got := NodeLabel(seq, name); got != "seq x0,x3" {
		t.Fatalf("seq label = %q", got)
	}
}

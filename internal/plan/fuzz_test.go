package plan

import (
	"math/rand"
	"testing"

	"acqp/internal/schema"
)

// fuzzSchema is the schema malformed-input decoding is checked against.
func fuzzSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "a", K: 8, Cost: 1},
		schema.Attribute{Name: "b", K: 16, Cost: 100},
	)
}

// FuzzDecode feeds arbitrary bytes to the wire decoder: a mote must
// reject corrupt plans with an error, never a panic, and any plan that
// decodes must validate.
func FuzzDecode(f *testing.F) {
	s := fuzzSchema()
	f.Add([]byte{})
	f.Add([]byte{'A', 'Q', 0x01})
	f.Add(Encode(NewSplit(1, 7, NewLeaf(false), NewLeaf(true))))
	f.Fuzz(func(t *testing.T, data []byte) {
		n, err := Decode(s, data)
		if err == nil {
			if vErr := n.Validate(s); vErr != nil {
				t.Fatalf("Decode returned invalid plan: %v", vErr)
			}
		}
	})
}

// TestDecodeNeverPanicsOnRandomBytes is the always-on property version of
// FuzzDecode: random byte strings (including mutations of valid
// encodings) must never panic the decoder.
func TestDecodeNeverPanicsOnRandomBytes(t *testing.T) {
	s := fuzzSchema()
	rng := rand.New(rand.NewSource(123))
	valid := Encode(NewSplit(1, 7,
		NewSeq(nil),
		NewSplit(0, 3, NewLeaf(false), NewLeaf(true)),
	))
	for trial := 0; trial < 5000; trial++ {
		var data []byte
		if trial%2 == 0 {
			// Pure noise.
			data = make([]byte, rng.Intn(40))
			rng.Read(data)
		} else {
			// Corrupted valid encoding: flip a few bytes.
			data = append([]byte(nil), valid...)
			for k := 0; k < 1+rng.Intn(3); k++ {
				if len(data) > 0 {
					data[rng.Intn(len(data))] = byte(rng.Intn(256))
				}
			}
		}
		n, err := Decode(s, data) // must not panic
		if err == nil {
			if vErr := n.Validate(s); vErr != nil {
				t.Fatalf("decoded plan fails validation: %v (input %x)", vErr, data)
			}
		}
	}
}

// TestDecodeDepthBomb guards against stack exhaustion from deeply nested
// split encodings.
func TestDecodeDepthBomb(t *testing.T) {
	s := fuzzSchema()
	// Build a deeply right-nested plan and make sure round-tripping it
	// works (bounded recursion, no quadratic blowup).
	n := NewLeaf(true)
	for i := 0; i < 2000; i++ {
		n = NewSplit(0, 3, NewLeaf(false), n)
	}
	enc := Encode(n)
	got, err := Decode(s, enc)
	if err != nil {
		t.Fatalf("deep plan rejected: %v", err)
	}
	if got.NumSplits() != 2000 {
		t.Fatalf("deep plan lost splits: %d", got.NumSplits())
	}
}

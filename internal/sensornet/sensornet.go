// Package sensornet simulates the query processing architecture of
// Figure 4 of the paper: a basestation builds conditional plans offline
// from historical data, disseminates them over a multihop radio to the
// motes, each mote executes the plan locally against its readings every
// epoch, and satisfying results are routed back to the basestation.
//
// The simulator realizes the communication cost model of Section 2.4: the
// plan's wire size zeta(P) is charged per byte per hop when disseminated,
// so large conditional plans trade acquisition savings against radio
// cost — the C(P) + alpha*zeta(P) optimization the paper sketches.
package sensornet

import (
	"fmt"

	"acqp/internal/exec"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// RadioModel prices radio traffic. Energy is in the same abstract units as
// attribute acquisition costs.
type RadioModel struct {
	// CostPerByte is the energy to transmit one byte one hop.
	CostPerByte float64
	// ResultBytes is the payload size of one reported result tuple.
	ResultBytes int
}

// DefaultRadio reflects the paper's setting where radio bytes are cheap
// relative to a 100-unit sensor acquisition but not free.
func DefaultRadio() RadioModel { return RadioModel{CostPerByte: 0.4, ResultBytes: 16} }

// Topology places motes in a routing tree; Hops[m] is the hop count from
// the basestation to mote m (at least 1).
type Topology struct {
	Hops []int
}

// LineTopology returns a chain of motes: mote m is m+1 hops out — the
// worst case for dissemination cost.
func LineTopology(motes int) Topology {
	h := make([]int, motes)
	for i := range h {
		h[i] = i + 1
	}
	return Topology{Hops: h}
}

// StarTopology returns all motes one hop from the basestation.
func StarTopology(motes int) Topology {
	h := make([]int, motes)
	for i := range h {
		h[i] = 1
	}
	return Topology{Hops: h}
}

// MoteStats accumulates one mote's energy use. The fault fields stay zero
// unless a FaultProfile is installed with SetFaults.
type MoteStats struct {
	Tuples            int
	Results           int
	AcquisitionEnergy float64
	RadioEnergy       float64
	Mismatches        int

	// Fault-path fields.
	Failures  int
	Retries   int
	Abstained int
}

// Stats summarizes a simulation run.
type Stats struct {
	Epochs              int
	TuplesProcessed     int
	ResultsReported     int
	AcquisitionEnergy   float64
	DisseminationEnergy float64
	ResultRadioEnergy   float64
	PlanBytes           int
	PerMote             []MoteStats
	Mismatches          int

	// Fault-path fields (all zero unless SetFaults installed a profile;
	// with an all-zero profile they stay zero and every field above is
	// byte-identical to the fault-free run).
	Retransmissions  int     // extra radio transmissions forced by lossy links
	UndeliveredPlans int     // motes the plan never reached
	LostResults      int     // satisfying results dropped en route to the base
	LostTuples       int     // tuples unprocessed (dead mote or missing plan)
	Failures         int     // acquisitions that ultimately failed
	Retries          int     // acquisition retry attempts
	RetryEnergy      float64 // portion of AcquisitionEnergy spent on retries
	StaleReads       int
	Abstained        int
	Imputed          int
	Replans          int
	FalsePositives   int // fault-touched wrong answers (vs Mismatches: planner bugs)
	FalseNegatives   int
}

// TotalEnergy returns all energy spent in the run: dissemination +
// acquisitions + result reporting.
func (s Stats) TotalEnergy() float64 {
	return s.DisseminationEnergy + s.AcquisitionEnergy + s.ResultRadioEnergy
}

// EnergyPerTuple returns the amortized energy per processed tuple, the
// quantity that determines network lifetime.
func (s Stats) EnergyPerTuple() float64 {
	if s.TuplesProcessed == 0 {
		return 0
	}
	return s.TotalEnergy() / float64(s.TuplesProcessed)
}

func (s Stats) String() string {
	return fmt.Sprintf("epochs=%d tuples=%d results=%d energy{acq=%.0f dissem=%.0f radio=%.0f total=%.0f} plan=%dB",
		s.Epochs, s.TuplesProcessed, s.ResultsReported,
		s.AcquisitionEnergy, s.DisseminationEnergy, s.ResultRadioEnergy, s.TotalEnergy(), s.PlanBytes)
}

// Network is a simulated deployment executing one continuous query.
type Network struct {
	schema *schema.Schema
	query  query.Query
	radio  RadioModel
	topo   Topology
	motes  []*mote

	// Fault state (nil profile = pristine network, original code paths).
	faults        *FaultProfile
	dissemRetrans int
	undelivered   int
}

type mote struct {
	id       int
	plan     *plan.Node
	acquired []bool
	stats    MoteStats
	planLost bool // dissemination never reached this mote
	ex       *exec.TupleExecutor
}

// New builds a network of len(topo.Hops) motes.
func New(s *schema.Schema, q query.Query, radio RadioModel, topo Topology) (*Network, error) {
	if len(topo.Hops) == 0 {
		return nil, fmt.Errorf("sensornet: topology has no motes")
	}
	for m, h := range topo.Hops {
		if h < 1 {
			return nil, fmt.Errorf("sensornet: mote %d has hop count %d < 1", m, h)
		}
	}
	n := &Network{schema: s, query: q, radio: radio, topo: topo}
	for i := range topo.Hops {
		n.motes = append(n.motes, &mote{id: i, acquired: make([]bool, s.NumAttrs())})
	}
	return n, nil
}

// NumMotes returns the deployment size.
func (n *Network) NumMotes() int { return len(n.motes) }

// Disseminate encodes the plan, "transmits" it to every mote (charging
// zeta(P) bytes per hop), and has each mote decode and validate its own
// copy — the full basestation-to-network path of Figure 4. It returns the
// dissemination energy charged.
func (n *Network) Disseminate(p *plan.Node) (float64, error) {
	wire := plan.Encode(p)
	if n.faults != nil {
		return n.disseminateFaulty(wire)
	}
	var energy float64
	for i, m := range n.motes {
		decoded, err := plan.Decode(n.schema, wire)
		if err != nil {
			return 0, fmt.Errorf("sensornet: mote %d rejected plan: %w", i, err)
		}
		m.plan = decoded
		energy += float64(len(wire)) * n.radio.CostPerByte * float64(n.topo.Hops[i])
	}
	return energy, nil
}

// Run executes the continuous query over the world table: row r is the
// reading observed by mote r%NumMotes at epoch r/NumMotes. Disseminate
// must have been called first.
func (n *Network) Run(world *table.Table) (Stats, error) {
	if n.faults != nil {
		return n.runFaulty(world)
	}
	st := Stats{PerMote: make([]MoteStats, len(n.motes))}
	for _, m := range n.motes {
		if m.plan == nil {
			return st, fmt.Errorf("sensornet: mote %d has no plan; call Disseminate first", m.id)
		}
		m.stats = MoteStats{}
	}
	var row []schema.Value
	for r := 0; r < world.NumRows(); r++ {
		m := n.motes[r%len(n.motes)]
		row = world.Row(r, row)
		for i := range m.acquired {
			m.acquired[i] = false
		}
		result, cost := m.plan.Execute(n.schema, row, m.acquired)
		m.stats.Tuples++
		m.stats.AcquisitionEnergy += cost
		if result != n.query.Eval(row) {
			m.stats.Mismatches++
		}
		if result {
			m.stats.Results++
			m.stats.RadioEnergy += float64(n.radio.ResultBytes) * n.radio.CostPerByte * float64(n.topo.Hops[m.id])
		}
	}
	for i, m := range n.motes {
		st.PerMote[i] = m.stats
		st.TuplesProcessed += m.stats.Tuples
		st.ResultsReported += m.stats.Results
		st.AcquisitionEnergy += m.stats.AcquisitionEnergy
		st.ResultRadioEnergy += m.stats.RadioEnergy
		st.Mismatches += m.stats.Mismatches
	}
	st.Epochs = (world.NumRows() + len(n.motes) - 1) / len(n.motes)
	return st, nil
}

// Deploy is the full Figure 4 pipeline in one call: disseminate the plan,
// run the query over the world, and return combined statistics.
func (n *Network) Deploy(p *plan.Node, world *table.Table) (Stats, error) {
	dissem, err := n.Disseminate(p)
	if err != nil {
		return Stats{}, err
	}
	st, err := n.Run(world)
	if err != nil {
		return Stats{}, err
	}
	st.DisseminationEnergy = dissem
	st.PlanBytes = plan.Size(p)
	st.Retransmissions += n.dissemRetrans
	st.UndeliveredPlans = n.undelivered
	return st, nil
}

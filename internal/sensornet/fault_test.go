package sensornet

import (
	"reflect"
	"testing"

	"acqp/internal/exec"
	"acqp/internal/fault"
	"acqp/internal/plan"
	"acqp/internal/table"
)

func TestZeroFaultProfileIsByteIdentical(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	w := world(64)

	pristine, err := New(s, q, DefaultRadio(), LineTopology(4))
	if err != nil {
		t.Fatal(err)
	}
	base, err := pristine.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}

	faulty, err := New(s, q, DefaultRadio(), LineTopology(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty.SetFaults(&FaultProfile{}); err != nil {
		t.Fatal(err)
	}
	got, err := faulty.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, base) {
		t.Errorf("zero-fault profile diverges from pristine network:\n got %+v\nwant %+v", got, base)
	}

	// Same with an inactive injector configured explicitly.
	faulty2, err := New(s, q, DefaultRadio(), LineTopology(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := faulty2.SetFaults(&FaultProfile{Exec: exec.FaultConfig{
		Injector: fault.NewInjector(s.NumAttrs(), 123),
		Retrier:  fault.DefaultRetrier(),
	}}); err != nil {
		t.Fatal(err)
	}
	got2, err := faulty2.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, base) {
		t.Errorf("inactive injector diverges from pristine network:\n got %+v\nwant %+v", got2, base)
	}
}

func TestLossyLinksChargeRetransmissions(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	w := world(200)

	mk := func(fp *FaultProfile) Stats {
		t.Helper()
		n, err := New(s, q, DefaultRadio(), LineTopology(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := n.SetFaults(fp); err != nil {
			t.Fatal(err)
		}
		st, err := n.Deploy(p, w)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	base := mk(&FaultProfile{})
	lossy := mk(&FaultProfile{
		DissemLink: fault.Link{Seed: 1, PDrop: 0.3, MaxRetransmits: 4},
		ReportLink: fault.Link{Seed: 2, PDrop: 0.3, MaxRetransmits: 4},
	})
	if lossy.Retransmissions == 0 {
		t.Fatal("no retransmissions at PDrop=0.3")
	}
	if lossy.DisseminationEnergy <= base.DisseminationEnergy {
		t.Errorf("dissemination energy %f not above lossless %f", lossy.DisseminationEnergy, base.DisseminationEnergy)
	}
	if lossy.TotalEnergy() < 0 || lossy.AcquisitionEnergy < 0 || lossy.RetryEnergy < 0 {
		t.Errorf("negative energy in %+v", lossy)
	}
	// Deterministic: the same seeds reproduce the exact run.
	again := mk(&FaultProfile{
		DissemLink: fault.Link{Seed: 1, PDrop: 0.3, MaxRetransmits: 4},
		ReportLink: fault.Link{Seed: 2, PDrop: 0.3, MaxRetransmits: 4},
	})
	if !reflect.DeepEqual(lossy, again) {
		t.Error("seeded lossy run not reproducible")
	}

	// A hopeless dissemination link leaves far motes planless: their
	// tuples are lost, not crashed on.
	dark := mk(&FaultProfile{DissemLink: fault.Link{Seed: 3, PDrop: 1}})
	if dark.UndeliveredPlans != 5 {
		t.Errorf("UndeliveredPlans = %d, want 5", dark.UndeliveredPlans)
	}
	if dark.LostTuples != 200 || dark.TuplesProcessed != 0 {
		t.Errorf("lost=%d processed=%d, want 200/0", dark.LostTuples, dark.TuplesProcessed)
	}

	// A hopeless report link loses every result but still charges the
	// first-hop transmissions.
	mute := mk(&FaultProfile{ReportLink: fault.Link{Seed: 4, PDrop: 1}})
	if mute.ResultsReported != 0 || mute.LostResults != base.ResultsReported {
		t.Errorf("reported=%d lost=%d, want 0/%d", mute.ResultsReported, mute.LostResults, base.ResultsReported)
	}
}

func TestMoteDeathMidRun(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	w := world(80) // 4 motes x 20 epochs

	n, err := New(s, q, DefaultRadio(), StarTopology(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFaults(&FaultProfile{MoteDeadFrom: map[int]int{2: 5}}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.LostTuples != 15 { // epochs 5..19 on mote 2
		t.Errorf("LostTuples = %d, want 15", st.LostTuples)
	}
	if st.PerMote[2].Tuples != 5 {
		t.Errorf("dead mote processed %d tuples, want 5", st.PerMote[2].Tuples)
	}
	if st.TuplesProcessed != 65 {
		t.Errorf("TuplesProcessed = %d, want 65", st.TuplesProcessed)
	}

	if err := n.SetFaults(&FaultProfile{MoteDeadFrom: map[int]int{9: 0}}); err == nil {
		t.Error("out-of-range mote id accepted")
	}
	if err := n.SetFaults(&FaultProfile{MoteDeadFrom: map[int]int{0: -1}}); err == nil {
		t.Error("negative death epoch accepted")
	}
	if err := n.SetFaults(&FaultProfile{Exec: exec.FaultConfig{Injector: fault.NewInjector(1, 0)}}); err == nil {
		t.Error("injector/schema mismatch accepted")
	}
}

func TestMoteAcquisitionFaultsAggregate(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	w := world(120)

	inj := fault.NewInjector(s.NumAttrs(), 21)
	if err := inj.SetAttr(1, fault.AttrFault{PTransient: 0.4, PStale: 0.2}); err != nil {
		t.Fatal(err)
	}
	n, err := New(s, q, DefaultRadio(), StarTopology(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFaults(&FaultProfile{Exec: exec.FaultConfig{
		Injector: inj,
		Retrier:  fault.DefaultRetrier(),
		Policy:   exec.Abstain,
	}}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retries == 0 || st.RetryEnergy <= 0 {
		t.Errorf("retries=%d retry-energy=%f; expected retry activity", st.Retries, st.RetryEnergy)
	}
	if st.Abstained == 0 {
		t.Error("expected some abstained tuples at PTransient=0.4")
	}
	if st.Mismatches != 0 {
		t.Errorf("Mismatches = %d; fault damage must land in FP/FN", st.Mismatches)
	}
	var motesRetries, motesFailures, motesAbstained int
	for _, m := range st.PerMote {
		motesRetries += m.Retries
		motesFailures += m.Failures
		motesAbstained += m.Abstained
	}
	if motesRetries != st.Retries || motesFailures != st.Failures || motesAbstained != st.Abstained {
		t.Errorf("per-mote sums %d/%d/%d disagree with totals %d/%d/%d",
			motesRetries, motesFailures, motesAbstained, st.Retries, st.Failures, st.Abstained)
	}
	if st.RetryEnergy >= st.AcquisitionEnergy {
		t.Errorf("RetryEnergy %f must be a strict part of AcquisitionEnergy %f", st.RetryEnergy, st.AcquisitionEnergy)
	}
}

// TestDeployFaultyNeverNegative drives a heavily faulted deployment and
// checks the invariants the ci.sh chaos gate relies on: no panics, no
// negative energies, and mismatches stay at zero (fault damage is
// classified, never silently miscounted).
func TestDeployFaultyNeverNegative(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSplit(0, 1, plan.NewSeq(q.Preds), plan.NewSeq(q.Preds))
	w := world(300)

	inj := fault.NewInjector(s.NumAttrs(), 5)
	if err := inj.SetAll(fault.AttrFault{PTransient: 0.3, PTimeout: 0.2, PStale: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := inj.SetAttr(2, fault.AttrFault{DeadFrom: 150}); err != nil {
		t.Fatal(err)
	}
	n, err := New(s, q, DefaultRadio(), LineTopology(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.SetFaults(&FaultProfile{
		Exec: exec.FaultConfig{
			Injector: inj,
			Retrier:  fault.DefaultRetrier(),
			Policy:   exec.Replan,
		},
		DissemLink:   fault.Link{Seed: 6, PDrop: 0.2, MaxRetransmits: 5},
		ReportLink:   fault.Link{Seed: 7, PDrop: 0.2, MaxRetransmits: 2},
		MoteDeadFrom: map[int]int{5: 10},
	}); err != nil {
		t.Fatal(err)
	}
	st, err := n.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.AcquisitionEnergy < 0 || st.DisseminationEnergy < 0 || st.ResultRadioEnergy < 0 || st.RetryEnergy < 0 {
		t.Errorf("negative energy: %+v", st)
	}
	if st.Mismatches != 0 {
		t.Errorf("Mismatches = %d under faults; must be classified FP/FN", st.Mismatches)
	}
	if st.TuplesProcessed+st.LostTuples != 300 {
		t.Errorf("processed %d + lost %d != 300", st.TuplesProcessed, st.LostTuples)
	}
	if st.ResultsReported < 0 || st.ResultsReported+st.LostResults > st.TuplesProcessed {
		t.Errorf("result accounting broken: %+v", st)
	}
	tbl := table.New(s, 0)
	empty, err := n.Run(tbl)
	if err != nil {
		t.Fatal(err)
	}
	if empty.TuplesProcessed != 0 || empty.EnergyPerTuple() != 0 {
		t.Errorf("empty world: %+v", empty)
	}
}

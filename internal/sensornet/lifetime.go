package sensornet

import (
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/schema"
)

// LifetimeResult reports how long a deployment survives on battery power —
// the quantity the paper's energy argument is ultimately about: "the cost
// of acquiring a sensor reading once per second on a mote can be
// comparable to the cost of running the processor" (Section 2.1).
type LifetimeResult struct {
	// Epochs survived before the first mote exhausted its battery.
	Epochs int
	// DeadMote is the index of the first mote to die (-1 if the world
	// data ran out before any mote died).
	DeadMote int
	// ResultsReported counts tuples reported before death.
	ResultsReported int
	// Remaining holds each mote's remaining energy at the end.
	Remaining []float64
}

// Lifetime runs the continuous query epoch by epoch until some mote's
// battery is exhausted or the world data runs out. Each mote starts with
// `battery` energy units and pays for its share of plan dissemination up
// front, then for acquisitions and result reports as it processes its
// reading each epoch (row r of the world belongs to mote r%NumMotes at
// epoch r/NumMotes, as in Run).
func (n *Network) Lifetime(p *plan.Node, world interface {
	NumRows() int
	Row(int, []schema.Value) []schema.Value
}, battery float64) (LifetimeResult, error) {
	if battery <= 0 {
		return LifetimeResult{}, fmt.Errorf("sensornet: battery budget must be positive")
	}
	if _, err := n.Disseminate(p); err != nil {
		return LifetimeResult{}, err
	}
	res := LifetimeResult{DeadMote: -1, Remaining: make([]float64, len(n.motes))}
	wire := float64(plan.Size(p)) * n.radio.CostPerByte
	for i := range n.motes {
		res.Remaining[i] = battery - wire*float64(n.topo.Hops[i])
		if res.Remaining[i] <= 0 {
			// Dead on arrival: the plan alone drained the battery.
			res.DeadMote = i
			return res, nil
		}
	}
	var row []schema.Value
	motes := len(n.motes)
	for r := 0; r < world.NumRows(); r++ {
		m := n.motes[r%motes]
		row = world.Row(r, row)
		for i := range m.acquired {
			m.acquired[i] = false
		}
		result, cost := m.plan.Execute(n.schema, row, m.acquired)
		if result {
			cost += float64(n.radio.ResultBytes) * n.radio.CostPerByte * float64(n.topo.Hops[m.id])
			res.ResultsReported++
		}
		res.Remaining[m.id] -= cost
		if res.Remaining[m.id] <= 0 {
			res.DeadMote = m.id
			res.Epochs = r / motes
			return res, nil
		}
		if r%motes == motes-1 {
			res.Epochs = r/motes + 1
		}
	}
	return res, nil
}

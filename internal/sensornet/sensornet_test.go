package sensornet

import (
	"math"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "h", K: 2, Cost: 0},
		schema.Attribute{Name: "a", K: 2, Cost: 10},
		schema.Attribute{Name: "b", K: 2, Cost: 5},
	)
}

func testQuery(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
	)
}

func world(rows int) *table.Table {
	tbl := table.New(testSchema(), rows)
	for i := 0; i < rows; i++ {
		tbl.MustAppendRow([]schema.Value{
			schema.Value(i % 2), schema.Value((i / 2) % 2), schema.Value((i / 4) % 2),
		})
	}
	return tbl
}

func TestTopologies(t *testing.T) {
	line := LineTopology(4)
	if line.Hops[0] != 1 || line.Hops[3] != 4 {
		t.Errorf("LineTopology = %v", line.Hops)
	}
	star := StarTopology(4)
	for _, h := range star.Hops {
		if h != 1 {
			t.Errorf("StarTopology = %v", star.Hops)
		}
	}
}

func TestNewValidation(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	if _, err := New(s, q, DefaultRadio(), Topology{}); err == nil {
		t.Error("empty topology accepted")
	}
	if _, err := New(s, q, DefaultRadio(), Topology{Hops: []int{1, 0}}); err == nil {
		t.Error("zero hop count accepted")
	}
}

func TestRunRequiresDissemination(t *testing.T) {
	s := testSchema()
	n, err := New(s, testQuery(s), DefaultRadio(), StarTopology(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Run(world(4)); err == nil {
		t.Error("Run without Disseminate succeeded")
	}
}

func TestDeployAccounting(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	radio := RadioModel{CostPerByte: 1, ResultBytes: 10}
	n, err := New(s, q, radio, LineTopology(2)) // hops 1 and 2
	if err != nil {
		t.Fatal(err)
	}
	p := plan.NewSeq(q.Preds)
	w := world(8)
	st, err := n.Deploy(p, w)
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesProcessed != 8 || st.Epochs != 4 {
		t.Errorf("tuples=%d epochs=%d", st.TuplesProcessed, st.Epochs)
	}
	if st.Mismatches != 0 {
		t.Errorf("mismatches = %d", st.Mismatches)
	}
	// Dissemination: zeta(P) bytes to each mote, scaled by hops (1+2).
	wantDissem := float64(plan.Size(p)) * 3
	if math.Abs(st.DisseminationEnergy-wantDissem) > 1e-9 {
		t.Errorf("dissemination = %g, want %g", st.DisseminationEnergy, wantDissem)
	}
	// Acquisition energy: every tuple pays a (10); those with a=1 pay b
	// (5). In world(8), a = (i/2)%2 -> rows 2,3,6,7 have a=1.
	wantAcq := 8*10.0 + 4*5.0
	if math.Abs(st.AcquisitionEnergy-wantAcq) > 1e-9 {
		t.Errorf("acquisition = %g, want %g", st.AcquisitionEnergy, wantAcq)
	}
	// Results: rows with a=1 and b=1 are 6 and 7 -> motes 0 and 1.
	if st.ResultsReported != 2 {
		t.Errorf("results = %d, want 2", st.ResultsReported)
	}
	wantRadio := 10.0*1*1 + 10.0*1*2 // mote 0 at hop 1, mote 1 at hop 2
	if math.Abs(st.ResultRadioEnergy-wantRadio) > 1e-9 {
		t.Errorf("result radio = %g, want %g", st.ResultRadioEnergy, wantRadio)
	}
	if math.Abs(st.TotalEnergy()-(wantDissem+wantAcq+wantRadio)) > 1e-9 {
		t.Errorf("total energy mismatch")
	}
	if st.EnergyPerTuple() != st.TotalEnergy()/8 {
		t.Errorf("EnergyPerTuple wrong")
	}
	if st.PlanBytes != plan.Size(p) {
		t.Errorf("PlanBytes = %d", st.PlanBytes)
	}
}

func TestPerMoteStats(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	n, err := New(s, q, DefaultRadio(), StarTopology(2))
	if err != nil {
		t.Fatal(err)
	}
	st, err := n.Deploy(plan.NewSeq(q.Preds), world(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.PerMote) != 2 {
		t.Fatalf("PerMote = %v", st.PerMote)
	}
	if st.PerMote[0].Tuples != 4 || st.PerMote[1].Tuples != 4 {
		t.Errorf("per-mote tuples = %+v", st.PerMote)
	}
	var total float64
	for _, m := range st.PerMote {
		total += m.AcquisitionEnergy
	}
	if math.Abs(total-st.AcquisitionEnergy) > 1e-9 {
		t.Error("per-mote energies do not sum to total")
	}
}

func TestDisseminationRejectsCorruptPlanGracefully(t *testing.T) {
	// A plan invalid for the schema must be rejected by the mote's
	// decode-and-validate step.
	s := testSchema()
	q := testQuery(s)
	n, err := New(s, q, DefaultRadio(), StarTopology(1))
	if err != nil {
		t.Fatal(err)
	}
	bad := plan.NewSplit(0, 5, plan.NewLeaf(false), plan.NewLeaf(true)) // threshold 5 beyond K=2
	if _, err := n.Disseminate(bad); err == nil {
		t.Error("mote accepted invalid plan")
	}
}

func TestConditionalPlanSavesEnergyEndToEnd(t *testing.T) {
	// Figure 2 end-to-end: on day/night-correlated data the conditional
	// plan spends less total energy than the sequential plan, even after
	// paying its larger dissemination cost.
	s := testSchema()
	q := testQuery(s)
	// World with the Figure 2 correlation: at night (h=0) a=1 is rare,
	// during day (h=1) b=1 is rare.
	tbl := table.New(s, 2000)
	for i := 0; i < 2000; i++ {
		h := schema.Value(i % 2)
		var a, b schema.Value
		if h == 0 {
			a, b = schema.Value(boolToInt(i%10 == 0)), 1
		} else {
			a, b = 1, schema.Value(boolToInt(i%10 == 5))
		}
		tbl.MustAppendRow([]schema.Value{h, a, b})
	}
	seq := plan.NewSeq(q.Preds)
	cond := plan.NewSplit(0, 1,
		plan.NewSeq(q.Preds),
		plan.NewSeq([]query.Pred{q.Preds[1], q.Preds[0]}),
	)
	radio := DefaultRadio()
	run := func(p *plan.Node) Stats {
		n, err := New(s, q, radio, LineTopology(4))
		if err != nil {
			t.Fatal(err)
		}
		st, err := n.Deploy(p, tbl)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	seqStats, condStats := run(seq), run(cond)
	if condStats.DisseminationEnergy <= seqStats.DisseminationEnergy {
		t.Error("conditional plan should cost more to disseminate")
	}
	if condStats.TotalEnergy() >= seqStats.TotalEnergy() {
		t.Errorf("conditional total %g not below sequential %g",
			condStats.TotalEnergy(), seqStats.TotalEnergy())
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestLifetimeValidation(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	n, err := New(s, q, DefaultRadio(), StarTopology(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Lifetime(plan.NewSeq(q.Preds), world(4), 0); err == nil {
		t.Error("zero battery accepted")
	}
}

func TestLifetimeDeadOnArrival(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	radio := RadioModel{CostPerByte: 100, ResultBytes: 4}
	n, err := New(s, q, radio, StarTopology(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := n.Lifetime(plan.NewSeq(q.Preds), world(4), 10) // plan bytes alone exceed budget
	if err != nil {
		t.Fatal(err)
	}
	if res.DeadMote == -1 || res.Epochs != 0 {
		t.Errorf("result = %+v, want dead-on-arrival", res)
	}
}

func TestConditionalPlanExtendsLifetime(t *testing.T) {
	// The Figure 2 world: conditional plans acquire less per tuple, so a
	// fixed battery survives more epochs.
	s := testSchema()
	q := testQuery(s)
	tbl := table.New(s, 4000)
	for i := 0; i < 4000; i++ {
		h := schema.Value(i % 2)
		var a, b schema.Value
		if h == 0 {
			a, b = schema.Value(boolToInt(i%10 == 0)), 1
		} else {
			a, b = 1, schema.Value(boolToInt(i%10 == 5))
		}
		tbl.MustAppendRow([]schema.Value{h, a, b})
	}
	seq := plan.NewSeq(q.Preds)
	cond := plan.NewSplit(0, 1,
		plan.NewSeq(q.Preds),
		plan.NewSeq([]query.Pred{q.Preds[1], q.Preds[0]}),
	)
	battery := 2000.0
	run := func(p *plan.Node) LifetimeResult {
		n, err := New(s, q, DefaultRadio(), StarTopology(4))
		if err != nil {
			t.Fatal(err)
		}
		res, err := n.Lifetime(p, tbl, battery)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seqRes, condRes := run(seq), run(cond)
	if seqRes.DeadMote == -1 || condRes.DeadMote == -1 {
		t.Fatalf("batteries did not deplete: seq=%+v cond=%+v", seqRes, condRes)
	}
	if condRes.Epochs <= seqRes.Epochs {
		t.Errorf("conditional lifetime %d epochs not beyond sequential %d",
			condRes.Epochs, seqRes.Epochs)
	}
}

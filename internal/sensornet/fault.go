package sensornet

import (
	"fmt"

	"acqp/internal/exec"
	"acqp/internal/fault"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// FaultProfile configures fault injection for a deployment: per-attribute
// acquisition faults on every mote (with the executor's fallback policy),
// lossy radio links for plan dissemination and result reporting, and
// whole-mote death mid-run. The zero value injects nothing, and a network
// carrying it produces stats byte-identical to a pristine one — the
// property the equivalence tests pin.
type FaultProfile struct {
	// Exec configures acquisition faults and the fallback policy each mote
	// runs; every mote gets its own exec.TupleExecutor (its own stale
	// latches and learned-dead state) over the shared injector.
	Exec exec.FaultConfig
	// DissemLink is the lossy per-hop link plan dissemination crosses.
	// Every transmission — including retransmissions of dropped packets —
	// is charged at the radio's per-byte cost; a plan that exhausts its
	// retransmissions leaves the mote planless and its tuples unprocessed.
	DissemLink fault.Link
	// ReportLink is the lossy per-hop link result reports cross. A report
	// dropped at hop h has paid for its transmissions up to h and is
	// counted in Stats.LostResults.
	ReportLink fault.Link
	// MoteDeadFrom maps a mote id to the epoch at which the whole mote
	// dies; its remaining tuples count as LostTuples at zero energy.
	MoteDeadFrom map[int]int
}

// SetFaults installs (or, with nil, removes) a fault profile. It must be
// called before Disseminate.
func (n *Network) SetFaults(fp *FaultProfile) error {
	if fp != nil {
		if inj := fp.Exec.Injector; inj != nil && inj.NumAttrs() != n.schema.NumAttrs() {
			return fmt.Errorf("sensornet: injector covers %d attributes, schema has %d", inj.NumAttrs(), n.schema.NumAttrs())
		}
		for id, epoch := range fp.MoteDeadFrom {
			if id < 0 || id >= len(n.motes) {
				return fmt.Errorf("sensornet: MoteDeadFrom mote %d out of range [0,%d)", id, len(n.motes))
			}
			if epoch < 0 {
				return fmt.Errorf("sensornet: MoteDeadFrom[%d] = %d is negative", id, epoch)
			}
		}
	}
	n.faults = fp
	n.dissemRetrans, n.undelivered = 0, 0
	return nil
}

// disseminateFaulty is Disseminate over the profile's lossy link. To keep
// the zero-fault path byte-identical to the pristine one, the energy for
// each mote is computed as one product over its total transmission count
// (which equals its hop count on a perfect link).
func (n *Network) disseminateFaulty(wire []byte) (float64, error) {
	link := n.faults.DissemLink
	n.dissemRetrans, n.undelivered = 0, 0
	var energy float64
	for i, m := range n.motes {
		totalTx, delivered := 0, true
		for h := 0; h < n.topo.Hops[i]; h++ {
			att, ok := link.Deliver(i, h)
			totalTx += att
			n.dissemRetrans += att - 1
			if !ok {
				delivered = false
				break
			}
		}
		energy += float64(len(wire)) * n.radio.CostPerByte * float64(totalTx)
		if !delivered {
			m.plan, m.planLost = nil, true
			n.undelivered++
			continue
		}
		decoded, err := plan.Decode(n.schema, wire)
		if err != nil {
			return 0, fmt.Errorf("sensornet: mote %d rejected plan: %w", i, err)
		}
		m.plan, m.planLost = decoded, false
	}
	return energy, nil
}

// runFaulty is Run under the installed fault profile.
func (n *Network) runFaulty(world *table.Table) (Stats, error) {
	fp := n.faults
	st := Stats{PerMote: make([]MoteStats, len(n.motes))}
	for _, m := range n.motes {
		m.stats = MoteStats{}
		m.ex = nil
		if m.planLost {
			continue
		}
		if m.plan == nil {
			return st, fmt.Errorf("sensornet: mote %d has no plan; call Disseminate first", m.id)
		}
		ex, err := exec.NewTupleExecutor(n.schema, m.plan, n.query, fp.Exec)
		if err != nil {
			return st, fmt.Errorf("sensornet: mote %d: %w", m.id, err)
		}
		m.ex = ex
	}
	var row []schema.Value
	for r := 0; r < world.NumRows(); r++ {
		m := n.motes[r%len(n.motes)]
		epoch := r / len(n.motes)
		if dead, ok := fp.MoteDeadFrom[m.id]; (ok && epoch >= dead) || m.planLost {
			st.LostTuples++
			continue
		}
		row = world.Row(r, row)
		out := m.ex.ExecTuple(r, row)
		m.stats.Tuples++
		m.stats.AcquisitionEnergy += out.Cost
		m.stats.Failures += out.Failures
		m.stats.Retries += out.Retries
		st.RetryEnergy += out.RetryCost
		st.Failures += out.Failures
		st.Retries += out.Retries
		st.StaleReads += out.StaleReads
		st.Imputed += out.Imputed
		if out.Replanned {
			st.Replans++
		}
		truth := n.query.Eval(row)
		switch {
		case out.Answer == query.Unknown:
			m.stats.Abstained++
			st.Abstained++
		case (out.Answer == query.True) != truth:
			if out.Touched {
				if truth {
					st.FalseNegatives++
				} else {
					st.FalsePositives++
				}
			} else {
				m.stats.Mismatches++
			}
		}
		if out.Answer == query.True {
			m.stats.Results++
			totalTx, delivered := 0, true
			for h := 0; h < n.topo.Hops[m.id]; h++ {
				att, ok := fp.ReportLink.Deliver(r, h)
				totalTx += att
				st.Retransmissions += att - 1
				if !ok {
					delivered = false
					break
				}
			}
			m.stats.RadioEnergy += float64(n.radio.ResultBytes) * n.radio.CostPerByte * float64(totalTx)
			if !delivered {
				st.LostResults++
			}
		}
	}
	for i, m := range n.motes {
		st.PerMote[i] = m.stats
		st.TuplesProcessed += m.stats.Tuples
		st.ResultsReported += m.stats.Results
		st.AcquisitionEnergy += m.stats.AcquisitionEnergy
		st.ResultRadioEnergy += m.stats.RadioEnergy
		st.Mismatches += m.stats.Mismatches
	}
	st.ResultsReported -= st.LostResults
	st.Epochs = (world.NumRows() + len(n.motes) - 1) / len(n.motes)
	return st, nil
}

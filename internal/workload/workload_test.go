package workload

import (
	"testing"

	"acqp/internal/datagen"
	"acqp/internal/query"
	"acqp/internal/stats"
)

func TestLabQueriesShape(t *testing.T) {
	tbl := datagen.Lab(datagen.LabConfig{Motes: 8, Rows: 10_000, Seed: 1, QuietMotes: 2})
	cfg := LabQueryConfig{Count: 20, Seed: 3, SelLo: 0.3, SelHi: 0.7}
	qs := LabQueries(tbl, cfg)
	if len(qs) != 20 {
		t.Fatalf("generated %d queries, want 20", len(qs))
	}
	d := stats.NewEmpirical(tbl)
	inBand := 0
	for _, q := range qs {
		if q.NumPreds() != 3 {
			t.Fatalf("query has %d predicates, want 3", q.NumPreds())
		}
		for _, p := range q.Preds {
			if c := tbl.Schema().Cost(p.Attr); c != datagen.ExpensiveCost {
				t.Errorf("predicate on cheap attribute %s", tbl.Schema().Name(p.Attr))
			}
			sel := d.Root().ProbPred(p)
			if sel >= cfg.SelLo && sel <= cfg.SelHi {
				inBand++
			}
		}
	}
	// The generator resamples toward the band; the overwhelming majority
	// of predicates must land inside it.
	if frac := float64(inBand) / float64(len(qs)*3); frac < 0.8 {
		t.Errorf("only %.0f%% of predicates in the selectivity band", frac*100)
	}
}

func TestLabQueriesDeterministic(t *testing.T) {
	tbl := datagen.Lab(datagen.LabConfig{Motes: 8, Rows: 5_000, Seed: 1, QuietMotes: 2})
	cfg := LabQueryConfig{Count: 5, Seed: 3, SelLo: 0.3, SelHi: 0.7}
	a := LabQueries(tbl, cfg)
	b := LabQueries(tbl, cfg)
	for i := range a {
		if a[i].Format(tbl.Schema()) != b[i].Format(tbl.Schema()) {
			t.Fatalf("query %d differs between equal-seed runs", i)
		}
	}
}

func TestGardenQueriesShape(t *testing.T) {
	tbl := datagen.Garden(datagen.GardenConfig{Motes: 5, Rows: 5_000, Seed: 2})
	cfg := DefaultGardenQueryConfig(5)
	cfg.Count = 15
	qs := GardenQueries(tbl, cfg)
	if len(qs) != 15 {
		t.Fatalf("generated %d queries, want 15", len(qs))
	}
	for _, q := range qs {
		if q.NumPreds() != 10 {
			t.Fatalf("Garden-5 query has %d predicates, want 10", q.NumPreds())
		}
		// The temp range and negation flag are identical across motes.
		var tempR, humR query.Range
		var tempNeg, humNeg bool
		for i, p := range q.Preds {
			if i == 0 {
				tempR, tempNeg = p.R, p.Negated
			} else if i == 1 {
				humR, humNeg = p.R, p.Negated
			} else if i%2 == 0 {
				if p.R != tempR || p.Negated != tempNeg {
					t.Fatal("temperature predicates differ across motes")
				}
			} else if p.R != humR || p.Negated != humNeg {
				t.Fatal("humidity predicates differ across motes")
			}
		}
	}
}

func TestGardenQueriesProduceNegations(t *testing.T) {
	tbl := datagen.Garden(datagen.GardenConfig{Motes: 3, Rows: 3_000, Seed: 2})
	cfg := GardenQueryConfig{Count: 30, Seed: 7, Motes: 3, WidthLo: 1.25, WidthHi: 3.25, NegateProb: 0.5}
	qs := GardenQueries(tbl, cfg)
	sawNeg, sawPlain := false, false
	for _, q := range qs {
		for _, p := range q.Preds {
			if p.Negated {
				sawNeg = true
			} else {
				sawPlain = true
			}
		}
	}
	if !sawNeg || !sawPlain {
		t.Errorf("negation mix missing: neg=%v plain=%v", sawNeg, sawPlain)
	}
}

func TestGarden11QueriesHave22Preds(t *testing.T) {
	tbl := datagen.Garden(datagen.GardenConfig{Motes: 11, Rows: 2_000, Seed: 2})
	cfg := DefaultGardenQueryConfig(11)
	cfg.Count = 3
	for _, q := range GardenQueries(tbl, cfg) {
		if q.NumPreds() != 22 {
			t.Fatalf("Garden-11 query has %d predicates, want 22", q.NumPreds())
		}
	}
}

// Package workload generates the query workloads of the paper's
// evaluation (Section 6): random 3-predicate lab queries with ~50%
// marginal selectivities and 2-sigma widths (Section 6.1), garden queries
// applying identical (possibly negated) range predicates to every mote
// (Section 6.2), and the all-expensive-attributes conjunctions of the
// synthetic dataset (Section 6.3).
package workload

import (
	"math"
	"math/rand"

	"acqp/internal/datagen"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// LabQueryConfig tunes the lab workload generator.
type LabQueryConfig struct {
	// Count is the number of queries (the paper runs 95).
	Count int
	// Seed drives the random predicate endpoints.
	Seed int64
	// SelLo and SelHi bound the accepted marginal selectivity of each
	// generated predicate. The paper deliberately chose the challenging
	// ~50% regime ("most predicates generated for our experiments are
	// satisfied by a large (approximately 50%) portion of the data
	// set"); defaults are [0.35, 0.65].
	SelLo, SelHi float64
}

// DefaultLabQueryConfig matches Section 6.1: 95 three-predicate queries.
func DefaultLabQueryConfig() LabQueryConfig {
	return LabQueryConfig{Count: 95, Seed: 11, SelLo: 0.35, SelHi: 0.65}
}

// LabQueries generates Count three-predicate queries over the lab
// dataset's expensive attributes (light, temp, humidity). For each
// predicate the left endpoint is chosen uniformly at random and the width
// is two standard deviations of the attribute, resampling until the
// predicate's marginal selectivity falls inside [SelLo, SelHi]
// (Section 6.1).
func LabQueries(tbl *table.Table, cfg LabQueryConfig) []query.Query {
	s := tbl.Schema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := stats.NewEmpirical(tbl)
	attrs := []int{datagen.LabLight, datagen.LabTemp, datagen.LabHumidity}
	queries := make([]query.Query, 0, cfg.Count)
	for len(queries) < cfg.Count {
		preds := make([]query.Pred, 0, len(attrs))
		for _, attr := range attrs {
			preds = append(preds, randomSelectivityPred(rng, s, d, attr, cfg.SelLo, cfg.SelHi, false))
		}
		queries = append(queries, query.MustNewQuery(s, preds...))
	}
	return queries
}

// randomSelectivityPred draws a random 2-sigma-wide range predicate over
// attr whose marginal selectivity lies in [selLo, selHi]. It makes a
// bounded number of attempts and then returns the best candidate seen, so
// generation always terminates even on degenerate columns.
func randomSelectivityPred(rng *rand.Rand, s *schema.Schema, d stats.Dist, attr int, selLo, selHi float64, negated bool) query.Pred {
	st := columnStats(d, attr, s.K(attr))
	width := int(math.Round(2 * st.std))
	if width < 1 {
		width = 1
	}
	k := s.K(attr)
	best := query.Pred{Attr: attr, R: query.FullRange(k), Negated: negated}
	bestDist := math.Inf(1)
	root := d.Root()
	for attempt := 0; attempt < 64; attempt++ {
		lo := rng.Intn(k)
		hi := lo + width
		if hi > k-1 {
			hi = k - 1
		}
		p := query.Pred{Attr: attr, R: query.Range{Lo: schema.Value(lo), Hi: schema.Value(hi)}, Negated: negated}
		sel := root.ProbPred(p)
		if sel >= selLo && sel <= selHi {
			return p
		}
		dist := math.Min(math.Abs(sel-selLo), math.Abs(sel-selHi))
		if dist < bestDist {
			best, bestDist = p, dist
		}
	}
	return best
}

type colStats struct{ mean, std float64 }

func columnStats(d stats.Dist, attr, k int) colStats {
	h := d.Root().Hist(attr)
	var mean, m2 float64
	for v := 0; v < k; v++ {
		mean += float64(v) * h[v]
	}
	for v := 0; v < k; v++ {
		dv := float64(v) - mean
		m2 += dv * dv * h[v]
	}
	return colStats{mean: mean, std: math.Sqrt(m2)}
}

// GardenQueryConfig tunes the garden workload generator.
type GardenQueryConfig struct {
	// Count is the number of queries (the paper runs 90).
	Count int
	// Seed drives the random ranges.
	Seed int64
	// Motes is the number of motes in the dataset.
	Motes int
	// WidthLo and WidthHi bound the predicate width in standard
	// deviations of the attribute; the paper varies the covered fraction
	// between 1.25 and 3.25.
	WidthLo, WidthHi float64
	// NegateProb is the probability a (temperature or humidity) range is
	// negated, giving the paper's NOT(a <= x <= b) predicates.
	NegateProb float64
}

// DefaultGardenQueryConfig matches Section 6.2.
func DefaultGardenQueryConfig(motes int) GardenQueryConfig {
	return GardenQueryConfig{
		Count: 90, Seed: 13, Motes: motes,
		WidthLo: 1.25, WidthHi: 3.25, NegateProb: 0.5,
	}
}

// GardenQueries generates queries with identical range predicates over
// the temperature and humidity of every mote (Section 6.2): each query
// has 2*Motes predicates (10 for Garden-5, 22 for Garden-11), where the
// temperature range, the humidity range, and their negation flags are
// shared across motes.
func GardenQueries(tbl *table.Table, cfg GardenQueryConfig) []query.Query {
	s := tbl.Schema()
	rng := rand.New(rand.NewSource(cfg.Seed))
	d := stats.NewEmpirical(tbl)
	queries := make([]query.Query, 0, cfg.Count)
	for len(queries) < cfg.Count {
		tempR := randomWidthRange(rng, d, s, datagen.GardenTempAttr(0), cfg.WidthLo, cfg.WidthHi)
		humR := randomWidthRange(rng, d, s, datagen.GardenHumAttr(0), cfg.WidthLo, cfg.WidthHi)
		tempNeg := rng.Float64() < cfg.NegateProb
		humNeg := rng.Float64() < cfg.NegateProb
		preds := make([]query.Pred, 0, 2*cfg.Motes)
		for m := 0; m < cfg.Motes; m++ {
			preds = append(preds,
				query.Pred{Attr: datagen.GardenTempAttr(m), R: tempR, Negated: tempNeg},
				query.Pred{Attr: datagen.GardenHumAttr(m), R: humR, Negated: humNeg},
			)
		}
		queries = append(queries, query.MustNewQuery(s, preds...))
	}
	return queries
}

// randomWidthRange draws a range whose width is uniform in
// [widthLo, widthHi] standard deviations of the attribute and whose
// position is uniform over the domain.
func randomWidthRange(rng *rand.Rand, d stats.Dist, s *schema.Schema, attr int, widthLo, widthHi float64) query.Range {
	st := columnStats(d, attr, s.K(attr))
	w := widthLo + rng.Float64()*(widthHi-widthLo)
	width := int(math.Round(w * st.std))
	if width < 1 {
		width = 1
	}
	k := s.K(attr)
	lo := rng.Intn(k)
	hi := lo + width
	if hi > k-1 {
		hi = k - 1
	}
	return query.Range{Lo: schema.Value(lo), Hi: schema.Value(hi)}
}

// Package table implements the column-major discretized dataset the
// planners and probability engine operate on. A Table stores one column of
// schema.Value per attribute; rows are tuples x = (x_1, ..., x_n).
//
// Tables hold the historical data used to estimate the probabilities of
// Section 5 of the paper, and the disjoint test data plans are evaluated
// against (Section 6, "Test v. Training").
package table

import (
	"fmt"
	"math"
	"strings"

	"acqp/internal/schema"
)

// Table is an immutable-after-build column-major dataset bound to a schema.
type Table struct {
	schema *schema.Schema
	cols   [][]schema.Value
	rows   int
}

// New creates an empty table for the given schema with capacity hint rows.
func New(s *schema.Schema, capacity int) *Table {
	cols := make([][]schema.Value, s.NumAttrs())
	for i := range cols {
		cols[i] = make([]schema.Value, 0, capacity)
	}
	return &Table{schema: s, cols: cols}
}

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// NumRows returns the number of tuples d in the table.
func (t *Table) NumRows() int { return t.rows }

// AppendRow adds a tuple. It returns an error if the tuple has the wrong
// arity or a value outside its attribute's domain.
func (t *Table) AppendRow(row []schema.Value) error {
	if len(row) != t.schema.NumAttrs() {
		return fmt.Errorf("table: row has %d values, schema has %d attributes", len(row), t.schema.NumAttrs())
	}
	for i, v := range row {
		if int(v) >= t.schema.K(i) {
			return fmt.Errorf("table: value %d out of domain [0,%d) for attribute %s", v, t.schema.K(i), t.schema.Name(i))
		}
	}
	for i, v := range row {
		t.cols[i] = append(t.cols[i], v)
	}
	t.rows++
	return nil
}

// MustAppendRow is AppendRow but panics on error; used by generators whose
// output is valid by construction.
func (t *Table) MustAppendRow(row []schema.Value) {
	if err := t.AppendRow(row); err != nil {
		panic("table: " + strings.TrimPrefix(err.Error(), "table: "))
	}
}

// Value returns the value of attribute attr in row r.
func (t *Table) Value(r, attr int) schema.Value { return t.cols[attr][r] }

// Row copies row r into dst (allocating if dst is too small) and returns it.
func (t *Table) Row(r int, dst []schema.Value) []schema.Value {
	n := t.schema.NumAttrs()
	if cap(dst) < n {
		dst = make([]schema.Value, n)
	}
	dst = dst[:n]
	for i := 0; i < n; i++ {
		dst[i] = t.cols[i][r]
	}
	return dst
}

// Col returns the backing slice for attribute attr. Callers must not
// mutate it; it is exposed for the hot counting loops in the probability
// engine.
func (t *Table) Col(attr int) []schema.Value { return t.cols[attr][:t.rows] }

// Split divides the table into a training prefix and test suffix at the
// given fraction, mirroring the paper's non-overlapping time windows: rows
// are assumed to be in time order, so the earliest trainFrac of rows trains
// the model and the remainder tests it.
func (t *Table) Split(trainFrac float64) (train, test *Table) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	cut := int(float64(t.rows) * trainFrac)
	return t.Slice(0, cut), t.Slice(cut, t.rows)
}

// Slice returns a new table holding rows [lo, hi). The returned table
// shares no mutable state with the receiver.
func (t *Table) Slice(lo, hi int) *Table {
	if lo < 0 {
		lo = 0
	}
	if hi > t.rows {
		hi = t.rows
	}
	if lo > hi {
		lo = hi
	}
	out := New(t.schema, hi-lo)
	for i := range t.cols {
		out.cols[i] = append(out.cols[i], t.cols[i][lo:hi]...)
	}
	out.rows = hi - lo
	return out
}

// Sample returns a new table containing every stride-th row, used to study
// sensitivity to the amount of historical data (Section 6.4).
func (t *Table) Sample(stride int) *Table {
	if stride <= 1 {
		return t.Slice(0, t.rows)
	}
	out := New(t.schema, t.rows/stride+1)
	for r := 0; r < t.rows; r += stride {
		for i := range t.cols {
			out.cols[i] = append(out.cols[i], t.cols[i][r])
		}
		out.rows++
	}
	return out
}

// Stats summarises one attribute of the table.
type Stats struct {
	Attr       int
	Mean       float64 // mean of the discretized values
	Std        float64 // standard deviation of the discretized values
	Min, Max   schema.Value
	NumNonZero int
}

// ColumnStats computes summary statistics for attribute attr. The paper's
// lab workload sizes predicate widths as two standard deviations of the
// attribute (Section 6.1); this provides the sigma.
func (t *Table) ColumnStats(attr int) Stats {
	st := Stats{Attr: attr}
	col := t.Col(attr)
	if len(col) == 0 {
		return st
	}
	st.Min, st.Max = col[0], col[0]
	var sum, sumSq float64
	for _, v := range col {
		f := float64(v)
		sum += f
		sumSq += f * f
		if v < st.Min {
			st.Min = v
		}
		if v > st.Max {
			st.Max = v
		}
		if v != 0 {
			st.NumNonZero++
		}
	}
	n := float64(len(col))
	st.Mean = sum / n
	variance := sumSq/n - st.Mean*st.Mean
	if variance < 0 {
		variance = 0
	}
	st.Std = math.Sqrt(variance)
	return st
}

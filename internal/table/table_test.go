package table

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"acqp/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 24, Cost: 1},
		schema.Attribute{Name: "light", K: 16, Cost: 100},
		schema.Attribute{Name: "temp", K: 8, Cost: 100},
	)
}

func fill(t *testing.T, tbl *Table, rows [][]schema.Value) {
	t.Helper()
	for _, r := range rows {
		if err := tbl.AppendRow(r); err != nil {
			t.Fatalf("AppendRow(%v): %v", r, err)
		}
	}
}

func TestAppendAndAccess(t *testing.T) {
	tbl := New(testSchema(), 4)
	fill(t, tbl, [][]schema.Value{
		{0, 1, 2},
		{23, 15, 7},
	})
	if tbl.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", tbl.NumRows())
	}
	if v := tbl.Value(1, 1); v != 15 {
		t.Errorf("Value(1,1) = %d, want 15", v)
	}
	row := tbl.Row(0, nil)
	if row[0] != 0 || row[1] != 1 || row[2] != 2 {
		t.Errorf("Row(0) = %v", row)
	}
	// Row must reuse a sufficiently large dst.
	buf := make([]schema.Value, 3)
	row2 := tbl.Row(1, buf)
	if &row2[0] != &buf[0] {
		t.Error("Row did not reuse dst buffer")
	}
}

func TestAppendValidation(t *testing.T) {
	tbl := New(testSchema(), 1)
	if err := tbl.AppendRow([]schema.Value{1, 2}); err == nil {
		t.Error("wrong arity accepted")
	}
	if err := tbl.AppendRow([]schema.Value{24, 0, 0}); err == nil {
		t.Error("out-of-domain value accepted")
	}
	if tbl.NumRows() != 0 {
		t.Errorf("failed appends changed row count to %d", tbl.NumRows())
	}
}

func TestSplit(t *testing.T) {
	tbl := New(testSchema(), 10)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i), 0, 0})
	}
	train, test := tbl.Split(0.7)
	if train.NumRows() != 7 || test.NumRows() != 3 {
		t.Fatalf("Split(0.7) = %d/%d rows, want 7/3", train.NumRows(), test.NumRows())
	}
	if train.Value(6, 0) != 6 || test.Value(0, 0) != 7 {
		t.Error("Split broke time ordering")
	}
	// Slices are independent copies.
	train.MustAppendRow([]schema.Value{0, 0, 0})
	if tbl.NumRows() != 10 {
		t.Error("appending to train mutated parent")
	}
}

func TestSplitClamping(t *testing.T) {
	tbl := New(testSchema(), 2)
	tbl.MustAppendRow([]schema.Value{1, 1, 1})
	for _, frac := range []float64{-1, 0, 1, 2} {
		train, test := tbl.Split(frac)
		if train.NumRows()+test.NumRows() != 1 {
			t.Errorf("Split(%g) lost rows", frac)
		}
	}
}

func TestSample(t *testing.T) {
	tbl := New(testSchema(), 10)
	for i := 0; i < 10; i++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(i), 0, 0})
	}
	s := tbl.Sample(3)
	if s.NumRows() != 4 { // rows 0,3,6,9
		t.Fatalf("Sample(3) has %d rows, want 4", s.NumRows())
	}
	if s.Value(1, 0) != 3 || s.Value(3, 0) != 9 {
		t.Error("Sample picked wrong rows")
	}
	if tbl.Sample(0).NumRows() != 10 {
		t.Error("Sample(0) should copy all rows")
	}
}

func TestColumnStats(t *testing.T) {
	tbl := New(testSchema(), 4)
	fill(t, tbl, [][]schema.Value{
		{2, 0, 0}, {4, 0, 0}, {6, 0, 0}, {8, 0, 0},
	})
	st := tbl.ColumnStats(0)
	if st.Mean != 5 {
		t.Errorf("Mean = %g, want 5", st.Mean)
	}
	want := math.Sqrt(5) // population std of {2,4,6,8}
	if math.Abs(st.Std-want) > 1e-12 {
		t.Errorf("Std = %g, want %g", st.Std, want)
	}
	if st.Min != 2 || st.Max != 8 {
		t.Errorf("Min/Max = %d/%d, want 2/8", st.Min, st.Max)
	}
	if st.NumNonZero != 4 {
		t.Errorf("NumNonZero = %d, want 4", st.NumNonZero)
	}
}

func TestColumnStatsEmpty(t *testing.T) {
	tbl := New(testSchema(), 0)
	st := tbl.ColumnStats(1)
	if st.Mean != 0 || st.Std != 0 {
		t.Error("empty table stats should be zero")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tbl := New(testSchema(), 3)
	fill(t, tbl, [][]schema.Value{
		{0, 1, 2}, {23, 15, 7}, {12, 8, 3},
	})
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	got, err := ReadCSV(testSchema(), &buf)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if got.NumRows() != 3 {
		t.Fatalf("round trip rows = %d, want 3", got.NumRows())
	}
	for r := 0; r < 3; r++ {
		for a := 0; a < 3; a++ {
			if got.Value(r, a) != tbl.Value(r, a) {
				t.Errorf("round trip value mismatch at (%d,%d)", r, a)
			}
		}
	}
}

func TestCSVColumnReorder(t *testing.T) {
	in := "temp,hour,light\n3,12,9\n"
	tbl, err := ReadCSV(testSchema(), strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	if tbl.Value(0, 0) != 12 || tbl.Value(0, 1) != 9 || tbl.Value(0, 2) != 3 {
		t.Errorf("reordered columns misparsed: row = %v", tbl.Row(0, nil))
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []struct{ name, in string }{
		{"unknown column", "hour,light,bogus\n1,2,3\n"},
		{"duplicate column", "hour,hour,light\n1,2,3\n"},
		{"wrong arity", "hour,light\n1,2\n"},
		{"non-integer", "hour,light,temp\n1,x,3\n"},
		{"out of domain", "hour,light,temp\n99,0,0\n"},
		{"negative", "hour,light,temp\n-1,0,0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadCSV(testSchema(), strings.NewReader(tc.in)); err == nil {
				t.Errorf("ReadCSV(%q) succeeded, want error", tc.in)
			}
		})
	}
}

// Property: Split preserves every row exactly once, for any fraction.
func TestSplitPartitionProperty(t *testing.T) {
	s := schema.New(schema.Attribute{Name: "v", K: 256, Cost: 1})
	f := func(vals []uint8, frac float64) bool {
		tbl := New(s, len(vals))
		for _, v := range vals {
			tbl.MustAppendRow([]schema.Value{schema.Value(v)})
		}
		frac = math.Abs(frac)
		frac -= math.Floor(frac)
		train, test := tbl.Split(frac)
		if train.NumRows()+test.NumRows() != len(vals) {
			return false
		}
		for i := 0; i < train.NumRows(); i++ {
			if train.Value(i, 0) != schema.Value(vals[i]) {
				return false
			}
		}
		for i := 0; i < test.NumRows(); i++ {
			if test.Value(i, 0) != schema.Value(vals[train.NumRows()+i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"acqp/internal/schema"
)

// WriteCSV writes the table as CSV with a header row of attribute names.
// Values are written as their discretized integers.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	n := t.schema.NumAttrs()
	header := make([]string, n)
	for i := 0; i < n; i++ {
		header[i] = t.schema.Name(i)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: write csv header: %w", err)
	}
	rec := make([]string, n)
	for r := 0; r < t.rows; r++ {
		for i := 0; i < n; i++ {
			rec[i] = strconv.Itoa(int(t.cols[i][r]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// RowReader decodes a CSV stream produced by WriteCSV (or any CSV whose
// header names match the schema's attributes, in any column order) one
// row at a time, holding only the current record in memory. It is the
// table package's streaming face: wrap its Next in an executor source to
// run plans over CSV inputs larger than memory without materializing a
// Table.
type RowReader struct {
	s      *schema.Schema
	cr     *csv.Reader
	header []string
	colFor []int // colFor[j] is the schema attribute index stored in csv column j
	line   int
}

// NewRowReader reads and validates the CSV header, binding columns to
// schema attributes by name.
func NewRowReader(s *schema.Schema, r io.Reader) (*RowReader, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	n := s.NumAttrs()
	if len(header) != n {
		return nil, fmt.Errorf("table: csv has %d columns, schema has %d attributes", len(header), n)
	}
	header = append([]string(nil), header...) // cr reuses its record buffer
	colFor := make([]int, len(header))
	seen := make([]bool, n)
	for j, name := range header {
		idx := s.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("table: csv column %q not in schema", name)
		}
		if seen[idx] {
			return nil, fmt.Errorf("table: duplicate csv column %q", name)
		}
		seen[idx] = true
		colFor[j] = idx
	}
	return &RowReader{s: s, cr: cr, header: header, colFor: colFor, line: 1}, nil
}

// Next decodes the next row into dst (length NumAttrs, schema attribute
// order) and returns true, or false at end of stream.
func (rr *RowReader) Next(dst []schema.Value) (bool, error) {
	rr.line++
	rec, err := rr.cr.Read()
	if err == io.EOF {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("table: read csv line %d: %w", rr.line, err)
	}
	for j, field := range rec {
		v, err := strconv.Atoi(field)
		if err != nil {
			return false, fmt.Errorf("table: csv line %d column %q: %w", rr.line, rr.header[j], err)
		}
		if v < 0 || v >= rr.s.K(rr.colFor[j]) {
			return false, fmt.Errorf("table: csv line %d column %q: value %d out of domain [0,%d)", rr.line, rr.header[j], v, rr.s.K(rr.colFor[j]))
		}
		dst[rr.colFor[j]] = schema.Value(v)
	}
	return true, nil
}

// ReadCSV reads a CSV stream into a new table bound to the given schema
// — the materializing counterpart of RowReader.
func ReadCSV(s *schema.Schema, r io.Reader) (*Table, error) {
	rr, err := NewRowReader(s, r)
	if err != nil {
		return nil, err
	}
	t := New(s, 1024)
	row := make([]schema.Value, s.NumAttrs())
	for {
		ok, err := rr.Next(row)
		if err != nil {
			return nil, err
		}
		if !ok {
			return t, nil
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
}

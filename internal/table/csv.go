package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"acqp/internal/schema"
)

// WriteCSV writes the table as CSV with a header row of attribute names.
// Values are written as their discretized integers.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	n := t.schema.NumAttrs()
	header := make([]string, n)
	for i := 0; i < n; i++ {
		header[i] = t.schema.Name(i)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("table: write csv header: %w", err)
	}
	rec := make([]string, n)
	for r := 0; r < t.rows; r++ {
		for i := 0; i < n; i++ {
			rec[i] = strconv.Itoa(int(t.cols[i][r]))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("table: write csv row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a CSV stream produced by WriteCSV (or any CSV whose header
// names match the schema's attributes, in any column order) into a new
// table bound to the given schema.
func ReadCSV(s *schema.Schema, r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("table: read csv header: %w", err)
	}
	n := s.NumAttrs()
	if len(header) != n {
		return nil, fmt.Errorf("table: csv has %d columns, schema has %d attributes", len(header), n)
	}
	// colFor[j] is the schema attribute index stored in csv column j.
	colFor := make([]int, len(header))
	seen := make([]bool, n)
	for j, name := range header {
		idx := s.Index(name)
		if idx < 0 {
			return nil, fmt.Errorf("table: csv column %q not in schema", name)
		}
		if seen[idx] {
			return nil, fmt.Errorf("table: duplicate csv column %q", name)
		}
		seen[idx] = true
		colFor[j] = idx
	}
	t := New(s, 1024)
	row := make([]schema.Value, n)
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("table: read csv line %d: %w", line, err)
		}
		for j, field := range rec {
			v, err := strconv.Atoi(field)
			if err != nil {
				return nil, fmt.Errorf("table: csv line %d column %q: %w", line, header[j], err)
			}
			if v < 0 || v >= s.K(colFor[j]) {
				return nil, fmt.Errorf("table: csv line %d column %q: value %d out of domain [0,%d)", line, header[j], v, s.K(colFor[j]))
			}
			row[colFor[j]] = schema.Value(v)
		}
		if err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

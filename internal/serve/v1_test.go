package serve

import (
	"net/http"
	"runtime"
	"testing"
	"time"
)

// TestV1RoutesServeAllEndpoints exercises every endpoint through its /v1
// path and checks the versioned routes carry no deprecation marker.
func TestV1RoutesServeAllEndpoints(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	w := postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE temp > 7"})
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/plan: %d %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Deprecation") != "" {
		t.Error("/v1/plan carries a Deprecation header")
	}
	if resp := decodeResp[planResponse](t, w); resp.ExpectedCost <= 0 {
		t.Errorf("/v1/plan expected_cost = %g", resp.ExpectedCost)
	}

	w = postJSON(t, srv, "/v1/execute", planRequest{SQL: "SELECT * WHERE light > 11"})
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/execute: %d %s", w.Code, w.Body.String())
	}
	w = postJSON(t, srv, "/v1/ingest", ingestRequest{Rows: [][]int{{1, 2, 3, 4}}})
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/ingest: %d %s", w.Code, w.Body.String())
	}
	w = postJSON(t, srv, "/v1/refresh", refreshRequest{})
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/refresh: %d %s", w.Code, w.Body.String())
	}
	w = getPath(t, srv, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("/v1/stats: %d %s", w.Code, w.Body.String())
	}
}

// TestLegacyAliasesDeprecatedButIdentical pins the compatibility promise:
// unversioned paths still work, return the same payloads, and advertise
// their successor via Deprecation/Link headers.
func TestLegacyAliasesDeprecatedButIdentical(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	body := planRequest{SQL: "SELECT * WHERE temp > 7", NoCache: true}
	legacy := postJSON(t, srv, "/plan", body)
	if legacy.Code != http.StatusOK {
		t.Fatalf("/plan: %d %s", legacy.Code, legacy.Body.String())
	}
	if legacy.Header().Get("Deprecation") != "true" {
		t.Errorf("legacy /plan Deprecation header = %q, want \"true\"", legacy.Header().Get("Deprecation"))
	}
	if link := legacy.Header().Get("Link"); link != `</v1/plan>; rel="successor-version"` {
		t.Errorf("legacy /plan Link header = %q", link)
	}
	v1 := postJSON(t, srv, "/v1/plan", body)
	lr := decodeResp[planResponse](t, legacy)
	vr := decodeResp[planResponse](t, v1)
	if lr.Plan != vr.Plan || lr.ExpectedCost != vr.ExpectedCost || lr.PlanB64 != vr.PlanB64 {
		t.Error("legacy and /v1 plan responses differ")
	}

	for _, path := range []string{"/execute", "/ingest", "/refresh", "/stats"} {
		var w interface{ Header() http.Header }
		switch path {
		case "/stats":
			w = getPath(t, srv, path)
		case "/ingest":
			w = postJSON(t, srv, path, ingestRequest{Rows: [][]int{{0, 0, 0, 0}}})
		case "/refresh":
			w = postJSON(t, srv, path, refreshRequest{})
		default:
			w = postJSON(t, srv, path, planRequest{SQL: "SELECT * WHERE temp > 7"})
		}
		if w.Header().Get("Deprecation") != "true" {
			t.Errorf("legacy %s lacks Deprecation header", path)
		}
	}
}

// TestPlanParallelismRequest checks the parallelism knob: accepted and
// clamped, identical plans at every level, excluded from the cache key so
// differently-parallel clients share entries, and rejected when negative.
func TestPlanParallelismRequest(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	base := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11", Parallelism: 1}))
	for _, par := range []int{2, 4, runtime.GOMAXPROCS(0) + 100} {
		w := postJSON(t, srv, "/v1/plan",
			planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11", Parallelism: par})
		if w.Code != http.StatusOK {
			t.Fatalf("parallelism %d: %d %s", par, w.Code, w.Body.String())
		}
		resp := decodeResp[planResponse](t, w)
		if resp.PlanB64 != base.PlanB64 || resp.ExpectedCost != base.ExpectedCost {
			t.Errorf("parallelism %d changed the plan", par)
		}
		// Same cache key regardless of parallelism: every follow-up is a hit.
		if !resp.Cached {
			t.Errorf("parallelism %d missed the cache", par)
		}
	}
	if w := postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE temp > 7", Parallelism: -1}); w.Code != http.StatusBadRequest {
		t.Errorf("negative parallelism: %d, want 400", w.Code)
	}
}

// TestStrictModeTypedErrors pins the strict error contract: budget
// exhaustion is a 504 instead of a degraded plan, and an unsatisfiable
// query is a 422 instead of a constant-false plan.
func TestStrictModeTypedErrors(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.ExhaustiveBudget = 1 // starve the exhaustive search immediately
		c.DefaultTimeout = 5 * time.Second
	})
	defer shutdownServer(t, srv)

	// Non-strict: budget exhaustion degrades, 200 with degraded=true.
	lax := postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11", Planner: "exhaustive", NoCache: true})
	if lax.Code != http.StatusOK {
		t.Fatalf("lax exhaustive: %d %s", lax.Code, lax.Body.String())
	}
	if !decodeResp[planResponse](t, lax).Degraded {
		t.Error("budget-starved lax exhaustive not marked degraded")
	}

	// Strict: the same request is a 504 gateway timeout.
	strict := postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11", Planner: "exhaustive", Strict: true, NoCache: true})
	if strict.Code != http.StatusGatewayTimeout {
		t.Errorf("strict budget exhaustion: %d %s, want 504", strict.Code, strict.Body.String())
	}

	// Non-strict unsatisfiable: a constant-false plan.
	lax = postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE temp < 4 AND temp > 11"})
	if lax.Code != http.StatusOK {
		t.Fatalf("lax unsatisfiable: %d %s", lax.Code, lax.Body.String())
	}
	// Strict unsatisfiable: 422.
	strict = postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE temp < 4 AND temp > 11", Strict: true})
	if strict.Code != http.StatusUnprocessableEntity {
		t.Errorf("strict unsatisfiable: %d %s, want 422", strict.Code, strict.Body.String())
	}
}

// TestStrictSuccessIsCachedForEveryone checks that a strict request whose
// search completes feeds the shared cache: strictness affects failure
// handling, never which plan a successful run returns.
func TestStrictSuccessIsCachedForEveryone(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	first := postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE humid > 9", Strict: true, Parallelism: 2})
	if first.Code != http.StatusOK {
		t.Fatalf("strict plan: %d %s", first.Code, first.Body.String())
	}
	second := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan",
		planRequest{SQL: "SELECT * WHERE humid > 9"}))
	if !second.Cached {
		t.Error("lax request missed the cache a strict request populated")
	}
}

package serve

import (
	"context"
	"sync"
)

// flightGroup collapses concurrent calls with the same key into one
// execution whose result every caller shares — the standard singleflight
// pattern, hand-rolled on a channel (rather than a WaitGroup) so waiters
// can also abandon the wait when their context ends.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are set
	val  planOutcome
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flightCall)}
}

// do executes fn for key, unless a call for the same key is already in
// flight, in which case it waits for that call's result instead. shared
// reports whether the result came from another caller's execution. When
// ctx ends while waiting on another caller, do returns ctx.Err() — the
// in-flight execution itself is not cancelled, since its result may still
// serve other waiters and the cache.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (planOutcome, error)) (out planOutcome, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, true
		case <-ctx.Done():
			return planOutcome{}, ctx.Err(), true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// The serve hot path. A cache-hit /plan request repeats byte-for-byte —
// same body, same canonical query, same epoch — yet the regular path
// re-pays the mux walk, JSON decode, SQL parse, canonicalization, and
// JSON encode on every repeat. The fast cache short-circuits all of it:
// the first cache-hit answer is serialized once, and subsequent requests
// with identical body bytes replay the stored blob with only the
// per-request fields (elapsed_ms, request_id) spliced in, from pooled
// buffers, in near-zero allocations.
//
// Entries are installed only for answers that are a pure function of
// (body bytes, statistics epoch): standalone server, no fault what-if,
// no trace section, cache not bypassed, outcome not degraded or shared.
// Staleness is handled the same way as the plan cache — each entry
// records the epoch it was built at, a mismatch at lookup drops it, and
// a refresh that bumps the epoch purges the whole map.

// fastEntry is one pre-serialized /plan response. prefix holds the JSON
// object up to (excluding) the ",\"elapsed_ms\":" member; the writer
// appends the measured elapsed time and the request ID per request.
type fastEntry struct {
	epoch    uint64
	prefix   []byte
	countHit bool // a replay counts as a plan-cache hit in /metrics
	outcome  int  // latency-ring outcome the slow path would record
}

// fastCache maps exact request-body bytes to pre-serialized responses.
// Lookups take the read lock and index with a []byte-to-string
// conversion the compiler elides, so the hit path does not allocate.
type fastCache struct {
	mu      sync.RWMutex
	max     int
	entries map[string]*fastEntry
}

func newFastCache(max int) *fastCache {
	return &fastCache{max: max, entries: make(map[string]*fastEntry)}
}

// get returns the live entry for body at epoch; an entry built under
// another epoch is dropped so the slow path can rebuild it.
func (c *fastCache) get(body []byte, epoch uint64) *fastEntry {
	c.mu.RLock()
	e := c.entries[string(body)]
	c.mu.RUnlock()
	if e == nil {
		return nil
	}
	if e.epoch != epoch {
		c.mu.Lock()
		if c.entries[string(body)] == e {
			delete(c.entries, string(body))
		}
		c.mu.Unlock()
		return nil
	}
	return e
}

// add installs an entry unless the cache is full (replacing an existing
// key is always allowed, so epoch turnover cannot brick a hot body).
func (c *fastCache) add(body []byte, e *fastEntry) {
	c.mu.Lock()
	if len(c.entries) < c.max || c.entries[string(body)] != nil {
		c.entries[string(body)] = e
	}
	c.mu.Unlock()
}

// purge drops every entry; called when the statistics epoch advances.
func (c *fastCache) purge() {
	c.mu.Lock()
	c.entries = make(map[string]*fastEntry)
	c.mu.Unlock()
}

// fastScratch is the request-scoped buffer set for the fast path: the
// body read buffer, the response assembly buffer, and the generated
// request-ID buffer, recycled through a pool so steady-state hits
// allocate only the ID string and its header slot.
type fastScratch struct {
	body []byte
	out  []byte
	id   []byte
}

var fastScratchPool = sync.Pool{New: func() any {
	return &fastScratch{
		body: make([]byte, 0, 4096),
		out:  make([]byte, 0, 4096),
		id:   make([]byte, 0, 32),
	}
}}

// Preallocated header values shared across responses; handlers must
// never mutate header value slices, so sharing is safe.
var (
	headerJSON        = []string{"application/json"}
	headerDeprecation = []string{"true"}
	planAliasLink     = []string{`</v1/plan>; rel="successor-version"`}
)

// serveFast answers a POST /v1/plan (or legacy /plan alias) request
// whose exact body bytes hit the pre-serialized response cache. A false
// return means the request must take the regular path; the consumed
// body bytes have then been stitched back onto r.Body, so the regular
// handlers see the request untouched.
func (s *Server) serveFast(w http.ResponseWriter, r *http.Request, start time.Time) bool {
	sc := fastScratchPool.Get().(*fastScratch)
	body, rerr := readBody(sc.body[:0], r.Body, maxBodyBytes)
	sc.body = body
	id := r.Header.Get("X-Request-Id")
	var e *fastEntry
	if rerr == nil && len(body) <= maxBodyBytes && jsonSafe(id) {
		e = s.fast.get(body, s.Epoch())
	}
	if e == nil {
		// Miss: replay the consumed bytes (plus the unread remainder of an
		// oversized body, or the read error) for the regular handler.
		replay := io.Reader(bytes.NewReader(append([]byte(nil), body...)))
		if rerr != nil {
			replay = io.MultiReader(replay, errReader{rerr})
		} else if len(body) > maxBodyBytes {
			replay = io.MultiReader(replay, r.Body)
		}
		r.Body = io.NopCloser(replay)
		fastScratchPool.Put(sc)
		return false
	}
	count(&s.metrics.inFlight, 1)
	if id == "" {
		sc.id = appendRequestID(sc.id[:0], s.fastIDPrefix, count(&s.reqSeq, 1))
		id = string(sc.id)
	}
	h := w.Header()
	h["X-Request-Id"] = []string{id}
	if r.URL.Path == "/plan" {
		h["Deprecation"] = headerDeprecation
		h["Link"] = planAliasLink
	}
	h["Content-Type"] = headerJSON
	out := append(sc.out[:0], e.prefix...)
	out = append(out, `,"elapsed_ms":`...)
	out = strconv.AppendFloat(out, float64(time.Since(start))/float64(time.Millisecond), 'f', -1, 64)
	out = append(out, `,"request_id":"`...)
	out = append(out, id...)
	out = append(out, '"', '}', '\n')
	w.WriteHeader(http.StatusOK)
	n, _ := w.Write(out)
	if e.countHit {
		count(&s.metrics.cacheHits, 1)
	}
	s.metrics.recordRequest(epPlan, e.outcome, time.Since(start))
	s.metrics.inFlight.Add(-1)
	if s.cfg.AccessLog != nil {
		fmt.Fprintf(s.cfg.AccessLog, "time=%s request_id=%s method=%s path=%s status=%d bytes=%d dur_ms=%.3f\n",
			start.UTC().Format(time.RFC3339Nano), id, r.Method, r.URL.Path, http.StatusOK, n,
			float64(time.Since(start))/float64(time.Millisecond))
	}
	sc.out = out
	fastScratchPool.Put(sc)
	return true
}

// maybeInstallFast stores a just-served /plan answer in the fast cache
// when it is a pure function of the body bytes and the epoch. raw is
// the request body exactly as received.
func (s *Server) maybeInstallFast(raw []byte, req planRequest, p plannerParams, resp planResponse, trivial, cached bool) {
	if s.cluster != nil || req.Faults != nil || req.NoCache || p.traced {
		return
	}
	if !cached && !trivial {
		return
	}
	if resp.Degraded || resp.Shared || resp.Forwarded || resp.Node != "" || resp.Trace != nil {
		return
	}
	blank := resp
	blank.RequestID = ""
	blank.ElapsedMS = 0
	blob, err := json.Marshal(blank)
	if err != nil {
		return
	}
	// With the per-request fields blanked and the omitempty tail fields
	// empty, the serialization must end in the elapsed_ms member; if the
	// response shape ever changes, refuse to install rather than splice
	// into the wrong place.
	const tail = `,"elapsed_ms":0}`
	if !bytes.HasSuffix(blob, []byte(tail)) {
		return
	}
	outcome := outcomeMiss // a trivial answer records as a miss, like the slow path
	if cached {
		outcome = outcomeHit
	}
	s.fast.add(raw, &fastEntry{
		epoch:    resp.Epoch,
		prefix:   blob[:len(blob)-len(tail)],
		countHit: cached,
		outcome:  outcome,
	})
}

// readBody appends the reader's bytes to dst, stopping shortly after
// limit so oversized bodies are detected without being fully buffered.
func readBody(dst []byte, r io.Reader, limit int) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
		if len(dst) > limit {
			return dst, nil
		}
	}
}

// errReader replays a body-read error to the regular handler after a
// fast-path miss consumed the readable prefix.
type errReader struct{ err error }

func (e errReader) Read([]byte) (int, error) { return 0, e.err }

// jsonSafe reports whether id serializes to itself inside a JSON string
// under encoding/json's escaping rules (including HTML escaping).
// Unsafe IDs take the slow path rather than being escaped here.
func jsonSafe(id string) bool {
	for i := 0; i < len(id); i++ {
		c := id[i]
		if c < 0x20 || c >= 0x80 || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendRequestID renders the generated request-ID format — the
// server's start-stamp prefix plus "%06x" of the sequence — without
// going through fmt.
func appendRequestID(b, prefix []byte, seq int64) []byte {
	b = append(b, prefix...)
	var tmp [16]byte
	t := strconv.AppendInt(tmp[:0], seq, 16)
	for i := len(t); i < 6; i++ {
		b = append(b, '0')
	}
	return append(b, t...)
}

package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// TestShutdownInterruptsFallbackRun pins the context-plumbing fix for the
// exhaustive planner's degradation fallback: the fallback must run under
// the server's base context, so Shutdown interrupts it. Before the fix the
// fallback ran under context.Background() and completed (HTTP 200) even
// though the server had already shut down around it.
func TestShutdownInterruptsFallbackRun(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.ExhaustiveBudget = 1 })
	entered := make(chan struct{})
	release := make(chan struct{})
	srv.hookBeforeFallback = func() {
		close(entered)
		<-release
	}

	raw, err := json.Marshal(planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11 AND hour < 12", Planner: "exhaustive"})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan *httptest.ResponseRecorder, 1)
	go func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(raw))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		done <- w
	}()
	<-entered

	// Start Shutdown while the worker is parked at the fallback boundary.
	// It cancels baseCtx immediately, then blocks waiting for the worker.
	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	select {
	case <-srv.baseCtx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not cancel baseCtx")
	}
	close(release)

	w := <-done
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("fallback run after shutdown: got HTTP %d (%s), want 503", w.Code, w.Body.String())
	}
	if err := <-shutdownErr; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestPlanTraceSection checks the opt-in trace section: present with
// phase timings and counters on a planner run, absent on a cache hit
// (no planner ran), and absent when not requested.
func TestPlanTraceSection(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	req := planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11", Trace: true}
	w := postJSON(t, srv, "/v1/plan", req)
	if w.Code != http.StatusOK {
		t.Fatalf("plan: HTTP %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResp[planResponse](t, w)
	if resp.Trace == nil {
		t.Fatal("traced planner run returned no trace section")
	}
	if len(resp.Trace.Phases) == 0 {
		t.Error("trace has no phases")
	}
	names := make(map[string]bool)
	for _, p := range resp.Trace.Phases {
		names[p.Name] = true
	}
	for _, want := range []string{"greedy-seed", "greedy-expand", "greedy-simplify"} {
		if !names[want] {
			t.Errorf("trace missing phase %q: %+v", want, resp.Trace.Phases)
		}
	}
	if len(resp.Trace.Counters) == 0 {
		t.Error("trace has no counters")
	}

	// Same request again: a cache hit carries no trace.
	w2 := postJSON(t, srv, "/v1/plan", req)
	resp2 := decodeResp[planResponse](t, w2)
	if !resp2.Cached {
		t.Fatal("second identical request was not a cache hit")
	}
	if resp2.Trace != nil {
		t.Errorf("cache hit carried a trace section: %+v", resp2.Trace)
	}

	// Untraced request to a fresh query: no trace section.
	w3 := postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE humid = 5"})
	resp3 := decodeResp[planResponse](t, w3)
	if resp3.Trace != nil {
		t.Errorf("untraced request carried a trace section: %+v", resp3.Trace)
	}
}

// TestPlanByteIdenticalWithTrace pins the tentpole invariant at the serve
// layer: trace=true never changes the plan, its cost, or its encoding.
func TestPlanByteIdenticalWithTrace(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	for _, sqlText := range []string{
		"SELECT * WHERE temp > 7 AND light > 11",
		"SELECT * WHERE hour < 12 AND light <= 3",
		"SELECT * WHERE humid = 5 AND temp >= 4",
	} {
		plain := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan",
			planRequest{SQL: sqlText, NoCache: true}))
		traced := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan",
			planRequest{SQL: sqlText, NoCache: true, Trace: true}))
		if plain.PlanB64 != traced.PlanB64 {
			t.Errorf("%s: traced plan encoding differs", sqlText)
		}
		if plain.Plan != traced.Plan {
			t.Errorf("%s: traced plan rendering differs", sqlText)
		}
		if math.Float64bits(plain.ExpectedCost) != math.Float64bits(traced.ExpectedCost) {
			t.Errorf("%s: traced expected cost differs: %v vs %v", sqlText, plain.ExpectedCost, traced.ExpectedCost)
		}
	}
}

// TestExecuteTraceSection checks the per-node execution heatmap: node
// costs must sum exactly to the observed total, the root's visit count
// must equal the tuple count, and the observed mean must match the
// response's mean cost.
func TestExecuteTraceSection(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	w := postJSON(t, srv, "/v1/execute", planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11", Trace: true})
	if w.Code != http.StatusOK {
		t.Fatalf("execute: HTTP %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResp[executeResponse](t, w)
	if resp.ExecTrace == nil {
		t.Fatal("traced execute returned no exec_trace section")
	}
	et := resp.ExecTrace
	if len(et.Nodes) == 0 {
		t.Fatal("exec_trace has no nodes")
	}
	var sum float64
	for _, n := range et.Nodes {
		if n.Label == "" {
			t.Errorf("node %d has no label", n.ID)
		}
		sum += n.Cost
	}
	// Pristine execution with integer per-attribute costs: the heatmap
	// must account for the total exactly, bit for bit.
	if math.Float64bits(sum) != math.Float64bits(et.ObservedTotal) {
		t.Errorf("node costs sum to %v, observed total %v", sum, et.ObservedTotal)
	}
	if et.Nodes[0].Visits != int64(resp.Tuples) {
		t.Errorf("root visits = %d, tuples = %d", et.Nodes[0].Visits, resp.Tuples)
	}
	if resp.Tuples > 0 && math.Abs(et.ObservedMean-resp.MeanCost) > 1e-9 {
		t.Errorf("observed mean %v != response mean cost %v", et.ObservedMean, resp.MeanCost)
	}
	if math.Float64bits(et.PredictedMean) != math.Float64bits(resp.ExpectedCost) {
		t.Errorf("predicted mean %v != expected cost %v", et.PredictedMean, resp.ExpectedCost)
	}

	// Untraced execute: no exec_trace and identical execution results.
	w2 := postJSON(t, srv, "/v1/execute", planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11"})
	resp2 := decodeResp[executeResponse](t, w2)
	if resp2.ExecTrace != nil {
		t.Error("untraced execute carried an exec_trace section")
	}
	if resp2.Tuples != resp.Tuples || resp2.Selected != resp.Selected ||
		math.Float64bits(resp2.MeanCost) != math.Float64bits(resp.MeanCost) ||
		math.Float64bits(resp2.MaxCost) != math.Float64bits(resp.MaxCost) {
		t.Errorf("traced execution results differ from untraced: %+v vs %+v", resp2, resp)
	}
}

// TestExecuteFaultTraceSection checks the heatmap under fault injection
// with replanning: residual-plan charges are totals-only, so the node sum
// may fall below the observed total but never exceed it.
func TestExecuteFaultTraceSection(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	w := postJSON(t, srv, "/v1/execute", planRequest{
		SQL:    "SELECT * WHERE temp > 7 AND light > 11",
		Trace:  true,
		Faults: &faultSpec{Seed: 7, Dead: []string{"light"}, Policy: "replan"},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("execute: HTTP %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResp[executeResponse](t, w)
	if resp.ExecTrace == nil {
		t.Fatal("traced faulty execute returned no exec_trace section")
	}
	var sum float64
	for _, n := range resp.ExecTrace.Nodes {
		sum += n.Cost
	}
	if sum > resp.ExecTrace.ObservedTotal+1e-9 {
		t.Errorf("node cost sum %v exceeds observed total %v", sum, resp.ExecTrace.ObservedTotal)
	}
}

// TestRequestIDPropagation checks that a caller-provided X-Request-Id is
// echoed in the response header and body, and that one is generated when
// absent.
func TestRequestIDPropagation(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	raw := []byte(`{"sql":"SELECT * WHERE temp > 7"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(raw))
	req.Header.Set("X-Request-Id", "client-abc-123")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if got := w.Header().Get("X-Request-Id"); got != "client-abc-123" {
		t.Errorf("response header X-Request-Id = %q, want client-abc-123", got)
	}
	resp := decodeResp[planResponse](t, w)
	if resp.RequestID != "client-abc-123" {
		t.Errorf("body request_id = %q, want client-abc-123", resp.RequestID)
	}

	req2 := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(raw))
	w2 := httptest.NewRecorder()
	srv.ServeHTTP(w2, req2)
	if got := w2.Header().Get("X-Request-Id"); got == "" {
		t.Error("no X-Request-Id generated for a request without one")
	}
	if resp2 := decodeResp[planResponse](t, w2); resp2.RequestID == "" {
		t.Error("no request_id in body for a request without X-Request-Id")
	}
}

// TestAccessLog checks the structured per-request log line.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	srv := newTestServer(t, func(c *Config) { c.AccessLog = &buf })
	defer shutdownServer(t, srv)

	raw := []byte(`{"sql":"SELECT * WHERE temp > 7"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(raw))
	req.Header.Set("X-Request-Id", "log-check-1")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)

	line := buf.String()
	for _, want := range []string{"request_id=log-check-1", "method=POST", "path=/v1/plan", "status=200", "dur_ms="} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line %q missing %q", line, want)
		}
	}
}

// TestRequestBodyLimit413 checks that an oversized request body is
// rejected with 413, not 400.
func TestRequestBodyLimit413(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	big := []byte(`{"sql":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}`)
	req := httptest.NewRequest(http.MethodPost, "/v1/plan", bytes.NewReader(big))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body: HTTP %d, want 413", w.Code)
	}
}

// TestRequestLatencyRings checks that the per-endpoint rings record hits,
// misses, and degraded outcomes on both /plan and /execute.
func TestRequestLatencyRings(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.ExhaustiveBudget = 1 })
	defer shutdownServer(t, srv)

	sample := func(ep, oc int) int {
		r := &srv.metrics.requests[ep][oc]
		r.mu.Lock()
		defer r.mu.Unlock()
		return r.n
	}

	req := planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11"}
	if w := postJSON(t, srv, "/v1/plan", req); w.Code != http.StatusOK {
		t.Fatalf("plan: HTTP %d: %s", w.Code, w.Body.String())
	}
	if sample(epPlan, outcomeMiss) == 0 {
		t.Error("plan miss not recorded")
	}
	if w := postJSON(t, srv, "/v1/plan", req); w.Code != http.StatusOK {
		t.Fatalf("plan: HTTP %d: %s", w.Code, w.Body.String())
	}
	if sample(epPlan, outcomeHit) == 0 {
		t.Error("plan cache hit not recorded")
	}
	if w := postJSON(t, srv, "/v1/execute", req); w.Code != http.StatusOK {
		t.Fatalf("execute: HTTP %d: %s", w.Code, w.Body.String())
	}
	if sample(epExecute, outcomeHit) == 0 {
		t.Error("execute hit not recorded")
	}

	// Budget-1 exhaustive degrades to the sequential fallback.
	dreq := planRequest{SQL: "SELECT * WHERE hour < 12 AND light <= 3", Planner: "exhaustive"}
	w := postJSON(t, srv, "/v1/plan", dreq)
	resp := decodeResp[planResponse](t, w)
	if !resp.Degraded {
		t.Fatalf("expected a degraded plan outcome, got %+v", resp)
	}
	if sample(epPlan, outcomeDegraded) == 0 {
		t.Error("degraded plan outcome not recorded")
	}
}

// TestMetricsPrometheusParse checks that /metrics output — including the
// new labelled request-latency gauges and search counters — parses as
// Prometheus text exposition lines with finite values.
func TestMetricsPrometheusParse(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	// Generate some traffic so the gauges are non-trivial.
	req := planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11"}
	for i := 0; i < 2; i++ {
		if w := postJSON(t, srv, "/v1/plan", req); w.Code != http.StatusOK {
			t.Fatalf("plan: HTTP %d", w.Code)
		}
	}
	if w := postJSON(t, srv, "/v1/execute", req); w.Code != http.StatusOK {
		t.Fatalf("execute: HTTP %d", w.Code)
	}

	w := getPath(t, srv, "/metrics")
	if w.Code != http.StatusOK {
		t.Fatalf("/metrics: HTTP %d", w.Code)
	}
	seen := make(map[string]bool)
	for _, line := range strings.Split(strings.TrimRight(w.Body.String(), "\n"), "\n") {
		name, value, ok := parsePromLine(line)
		if !ok {
			t.Errorf("line %q is not valid Prometheus text format", line)
			continue
		}
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			t.Errorf("line %q: value %q is not a float: %v", line, value, err)
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("line %q: non-finite value", line)
		}
		seen[name] = true
	}
	for _, want := range []string{
		"acqserved_cache_hits",
		"acqserved_search_candidates",
		"acqserved_request_latency_ms",
	} {
		if !seen[want] {
			t.Errorf("/metrics missing %s", want)
		}
	}
}

// parsePromLine validates one exposition line: name[{labels}] value.
func parsePromLine(line string) (name, value string, ok bool) {
	sp := strings.LastIndex(line, " ")
	if sp < 0 {
		return "", "", false
	}
	name, value = line[:sp], line[sp+1:]
	if i := strings.IndexByte(name, '{'); i >= 0 {
		if !strings.HasSuffix(name, "}") {
			return "", "", false
		}
		labels := name[i+1 : len(name)-1]
		name = name[:i]
		for _, kv := range strings.Split(labels, ",") {
			eq := strings.Index(kv, "=")
			if eq <= 0 || len(kv) < eq+3 || kv[eq+1] != '"' || !strings.HasSuffix(kv, `"`) {
				return "", "", false
			}
		}
	}
	if name == "" {
		return "", "", false
	}
	for _, r := range name {
		if !(r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9') {
			return "", "", false
		}
	}
	return name, value, true
}

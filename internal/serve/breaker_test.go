package serve

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	now := time.Unix(1_700_000_000, 0)
	b := newBreaker(3, 10*time.Second)

	// Closed: admits everything; failures below the threshold keep it
	// closed, a success resets the streak.
	for i := 0; i < 2; i++ {
		if !b.allow(now) {
			t.Fatalf("closed breaker refused request %d", i)
		}
		if b.failure(now) {
			t.Fatalf("failure %d opened the breaker below threshold", i+1)
		}
	}
	b.success()
	if b.failure(now) || b.failure(now) {
		t.Fatal("success did not reset the failure streak")
	}
	if !b.failure(now) {
		t.Fatal("third consecutive failure did not open the breaker")
	}
	if st := b.snapshot(); st != breakerOpen {
		t.Fatalf("state %d after opening, want open", st)
	}

	// Open: refuses until the cooldown elapses, then admits exactly one
	// probe.
	if b.allow(now.Add(9 * time.Second)) {
		t.Fatal("open breaker admitted a request inside the cooldown")
	}
	probeAt := now.Add(11 * time.Second)
	if !b.allow(probeAt) {
		t.Fatal("cooldown elapsed but no probe admitted")
	}
	if st := b.snapshot(); st != breakerHalfOpen {
		t.Fatalf("state %d during the probe, want half-open", st)
	}
	if b.allow(probeAt) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	// Failed probe: re-opens for a fresh cooldown.
	if !b.failure(probeAt) {
		t.Fatal("failed probe did not re-open the breaker")
	}
	if b.allow(probeAt.Add(9 * time.Second)) {
		t.Fatal("re-opened breaker did not restart the cooldown")
	}
	probe2 := probeAt.Add(11 * time.Second)
	if !b.allow(probe2) {
		t.Fatal("second cooldown elapsed but no probe admitted")
	}
	// Successful probe: closed and fully reset.
	b.success()
	if st := b.snapshot(); st != breakerClosed {
		t.Fatalf("state %d after a successful probe, want closed", st)
	}
	if !b.allow(probe2) {
		t.Fatal("closed breaker refused a request")
	}
}

func TestRetryBudget(t *testing.T) {
	rb := newRetryBudget(0.5, 2)
	// Starts full at the cap.
	if !rb.withdraw() || !rb.withdraw() {
		t.Fatal("full budget refused withdrawals")
	}
	if rb.withdraw() {
		t.Fatal("empty budget granted a retry")
	}
	// Two first attempts earn one retry token at ratio 0.5.
	rb.deposit()
	if rb.withdraw() {
		t.Fatal("half a token granted a retry")
	}
	rb.deposit()
	if !rb.withdraw() {
		t.Fatal("earned token refused")
	}
	// Deposits cap at the bucket size.
	for i := 0; i < 100; i++ {
		rb.deposit()
	}
	granted := 0
	for rb.withdraw() {
		granted++
	}
	if granted != 2 {
		t.Fatalf("capped bucket granted %d retries, want 2", granted)
	}
}

package serve

import (
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"acqp/internal/model"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// TestPlanModelSelection pins the model field end-to-end: every registry
// backend plans successfully and is echoed back, unknown names are 400s,
// and a request without the field gets a response without it — the
// byte-level compatibility contract for legacy clients.
func TestPlanModelSelection(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	const sql = "SELECT * WHERE temp > 7 AND light > 11"

	baseline := postJSON(t, srv, "/v1/plan", planRequest{SQL: sql})
	if baseline.Code != http.StatusOK {
		t.Fatalf("baseline plan: status %d: %s", baseline.Code, baseline.Body.String())
	}
	if strings.Contains(baseline.Body.String(), `"model"`) {
		t.Errorf("response without a requested model carries a model field: %s", baseline.Body.String())
	}

	for _, name := range model.Names() {
		w := postJSON(t, srv, "/v1/plan", planRequest{SQL: sql, Model: name})
		if w.Code != http.StatusOK {
			t.Fatalf("model %q: status %d: %s", name, w.Code, w.Body.String())
		}
		resp := decodeResp[planResponse](t, w)
		if resp.Model != name {
			t.Errorf("model %q echoed as %q", name, resp.Model)
		}
		if resp.Plan == "" || resp.PlanB64 == "" {
			t.Errorf("model %q returned an empty plan", name)
		}
	}

	if w := postJSON(t, srv, "/v1/plan", planRequest{SQL: sql, Model: "neural"}); w.Code != http.StatusBadRequest {
		t.Errorf("unknown model: status %d, want 400: %s", w.Code, w.Body.String())
	}
}

// TestPlanModelCacheSeparation pins the cache-key contract: an explicit
// "empirical" shares entries with the absent-field default (its key is
// unchanged), while fitted backends get their own entries.
func TestPlanModelCacheSeparation(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	const sql = "SELECT * WHERE temp > 7"

	if first := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: sql})); first.Cached {
		t.Fatal("first default plan claims a cache hit")
	}
	if again := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: sql, Model: model.NameEmpirical})); !again.Cached {
		t.Error("explicit empirical did not share the default's cache entry")
	}
	if cl := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: sql, Model: model.NameChowLiu})); cl.Cached {
		t.Error("chowliu hit the empirical cache entry; model is missing from the key")
	}
	if cl2 := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: sql, Model: model.NameChowLiu})); !cl2.Cached {
		t.Error("repeated chowliu plan missed the cache")
	}
}

// TestServerDefaultModel covers the -model server default: requests
// without the field plan against (and echo) the configured backend, and
// an unknown default is a construction-time error.
func TestServerDefaultModel(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.DefaultModel = model.NameChowLiu })
	defer shutdownServer(t, srv)

	resp := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE temp > 7"}))
	if resp.Model != model.NameChowLiu {
		t.Errorf("default-model server echoed %q, want %q", resp.Model, model.NameChowLiu)
	}

	s := testSchema()
	if _, err := New(Config{Schema: s, History: testHistory(s, 100, 1), DefaultModel: "neural"}); err == nil {
		t.Error("New accepted an unknown default model")
	}
}

// TestModelRefitOnEpochBump drives a drifted refresh and checks fitted
// backends follow the epoch: the post-refresh plan is fresh, carries the
// new epoch, and the fit counter shows a refit happened.
func TestModelRefitOnEpochBump(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.WindowSize = 2048
		c.DefaultModel = model.NameBN
	})
	defer shutdownServer(t, srv)
	const sql = "SELECT * WHERE temp > 7"

	first := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: sql}))
	if first.Epoch != 1 || first.Model != model.NameBN {
		t.Fatalf("first plan: epoch %d model %q", first.Epoch, first.Model)
	}
	fitsBefore := srv.metrics.modelFits.Load()
	if fitsBefore < 1 {
		t.Fatalf("no model fit recorded before refresh")
	}

	rng := rand.New(rand.NewSource(7))
	rows := make([][]int, 2048)
	for i := range rows {
		rows[i] = []int{rng.Intn(24), 12 + rng.Intn(4), rng.Intn(4), rng.Intn(16)}
	}
	if ing := decodeResp[ingestResponse](t, postJSON(t, srv, "/ingest", ingestRequest{Rows: rows})); ing.Accepted != 2048 {
		t.Fatalf("ingest accepted %d rows", ing.Accepted)
	}
	ref := decodeResp[refreshResponse](t, postJSON(t, srv, "/refresh", refreshRequest{Force: true}))
	if !ref.Refreshed || ref.Epoch != 2 {
		t.Fatalf("refresh: %+v", ref)
	}
	if fits := srv.metrics.modelFits.Load(); fits != fitsBefore+1 {
		t.Errorf("refresh refit the default model %d times, want exactly once (counter %d -> %d)", fits-fitsBefore, fitsBefore, fits)
	}

	fresh := decodeResp[planResponse](t, postJSON(t, srv, "/v1/plan", planRequest{SQL: sql}))
	if fresh.Cached || fresh.Epoch != 2 {
		t.Errorf("post-refresh plan: cached %v epoch %d, want fresh at epoch 2", fresh.Cached, fresh.Epoch)
	}
}

// TestPlanTooManyPredicates pins the stats-layer mask width as a 422 at
// the API boundary rather than a panic-turned-500 inside planning.
func TestPlanTooManyPredicates(t *testing.T) {
	attrs := make([]schema.Attribute, stats.MaxJointPreds+1)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: fmt.Sprintf("a%d", i), K: 4, Cost: 1}
	}
	s := schema.New(attrs...)
	rng := rand.New(rand.NewSource(3))
	tbl := testWideTable(s, 64, rng)
	srv, err := New(Config{Schema: s, History: tbl})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdownServer(t, srv)

	var conj []string
	for i := 0; i < stats.MaxJointPreds+1; i++ {
		conj = append(conj, fmt.Sprintf("a%d > 0", i))
	}
	w := postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE " + strings.Join(conj, " AND ")})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("%d-predicate plan: status %d, want 422: %s", stats.MaxJointPreds+1, w.Code, w.Body.String())
	}
	if !strings.Contains(w.Body.String(), "invalid request") {
		t.Errorf("422 body does not carry the typed verdict: %s", w.Body.String())
	}

	// One predicate fewer plans fine.
	ok := postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE " + strings.Join(conj[:stats.MaxJointPreds], " AND ")})
	if ok.Code != http.StatusOK {
		t.Errorf("%d-predicate plan: status %d, want 200: %s", stats.MaxJointPreds, ok.Code, ok.Body.String())
	}
}

// testWideTable fills a table with uniform random values for wide-schema
// tests.
func testWideTable(s *schema.Schema, rows int, rng *rand.Rand) *table.Table {
	tbl := table.New(s, rows)
	row := make([]schema.Value, s.NumAttrs())
	for r := 0; r < rows; r++ {
		for a := range row {
			row[a] = schema.Value(rng.Intn(s.K(a)))
		}
		tbl.MustAppendRow(row)
	}
	return tbl
}

// TestRequestIDPrefixUnique is the regression test for the truncated
// request-ID prefix: two instances started at the very same nanosecond
// must still mint distinct ID streams, and the timestamp half must keep
// all 64 bits.
func TestRequestIDPrefixUnique(t *testing.T) {
	started := time.Unix(0, 0x1122334455667788)
	a, b := string(idPrefix(started)), string(idPrefix(started))
	if a == b {
		t.Fatalf("identical start times produced identical ID prefixes %q", a)
	}
	for _, p := range []string{a, b} {
		if !strings.HasPrefix(p, "1122334455667788-") {
			t.Errorf("prefix %q lost timestamp bits, want full 64-bit nanos first", p)
		}
		if !strings.HasSuffix(p, "-") {
			t.Errorf("prefix %q does not end with the separator", p)
		}
	}
}

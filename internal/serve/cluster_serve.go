package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"acqp/internal/cluster"
	"acqp/internal/query"
)

// Clustered serving: N acqserved processes share the planning load by
// rendezvous-hashing each canonical query to one shard owner. The owner
// runs (and caches) the planner; every other node forwards /v1/plan to
// it over an internal hop, so the exponential-cost planners run exactly
// once cluster-wide per distinct query — the in-process singleflight
// guarantee, extended across processes. Statistics epochs stay coherent
// through internal/cluster's gossip: a drift refresh on one node bumps
// every peer's epoch and purges their stale cache entries; the
// distributions themselves remain local (each node re-learns from its
// own window), which is safe because only a key's owner plans it.

// ClusterConfig joins a Server to a planning cluster.
type ClusterConfig struct {
	// Self is the URL peers reach this node at (scheme://host:port, no
	// trailing slash). Required.
	Self string
	// Peers are the other members' URLs (static seed list; more can join
	// over HTTP).
	Peers []string
	// GossipInterval is the heartbeat/anti-entropy cadence. Zero means
	// no background loop — tests drive the protocol by hand through the
	// cluster.Node.
	GossipInterval time.Duration
	// FailAfter is the consecutive-failure threshold for declaring a
	// peer dead. Default 3.
	FailAfter int
	// Seed makes the gossip jitter reproducible. Default 1.
	Seed uint64
	// ForwardTimeout bounds one forwarded planning request (and one
	// gossip exchange). Default 5s.
	ForwardTimeout time.Duration
	// Logf receives membership transitions; nil silences them.
	Logf func(format string, args ...any)
}

// Forwarding headers. Hops guards against routing loops: a request that
// already took an internal hop is always planned where it lands, even
// if membership views briefly diverge on who owns the key.
const (
	hopsHeader = "X-Acq-Cluster-Hops"
	fromHeader = "X-Acq-Cluster-From"
)

// startCluster wires the cluster node into the server: routes, the
// forwarding client, and the gossip loop (under baseCtx, so Shutdown
// stops it).
func (s *Server) startCluster(cc *ClusterConfig) error {
	ft := cc.ForwardTimeout
	if ft <= 0 {
		ft = 5 * time.Second
	}
	client := &http.Client{Timeout: ft}
	n, err := cluster.New(cluster.Config{
		Self:           cc.Self,
		Peers:          cc.Peers,
		GossipInterval: cc.GossipInterval,
		FailAfter:      cc.FailAfter,
		Seed:           cc.Seed,
		Now:            time.Now,
		Client:         client,
		Local:          s,
		Logf:           cc.Logf,
	})
	if err != nil {
		return err
	}
	s.cluster = n
	s.clusterSelf = cc.Self
	s.forwardClient = client
	s.mux.Handle("/v1/cluster", n)
	s.mux.Handle("/v1/cluster/", n)
	n.Start(s.baseCtx)
	return nil
}

// Server implements cluster.Local: the epoch accessor lives in
// serve.go; StatsDigest and AdvanceTo follow.

// StatsDigest hashes the current distribution's marginal histograms
// (with the epoch folded in), giving gossip a cheap fingerprint that
// distinguishes "same epoch, same statistics" from "same epoch,
// diverged statistics" in cluster introspection.
func (s *Server) StatsDigest() uint64 {
	dist, epoch := s.snapshot()
	root := dist.Root() // fresh conditioning context, private to this call
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], epoch)
	_, _ = h.Write(buf[:])
	sch := dist.Schema()
	for i := 0; i < sch.NumAttrs(); i++ {
		for _, v := range root.Hist(i) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// AdvanceTo installs a statistics epoch learned from a peer: the local
// epoch ratchets up to it and cache entries planned under older epochs
// are purged — the cross-node half of the drift-invalidation story. The
// distribution is deliberately left in place: epochs are the cluster's
// cache-coherence clock, while distributions stay local to each node's
// window (and only a key's owner plans it, so nodes never mix plans
// from diverged statistics for the same key).
func (s *Server) AdvanceTo(epoch uint64, from string) (uint64, int) {
	s.mu.Lock()
	if epoch <= s.epoch {
		cur := s.epoch
		s.mu.Unlock()
		return cur, 0
	}
	s.epoch = epoch
	s.mu.Unlock()
	purged := s.cache.invalidateBefore(epoch)
	count(&s.metrics.invalidated, int64(purged))
	count(&s.metrics.epochBumps, 1)
	if from != "" {
		count(&s.metrics.peer(from).epochBumps, 1)
	}
	return epoch, purged
}

// remoteError relays a shard owner's HTTP error verbatim: the owner
// already rendered the right status and JSON body (400, 422, 503, ...),
// so the forwarding node must not re-wrap it.
type remoteError struct {
	status     int
	body       []byte
	retryAfter string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("shard owner returned %d: %s", e.status, bytes.TrimSpace(e.body))
}

// planRouted answers a planning request under cluster routing:
//
//   - no cluster, we own the key, or the request already took an
//     internal hop → plan locally through the cache;
//   - a peer owns the key → forward the raw request to it;
//   - the owner is unreachable → report the failure, plan locally at
//     the last-known epoch, and mark the outcome degraded (never
//     cached) — answers over errors during a partition.
//
// servedBy is the advertised URL of the node that did the planning work
// ("" when unclustered) and forwarded reports an internal hop.
func (s *Server) planRouted(r *http.Request, canon query.Query, p plannerParams, req planRequest, raw []byte) (out planOutcome, cached, shared bool, servedBy string, forwarded bool, err error) {
	if s.cluster == nil {
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		return out, cached, shared, "", false, err
	}
	if hops, _ := strconv.Atoi(r.Header.Get(hopsHeader)); hops > 0 {
		if from := r.Header.Get(fromHeader); from != "" {
			count(&s.metrics.peer(from).forwardsReceived, 1)
		}
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		return out, cached, shared, s.clusterSelf, false, err
	}
	owner, self := s.cluster.Owner(canon.Key())
	if self {
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		return out, cached, shared, s.clusterSelf, false, err
	}
	count(&s.metrics.peer(owner).forwardsSent, 1)
	resp, ferr := s.forwardPlan(r.Context(), owner, raw)
	if ferr == nil {
		return outcomeFromRemote(resp), resp.Cached, resp.Shared, owner, true, nil
	}
	var re *remoteError
	if errors.As(ferr, &re) {
		// The owner is reachable and answered; its verdict stands.
		return planOutcome{}, false, false, owner, true, ferr
	}
	// The owner is unreachable: a partition, not a planning failure.
	// Feed the failure detector and plan locally at the last-known
	// epoch. The result is marked degraded and bypasses the cache in
	// both directions — it may have been built from statistics the
	// cluster has already moved past, so it must neither persist nor be
	// served to a later request that could reach the owner.
	s.cluster.ReportFailure(owner)
	count(&s.metrics.peer(owner).forwardFailures, 1)
	count(&s.metrics.degradedPartition, 1)
	out, _, shared, err = s.planCached(r.Context(), canon, p, true, true)
	if err != nil {
		return planOutcome{}, false, false, s.clusterSelf, false, err
	}
	out.degraded = true
	return out, false, shared, s.clusterSelf, false, nil
}

// forwardPlan relays a /v1/plan body to the shard owner. A *remoteError
// means the owner answered with a non-200 status; any other error means
// it could not be reached (or spoke garbage) and the caller should take
// the partition path.
func (s *Server) forwardPlan(ctx context.Context, owner string, raw []byte) (*planResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/plan", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(hopsHeader, "1")
	hreq.Header.Set(fromHeader, s.clusterSelf)
	if id := requestIDFrom(ctx); id != "" {
		hreq.Header.Set("X-Request-Id", id)
	}
	resp, err := s.forwardClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &remoteError{status: resp.StatusCode, body: body, retryAfter: resp.Header.Get("Retry-After")}
	}
	var pr planResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, fmt.Errorf("decoding shard owner response: %w", err)
	}
	return &pr, nil
}

// outcomeFromRemote reshapes the owner's response for the local
// handler. The decoded plan node is not materialized — /v1/plan renders
// from the owner's strings, and /execute never forwards.
func outcomeFromRemote(pr *planResponse) planOutcome {
	return planOutcome{
		rendered:  pr.Plan,
		encoded:   pr.PlanB64,
		cost:      pr.ExpectedCost,
		naiveCost: pr.NaiveCost,
		splits:    pr.Splits,
		sizeBytes: pr.SizeBytes,
		degraded:  pr.Degraded,
		epoch:     pr.Epoch,
		planMS:    pr.PlanMS,
		traceSnap: pr.Trace,
	}
}

// handleReadyz serves GET /readyz: readiness, as distinct from the
// liveness /healthz. An unclustered server is ready once it is serving;
// a clustered one is not ready while joining, while any peer is
// unresolved, or while its statistics epoch lags the gossiped cluster
// maximum — a load balancer sending traffic then would get plans about
// to be invalidated.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": s.Epoch()})
		return
	}
	ready, reason := s.cluster.Ready()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason, "epoch": s.Epoch()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": s.Epoch()})
}

// peerCounters is one peer's row of the cluster metrics.
type peerCounters struct {
	forwardsSent     atomic.Int64 // /v1/plan requests forwarded to this peer
	forwardsReceived atomic.Int64 // forwarded requests received from this peer
	forwardFailures  atomic.Int64 // forwards to this peer that failed at transport
	epochBumps       atomic.Int64 // epoch advances learned from this peer
}

// clusterMetrics is the per-peer counter table, embedded in metrics.
type clusterMetrics struct {
	peerMu sync.Mutex
	peers  map[string]*peerCounters
}

// peer returns (creating on first use) a peer's counter row.
func (m *clusterMetrics) peer(url string) *peerCounters {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	if m.peers == nil {
		m.peers = make(map[string]*peerCounters)
	}
	p := m.peers[url]
	if p == nil {
		p = &peerCounters{}
		m.peers[url] = p
	}
	return p
}

// writeClusterMetrics appends the cluster section to /metrics: node
// aggregates from the gossip layer plus the per-peer counters, peers in
// sorted order so scrapes are deterministic.
func (s *Server) writeClusterMetrics(w io.Writer) error {
	if s.cluster == nil {
		return nil
	}
	st := s.cluster.StatsSnapshot()
	joined := 0.0
	if st.Joined {
		joined = 1
	}
	lines := []struct {
		name string
		val  float64
	}{
		{"acqserved_cluster_gossip_rounds", float64(st.Rounds)},
		{"acqserved_cluster_exchange_failures", float64(st.Failures)},
		{"acqserved_cluster_peers_alive", float64(st.Alive)},
		{"acqserved_cluster_peers_known", float64(st.Known)},
		{"acqserved_cluster_max_epoch", float64(st.MaxEpoch)},
		{"acqserved_cluster_joined", joined},
		{"acqserved_cluster_epoch_bumps", float64(s.metrics.epochBumps.Load())},
		{"acqserved_cluster_degraded_partition", float64(s.metrics.degradedPartition.Load())},
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %g\n", l.name, l.val); err != nil {
			return err
		}
	}
	s.metrics.peerMu.Lock()
	urls := make([]string, 0, len(s.metrics.peers))
	//acqlint:ignore maporder collection order is erased by the sort below
	for u := range s.metrics.peers {
		urls = append(urls, u)
	}
	s.metrics.peerMu.Unlock()
	sort.Strings(urls)
	for _, u := range urls {
		pc := s.metrics.peer(u)
		for _, l := range []struct {
			name string
			val  int64
		}{
			{"acqserved_cluster_forwards_sent", pc.forwardsSent.Load()},
			{"acqserved_cluster_forwards_received", pc.forwardsReceived.Load()},
			{"acqserved_cluster_forward_failures", pc.forwardFailures.Load()},
			{"acqserved_cluster_epoch_bumps_received", pc.epochBumps.Load()},
		} {
			if _, err := fmt.Fprintf(w, "%s{peer=%q} %d\n", l.name, u, l.val); err != nil {
				return err
			}
		}
	}
	return nil
}

package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"acqp/internal/chaos"
	"acqp/internal/cluster"
	"acqp/internal/query"
)

// Clustered serving: N acqserved processes share the planning load by
// rendezvous-hashing each canonical query to one shard owner. The owner
// runs (and caches) the planner; every other node forwards /v1/plan to
// it over an internal hop, so the exponential-cost planners run exactly
// once cluster-wide per distinct query — the in-process singleflight
// guarantee, extended across processes. Statistics epochs stay coherent
// through internal/cluster's gossip: a drift refresh on one node bumps
// every peer's epoch and purges their stale cache entries; the
// distributions themselves remain local (each node re-learns from its
// own window), which is safe because only a key's owner plans it.

// ClusterConfig joins a Server to a planning cluster.
type ClusterConfig struct {
	// Self is the URL peers reach this node at (scheme://host:port, no
	// trailing slash). Required.
	Self string
	// Peers are the other members' URLs (static seed list; more can join
	// over HTTP).
	Peers []string
	// GossipInterval is the heartbeat/anti-entropy cadence. Zero means
	// no background loop — tests drive the protocol by hand through the
	// cluster.Node.
	GossipInterval time.Duration
	// FailAfter is the consecutive-failure threshold for declaring a
	// peer dead. Default 3.
	FailAfter int
	// Seed makes the gossip jitter reproducible. Default 1.
	Seed uint64
	// ForwardTimeout bounds one forwarded planning request (and one
	// gossip exchange). Default 5s.
	ForwardTimeout time.Duration

	// ForwardRetries is how many times one forward is retried against
	// the same peer (with capped exponential backoff) before failing
	// over. Default 1; negative disables retries.
	ForwardRetries int
	// MaxFailovers is how many additional rendezvous candidates are
	// tried after the owner fails before degrading to local planning.
	// Default 1; negative disables failover.
	MaxFailovers int
	// RetryBackoff is the base backoff between retries to the same peer,
	// doubled per attempt and capped at 8x. Default 50ms.
	RetryBackoff time.Duration
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's circuit breaker. Default 5; negative disables breaking.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker waits before admitting
	// a half-open probe. Default 3s.
	BreakerCooldown time.Duration
	// RetryBudgetRatio bounds retry amplification: each first attempt
	// earns this many retry tokens (capped bucket), each retry spends
	// one. Default 0.1 — at most ~10% extra load from retries under a
	// total outage.
	RetryBudgetRatio float64

	// Now is the wall clock for membership and breaker timing. Default
	// time.Now; the chaos suite injects a fake clock here.
	Now func() time.Time
	// Transport, when set, carries both forwarded plan requests and
	// gossip exchanges — the chaos harness installs a
	// chaos.Transport here so partitions affect planning and failure
	// detection coherently. Default http.DefaultTransport.
	Transport http.RoundTripper

	// Logf receives membership transitions; nil silences them.
	Logf func(format string, args ...any)
}

// resilience is the resolved forwarding-resilience parameters.
type resilience struct {
	forwardRetries   int
	maxFailovers     int
	retryBackoff     time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration
}

// Forwarding headers. Hops guards against routing loops: a request that
// already took an internal hop is always planned where it lands, even
// if membership views briefly diverge on who owns the key.
const (
	hopsHeader = "X-Acq-Cluster-Hops"
	fromHeader = "X-Acq-Cluster-From"
)

// startCluster wires the cluster node into the server: routes, the
// forwarding client, and the gossip loop (under baseCtx, so Shutdown
// stops it).
func (s *Server) startCluster(cc *ClusterConfig) error {
	ft := cc.ForwardTimeout
	if ft <= 0 {
		ft = 5 * time.Second
	}
	now := cc.Now
	if now == nil {
		now = time.Now
	}
	client := &http.Client{Timeout: ft, Transport: cc.Transport}
	s.resil = resolveResilience(cc)
	s.clusterNow = now
	s.forwardTransport = cc.Transport
	ratio := cc.RetryBudgetRatio
	if ratio == 0 {
		ratio = 0.1
	}
	if ratio < 0 {
		ratio = 0
	}
	s.budget = newRetryBudget(ratio, 16)
	n, err := cluster.New(cluster.Config{
		Self:           cc.Self,
		Peers:          cc.Peers,
		GossipInterval: cc.GossipInterval,
		FailAfter:      cc.FailAfter,
		Seed:           cc.Seed,
		Now:            now,
		Client:         client,
		Local:          s,
		Logf:           cc.Logf,
	})
	if err != nil {
		return err
	}
	s.cluster = n
	s.clusterSelf = cc.Self
	s.forwardClient = client
	s.mux.Handle("/v1/cluster", n)
	s.mux.Handle("/v1/cluster/", n)
	n.Start(s.baseCtx)
	return nil
}

// resolveResilience applies the documented defaults: zero selects the
// default, negative disables.
func resolveResilience(cc *ClusterConfig) resilience {
	r := resilience{
		forwardRetries:   cc.ForwardRetries,
		maxFailovers:     cc.MaxFailovers,
		retryBackoff:     cc.RetryBackoff,
		breakerThreshold: cc.BreakerThreshold,
		breakerCooldown:  cc.BreakerCooldown,
	}
	if r.forwardRetries == 0 {
		r.forwardRetries = 1
	} else if r.forwardRetries < 0 {
		r.forwardRetries = 0
	}
	if r.maxFailovers == 0 {
		r.maxFailovers = 1
	} else if r.maxFailovers < 0 {
		r.maxFailovers = 0
	}
	if r.retryBackoff <= 0 {
		r.retryBackoff = 50 * time.Millisecond
	}
	if r.breakerThreshold == 0 {
		r.breakerThreshold = 5
	} else if r.breakerThreshold < 0 {
		r.breakerThreshold = int(^uint(0) >> 1) // effectively never opens
	}
	if r.breakerCooldown <= 0 {
		r.breakerCooldown = 3 * time.Second
	}
	return r
}

// Server implements cluster.Local: the epoch accessor lives in
// serve.go; StatsDigest and AdvanceTo follow.

// StatsDigest hashes the current distribution's marginal histograms
// (with the epoch folded in), giving gossip a cheap fingerprint that
// distinguishes "same epoch, same statistics" from "same epoch,
// diverged statistics" in cluster introspection.
func (s *Server) StatsDigest() uint64 {
	dist, epoch := s.snapshot()
	root := dist.Root() // fresh conditioning context, private to this call
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], epoch)
	_, _ = h.Write(buf[:])
	sch := dist.Schema()
	for i := 0; i < sch.NumAttrs(); i++ {
		for _, v := range root.Hist(i) {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			_, _ = h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// AdvanceTo installs a statistics epoch learned from a peer: the local
// epoch ratchets up to it and cache entries planned under older epochs
// are purged — the cross-node half of the drift-invalidation story. The
// distribution is deliberately left in place: epochs are the cluster's
// cache-coherence clock, while distributions stay local to each node's
// window (and only a key's owner plans it, so nodes never mix plans
// from diverged statistics for the same key).
func (s *Server) AdvanceTo(epoch uint64, from string) (uint64, int) {
	s.mu.Lock()
	if epoch <= s.epoch {
		cur := s.epoch
		s.mu.Unlock()
		return cur, 0
	}
	s.epoch = epoch
	s.mu.Unlock()
	purged := s.cache.invalidateBefore(epoch)
	count(&s.metrics.invalidated, int64(purged))
	count(&s.metrics.epochBumps, 1)
	if from != "" {
		count(&s.metrics.peer(from).epochBumps, 1)
	}
	return epoch, purged
}

// remoteError relays a shard owner's HTTP error verbatim: the owner
// already rendered the right status and JSON body (400, 422, 503, ...),
// so the forwarding node must not re-wrap it.
type remoteError struct {
	status     int
	body       []byte
	retryAfter string
}

func (e *remoteError) Error() string {
	return fmt.Sprintf("shard owner returned %d: %s", e.status, bytes.TrimSpace(e.body))
}

// planRouted answers a planning request under cluster routing:
//
//   - no cluster, we own the key, or the request already took an
//     internal hop → plan locally through the cache;
//   - a peer owns the key → forward the raw request to it, retrying
//     with capped backoff (bounded by the retry budget) and honoring
//     Retry-After on a shed;
//   - the owner stays unreachable (or its breaker is open) → fail over
//     to the next alive node in rendezvous order, up to MaxFailovers;
//   - every candidate ranked above us is exhausted → report the
//     failures, plan locally at the last-known epoch, and mark the
//     outcome degraded (never cached) — answers over errors during a
//     partition.
//
// servedBy is the advertised URL of the node that did the planning work
// ("" when unclustered) and forwarded reports an internal hop.
func (s *Server) planRouted(r *http.Request, canon query.Query, p plannerParams, req planRequest, raw []byte) (out planOutcome, cached, shared bool, servedBy string, forwarded bool, err error) {
	if s.cluster == nil {
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		return out, cached, shared, "", false, err
	}
	if hops, _ := strconv.Atoi(r.Header.Get(hopsHeader)); hops > 0 {
		if from := r.Header.Get(fromHeader); from != "" {
			count(&s.metrics.peer(from).forwardsReceived, 1)
		}
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		return out, cached, shared, s.clusterSelf, false, err
	}
	// Walk the rendezvous candidates ranked above us. The first entry is
	// the owner; the rest are the deterministic failover order every
	// node agrees on. Self ends the walk: we only plan a whole (cached)
	// answer when the membership view ranks us first — planning locally
	// because better-ranked candidates are unreachable is the degraded
	// path below, so partition answers never enter any cache before the
	// failure detector actually moves ownership.
	order := s.cluster.OwnerOrder(canon.Key())
	if len(order) > 0 && order[0] == s.clusterSelf {
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		return out, cached, shared, s.clusterSelf, false, err
	}
	attempts := 0
	for _, owner := range order {
		if owner == s.clusterSelf || attempts >= 1+s.resil.maxFailovers {
			break
		}
		br := s.breakerFor(owner)
		if !br.allow(s.clusterNow()) {
			// Open breaker: skip to the next candidate without paying a
			// connect timeout. The skip is not an attempt.
			count(&s.metrics.breakerSkips, 1)
			continue
		}
		if attempts > 0 {
			count(&s.metrics.forwardFailovers, 1)
		}
		attempts++
		count(&s.metrics.peer(owner).forwardsSent, 1)
		resp, ferr := s.forwardResilient(r.Context(), owner, raw, br)
		if ferr == nil {
			return outcomeFromRemote(resp), resp.Cached, resp.Shared, owner, true, nil
		}
		var re *remoteError
		if errors.As(ferr, &re) && re.status < http.StatusInternalServerError {
			// The owner is reachable and answered with a client-side
			// verdict (400, 404, 422, ...); it stands.
			return planOutcome{}, false, false, owner, true, ferr
		}
		if errors.As(ferr, &re) && re.status == http.StatusServiceUnavailable && re.retryAfter != "" {
			// A load shed that survived the retry loop: the peer is alive
			// but saturated. Relay the shed (with its Retry-After) rather
			// than piling the same work onto another node.
			return planOutcome{}, false, false, owner, true, ferr
		}
		if r.Context().Err() != nil {
			return planOutcome{}, false, false, s.clusterSelf, false, r.Context().Err()
		}
		// Transport failure or server-side 5xx: move to the next
		// rendezvous candidate (forwardResilient already fed the breaker
		// and the failure detector).
	}
	// Every remote candidate failed or was skipped: a partition, not a
	// planning failure. Plan locally at the last-known epoch. The result
	// is marked degraded and bypasses the cache in both directions — it
	// may have been built from statistics the cluster has already moved
	// past, so it must neither persist nor be served to a later request
	// that could reach the owner.
	count(&s.metrics.degradedPartition, 1)
	out, _, shared, err = s.planCached(r.Context(), canon, p, true, true)
	if err != nil {
		return planOutcome{}, false, false, s.clusterSelf, false, err
	}
	out.degraded = true
	return out, false, shared, s.clusterSelf, false, nil
}

// forwardResilient forwards one planning request to one peer with the
// retry policy: up to ForwardRetries retries with capped exponential
// backoff, each retry paid for from the shared retry budget, a shed's
// Retry-After honored as the backoff floor, and every hard failure fed
// to the peer's breaker and the cluster failure detector. The returned
// error is the last attempt's.
func (s *Server) forwardResilient(ctx context.Context, owner string, raw []byte, br *breaker) (*planResponse, error) {
	s.budget.deposit()
	backoff := s.resil.retryBackoff
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := s.forwardPlan(ctx, owner, raw)
		if err == nil {
			br.success()
			return resp, nil
		}
		lastErr = err
		var re *remoteError
		shed := false
		switch {
		case errors.As(err, &re) && re.status < http.StatusInternalServerError:
			// Reachable, definitive verdict: not a peer failure.
			br.success()
			return nil, err
		case errors.As(err, &re) && re.status == http.StatusServiceUnavailable && re.retryAfter != "":
			// A load shed is backpressure, not brokenness: retry after
			// the advertised delay, but do not trip the breaker or the
			// failure detector.
			shed = true
		default:
			// Transport error or server-side 5xx.
			if br.failure(s.clusterNow()) {
				count(&s.metrics.breakerOpens, 1)
				count(&s.metrics.peer(owner).breakerOpens, 1)
			}
			s.cluster.ReportFailure(owner)
			count(&s.metrics.peer(owner).forwardFailures, 1)
		}
		if attempt >= s.resil.forwardRetries || ctx.Err() != nil {
			return nil, lastErr
		}
		if !shed && br.snapshot() == breakerOpen {
			// The streak just opened the breaker; hammering the same peer
			// with the remaining retries defeats its purpose.
			return nil, lastErr
		}
		if !s.budget.withdraw() {
			count(&s.metrics.retryBudgetExhausted, 1)
			return nil, lastErr
		}
		wait := backoff
		if shed {
			if ra := retryAfterDuration(re.retryAfter); ra > wait {
				wait = ra
			}
		}
		if sleepCtx(ctx, wait) != nil {
			return nil, lastErr
		}
		backoff *= 2
		if max := 8 * s.resil.retryBackoff; backoff > max {
			backoff = max
		}
		count(&s.metrics.forwardRetries, 1)
		count(&s.metrics.peer(owner).retries, 1)
	}
}

// retryAfterDuration parses a Retry-After header's delta-seconds form
// (the only form this service emits); 0 for anything else.
func retryAfterDuration(h string) time.Duration {
	secs, err := strconv.Atoi(h)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx waits d or until ctx ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// forwardPlan relays a /v1/plan body to the shard owner. A *remoteError
// means the owner answered with a non-200 status; any other error means
// it could not be reached (or spoke garbage) and the caller should take
// the partition path.
func (s *Server) forwardPlan(ctx context.Context, owner string, raw []byte) (*planResponse, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/plan", bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(hopsHeader, "1")
	hreq.Header.Set(fromHeader, s.clusterSelf)
	if id := requestIDFrom(ctx); id != "" {
		hreq.Header.Set("X-Request-Id", id)
	}
	resp, err := s.forwardClient.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	// Read one byte past the cap so an over-long body is a loud peer
	// failure (taking the partition/failover path) instead of a silent
	// truncation that surfaces as a confusing JSON decode error.
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes+1))
	if err != nil {
		return nil, err
	}
	if len(body) > maxBodyBytes {
		return nil, fmt.Errorf("shard owner response exceeds %d bytes", maxBodyBytes)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &remoteError{status: resp.StatusCode, body: body, retryAfter: resp.Header.Get("Retry-After")}
	}
	var pr planResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		return nil, fmt.Errorf("decoding shard owner response: %w", err)
	}
	return &pr, nil
}

// outcomeFromRemote reshapes the owner's response for the local
// handler. The decoded plan node is not materialized — /v1/plan renders
// from the owner's strings, and /execute never forwards.
func outcomeFromRemote(pr *planResponse) planOutcome {
	return planOutcome{
		rendered:  pr.Plan,
		encoded:   pr.PlanB64,
		cost:      pr.ExpectedCost,
		naiveCost: pr.NaiveCost,
		splits:    pr.Splits,
		sizeBytes: pr.SizeBytes,
		degraded:  pr.Degraded,
		epoch:     pr.Epoch,
		planMS:    pr.PlanMS,
		traceSnap: pr.Trace,
	}
}

// handleReadyz serves GET /readyz: readiness, as distinct from the
// liveness /healthz. An unclustered server is ready once it is serving;
// a clustered one is not ready while joining, while any peer is
// unresolved, or while its statistics epoch lags the gossiped cluster
// maximum — a load balancer sending traffic then would get plans about
// to be invalidated.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil {
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": s.Epoch()})
		return
	}
	ready, reason := s.cluster.Ready()
	if !ready {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason, "epoch": s.Epoch()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "epoch": s.Epoch()})
}

// peerCounters is one peer's row of the cluster metrics.
type peerCounters struct {
	forwardsSent     atomic.Int64 // /v1/plan requests forwarded to this peer
	forwardsReceived atomic.Int64 // forwarded requests received from this peer
	forwardFailures  atomic.Int64 // forwards to this peer that failed at transport
	epochBumps       atomic.Int64 // epoch advances learned from this peer
	retries          atomic.Int64 // forward retries against this peer
	breakerOpens     atomic.Int64 // times this peer's breaker opened
}

// clusterMetrics is the per-peer counter table, embedded in metrics.
type clusterMetrics struct {
	peerMu sync.Mutex
	peers  map[string]*peerCounters
}

// peer returns (creating on first use) a peer's counter row.
func (m *clusterMetrics) peer(url string) *peerCounters {
	m.peerMu.Lock()
	defer m.peerMu.Unlock()
	if m.peers == nil {
		m.peers = make(map[string]*peerCounters)
	}
	p := m.peers[url]
	if p == nil {
		p = &peerCounters{}
		m.peers[url] = p
	}
	return p
}

// writeClusterMetrics appends the cluster section to /metrics: node
// aggregates from the gossip layer plus the per-peer counters, peers in
// sorted order so scrapes are deterministic.
func (s *Server) writeClusterMetrics(w io.Writer) error {
	if s.cluster == nil {
		return nil
	}
	st := s.cluster.StatsSnapshot()
	joined := 0.0
	if st.Joined {
		joined = 1
	}
	lines := []struct {
		name string
		val  float64
	}{
		{"acqserved_cluster_gossip_rounds", float64(st.Rounds)},
		{"acqserved_cluster_exchange_failures", float64(st.Failures)},
		{"acqserved_cluster_peers_alive", float64(st.Alive)},
		{"acqserved_cluster_peers_known", float64(st.Known)},
		{"acqserved_cluster_max_epoch", float64(st.MaxEpoch)},
		{"acqserved_cluster_joined", joined},
		{"acqserved_cluster_epoch_bumps", float64(s.metrics.epochBumps.Load())},
		{"acqserved_cluster_degraded_partition", float64(s.metrics.degradedPartition.Load())},
		{"acqserved_cluster_forward_retries", float64(s.metrics.forwardRetries.Load())},
		{"acqserved_cluster_forward_failovers", float64(s.metrics.forwardFailovers.Load())},
		{"acqserved_cluster_retry_budget_exhausted", float64(s.metrics.retryBudgetExhausted.Load())},
		{"acqserved_cluster_breaker_opens", float64(s.metrics.breakerOpens.Load())},
		{"acqserved_cluster_breaker_skips", float64(s.metrics.breakerSkips.Load())},
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %g\n", l.name, l.val); err != nil {
			return err
		}
	}
	s.metrics.peerMu.Lock()
	urls := make([]string, 0, len(s.metrics.peers))
	//acqlint:ignore maporder collection order is erased by the sort below
	for u := range s.metrics.peers {
		urls = append(urls, u)
	}
	s.metrics.peerMu.Unlock()
	sort.Strings(urls)
	for _, u := range urls {
		pc := s.metrics.peer(u)
		for _, l := range []struct {
			name string
			val  int64
		}{
			{"acqserved_cluster_forwards_sent", pc.forwardsSent.Load()},
			{"acqserved_cluster_forwards_received", pc.forwardsReceived.Load()},
			{"acqserved_cluster_forward_failures", pc.forwardFailures.Load()},
			{"acqserved_cluster_epoch_bumps_received", pc.epochBumps.Load()},
			{"acqserved_cluster_forward_retries_peer", pc.retries.Load()},
			{"acqserved_cluster_breaker_opens_peer", pc.breakerOpens.Load()},
		} {
			if _, err := fmt.Fprintf(w, "%s{peer=%q} %d\n", l.name, u, l.val); err != nil {
				return err
			}
		}
	}
	// Breaker state gauge: 0 closed, 1 half-open, 2 open.
	states := s.breakerStates()
	burls := make([]string, 0, len(states))
	//acqlint:ignore maporder collection order is erased by the sort below
	for u := range states {
		burls = append(burls, u)
	}
	sort.Strings(burls)
	for _, u := range burls {
		if _, err := fmt.Fprintf(w, "acqserved_cluster_breaker_state{peer=%q,meaning=%q} %d\n",
			u, breakerStateNames[states[u]], states[u]); err != nil {
			return err
		}
	}
	// Chaos-injection counters, present only when the smoke harness
	// installed a chaos transport on this node.
	if ct, ok := s.forwardTransport.(*chaos.Transport); ok {
		cs := ct.Snapshot()
		for _, l := range []struct {
			name string
			val  int64
		}{
			{"acqserved_chaos_requests", cs.Requests},
			{"acqserved_chaos_passed", cs.Passed},
			{"acqserved_chaos_dropped", cs.Dropped},
			{"acqserved_chaos_injected_5xx", cs.Injected},
			{"acqserved_chaos_truncated", cs.Truncated},
			{"acqserved_chaos_delayed", cs.Delayed},
			{"acqserved_chaos_partition_blocked", cs.Blocked},
		} {
			if _, err := fmt.Fprintf(w, "%s %d\n", l.name, l.val); err != nil {
				return err
			}
		}
	}
	return nil
}

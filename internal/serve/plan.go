package serve

import (
	"context"
	"encoding/base64"
	"errors"
	"fmt"
	"runtime"
	"time"

	"acqp"
	"acqp/internal/model"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/stats"
	"acqp/internal/trace"
)

// Planning-path errors mapped to HTTP statuses by the handlers.
var (
	errShed     = errors.New("serve: planning queue is full")
	errShutdown = errors.New("serve: server is shutting down")
)

// plannerParams is the resolved, clamped planner configuration for one
// request; it is part of the cache key (except parallelism, strict, and
// the timeout, which affect how the run behaves but never which plan the
// search returns — parallel search is plan-deterministic).
type plannerParams struct {
	name        string // "greedy", "exhaustive", "corrseq", "naive"
	model       string // statistics backend, one of model.Names()
	maxSplits   int
	splitPoints int
	parallelism int
	strict      bool
	traced      bool // client asked for the trace section (never part of the key)
	timeout     time.Duration
}

// resolveParams validates and clamps the request's planner selection.
func (s *Server) resolveParams(req planRequest) (plannerParams, error) {
	p := plannerParams{
		name:        req.Planner,
		model:       req.Model,
		maxSplits:   req.MaxSplits,
		splitPoints: req.SplitPoints,
		parallelism: req.Parallelism,
		strict:      req.Strict,
		traced:      req.Trace,
		timeout:     s.cfg.DefaultTimeout,
	}
	if p.name == "" {
		p.name = "greedy"
	}
	switch p.name {
	case "greedy", "exhaustive", "corrseq", "naive":
	default:
		return p, fmt.Errorf("unknown planner %q (want greedy, exhaustive, corrseq, or naive)", p.name)
	}
	if p.model == "" {
		p.model = s.cfg.DefaultModel
	}
	if !model.KnownName(p.model) {
		return p, fmt.Errorf("unknown model %q (want one of %v)", p.model, model.Names())
	}
	if p.maxSplits <= 0 {
		p.maxSplits = s.cfg.MaxSplits
	} else if p.maxSplits > 64 {
		p.maxSplits = 64
	}
	if p.splitPoints <= 0 {
		p.splitPoints = s.cfg.SplitPoints
	} else if p.splitPoints > 256 {
		p.splitPoints = 256
	}
	if req.TimeoutMS > 0 {
		if t := time.Duration(req.TimeoutMS) * time.Millisecond; t < p.timeout {
			p.timeout = t
		}
	}
	if p.parallelism < 0 {
		return p, fmt.Errorf("parallelism must be non-negative, got %d", p.parallelism)
	}
	if p.parallelism == 0 {
		p.parallelism = s.cfg.PlanParallelism
	}
	if max := runtime.GOMAXPROCS(0); p.parallelism > max {
		p.parallelism = max
	}
	return p, nil
}

// cacheKey identifies a planning outcome: planner configuration plus the
// statistics backend plus the canonical query plus the statistics epoch.
// The timeout is deliberately excluded — it changes how long planning may
// take, not which plan is optimal — so clients with different deadlines
// share cache entries. The model component appears only for non-empirical
// backends, keeping every pre-existing key byte-identical.
func cacheKey(p plannerParams, q query.Query, epoch uint64) string {
	key := fmt.Sprintf("%s/k%d/s%d@%d|%s", p.name, p.maxSplits, p.splitPoints, epoch, q.Key())
	if p.model != "" && p.model != model.NameEmpirical {
		key = "m=" + p.model + "/" + key
	}
	return key
}

// planOutcome is one completed planning run, in cache-ready form. The
// node is immutable after planning, so sharing it across cached
// responses and /execute runs is safe.
type planOutcome struct {
	node      *plan.Node
	rendered  string
	encoded   string // base64 of the wire encoding
	cost      float64
	naiveCost float64
	splits    int
	sizeBytes int
	degraded  bool
	epoch     uint64
	planMS    float64
	// traceSnap carries the planner run's phase timings and search
	// counters when the request asked for them. It describes one run, so
	// it is stripped before the outcome enters the cache: a cache hit
	// reports no trace because no planner ran. Requests that join another
	// caller's in-flight run only see a trace if that leader asked for one.
	traceSnap *trace.Snapshot
}

// trivialOutcome wraps a constant-answer plan (empty or unsatisfiable
// canonical query): no statistics, no planner, zero cost.
func (s *Server) trivialOutcome(result bool, epoch uint64) planOutcome {
	return s.finishOutcome(plan.NewLeaf(result), 0, 0, false, epoch, 0)
}

func (s *Server) finishOutcome(node *plan.Node, cost, naive float64, degraded bool, epoch uint64, elapsed time.Duration) planOutcome {
	enc := plan.Encode(node)
	return planOutcome{
		node:      node,
		rendered:  plan.Render(node, s.s),
		encoded:   base64.StdEncoding.EncodeToString(enc),
		cost:      cost,
		naiveCost: naive,
		splits:    node.NumSplits(),
		sizeBytes: len(enc),
		degraded:  degraded,
		epoch:     epoch,
		planMS:    float64(elapsed) / float64(time.Millisecond),
	}
}

// runPlanner executes one planner invocation under the request deadline.
// It is called from worker goroutines; the distribution snapshot is
// read-only and each run derives its own conditioning contexts, so
// concurrent runs never share mutable state.
func (s *Server) runPlanner(d distEpoch, q query.Query, p plannerParams) (planOutcome, error) {
	ctx, cancel := context.WithTimeout(s.baseCtx, p.timeout)
	defer cancel()
	count(&s.metrics.plannerCalls, 1)
	// Every run carries a span: its search counters feed the /metrics
	// aggregates, and its snapshot feeds the response's trace section when
	// the client asked for one. Spans never change planner output (pinned
	// by byte-identity tests at the opt and serve layers).
	sp := trace.NewSpan(time.Now)
	ctx = trace.NewContext(ctx, sp)
	start := time.Now()

	var (
		node     *plan.Node
		cost     float64
		degraded bool
		err      error
	)
	switch p.name {
	case "greedy":
		g := opt.Greedy{
			SPSF:        opt.UniformSPSFSame(s.s, p.splitPoints),
			MaxSplits:   p.maxSplits,
			Base:        opt.SeqOpt,
			Parallelism: p.parallelism,
		}
		node, cost = g.Plan(ctx, d.dist, q)
		degraded = ctx.Err() != nil
	case "exhaustive":
		e := opt.Exhaustive{
			SPSF:        opt.UniformSPSFSame(s.s, p.splitPoints),
			Budget:      s.cfg.ExhaustiveBudget,
			Parallelism: p.parallelism,
		}
		node, cost, err = e.Plan(ctx, d.dist, q)
		if err != nil {
			if s.baseCtx.Err() != nil {
				return planOutcome{}, errShutdown
			}
			if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, opt.ErrBudget) {
				return planOutcome{}, err
			}
			if p.strict {
				// Strict clients asked for the true optimum or a typed
				// failure, never a silent downgrade.
				if errors.Is(err, opt.ErrBudget) {
					return planOutcome{}, fmt.Errorf("%w", acqp.ErrBudgetExceeded)
				}
				return planOutcome{}, err
			}
			// Deadline or budget exhausted: degrade to the best sequential
			// plan, which is fast to build and always valid. It runs under
			// baseCtx, not the (already expired) request context, so the
			// degraded answer can still be produced for the waiting client —
			// but Shutdown must be able to interrupt it, which a detached
			// context.Background() would not allow.
			if s.hookBeforeFallback != nil {
				s.hookBeforeFallback()
			}
			node, cost, err = opt.CorrSeqPlanner{Alg: opt.SeqGreedy}.Plan(trace.NewContext(s.baseCtx, sp), d.dist, q)
			if err != nil {
				if s.baseCtx.Err() != nil {
					return planOutcome{}, errShutdown
				}
				return planOutcome{}, err
			}
			degraded = true
		}
	case "corrseq":
		node, cost, err = opt.CorrSeqPlanner{Alg: opt.SeqOpt}.Plan(ctx, d.dist, q)
	case "naive":
		node, cost, err = opt.NaivePlanner{}.Plan(ctx, d.dist, q)
	}
	if err != nil {
		if s.baseCtx.Err() != nil {
			return planOutcome{}, errShutdown
		}
		return planOutcome{}, err
	}
	elapsed := time.Since(start)
	s.metrics.lat.record(elapsed)
	if degraded {
		count(&s.metrics.degraded, 1)
	}

	// The naive baseline cost contextualizes the savings for clients; it
	// is analytic and cheap relative to any planning run.
	naive := 0.0
	if p.name != "naive" {
		// Under baseCtx so Shutdown interrupts the comparison run too.
		if _, nc, nerr := (opt.NaivePlanner{}).Plan(s.baseCtx, d.dist, q); nerr == nil {
			naive = nc
		}
	} else {
		naive = cost
	}
	s.metrics.mergeSpan(sp)
	out := s.finishOutcome(node, cost, naive, degraded, d.epoch, elapsed)
	if p.traced {
		out.traceSnap = sp.Snapshot()
	}
	return out, nil
}

// distEpoch pairs a distribution with the epoch it was installed at.
type distEpoch struct {
	dist  stats.Dist
	epoch uint64
}

// planCached answers a planning request through the cache and
// singleflight group. cached reports an LRU hit; shared reports a result
// taken from a concurrent identical request's run. noStore suppresses
// cache writes while still allowing reads: fault-injected requests use it
// so the what-if path can never populate the cache.
func (s *Server) planCached(reqCtx context.Context, canon query.Query, p plannerParams, noCache, noStore bool) (out planOutcome, cached, shared bool, err error) {
	dist, epoch, err := s.modelSnapshot(p.model)
	if err != nil {
		return planOutcome{}, false, false, fmt.Errorf("serve: fitting model %q: %w", p.model, err)
	}
	key := cacheKey(p, canon, epoch)
	// Strict and lax requests share cache entries (a cached plan is never
	// degraded, so it satisfies both) but not singleflight runs: a lax
	// leader would hand a strict follower a silently degraded plan, and a
	// strict leader would hand a lax follower a typed error.
	flightKey := key
	if p.strict {
		flightKey += "|strict"
	}
	if !noCache {
		if hit, ok := s.cache.get(key); ok {
			count(&s.metrics.cacheHits, 1)
			return hit, true, false, nil
		}
	}
	out, err, shared = s.flight.do(reqCtx, flightKey, func() (planOutcome, error) {
		// Re-check the cache inside the flight: a previous leader may have
		// populated it between our miss and acquiring leadership.
		if !noCache {
			if hit, ok := s.cache.get(key); ok {
				return hit, nil
			}
		}
		done := make(chan struct{})
		var jout planOutcome
		var jerr error
		job := func() {
			defer close(done)
			jout, jerr = s.runPlanner(distEpoch{dist: dist, epoch: epoch}, canon, p)
		}
		if !s.submit(job) {
			count(&s.metrics.shed, 1)
			return planOutcome{}, errShed
		}
		select {
		case <-done:
		case <-s.baseCtx.Done():
			// The job may still be queued, never to run; abandon it.
			return planOutcome{}, errShutdown
		}
		if jerr != nil {
			return planOutcome{}, jerr
		}
		// Degraded plans reflect a deadline, not the query, and
		// fault-injected requests are what-if analyses: never cached.
		if !jout.degraded && !noCache && !noStore {
			stored := jout
			stored.traceSnap = nil // a cached hit reports no planner run
			s.cache.add(key, epoch, stored)
		}
		return jout, nil
	})
	if err != nil {
		return planOutcome{}, false, shared, err
	}
	if shared {
		count(&s.metrics.flightShared, 1)
	} else {
		count(&s.metrics.cacheMisses, 1)
	}
	return out, false, shared, nil
}

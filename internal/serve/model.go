package serve

import (
	"sync"

	"acqp/internal/model"
	"acqp/internal/stats"
)

// Model selection. A request's "model" field (or the server's -model
// default) names the statistics backend its planning run should use:
// "empirical" is the raw epoch snapshot — today's behavior — while
// "independent", "chowliu", and "bn" are fitted models from the
// internal/model registry. Fitted models are built from the same training
// table the epoch's empirical distribution was installed from, at most
// once per (name, epoch): the first request for a model fits it and every
// concurrent or later request shares the published result through
// sync.Once, exactly like the lazily published statistics inside the
// models themselves.

// fittedModel is one (name, epoch) fitting slot; once publishes the
// result to every waiter.
type fittedModel struct {
	once sync.Once
	dist stats.Dist
	err  error
}

// modelSnapshot returns the distribution a planning run should use for
// the named model together with the epoch it belongs to, fitting on
// first use. Names "" and "empirical" return the plain epoch snapshot.
// The (dist, epoch, table) triple is read atomically, so a concurrent
// refresh cannot mix an old model with a new epoch.
func (s *Server) modelSnapshot(name string) (stats.Dist, uint64, error) {
	s.mu.RLock()
	dist, epoch, tbl := s.dist, s.epoch, s.histTbl
	s.mu.RUnlock()
	if name == "" || name == model.NameEmpirical {
		return dist, epoch, nil
	}
	s.modelsMu.Lock()
	if s.modelEpoch != epoch {
		// First fitted-model request since the epoch advanced: drop the
		// stale models. Entries keyed under the old epoch can never be
		// served again (the cache key embeds the epoch).
		s.modelEpoch = epoch
		s.fitted = make(map[string]*fittedModel)
	}
	fm := s.fitted[name]
	if fm == nil {
		fm = &fittedModel{}
		s.fitted[name] = fm
	}
	s.modelsMu.Unlock()
	fm.once.Do(func() {
		fm.dist, fm.err = model.Fit(name, tbl, model.Opts{})
		if fm.err == nil {
			count(&s.metrics.modelFits, 1)
		}
	})
	return fm.dist, epoch, fm.err
}

// refitDefault eagerly refits the server's default model after an epoch
// bump so the first post-refresh request does not pay the fitting
// latency. No-op for the empirical default.
func (s *Server) refitDefault() {
	if s.cfg.DefaultModel == "" || s.cfg.DefaultModel == model.NameEmpirical {
		return
	}
	//acqlint:ignore errdrop fit errors surface on the serving path; the eager warm-up is best-effort
	_, _, _ = s.modelSnapshot(s.cfg.DefaultModel)
}

package serve

import (
	"net/http"
	"strings"
	"testing"
)

// faultsOf wraps a faults section into a request map.
func faultsReq(sql string, faults map[string]any) map[string]any {
	req := map[string]any{"sql": sql}
	if faults != nil {
		req["faults"] = faults
	}
	return req
}

func TestFaultInjectedRequestsNeverCached(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	// Distinct queries per endpoint: /plan and /execute share the plan
	// cache, and this test tracks per-key hit/miss transitions.
	queries := map[string]string{
		"/v1/plan":    "SELECT * WHERE temp > 7 AND light > 9",
		"/v1/execute": "SELECT * WHERE temp > 5 AND humid > 3",
	}

	for _, path := range []string{"/v1/plan", "/v1/execute"} {
		sql := queries[path]
		before, _ := srv.cache.lens()
		w := postJSON(t, srv, path, faultsReq(sql, map[string]any{"seed": 1, "p_fail": 0.2}))
		if w.Code != http.StatusOK {
			t.Fatalf("%s with faults: %d %s", path, w.Code, w.Body.String())
		}
		resp := decodeResp[planResponse](t, w)
		if resp.Cached {
			t.Fatalf("%s: first fault-injected request reported cached", path)
		}
		after, _ := srv.cache.lens()
		if after != before {
			t.Fatalf("%s: fault-injected request stored a cache entry (%d -> %d)", path, before, after)
		}
		// A later plain request must be a miss: the fault run left nothing.
		w2 := postJSON(t, srv, path, faultsReq(sql, nil))
		if w2.Code != http.StatusOK {
			t.Fatalf("%s plain: %d %s", path, w2.Code, w2.Body.String())
		}
		if decodeResp[planResponse](t, w2).Cached {
			t.Fatalf("%s: plain request after a fault-injected one hit the cache", path)
		}
		// And the plain request did store: a repeat is a hit.
		if !decodeResp[planResponse](t, postJSON(t, srv, path, faultsReq(sql, nil))).Cached {
			t.Fatalf("%s: plain repeat missed the cache", path)
		}
		// Fault-injected requests may still read the entry the plain one
		// stored, without disturbing it.
		n0, _ := srv.cache.lens()
		w3 := postJSON(t, srv, path, faultsReq(sql, map[string]any{"seed": 1, "p_fail": 0.2}))
		if !decodeResp[planResponse](t, w3).Cached {
			t.Fatalf("%s: fault-injected request did not read the warm cache", path)
		}
		n1, _ := srv.cache.lens()
		if n1 != n0 {
			t.Fatalf("%s: fault-injected cache read changed entry count", path)
		}
	}
}

func TestExecuteZeroFaultSpecMatchesPlain(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	sql := "SELECT * WHERE temp > 7 AND light > 9"

	plain := decodeResp[executeResponse](t, postJSON(t, srv, "/v1/execute", faultsReq(sql, nil)))
	zero := decodeResp[executeResponse](t, postJSON(t, srv, "/v1/execute", faultsReq(sql, map[string]any{"seed": 9})))
	if zero.Faults == nil {
		t.Fatal("faults section missing from fault-injected execute response")
	}
	if zero.Tuples != plain.Tuples || zero.Selected != plain.Selected ||
		zero.MeanCost != plain.MeanCost || zero.MaxCost != plain.MaxCost ||
		zero.Mismatches != plain.Mismatches {
		t.Errorf("zero-probability faults diverge from plain execute:\n got %+v\nwant %+v", zero, plain)
	}
	f := zero.Faults
	if f.Failures != 0 || f.Retries != 0 || f.RetryCost != 0 || f.Abstained != 0 || f.Imputed != 0 || f.Replans != 0 {
		t.Errorf("zero-probability faults report nonzero activity: %+v", f)
	}
	if f.Answered != zero.Tuples || f.Accuracy != 1 {
		t.Errorf("answered=%d accuracy=%g, want %d/1", f.Answered, f.Accuracy, zero.Tuples)
	}
}

func TestExecuteFaultPolicies(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	sql := "SELECT * WHERE temp > 7 AND light > 9"

	run := func(faults map[string]any) executeResponse {
		t.Helper()
		w := postJSON(t, srv, "/v1/execute", faultsReq(sql, faults))
		if w.Code != http.StatusOK {
			t.Fatalf("execute: %d %s", w.Code, w.Body.String())
		}
		return decodeResp[executeResponse](t, w)
	}

	abstain := run(map[string]any{"seed": 4, "dead": []string{"light"}, "policy": "abstain"})
	impute := run(map[string]any{"seed": 4, "dead": []string{"light"}, "policy": "impute"})
	replan := run(map[string]any{"seed": 4, "dead": []string{"light"}, "policy": "replan"})

	if abstain.Faults.Abstained == 0 {
		t.Fatal("dead attribute produced no abstentions under abstain")
	}
	if impute.Faults.Answered <= abstain.Faults.Answered || replan.Faults.Answered <= abstain.Faults.Answered {
		t.Errorf("answered: impute=%d replan=%d abstain=%d; fallbacks must answer more",
			impute.Faults.Answered, replan.Faults.Answered, abstain.Faults.Answered)
	}
	if impute.Faults.Imputed == 0 {
		t.Error("impute policy reported no imputations")
	}
	if replan.Faults.Replans == 0 {
		t.Error("replan policy reported no replans")
	}
	// Seeded what-if runs are reproducible.
	again := run(map[string]any{"seed": 4, "dead": []string{"light"}, "policy": "impute"})
	if *again.Faults != *impute.Faults {
		t.Errorf("seeded fault run not reproducible: %+v vs %+v", again.Faults, impute.Faults)
	}

	// Retries show up when failures are transient.
	flaky := run(map[string]any{"seed": 5, "p_fail": 0.4, "policy": "abstain"})
	if flaky.Faults.Retries == 0 || flaky.Faults.RetryCost <= 0 {
		t.Errorf("transient faults produced no retries: %+v", flaky.Faults)
	}

	// Metrics surface the fault counters.
	body := getPath(t, srv, "/metrics").Body.String()
	for _, metric := range []string{
		"acqserved_fault_executions",
		"acqserved_fault_retries",
		"acqserved_fault_failures",
		"acqserved_fault_fallbacks",
		"acqserved_degraded_answers",
	} {
		if !strings.Contains(body, metric+" ") {
			t.Errorf("metric %s missing from /metrics", metric)
		}
	}
	if strings.Contains(body, "acqserved_fault_executions 0\n") {
		t.Error("fault executions counter never incremented")
	}
}

func TestFaultSpecValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	sql := "SELECT * WHERE temp > 7"
	bad := []map[string]any{
		{"seed": 1, "p_fail": 1.5},
		{"seed": 1, "p_fail": 0.6, "p_timeout": 0.6},
		{"seed": 1, "dead": []string{"no_such_attr"}},
		{"seed": 1, "max_retries": -1},
		{"seed": 1, "policy": "shrug"},
	}
	for i, f := range bad {
		for _, path := range []string{"/v1/plan", "/v1/execute"} {
			w := postJSON(t, srv, path, faultsReq(sql, f))
			if w.Code != http.StatusBadRequest {
				t.Errorf("case %d %s: code %d, want 400 (%s)", i, path, w.Code, w.Body.String())
			}
		}
	}
}

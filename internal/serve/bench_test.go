package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newBenchServer(b *testing.B) *Server {
	b.Helper()
	s := testSchema()
	srv, err := New(Config{Schema: s, History: testHistory(s, 2000, 42), CacheSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	})
	return srv
}

func benchPost(b *testing.B, srv *Server, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/plan", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// replayBody is a reusable request body: the same bytes replayed from
// the start on each rewind, so one http.Request can drive many
// ServeHTTP calls without per-iteration reader allocations.
type replayBody struct {
	data []byte
	off  int
}

func (b *replayBody) Read(p []byte) (int, error) {
	if b.off >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.off:])
	b.off += n
	return n, nil
}

func (b *replayBody) Close() error { return nil }

// nullRecorder is an allocation-free http.ResponseWriter: the header
// map and body buffer are preallocated and recycled across requests.
// httptest.NewRecorder allocates several times per call, which would
// drown the near-zero-alloc path it is here to measure.
type nullRecorder struct {
	header http.Header
	status int
	n      int
	body   []byte
}

func (r *nullRecorder) Header() http.Header  { return r.header }
func (r *nullRecorder) WriteHeader(code int) { r.status = code }

func (r *nullRecorder) Write(p []byte) (int, error) {
	if len(r.body)+len(p) <= cap(r.body) {
		r.body = append(r.body, p...)
	}
	r.n += len(p)
	return len(p), nil
}

// hotRequest is a reusable request/recorder pair for driving one
// endpoint repeatedly with zero harness allocations per call.
type hotRequest struct {
	req  *http.Request
	body *replayBody
	rec  *nullRecorder
}

func newHotRequest(path, body string) *hotRequest {
	rb := &replayBody{data: []byte(body)}
	req := httptest.NewRequest(http.MethodPost, path, nil)
	req.Body = rb
	return &hotRequest{
		req:  req,
		body: rb,
		rec:  &nullRecorder{header: make(http.Header, 8), body: make([]byte, 0, 1<<13)},
	}
}

// do replays the request and returns the shared recorder; its contents
// are valid until the next call. The body is re-attached every call
// because a fast-path miss replaces r.Body with a replay wrapper.
func (h *hotRequest) do(srv *Server) *nullRecorder {
	h.body.off = 0
	h.req.Body = h.body
	h.rec.status = 0
	h.rec.n = 0
	h.rec.body = h.rec.body[:0]
	srv.ServeHTTP(h.rec, h.req)
	return h.rec
}

// BenchmarkServeCacheHit measures the repeated-request hot path: after
// the first two requests (one plans and fills the plan cache, the next
// installs the pre-serialized fast-path blob), every request is
// answered from the fast cache in ServeHTTP — no mux, no JSON decode,
// no SQL parse, no JSON encode.
func BenchmarkServeCacheHit(b *testing.B) {
	srv := newBenchServer(b)
	hot := newHotRequest("/v1/plan", `{"sql":"SELECT * WHERE temp > 7 AND light > 11"}`)
	for i := 0; i < 2; i++ {
		if rec := hot.do(srv); rec.status != http.StatusOK {
			b.Fatalf("warmup status %d: %s", rec.status, rec.body)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := hot.do(srv); rec.status != http.StatusOK {
			b.Fatalf("status %d", rec.status)
		}
	}
}

// BenchmarkServeCacheMiss measures the full path — HTTP mux, JSON
// decode, SQL parse, canonicalization, planning — when every request is
// a distinct canonical query and the greedy planner must run.
func BenchmarkServeCacheMiss(b *testing.B) {
	srv := newBenchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cycle distinct (temp, humid) rectangles: 15*16 = 240 distinct
		// canonical queries, far beyond what one benchtime run revisits
		// before the cache (8192 entries) would matter, and each repeat
		// lands on a different epoch-keyed entry only after 240 plans.
		lo := i % 15
		hhi := i / 15 % 16
		benchPost(b, srv, fmt.Sprintf(`{"sql":"SELECT * WHERE temp > %d AND humid <= %d","no_cache":true}`, lo, hhi))
	}
}

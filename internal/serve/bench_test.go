package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newBenchServer(b *testing.B) *Server {
	b.Helper()
	s := testSchema()
	srv, err := New(Config{Schema: s, History: testHistory(s, 2000, 42), CacheSize: 8192})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			b.Fatal(err)
		}
	})
	return srv
}

func benchPost(b *testing.B, srv *Server, body string) {
	b.Helper()
	req := httptest.NewRequest(http.MethodPost, "/plan", bytes.NewReader([]byte(body)))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
}

// BenchmarkServeCacheHit measures the full request path — HTTP mux, JSON
// decode, SQL parse, canonicalization, cache lookup, JSON encode — when
// the plan is already cached.
func BenchmarkServeCacheHit(b *testing.B) {
	srv := newBenchServer(b)
	const body = `{"sql":"SELECT * WHERE temp > 7 AND light > 11"}`
	benchPost(b, srv, body) // warm the cache
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchPost(b, srv, body)
	}
}

// BenchmarkServeCacheMiss measures the same path when every request is a
// distinct canonical query and the greedy planner must run.
func BenchmarkServeCacheMiss(b *testing.B) {
	srv := newBenchServer(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Cycle distinct (temp, humid) rectangles: 15*16 = 240 distinct
		// canonical queries, far beyond what one benchtime run revisits
		// before the cache (8192 entries) would matter, and each repeat
		// lands on a different epoch-keyed entry only after 240 plans.
		lo := i % 15
		hhi := i / 15 % 16
		benchPost(b, srv, fmt.Sprintf(`{"sql":"SELECT * WHERE temp > %d AND humid <= %d","no_cache":true}`, lo, hhi))
	}
}

package serve

import (
	"fmt"

	"acqp/internal/exec"
	"acqp/internal/fault"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/stats"
)

// faultSpec is the optional "faults" section of plan/execute requests:
// deterministic what-if fault injection. Plans computed under a faults
// section are never stored in the plan cache (the degraded-outcomes-are-
// never-cached invariant extends to the fault path), and /execute runs
// the fault-aware executor instead of the pristine one.
type faultSpec struct {
	// Seed makes the injected faults reproducible across requests.
	Seed int64 `json:"seed"`
	// PFail, PTimeout, and PStale apply to every attribute acquisition:
	// transient failure, timeout failure, and stuck-at-stale probability.
	PFail    float64 `json:"p_fail,omitempty"`
	PTimeout float64 `json:"p_timeout,omitempty"`
	PStale   float64 `json:"p_stale,omitempty"`
	// Dead lists attribute names whose sensors are dead from the start.
	Dead []string `json:"dead,omitempty"`
	// MaxRetries bounds retries per acquisition; omitted means the
	// default budget (2), and 0 means fail on the first unsuccessful
	// attempt.
	MaxRetries *int `json:"max_retries,omitempty"`
	// Policy is the fallback on ultimate failure: "abstain" (default),
	// "impute", or "replan".
	Policy string `json:"policy,omitempty"`
}

// active reports whether the spec can inject any fault. An all-zero spec
// is valid and makes the fault-aware path byte-identical to the plain
// one.
func (f *faultSpec) active() bool {
	return f != nil && (f.PFail > 0 || f.PTimeout > 0 || f.PStale > 0 || len(f.Dead) > 0)
}

// buildFaultConfig validates the spec against the schema and assembles
// the executor configuration. The impute model and the replanner both use
// the given statistics snapshot, so what-if analysis sees the same
// correlations the planner exploited.
func (s *Server) buildFaultConfig(spec *faultSpec, dist stats.Dist) (exec.FaultConfig, error) {
	var cfg exec.FaultConfig
	inj := fault.NewInjector(s.s.NumAttrs(), spec.Seed)
	if err := inj.SetAll(fault.AttrFault{PTransient: spec.PFail, PTimeout: spec.PTimeout, PStale: spec.PStale}); err != nil {
		return cfg, err
	}
	for _, name := range spec.Dead {
		a := s.s.Index(name)
		if a < 0 {
			return cfg, fmt.Errorf("faults: unknown attribute %q in dead list", name)
		}
		if err := inj.SetAttr(a, fault.AttrFault{PTransient: spec.PFail, PTimeout: spec.PTimeout, PStale: spec.PStale, Dead: true}); err != nil {
			return cfg, err
		}
	}
	ret := fault.DefaultRetrier()
	if spec.MaxRetries != nil {
		if *spec.MaxRetries < 0 {
			return cfg, fmt.Errorf("faults: max_retries must be non-negative, got %d", *spec.MaxRetries)
		}
		ret.MaxRetries = *spec.MaxRetries
	}
	policy := exec.Abstain
	if spec.Policy != "" {
		var err error
		policy, err = exec.ParseFallbackPolicy(spec.Policy)
		if err != nil {
			return cfg, fmt.Errorf("faults: %v", err)
		}
	}
	cfg = exec.FaultConfig{Injector: inj, Retrier: ret, Policy: policy}
	if policy == exec.Impute {
		cfg.Model = dist
	}
	if policy == exec.Replan {
		cfg.Replanner = func(failed []bool, residual query.Query) (*plan.Node, error) {
			if len(residual.Preds) == 0 {
				return plan.NewLeaf(true), nil
			}
			// baseCtx, not a detached Background: mid-execution replans
			// must stop promptly when the server shuts down.
			node, _, err := opt.CorrSeqPlanner{Alg: opt.SeqGreedy}.Plan(s.baseCtx, dist, residual)
			return node, err
		}
	}
	return cfg, nil
}

// faultReport is the "faults" section of an /execute response.
type faultReport struct {
	Policy         string  `json:"policy"`
	Seed           int64   `json:"seed"`
	Failures       int     `json:"failures"`
	Retries        int     `json:"retries"`
	RetryCost      float64 `json:"retry_cost"`
	StaleReads     int     `json:"stale_reads"`
	Abstained      int     `json:"abstained"`
	Imputed        int     `json:"imputed"`
	Replans        int     `json:"replans"`
	FalsePositives int     `json:"false_positives"`
	FalseNegatives int     `json:"false_negatives"`
	Answered       int     `json:"answered"`
	Accuracy       float64 `json:"accuracy"`
}

func newFaultReport(spec *faultSpec, policy exec.FallbackPolicy, res exec.FaultResult) *faultReport {
	return &faultReport{
		Policy:         policy.String(),
		Seed:           spec.Seed,
		Failures:       res.Failures,
		Retries:        res.Retries,
		RetryCost:      res.RetryCost,
		StaleReads:     res.StaleReads,
		Abstained:      res.Abstained,
		Imputed:        res.Imputed,
		Replans:        res.Replans,
		FalsePositives: res.FalsePositives,
		FalseNegatives: res.FalseNegatives,
		Answered:       res.Answered(),
		Accuracy:       res.Accuracy(),
	}
}

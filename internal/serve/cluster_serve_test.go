package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// clusterHarness is an in-process 3-node planning cluster on loopback
// listeners: real HTTP between the nodes (forwarding and gossip need
// it), manual gossip stepping (GossipInterval 0) so membership changes
// happen exactly when a test says so.
type clusterHarness struct {
	urls  []string
	srvs  []*Server
	https []*http.Server
	cli   *http.Client
}

func newClusterHarness(t *testing.T, n int, mod func(i int, cfg *Config)) *clusterHarness {
	t.Helper()
	h := &clusterHarness{cli: &http.Client{Timeout: 10 * time.Second}}
	lns := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		h.urls = append(h.urls, "http://"+ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		sch := testSchema()
		cfg := Config{
			// Identical seeds: every node learns the same statistics, the
			// precondition for byte-identical plans wherever planning runs.
			Schema:  sch,
			History: testHistory(sch, 2000, 42),
			Cluster: &ClusterConfig{
				Self:      h.urls[i],
				Peers:     h.urls,
				FailAfter: 2,
			},
		}
		if mod != nil {
			mod(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		h.srvs = append(h.srvs, srv)
		hs := &http.Server{Handler: srv}
		h.https = append(h.https, hs)
		go func(hs *http.Server, ln net.Listener) { _ = hs.Serve(ln) }(hs, lns[i])
	}
	t.Cleanup(func() {
		for _, hs := range h.https {
			_ = hs.Close()
		}
		for _, srv := range h.srvs {
			srv.forwardClient.CloseIdleConnections()
			shutdownServer(t, srv)
		}
		h.cli.CloseIdleConnections()
	})
	return h
}

// converge runs enough manual gossip rounds for every node to see every
// other alive, then requires readiness everywhere.
func (h *clusterHarness) converge(t *testing.T) {
	t.Helper()
	ctx := context.Background()
	for round := 0; round < 2; round++ {
		for _, srv := range h.srvs {
			srv.cluster.GossipOnce(ctx)
		}
	}
	for i, srv := range h.srvs {
		if ready, reason := srv.cluster.Ready(); !ready {
			t.Fatalf("node %d not ready after convergence: %s", i, reason)
		}
	}
}

// post sends one JSON request over real HTTP and decodes the response.
func clusterPost[T any](t *testing.T, h *clusterHarness, url, path string, body any) (int, T) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := h.cli.Post(url+path, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s%s: %v", url, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("POST %s%s: decode %q: %v", url, path, data, err)
	}
	return resp.StatusCode, v
}

func clusterGet[T any](t *testing.T, h *clusterHarness, url, path string) (int, T) {
	t.Helper()
	resp, err := h.cli.Get(url + path)
	if err != nil {
		t.Fatalf("GET %s%s: %v", url, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var v T
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("GET %s%s: decode %q: %v", url, path, data, err)
	}
	return resp.StatusCode, v
}

// plannerCallsTotal sums primary planner invocations across the cluster.
func (h *clusterHarness) plannerCallsTotal() int64 {
	var total int64
	for _, srv := range h.srvs {
		total += srv.metrics.plannerCalls.Load()
	}
	return total
}

// TestClusterByteIdenticalAnySingleflight pins two cluster invariants at
// once: every workload query returns a byte-identical plan no matter
// which node receives it, and the whole 3-node cluster runs exactly one
// planner invocation per distinct canonical query.
func TestClusterByteIdenticalAnySingleflight(t *testing.T) {
	h := newClusterHarness(t, 3, nil)
	h.converge(t)
	for _, sql := range workload16 {
		var plans []planResponse
		for _, url := range h.urls {
			code, pr := clusterPost[planResponse](t, h, url, "/v1/plan", planRequest{SQL: sql})
			if code != http.StatusOK {
				t.Fatalf("query %q via %s: status %d", sql, url, code)
			}
			if pr.Degraded {
				t.Fatalf("query %q via %s: degraded with all nodes up", sql, url)
			}
			if pr.Node == "" {
				t.Fatalf("query %q via %s: clustered response missing node attribution", sql, url)
			}
			plans = append(plans, pr)
		}
		for i := 1; i < len(plans); i++ {
			if plans[i].Plan != plans[0].Plan || plans[i].PlanB64 != plans[0].PlanB64 {
				t.Fatalf("query %q: plan differs by entry node\nvia %s:\n%s\nvia %s:\n%s",
					sql, h.urls[0], plans[0].Plan, h.urls[i], plans[i].Plan)
			}
			if plans[i].Node != plans[0].Node {
				t.Errorf("query %q: planned on %s and on %s; one owner expected", sql, plans[0].Node, plans[i].Node)
			}
		}
	}
	if calls := h.plannerCallsTotal(); calls != workload16Distinct {
		t.Errorf("cluster ran the planner %d times for %d distinct queries; cluster-wide singleflight broken",
			calls, workload16Distinct)
	}
	// Cluster-wide each distinct key is cached exactly once: on its owner.
	var entries int
	for _, url := range h.urls {
		_, st := clusterGet[statsResponse](t, h, url, "/v1/stats")
		entries += st.CacheEntries
	}
	if entries != workload16Distinct {
		t.Errorf("cluster holds %d cache entries for %d distinct queries; keys cached off-owner", entries, workload16Distinct)
	}
}

// TestClusterConcurrentWorkload is the scaled version: 64 clients hit
// random nodes with the shuffled workload concurrently (the race
// detector watching), and the cluster still plans each distinct query
// exactly once.
func TestClusterConcurrentWorkload(t *testing.T) {
	h := newClusterHarness(t, 3, func(i int, cfg *Config) {
		cfg.Workers = 4
		cfg.QueueDepth = 256
	})
	h.converge(t)
	const clients = 64
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c) + 7))
			order := rng.Perm(len(workload16))
			for _, qi := range order {
				url := h.urls[rng.Intn(len(h.urls))]
				raw, _ := json.Marshal(planRequest{SQL: workload16[qi]})
				resp, err := h.cli.Post(url+"/v1/plan", "application/json", bytes.NewReader(raw))
				if err != nil {
					errs <- fmt.Errorf("client %d: %v", c, err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("client %d: query %q via %s: status %d: %s", c, workload16[qi], url, resp.StatusCode, body)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if calls := h.plannerCallsTotal(); calls != workload16Distinct {
		t.Errorf("cluster ran the planner %d times under the concurrent workload, want %d", calls, workload16Distinct)
	}
}

// TestClusterEpochGossipPurgesPeers drives the coherence story end to
// end: caches populated cluster-wide, a forced refresh on one node bumps
// its epoch, and one gossip push advances every peer's epoch and purges
// every peer's cache.
func TestClusterEpochGossipPurgesPeers(t *testing.T) {
	h := newClusterHarness(t, 3, nil)
	h.converge(t)
	for _, url := range h.urls {
		for _, sql := range workload16 {
			if code, _ := clusterPost[planResponse](t, h, url, "/v1/plan", planRequest{SQL: sql}); code != http.StatusOK {
				t.Fatalf("populate via %s: status %d", url, code)
			}
		}
	}
	var before int
	for _, url := range h.urls {
		_, st := clusterGet[statsResponse](t, h, url, "/v1/stats")
		if st.Epoch != 1 {
			t.Fatalf("node %s at epoch %d before refresh, want 1", url, st.Epoch)
		}
		before += st.CacheEntries
	}
	if before != workload16Distinct {
		t.Fatalf("cluster holds %d cache entries before refresh, want %d", before, workload16Distinct)
	}

	code, rr := clusterPost[refreshResponse](t, h, h.urls[0], "/v1/refresh", refreshRequest{Force: true})
	if code != http.StatusOK || !rr.Refreshed || rr.Epoch != 2 {
		t.Fatalf("forced refresh: status %d, %+v", code, rr)
	}
	// One manual push from the refreshed node (the background loop would
	// do this via Poke) must carry epoch 2 everywhere.
	h.srvs[0].cluster.GossipOnce(context.Background())
	for i, url := range h.urls {
		_, st := clusterGet[statsResponse](t, h, url, "/v1/stats")
		if st.Epoch != 2 {
			t.Errorf("node %d epoch %d after gossip, want 2", i, st.Epoch)
		}
		if st.CacheEntries != 0 {
			t.Errorf("node %d still holds %d cache entries planned under epoch 1", i, st.CacheEntries)
		}
	}
	// The bump is attributed on the peers' metrics.
	for _, url := range h.urls[1:] {
		resp, err := h.cli.Get(url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "acqserved_cluster_epoch_bumps 1") {
			t.Errorf("node %s metrics missing the epoch bump:\n%s", url, grepLines(string(body), "cluster"))
		}
		if !strings.Contains(string(body), fmt.Sprintf("acqserved_cluster_epoch_bumps_received{peer=%q} 1", h.urls[0])) {
			t.Errorf("node %s metrics missing the per-peer bump attribution:\n%s", url, grepLines(string(body), "cluster"))
		}
	}
}

// grepLines filters a blob to lines containing substr, for readable
// failure output.
func grepLines(s, substr string) string {
	var b strings.Builder
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// TestClusterPartitionDegraded pins the partition story in its minimal
// form — retries and failover disabled, so one forward is one attempt:
// with the shard owner unreachable the entry node answers locally with
// degraded=true and never caches; once the failure detector declares
// the owner dead, ownership moves and responses are whole again. (The
// resilient path — retries, rendezvous failover, breakers — is pinned
// by the chaos suite in cluster_chaos_test.go.)
func TestClusterPartitionDegraded(t *testing.T) {
	h := newClusterHarness(t, 3, func(i int, cfg *Config) { // FailAfter 2 from the harness default
		cfg.Cluster.ForwardRetries = -1
		cfg.Cluster.MaxFailovers = -1
	})
	h.converge(t)
	const sql = "SELECT * WHERE temp > 7"
	code, first := clusterPost[planResponse](t, h, h.urls[0], "/v1/plan", planRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("initial plan: status %d", code)
	}
	ownerIdx := -1
	for i, url := range h.urls {
		if url == first.Node {
			ownerIdx = i
		}
	}
	if ownerIdx < 0 {
		t.Fatalf("response node %q is not a cluster member", first.Node)
	}
	entryIdx := (ownerIdx + 1) % len(h.urls)
	entry := h.urls[entryIdx]

	// Partition the owner (transport down, process up — exactly what a
	// network partition looks like to its peers).
	_ = h.https[ownerIdx].Close()

	for attempt := 0; attempt < 2; attempt++ {
		code, pr := clusterPost[planResponse](t, h, entry, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK {
			t.Fatalf("partition attempt %d: status %d, want a degraded 200, not an error", attempt, code)
		}
		if !pr.Degraded {
			t.Fatalf("partition attempt %d: response not marked degraded", attempt)
		}
		if pr.Cached {
			t.Fatalf("partition attempt %d: degraded response served from cache", attempt)
		}
		if pr.Plan != first.Plan || pr.PlanB64 != first.PlanB64 {
			t.Fatalf("partition attempt %d: degraded local plan differs from the owner's (same statistics)", attempt)
		}
	}
	// Degraded outcomes must not have entered the entry node's cache.
	_, st := clusterGet[statsResponse](t, h, entry, "/v1/stats")
	if st.CacheEntries != 0 {
		t.Fatalf("entry node cached %d entries during the partition; degraded plans must never be cached", st.CacheEntries)
	}
	// Two failed forwards == FailAfter: the owner is now dead and the key
	// has a new owner among the live nodes, so the next answer is whole.
	code, pr := clusterPost[planResponse](t, h, entry, "/v1/plan", planRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("post-detection plan: status %d", code)
	}
	if pr.Degraded {
		t.Fatal("owner declared dead but responses still degraded; ownership did not move")
	}
	if pr.Node == h.urls[ownerIdx] {
		t.Fatalf("key still owned by the dead node %s", pr.Node)
	}
	if pr.Plan != first.Plan {
		t.Fatal("reassigned owner produced a different plan from identical statistics")
	}
	// The partition left its trail on the entry node's metrics.
	resp, err := h.cli.Get(entry + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "acqserved_cluster_degraded_partition 2") {
		t.Errorf("entry metrics missing degraded-partition count:\n%s", grepLines(string(body), "cluster"))
	}
	if !strings.Contains(string(body), fmt.Sprintf("acqserved_cluster_forward_failures{peer=%q} 2", h.urls[ownerIdx])) {
		t.Errorf("entry metrics missing per-peer forward failures:\n%s", grepLines(string(body), "cluster"))
	}
}

// TestClusterReadyz pins the liveness/readiness split: /healthz is 200
// from the first instant, /readyz refuses traffic until the node has
// joined and resolved every peer, then turns 200 after convergence.
func TestClusterReadyz(t *testing.T) {
	h := newClusterHarness(t, 3, nil)
	type ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	for i, url := range h.urls {
		if code, _ := clusterGet[map[string]any](t, h, url, "/healthz"); code != http.StatusOK {
			t.Errorf("node %d /healthz = %d before join, want 200 (liveness is not readiness)", i, code)
		}
		code, r := clusterGet[ready](t, h, url, "/readyz")
		if code != http.StatusServiceUnavailable || r.Ready {
			t.Errorf("node %d /readyz = %d %+v before any gossip, want 503 not-ready", i, code, r)
		}
		if !strings.Contains(r.Reason, "joining") {
			t.Errorf("node %d not-ready reason %q does not explain the join state", i, r.Reason)
		}
	}
	h.converge(t)
	for i, url := range h.urls {
		if code, r := clusterGet[ready](t, h, url, "/readyz"); code != http.StatusOK || !r.Ready {
			t.Errorf("node %d /readyz = %d %+v after convergence, want 200 ready", i, code, r)
		}
	}
	// Introspection sees the full membership from every node.
	for i, url := range h.urls {
		type info struct {
			Self    string `json:"self"`
			Members []struct {
				URL   string `json:"url"`
				State string `json:"state"`
			} `json:"members"`
		}
		_, ci := clusterGet[info](t, h, url, "/v1/cluster")
		if ci.Self != url || len(ci.Members) != 3 {
			t.Errorf("node %d introspection: self=%q members=%d, want self=%q members=3", i, ci.Self, len(ci.Members), url)
		}
		for _, m := range ci.Members {
			if m.State != "alive" {
				t.Errorf("node %d sees %s in state %q after convergence", i, m.URL, m.State)
			}
		}
	}
}

// TestStandaloneReadyz pins that an unclustered server is ready the
// moment it serves, and /v1/plan responses carry no cluster fields.
func TestStandaloneReadyz(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	w := getPath(t, srv, "/readyz")
	if w.Code != http.StatusOK {
		t.Fatalf("/readyz = %d standalone, want 200", w.Code)
	}
	pw := postJSON(t, srv, "/v1/plan", planRequest{SQL: "SELECT * WHERE temp > 7"})
	pr := decodeResp[planResponse](t, pw)
	if pr.Node != "" || pr.Forwarded {
		t.Errorf("standalone response carries cluster fields: node=%q forwarded=%v", pr.Node, pr.Forwarded)
	}
}

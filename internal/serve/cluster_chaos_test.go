package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"acqp/internal/chaos"
)

// The network chaos suite: the 3-node cluster harness with a seeded
// chaos.Transport on every node's forwarding/gossip client and an
// injected fake clock, driven by manual gossip stepping. ci.sh runs
// this file under -race. The invariants pinned here:
//
//   - every request is answered (degraded at worst, never an error);
//   - degraded answers are never served from or stored into any cache;
//   - routing cannot loop under flapping ownership (one internal hop,
//     then planning happens where the request lands);
//   - breakers open on a partitioned peer, skip it while open, and
//     recover through a half-open probe after the cooldown;
//   - after a heal, cluster-wide singleflight is restored exactly.

// fakeClock is the injected cluster/breaker clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// chaosHarness is the cluster harness plus each node's chaos transport
// and the shared fake clock.
type chaosHarness struct {
	*clusterHarness
	trs   []*chaos.Transport
	clock *fakeClock
}

// newChaosHarness builds an n-node cluster whose forwarding and gossip
// clients run through per-node chaos transports (seeded seed, seed+1,
// ...), with 1ms retry backoff so tests stay fast. mod can further
// adjust each node's config after the chaos wiring.
func newChaosHarness(t *testing.T, n int, seed uint64, mod func(i int, cfg *Config)) *chaosHarness {
	t.Helper()
	ch := &chaosHarness{trs: make([]*chaos.Transport, n), clock: newFakeClock()}
	ch.clusterHarness = newClusterHarness(t, n, func(i int, cfg *Config) {
		tr := chaos.New(chaos.Config{
			Seed:  seed + uint64(i),
			Self:  cfg.Cluster.Self,
			Sleep: func(time.Duration) {}, // injected latency is recorded, not paid
		})
		ch.trs[i] = tr
		cfg.Cluster.Transport = tr
		cfg.Cluster.Now = ch.clock.Now
		cfg.Cluster.RetryBackoff = time.Millisecond
		if mod != nil {
			mod(i, cfg)
		}
	})
	return ch
}

// ownerIdxOf maps an advertised URL to its harness index.
func (h *chaosHarness) idxOf(t *testing.T, url string) int {
	t.Helper()
	for i, u := range h.urls {
		if u == url {
			return i
		}
	}
	t.Fatalf("url %q is not a harness node", url)
	return -1
}

// freshPool returns n distinct queries disjoint from workload16 (and
// from other calls with a different tag).
func freshPool(tag, n int) []string {
	pool := make([]string, 0, n)
	for i := 0; i < n; i++ {
		pool = append(pool, fmt.Sprintf("SELECT * WHERE humid <= %d AND hour >= %d", i%14, 2*(tag/100)%20))
	}
	return pool
}

// assertSingleflightRestored drives a fresh query pool through every
// node sequentially and requires the cluster to plan each distinct
// query exactly once, then replays the pool and requires zero
// additional planner runs — the exactly-one-planner-run-per-distinct-
// query invariant the cluster must return to after any chaos episode.
func (h *chaosHarness) assertSingleflightRestored(t *testing.T, tag int) {
	t.Helper()
	pool := freshPool(tag, 6)
	before := h.plannerCallsTotal()
	for _, sql := range pool {
		for _, url := range h.urls {
			code, pr := clusterPost[planResponse](t, h.clusterHarness, url, "/v1/plan", planRequest{SQL: sql})
			if code != http.StatusOK {
				t.Fatalf("post-heal %q via %s: status %d", sql, url, code)
			}
			if pr.Degraded {
				t.Fatalf("post-heal %q via %s: still degraded after heal", sql, url)
			}
		}
	}
	if d := h.plannerCallsTotal() - before; d != int64(len(pool)) {
		t.Fatalf("fresh pool of %d distinct queries took %d planner runs; singleflight not restored", len(pool), d)
	}
	mid := h.plannerCallsTotal()
	for _, sql := range pool {
		for _, url := range h.urls {
			if code, _ := clusterPost[planResponse](t, h.clusterHarness, url, "/v1/plan", planRequest{SQL: sql}); code != http.StatusOK {
				t.Fatalf("replay %q via %s failed", sql, url)
			}
		}
	}
	if d := h.plannerCallsTotal() - mid; d != 0 {
		t.Fatalf("replaying the pool added %d planner runs; caches not coherent after heal", d)
	}
}

// TestClusterChaosAllAnswered floods every inter-node link with seeded
// drops, synthetic 5xx, and truncated bodies, and requires that every
// request is still answered 200 — whole via retries and rendezvous
// failover when possible, degraded otherwise — and that no degraded
// answer is ever served from a cache. Then the rules are lifted and
// cluster-wide singleflight must be exactly restored.
func TestClusterChaosAllAnswered(t *testing.T) {
	h := newChaosHarness(t, 3, 1234, func(i int, cfg *Config) {
		cfg.Cluster.ForwardRetries = 2
		cfg.Cluster.MaxFailovers = 2
		cfg.Cluster.BreakerThreshold = 4
		cfg.Cluster.BreakerCooldown = time.Second
		cfg.Cluster.FailAfter = 1000 // keep membership stable; this test is about the data path
	})
	h.converge(t)
	for _, tr := range h.trs {
		if err := tr.SetDefault(chaos.Rule{PDrop: 0.25, P5xx: 0.15, PTruncate: 0.15}); err != nil {
			t.Fatal(err)
		}
	}
	degraded, whole := 0, 0
	for round := 0; round < 3; round++ {
		for qi, sql := range workload16 {
			url := h.urls[(round+qi)%len(h.urls)]
			code, pr := clusterPost[planResponse](t, h.clusterHarness, url, "/v1/plan", planRequest{SQL: sql})
			if code != http.StatusOK {
				t.Fatalf("round %d %q via %s: status %d; chaos must never surface as an error", round, sql, url, code)
			}
			if pr.Degraded {
				degraded++
				if pr.Cached {
					t.Fatalf("round %d %q via %s: degraded answer served from cache", round, sql, url)
				}
			} else {
				whole++
			}
			if pr.Plan == "" {
				t.Fatalf("round %d %q via %s: empty plan in a 200", round, sql, url)
			}
		}
	}
	if whole == 0 {
		t.Fatal("no whole answers at these fault rates; retries/failover not engaging")
	}
	// Within one run the injection sequence is fully deterministic, but
	// the pair hashes mix in the harness's ephemeral ports, so *which*
	// faults land in a fixed request count varies across runs. Top up
	// with extra requests until every mode has demonstrably fired.
	sumInjected := func() chaos.Stats {
		var s chaos.Stats
		for _, tr := range h.trs {
			snap := tr.Snapshot()
			s.Dropped += snap.Dropped
			s.Injected += snap.Injected
			s.Truncated += snap.Truncated
		}
		return s
	}
	allFired := func(s chaos.Stats) bool { return s.Dropped > 0 && s.Injected > 0 && s.Truncated > 0 }
	injected := sumInjected()
	for extra := 0; !allFired(injected) && extra < 300; extra++ {
		sql := fmt.Sprintf("SELECT * WHERE temp >= %d AND light >= %d", extra%12, extra%15)
		url := h.urls[extra%len(h.urls)]
		code, _ := clusterPost[planResponse](t, h.clusterHarness, url, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK {
			t.Fatalf("top-up %q via %s: status %d; chaos must never surface as an error", sql, url, code)
		}
		injected = sumInjected()
	}
	if !allFired(injected) {
		t.Fatalf("chaos did not exercise every fault mode: %+v", injected)
	}
	t.Logf("chaos run: %d whole, %d degraded answers; injected %+v", whole, degraded, injected)

	// Lift the chaos; breakers (if any opened) recover through probes
	// after the cooldown.
	for _, tr := range h.trs {
		if err := tr.SetDefault(chaos.Rule{}); err != nil {
			t.Fatal(err)
		}
	}
	h.clock.Advance(2 * time.Second)
	h.assertSingleflightRestored(t, 100)
}

// TestClusterChaosReplayDeterministic pins that one seed produces one
// injection decision sequence: two identical request streams through
// two identically-seeded transports against the same destination
// observe identical per-link injection counters at every step.
func TestClusterChaosReplayDeterministic(t *testing.T) {
	// Two fresh harnesses cannot share URLs (ephemeral ports feed the
	// decision hash), so determinism is pinned at the transport level
	// here — same seed, same self, same destination — while the suite
	// above exercises the serving path. Two passes over one transport
	// config must agree exactly.
	runOnce := func() []chaos.Stats {
		tr := chaos.New(chaos.Config{Seed: 77, Self: "http://a", Sleep: func(time.Duration) {}})
		if err := tr.SetDefault(chaos.Rule{PDrop: 0.3, P5xx: 0.3}); err != nil {
			t.Fatal(err)
		}
		var history []chaos.Stats
		for i := 0; i < 64; i++ {
			req, err := http.NewRequest(http.MethodGet, "http://b.invalid/x", nil)
			if err != nil {
				t.Fatal(err)
			}
			resp, _ := tr.RoundTrip(req) // drops error, 5xx responds, else dials b.invalid and fails
			if resp != nil {
				_, _ = io.Copy(io.Discard, resp.Body)
				_ = resp.Body.Close()
			}
			history = append(history, tr.Snapshot())
		}
		return history
	}
	a, b := runOnce(), runOnce()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("injection counters diverged at request %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

// TestClusterChaosPartitionFailoverBreakers is the deterministic
// partition scenario (no probabilistic rules): the shard owner is
// partitioned away, requests keep succeeding via rendezvous failover or
// degraded local planning, breakers on the owner open and then skip it,
// and after a heal plus cooldown a half-open probe closes them and
// ownership-based routing resumes.
func TestClusterChaosPartitionFailoverBreakers(t *testing.T) {
	h := newChaosHarness(t, 3, 9, func(i int, cfg *Config) {
		cfg.Cluster.ForwardRetries = 1
		cfg.Cluster.MaxFailovers = 1
		cfg.Cluster.BreakerThreshold = 2
		cfg.Cluster.BreakerCooldown = 10 * time.Second
		cfg.Cluster.FailAfter = 1000 // the failure detector stays out of this test
	})
	h.converge(t)
	const sql = "SELECT * WHERE temp > 7"
	code, first := clusterPost[planResponse](t, h.clusterHarness, h.urls[0], "/v1/plan", planRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("initial plan: status %d", code)
	}
	ownerIdx := h.idxOf(t, first.Node)

	// Cut every link into the owner (its own outbound links stay up;
	// directional partitions are the harder case).
	for i, tr := range h.trs {
		if i != ownerIdx {
			tr.Partition(h.urls[ownerIdx])
		}
	}

	for i, entry := range h.urls {
		if i == ownerIdx {
			continue
		}
		// The entry's own view ranks the failover candidates; whether this
		// entry fails over to the other live node or degrades locally
		// depends on where it ranks itself for this key.
		order := h.srvs[i].cluster.OwnerOrder(first.Key)
		if order[0] != h.urls[ownerIdx] {
			t.Fatalf("entry %d ranks %s first for the key, want the owner %s", i, order[0], h.urls[ownerIdx])
		}
		wantFailover := order[1] != entry // another live node outranks us
		code, pr := clusterPost[planResponse](t, h.clusterHarness, entry, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK {
			t.Fatalf("partitioned request via entry %d: status %d", i, code)
		}
		if wantFailover {
			if pr.Degraded || pr.Node != order[1] {
				t.Fatalf("entry %d: want whole answer failed over to %s, got degraded=%v node=%s", i, order[1], pr.Degraded, pr.Node)
			}
		} else {
			if !pr.Degraded || pr.Cached {
				t.Fatalf("entry %d: want degraded uncached local answer, got degraded=%v cached=%v", i, pr.Degraded, pr.Cached)
			}
		}
		if pr.Plan != first.Plan {
			t.Fatalf("entry %d: partition answer differs from the owner's plan (identical statistics)", i)
		}
		// One request = two failed attempts (retry) = threshold: the
		// entry's breaker on the owner is now open.
		if st := h.srvs[i].breakerStates()[h.urls[ownerIdx]]; st != breakerOpen {
			t.Fatalf("entry %d breaker on owner in state %d after %d failures, want open (%d)", i, st, 2, breakerOpen)
		}
		// The next request must skip the owner without an attempt.
		sentBefore := h.srvs[i].metrics.peer(h.urls[ownerIdx]).forwardsSent.Load()
		skipsBefore := h.srvs[i].metrics.breakerSkips.Load()
		if code, _ := clusterPost[planResponse](t, h.clusterHarness, entry, "/v1/plan", planRequest{SQL: sql}); code != http.StatusOK {
			t.Fatalf("entry %d second partitioned request: status %d", i, code)
		}
		if sent := h.srvs[i].metrics.peer(h.urls[ownerIdx]).forwardsSent.Load(); sent != sentBefore {
			t.Fatalf("entry %d forwarded to the owner through an open breaker (%d -> %d sends)", i, sentBefore, sent)
		}
		if skips := h.srvs[i].metrics.breakerSkips.Load(); skips != skipsBefore+1 {
			t.Fatalf("entry %d breaker skips %d -> %d, want one more", i, skipsBefore, skips)
		}
	}

	// The open breaker is visible on /metrics as a gauge.
	entryIdx := (ownerIdx + 1) % 3
	resp, err := h.cli.Get(h.urls[entryIdx] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	wantGauge := fmt.Sprintf("acqserved_cluster_breaker_state{peer=%q,meaning=\"open\"} 2", h.urls[ownerIdx])
	if !strings.Contains(string(body), wantGauge) {
		t.Fatalf("metrics missing %q:\n%s", wantGauge, grepLines(string(body), "breaker"))
	}

	// Heal. Breakers stay open until the cooldown elapses: a heal alone
	// must not instantly re-route through a peer that was just failing.
	for _, tr := range h.trs {
		tr.HealAll()
	}
	h.clock.Advance(11 * time.Second)
	for i, entry := range h.urls {
		if i == ownerIdx {
			continue
		}
		// First request after the cooldown is admitted as the half-open
		// probe; its success closes the breaker and the owner answers.
		code, pr := clusterPost[planResponse](t, h.clusterHarness, entry, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK || pr.Degraded || pr.Node != h.urls[ownerIdx] {
			t.Fatalf("entry %d post-heal: status %d degraded=%v node=%s, want whole answer from the owner", i, code, pr.Degraded, pr.Node)
		}
		if st := h.srvs[i].breakerStates()[h.urls[ownerIdx]]; st != breakerClosed {
			t.Fatalf("entry %d breaker on owner still in state %d after a successful probe", i, st)
		}
	}
	h.assertSingleflightRestored(t, 200)
}

// TestClusterBreakerGossipInterplay covers the failure-detector /
// breaker interaction: a partitioned owner is declared dead by
// heartbeat while its breaker is open and cooldown-eligible (half-open
// pending), rendezvous reassigns its keys deterministically, and when
// the peer flaps back the next gossip revives it, the probe closes the
// breaker, and ownership returns. The whole episode is driven twice on
// the same cluster and must replay the same state trajectory — there is
// no wall-clock or RNG anywhere in the loop.
func TestClusterBreakerGossipInterplay(t *testing.T) {
	h := newChaosHarness(t, 3, 5, func(i int, cfg *Config) {
		cfg.Cluster.ForwardRetries = -1 // one attempt per request: breaker/heartbeat arithmetic below
		cfg.Cluster.MaxFailovers = 1
		cfg.Cluster.BreakerThreshold = 1
		cfg.Cluster.BreakerCooldown = 5 * time.Second
		cfg.Cluster.FailAfter = 2
	})
	h.converge(t)
	const sql = "SELECT * WHERE light > 11 AND humid < 8"
	code, first := clusterPost[planResponse](t, h.clusterHarness, h.urls[0], "/v1/plan", planRequest{SQL: sql})
	if code != http.StatusOK {
		t.Fatalf("initial plan: status %d", code)
	}
	ownerIdx := h.idxOf(t, first.Node)
	entryIdx := (ownerIdx + 1) % 3
	entry := h.urls[entryIdx]
	ownerURL := h.urls[ownerIdx]

	episode := func() []string {
		var tr []string
		state := func() string {
			st := h.srvs[entryIdx].breakerStates()[ownerURL]
			alive := "alive"
			if d, _ := h.srvs[entryIdx].cluster.Owner(first.Key); d != ownerURL {
				alive = "reassigned"
			}
			return fmt.Sprintf("breaker=%s owner=%s", breakerStateNames[st], alive)
		}
		// Partition the owner in both directions from everyone.
		for i, ctr := range h.trs {
			if i != ownerIdx {
				ctr.Partition(ownerURL)
				h.trs[ownerIdx].Partition(h.urls[i])
			}
		}
		// One failed forward opens the threshold-1 breaker; misses=1 of 2.
		code, pr := clusterPost[planResponse](t, h.clusterHarness, entry, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK {
			t.Fatalf("partitioned request: status %d", code)
		}
		if pr.Node == ownerURL {
			t.Fatalf("partitioned request claims the owner answered")
		}
		tr = append(tr, state())
		// Cooldown elapses: the breaker is half-open-eligible, but before
		// any probe fires the heartbeat declares the owner dead (miss 2 of
		// 2 via the failed gossip exchange).
		h.clock.Advance(6 * time.Second)
		h.srvs[entryIdx].cluster.GossipOnce(context.Background())
		tr = append(tr, state())
		// The dead owner is out of the rendezvous order: requests are
		// whole again without consulting its breaker.
		code, pr = clusterPost[planResponse](t, h.clusterHarness, entry, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK || pr.Degraded {
			t.Fatalf("post-death request: status %d degraded=%v, want whole from the reassigned owner", code, pr.Degraded)
		}
		newOwner, _ := h.srvs[entryIdx].cluster.Owner(first.Key)
		if pr.Node != newOwner || pr.Node == ownerURL {
			t.Fatalf("post-death request answered by %s, want reassigned owner %s", pr.Node, newOwner)
		}
		if pr.Plan != first.Plan {
			t.Fatal("reassigned owner produced a different plan from identical statistics")
		}
		tr = append(tr, state())
		// Flap back: heal, and the next gossip exchange revives the peer
		// (dead members keep being probed).
		for _, ctr := range h.trs {
			ctr.HealAll()
		}
		h.srvs[entryIdx].cluster.GossipOnce(context.Background())
		tr = append(tr, state())
		// Ownership is back; the first forward is the half-open probe and
		// its success closes the breaker.
		code, pr = clusterPost[planResponse](t, h.clusterHarness, entry, "/v1/plan", planRequest{SQL: sql})
		if code != http.StatusOK || pr.Degraded || pr.Node != ownerURL {
			t.Fatalf("post-revival request: status %d degraded=%v node=%s, want the original owner %s", code, pr.Degraded, pr.Node, ownerURL)
		}
		tr = append(tr, state())
		// Leave the cluster converged for the next episode.
		h.clock.Advance(6 * time.Second)
		return tr
	}

	want := []string{
		"breaker=open owner=alive",
		"breaker=open owner=reassigned",
		"breaker=open owner=reassigned",
		"breaker=open owner=alive",
		"breaker=closed owner=alive",
	}
	for run := 0; run < 2; run++ {
		got := episode()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("run %d step %d: state %q, want %q (full trace %v)", run, i, got[i], want[i], got)
			}
		}
	}
}

// TestClusterChaosZeroEquivalence pins the p=0 criterion: a cluster
// with chaos transports installed but no active rules answers with the
// same plans, costs, and flags as one with no chaos layer at all, and
// none of the resilience machinery (retries, failovers, breakers,
// budget) ever activates.
func TestClusterChaosZeroEquivalence(t *testing.T) {
	withChaos := newChaosHarness(t, 3, 42, nil)
	plain := newClusterHarness(t, 3, nil)
	withChaos.converge(t)
	plain.converge(t)
	for _, sql := range workload16 {
		for j := range withChaos.urls {
			codeA, a := clusterPost[planResponse](t, withChaos.clusterHarness, withChaos.urls[j], "/v1/plan", planRequest{SQL: sql})
			codeB, b := clusterPost[planResponse](t, plain, plain.urls[j], "/v1/plan", planRequest{SQL: sql})
			if codeA != codeB {
				t.Fatalf("%q via node %d: status %d with idle chaos vs %d without", sql, j, codeA, codeB)
			}
			// Node and Key are topology-dependent (ephemeral ports); every
			// planning-visible field must match exactly.
			if a.Plan != b.Plan || a.PlanB64 != b.PlanB64 || a.ExpectedCost != b.ExpectedCost ||
				a.NaiveCost != b.NaiveCost || a.Splits != b.Splits || a.Degraded != b.Degraded {
				t.Fatalf("%q via node %d: response diverged under idle chaos:\nwith:    %+v\nwithout: %+v", sql, j, a, b)
			}
		}
	}
	for i, srv := range withChaos.srvs {
		m := &srv.metrics
		for name, v := range map[string]int64{
			"forward_retries":        m.forwardRetries.Load(),
			"forward_failovers":      m.forwardFailovers.Load(),
			"retry_budget_exhausted": m.retryBudgetExhausted.Load(),
			"breaker_opens":          m.breakerOpens.Load(),
			"breaker_skips":          m.breakerSkips.Load(),
			"degraded_partition":     m.degradedPartition.Load(),
		} {
			if v != 0 {
				t.Errorf("node %d: %s = %d with idle chaos, want 0", i, name, v)
			}
		}
		s := withChaos.trs[i].Snapshot()
		if s.Dropped+s.Injected+s.Truncated+s.Blocked+s.Delayed != 0 {
			t.Errorf("node %d: idle chaos transport injected something: %+v", i, s)
		}
		if s.Requests != s.Passed {
			t.Errorf("node %d: idle chaos transport perturbed traffic: %+v", i, s)
		}
	}
}

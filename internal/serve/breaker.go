package serve

import (
	"sync"
	"time"
)

// Per-peer circuit breaking for cluster forwarding. Each peer a node
// forwards to gets a three-state breaker:
//
//	closed    → forwards flow; consecutive failures are counted, and at
//	            the threshold the breaker opens.
//	open      → forwards to the peer are skipped (the router moves to
//	            the next rendezvous candidate immediately, without
//	            paying a connect timeout) until the cooldown elapses.
//	half-open → after the cooldown, exactly one request is admitted as
//	            a probe; its success closes the breaker, its failure
//	            reopens it for another cooldown.
//
// Time is injected (clusterNow), so breaker trajectories are
// deterministic under the chaos suite's fake clock.

// Breaker states, exported to /metrics as a numeric gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

var breakerStateNames = [...]string{"closed", "half-open", "open"}

// breaker is one peer's circuit breaker.
type breaker struct {
	threshold int           // consecutive failures that open the breaker
	cooldown  time.Duration // open dwell before a half-open probe

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // when the breaker last opened
	probing  bool      // a half-open probe is in flight
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a forward to the peer may proceed. In the open
// state it transitions to half-open once the cooldown has elapsed and
// admits the caller as the probe; while a probe is in flight every
// other caller is refused.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a successful exchange: the breaker closes and the
// failure streak resets.
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a failed exchange and returns true when this failure
// opened the breaker (closed streak reached the threshold, or a
// half-open probe failed).
func (b *breaker) failure(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		b.fails++
		if b.fails < b.threshold {
			return false
		}
	case breakerOpen:
		return false
	}
	b.state = breakerOpen
	b.openedAt = now
	b.fails = 0
	b.probing = false
	return true
}

// snapshot returns the current state for the /metrics gauge.
func (b *breaker) snapshot() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// retryBudget is a token bucket that bounds cluster-wide retry
// amplification (the Finagle retry-budget scheme): every first attempt
// deposits ratio tokens, every retry withdraws one, and the bucket is
// capped. Under a total outage retries converge to ratio extra load
// instead of multiplying it by the per-request retry limit.
type retryBudget struct {
	mu     sync.Mutex
	tokens float64
	cap    float64
	ratio  float64
}

func newRetryBudget(ratio float64, capTokens float64) *retryBudget {
	return &retryBudget{tokens: capTokens, cap: capTokens, ratio: ratio}
}

// deposit credits one first attempt.
func (rb *retryBudget) deposit() {
	rb.mu.Lock()
	rb.tokens += rb.ratio
	if rb.tokens > rb.cap {
		rb.tokens = rb.cap
	}
	rb.mu.Unlock()
}

// withdraw spends one retry token; false means the budget is exhausted
// and the retry must be skipped.
func (rb *retryBudget) withdraw() bool {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if rb.tokens < 1 {
		return false
	}
	rb.tokens--
	return true
}

// breakerFor returns (creating on first use) the breaker guarding one
// peer URL.
func (s *Server) breakerFor(url string) *breaker {
	s.breakMu.Lock()
	defer s.breakMu.Unlock()
	if s.breakers == nil {
		s.breakers = make(map[string]*breaker)
	}
	b := s.breakers[url]
	if b == nil {
		b = newBreaker(s.resil.breakerThreshold, s.resil.breakerCooldown)
		s.breakers[url] = b
	}
	return b
}

// breakerStates returns every known peer breaker's state, for /metrics.
func (s *Server) breakerStates() map[string]int {
	s.breakMu.Lock()
	defer s.breakMu.Unlock()
	out := make(map[string]int, len(s.breakers))
	//acqlint:ignore maporder callers sort the keys before rendering
	for u, b := range s.breakers {
		out[u] = b.snapshot()
	}
	return out
}

package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"acqp/internal/trace"
)

// postRaw posts an exact byte body (postJSON would re-marshal it and
// perturb the bytes the fast cache keys on).
func postRaw(t *testing.T, srv *Server, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	return w
}

// stripVolatile parses a /plan response and blanks the two per-request
// fields so slow- and fast-path answers can be compared structurally.
func stripVolatile(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode %q: %v", body, err)
	}
	if id, _ := m["request_id"].(string); id == "" {
		t.Fatalf("response missing request_id: %s", body)
	}
	delete(m, "request_id")
	delete(m, "elapsed_ms")
	return m
}

// TestFastPathMatchesSlowPath pins the fast cache's contract: a
// replayed response is identical to the slow path's cache-hit response
// in every field except the per-request elapsed_ms and request_id.
func TestFastPathMatchesSlowPath(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	const body = `{"sql":"SELECT * WHERE temp > 7 AND light > 11"}`

	postRaw(t, srv, "/v1/plan", body, nil)              // plans, fills the plan cache
	slow := postRaw(t, srv, "/v1/plan", body, nil)      // slow-path cache hit, installs the blob
	fast := postRaw(t, srv, "/v1/plan", body, nil)      // fast path
	fastAgain := postRaw(t, srv, "/v1/plan", body, nil) // fast path, fresh request_id
	if slow.Code != http.StatusOK || fast.Code != http.StatusOK {
		t.Fatalf("status slow=%d fast=%d", slow.Code, fast.Code)
	}

	sm := stripVolatile(t, slow.Body.Bytes())
	fm := stripVolatile(t, fast.Body.Bytes())
	if sv, fv := sm["cached"], fm["cached"]; sv != true || fv != true {
		t.Errorf("cached: slow=%v fast=%v, want true for both", sv, fv)
	}
	sj, _ := json.Marshal(sm)
	fj, _ := json.Marshal(fm)
	if string(sj) != string(fj) {
		t.Errorf("fast response differs from slow:\n slow: %s\n fast: %s", sj, fj)
	}
	if fast.Header().Get("Content-Type") != "application/json" {
		t.Errorf("fast Content-Type = %q", fast.Header().Get("Content-Type"))
	}

	var r1, r2 planResponse
	if err := json.Unmarshal(fast.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(fastAgain.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if r1.RequestID == r2.RequestID {
		t.Errorf("fast responses share request_id %q", r1.RequestID)
	}
	if hdr := fast.Header().Get("X-Request-Id"); hdr != r1.RequestID {
		t.Errorf("header id %q != body id %q", hdr, r1.RequestID)
	}
}

// TestFastPathEchoesClientRequestID pins that a caller-supplied
// X-Request-Id flows into the replayed body, and that an ID needing
// JSON escaping falls back to the slow path and still round-trips.
func TestFastPathEchoesClientRequestID(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	const body = `{"sql":"SELECT * WHERE temp > 7"}`
	postRaw(t, srv, "/v1/plan", body, nil)
	postRaw(t, srv, "/v1/plan", body, nil)

	for _, id := range []string{"client-id-123", `we"ird\id`} {
		w := postRaw(t, srv, "/v1/plan", body, map[string]string{"X-Request-Id": id})
		if w.Code != http.StatusOK {
			t.Fatalf("id %q: status %d: %s", id, w.Code, w.Body.String())
		}
		resp := decodeResp[planResponse](t, w)
		if resp.RequestID != id {
			t.Errorf("id %q: body request_id = %q", id, resp.RequestID)
		}
	}
}

// TestFastPathAliasHeaders pins that the legacy /plan alias keeps its
// Deprecation and successor-version Link headers on the fast path.
func TestFastPathAliasHeaders(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	const body = `{"sql":"SELECT * WHERE temp > 7"}`
	slow := postRaw(t, srv, "/plan", body, nil)
	postRaw(t, srv, "/plan", body, nil)
	fast := postRaw(t, srv, "/plan", body, nil)
	for _, h := range []string{"Deprecation", "Link"} {
		if got, want := fast.Header().Get(h), slow.Header().Get(h); got != want || got == "" {
			t.Errorf("alias header %s: fast %q, slow %q", h, got, want)
		}
	}
	// The versioned route must not grow the alias headers.
	v1 := postRaw(t, srv, "/v1/plan", body, nil)
	postRaw(t, srv, "/v1/plan", body, nil)
	if postRaw(t, srv, "/v1/plan", body, nil); v1.Header().Get("Deprecation") != "" {
		t.Error("versioned route carries a Deprecation header")
	}
}

// TestFastPathEpochInvalidation pins that an epoch bump invalidates
// fast-path blobs: responses after a forced refresh carry the new epoch.
func TestFastPathEpochInvalidation(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	const body = `{"sql":"SELECT * WHERE temp > 7"}`
	postRaw(t, srv, "/v1/plan", body, nil)
	postRaw(t, srv, "/v1/plan", body, nil)
	before := decodeResp[planResponse](t, postRaw(t, srv, "/v1/plan", body, nil))

	w := postJSON(t, srv, "/v1/refresh", refreshRequest{Force: true})
	if w.Code != http.StatusOK {
		t.Fatalf("refresh: %d %s", w.Code, w.Body.String())
	}

	after := decodeResp[planResponse](t, postRaw(t, srv, "/v1/plan", body, nil))
	if after.Epoch != before.Epoch+1 {
		t.Errorf("post-refresh epoch = %d, want %d", after.Epoch, before.Epoch+1)
	}
	if after.Cached {
		t.Error("post-refresh response claims a cache hit; the old-epoch entry should be gone")
	}
}

// TestServeCacheHitAllocs is the hot-path allocation gate: a fast-path
// /plan hit must cost at most 8 allocations end to end (the measured
// steady state is 3: the request-ID string, its header value slot, and
// a pool-internal bookkeeping allocation). The pre-refactor path cost
// 74. Mirrors the trace package's zero-alloc gate, and like it must run
// without -race: the race runtime allocates per call.
func TestServeCacheHitAllocs(t *testing.T) {
	if trace.RaceEnabled {
		t.Skip("race detector instrumentation allocates; ci.sh runs this gate without -race")
	}
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)
	hot := newHotRequest("/v1/plan", `{"sql":"SELECT * WHERE temp > 7 AND light > 11"}`)
	for i := 0; i < 2; i++ {
		if rec := hot.do(srv); rec.status != http.StatusOK {
			t.Fatalf("warmup status %d: %s", rec.status, rec.body)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if rec := hot.do(srv); rec.status != http.StatusOK {
			t.Fatalf("status %d", rec.status)
		}
	})
	if allocs > 8 {
		t.Errorf("cache-hit serve path allocates %.1f/op, gate is 8", allocs)
	}
}

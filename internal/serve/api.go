package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"acqp"
	"acqp/internal/exec"
	"acqp/internal/model"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/sql"
	"acqp/internal/stats"
	"acqp/internal/trace"
)

// maxBodyBytes bounds request bodies; planning requests are tiny and
// ingest batches are capped well below this.
const maxBodyBytes = 1 << 20

// planRequest is the /plan (and /execute) request body.
type planRequest struct {
	// SQL is a TinyDB-style statement, e.g.
	// "SELECT * WHERE 10 <= temp <= 20 AND light > 100".
	SQL string `json:"sql"`
	// Planner selects the algorithm: "greedy" (default), "exhaustive",
	// "corrseq", or "naive".
	Planner string `json:"planner,omitempty"`
	// Model selects the statistics backend planning (and fault imputation
	// on /execute) runs against: "empirical" (the default — raw per-epoch
	// counts), "independent", "chowliu", or "bn". Fitted backends are
	// built once per epoch and shared across requests.
	Model string `json:"model,omitempty"`
	// MaxSplits and SplitPoints override the server's greedy defaults.
	MaxSplits   int `json:"max_splits,omitempty"`
	SplitPoints int `json:"split_points,omitempty"`
	// TimeoutMS shortens (never extends) the server's planning deadline.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Parallelism sets the planner's worker count for this request,
	// clamped to GOMAXPROCS; zero means the server default. The resulting
	// plan is identical at every setting — only planning latency changes.
	Parallelism int `json:"parallelism,omitempty"`
	// Strict disables the service's graceful fallbacks: an unsatisfiable
	// query is a 422 error instead of a constant-false plan, and an
	// exhaustive search that exhausts its budget or deadline is a 504
	// instead of degrading to a sequential plan.
	Strict bool `json:"strict,omitempty"`
	// NoCache bypasses the plan cache for this request.
	NoCache bool `json:"no_cache,omitempty"`
	// Trace asks for the planner's phase timings and search counters in
	// the response (and, on /execute, the per-node execution profile).
	// It never affects which plan is returned or whether it is cached.
	Trace bool `json:"trace,omitempty"`
	// Faults injects deterministic acquisition faults for what-if
	// analysis. Requests carrying it may read the cache but never store
	// into it, and /execute runs the fault-aware executor.
	Faults *faultSpec `json:"faults,omitempty"`
	// Source selects what /execute runs the plan over: "table" (default)
	// materializes the statistics window into a table first — the
	// historical behavior — while "stream_window" streams the window's
	// tuples straight into the executor in bounded batches. Results are
	// identical; /plan ignores the field.
	Source string `json:"source,omitempty"`
}

// planResponse is the /plan response body.
type planResponse struct {
	Plan         string  `json:"plan"`
	PlanB64      string  `json:"plan_b64"`
	ExpectedCost float64 `json:"expected_cost"`
	NaiveCost    float64 `json:"naive_cost"`
	Splits       int     `json:"splits"`
	SizeBytes    int     `json:"size_bytes"`
	Cached       bool    `json:"cached"`
	Shared       bool    `json:"shared,omitempty"`
	Degraded     bool    `json:"degraded,omitempty"`
	Epoch        uint64  `json:"epoch"`
	Key          string  `json:"key"`
	PlanMS       float64 `json:"plan_ms"`
	// Model echoes the statistics backend the plan was built against. It
	// is omitted when the request did not ask for one and the server runs
	// the empirical default, keeping legacy responses byte-identical. It
	// must serialize before ElapsedMS: the fast path (fast.go) splices the
	// request ID and elapsed time into a pre-serialized blob by matching
	// the fixed `,"elapsed_ms":0}` tail.
	Model     string  `json:"model,omitempty"`
	ElapsedMS float64 `json:"elapsed_ms"`
	RequestID string  `json:"request_id,omitempty"`
	// Node is the advertised URL of the node that did the planning work
	// and Forwarded reports an internal shard-owner hop; both are empty
	// when the server runs standalone.
	Node      string `json:"node,omitempty"`
	Forwarded bool   `json:"forwarded,omitempty"`
	// Trace is present when the request set trace=true and a planner run
	// actually happened (cache hits report no trace: no planner ran).
	Trace *trace.Snapshot `json:"trace,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		return // client went away mid-write; nothing useful to do
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeRequest parses a JSON body strictly (unknown fields rejected).
func decodeRequest(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	return nil
}

// decodeRequestRaw is decodeRequest for handlers that may forward the
// request to a peer: it returns the raw body alongside the strict
// parse, so the forwarded hop carries the client's bytes verbatim.
func decodeRequestRaw(w http.ResponseWriter, r *http.Request, v any) ([]byte, error) {
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		return nil, err
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return nil, err
	}
	return raw, nil
}

// writeDecodeError maps a request-body decoding failure to a status: 413
// when the MaxBytesReader limit tripped, 400 for malformed JSON.
func writeDecodeError(w http.ResponseWriter, err error) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		writeError(w, http.StatusRequestEntityTooLarge, "request body exceeds %d bytes", mbe.Limit)
		return
	}
	writeError(w, http.StatusBadRequest, "bad request body: %v", err)
}

// canonicalize parses the request SQL and reduces its WHERE clause to the
// canonical conjunction. The boolean results distinguish the trivial
// cases: trivial=true means the answer is the constant trivialResult. In
// strict mode an unsatisfiable WHERE clause is a typed 422 error rather
// than a constant-false plan.
func (s *Server) canonicalize(w http.ResponseWriter, req planRequest, strict bool) (canon query.Query, trivial, trivialResult bool, ok bool) {
	if req.SQL == "" {
		writeError(w, http.StatusBadRequest, "missing sql field")
		return query.Query{}, false, false, false
	}
	st, err := sql.Parse(s.s, req.SQL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return query.Query{}, false, false, false
	}
	preds, conj := st.Predicates()
	if !conj {
		writeError(w, http.StatusUnprocessableEntity,
			"WHERE clause is not a conjunction of range predicates; the planning service handles conjunctive queries only")
		return query.Query{}, false, false, false
	}
	canon, err = query.Canonical(s.s, preds)
	switch {
	case errors.Is(err, query.ErrUnsatisfiable):
		if strict {
			writeError(w, http.StatusUnprocessableEntity, "%v", acqp.ErrUnsatisfiable)
			return query.Query{}, false, false, false
		}
		return query.Query{}, true, false, true
	case errors.Is(err, query.ErrNotSingleRange):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return query.Query{}, false, false, false
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return query.Query{}, false, false, false
	}
	if len(canon.Preds) == 0 {
		return query.Query{}, true, true, true
	}
	if n := len(canon.Preds); n > stats.MaxJointPreds {
		// Joint predicate statistics pack one predicate per bit of a
		// uint32 mask; past that the stats layer panics. Reject up front
		// with the facade's typed-request verdict instead of a 500.
		writeError(w, http.StatusUnprocessableEntity,
			"%v: query has %d predicates, planning supports at most %d", acqp.ErrInvalidRequest, n, stats.MaxJointPreds)
		return query.Query{}, false, false, false
	}
	return canon, false, false, true
}

// echoModel returns the model name a response reports: the resolved
// backend when the client selected one explicitly or the server's default
// is non-empirical; empty — the field is omitted — otherwise, keeping
// default-configuration responses byte-identical to prior releases.
func (s *Server) echoModel(req planRequest, p plannerParams) string {
	if req.Model != "" || p.model != model.NameEmpirical {
		return p.model
	}
	return ""
}

// handlePlan serves POST /plan.
func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	count(&s.metrics.inFlight, 1)
	defer s.metrics.inFlight.Add(-1)
	start := time.Now()

	var req planRequest
	raw, err := decodeRequestRaw(w, r, &req)
	if err != nil {
		writeDecodeError(w, err)
		return
	}
	p, err := s.resolveParams(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canon, trivial, trivialResult, ok := s.canonicalize(w, req, p.strict)
	if !ok {
		return
	}
	if req.Faults != nil {
		// Validate the what-if section even though /plan does not execute:
		// clients iterating on a faults spec get errors at plan time. The
		// imputation model is the request's selected backend.
		dist, _, derr := s.modelSnapshot(p.model)
		if derr != nil {
			writePlanError(w, fmt.Errorf("serve: fitting model %q: %w", p.model, derr))
			return
		}
		if _, err := s.buildFaultConfig(req.Faults, dist); err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var out planOutcome
	var cached, shared, forwarded bool
	var servedBy string
	if trivial {
		// Constant-answer plans are free; no node forwards them.
		out = s.trivialOutcome(trivialResult, s.Epoch())
		servedBy = s.clusterSelf
	} else {
		out, cached, shared, servedBy, forwarded, err = s.planRouted(r, canon, p, req, raw)
		if err != nil {
			writePlanError(w, err)
			return
		}
	}
	s.metrics.recordRequest(epPlan, requestOutcome(out.degraded, cached || shared), time.Since(start))
	resp := planResponse{
		Plan:         out.rendered,
		PlanB64:      out.encoded,
		ExpectedCost: out.cost,
		NaiveCost:    out.naiveCost,
		Splits:       out.splits,
		SizeBytes:    out.sizeBytes,
		Cached:       cached,
		Shared:       shared,
		Degraded:     out.degraded,
		Epoch:        out.epoch,
		Key:          canon.Key(),
		PlanMS:       out.planMS,
		Model:        s.echoModel(req, p),
		ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
		RequestID:    requestIDFrom(r.Context()),
		Node:         servedBy,
		Forwarded:    forwarded,
		Trace:        out.traceSnap,
	}
	writeJSON(w, http.StatusOK, resp)
	s.maybeInstallFast(raw, req, p, resp, trivial, cached)
}

// requestOutcome classifies one answered request for the per-endpoint
// latency rings: degradation dominates, then hit vs miss.
func requestOutcome(degraded, hit bool) int {
	switch {
	case degraded:
		return outcomeDegraded
	case hit:
		return outcomeHit
	default:
		return outcomeMiss
	}
}

func writePlanError(w http.ResponseWriter, err error) {
	var re *remoteError
	switch {
	case errors.As(err, &re):
		// A shard owner answered with an error; relay its verdict (and
		// backpressure hint) untouched.
		if re.retryAfter != "" {
			w.Header().Set("Retry-After", re.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(re.status)
		_, _ = w.Write(re.body)
	case errors.Is(err, errShed):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, errShutdown):
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, acqp.ErrBudgetExceeded), errors.Is(err, context.DeadlineExceeded):
		// Strict requests surface budget/deadline exhaustion instead of
		// degrading; the search ran out of time upstream of the client.
		writeError(w, http.StatusGatewayTimeout, "%v", err)
	case errors.Is(err, acqp.ErrUnsatisfiable):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

// executeResponse is the /execute response body: the plan summary plus
// metered execution over the current statistics window.
type executeResponse struct {
	planResponse
	Tuples       int     `json:"tuples"`
	Selected     int     `json:"selected"`
	MeanCost     float64 `json:"mean_cost"`
	MaxCost      float64 `json:"max_cost"`
	Mismatches   int     `json:"mismatches"`
	ExecuteMS    float64 `json:"execute_ms"`
	WindowTuples int     `json:"window_tuples"`
	// Faults reports the fault-aware execution when the request carried a
	// faults section.
	Faults *faultReport `json:"faults,omitempty"`
	// ExecTrace is the per-node cost heatmap and predicted-vs-observed
	// drift, present when the request set trace=true.
	ExecTrace *execTraceReport `json:"exec_trace,omitempty"`
}

// execTraceNode is one plan node's observed execution profile. IDs are
// pre-order indices into the returned plan (see plan.NodeIDs); they are
// stable across runs of the same plan, not across different plans.
type execTraceNode struct {
	ID     int     `json:"id"`
	Label  string  `json:"label"`
	Visits int64   `json:"visits"`
	Cost   float64 `json:"cost"`
}

// execTraceReport is the "exec_trace" section of an /execute response.
type execTraceReport struct {
	Nodes []execTraceNode `json:"nodes"`
	// ObservedTotal includes charges that have no node attribution
	// (replanned residual plans under fault injection), so it can exceed
	// the sum over Nodes but never fall below it.
	ObservedTotal float64 `json:"observed_total_cost"`
	ObservedMean  float64 `json:"observed_mean_cost"`
	// PredictedMean is the planner's expected per-tuple cost under the
	// statistics the plan was built on; DriftPct is the relative gap.
	PredictedMean float64 `json:"predicted_mean_cost"`
	DriftPct      float64 `json:"drift_pct"`
}

// execTraceFor renders an execution profile against its plan.
func (s *Server) execTraceFor(node *plan.Node, prof *trace.ExecProfile, predictedMean float64) *execTraceReport {
	if prof == nil {
		return nil
	}
	nodes := node.Preorder()
	rep := &execTraceReport{Nodes: make([]execTraceNode, len(nodes)), ObservedTotal: prof.TotalCost, PredictedMean: predictedMean}
	for i, n := range nodes {
		rep.Nodes[i] = execTraceNode{ID: i, Label: plan.NodeLabel(n, s.s.Name), Visits: prof.NodeVisits[i], Cost: prof.NodeCost[i]}
	}
	if prof.Tuples > 0 {
		rep.ObservedMean = prof.TotalCost / float64(prof.Tuples)
	}
	if predictedMean > 0 {
		rep.DriftPct = 100 * (rep.ObservedMean - predictedMean) / predictedMean
	}
	return rep
}

// handleExecute serves POST /execute: plan (through the cache) and run
// the plan over the sliding window's tuples with full acquisition
// metering.
func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	count(&s.metrics.inFlight, 1)
	defer s.metrics.inFlight.Add(-1)
	start := time.Now()

	var req planRequest
	if err := decodeRequest(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	p, err := s.resolveParams(req)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	canon, trivial, trivialResult, ok := s.canonicalize(w, req, p.strict)
	if !ok {
		return
	}
	var faultCfg exec.FaultConfig
	if req.Faults != nil {
		// Imputation fills failed acquisitions from the request's selected
		// statistics backend, so a "bn" run imputes from the Bayes net.
		dist, _, derr := s.modelSnapshot(p.model)
		if derr != nil {
			writePlanError(w, fmt.Errorf("serve: fitting model %q: %w", p.model, derr))
			return
		}
		faultCfg, err = s.buildFaultConfig(req.Faults, dist)
		if err != nil {
			writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
	}
	var out planOutcome
	var cached, shared bool
	if trivial {
		out = s.trivialOutcome(trivialResult, s.Epoch())
	} else {
		out, cached, shared, err = s.planCached(r.Context(), canon, p, req.NoCache, req.Faults != nil)
		if err != nil {
			writePlanError(w, err)
			return
		}
	}
	var src exec.RowSource
	var windowTuples int
	switch req.Source {
	case "", "table":
		s.wmu.Lock()
		tbl := s.window.Materialize()
		s.wmu.Unlock()
		src = exec.NewTableSource(tbl, 0)
		windowTuples = tbl.NumRows()
	case "stream_window":
		s.wmu.Lock()
		src = s.window.Source(0)
		windowTuples = s.window.Len()
		s.wmu.Unlock()
	default:
		writeError(w, http.StatusBadRequest, "unknown source %q (want table or stream_window)", req.Source)
		return
	}
	execStart := time.Now()
	var prof *trace.ExecProfile
	if p.traced {
		prof = trace.NewExecProfile(len(out.node.Preorder()), s.s.NumAttrs())
	}
	execOpts := exec.Options{Source: src, Profile: prof}
	if req.Faults != nil {
		execOpts.Faults = &faultCfg
	}
	res, xerr := exec.Execute(r.Context(), exec.Request{
		Schema: s.s, Plan: out.node, Query: canon, Options: execOpts,
	})
	if xerr != nil {
		writeError(w, http.StatusInternalServerError, "%v", xerr)
		return
	}
	var report *faultReport
	if req.Faults != nil {
		fres := res.AsFaultResult()
		res = fres.Result
		report = newFaultReport(req.Faults, faultCfg.Policy, fres)
		count(&s.metrics.faultExecutions, 1)
		count(&s.metrics.faultRetries, int64(fres.Retries))
		count(&s.metrics.faultFailures, int64(fres.Failures))
		count(&s.metrics.faultFallbacks, int64(fres.Abstained+fres.Imputed+fres.Replans))
		count(&s.metrics.degradedAnswers, int64(fres.Abstained+fres.FalsePositives+fres.FalseNegatives))
	}
	count(&s.metrics.executed, 1)
	s.metrics.recordRequest(epExecute, requestOutcome(out.degraded, cached || shared), time.Since(start))
	writeJSON(w, http.StatusOK, executeResponse{
		planResponse: planResponse{
			Plan:         out.rendered,
			PlanB64:      out.encoded,
			ExpectedCost: out.cost,
			NaiveCost:    out.naiveCost,
			Splits:       out.splits,
			SizeBytes:    out.sizeBytes,
			Cached:       cached,
			Shared:       shared,
			Degraded:     out.degraded,
			Epoch:        out.epoch,
			Key:          canon.Key(),
			PlanMS:       out.planMS,
			Model:        s.echoModel(req, p),
			ElapsedMS:    float64(time.Since(start)) / float64(time.Millisecond),
			RequestID:    requestIDFrom(r.Context()),
			Trace:        out.traceSnap,
		},
		Tuples:       res.Tuples,
		Selected:     res.Selected,
		MeanCost:     res.MeanCost(),
		MaxCost:      res.MaxCost,
		Mismatches:   res.Mismatches,
		ExecuteMS:    float64(time.Since(execStart)) / float64(time.Millisecond),
		WindowTuples: windowTuples,
		Faults:       report,
		ExecTrace:    s.execTraceFor(out.node, prof, out.cost),
	})
}

// ingestRequest is the /ingest request body: a batch of tuples for the
// statistics window, one value per schema attribute in schema order.
type ingestRequest struct {
	Rows [][]int `json:"rows"`
}

type ingestResponse struct {
	Accepted     int    `json:"accepted"`
	WindowTuples int    `json:"window_tuples"`
	Epoch        uint64 `json:"epoch"`
}

// handleIngest serves POST /ingest.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ingestRequest
	if err := decodeRequest(w, r, &req); err != nil {
		writeDecodeError(w, err)
		return
	}
	na := s.s.NumAttrs()
	row := make([]schema.Value, na)
	// Validate the whole batch before accepting any of it.
	for i, raw := range req.Rows {
		if len(raw) != na {
			writeError(w, http.StatusBadRequest, "row %d has %d values, schema has %d attributes", i, len(raw), na)
			return
		}
		for a, v := range raw {
			if v < 0 || v >= s.s.K(a) {
				writeError(w, http.StatusBadRequest, "row %d: value %d out of domain [0,%d) for %s", i, v, s.s.K(a), s.s.Name(a))
				return
			}
		}
	}
	s.wmu.Lock()
	for _, raw := range req.Rows {
		for a, v := range raw {
			row[a] = schema.Value(v)
		}
		s.window.Push(row)
	}
	n := s.window.Len()
	s.wmu.Unlock()
	count(&s.metrics.ingested, int64(len(req.Rows)))
	writeJSON(w, http.StatusOK, ingestResponse{Accepted: len(req.Rows), WindowTuples: n, Epoch: s.Epoch()})
}

// refreshRequest is the /refresh request body.
type refreshRequest struct {
	// Force bumps the epoch even when the measured drift is below the
	// threshold.
	Force bool `json:"force,omitempty"`
}

type refreshResponse struct {
	Refreshed bool    `json:"refreshed"`
	Drift     float64 `json:"drift"`
	Epoch     uint64  `json:"epoch"`
	Purged    int     `json:"purged"`
}

// handleRefresh serves POST /refresh: an on-demand drift check.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req refreshRequest
	// An empty body is an unforced refresh.
	if err := decodeRequest(w, r, &req); err != nil && !errors.Is(err, io.EOF) {
		writeDecodeError(w, err)
		return
	}
	refreshed, drift, epoch, purged := s.Refresh(req.Force)
	writeJSON(w, http.StatusOK, refreshResponse{Refreshed: refreshed, Drift: drift, Epoch: epoch, Purged: purged})
}

// statsResponse is the /stats response body.
type statsResponse struct {
	Schema        []attrInfo `json:"schema"`
	Epoch         uint64     `json:"epoch"`
	WindowTuples  int        `json:"window_tuples"`
	HistoryTuples int        `json:"history_tuples"`
	CacheEntries  int        `json:"cache_entries"`
	CacheCapacity int        `json:"cache_capacity"`
	CacheHitRate  float64    `json:"cache_hit_rate"`
	PlannerCalls  int64      `json:"planner_calls"`
	ShedRequests  int64      `json:"shed_requests"`
	UptimeSec     float64    `json:"uptime_sec"`
}

type attrInfo struct {
	Name string  `json:"name"`
	K    int     `json:"k"`
	Cost float64 `json:"cost"`
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	attrs := make([]attrInfo, s.s.NumAttrs())
	for i := range attrs {
		a := s.s.Attr(i)
		attrs[i] = attrInfo{Name: a.Name, K: a.K, Cost: a.Cost}
	}
	s.wmu.Lock()
	win := s.window.Len()
	s.wmu.Unlock()
	n, max := s.cache.lens()
	writeJSON(w, http.StatusOK, statsResponse{
		Schema:        attrs,
		Epoch:         s.Epoch(),
		WindowTuples:  win,
		HistoryTuples: s.cfg.History.NumRows(),
		CacheEntries:  n,
		CacheCapacity: max,
		CacheHitRate:  s.metrics.hitRate(),
		PlannerCalls:  s.metrics.plannerCalls.Load(),
		ShedRequests:  s.metrics.shed.Load(),
		UptimeSec:     time.Since(s.started).Seconds(),
	})
}

// handleMetrics serves GET /metrics in Prometheus text format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	n, max := s.cache.lens()
	if err := s.metrics.write(w, s.Epoch(), n, max); err != nil {
		return // client went away mid-write
	}
	if err := s.writeClusterMetrics(w); err != nil {
		return // client went away mid-write
	}
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "epoch": s.Epoch()})
}

package serve

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"acqp/internal/plan"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// testSchema is a correlated 4-attribute sensor world: hour is cheap and
// drives temp and light, so conditional plans beat naive orderings.
func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 24, Cost: 1},
		schema.Attribute{Name: "temp", K: 16, Cost: 50},
		schema.Attribute{Name: "light", K: 16, Cost: 100},
		schema.Attribute{Name: "humid", K: 16, Cost: 30},
	)
}

// testHistory generates a stationary correlated dataset: temp follows the
// hour, light follows day/night, humid is noise.
func testHistory(s *schema.Schema, rows int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(s, rows)
	for i := 0; i < rows; i++ {
		h := i % 24
		temp := h/2 + rng.Intn(5)
		if temp > 15 {
			temp = 15
		}
		light := rng.Intn(4)
		if h >= 6 && h < 18 {
			light = 12 + rng.Intn(4)
		}
		tbl.MustAppendRow([]schema.Value{
			schema.Value(h), schema.Value(temp), schema.Value(light), schema.Value(rng.Intn(16)),
		})
	}
	return tbl
}

func newTestServer(t *testing.T, mod func(*Config)) *Server {
	t.Helper()
	s := testSchema()
	cfg := Config{Schema: s, History: testHistory(s, 2000, 42)}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func shutdownServer(t *testing.T, srv *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(raw))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func getPath(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func decodeResp[T any](t *testing.T, w *httptest.ResponseRecorder) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(w.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode %q: %v", w.Body.String(), err)
	}
	return v
}

// workload16 is the 16-query test workload: syntactically distinct
// requests covering 9 distinct canonical queries.
var workload16 = []string{
	"SELECT * WHERE temp > 7",
	"SELECT * WHERE 8 <= temp <= 15",
	"SELECT * WHERE temp >= 8",
	"SELECT * WHERE light < 4 AND hour <= 11",
	"SELECT * WHERE hour < 12 AND light <= 3",
	"SELECT * WHERE temp BETWEEN 4 AND 11",
	"SELECT * WHERE 4 <= temp <= 11",
	"SELECT * WHERE temp >= 4 AND temp <= 11",
	"SELECT * WHERE NOT (light BETWEEN 4 AND 11)",
	"SELECT * WHERE NOT (4 <= light <= 11)",
	"SELECT * WHERE humid = 5",
	"SELECT * WHERE hour >= 18 AND temp > 9",
	"SELECT * WHERE light > 11 AND humid < 8",
	"SELECT * WHERE temp <= 3 AND hour BETWEEN 0 AND 5",
	"SELECT * WHERE hour <= 5 AND temp < 4",
	"SELECT temp WHERE temp > 0 AND temp <= 15",
}

const workload16Distinct = 9

// TestConcurrentWorkload is the headline acceptance test: 64 concurrent
// clients each issue the 16-query workload; the cache plus singleflight
// must hold planner invocations to exactly one per distinct canonical
// query, the hit rate must clear 50%, and shutdown must not leak
// goroutines.
func TestConcurrentWorkload(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := newTestServer(t, func(c *Config) {
		// Provision the pool for the workload's 9 simultaneous distinct
		// queries so admission control (tested separately) never triggers.
		c.Workers = 4
		c.QueueDepth = 32
	})

	const clients = 64
	var wg sync.WaitGroup
	var failures atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			order := rng.Perm(len(workload16))
			for _, qi := range order {
				w := postJSON(t, srv, "/plan", planRequest{SQL: workload16[qi]})
				if w.Code != http.StatusOK {
					t.Logf("query %q: status %d: %s", workload16[qi], w.Code, w.Body.String())
					failures.Add(1)
					continue
				}
				var resp planResponse
				if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
					failures.Add(1)
					continue
				}
				if resp.Plan == "" || resp.ExpectedCost <= 0 || resp.Key == "" {
					t.Logf("query %q: malformed response %s", workload16[qi], w.Body.String())
					failures.Add(1)
				}
			}
		}(c)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Errorf("%d requests failed or returned malformed plans", n)
	}
	if calls := srv.metrics.plannerCalls.Load(); calls != workload16Distinct {
		t.Errorf("planner invoked %d times, want exactly %d (one per distinct canonical query)",
			calls, workload16Distinct)
	}
	if hr := srv.metrics.hitRate(); hr <= 0.5 {
		t.Errorf("cache hit rate %.3f, want > 0.5", hr)
	}
	shutdownServer(t, srv)
	checkNoGoroutineLeak(t, before)
}

// checkNoGoroutineLeak polls until the goroutine count returns to the
// baseline (plus scheduler slack) or times out.
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= before+2 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Errorf("goroutine leak after Shutdown: %d before, %d after", before, n)
}

func TestCanonicalQueriesShareCacheEntries(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	first := decodeResp[planResponse](t, postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7"}))
	if first.Cached {
		t.Error("first request reported cached")
	}
	second := decodeResp[planResponse](t, postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE 8 <= temp <= 15"}))
	if !second.Cached {
		t.Error("canonically-equal request missed the cache")
	}
	if first.Key != second.Key || first.Plan != second.Plan {
		t.Errorf("equivalent queries got different keys/plans: %q vs %q", first.Key, second.Key)
	}
	if calls := srv.metrics.plannerCalls.Load(); calls != 1 {
		t.Errorf("planner ran %d times, want 1", calls)
	}
}

func TestTrivialAndErrorResponses(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	// Unsatisfiable: constant-false plan, no planner run.
	w := postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp < 4 AND temp > 11"})
	if w.Code != http.StatusOK {
		t.Fatalf("unsatisfiable: status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResp[planResponse](t, w)
	if resp.ExpectedCost != 0 || resp.Splits != 0 {
		t.Errorf("unsatisfiable plan not trivial: %+v", resp)
	}
	// No WHERE clause: constant-true plan.
	w = postJSON(t, srv, "/plan", planRequest{SQL: "SELECT temp"})
	if w.Code != http.StatusOK {
		t.Fatalf("no-where: status %d: %s", w.Code, w.Body.String())
	}
	// Disjunction: 422.
	w = postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7 OR light < 4"})
	if w.Code != http.StatusUnprocessableEntity {
		t.Errorf("disjunction: status %d, want 422", w.Code)
	}
	// Parse error: 400.
	w = postJSON(t, srv, "/plan", planRequest{SQL: "SELEKT nothing"})
	if w.Code != http.StatusBadRequest {
		t.Errorf("parse error: status %d, want 400", w.Code)
	}
	// Unknown planner: 400.
	w = postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7", Planner: "quantum"})
	if w.Code != http.StatusBadRequest {
		t.Errorf("unknown planner: status %d, want 400", w.Code)
	}
	// Bad JSON body: 400.
	req := httptest.NewRequest(http.MethodPost, "/plan", bytes.NewReader([]byte("{nope")))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad body: status %d, want 400", rec.Code)
	}
	if calls := srv.metrics.plannerCalls.Load(); calls != 0 {
		t.Errorf("planner ran %d times on trivial/error requests, want 0", calls)
	}
}

// TestExhaustiveDeadlineDegrades covers the acceptance criterion: a /plan
// with a 10ms deadline on an exhaustive-sized query must return promptly
// with a valid sequential fallback plan, marked degraded and not cached.
func TestExhaustiveDeadlineDegrades(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.ExhaustiveBudget = 1 << 30 // force the deadline, not the budget, to fire
	})
	defer shutdownServer(t, srv)

	req := planRequest{
		SQL:         "SELECT * WHERE temp BETWEEN 4 AND 11 AND light > 7 AND humid < 9 AND hour >= 6",
		Planner:     "exhaustive",
		SplitPoints: 16,
		TimeoutMS:   10,
	}
	start := time.Now()
	w := postJSON(t, srv, "/plan", req)
	elapsed := time.Since(start)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResp[planResponse](t, w)
	if !resp.Degraded {
		t.Skip("exhaustive search finished within 10ms; nothing to observe")
	}
	// The response must arrive near the deadline, not after a full search:
	// the bound is generous for CI noise but far below an uncancelled run.
	if elapsed > 250*time.Millisecond {
		t.Errorf("degraded response took %v, want near the 10ms deadline", elapsed)
	}
	if resp.Splits != 0 {
		t.Errorf("sequential fallback has %d splits, want 0", resp.Splits)
	}
	// The fallback plan must be a valid, decodable plan.
	raw, err := base64.StdEncoding.DecodeString(resp.PlanB64)
	if err != nil {
		t.Fatal(err)
	}
	node, err := plan.Decode(testSchema(), raw)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Validate(testSchema()); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
	// Degraded outcomes are not cached: a repeat with a long deadline must
	// run the planner afresh and come back undegraded.
	req.TimeoutMS = 0
	resp2 := decodeResp[planResponse](t, postJSON(t, srv, "/plan", req))
	if resp2.Cached {
		t.Error("degraded outcome was served from the cache")
	}
}

func TestEpochInvalidationAfterDrift(t *testing.T) {
	// Window capacity covers the whole history, so the seeded window is the
	// exact training multiset and the initial drift is exactly zero.
	srv := newTestServer(t, func(c *Config) {
		c.WindowSize = 2048
	})
	defer shutdownServer(t, srv)

	first := decodeResp[planResponse](t, postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7"}))
	if first.Epoch != 1 || first.Cached {
		t.Fatalf("first plan: epoch %d cached %v", first.Epoch, first.Cached)
	}
	if again := decodeResp[planResponse](t, postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7"})); !again.Cached {
		t.Fatal("repeat plan missed the cache")
	}

	// An unforced refresh with a stationary window must not bump the epoch.
	noop := decodeResp[refreshResponse](t, postJSON(t, srv, "/refresh", refreshRequest{}))
	if noop.Refreshed || noop.Epoch != 1 {
		t.Fatalf("stationary refresh bumped the epoch: %+v", noop)
	}

	// Ingest a full window of drifted tuples: light inverted, temp high.
	rng := rand.New(rand.NewSource(7))
	rows := make([][]int, 2048)
	for i := range rows {
		rows[i] = []int{rng.Intn(24), 12 + rng.Intn(4), rng.Intn(4), rng.Intn(16)}
	}
	ing := decodeResp[ingestResponse](t, postJSON(t, srv, "/ingest", ingestRequest{Rows: rows}))
	if ing.Accepted != 2048 {
		t.Fatalf("ingest accepted %d rows, want 2048", ing.Accepted)
	}

	ref := decodeResp[refreshResponse](t, postJSON(t, srv, "/refresh", refreshRequest{}))
	if !ref.Refreshed || ref.Epoch != 2 {
		t.Fatalf("drifted refresh did not bump the epoch: %+v", ref)
	}
	if ref.Purged < 1 {
		t.Errorf("refresh purged %d cache entries, want >= 1", ref.Purged)
	}
	if ref.Drift <= srv.cfg.DriftThreshold {
		t.Errorf("reported drift %.3f not above threshold %.3f", ref.Drift, srv.cfg.DriftThreshold)
	}

	// The same query now plans afresh against the new epoch.
	fresh := decodeResp[planResponse](t, postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7"}))
	if fresh.Cached || fresh.Epoch != 2 {
		t.Errorf("post-refresh plan: cached %v epoch %d, want fresh at epoch 2", fresh.Cached, fresh.Epoch)
	}
}

func TestIngestValidation(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	w := postJSON(t, srv, "/ingest", ingestRequest{Rows: [][]int{{1, 2, 3}}})
	if w.Code != http.StatusBadRequest {
		t.Errorf("short row: status %d, want 400", w.Code)
	}
	w = postJSON(t, srv, "/ingest", ingestRequest{Rows: [][]int{{1, 2, 3, 99}}})
	if w.Code != http.StatusBadRequest {
		t.Errorf("out-of-domain value: status %d, want 400", w.Code)
	}
	if got := srv.metrics.ingested.Load(); got != 0 {
		t.Errorf("invalid batches counted as ingested: %d", got)
	}
}

func TestExecuteEndpoint(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	w := postJSON(t, srv, "/execute", planRequest{SQL: "SELECT * WHERE temp > 7 AND light > 11"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	resp := decodeResp[executeResponse](t, w)
	if resp.Tuples != 2000 {
		t.Errorf("executed over %d tuples, want the full 2000-row window", resp.Tuples)
	}
	if resp.Mismatches != 0 {
		t.Errorf("plan mismatched ground truth on %d tuples", resp.Mismatches)
	}
	if resp.MeanCost <= 0 || resp.MeanCost > resp.NaiveCost+1e-9 {
		t.Errorf("mean cost %.3f vs naive %.3f", resp.MeanCost, resp.NaiveCost)
	}
	if resp.Selected == 0 {
		t.Error("query selected nothing; workload should match daytime tuples")
	}
}

func TestShedWhenQueueFull(t *testing.T) {
	srv := newTestServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = -1 // no queue: admit only when the worker is idle
	})
	defer shutdownServer(t, srv)

	// Occupy the only worker with a job we control. submit on an
	// unbuffered queue succeeds only once a worker is receiving, so after
	// this returns the pool is saturated deterministically.
	release := make(chan struct{})
	for !srv.submit(func() { <-release }) {
		time.Sleep(time.Millisecond)
	}
	defer close(release)

	w := postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7"})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated pool: status %d, want 503: %s", w.Code, w.Body.String())
	}
	if shed := srv.metrics.shed.Load(); shed != 1 {
		t.Errorf("shed counter %d, want 1", shed)
	}
	if ra := w.Header().Get("Retry-After"); ra == "" {
		t.Error("503 response missing Retry-After")
	}
}

func TestStatsMetricsHealthz(t *testing.T) {
	srv := newTestServer(t, nil)
	defer shutdownServer(t, srv)

	if w := postJSON(t, srv, "/plan", planRequest{SQL: "SELECT * WHERE temp > 7"}); w.Code != http.StatusOK {
		t.Fatalf("plan failed: %s", w.Body.String())
	}
	st := decodeResp[statsResponse](t, getPath(t, srv, "/stats"))
	if len(st.Schema) != 4 || st.Schema[1].Name != "temp" || st.Epoch != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.CacheEntries != 1 || st.PlannerCalls != 1 {
		t.Errorf("stats cache=%d calls=%d, want 1/1", st.CacheEntries, st.PlannerCalls)
	}
	m := getPath(t, srv, "/metrics")
	if m.Code != http.StatusOK {
		t.Fatalf("metrics: %d", m.Code)
	}
	for _, want := range []string{"acqserved_cache_misses 1", "acqserved_planner_calls 1", "acqserved_stats_epoch 1"} {
		if !bytes.Contains(m.Body.Bytes(), []byte(want)) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	h := getPath(t, srv, "/healthz")
	if h.Code != http.StatusOK {
		t.Errorf("healthz: %d", h.Code)
	}
}

func TestLRUCacheEvictionAndRecency(t *testing.T) {
	c := newLRUCache(2)
	out := planOutcome{rendered: "x"}
	c.add("a", 1, out)
	c.add("b", 1, out)
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing before eviction")
	}
	// a is now most recent; adding c must evict b.
	c.add("c", 1, out)
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	if _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("c missing after insert")
	}
	if n, max := c.lens(); n != 2 || max != 2 {
		t.Errorf("lens = %d/%d, want 2/2", n, max)
	}
	if purged := c.invalidateBefore(2); purged != 2 {
		t.Errorf("invalidateBefore purged %d, want 2", purged)
	}
	if n, _ := c.lens(); n != 0 {
		t.Errorf("cache not empty after invalidation: %d", n)
	}
}

func TestCacheEvictionViaServer(t *testing.T) {
	srv := newTestServer(t, func(c *Config) { c.CacheSize = 2 })
	defer shutdownServer(t, srv)

	queries := []string{
		"SELECT * WHERE temp > 7",
		"SELECT * WHERE light < 4",
		"SELECT * WHERE humid = 5",
	}
	for _, q := range queries {
		if w := postJSON(t, srv, "/plan", planRequest{SQL: q}); w.Code != http.StatusOK {
			t.Fatalf("plan %q: %s", q, w.Body.String())
		}
	}
	// The first query was evicted by the third; replanning it is a miss.
	resp := decodeResp[planResponse](t, postJSON(t, srv, "/plan", planRequest{SQL: queries[0]}))
	if resp.Cached {
		t.Error("evicted entry reported as cache hit")
	}
	if calls := srv.metrics.plannerCalls.Load(); calls != 4 {
		t.Errorf("planner calls %d, want 4 (3 distinct + 1 re-plan after eviction)", calls)
	}
}

func TestFlightGroupCollapsesConcurrentCalls(t *testing.T) {
	g := newFlightGroup()
	var calls atomic.Int64
	release := make(chan struct{})
	const waiters = 16
	var wg sync.WaitGroup
	results := make([]planOutcome, waiters)
	sharedCount := atomic.Int64{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err, shared := g.do(context.Background(), "k", func() (planOutcome, error) {
				calls.Add(1)
				<-release
				return planOutcome{rendered: "r", cost: 7}, nil
			})
			if err != nil {
				t.Errorf("do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			results[i] = out
		}(i)
	}
	// Let every goroutine reach the flight before releasing the leader.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Errorf("fn ran %d times, want 1", n)
	}
	if n := sharedCount.Load(); n != waiters-1 {
		t.Errorf("%d shared results, want %d", n, waiters-1)
	}
	for i, r := range results {
		if r.rendered != "r" || r.cost != 7 {
			t.Errorf("waiter %d got %+v", i, r)
		}
	}
}

func TestShutdownDuringPlanning(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := newTestServer(t, func(c *Config) {
		c.ExhaustiveBudget = 1 << 30
		c.DefaultTimeout = time.Minute
	})
	// Start a slow exhaustive plan, then shut down mid-search.
	done := make(chan int, 1)
	go func() {
		w := postJSON(t, srv, "/plan", planRequest{
			SQL:         "SELECT * WHERE temp BETWEEN 4 AND 11 AND light > 7 AND humid < 9 AND hour >= 6",
			Planner:     "exhaustive",
			SplitPoints: 16,
		})
		done <- w.Code
	}()
	time.Sleep(30 * time.Millisecond)
	shutdownServer(t, srv)
	select {
	case code := <-done:
		// Shutdown surfaces as 503 unless the search won the race.
		if code != http.StatusServiceUnavailable && code != http.StatusOK {
			t.Errorf("in-flight request finished with %d", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed after Shutdown")
	}
	checkNoGoroutineLeak(t, before)
}

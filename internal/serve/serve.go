// Package serve implements a long-running acquisitional query-planning
// service over the repository's planners: an HTTP/JSON API that parses
// TinyDB-style SQL, canonicalizes the WHERE clause, and answers planning
// requests from an LRU plan cache backed by a bounded worker pool.
//
// The design follows the deployment the paper sketches in Section 1 — a
// basestation that compiles each user query into a conditional plan
// before disseminating it to the motes — hardened for multi-client use:
//
//   - Plans are cached per canonical query and statistics epoch, so the
//     exponential-cost planners run at most once per distinct query
//     (singleflight collapses concurrent duplicates onto one run).
//   - Planning runs on a fixed-size worker pool with a bounded queue;
//     when the queue is full, requests are shed with 503 rather than
//     piling up unboundedly.
//   - Each planning run carries a deadline. The greedy planner is an
//     anytime algorithm and degrades to the best plan found so far; the
//     exhaustive planner aborts and falls back to the best sequential
//     plan. Degraded plans are returned but never cached.
//   - A sliding window of ingested tuples (internal/stream.Window) feeds
//     a statistics refresher: when the windowed distribution drifts from
//     the one plans were built on, the epoch advances and stale cache
//     entries are invalidated.
package serve

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"acqp/internal/cluster"
	"acqp/internal/model"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/stream"
	"acqp/internal/table"
)

// Config parameterizes a Server. Zero values select the documented
// defaults.
type Config struct {
	// Schema is the attribute schema all queries are parsed against.
	// Required.
	Schema *schema.Schema
	// History is the initial training data; it seeds both the first
	// statistics epoch and the sliding window. Required, non-empty.
	History *table.Table

	// CacheSize bounds the plan cache entry count. Default 256.
	CacheSize int
	// Workers is the planning worker-pool size. Default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) planning
	// jobs; beyond it requests are shed with 503. Default 4*Workers;
	// negative means no queue (admit only when a worker is idle).
	QueueDepth int
	// DefaultTimeout caps each planning run. A request's timeout_ms may
	// shorten it but never extend it. Default 2s.
	DefaultTimeout time.Duration
	// MaxSplits and SplitPoints are the greedy planner defaults applied
	// when a request does not set them. Defaults 5 and 8.
	MaxSplits   int
	SplitPoints int
	// ExhaustiveBudget caps exhaustive-search subproblem expansions.
	// Default 2,000,000.
	ExhaustiveBudget int
	// PlanParallelism is the default per-request planner worker count
	// applied when a request does not set parallelism. Requests may raise
	// it up to GOMAXPROCS. Default 1.
	PlanParallelism int

	// DefaultModel names the statistics backend planning runs use when a
	// request does not set its "model" field: one of model.Names()
	// ("empirical", "independent", "chowliu", "bn"). Default "empirical",
	// the raw per-epoch counts. Non-empirical defaults are refit eagerly
	// on every epoch bump.
	DefaultModel string

	// WindowSize is the sliding statistics window capacity. Default 4096.
	WindowSize int
	// RefreshInterval is the cadence of the background drift check; zero
	// disables it (refresh then happens only via the /refresh endpoint).
	RefreshInterval time.Duration
	// DriftThreshold is the total-variation distance (max over
	// attributes) between the current epoch's distribution and the
	// window at which a refresh bumps the epoch. Default 0.05.
	DriftThreshold float64

	// AccessLog, when set, receives one structured line per HTTP request
	// (request ID, method, path, status, bytes, duration). Nil disables
	// access logging. The writer must be safe for concurrent use
	// (os.File and bytes-free loggers are).
	AccessLog io.Writer

	// Cluster, when set, joins this server to a sharded planning
	// cluster: /v1/plan requests for keys another node owns are
	// forwarded there, and statistics epochs stay coherent via gossip.
	// Nil keeps the server standalone.
	Cluster *ClusterConfig
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Second
	}
	if c.MaxSplits == 0 {
		c.MaxSplits = 5
	}
	if c.SplitPoints == 0 {
		c.SplitPoints = 8
	}
	if c.ExhaustiveBudget == 0 {
		c.ExhaustiveBudget = 2_000_000
	}
	if c.PlanParallelism <= 0 {
		c.PlanParallelism = 1
	} else if c.PlanParallelism > runtime.GOMAXPROCS(0) {
		c.PlanParallelism = runtime.GOMAXPROCS(0)
	}
	if c.WindowSize == 0 {
		c.WindowSize = 4096
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.05
	}
	if c.DefaultModel == "" {
		c.DefaultModel = model.NameEmpirical
	}
	return c
}

// Server is the planning service. It implements http.Handler; transport
// concerns (listening, TLS, connection shutdown) belong to the caller's
// http.Server.
type Server struct {
	cfg Config
	s   *schema.Schema

	baseCtx context.Context // cancelled by Shutdown; parent of every planning deadline
	cancel  context.CancelFunc

	mu      sync.RWMutex // guards dist, epoch, and histTbl
	dist    stats.Dist
	epoch   uint64
	histTbl *table.Table // the epoch's training table; fitted models build from it

	// Fitted-model cache (model.go): one slot per model name, valid for
	// modelEpoch only.
	modelsMu   sync.Mutex
	modelEpoch uint64
	fitted     map[string]*fittedModel

	wmu    sync.Mutex // guards window (stream.Window is not goroutine-safe)
	window *stream.Window

	cache   *lruCache
	flight  *flightGroup
	fast    *fastCache
	jobs    chan func()
	wg      sync.WaitGroup // workers + refresher
	metrics metrics
	mux     *http.ServeMux

	// Cluster membership, nil when standalone. clusterSelf is the
	// advertised URL and forwardClient carries forwarded /v1/plan hops.
	cluster       *cluster.Node
	clusterSelf   string
	forwardClient *http.Client

	// Forwarding resilience (set by startCluster): resolved retry/
	// failover/breaker parameters, the injected cluster clock, the
	// per-peer breaker table, the shared retry budget, and the transport
	// the forward client runs on (surfaced so /metrics can report chaos
	// injection counters when the smoke harness installs one).
	resil            resilience
	clusterNow       func() time.Time
	breakMu          sync.Mutex
	breakers         map[string]*breaker
	budget           *retryBudget
	forwardTransport http.RoundTripper

	started      time.Time
	reqSeq       atomic.Int64 // generated X-Request-Id sequence
	fastIDPrefix []byte       // the started-stamp half of generated request IDs

	// hookBeforeFallback, when non-nil, runs immediately before the
	// exhaustive planner's sequential degradation fallback. Tests use it
	// to pin that Shutdown interrupts an in-flight fallback run.
	hookBeforeFallback func()
}

// New builds and starts a Server: workers begin immediately, and the
// background refresher starts when Config.RefreshInterval is set. Callers
// own transport shutdown; Shutdown stops the pool and refresher.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Schema == nil || cfg.Schema.NumAttrs() == 0 {
		return nil, fmt.Errorf("serve: config needs a non-empty schema")
	}
	if cfg.History == nil || cfg.History.NumRows() == 0 {
		return nil, fmt.Errorf("serve: config needs non-empty historical data")
	}
	if !model.KnownName(cfg.DefaultModel) {
		return nil, fmt.Errorf("serve: unknown default model %q (want one of %v)", cfg.DefaultModel, model.Names())
	}
	win, err := stream.NewWindow(cfg.Schema, cfg.WindowSize)
	if err != nil {
		return nil, fmt.Errorf("serve: %v", err)
	}
	var row []schema.Value
	start := cfg.History.NumRows() - cfg.WindowSize
	if start < 0 {
		start = 0
	}
	for r := start; r < cfg.History.NumRows(); r++ {
		row = cfg.History.Row(r, row)
		win.Push(row)
	}
	ctx, cancel := context.WithCancel(context.Background()) //acqlint:ignore ctxbg server-lifetime base context owned by the Server, cancelled in Close
	s := &Server{
		cfg:        cfg,
		s:          cfg.Schema,
		baseCtx:    ctx,
		cancel:     cancel,
		dist:       stats.NewEmpirical(cfg.History),
		epoch:      1,
		histTbl:    cfg.History,
		modelEpoch: 1,
		fitted:     make(map[string]*fittedModel),
		window:     win,
		cache:      newLRUCache(cfg.CacheSize),
		flight:     newFlightGroup(),
		fast:       newFastCache(cfg.CacheSize),
		jobs:       make(chan func(), cfg.QueueDepth),
		started:    time.Now(),
	}
	s.fastIDPrefix = idPrefix(s.started)
	s.mux = http.NewServeMux()
	// The API is versioned under /v1/. The original unversioned paths
	// remain as aliases so existing clients keep working, but every alias
	// response carries a Deprecation header (draft-ietf-httpapi-deprecation
	// style) pointing at the successor route.
	for _, rt := range []struct {
		path string
		h    http.HandlerFunc
	}{
		{"/plan", s.handlePlan},
		{"/execute", s.handleExecute},
		{"/ingest", s.handleIngest},
		{"/refresh", s.handleRefresh},
		{"/stats", s.handleStats},
	} {
		s.mux.HandleFunc("/v1"+rt.path, rt.h)
		s.mux.HandleFunc(rt.path, deprecatedAlias("/v1"+rt.path, rt.h))
	}
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	if cfg.Cluster != nil {
		if err := s.startCluster(cfg.Cluster); err != nil {
			cancel()
			return nil, fmt.Errorf("serve: %v", err)
		}
	}

	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1) //acqlint:ignore errdrop sync.WaitGroup.Add returns nothing; name-collision with error-returning Add methods
		go s.worker()
	}
	if cfg.RefreshInterval > 0 {
		s.wg.Add(1) //acqlint:ignore errdrop sync.WaitGroup.Add returns nothing; name-collision with error-returning Add methods
		go s.refresher()
	}
	return s, nil
}

// idPrefix renders the instance half of generated request IDs: the full
// 64-bit start timestamp plus a random per-process salt. The previous
// scheme truncated the timestamp to its low 32 bits (~4.3 s of nanosecond
// range), so two nodes — or one node restarted — starting within the same
// truncated window minted colliding ID streams; the salt breaks ties even
// for nodes whose clocks return the identical nanosecond.
func idPrefix(started time.Time) []byte {
	var salt [4]byte
	if _, err := rand.Read(salt[:]); err != nil {
		// crypto/rand failing is effectively unheard of; degrade to a
		// PID-derived salt rather than refusing to start.
		binary.BigEndian.PutUint32(salt[:], uint32(os.Getpid()))
	}
	return []byte(fmt.Sprintf("%016x-%x-", uint64(started.UnixNano()), salt))
}

// requestIDKey carries the per-request trace ID through the request
// context so handlers can echo it in response bodies.
type requestIDKey struct{}

// requestIDFrom returns the request's trace ID, or "" outside ServeHTTP.
func requestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// statusRecorder captures the response status and body size for the
// access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += n
	return n, err
}

// ServeHTTP implements http.Handler. Every request carries a trace ID:
// the caller's X-Request-Id when present, otherwise a generated one. The
// ID is echoed in the X-Request-Id response header, surfaced in JSON
// response bodies, and stamps the structured access-log line when
// Config.AccessLog is set.
//
// Standalone /plan requests first consult the fast-path response cache
// (fast.go): a body that byte-matches a previously served deterministic
// answer is replayed from its pre-serialized blob without touching the
// mux, the JSON decoder, or the SQL parser.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if s.cluster == nil && r.Method == http.MethodPost &&
		(r.URL.Path == "/v1/plan" || r.URL.Path == "/plan") {
		if s.serveFast(w, r, time.Now()) {
			return
		}
	}
	id := r.Header.Get("X-Request-Id")
	if id == "" {
		id = fmt.Sprintf("%s%06x", s.fastIDPrefix, count(&s.reqSeq, 1))
	}
	w.Header().Set("X-Request-Id", id)
	req := r.WithContext(context.WithValue(r.Context(), requestIDKey{}, id))
	if s.cfg.AccessLog == nil {
		s.mux.ServeHTTP(w, req)
		return
	}
	rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	start := time.Now()
	s.mux.ServeHTTP(rec, req)
	fmt.Fprintf(s.cfg.AccessLog, "time=%s request_id=%s method=%s path=%s status=%d bytes=%d dur_ms=%.3f\n",
		start.UTC().Format(time.RFC3339Nano), id, r.Method, r.URL.Path, rec.status, rec.bytes,
		float64(time.Since(start))/float64(time.Millisecond))
}

// deprecatedAlias wraps a handler registered under a legacy unversioned
// path: the behavior is unchanged, but responses advertise the versioned
// successor so clients can migrate.
func deprecatedAlias(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=%q", successor, "successor-version"))
		h(w, r)
	}
}

// Epoch returns the current statistics epoch.
func (s *Server) Epoch() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epoch
}

// Shutdown cancels all in-flight planning (greedy runs degrade, the
// exhaustive search aborts), stops the workers and the refresher, and
// waits for them up to ctx's deadline. HTTP transport shutdown is the
// caller's responsibility and should happen first, so no new requests
// race the pool teardown.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.cluster != nil {
		// Announce the leave while peers can still reach us; the gossip
		// loop runs under baseCtx and stops with everything else.
		s.cluster.Stop(ctx)
	}
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown wait: %w", ctx.Err())
	}
}

// worker executes queued planning jobs until Shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case job := <-s.jobs:
			job()
		case <-s.baseCtx.Done():
			return
		}
	}
}

// submit offers a job to the pool without blocking; false means the queue
// is full and the request must be shed.
func (s *Server) submit(job func()) bool {
	select {
	case s.jobs <- job:
		return true
	default:
		return false
	}
}

// snapshot returns the distribution and epoch a planning run should use.
// The pair is read atomically so a concurrent refresh cannot mix an old
// distribution with a new epoch.
func (s *Server) snapshot() (stats.Dist, uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dist, s.epoch
}

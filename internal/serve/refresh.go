package serve

import (
	"time"

	"acqp/internal/stats"
	"acqp/internal/table"
)

// Refresh compares the sliding window's distribution with the one the
// current epoch's plans were built on and, when the drift exceeds the
// configured threshold (or force is set), installs the window as the new
// epoch and purges cache entries planned under older epochs.
//
// Drift is the maximum over attributes of the total-variation distance
// between the two marginal histograms — the same "statistics the plan
// was built with no longer match the stream" trigger as Section 7's
// stream extension, applied service-wide instead of per continuous
// query.
func (s *Server) Refresh(force bool) (refreshed bool, drift float64, epoch uint64, purged int) {
	s.wmu.Lock()
	n := s.window.Len()
	var fresh *stats.Empirical
	var freshTbl *table.Table
	if n > 0 {
		freshTbl = s.window.Materialize()
		fresh = stats.NewEmpirical(freshTbl)
	}
	s.wmu.Unlock()
	if fresh == nil {
		return false, 0, s.Epoch(), 0
	}

	cur, curEpoch := s.snapshot()
	drift = maxTotalVariation(cur, fresh)
	if !force && drift <= s.cfg.DriftThreshold {
		return false, drift, curEpoch, 0
	}

	s.mu.Lock()
	if s.epoch != curEpoch {
		// A concurrent refresh already advanced the epoch; measuring
		// drift against a superseded distribution proves nothing, so
		// leave the newer epoch in place.
		epoch = s.epoch
		s.mu.Unlock()
		return false, drift, epoch, 0
	}
	s.dist = fresh
	s.histTbl = freshTbl
	s.epoch++
	epoch = s.epoch
	s.mu.Unlock()

	purged = s.cache.invalidateBefore(epoch)
	s.fast.purge() // fast-path blobs embed the epoch; all are stale now
	count(&s.metrics.invalidated, int64(purged))
	count(&s.metrics.refreshes, 1)
	// Fitted models were trained on the superseded table; refit the
	// configured default eagerly so post-refresh requests find it warm
	// (other backends lazily refit on first request — modelSnapshot drops
	// the stale map when it sees the new epoch).
	s.refitDefault()
	if s.cluster != nil {
		// Push the new epoch to peers immediately instead of waiting out
		// the gossip interval, so their stale cache entries purge now.
		s.cluster.Poke()
	}
	return true, drift, epoch, purged
}

// maxTotalVariation returns max_i TV(P_i, Q_i) over the attributes'
// marginal histograms: 0 for identical distributions, 1 for disjoint
// support. Each call derives fresh root contexts, which are private to
// this goroutine (stats.Cond is not goroutine-safe, Dist.Root is).
func maxTotalVariation(a, b stats.Dist) float64 {
	s := a.Schema()
	ra, rb := a.Root(), b.Root()
	maxTV := 0.0
	for i := 0; i < s.NumAttrs(); i++ {
		ha, hb := ra.Hist(i), rb.Hist(i)
		tv := 0.0
		for v := range ha {
			d := ha[v] - hb[v]
			if d < 0 {
				d = -d
			}
			tv += d
		}
		tv /= 2
		if tv > maxTV {
			maxTV = tv
		}
	}
	return maxTV
}

// refresher periodically runs Refresh until Shutdown.
func (s *Server) refresher() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.RefreshInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.Refresh(false)
		case <-s.baseCtx.Done():
			return
		}
	}
}

package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// fuzzServer is shared across fuzz iterations: building a server per input
// would drown the fuzzer in setup cost.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
)

func fuzzServer(f *testing.F) *Server {
	fuzzOnce.Do(func() {
		s := testSchema()
		cfg := Config{
			Schema:  s,
			History: testHistory(s, 256, 1),
			// Keep worst-case planning cheap: tiny deadline, small budget.
			DefaultTimeout:   100 * time.Millisecond,
			ExhaustiveBudget: 10_000,
		}
		srv, err := New(cfg)
		if err != nil {
			f.Fatal(err)
		}
		fuzzSrv = srv
	})
	return fuzzSrv
}

// FuzzServeRequest drives arbitrary bytes through the /plan request path:
// JSON decoding, SQL parsing, canonicalization, parameter clamping, and
// planning. The service must never panic and must answer every input with
// one of its documented statuses.
func FuzzServeRequest(f *testing.F) {
	seeds := [][]byte{
		[]byte(`{"sql":"SELECT * WHERE temp > 7"}`),
		[]byte(`{"sql":"SELECT * WHERE 8 <= temp <= 15","planner":"exhaustive","timeout_ms":5}`),
		[]byte(`{"sql":"SELECT * WHERE NOT (light BETWEEN 4 AND 11)","max_splits":3,"split_points":4}`),
		[]byte(`{"sql":"SELECT * WHERE temp > 7 OR light < 4"}`),
		[]byte(`{"sql":"SELECT * WHERE temp < 4 AND temp > 11","no_cache":true}`),
		[]byte(`{"sql":"SELECT hour"}`),
		[]byte(`{"sql":""}`),
		[]byte(`{"sql":"SELEKT"}`),
		[]byte(`{"planner":"quantum","sql":"SELECT * WHERE humid = 5"}`),
		[]byte(`{"sql":"SELECT * WHERE temp > 7","max_splits":-3,"split_points":99999,"timeout_ms":-1}`),
		[]byte(`{nope`),
		[]byte(``),
		[]byte(`[1,2,3]`),
		[]byte(`{"sql":"SELECT * WHERE bogus = 1"}`),
		[]byte(`{"sql":"SELECT * WHERE temp > 7","parallelism":4,"strict":true}`),
		[]byte(`{"sql":"SELECT * WHERE 8 <= temp <= 15","planner":"exhaustive","strict":true,"timeout_ms":1}`),
		[]byte(`{"sql":"SELECT * WHERE temp < 4 AND temp > 11","strict":true}`),
		[]byte(`{"sql":"SELECT * WHERE temp > 7","parallelism":-2}`),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	srv := fuzzServer(f)
	f.Fuzz(func(t *testing.T, body []byte) {
		req := httptest.NewRequest(http.MethodPost, "/plan", bytes.NewReader(body))
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, req)
		switch w.Code {
		case http.StatusOK, http.StatusBadRequest, http.StatusUnprocessableEntity,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		default:
			t.Fatalf("unexpected status %d for body %q: %s", w.Code, body, w.Body.String())
		}
	})
}

package serve

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"acqp/internal/floats"
	"acqp/internal/trace"
)

// metrics holds the service counters exposed on /metrics. Counters are
// atomics; the latency sample buffer has its own lock.
type metrics struct {
	cacheHits    atomic.Int64 // /plan answered from the LRU cache
	flightShared atomic.Int64 // /plan answered by another caller's in-flight planning
	cacheMisses  atomic.Int64 // /plan that required planning
	plannerCalls atomic.Int64 // primary planner invocations (excludes sequential fallbacks)
	degraded     atomic.Int64 // planning outcomes degraded by a deadline
	shed         atomic.Int64 // requests rejected because the queue was full
	executed     atomic.Int64 // /execute runs
	ingested     atomic.Int64 // tuples accepted by /ingest
	refreshes    atomic.Int64 // statistics refreshes that bumped the epoch
	invalidated  atomic.Int64 // cache entries purged by epoch bumps
	inFlight     atomic.Int64 // /plan and /execute requests currently being served

	modelFits atomic.Int64 // fitted-model builds (one per model name per epoch)

	faultExecutions atomic.Int64 // /execute runs under a faults section
	faultRetries    atomic.Int64 // acquisition retries across fault-injected runs
	faultFailures   atomic.Int64 // ultimate acquisition failures across fault-injected runs
	faultFallbacks  atomic.Int64 // fallback resolutions (abstentions + imputations + replans)
	degradedAnswers atomic.Int64 // abstained or fault-corrupted answers returned

	epochBumps        atomic.Int64 // epoch advances learned from peers via gossip
	degradedPartition atomic.Int64 // /plan answered locally because no shard candidate was reachable
	clusterMetrics                 // per-peer forward/gossip counter table

	forwardRetries       atomic.Int64 // forward attempts retried after a failure or shed
	forwardFailovers     atomic.Int64 // forwards redirected to a lower-ranked rendezvous candidate
	retryBudgetExhausted atomic.Int64 // retries skipped because the budget ran dry
	breakerOpens         atomic.Int64 // circuit-breaker open transitions across all peers
	breakerSkips         atomic.Int64 // forward candidates skipped because their breaker was open

	// Planner search counters, aggregated from the per-run trace spans
	// (trace.Counter order).
	search [8]atomic.Int64

	// lat keeps the planner-run latencies (one sample per planner
	// invocation, the historical acqserved_plan_latency_ms_* gauges);
	// requests splits end-to-end request latency by endpoint and outcome.
	lat      latencyRing
	requests [numEndpoints][numOutcomes]latencyRing
}

// Endpoint and outcome axes of the per-request latency rings.
const (
	epPlan = iota
	epExecute
	numEndpoints
)

const (
	outcomeHit = iota // answered from the cache or a shared in-flight run
	outcomeMiss
	outcomeDegraded
	numOutcomes
)

var endpointNames = [numEndpoints]string{"plan", "execute"}
var outcomeNames = [numOutcomes]string{"hit", "miss", "degraded"}

// recordRequest files one completed request's latency under its
// endpoint and outcome.
func (m *metrics) recordRequest(endpoint, outcome int, d time.Duration) {
	if endpoint < 0 || endpoint >= numEndpoints || outcome < 0 || outcome >= numOutcomes {
		return
	}
	m.requests[endpoint][outcome].record(d)
}

// mergeSpan folds one planner run's search counters into the service
// aggregates surfaced on /metrics.
func (m *metrics) mergeSpan(sp *trace.Span) {
	for c := trace.Counter(0); int(c) < len(m.search); c++ {
		if v := sp.Counter(c); v != 0 {
			count(&m.search[c], v)
		}
	}
}

// count adds delta to an atomic counter and returns the new value. The
// indirection keeps call sites as expression-statements of a non-error
// function: the errdrop analyzer resolves bare .Add(...) calls by method
// name alone and would mistake atomic.Int64.Add for the error-returning
// Add methods elsewhere in the repository.
func count(c *atomic.Int64, delta int64) int64 { return c.Add(delta) }

// latencyRing keeps the most recent planning latencies for percentile
// estimation: a fixed ring so memory stays bounded under any load.
type latencyRing struct {
	mu      sync.Mutex
	samples [1024]float64 // milliseconds
	n       int           // total recorded (ring holds min(n, len))
}

func (r *latencyRing) record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	r.mu.Lock()
	r.samples[r.n%len(r.samples)] = ms
	r.n++
	r.mu.Unlock()
}

// percentiles returns the p50/p95/p99 of the retained samples, in
// milliseconds; zeros when nothing has been recorded.
func (r *latencyRing) percentiles() (p50, p95, p99 float64) {
	r.mu.Lock()
	n := r.n
	if n > len(r.samples) {
		n = len(r.samples)
	}
	buf := make([]float64, n)
	copy(buf, r.samples[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0, 0, 0
	}
	sort.Float64s(buf)
	return floats.Percentile(buf, 50), floats.Percentile(buf, 95), floats.Percentile(buf, 99)
}

// hitRate returns the fraction of /plan requests served without a planner
// run (cache hits plus singleflight-shared results).
func (m *metrics) hitRate() float64 {
	h := m.cacheHits.Load() + m.flightShared.Load()
	total := h + m.cacheMisses.Load()
	if total == 0 {
		return 0
	}
	return float64(h) / float64(total)
}

// write renders the counters in Prometheus text exposition format.
func (m *metrics) write(w io.Writer, epoch uint64, cacheLen, cacheCap int) error {
	p50, p95, p99 := m.lat.percentiles()
	lines := []struct {
		name string
		val  float64
	}{
		{"acqserved_cache_hits", float64(m.cacheHits.Load())},
		{"acqserved_flight_shared", float64(m.flightShared.Load())},
		{"acqserved_cache_misses", float64(m.cacheMisses.Load())},
		{"acqserved_planner_calls", float64(m.plannerCalls.Load())},
		{"acqserved_degraded_plans", float64(m.degraded.Load())},
		{"acqserved_shed_requests", float64(m.shed.Load())},
		{"acqserved_executions", float64(m.executed.Load())},
		{"acqserved_ingested_tuples", float64(m.ingested.Load())},
		{"acqserved_stats_refreshes", float64(m.refreshes.Load())},
		{"acqserved_cache_invalidated", float64(m.invalidated.Load())},
		{"acqserved_in_flight", float64(m.inFlight.Load())},
		{"acqserved_model_fits", float64(m.modelFits.Load())},
		{"acqserved_fault_executions", float64(m.faultExecutions.Load())},
		{"acqserved_fault_retries", float64(m.faultRetries.Load())},
		{"acqserved_fault_failures", float64(m.faultFailures.Load())},
		{"acqserved_fault_fallbacks", float64(m.faultFallbacks.Load())},
		{"acqserved_degraded_answers", float64(m.degradedAnswers.Load())},
		{"acqserved_cache_entries", float64(cacheLen)},
		{"acqserved_cache_capacity", float64(cacheCap)},
		{"acqserved_stats_epoch", float64(epoch)},
		{"acqserved_plan_latency_ms_p50", p50},
		{"acqserved_plan_latency_ms_p95", p95},
		{"acqserved_plan_latency_ms_p99", p99},
	}
	for c := trace.Counter(0); int(c) < len(m.search); c++ {
		lines = append(lines, struct {
			name string
			val  float64
		}{"acqserved_search_" + c.String(), float64(m.search[c].Load())})
	}
	for _, l := range lines {
		if _, err := fmt.Fprintf(w, "%s %g\n", l.name, l.val); err != nil {
			return err
		}
	}
	// Per-request latency percentiles, labelled by endpoint and outcome.
	for e := 0; e < numEndpoints; e++ {
		for o := 0; o < numOutcomes; o++ {
			q50, q95, q99 := m.requests[e][o].percentiles()
			for _, q := range []struct {
				name string
				val  float64
			}{{"p50", q50}, {"p95", q95}, {"p99", q99}} {
				if _, err := fmt.Fprintf(w, "acqserved_request_latency_ms{endpoint=%q,outcome=%q,quantile=%q} %g\n",
					endpointNames[e], outcomeNames[o], q.name, q.val); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

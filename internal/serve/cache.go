package serve

import (
	"container/list"
	"sync"
)

// cacheEntry is one cached planning outcome. Entries are immutable after
// insertion: the stored plan node is shared by reference across requests,
// which is safe because plan.Node trees are read-only once built.
type cacheEntry struct {
	key     string
	epoch   uint64
	outcome planOutcome
}

// lruCache is a fixed-capacity LRU map from cache key to planning
// outcome. Keys embed the statistics epoch (see Server.cacheKey), so a
// stale entry can never be returned for a fresh query; InvalidateBefore
// additionally purges superseded epochs eagerly so their memory is
// reclaimed ahead of LRU pressure.
type lruCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used; values are *cacheEntry
	m   map[string]*list.Element
}

func newLRUCache(max int) *lruCache {
	if max < 1 {
		max = 1
	}
	return &lruCache{max: max, ll: list.New(), m: make(map[string]*list.Element, max)}
}

// get returns the cached outcome for key, marking it most recently used.
func (c *lruCache) get(key string) (planOutcome, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return planOutcome{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).outcome, true
}

// add inserts an outcome, evicting the least recently used entry when the
// cache is full. Re-adding an existing key refreshes its value and
// recency.
func (c *lruCache) add(key string, epoch uint64, out planOutcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).outcome = out
		return
	}
	c.m[key] = c.ll.PushFront(&cacheEntry{key: key, epoch: epoch, outcome: out})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// invalidateBefore removes every entry planned under an epoch older than
// the given one, returning how many were purged.
func (c *lruCache) invalidateBefore(epoch uint64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	purged := 0
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*cacheEntry); e.epoch < epoch {
			c.ll.Remove(el)
			delete(c.m, e.key)
			purged++
		}
		el = next
	}
	return purged
}

// lens returns the current entry count and capacity.
func (c *lruCache) lens() (n, max int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len(), c.max
}

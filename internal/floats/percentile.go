package floats

import "math"

// Percentile returns the p-th percentile (0 < p <= 100) of sorted using
// the nearest-rank rule: the value at rank ceil(p/100 * n), 1-indexed.
// This is the single percentile definition shared by the server metrics
// ring and the load driver, so their reported quantiles agree. The
// input must be sorted ascending; an empty slice yields 0.
func Percentile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	rank := int(math.Ceil(p / 100 * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return sorted[rank-1]
}

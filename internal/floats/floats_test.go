package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	cases := []struct {
		a, b float64
		want bool
	}{
		{0, 0, true},
		{1, 1, true},
		{0, 1e-12, true},               // below absolute tolerance
		{0, 1e-6, false},               // above absolute tolerance
		{1, 1 + 1e-12, true},           // rounding-level difference
		{1, 1 + 1e-6, false},           // real difference
		{1e9, 1e9 + 10, false},         // 10 units at 1e9 exceeds relative tol
		{1e9, 1e9 * (1 + 1e-12), true}, // relative rounding at scale
		{0.1 + 0.2, 0.3, true},         // the classic
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 0, false},
		{math.Inf(1), math.Inf(1), false}, // Inf-Inf is NaN: not equal
		{-1, 1, false},
	}
	for _, c := range cases {
		if got := Eq(c.a, c.b); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := Eq(c.b, c.a); got != c.want {
			t.Errorf("Eq(%v, %v) = %v, want %v (asymmetric)", c.b, c.a, got, c.want)
		}
	}
}

func TestZeroOne(t *testing.T) {
	if !Zero(0) || !Zero(1e-12) || !Zero(-1e-12) {
		t.Error("Zero rejects rounding-level values")
	}
	if Zero(1e-6) || Zero(math.NaN()) {
		t.Error("Zero accepts non-zero values")
	}
	// A probability accumulated as a product of many factors.
	p := 1.0
	for i := 0; i < 50; i++ {
		p *= 0.98
	}
	for i := 0; i < 50; i++ {
		p /= 0.98
	}
	if p == 1.0 {
		t.Skip("platform computed the round trip exactly")
	}
	if !One(p) {
		t.Errorf("One(%v) = false for round-tripped probability", p)
	}
}

func TestOrderings(t *testing.T) {
	if !Less(1, 2) || Less(2, 1) {
		t.Error("Less violates ordering")
	}
	if Less(1, 1+1e-13) {
		t.Error("Less treats rounding noise as strict inequality")
	}
	if !Leq(1, 1+1e-13) || !Leq(1+1e-13, 1) {
		t.Error("Leq rejects values equal within tolerance")
	}
	if !Geq(2, 1) || Geq(1, 2) {
		t.Error("Geq violates ordering")
	}
	if !Leq(1, 2) || Leq(2, 1) {
		t.Error("Leq violates ordering")
	}
}

// Package floats provides epsilon-safe float64 comparisons for the
// planner's probability and cost arithmetic. Probabilities accumulate
// through products and prefix-sum differences (Eq. (7)) and costs through
// branch-weighted sums (Eq. (3)), so exact `==`/`!=` on them is almost
// always a latent bug: two mathematically equal quantities computed along
// different paths differ in their last ulps. The acqlint `floatcmp`
// analyzer forbids exact equality in the numeric packages and points
// here.
//
// All helpers use a mixed absolute/relative tolerance: |a-b| is compared
// against Eps scaled by max(1, |a|, |b|), so the tolerance is absolute
// for the [0,1] probability regime and relative for large accumulated
// costs. NaN compares unequal to everything, as with `==`.
package floats

import "math"

// Eps is the default comparison tolerance. Probabilities live in [0,1]
// and costs rarely exceed ~1e6 acquisition units, so 1e-9 sits several
// orders of magnitude above float64 rounding error at that scale while
// staying far below any physically meaningful cost or probability
// difference.
const Eps = 1e-9

// tol returns the comparison tolerance for the pair (a, b).
func tol(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m < 1 {
		m = 1
	}
	return Eps * m
}

// Eq reports whether a and b are equal within tolerance.
func Eq(a, b float64) bool { return math.Abs(a-b) <= tol(a, b) }

// Zero reports whether x is zero within absolute tolerance Eps.
func Zero(x float64) bool { return math.Abs(x) <= Eps }

// One reports whether x is one within tolerance; probabilities that have
// been clamped or accumulated multiplicatively should be tested with One
// rather than `== 1`.
func One(x float64) bool { return Eq(x, 1) }

// Less reports a < b by more than tolerance (strictly less, not merely
// rounded below).
func Less(a, b float64) bool { return a < b && !Eq(a, b) }

// Leq reports a <= b within tolerance: a is smaller, or equal up to
// rounding.
func Leq(a, b float64) bool { return a <= b || Eq(a, b) }

// Geq reports a >= b within tolerance.
func Geq(a, b float64) bool { return a >= b || Eq(a, b) }

package floats

import "testing"

func TestPercentileSmallN(t *testing.T) {
	cases := []struct {
		name   string
		sorted []float64
		p      float64
		want   float64
	}{
		{"empty", nil, 50, 0},
		{"n1-p50", []float64{7}, 50, 7},
		{"n1-p99", []float64{7}, 99, 7},
		{"n2-p50", []float64{1, 2}, 50, 1},
		{"n2-p51", []float64{1, 2}, 51, 2},
		{"n2-p99", []float64{1, 2}, 99, 2},
		{"n2-p100", []float64{1, 2}, 100, 2},
		{"p0-clamps-to-min", []float64{1, 2}, 0, 1},
	}
	for _, c := range cases {
		if got := Percentile(c.sorted, c.p); got != c.want {
			t.Errorf("%s: Percentile(%v, %v) = %v, want %v", c.name, c.sorted, c.p, got, c.want)
		}
	}
}

func TestPercentileN100(t *testing.T) {
	// sorted[i] = i+1, so the nearest-rank p-th percentile is exactly p
	// for integer p: rank = ceil(p/100*100) = p, value = sorted[p-1] = p.
	sorted := make([]float64, 100)
	for i := range sorted {
		sorted[i] = float64(i + 1)
	}
	for _, p := range []float64{1, 25, 50, 90, 95, 99, 100} {
		if got := Percentile(sorted, p); got != p {
			t.Errorf("n=100: Percentile(p=%v) = %v, want %v", p, got, p)
		}
	}
}

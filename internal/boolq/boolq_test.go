package boolq

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

func bqSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "h", K: 4, Cost: 1},
		schema.Attribute{Name: "a", K: 4, Cost: 50},
		schema.Attribute{Name: "b", K: 4, Cost: 100},
	)
}

func pred(attr int, lo, hi schema.Value, neg bool) *Expr {
	return Leaf(query.Pred{Attr: attr, R: query.Range{Lo: lo, Hi: hi}, Negated: neg})
}

// allTuples enumerates the full domain.
func allTuples(s *schema.Schema) *table.Table {
	tbl := table.New(s, 64)
	row := make([]schema.Value, s.NumAttrs())
	var rec func(i int)
	rec = func(i int) {
		if i == s.NumAttrs() {
			tbl.MustAppendRow(row)
			return
		}
		for v := 0; v < s.K(i); v++ {
			row[i] = schema.Value(v)
			rec(i + 1)
		}
	}
	rec(0)
	return tbl
}

func corrData(rng *rand.Rand, s *schema.Schema, rows int) *table.Table {
	tbl := table.New(s, rows)
	for i := 0; i < rows; i++ {
		h := rng.Intn(4)
		a := (h + rng.Intn(2)) % 4
		b := (3 - h + rng.Intn(2)) % 4
		tbl.MustAppendRow([]schema.Value{schema.Value(h), schema.Value(a), schema.Value(b)})
	}
	return tbl
}

func TestExprValidate(t *testing.T) {
	s := bqSchema()
	good := Or(And(pred(1, 0, 1, false), pred(2, 2, 3, false)), Not(pred(0, 0, 0, false)))
	if err := good.Validate(s); err != nil {
		t.Fatalf("valid expr rejected: %v", err)
	}
	cases := []*Expr{
		pred(9, 0, 1, false),                 // bad attr
		pred(1, 3, 9, false),                 // range beyond domain
		{Op: OpAnd},                          // empty AND
		{Op: OpNot, Kids: []*Expr{}},         // NOT arity
		{Op: OpNot, Kids: []*Expr{nil, nil}}, // NOT arity
		{Op: Op(42)},                         // unknown op
	}
	for i, e := range cases {
		if err := e.Validate(s); err == nil {
			t.Errorf("case %d: invalid expr accepted", i)
		}
	}
}

func TestExprEvalAndFormat(t *testing.T) {
	s := bqSchema()
	e := Or(
		And(pred(1, 0, 1, false), pred(2, 2, 3, false)),
		Not(pred(0, 2, 3, false)),
	)
	cases := []struct {
		row  []schema.Value
		want bool
	}{
		{[]schema.Value{2, 0, 3}, true},  // first disjunct true
		{[]schema.Value{0, 3, 0}, true},  // NOT(h in [2,3]) true
		{[]schema.Value{3, 3, 0}, false}, // both false
	}
	for _, tc := range cases {
		if got := e.Eval(tc.row); got != tc.want {
			t.Errorf("Eval(%v) = %v, want %v", tc.row, got, tc.want)
		}
	}
	f := e.Format(s)
	if !strings.Contains(f, "OR") || !strings.Contains(f, "AND") || !strings.Contains(f, "NOT") {
		t.Errorf("Format = %q", f)
	}
}

// Property: EvalBox agrees with Eval — when it reports True or False,
// every tuple in the box must agree (Kleene soundness).
func TestEvalBoxSoundnessProperty(t *testing.T) {
	s := bqSchema()
	rng := rand.New(rand.NewSource(3))
	randExpr := func() *Expr {
		var rec func(depth int) *Expr
		rec = func(depth int) *Expr {
			if depth <= 0 || rng.Float64() < 0.4 {
				attr := rng.Intn(3)
				lo := schema.Value(rng.Intn(4))
				hi := lo + schema.Value(rng.Intn(4-int(lo)))
				return pred(attr, lo, hi, rng.Intn(2) == 0)
			}
			switch rng.Intn(3) {
			case 0:
				return And(rec(depth-1), rec(depth-1))
			case 1:
				return Or(rec(depth-1), rec(depth-1))
			default:
				return Not(rec(depth - 1))
			}
		}
		return rec(3)
	}
	randBox := func() query.Box {
		box := query.FullBox(s)
		for i := range box {
			if rng.Intn(2) == 0 {
				lo := schema.Value(rng.Intn(4))
				hi := lo + schema.Value(rng.Intn(4-int(lo)))
				box[i] = query.Range{Lo: lo, Hi: hi}
			}
		}
		return box
	}
	for trial := 0; trial < 300; trial++ {
		e := randExpr()
		box := randBox()
		verdict := e.EvalBox(box)
		if verdict == query.Unknown {
			continue
		}
		row := make([]schema.Value, 3)
		for x := box[0].Lo; x <= box[0].Hi; x++ {
			for y := box[1].Lo; y <= box[1].Hi; y++ {
				for z := box[2].Lo; z <= box[2].Hi; z++ {
					row[0], row[1], row[2] = x, y, z
					truth := e.Eval(row)
					if (verdict == query.True) != truth {
						t.Fatalf("trial %d: EvalBox=%v but Eval(%v)=%v for %s",
							trial, verdict, row, truth, e.Format(s))
					}
				}
			}
		}
	}
}

func TestResolveTreeAlwaysCorrect(t *testing.T) {
	s := bqSchema()
	e := Or(
		And(pred(1, 0, 1, false), pred(2, 2, 3, false)),
		And(pred(1, 2, 3, false), pred(0, 0, 1, false)),
	)
	tree := resolveTree(s, e, query.FullBox(s))
	if err := tree.Validate(s); err != nil {
		t.Fatalf("resolve tree invalid: %v", err)
	}
	if r := Equivalent(s, e, tree, allTuples(s)); r != -1 {
		t.Fatalf("resolve tree wrong on tuple %d", r)
	}
}

func TestExhaustiveDisjunction(t *testing.T) {
	s := bqSchema()
	rng := rand.New(rand.NewSource(5))
	tbl := corrData(rng, s, 800)
	d := stats.NewEmpirical(tbl)
	// (a small) OR (b large): a disjunction a conjunctive planner cannot
	// express.
	e := Or(pred(1, 0, 0, false), pred(2, 3, 3, false))
	ex := Exhaustive{SPSF: opt.FullSPSF(s), Budget: 500_000}
	node, cost, err := ex.Plan(d, e)
	if err != nil {
		t.Fatal(err)
	}
	if r := Equivalent(s, e, node, allTuples(s)); r != -1 {
		t.Fatalf("plan wrong on tuple %d", r)
	}
	if got := plan.ExpectedCostRoot(node, d); math.Abs(got-cost) > 1e-9 {
		t.Errorf("reported %g != analytic %g", cost, got)
	}
	// It must beat the naive resolve tree (which probes a then b).
	base := resolveTree(s, e, query.FullBox(s))
	if baseCost := plan.ExpectedCostRoot(base, d); cost > baseCost+1e-9 {
		t.Errorf("exhaustive %g worse than resolve tree %g", cost, baseCost)
	}
	if ex.Expanded() == 0 {
		t.Error("Expanded not recorded")
	}
}

func TestExhaustiveMatchesConjunctivePlanner(t *testing.T) {
	// On a pure conjunction, the generalized planner must match the
	// conjunctive exhaustive planner's optimal cost.
	s := bqSchema()
	rng := rand.New(rand.NewSource(6))
	tbl := corrData(rng, s, 600)
	d := stats.NewEmpirical(tbl)
	p1 := query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}}
	p2 := query.Pred{Attr: 2, R: query.Range{Lo: 2, Hi: 3}}
	e := And(Leaf(p1), Leaf(p2))
	q := query.MustNewQuery(s, p1, p2)

	exB := Exhaustive{SPSF: opt.FullSPSF(s), Budget: 2_000_000}
	_, costB, err := exB.Plan(d, e)
	if err != nil {
		t.Fatal(err)
	}
	exC := opt.Exhaustive{SPSF: opt.FullSPSF(s), Budget: 2_000_000}
	_, costC, err := exC.Plan(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(costB-costC) > 1e-9 {
		t.Errorf("boolean exhaustive %g != conjunctive exhaustive %g", costB, costC)
	}
}

func TestGreedyBooleanPlan(t *testing.T) {
	s := bqSchema()
	rng := rand.New(rand.NewSource(7))
	tbl := corrData(rng, s, 1000)
	d := stats.NewEmpirical(tbl)
	e := Or(
		And(pred(1, 0, 1, false), pred(2, 0, 1, false)),
		Not(pred(1, 0, 2, false)),
	)
	g := Greedy{SPSF: opt.FullSPSF(s), MaxSplits: 6}
	node, cost, err := g.Plan(d, e)
	if err != nil {
		t.Fatal(err)
	}
	if r := Equivalent(s, e, node, allTuples(s)); r != -1 {
		t.Fatalf("greedy plan wrong on tuple %d", r)
	}
	// Greedy must not lose to the plain resolve tree.
	base := resolveTree(s, e, query.FullBox(s))
	if baseCost := plan.ExpectedCostRoot(base, d); cost > baseCost+1e-9 {
		t.Errorf("greedy %g worse than resolve tree %g", cost, baseCost)
	}
	// And the exhaustive optimum is a lower bound.
	ex := Exhaustive{SPSF: opt.FullSPSF(s), Budget: 2_000_000}
	_, exCost, err := ex.Plan(d, e)
	if err != nil {
		t.Fatal(err)
	}
	if exCost > cost+1e-9 {
		t.Errorf("exhaustive %g worse than greedy %g", exCost, cost)
	}
}

func TestDisjunctionEarlyAccept(t *testing.T) {
	// With an OR, proving one disjunct true must let the plan stop
	// without acquiring the other (the dual of conjunctive
	// short-circuiting).
	s := schema.New(
		schema.Attribute{Name: "x", K: 2, Cost: 10},
		schema.Attribute{Name: "y", K: 2, Cost: 10},
	)
	tbl := table.New(s, 4)
	for _, r := range [][]schema.Value{{0, 0}, {0, 1}, {1, 0}, {1, 1}} {
		tbl.MustAppendRow(r)
	}
	d := stats.NewEmpirical(tbl)
	e := Or(pred(0, 1, 1, false), pred(1, 1, 1, false))
	ex := Exhaustive{SPSF: opt.FullSPSF(s)}
	node, cost, err := ex.Plan(d, e)
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: acquire x (10); if x=1 output T immediately; else acquire
	// y. Expected = 10 + 0.5*10 = 15.
	if math.Abs(cost-15) > 1e-9 {
		t.Errorf("cost = %g, want 15", cost)
	}
	if r := Equivalent(s, e, node, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on tuple %d", r)
	}
}

func TestBudgetExceeded(t *testing.T) {
	s := bqSchema()
	rng := rand.New(rand.NewSource(8))
	tbl := corrData(rng, s, 200)
	d := stats.NewEmpirical(tbl)
	e := Or(pred(1, 0, 1, false), pred(2, 0, 1, false))
	ex := Exhaustive{SPSF: opt.FullSPSF(s), Budget: 2}
	if _, _, err := ex.Plan(d, e); err != opt.ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

// Property: De Morgan's laws hold for Eval on all tuples and for EvalBox
// in Kleene three-valued logic.
func TestDeMorganProperty(t *testing.T) {
	s := bqSchema()
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		a := pred(rng.Intn(3), schema.Value(rng.Intn(3)), schema.Value(rng.Intn(3))+1, rng.Intn(2) == 0)
		b := pred(rng.Intn(3), schema.Value(rng.Intn(3)), schema.Value(rng.Intn(3))+1, rng.Intn(2) == 0)
		lhs := Not(And(a, b))
		rhs := Or(Not(a), Not(b))
		row := make([]schema.Value, 3)
		for x := 0; x < 4; x++ {
			for y := 0; y < 4; y++ {
				for z := 0; z < 4; z++ {
					row[0], row[1], row[2] = schema.Value(x), schema.Value(y), schema.Value(z)
					if lhs.Eval(row) != rhs.Eval(row) {
						t.Fatalf("De Morgan violated on %v: %s vs %s", row, lhs.Format(s), rhs.Format(s))
					}
				}
			}
		}
		// Three-valued: random boxes must agree too (Kleene logic is
		// De Morgan-complete).
		for k := 0; k < 20; k++ {
			box := query.FullBox(s)
			for i := range box {
				lo := schema.Value(rng.Intn(4))
				hi := lo + schema.Value(rng.Intn(4-int(lo)))
				box[i] = query.Range{Lo: lo, Hi: hi}
			}
			if lhs.EvalBox(box) != rhs.EvalBox(box) {
				t.Fatalf("three-valued De Morgan violated on box %v", box)
			}
		}
	}
}

// Package boolq extends the planner to arbitrary boolean WHERE clauses —
// the general minimum-cost-resolution-strategy setting of Theorem 3.1 of
// the paper, where phi may mix conjunction, disjunction, and negation
// ("if we were to include disjunctions the complexity will usually not
// decrease"). The conjunctive planners of internal/opt remain the fast
// path; this package provides:
//
//   - Expr: boolean expression trees over range predicates, with
//     three-valued evaluation over range boxes;
//   - Exhaustive: the Figure 5 subproblem DP generalized to any phi —
//     plans are pure conditioning-split trees whose leaves are reached
//     exactly when the accumulated ranges determine phi;
//   - Greedy: a bounded-split heuristic in the spirit of Figure 7.
//
// Because a disjunct can prove phi TRUE early (not just false, as in
// conjunctions), generated plans prune acquisitions on both outcomes.
package boolq

import (
	"fmt"
	"strings"

	"acqp/internal/query"
	"acqp/internal/schema"
)

// Op is a boolean expression node type.
type Op int8

// Expression operators.
const (
	// OpPred is a leaf holding a range predicate.
	OpPred Op = iota
	// OpAnd is an n-ary conjunction.
	OpAnd
	// OpOr is an n-ary disjunction.
	OpOr
	// OpNot negates its single child.
	OpNot
)

// Expr is a boolean expression tree over range predicates.
type Expr struct {
	Op   Op
	Pred query.Pred // OpPred only
	Kids []*Expr    // OpAnd/OpOr (>= 1), OpNot (exactly 1)
}

// Leaf wraps a predicate as an expression.
func Leaf(p query.Pred) *Expr { return &Expr{Op: OpPred, Pred: p} }

// And conjoins the given expressions.
func And(kids ...*Expr) *Expr { return &Expr{Op: OpAnd, Kids: kids} }

// Or disjoins the given expressions.
func Or(kids ...*Expr) *Expr { return &Expr{Op: OpOr, Kids: kids} }

// Not negates an expression.
func Not(kid *Expr) *Expr { return &Expr{Op: OpNot, Kids: []*Expr{kid}} }

// Validate checks the expression's structure against a schema.
func (e *Expr) Validate(s *schema.Schema) error {
	switch e.Op {
	case OpPred:
		if e.Pred.Attr < 0 || e.Pred.Attr >= s.NumAttrs() {
			return fmt.Errorf("boolq: predicate attribute %d out of range", e.Pred.Attr)
		}
		if !e.Pred.R.Valid() || int(e.Pred.R.Hi) >= s.K(e.Pred.Attr) {
			return fmt.Errorf("boolq: predicate range %v invalid for %s", e.Pred.R, s.Name(e.Pred.Attr))
		}
		return nil
	case OpAnd, OpOr:
		if len(e.Kids) == 0 {
			return fmt.Errorf("boolq: empty %s", e.opName())
		}
	case OpNot:
		if len(e.Kids) != 1 {
			return fmt.Errorf("boolq: NOT must have exactly one child, has %d", len(e.Kids))
		}
	default:
		return fmt.Errorf("boolq: unknown operator %d", e.Op)
	}
	for _, k := range e.Kids {
		if err := k.Validate(s); err != nil {
			return err
		}
	}
	return nil
}

func (e *Expr) opName() string {
	switch e.Op {
	case OpAnd:
		return "AND"
	case OpOr:
		return "OR"
	case OpNot:
		return "NOT"
	default:
		return "PRED"
	}
}

// Eval evaluates the expression on a full tuple.
func (e *Expr) Eval(row []schema.Value) bool {
	switch e.Op {
	case OpPred:
		return e.Pred.Eval(row[e.Pred.Attr])
	case OpAnd:
		for _, k := range e.Kids {
			if !k.Eval(row) {
				return false
			}
		}
		return true
	case OpOr:
		for _, k := range e.Kids {
			if k.Eval(row) {
				return true
			}
		}
		return false
	default: // OpNot
		return !e.Kids[0].Eval(row)
	}
}

// EvalBox evaluates the expression three-valued over a range box, using
// Kleene logic: True/False only when every tuple in the box agrees.
func (e *Expr) EvalBox(box query.Box) query.Truth {
	switch e.Op {
	case OpPred:
		return e.Pred.EvalRange(box[e.Pred.Attr])
	case OpAnd:
		out := query.True
		for _, k := range e.Kids {
			switch k.EvalBox(box) {
			case query.False:
				return query.False
			case query.Unknown:
				out = query.Unknown
			}
		}
		return out
	case OpOr:
		out := query.False
		for _, k := range e.Kids {
			switch k.EvalBox(box) {
			case query.True:
				return query.True
			case query.Unknown:
				out = query.Unknown
			}
		}
		return out
	default: // OpNot
		switch e.Kids[0].EvalBox(box) {
		case query.True:
			return query.False
		case query.False:
			return query.True
		default:
			return query.Unknown
		}
	}
}

// Preds appends every predicate in the expression to dst and returns it.
func (e *Expr) Preds(dst []query.Pred) []query.Pred {
	if e.Op == OpPred {
		return append(dst, e.Pred)
	}
	for _, k := range e.Kids {
		dst = k.Preds(dst)
	}
	return dst
}

// OpenPreds returns the predicates whose truth the box does not determine.
func (e *Expr) OpenPreds(box query.Box) []query.Pred {
	var open []query.Pred
	for _, p := range e.Preds(nil) {
		if p.EvalRange(box[p.Attr]) == query.Unknown {
			open = append(open, p)
		}
	}
	return open
}

// Format renders the expression with the schema's attribute names.
func (e *Expr) Format(s *schema.Schema) string {
	switch e.Op {
	case OpPred:
		return e.Pred.Format(s)
	case OpNot:
		return "NOT(" + e.Kids[0].Format(s) + ")"
	default:
		parts := make([]string, len(e.Kids))
		for i, k := range e.Kids {
			parts[i] = k.Format(s)
		}
		return "(" + strings.Join(parts, " "+e.opName()+" ") + ")"
	}
}

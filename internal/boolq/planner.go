package boolq

import (
	"math"

	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
)

// augmentSPSF adds every predicate endpoint of the expression to the
// candidate grid, guaranteeing any phi can be decided by splits alone.
func augmentSPSF(s *schema.Schema, spsf opt.SPSF, e *Expr) opt.SPSF {
	return spsf.WithQueryEndpoints(s, query.Query{Preds: e.Preds(nil)})
}

// resolveTree builds a correct (not optimized) plan for the expression:
// it repeatedly splits at a predicate endpoint of the cheapest open
// predicate until the ranges determine phi. It serves as the incumbent
// seed for the exhaustive search, the terminal plan of the greedy
// heuristic, and the fallback for zero-probability branches.
func resolveTree(s *schema.Schema, e *Expr, box query.Box) *plan.Node {
	switch e.EvalBox(box) {
	case query.True:
		return plan.NewLeaf(true)
	case query.False:
		return plan.NewLeaf(false)
	}
	open := e.OpenPreds(box)
	// Cheapest-attribute-first: observed attributes are free to re-test.
	best := open[0]
	bestCost := predBoxCost(s, box, best.Attr)
	for _, p := range open[1:] {
		if c := predBoxCost(s, box, p.Attr); c < bestCost {
			best, bestCost = p, c
		}
	}
	x := resolvingSplit(best, box[best.Attr])
	lo := query.Range{Lo: box[best.Attr].Lo, Hi: x - 1}
	hi := query.Range{Lo: x, Hi: box[best.Attr].Hi}
	return plan.NewSplit(best.Attr, x,
		resolveTree(s, e, box.With(best.Attr, lo)),
		resolveTree(s, e, box.With(best.Attr, hi)))
}

// resolvingSplit returns a split point in (r.Lo, r.Hi] that moves the
// predicate toward determination: one of its range endpoints, whichever
// falls inside the current range. The predicate being open guarantees one
// does.
func resolvingSplit(p query.Pred, r query.Range) schema.Value {
	if p.R.Lo > r.Lo && p.R.Lo <= r.Hi {
		return p.R.Lo
	}
	return p.R.Hi + 1
}

func predBoxCost(s *schema.Schema, box query.Box, attr int) float64 {
	if box.Observed(attr, s.K(attr)) {
		return 0
	}
	return s.AcquisitionCostWith(attr, func(i int) bool {
		return box.Observed(i, s.K(i))
	})
}

// Exhaustive is the Figure 5 dynamic program generalized to arbitrary
// boolean expressions: the same subproblem space (range boxes), memo, and
// bound pruning, with the leaf condition "the ranges determine phi" and
// resolve-tree incumbent seeding. With a full SPSF it returns the optimal
// conditional plan for phi.
type Exhaustive struct {
	// SPSF restricts candidate split points; predicate endpoints are
	// always added.
	SPSF opt.SPSF
	// Budget caps expanded subproblems (0 = unlimited); opt.ErrBudget is
	// returned when exceeded.
	Budget int

	expanded int
}

// Expanded reports the subproblems expanded by the last Plan call.
func (ex *Exhaustive) Expanded() int { return ex.expanded }

// Plan runs the search.
func (ex *Exhaustive) Plan(d stats.Dist, e *Expr) (*plan.Node, float64, error) {
	s := d.Schema()
	if err := e.Validate(s); err != nil {
		return nil, 0, err
	}
	search := &boolSearch{
		s:      s,
		e:      e,
		spsf:   augmentSPSF(s, ex.SPSF, e),
		memo:   make(map[string]boolMemo),
		pruned: make(map[string]float64),
		budget: ex.Budget,
	}
	root := d.Root()
	cost, node, err := search.solve(func() stats.Cond { return root }, query.FullBox(s), math.Inf(1))
	ex.expanded = search.count
	if err != nil {
		return nil, 0, err
	}
	return node, cost, nil
}

type boolMemo struct {
	cost float64
	node *plan.Node
}

type boolSearch struct {
	s      *schema.Schema
	e      *Expr
	spsf   opt.SPSF
	memo   map[string]boolMemo
	pruned map[string]float64
	budget int
	count  int
}

func (bs *boolSearch) solve(getC func() stats.Cond, box query.Box, bound float64) (float64, *plan.Node, error) {
	switch bs.e.EvalBox(box) {
	case query.True:
		return 0, plan.NewLeaf(true), nil
	case query.False:
		return 0, plan.NewLeaf(false), nil
	}
	key := box.Key()
	if hit, ok := bs.memo[key]; ok {
		if hit.cost >= bound {
			return math.Inf(1), nil, nil
		}
		return hit.cost, hit.node, nil
	}
	if lb, ok := bs.pruned[key]; ok && bound <= lb {
		return math.Inf(1), nil, nil
	}
	bs.count++
	if bs.budget > 0 && bs.count > bs.budget {
		return 0, nil, opt.ErrBudget
	}
	c := getC()

	// Incumbent: the resolve tree is a valid plan for any phi.
	cMin := bound
	var best *plan.Node
	if seed := resolveTree(bs.s, bs.e, box); seed != nil {
		if seedCost := plan.ExpectedCost(seed, bs.s, c, box); seedCost < cMin {
			cMin, best = seedCost, seed
		}
	}

	for attr := 0; attr < bs.s.NumAttrs(); attr++ {
		atomic := predBoxCost(bs.s, box, attr)
		if atomic >= cMin {
			continue
		}
		r := box[attr]
		for _, x := range bs.spsf.Candidates(attr, r) {
			cost := atomic
			loRange := query.Range{Lo: r.Lo, Hi: x - 1}
			hiRange := query.Range{Lo: x, Hi: r.Hi}
			pLo := c.ProbRange(attr, loRange)

			loNode := resolveTree(bs.s, bs.e, box.With(attr, loRange))
			if pLo > 0 {
				loCost, node, err := bs.solve(func() stats.Cond {
					return c.RestrictRange(attr, loRange)
				}, box.With(attr, loRange), (cMin-cost)/pLo)
				if err != nil {
					return 0, nil, err
				}
				if node == nil {
					continue
				}
				loNode = node
				cost += pLo * loCost
				if cost >= cMin {
					continue
				}
			}
			hiNode := resolveTree(bs.s, bs.e, box.With(attr, hiRange))
			if pHi := 1 - pLo; pHi > 0 {
				hiCost, node, err := bs.solve(func() stats.Cond {
					return c.RestrictRange(attr, hiRange)
				}, box.With(attr, hiRange), (cMin-cost)/pHi)
				if err != nil {
					return 0, nil, err
				}
				if node == nil {
					continue
				}
				hiNode = node
				cost += pHi * hiCost
			}
			if cost < cMin {
				cMin = cost
				best = plan.NewSplit(attr, x, loNode, hiNode)
			}
		}
	}
	if best != nil && cMin < bound {
		bs.memo[key] = boolMemo{cost: cMin, node: best}
		return cMin, best, nil
	}
	if lb, ok := bs.pruned[key]; !ok || bound > lb {
		bs.pruned[key] = bound
	}
	return math.Inf(1), nil, nil
}

// Greedy builds a bounded-split conditional plan for an arbitrary
// expression: at each leaf it picks the split with the best one-step
// expected cost, assuming the resolve tree completes each branch, and
// expands leaves best-gain-first in the spirit of Figure 7.
type Greedy struct {
	// SPSF restricts candidate split points; predicate endpoints are
	// always added.
	SPSF opt.SPSF
	// MaxSplits bounds the number of conditioning splits beyond those
	// the terminal resolve trees need.
	MaxSplits int
}

// Plan builds the plan and returns it with its expected cost.
func (g *Greedy) Plan(d stats.Dist, e *Expr) (*plan.Node, float64, error) {
	s := d.Schema()
	if err := e.Validate(s); err != nil {
		return nil, 0, err
	}
	spsf := augmentSPSF(s, g.SPSF, e)
	root := g.build(s, e, spsf, d.Root(), query.FullBox(s), g.MaxSplits)
	root = plan.Simplify(root, s)
	return root, plan.ExpectedCostRoot(root, d), nil
}

// build chooses the locally-best split at this box (or the resolve tree
// if no split helps / the budget is spent), recursing with a split budget
// divided between the children proportionally to their probability mass.
func (g *Greedy) build(s *schema.Schema, e *Expr, spsf opt.SPSF, c stats.Cond, box query.Box, budget int) *plan.Node {
	switch e.EvalBox(box) {
	case query.True:
		return plan.NewLeaf(true)
	case query.False:
		return plan.NewLeaf(false)
	}
	baseline := resolveTree(s, e, box)
	baseCost := plan.ExpectedCost(baseline, s, c, box)
	if budget <= 0 {
		return baseline
	}
	bestCost := baseCost
	bestAttr, bestX := -1, schema.Value(0)
	bestPLo := 0.0
	for attr := 0; attr < s.NumAttrs(); attr++ {
		atomic := predBoxCost(s, box, attr)
		if atomic >= bestCost {
			continue
		}
		r := box[attr]
		for _, x := range spsf.Candidates(attr, r) {
			loRange := query.Range{Lo: r.Lo, Hi: x - 1}
			hiRange := query.Range{Lo: x, Hi: r.Hi}
			pLo := c.ProbRange(attr, loRange)
			cost := atomic
			if pLo > 0 {
				lo := resolveTree(s, e, box.With(attr, loRange))
				cost += pLo * plan.ExpectedCost(lo, s, c.RestrictRange(attr, loRange), box.With(attr, loRange))
				if cost >= bestCost {
					continue
				}
			}
			if pHi := 1 - pLo; pHi > 0 {
				hi := resolveTree(s, e, box.With(attr, hiRange))
				cost += pHi * plan.ExpectedCost(hi, s, c.RestrictRange(attr, hiRange), box.With(attr, hiRange))
			}
			if cost < bestCost-1e-12 {
				bestCost, bestAttr, bestX, bestPLo = cost, attr, x, pLo
			}
		}
	}
	if bestAttr < 0 {
		return baseline
	}
	loRange := query.Range{Lo: box[bestAttr].Lo, Hi: bestX - 1}
	hiRange := query.Range{Lo: bestX, Hi: box[bestAttr].Hi}
	// Split the remaining budget by branch probability.
	loBudget := int(float64(budget-1) * bestPLo)
	hiBudget := budget - 1 - loBudget
	var lo, hi *plan.Node
	if bestPLo > 0 {
		lo = g.build(s, e, spsf, c.RestrictRange(bestAttr, loRange), box.With(bestAttr, loRange), loBudget)
	} else {
		lo = resolveTree(s, e, box.With(bestAttr, loRange))
	}
	if bestPLo < 1 {
		hi = g.build(s, e, spsf, c.RestrictRange(bestAttr, hiRange), box.With(bestAttr, hiRange), hiBudget)
	} else {
		hi = resolveTree(s, e, box.With(bestAttr, hiRange))
	}
	return plan.NewSplit(bestAttr, bestX, lo, hi)
}

// Equivalent checks the plan against the expression on every tuple of a
// table, returning the first violating row or -1.
func Equivalent(s *schema.Schema, e *Expr, p *plan.Node, tbl interface {
	NumRows() int
	Row(int, []schema.Value) []schema.Value
}) int {
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, _ := p.Execute(s, row, acquired)
		if got != e.Eval(row) {
			return r
		}
	}
	return -1
}

package schema

import "fmt"

// Boards model the "complex acquisition costs" extension of Section 7 of
// the paper: motes carry sensor boards whose sensors are powered up
// together, so the cost of a reading decomposes into a high one-time
// board power-up cost plus a low per-sensor sampling cost. Acquiring a
// second attribute from an already-powered board skips the power-up.
//
// An attribute's Board field names its board; board 0 means the attribute
// is independent (no shared power-up). Board power-up costs are
// registered on the schema with SetBoardCost.

// SetBoardCost registers the one-time power-up cost of a board. Board ids
// must be positive; costs must be non-negative.
func (s *Schema) SetBoardCost(board int, cost float64) error {
	if board <= 0 {
		return fmt.Errorf("schema: board id %d must be positive", board)
	}
	if cost < 0 {
		return fmt.Errorf("schema: board %d: negative cost %g", board, cost)
	}
	if s.boardCosts == nil {
		s.boardCosts = make(map[int]float64)
	}
	s.boardCosts[board] = cost
	return nil
}

// BoardCost returns the power-up cost of a board (0 for board 0 or
// unregistered boards).
func (s *Schema) BoardCost(board int) float64 {
	if board <= 0 || s.boardCosts == nil {
		return 0
	}
	return s.boardCosts[board]
}

// BoardAttrs returns the indexes of the attributes on the given board, in
// schema order. Board 0 returns nil.
func (s *Schema) BoardAttrs(board int) []int {
	if board <= 0 {
		return nil
	}
	var out []int
	for i, a := range s.attrs {
		if a.Board == board {
			out = append(out, i)
		}
	}
	return out
}

// AcquisitionCost returns the cost of acquiring attribute attr given
// which attributes have already been acquired this tuple: the attribute's
// own cost, plus its board's power-up cost if no attribute sharing the
// board has been acquired yet. acquired is indexed by attribute.
func (s *Schema) AcquisitionCost(attr int, acquired []bool) float64 {
	a := s.attrs[attr]
	cost := a.Cost
	if a.Board > 0 && !s.boardPowered(a.Board, acquired) {
		cost += s.BoardCost(a.Board)
	}
	return cost
}

// AcquisitionCostWith is AcquisitionCost generalized over any notion of
// "already acquired" (a bitset during execution, a range-box restriction
// during planning): it returns the attribute's cost plus its board's
// power-up cost unless isAcquired reports true for some attribute sharing
// the board.
func (s *Schema) AcquisitionCostWith(attr int, isAcquired func(int) bool) float64 {
	a := s.attrs[attr]
	cost := a.Cost
	if a.Board > 0 {
		powered := false
		for i := range s.attrs {
			if i != attr && s.attrs[i].Board == a.Board && isAcquired(i) {
				powered = true
				break
			}
		}
		if !powered {
			cost += s.BoardCost(a.Board)
		}
	}
	return cost
}

// boardPowered reports whether any acquired attribute shares the board.
func (s *Schema) boardPowered(board int, acquired []bool) bool {
	for i, a := range s.attrs {
		if a.Board == board && acquired[i] {
			return true
		}
	}
	return false
}

// HasBoards reports whether any attribute belongs to a shared board;
// callers on hot paths can skip board bookkeeping entirely when false.
func (s *Schema) HasBoards() bool {
	for _, a := range s.attrs {
		if a.Board > 0 {
			return true
		}
	}
	return false
}

// MaxAcquisitionCost returns the largest possible cost of acquiring the
// attribute (own cost plus full board power-up).
func (s *Schema) MaxAcquisitionCost(attr int) float64 {
	a := s.attrs[attr]
	return a.Cost + s.BoardCost(a.Board)
}

package schema

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddValidation(t *testing.T) {
	cases := []struct {
		name string
		attr Attribute
		want string // substring of the expected error; "" means success
	}{
		{"valid", Attribute{Name: "light", K: 16, Cost: 100}, ""},
		{"empty name", Attribute{Name: "", K: 4, Cost: 1}, "empty name"},
		{"tiny domain", Attribute{Name: "x", K: 1, Cost: 1}, "domain size 1"},
		{"huge domain", Attribute{Name: "x", K: MaxDomain + 1, Cost: 1}, "exceeds max"},
		{"negative cost", Attribute{Name: "x", K: 4, Cost: -1}, "negative cost"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New()
			err := s.Add(tc.attr)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("Add(%v) = %v, want nil", tc.attr, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Add(%v) = %v, want error containing %q", tc.attr, err, tc.want)
			}
		})
	}
}

func TestDuplicateName(t *testing.T) {
	s := New(Attribute{Name: "temp", K: 8, Cost: 100})
	if err := s.Add(Attribute{Name: "temp", K: 4, Cost: 1}); err == nil {
		t.Fatal("adding duplicate attribute name succeeded, want error")
	}
}

func TestIndexLookup(t *testing.T) {
	s := New(
		Attribute{Name: "hour", K: 24, Cost: 1},
		Attribute{Name: "light", K: 16, Cost: 100},
	)
	if got := s.Index("light"); got != 1 {
		t.Errorf("Index(light) = %d, want 1", got)
	}
	if got := s.Index("nope"); got != -1 {
		t.Errorf("Index(nope) = %d, want -1", got)
	}
	if got := s.MustIndex("hour"); got != 0 {
		t.Errorf("MustIndex(hour) = %d, want 0", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustIndex(unknown) did not panic")
		}
	}()
	s.MustIndex("unknown")
}

func TestAccessors(t *testing.T) {
	s := New(
		Attribute{Name: "hour", K: 24, Cost: 1},
		Attribute{Name: "light", K: 16, Cost: 100},
		Attribute{Name: "temp", K: 32, Cost: 100},
	)
	if s.NumAttrs() != 3 {
		t.Fatalf("NumAttrs = %d, want 3", s.NumAttrs())
	}
	if s.K(0) != 24 || s.Cost(0) != 1 || s.Name(0) != "hour" {
		t.Errorf("attr 0 accessors wrong: K=%d C=%g name=%s", s.K(0), s.Cost(0), s.Name(0))
	}
	if s.MaxK() != 32 {
		t.Errorf("MaxK = %d, want 32", s.MaxK())
	}
	if s.TotalCost() != 201 {
		t.Errorf("TotalCost = %g, want 201", s.TotalCost())
	}
	if got := s.ExpensiveAttrs(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("ExpensiveAttrs(1) = %v, want [1 2]", got)
	}
	if got := s.CheapAttrs(1); len(got) != 1 || got[0] != 0 {
		t.Errorf("CheapAttrs(1) = %v, want [0]", got)
	}
	if got := s.SortedNames(); got[0] != "hour" || got[1] != "light" || got[2] != "temp" {
		t.Errorf("SortedNames = %v", got)
	}
}

func TestAttrsCopyIsIndependent(t *testing.T) {
	s := New(Attribute{Name: "a", K: 2, Cost: 1})
	attrs := s.Attrs()
	attrs[0].Name = "mutated"
	if s.Name(0) != "a" {
		t.Error("mutating Attrs() copy changed the schema")
	}
}

func TestDiscretizerValidation(t *testing.T) {
	if _, err := NewDiscretizer(0, 10, 1); err == nil {
		t.Error("K=1 accepted")
	}
	if _, err := NewDiscretizer(10, 10, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewDiscretizer(0, 10, 4); err != nil {
		t.Errorf("valid discretizer rejected: %v", err)
	}
}

func TestDiscretizerBinning(t *testing.T) {
	d := MustDiscretizer(0, 100, 10)
	cases := []struct {
		v    float64
		want Value
	}{
		{-5, 0}, {0, 0}, {9.99, 0}, {10, 1}, {55, 5}, {99.99, 9}, {100, 9}, {200, 9},
	}
	for _, tc := range cases {
		if got := d.Bin(tc.v); got != tc.want {
			t.Errorf("Bin(%g) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestDiscretizerBoundaries(t *testing.T) {
	d := MustDiscretizer(-50, 50, 4)
	if w := d.Width(); w != 25 {
		t.Errorf("Width = %g, want 25", w)
	}
	if lo := d.Lower(2); lo != 0 {
		t.Errorf("Lower(2) = %g, want 0", lo)
	}
	if hi := d.Upper(2); hi != 25 {
		t.Errorf("Upper(2) = %g, want 25", hi)
	}
	if m := d.Mid(0); m != -37.5 {
		t.Errorf("Mid(0) = %g, want -37.5", m)
	}
}

func TestDiscretizerBinRange(t *testing.T) {
	d := MustDiscretizer(0, 100, 10)
	lo, hi, ok := d.BinRange(25, 74)
	if !ok || lo != 2 || hi != 7 {
		t.Errorf("BinRange(25,74) = %d,%d,%v, want 2,7,true", lo, hi, ok)
	}
	if _, _, ok := d.BinRange(5, 4); ok {
		t.Error("empty raw interval reported ok")
	}
}

// Property: binning is monotone and always lands inside the domain.
func TestDiscretizerMonotoneProperty(t *testing.T) {
	d := MustDiscretizer(-1000, 1000, 37)
	f := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		ba, bb := d.Bin(a), d.Bin(b)
		return ba <= bb && int(bb) < d.K
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every value inside a bin's [Lower, Upper) maps back to the bin.
func TestDiscretizerRoundTripProperty(t *testing.T) {
	d := MustDiscretizer(3, 97, 13)
	f := func(b uint16, frac float64) bool {
		bin := Value(int(b) % d.K)
		if frac < 0 {
			frac = -frac
		}
		frac -= math.Floor(frac) // into [0,1)
		// Stay strictly inside the bin: exact boundaries are allowed to
		// round either way in floating point.
		v := d.Lower(bin) + (0.01+0.98*frac)*d.Width()
		return d.Bin(v) == bin
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package schema

import "testing"

func boardSchema(t *testing.T) *Schema {
	t.Helper()
	s := New(
		Attribute{Name: "free", K: 4, Cost: 1},
		Attribute{Name: "s1", K: 4, Cost: 5, Board: 1},
		Attribute{Name: "s2", K: 4, Cost: 5, Board: 1},
		Attribute{Name: "s3", K: 4, Cost: 5, Board: 2},
	)
	if err := s.SetBoardCost(1, 50); err != nil {
		t.Fatal(err)
	}
	if err := s.SetBoardCost(2, 20); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSetBoardCostValidation(t *testing.T) {
	s := New(Attribute{Name: "a", K: 2, Cost: 1})
	if err := s.SetBoardCost(0, 10); err == nil {
		t.Error("board id 0 accepted")
	}
	if err := s.SetBoardCost(-1, 10); err == nil {
		t.Error("negative board id accepted")
	}
	if err := s.SetBoardCost(1, -5); err == nil {
		t.Error("negative board cost accepted")
	}
}

func TestBoardCostLookup(t *testing.T) {
	s := boardSchema(t)
	if s.BoardCost(1) != 50 || s.BoardCost(2) != 20 {
		t.Error("registered board costs wrong")
	}
	if s.BoardCost(0) != 0 || s.BoardCost(99) != 0 {
		t.Error("unregistered boards should cost 0")
	}
}

func TestBoardAttrs(t *testing.T) {
	s := boardSchema(t)
	if got := s.BoardAttrs(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("BoardAttrs(1) = %v", got)
	}
	if got := s.BoardAttrs(0); got != nil {
		t.Errorf("BoardAttrs(0) = %v, want nil", got)
	}
}

func TestAcquisitionCost(t *testing.T) {
	s := boardSchema(t)
	acquired := make([]bool, 4)
	// First touch of s1: board 1 power-up + sensor.
	if got := s.AcquisitionCost(1, acquired); got != 55 {
		t.Errorf("first board-1 acquisition = %g, want 55", got)
	}
	acquired[1] = true
	// s2 shares the powered board: sensor cost only.
	if got := s.AcquisitionCost(2, acquired); got != 5 {
		t.Errorf("second board-1 acquisition = %g, want 5", got)
	}
	// s3 is on a different board.
	if got := s.AcquisitionCost(3, acquired); got != 25 {
		t.Errorf("board-2 acquisition = %g, want 25", got)
	}
	// Boardless attribute unaffected.
	if got := s.AcquisitionCost(0, acquired); got != 1 {
		t.Errorf("boardless acquisition = %g, want 1", got)
	}
}

func TestAcquisitionCostWith(t *testing.T) {
	s := boardSchema(t)
	none := func(int) bool { return false }
	if got := s.AcquisitionCostWith(1, none); got != 55 {
		t.Errorf("cost with nothing acquired = %g, want 55", got)
	}
	sibling := func(i int) bool { return i == 2 }
	if got := s.AcquisitionCostWith(1, sibling); got != 5 {
		t.Errorf("cost with sibling acquired = %g, want 5", got)
	}
	// The attribute itself being "acquired" must not power its own board
	// (callers invoke this before marking the attribute).
	self := func(i int) bool { return i == 1 }
	if got := s.AcquisitionCostWith(1, self); got != 55 {
		t.Errorf("self-acquisition powered own board: %g, want 55", got)
	}
}

func TestHasBoardsAndMaxCost(t *testing.T) {
	s := boardSchema(t)
	if !s.HasBoards() {
		t.Error("HasBoards = false")
	}
	plain := New(Attribute{Name: "a", K: 2, Cost: 1})
	if plain.HasBoards() {
		t.Error("boardless schema reports boards")
	}
	if got := s.MaxAcquisitionCost(1); got != 55 {
		t.Errorf("MaxAcquisitionCost = %g, want 55", got)
	}
	if got := s.MaxAcquisitionCost(0); got != 1 {
		t.Errorf("MaxAcquisitionCost(boardless) = %g, want 1", got)
	}
}

package schema

import (
	"fmt"
	"math"
)

// Discretizer maps continuous readings into the discrete domain [0, K)
// using equal-width bins over [Min, Max], the scheme Section 4.3 of the
// paper proposes ("divide the domain of the variable into equal sized
// ranges"). Values outside [Min, Max] clamp to the boundary bins, matching
// how a saturating sensor ADC behaves.
type Discretizer struct {
	Min, Max float64
	K        int
}

// NewDiscretizer builds an equal-width discretizer. It returns an error if
// the range is empty or K < 2.
func NewDiscretizer(min, max float64, k int) (*Discretizer, error) {
	switch {
	case k < 2:
		return nil, fmt.Errorf("discretizer: K=%d < 2", k)
	case !(min < max):
		return nil, fmt.Errorf("discretizer: empty range [%g, %g]", min, max)
	case math.IsNaN(min) || math.IsNaN(max) || math.IsInf(min, 0) || math.IsInf(max, 0):
		return nil, fmt.Errorf("discretizer: non-finite range [%g, %g]", min, max)
	}
	return &Discretizer{Min: min, Max: max, K: k}, nil
}

// MustDiscretizer is NewDiscretizer but panics on error.
func MustDiscretizer(min, max float64, k int) *Discretizer {
	d, err := NewDiscretizer(min, max, k)
	if err != nil {
		panic("schema: " + err.Error())
	}
	return d
}

// Bin maps a raw reading to its bin in [0, K), clamping out-of-range
// values.
func (d *Discretizer) Bin(v float64) Value {
	if math.IsNaN(v) || v <= d.Min {
		return 0
	}
	if v >= d.Max {
		return Value(d.K - 1)
	}
	b := int((v - d.Min) / (d.Max - d.Min) * float64(d.K))
	if b >= d.K { // guard against floating-point edge at v == Max-epsilon
		b = d.K - 1
	}
	return Value(b)
}

// Width returns the width of one bin in raw units.
func (d *Discretizer) Width() float64 { return (d.Max - d.Min) / float64(d.K) }

// Lower returns the inclusive lower raw boundary of bin b.
func (d *Discretizer) Lower(b Value) float64 { return d.Min + float64(b)*d.Width() }

// Upper returns the exclusive upper raw boundary of bin b.
func (d *Discretizer) Upper(b Value) float64 { return d.Min + float64(b+1)*d.Width() }

// Mid returns the midpoint of bin b in raw units; useful for rendering
// plans with human-readable thresholds.
func (d *Discretizer) Mid(b Value) float64 { return d.Min + (float64(b)+0.5)*d.Width() }

// BinRange maps a raw closed interval [lo, hi] to the inclusive bin range
// [loBin, hiBin] covering it. An empty raw interval yields ok=false.
func (d *Discretizer) BinRange(lo, hi float64) (loBin, hiBin Value, ok bool) {
	if !(lo <= hi) {
		return 0, 0, false
	}
	return d.Bin(lo), d.Bin(hi), true
}

// Package schema defines the attribute metadata used throughout the
// acquisitional query processor: attribute names, discrete domains,
// acquisition costs, and the mapping between raw continuous readings and
// the discretized values the planners operate on.
//
// Following Section 2.1 of Deshpande et al. (ICDE 2005), every attribute
// X_i takes values in {0, ..., K_i - 1} (the paper uses 1-based values; we
// use 0-based throughout). Real-valued attributes are discretized with an
// equal-width Discretizer (Section 4.3).
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Value is a discretized attribute value in [0, K).
type Value = uint16

// MaxDomain is the largest supported domain size K_i. Sensor ADCs are
// 10-bit (1024 values) on the Berkeley motes the paper targets; we allow a
// comfortable margin.
const MaxDomain = 1 << 15

// Attribute describes a single column of the query table.
type Attribute struct {
	// Name identifies the attribute, e.g. "light" or "mote3.temp".
	Name string
	// K is the domain size: discretized values lie in [0, K).
	K int
	// Cost is the acquisition cost C_i in abstract cost units (the paper
	// uses 100 for expensive sensors, 1 for cheap local attributes).
	Cost float64
	// Disc maps raw continuous readings into [0, K). It is nil for
	// natively discrete attributes.
	Disc *Discretizer
	// Board optionally groups attributes that share a sensor board's
	// power-up cost (Section 7 "complex acquisition costs"); 0 means no
	// shared board. Register board costs with Schema.SetBoardCost.
	Board int
}

// Expensive reports whether the attribute's acquisition cost is strictly
// greater than the given threshold. It is a convenience for workload
// generators that must pick "expensive" query attributes.
func (a Attribute) Expensive(threshold float64) bool { return a.Cost > threshold }

func (a Attribute) String() string {
	return fmt.Sprintf("%s(K=%d, C=%g)", a.Name, a.K, a.Cost)
}

// Schema is an ordered collection of attributes. The order defines the
// attribute indexes used by tables, queries, and plans.
type Schema struct {
	attrs      []Attribute
	byName     map[string]int
	boardCosts map[int]float64
}

// New builds a Schema from the given attributes. It panics if an attribute
// is invalid or a name is duplicated: schemas are constructed from code or
// trusted generator output, so these are programming errors.
func New(attrs ...Attribute) *Schema {
	s := &Schema{byName: make(map[string]int, len(attrs))}
	for _, a := range attrs {
		s.MustAdd(a)
	}
	return s
}

// MustAdd appends an attribute, panicking on invalid input.
func (s *Schema) MustAdd(a Attribute) {
	if err := s.Add(a); err != nil {
		panic("schema: " + strings.TrimPrefix(err.Error(), "schema: "))
	}
}

// Add appends an attribute to the schema.
func (s *Schema) Add(a Attribute) error {
	switch {
	case a.Name == "":
		return fmt.Errorf("schema: attribute with empty name")
	case a.K < 2:
		return fmt.Errorf("schema: attribute %q: domain size %d < 2", a.Name, a.K)
	case a.K > MaxDomain:
		return fmt.Errorf("schema: attribute %q: domain size %d exceeds max %d", a.Name, a.K, MaxDomain)
	case a.Cost < 0:
		return fmt.Errorf("schema: attribute %q: negative cost %g", a.Name, a.Cost)
	}
	if _, dup := s.byName[a.Name]; dup {
		return fmt.Errorf("schema: duplicate attribute %q", a.Name)
	}
	s.byName[a.Name] = len(s.attrs)
	s.attrs = append(s.attrs, a)
	return nil
}

// NumAttrs returns the number of attributes n.
func (s *Schema) NumAttrs() int { return len(s.attrs) }

// Attr returns the i-th attribute.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute slice.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the index of the named attribute, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.byName[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index but panics on an unknown name.
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("schema: unknown attribute %q", name))
	}
	return i
}

// K returns the domain size of attribute i.
func (s *Schema) K(i int) int { return s.attrs[i].K }

// Cost returns the acquisition cost of attribute i.
func (s *Schema) Cost(i int) float64 { return s.attrs[i].Cost }

// Name returns the name of attribute i.
func (s *Schema) Name(i int) string { return s.attrs[i].Name }

// MaxK returns max_i K_i, the largest domain size in the schema.
func (s *Schema) MaxK() int {
	m := 0
	for _, a := range s.attrs {
		if a.K > m {
			m = a.K
		}
	}
	return m
}

// TotalCost returns the cost of acquiring every attribute once: the cost of
// the trivial plan that observes everything.
func (s *Schema) TotalCost() float64 {
	var c float64
	for _, a := range s.attrs {
		c += a.Cost
	}
	return c
}

// ExpensiveAttrs returns the indexes of attributes with cost above the
// threshold, in schema order.
func (s *Schema) ExpensiveAttrs(threshold float64) []int {
	var out []int
	for i, a := range s.attrs {
		if a.Expensive(threshold) {
			out = append(out, i)
		}
	}
	return out
}

// CheapAttrs returns the indexes of attributes with cost at or below the
// threshold, in schema order.
func (s *Schema) CheapAttrs(threshold float64) []int {
	var out []int
	for i, a := range s.attrs {
		if !a.Expensive(threshold) {
			out = append(out, i)
		}
	}
	return out
}

func (s *Schema) String() string {
	parts := make([]string, len(s.attrs))
	for i, a := range s.attrs {
		parts[i] = a.String()
	}
	return "Schema[" + strings.Join(parts, ", ") + "]"
}

// SortedNames returns attribute names in lexicographic order; useful for
// deterministic output in tools and tests.
func (s *Schema) SortedNames() []string {
	names := make([]string, 0, len(s.attrs))
	for _, a := range s.attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return names
}

package experiments

import (
	"context"

	"fmt"
	"io"
	"math"
	"sort"

	"acqp/internal/exec"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
	"acqp/internal/workload"
)

// labWorld bundles the split lab dataset and its workload.
type labWorld struct {
	train, test *table.Table
	dist        *stats.Empirical
	queries     []query.Query
}

func (e *Env) labWorld(queries int) labWorld {
	tbl := e.Lab()
	train, test := tbl.Split(TrainFrac)
	cfg := workload.DefaultLabQueryConfig()
	cfg.Count = queries
	return labWorld{
		train:   train,
		test:    test,
		dist:    stats.NewEmpirical(train),
		queries: workload.LabQueries(train, cfg),
	}
}

// exhaustiveR returns the per-attribute SPSF count used to train the
// exhaustive planner at this scale.
func (e *Env) exhaustiveR() int {
	if e.Scale == Quick {
		return 1
	}
	return 2
}

const exhaustiveBudget = 2_000_000

// heuristicSPSF is the (much larger) split-point budget the heuristic
// planners run with, playing the role of the paper's SPSF 10^14 runs.
const heuristicSPSF = 8

// exhaustivePlan trains the exhaustive planner on the SPSF-coarsened view
// of the training data (Section 6.1's "Exhaustive with SPSF s") and
// returns the plan expanded back to the original domain.
func exhaustivePlan(ctx context.Context, train *table.Table, q query.Query, r int, budget int) (*plan.Node, error) {
	s := train.Schema()
	co, err := opt.NewCoarsening(s, opt.UniformSPSFSame(s, r), q)
	if err != nil {
		return nil, err
	}
	cq, err := co.CoarsenQuery(q)
	if err != nil {
		return nil, err
	}
	// Compress the coarse training data into the weighted joint
	// distribution of Figure 4: the tiny coarse domain collapses the
	// training rows to a few hundred weighted cells, making the
	// exhaustive search's conditioning O(cells) instead of O(rows).
	ctrain := stats.Compress(co.CoarsenTable(train))
	ex := opt.Exhaustive{SPSF: opt.FullSPSF(co.CoarseSchema()), Budget: budget}
	cplan, _, err := ex.Plan(ctx, ctrain, cq)
	if err != nil {
		return nil, err
	}
	return co.ExpandPlan(cplan), nil
}

// Fig8aResult holds the Figure 8(a) reproduction: plan quality of Naive
// and Heuristic-k versus the Exhaustive algorithm on the lab dataset,
// averaged over the query workload. Ratios are test-data mean acquisition
// cost relative to Exhaustive (1.0 = matches Exhaustive).
type Fig8aResult struct {
	Queries int
	Skipped int // queries the exhaustive search could not finish in budget
	Rows    []Fig8aRow
}

// Fig8aRow is one algorithm's aggregate.
type Fig8aRow struct {
	Algo             string
	AvgRel, WorstRel float64
	AvgCost          float64
}

// Fig8a reproduces Figure 8(a): Exhaustive versus Naive and Heuristic-k
// (k = 0, 5, 10) on the lab dataset.
func Fig8a(e *Env) (Fig8aResult, error) {
	w := e.labWorld(e.LabQueryCount())
	s := w.train.Schema()
	// Figure 8(a) compares Exhaustive and Heuristic at the SAME SPSF
	// ("when both are running on the dataset with SPSF set to 10^8");
	// Figure 8(b) is where the SPSFs differ.
	r := e.exhaustiveR()
	algos := []opt.Planner{
		opt.NaivePlanner{},
		heuristicPlannerAt(s, 0, r),
		heuristicPlannerAt(s, 5, r),
		heuristicPlannerAt(s, 10, r),
	}
	sums := make([]float64, len(algos))
	worsts := make([]float64, len(algos))
	costs := make([]float64, len(algos))
	res := Fig8aResult{}
	var exCostSum float64
	for _, q := range w.queries {
		exPlan, err := exhaustivePlan(e.ctx(), w.train, q, r, exhaustiveBudget)
		if err == opt.ErrBudget {
			res.Skipped++
			continue
		}
		if err != nil {
			return res, err
		}
		exCost, err := runCost(e.ctx(), s, exPlan, q, w.test)
		if err != nil {
			return res, err
		}
		if exCost <= 0 {
			res.Skipped++
			continue
		}
		exCostSum += exCost
		res.Queries++
		for i, p := range algos {
			node, _, err := p.Plan(e.ctx(), w.dist, q)
			if err != nil {
				return res, err
			}
			c, err := runCost(e.ctx(), s, node, q, w.test)
			if err != nil {
				return res, err
			}
			rel := c / exCost
			sums[i] += rel
			costs[i] += c
			if rel > worsts[i] {
				worsts[i] = rel
			}
		}
	}
	if res.Queries == 0 {
		return res, fmt.Errorf("experiments: fig8a: every query exceeded the exhaustive budget")
	}
	n := float64(res.Queries)
	res.Rows = append(res.Rows, Fig8aRow{Algo: "Exhaustive", AvgRel: 1, WorstRel: 1, AvgCost: exCostSum / n})
	for i, p := range algos {
		res.Rows = append(res.Rows, Fig8aRow{
			Algo: p.Name(), AvgRel: sums[i] / n, WorstRel: worsts[i], AvgCost: costs[i] / n,
		})
	}
	return res, nil
}

func heuristicPlanner(s *schema.Schema, k int) opt.Planner {
	return heuristicPlannerAt(s, k, heuristicSPSF)
}

func heuristicPlannerAt(s *schema.Schema, k, spsf int) opt.Planner {
	return opt.GreedyPlanner{Greedy: opt.Greedy{
		SPSF:      opt.UniformSPSFSame(s, spsf),
		MaxSplits: k,
		Base:      opt.SeqOpt,
	}}
}

// WriteTable renders the result.
func (r Fig8aResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Algo, f3(row.AvgRel), f3(row.WorstRel), f1(row.AvgCost)}
	}
	return WriteTable(w,
		fmt.Sprintf("Figure 8(a): plan quality vs Exhaustive — lab dataset (%d queries, %d skipped)", r.Queries, r.Skipped),
		[]string{"algorithm", "avg cost / exhaustive", "worst cost / exhaustive", "avg test cost"},
		rows)
}

// Fig8bResult holds the Figure 8(b) reproduction: the effect of training
// Exhaustive with progressively smaller SPSFs, compared against
// Heuristic-5 trained with a large SPSF.
type Fig8bResult struct {
	Queries int
	Rows    []Fig8bRow
}

// Fig8bRow is one SPSF setting's aggregate: ratios are Exhaustive's test
// cost over Heuristic-5's.
type Fig8bRow struct {
	Label            string
	SPSF             float64
	AvgRel, WorstRel float64
	Skipped          int
}

// Fig8b reproduces Figure 8(b): Exhaustive at decreasing SPSF versus
// Heuristic-5 at a large SPSF. Constraining the split points too much
// obscures correlations and degrades Exhaustive below the heuristic.
func Fig8b(e *Env) (Fig8bResult, error) {
	w := e.labWorld(e.LabQueryCount())
	s := w.train.Schema()
	heur := heuristicPlanner(s, 5)

	rs := []int{0, 1, 2}
	if e.Scale == Quick {
		rs = []int{0, 1}
	}
	res := Fig8bResult{Queries: len(w.queries)}
	heurCosts := make([]float64, len(w.queries))
	for qi, q := range w.queries {
		node, _, err := heur.Plan(e.ctx(), w.dist, q)
		if err != nil {
			return res, err
		}
		heurCosts[qi], err = runCost(e.ctx(), s, node, q, w.test)
		if err != nil {
			return res, err
		}
	}
	for _, r := range rs {
		row := Fig8bRow{
			Label: fmt.Sprintf("Exhaustive r=%d", r),
			// Report the realized split-point selection factor, including
			// the query-endpoint augmentation (representative first query).
			SPSF: opt.UniformSPSFSame(s, r).WithQueryEndpoints(s, w.queries[0]).Factor(),
		}
		var sum float64
		var count int
		for qi, q := range w.queries {
			exPlan, err := exhaustivePlan(e.ctx(), w.train, q, r, exhaustiveBudget)
			if err == opt.ErrBudget {
				row.Skipped++
				continue
			}
			if err != nil {
				return res, err
			}
			exCost, err := runCost(e.ctx(), s, exPlan, q, w.test)
			if err != nil {
				return res, err
			}
			rel := exCost / heurCosts[qi]
			sum += rel
			count++
			if rel > row.WorstRel {
				row.WorstRel = rel
			}
		}
		if count > 0 {
			row.AvgRel = sum / float64(count)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the result.
func (r Fig8bResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Label, fmt.Sprintf("%.0f", row.SPSF), f3(row.AvgRel), f3(row.WorstRel), fmt.Sprintf("%d", row.Skipped)}
	}
	return WriteTable(w,
		fmt.Sprintf("Figure 8(b): Exhaustive at small SPSF vs Heuristic-5 at SPSF %d^n — lab dataset (%d queries)", heuristicSPSF, r.Queries),
		[]string{"setting", "SPSF", "avg cost / heuristic-5", "worst cost / heuristic-5", "skipped"},
		rows)
}

// Fig8cResult is the Figure 8(c) reproduction: the cumulative frequency
// of per-query performance gain over Naive on the lab dataset.
type Fig8cResult struct {
	// Gains[algo] holds each query's Naive-cost / algo-cost ratio,
	// sorted descending (a gain of 2 = twice cheaper than Naive).
	Gains map[string][]float64
	Order []string
}

// Fig8c reproduces Figure 8(c).
func Fig8c(e *Env) (Fig8cResult, error) {
	w := e.labWorld(e.LabQueryCount())
	s := w.train.Schema()
	algos := []opt.Planner{
		opt.CorrSeqPlanner{Alg: opt.SeqOpt},
		heuristicPlanner(s, 10),
	}
	res := Fig8cResult{Gains: map[string][]float64{}}
	for _, p := range algos {
		res.Order = append(res.Order, p.Name())
	}
	naive := opt.NaivePlanner{}
	for _, q := range w.queries {
		nNode, _, err := naive.Plan(e.ctx(), w.dist, q)
		if err != nil {
			return res, err
		}
		nCost, err := runCost(e.ctx(), s, nNode, q, w.test)
		if err != nil {
			return res, err
		}
		for _, p := range algos {
			node, _, err := p.Plan(e.ctx(), w.dist, q)
			if err != nil {
				return res, err
			}
			c, err := runCost(e.ctx(), s, node, q, w.test)
			if err != nil {
				return res, err
			}
			gain := math.Inf(1)
			if c > 0 {
				gain = nCost / c
			}
			res.Gains[p.Name()] = append(res.Gains[p.Name()], gain)
		}
	}
	for _, g := range res.Gains {
		sort.Sort(sort.Reverse(sort.Float64Slice(g)))
	}
	return res, nil
}

// WriteTable renders the cumulative-frequency curves at decile points.
func (r Fig8cResult) WriteTable(w io.Writer) error {
	header := []string{"cumulative fraction"}
	header = append(header, r.Order...)
	var rows [][]string
	if len(r.Order) == 0 || len(r.Gains[r.Order[0]]) == 0 {
		return WriteTable(w, "Figure 8(c): no data", header, rows)
	}
	n := len(r.Gains[r.Order[0]])
	for _, fr := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		idx := int(fr*float64(n)) - 1
		if idx < 0 {
			idx = 0
		}
		row := []string{f2(fr)}
		for _, name := range r.Order {
			row = append(row, f2(r.Gains[name][idx])+"x")
		}
		rows = append(rows, row)
	}
	return WriteTable(w,
		fmt.Sprintf("Figure 8(c): cumulative frequency of gain over Naive — lab dataset (%d queries)", n),
		header, rows)
}

func runCost(ctx context.Context, s *schema.Schema, p *plan.Node, q query.Query, test *table.Table) (float64, error) {
	res, err := exec.Execute(ctx, exec.Request{
		Schema: s, Plan: p, Query: q,
		Options: exec.Options{Source: exec.NewTableSource(test, 0)},
	})
	if err != nil {
		return 0, err
	}
	if res.Mismatches != 0 {
		// A planner bug would silently skew every figure; fail loudly.
		panic(fmt.Sprintf("experiments: plan mismatches ground truth on %d tuples", res.Mismatches))
	}
	return res.MeanCost(), nil
}

package experiments

import (
	"fmt"
	"io"

	"acqp/internal/model"
	"acqp/internal/opt"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// AblationRow is one oracle backing's aggregate over the lab workload.
type AblationRow struct {
	Backing   string
	TrainRows int
	AvgCost   float64
	VsNaive   float64 // Naive cost / this backing's cost, averaged
}

// AblationResult is the Section 7 graphical-models study: the same
// Heuristic-5 planner run against three probability oracles — raw
// empirical counts, a Chow-Liu tree model, and a full-independence model —
// at two training sizes. Expected shape: Chow-Liu tracks the empirical
// oracle (and is more robust at small training sizes, where deep
// conditioning starves raw counts); the independence model cannot see
// correlations, so it degenerates toward Naive-quality plans.
type AblationResult struct {
	Queries int
	Rows    []AblationRow
}

// ModelAblation runs the study.
func ModelAblation(e *Env) (AblationResult, error) {
	w := e.labWorld(e.LabQueryCount())
	s := w.train.Schema()
	// A uniform subsample (not a prefix, which would carry a time-of-day
	// bias) simulating a deployment with little history.
	small := w.train.Sample(w.train.NumRows() / 400)
	smallRows := small.NumRows()

	type backing struct {
		name string
		rows int
		dist stats.Dist
	}
	fit := func(name string, tbl *table.Table) stats.Dist {
		d, err := model.Fit(name, tbl, model.Opts{})
		if err != nil {
			// The generators always produce non-empty tables and the names
			// are registry constants; a failure here is a programming bug.
			panic("experiments: " + err.Error())
		}
		return d
	}
	backings := []backing{
		{"empirical (full)", w.train.NumRows(), fit(model.NameEmpirical, w.train)},
		{"chow-liu (full)", w.train.NumRows(), fit(model.NameChowLiu, w.train)},
		{"independent (full)", w.train.NumRows(), fit(model.NameIndependent, w.train)},
		{"empirical (small)", smallRows, fit(model.NameEmpirical, small)},
		{"chow-liu (small)", smallRows, fit(model.NameChowLiu, small)},
	}
	res := AblationResult{Queries: len(w.queries)}
	naive := opt.NaivePlanner{}
	naiveCosts := make([]float64, len(w.queries))
	for qi, q := range w.queries {
		node, _, err := naive.Plan(e.ctx(), w.dist, q)
		if err != nil {
			return res, err
		}
		naiveCosts[qi], err = runCost(e.ctx(), s, node, q, w.test)
		if err != nil {
			return res, err
		}
	}
	for _, b := range backings {
		heur := heuristicPlanner(s, 5)
		var costSum, gainSum float64
		for qi, q := range w.queries {
			node, _, err := heur.Plan(e.ctx(), b.dist, q)
			if err != nil {
				return res, err
			}
			c, err := runCost(e.ctx(), s, node, q, w.test)
			if err != nil {
				return res, err
			}
			costSum += c
			if c > 0 {
				gainSum += naiveCosts[qi] / c
			}
		}
		n := float64(len(w.queries))
		res.Rows = append(res.Rows, AblationRow{
			Backing: b.name, TrainRows: b.rows,
			AvgCost: costSum / n, VsNaive: gainSum / n,
		})
	}
	return res, nil
}

// WriteTable renders the study.
func (r AblationResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{row.Backing, fmt.Sprintf("%d", row.TrainRows), f1(row.AvgCost), f2(row.VsNaive) + "x"}
	}
	return WriteTable(w,
		fmt.Sprintf("Section 7 ablation: probability oracle backing for Heuristic-5 (%d queries)", r.Queries),
		[]string{"oracle", "train rows", "avg test cost", "gain vs naive"},
		rows)
}

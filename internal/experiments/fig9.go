package experiments

import (
	"fmt"
	"io"

	"acqp/internal/datagen"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
)

// Fig9Result is the detailed plan study of Figure 9: the conditional plan
// generated for a query looking for instances that are bright, cool, and
// dry in the lab, with the gain over Naive.
type Fig9Result struct {
	Query       string
	Rendered    string
	Dot         string
	Splits      int
	PlanBytes   int
	HeurCost    float64
	NaiveCost   float64
	CorrSeqCost float64
}

// Gain returns the cost ratio of Naive over the conditional plan.
func (r Fig9Result) Gain() float64 {
	if r.HeurCost == 0 {
		return 0
	}
	return r.NaiveCost / r.HeurCost
}

// Fig9 reproduces the Figure 9 plan study: a "bright, cool, dry" query
// (someone working in the lab at night) planned by the heuristic.
func Fig9(e *Env) (Fig9Result, error) {
	w := e.labWorld(1)
	s := w.train.Schema()
	q, err := brightCoolDryQuery(s)
	if err != nil {
		return Fig9Result{}, err
	}

	heur := heuristicPlanner(s, 6)
	node, _, err := heur.Plan(e.ctx(), w.dist, q)
	if err != nil {
		return Fig9Result{}, err
	}
	naive, _, err := opt.NaivePlanner{}.Plan(e.ctx(), w.dist, q)
	if err != nil {
		return Fig9Result{}, err
	}
	corr, _, err := (opt.CorrSeqPlanner{Alg: opt.SeqOpt}).Plan(e.ctx(), w.dist, q)
	if err != nil {
		return Fig9Result{}, err
	}
	heurCost, err := runCost(e.ctx(), s, node, q, w.test)
	if err != nil {
		return Fig9Result{}, err
	}
	naiveCost, err := runCost(e.ctx(), s, naive, q, w.test)
	if err != nil {
		return Fig9Result{}, err
	}
	corrCost, err := runCost(e.ctx(), s, corr, q, w.test)
	if err != nil {
		return Fig9Result{}, err
	}
	return Fig9Result{
		Query:       q.Format(s),
		Rendered:    plan.Render(node, s),
		Dot:         plan.Dot(node, s),
		Splits:      node.NumSplits(),
		PlanBytes:   plan.Size(node),
		HeurCost:    heurCost,
		NaiveCost:   naiveCost,
		CorrSeqCost: corrCost,
	}, nil
}

// brightCoolDryQuery builds the Figure 9 query: relatively high light,
// cool temperature, low humidity.
func brightCoolDryQuery(s *schema.Schema) (query.Query, error) {
	light := s.Attr(datagen.LabLight)
	temp := s.Attr(datagen.LabTemp)
	hum := s.Attr(datagen.LabHumidity)
	return query.NewQuery(s,
		// bright: light >= ~250 Lux
		query.Pred{Attr: datagen.LabLight, R: query.Range{
			Lo: light.Disc.Bin(250), Hi: schema.Value(light.K - 1)}},
		// cool: temp <= ~21 C
		query.Pred{Attr: datagen.LabTemp, R: query.Range{
			Lo: 0, Hi: temp.Disc.Bin(21)}},
		// dry: humidity <= ~40%
		query.Pred{Attr: datagen.LabHumidity, R: query.Range{
			Lo: 0, Hi: hum.Disc.Bin(40)}},
	)
}

// WriteTable renders the study.
func (r Fig9Result) WriteTable(w io.Writer) error {
	_, err := fmt.Fprintf(w,
		"Figure 9: conditional plan for %q\n\n%s\nsplits=%d plan-size=%dB\n"+
			"test cost: heuristic=%.1f corrseq=%.1f naive=%.1f (gain over naive: %.2fx)\n",
		r.Query, r.Rendered, r.Splits, r.PlanBytes, r.HeurCost, r.CorrSeqCost, r.NaiveCost, r.Gain())
	return err
}

// Package experiments reproduces every figure of the paper's evaluation
// (Section 6): Figure 8(a)-(c) on the lab dataset, the Figure 9 plan
// study, Figures 10-11 on the garden datasets, Figure 12 on the synthetic
// dataset, the Section 6.4 scalability study (whose graphs the paper
// omitted for space), plus two beyond-paper studies: the Section 2.4
// plan-size/energy trade-off and a Section 7 graphical-model ablation.
//
// Each experiment returns a typed result with a WriteTable method; the
// cmd/acqbench binary and the repository's benchmarks drive them.
package experiments

import (
	"context"

	"acqp/internal/datagen"
	"acqp/internal/table"
)

// Scale selects experiment sizes: Quick for CI-speed smoke runs, Full for
// paper-scale runs.
type Scale int

// Experiment scales.
const (
	Quick Scale = iota
	Full
)

func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// Env carries the experiment configuration and caches generated datasets
// so a multi-figure run builds each world once.
type Env struct {
	Scale Scale

	// Ctx, when non-nil, bounds every planner invocation of the run:
	// cancelling it (e.g. via acqbench -timeout) aborts the experiment
	// with the context's error instead of running to completion.
	Ctx context.Context

	lab      *table.Table
	garden5  *table.Table
	garden11 *table.Table
}

// NewEnv returns an environment at the given scale.
func NewEnv(s Scale) *Env { return &Env{Scale: s} }

// ctx returns the run's cancellation context, defaulting to Background.
func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background() //acqlint:ignore ctxbg documented default when Env.Ctx is unset; callers opt in by leaving it nil
}

// TrainFrac is the fraction of each dataset used as the training window;
// the remainder is the disjoint test window (Section 6, "Test v.
// Training").
const TrainFrac = 0.6

// LabConfig returns the lab generator configuration for the scale.
func (e *Env) LabConfig() datagen.LabConfig {
	cfg := datagen.DefaultLabConfig()
	if e.Scale == Quick {
		cfg.Motes = 10
		cfg.Rows = 24_000
		cfg.QuietMotes = 3
	} else {
		cfg.Rows = 200_000
	}
	return cfg
}

// Lab returns the (cached) lab dataset.
func (e *Env) Lab() *table.Table {
	if e.lab == nil {
		e.lab = datagen.Lab(e.LabConfig())
	}
	return e.lab
}

// Garden returns the (cached) garden dataset with the given mote count
// (5 or 11).
func (e *Env) Garden(motes int) *table.Table {
	cfg := datagen.DefaultGardenConfig(motes)
	if e.Scale == Quick {
		cfg.Rows = 6_000
	}
	switch motes {
	case 5:
		if e.garden5 == nil {
			e.garden5 = datagen.Garden(cfg)
		}
		return e.garden5
	case 11:
		if e.garden11 == nil {
			e.garden11 = datagen.Garden(cfg)
		}
		return e.garden11
	default:
		return datagen.Garden(cfg)
	}
}

// LabQueryCount returns the number of lab workload queries (the paper
// runs 95).
func (e *Env) LabQueryCount() int {
	if e.Scale == Quick {
		return 10
	}
	return 95
}

// GardenQueryCount returns the number of garden workload queries (the
// paper runs 90).
func (e *Env) GardenQueryCount() int {
	if e.Scale == Quick {
		return 10
	}
	return 90
}

// SynthRows returns the synthetic dataset size.
func (e *Env) SynthRows() int {
	if e.Scale == Quick {
		return 8_000
	}
	return 60_000
}

package experiments

import (
	"context"
	"fmt"
	"io"
	"reflect"

	"acqp/internal/exec"
	"acqp/internal/fault"
	"acqp/internal/model"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// faultSeed makes the whole study reproducible: the same seed drives
// every injector, so reruns print identical tables.
const faultSeed = 2005

// FaultRow is one (failure rate, fallback policy) cell of the study.
type FaultRow struct {
	Rate         float64 // per-acquisition transient-failure probability
	Policy       string
	MeanCost     float64 // mean acquisition cost per tuple, retries included
	RetryShare   float64 // fraction of total cost charged to retries/backoff
	AnsweredFrac float64 // tuples answered (not abstained) / tuples
	Accuracy     float64 // correct answers / answered tuples
	Retries      int
	Failures     int
	Imputed      int
	Replans      int
	WrongAnswers int // fault-induced false positives + false negatives
}

// FaultStudyResult is the robustness study: mean cost and answer quality
// versus failure rate under the three fallback policies. Expected shape:
// Abstain keeps accuracy at 1 but answers ever fewer tuples as the rate
// climbs; Impute and Replan answer every tuple at a bounded extra cost,
// trading a small accuracy loss (Impute leans on the Chow-Liu
// correlations, Replan on the residual predicates).
type FaultStudyResult struct {
	Queries int
	Tuples  int
	Rows    []FaultRow
}

// FaultStudy runs the fault-injection sweep on the lab dataset. Beyond
// producing the table it enforces the study's invariants — rate-zero runs
// match the fault-free executor exactly, costs stay non-negative, plans
// never mismatch ground truth on untouched tuples, fallback policies
// answer strictly more than Abstain once faults flow, and a repeated
// seeded run reproduces bit-identical results — returning an error on any
// violation so CI can gate on it.
func FaultStudy(e *Env) (FaultStudyResult, error) {
	queries := 5
	rates := []float64{0, 0.05, 0.1, 0.2, 0.4}
	if e.Scale == Full {
		queries = 20
		rates = []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4}
	}
	w := e.labWorld(queries)
	s := w.train.Schema()
	imputeModel, err := model.Fit(model.NameChowLiu, w.train, model.Opts{})
	if err != nil {
		return FaultStudyResult{}, err
	}
	heur := heuristicPlanner(s, 5)
	replanner := func(failed []bool, residual query.Query) (*plan.Node, error) {
		if len(residual.Preds) == 0 {
			return plan.NewLeaf(true), nil
		}
		node, _, err := opt.CorrSeqPlanner{Alg: opt.SeqGreedy}.Plan(e.ctx(), w.dist, residual)
		return node, err
	}

	plans := make([]*plan.Node, len(w.queries))
	for qi, q := range w.queries {
		node, _, err := heur.Plan(e.ctx(), w.dist, q)
		if err != nil {
			return FaultStudyResult{}, err
		}
		plans[qi] = node
	}

	res := FaultStudyResult{Queries: len(w.queries), Tuples: w.test.NumRows() * len(w.queries)}
	policies := []exec.FallbackPolicy{exec.Abstain, exec.Impute, exec.Replan}
	for _, rate := range rates {
		answered := map[exec.FallbackPolicy]int{}
		costs := map[exec.FallbackPolicy]float64{}
		for _, policy := range policies {
			agg := FaultRow{Rate: rate, Policy: policy.String(), Accuracy: 1}
			var totalCost, retryCost float64
			var answeredSum, correctSum, tuples int
			for qi, q := range w.queries {
				inj := fault.NewInjector(s.NumAttrs(), faultSeed)
				if err := inj.SetAll(fault.AttrFault{PTransient: rate}); err != nil {
					return res, err
				}
				cfg := exec.FaultConfig{Injector: inj, Retrier: fault.DefaultRetrier(), Policy: policy}
				switch policy {
				case exec.Impute:
					cfg.Model = imputeModel
				case exec.Replan:
					cfg.Replanner = replanner
				}
				fr, err := runFaulty(e.ctx(), s, plans[qi], q, w.test, cfg)
				if err != nil {
					return res, err
				}
				if err := checkFaultRun(e.ctx(), plans[qi], q, w, rate, cfg, fr); err != nil {
					return res, err
				}
				totalCost += fr.TotalCost
				retryCost += fr.RetryCost
				tuples += fr.Tuples
				answeredSum += fr.Answered()
				correctSum += fr.Answered() - fr.FalsePositives - fr.FalseNegatives
				agg.Retries += fr.Retries
				agg.Failures += fr.Failures
				agg.Imputed += fr.Imputed
				agg.Replans += fr.Replans
				agg.WrongAnswers += fr.FalsePositives + fr.FalseNegatives
			}
			agg.MeanCost = totalCost / float64(tuples)
			if totalCost > 0 {
				agg.RetryShare = retryCost / totalCost
			}
			agg.AnsweredFrac = float64(answeredSum) / float64(tuples)
			if answeredSum > 0 {
				agg.Accuracy = float64(correctSum) / float64(answeredSum)
			}
			answered[policy] = answeredSum
			costs[policy] = totalCost
			res.Rows = append(res.Rows, agg)
		}
		if rate > 0 {
			// The point of imputation and replanning: strictly more answers
			// than abstention, at a bounded cost overhead.
			for _, p := range []exec.FallbackPolicy{exec.Impute, exec.Replan} {
				if answered[p] <= answered[exec.Abstain] {
					return res, fmt.Errorf("experiments: faults: %v answered %d tuples at rate %g, abstain answered %d",
						p, answered[p], rate, answered[exec.Abstain])
				}
				if costs[p] > 3*costs[exec.Abstain] {
					return res, fmt.Errorf("experiments: faults: %v cost %.1f at rate %g exceeds 3x abstain cost %.1f",
						p, costs[p], rate, costs[exec.Abstain])
				}
			}
		}
	}
	return res, nil
}

// runFaulty executes one fault-injected run through the unified executor
// and converts to the legacy accounting shape the study compares on.
func runFaulty(ctx context.Context, s *schema.Schema, node *plan.Node, q query.Query, test *table.Table, cfg exec.FaultConfig) (exec.FaultResult, error) {
	res, err := exec.Execute(ctx, exec.Request{
		Schema: s, Plan: node, Query: q,
		Options: exec.Options{Source: exec.NewTableSource(test, 0), Faults: &cfg, Profile: cfg.Profile},
	})
	if err != nil {
		return exec.FaultResult{}, err
	}
	return res.AsFaultResult(), nil
}

// checkFaultRun enforces the per-run invariants the study gates on.
func checkFaultRun(ctx context.Context, node *plan.Node, q query.Query, w labWorld, rate float64, cfg exec.FaultConfig, fr exec.FaultResult) error {
	if fr.TotalCost < 0 || fr.RetryCost < 0 || fr.MaxCost < 0 {
		return fmt.Errorf("experiments: faults: negative cost at rate %g policy %v: %+v", rate, cfg.Policy, fr)
	}
	if fr.Mismatches != 0 {
		// Untouched tuples answered wrongly would be a planner bug, not a
		// fault artifact; the executor reports those separately from FP/FN.
		return fmt.Errorf("experiments: faults: %d plan mismatches at rate %g policy %v", fr.Mismatches, rate, cfg.Policy)
	}
	if rate == 0 {
		pristine, err := exec.Execute(ctx, exec.Request{
			Schema: w.train.Schema(), Plan: node, Query: q,
			Options: exec.Options{Source: exec.NewTableSource(w.test, 0)},
		})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(fr.Result, pristine) {
			return fmt.Errorf("experiments: faults: rate-zero run diverges from fault-free executor for policy %v", cfg.Policy)
		}
	}
	again, err := runFaulty(ctx, w.train.Schema(), node, q, w.test, cfg)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(fr, again) {
		return fmt.Errorf("experiments: faults: seeded rerun not reproducible at rate %g policy %v", rate, cfg.Policy)
	}
	return nil
}

// WriteTable renders the study.
func (r FaultStudyResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			f2(row.Rate), row.Policy, f1(row.MeanCost), f3(row.RetryShare),
			f3(row.AnsweredFrac), f3(row.Accuracy),
			fmt.Sprintf("%d", row.Retries), fmt.Sprintf("%d", row.Failures),
			fmt.Sprintf("%d", row.Imputed), fmt.Sprintf("%d", row.Replans),
			fmt.Sprintf("%d", row.WrongAnswers),
		}
	}
	return WriteTable(w,
		fmt.Sprintf("Fault study: cost and answer quality vs failure rate — lab dataset (%d queries, %d tuple-runs)", r.Queries, r.Tuples),
		[]string{"p_fail", "policy", "mean cost", "retry share", "answered", "accuracy", "retries", "failures", "imputed", "replans", "wrong"},
		rows)
}

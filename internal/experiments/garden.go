package experiments

import (
	"fmt"
	"io"
	"sort"

	"acqp/internal/opt"
	"acqp/internal/stats"
	"acqp/internal/workload"
)

// GardenResult reproduces Figures 10 and 11: per-query test-cost ratios of
// Naive and CorrSeq over the Heuristic conditional planner on the garden
// datasets.
type GardenResult struct {
	Motes   int
	Preds   int
	Queries int
	// RatioNaive[i] is query i's Naive cost / Heuristic cost (sorted
	// descending); >1 means the conditional plan wins.
	RatioNaive   []float64
	RatioCorrSeq []float64
}

// gardenHeuristicSPSF mirrors the paper's "SPSF set to 10^n": 10 split
// points per attribute.
const gardenHeuristicSPSF = 10

// Garden runs the Figure 10 (motes = 5) or Figure 11 (motes = 11)
// experiment.
func Garden(e *Env, motes int) (GardenResult, error) {
	tbl := e.Garden(motes)
	train, test := tbl.Split(TrainFrac)
	s := tbl.Schema()
	cfg := workload.DefaultGardenQueryConfig(motes)
	cfg.Count = e.GardenQueryCount()
	queries := workload.GardenQueries(train, cfg)
	// Planning cost is linear in the historical data (Section 5), so a
	// uniform subsample preserves plan quality while bounding runtime.
	const maxPlanRows = 8_000
	if train.NumRows() > maxPlanRows {
		train = train.Sample(train.NumRows()/maxPlanRows + 1)
	}
	d := stats.NewEmpirical(train)

	heur := opt.GreedyPlanner{Greedy: opt.Greedy{
		SPSF:      opt.UniformSPSFSame(s, gardenHeuristicSPSF),
		MaxSplits: 10,
		Base:      opt.SeqGreedy, // the paper uses GreedySeq base plans for garden
	}}
	naive := opt.NaivePlanner{}
	corr := opt.CorrSeqPlanner{Alg: opt.SeqGreedy}

	res := GardenResult{Motes: motes, Preds: 2 * motes, Queries: len(queries)}
	for _, q := range queries {
		hNode, _, err := heur.Plan(e.ctx(), d, q)
		if err != nil {
			return res, err
		}
		hCost, err := runCost(e.ctx(), s, hNode, q, test)
		if err != nil {
			return res, err
		}
		nNode, _, err := naive.Plan(e.ctx(), d, q)
		if err != nil {
			return res, err
		}
		cNode, _, err := corr.Plan(e.ctx(), d, q)
		if err != nil {
			return res, err
		}
		if hCost <= 0 {
			continue
		}
		nCost, err := runCost(e.ctx(), s, nNode, q, test)
		if err != nil {
			return res, err
		}
		cCost, err := runCost(e.ctx(), s, cNode, q, test)
		if err != nil {
			return res, err
		}
		res.RatioNaive = append(res.RatioNaive, nCost/hCost)
		res.RatioCorrSeq = append(res.RatioCorrSeq, cCost/hCost)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(res.RatioNaive)))
	sort.Sort(sort.Reverse(sort.Float64Slice(res.RatioCorrSeq)))
	return res, nil
}

// Summary aggregates a ratio series.
type Summary struct {
	Max, Median, Mean float64
	FracAbove1        float64 // fraction of queries where Heuristic wins
	FracBelow09       float64 // fraction where Heuristic loses by >10%
}

// Summarize computes the aggregate view of a sorted-descending series.
func Summarize(sorted []float64) Summary {
	if len(sorted) == 0 {
		return Summary{}
	}
	s := Summary{Max: sorted[0], Median: sorted[len(sorted)/2]}
	for _, v := range sorted {
		s.Mean += v
		if v > 1 {
			s.FracAbove1++
		}
		if v < 0.9 {
			s.FracBelow09++
		}
	}
	n := float64(len(sorted))
	s.Mean /= n
	s.FracAbove1 /= n
	s.FracBelow09 /= n
	return s
}

// WriteTable renders the result.
func (r GardenResult) WriteTable(w io.Writer) error {
	rows := [][]string{}
	for _, sr := range []struct {
		name   string
		series []float64
	}{
		{"CorrSeq / Heuristic", r.RatioCorrSeq},
		{"Naive / Heuristic", r.RatioNaive},
	} {
		s := Summarize(sr.series)
		rows = append(rows, []string{
			sr.name, f2(s.Mean), f2(s.Median), f2(s.Max),
			fmt.Sprintf("%.0f%%", s.FracAbove1*100),
			fmt.Sprintf("%.0f%%", s.FracBelow09*100),
		})
	}
	return WriteTable(w,
		fmt.Sprintf("Figure %d: Garden-%d (%d-predicate queries, %d queries) — cost ratio over Heuristic-10",
			map[int]int{5: 10, 11: 11}[r.Motes], r.Motes, r.Preds, r.Queries),
		[]string{"series", "mean", "median", "max", "heuristic wins", "loses >10%"},
		rows)
}

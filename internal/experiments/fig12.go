package experiments

import (
	"fmt"
	"io"

	"acqp/internal/datagen"
	"acqp/internal/opt"
	"acqp/internal/stats"
)

// Fig12Setting is one of the four synthetic parameter settings of
// Section 6.3.
type Fig12Setting struct {
	Gamma, N int
}

// Fig12Settings are the paper's four settings, yielding queries with 5,
// 7, 20, and 30 predicates respectively.
var Fig12Settings = []Fig12Setting{
	{Gamma: 1, N: 10},
	{Gamma: 3, N: 10},
	{Gamma: 1, N: 40},
	{Gamma: 3, N: 40},
}

// Fig12Point is one (setting, sel) measurement: mean test cost per tuple
// for each planner.
type Fig12Point struct {
	Setting  Fig12Setting
	Sel      float64
	Naive    float64
	CorrSeq  float64
	Heur5    float64
	Heur10   float64
	NumPreds int
}

// Fig12Result holds the full sweep.
type Fig12Result struct {
	Points []Fig12Point
}

// Fig12Sels is the selectivity sweep; the paper plots execution cost
// against the unconditional selectivity of the predicates.
var Fig12Sels = []float64{0.5, 0.6, 0.7, 0.8, 0.9}

// Fig12 reproduces Figure 12: plan cost versus predicate selectivity on
// the synthetic dataset for the four (Gamma, n) settings.
func Fig12(e *Env) (Fig12Result, error) {
	var res Fig12Result
	settings := Fig12Settings
	sels := Fig12Sels
	if e.Scale == Quick {
		settings = []Fig12Setting{{Gamma: 1, N: 10}, {Gamma: 3, N: 10}}
		sels = []float64{0.5, 0.7, 0.9}
	}
	for _, st := range settings {
		for _, sel := range sels {
			cfg := datagen.SynthConfig{
				N: st.N, Gamma: st.Gamma, Sel: sel,
				Rows: e.SynthRows(), Seed: int64(1000*st.N + 10*st.Gamma + int(sel*10)),
			}
			tbl := datagen.Synthetic(cfg)
			train, test := tbl.Split(TrainFrac)
			s := tbl.Schema()
			q := datagen.SynthQuery(s)
			d := stats.NewEmpirical(train)

			point := Fig12Point{Setting: st, Sel: sel, NumPreds: q.NumPreds()}
			spsf := opt.FullSPSF(s) // binary domains: the full SPSF is tiny
			planners := []struct {
				target *float64
				p      opt.Planner
			}{
				{&point.Naive, opt.NaivePlanner{}},
				{&point.CorrSeq, opt.CorrSeqPlanner{Alg: opt.SeqGreedy}},
				{&point.Heur5, opt.GreedyPlanner{Greedy: opt.Greedy{SPSF: spsf, MaxSplits: 5, Base: opt.SeqGreedy}}},
				{&point.Heur10, opt.GreedyPlanner{Greedy: opt.Greedy{SPSF: spsf, MaxSplits: 10, Base: opt.SeqGreedy}}},
			}
			for _, pl := range planners {
				node, _, err := pl.p.Plan(e.ctx(), d, q)
				if err != nil {
					return res, err
				}
				*pl.target, err = runCost(e.ctx(), s, node, q, test)
				if err != nil {
					return res, err
				}
			}
			res.Points = append(res.Points, point)
		}
	}
	return res, nil
}

// WriteTable renders the sweep, one block per setting.
func (r Fig12Result) WriteTable(w io.Writer) error {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			fmt.Sprintf("G=%d n=%d m=%d", p.Setting.Gamma, p.Setting.N, p.NumPreds),
			f2(p.Sel), f1(p.Naive), f1(p.CorrSeq), f1(p.Heur5), f1(p.Heur10),
			f2(p.Naive / p.Heur10),
		})
	}
	return WriteTable(w,
		"Figure 12: synthetic dataset — mean test cost per tuple vs selectivity",
		[]string{"setting", "sel", "Naive", "CorrSeq", "Heuristic-5", "Heuristic-10", "Naive/H10"},
		rows)
}

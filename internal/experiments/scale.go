package experiments

import (
	"context"

	"fmt"
	"io"
	"math/rand"
	"time"

	"acqp/internal/datagen"
	"acqp/internal/opt"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// ScaleResult is the Section 6.4 scalability study, whose graphs the paper
// omitted for space: planner runtime (and exhaustive subproblem counts)
// versus historical-data size, attribute domain size, and the number of
// query predicates. Expected shapes (Sections 3.2, 4.2.3, 5): heuristic
// linear in |D| and domain size, exponential (base 2) in predicates with
// the OptSeq base; exhaustive exponential with the domain size as the
// exponent base.
type ScaleResult struct {
	DataRows  []ScalePoint // vary |D|
	DomainK   []ScalePoint // vary K
	NumPreds  []ScalePoint // vary m
	Exhausted []ScalePoint // exhaustive: vary K, report subproblems
}

// ScalePoint is one measurement.
type ScalePoint struct {
	X           int
	HeuristicMS float64
	ExhaustedMS float64
	Subproblems int
}

// scaleWorld builds a synthetic-style correlated dataset with the given
// shape: one cheap attribute plus m expensive query attributes, domain
// size k each, rows rows.
func scaleWorld(m, k, rows int, seed int64) (*stats.Empirical, query.Query) {
	cfg := datagen.SynthConfig{N: m + 1, Gamma: m, Sel: 0.5, Rows: rows, Seed: seed}
	if k == 2 {
		tbl := datagen.Synthetic(cfg)
		return stats.NewEmpirical(tbl), datagen.SynthQuery(tbl.Schema())
	}
	// Larger domains: scale the binary synthetic data up to K values by
	// adding uniform within-bucket detail — value = bit*K/2 + detail —
	// preserving the group correlation at bucket granularity.
	tbl := datagen.Synthetic(cfg)
	s := tbl.Schema()
	big := schema.New()
	for j := 0; j < s.NumAttrs(); j++ {
		big.MustAdd(schema.Attribute{Name: s.Name(j), K: k, Cost: s.Cost(j)})
	}
	rng := rand.New(rand.NewSource(seed + 99))
	out := table.New(big, tbl.NumRows())
	half := k / 2
	row := make([]schema.Value, s.NumAttrs())
	for r := 0; r < tbl.NumRows(); r++ {
		for j := 0; j < s.NumAttrs(); j++ {
			row[j] = schema.Value(int(tbl.Value(r, j))*half + rng.Intn(half))
		}
		out.MustAppendRow(row)
	}
	preds := make([]query.Pred, 0, m)
	for j := 0; j < s.NumAttrs(); j++ {
		if s.Cost(j) > datagen.CheapCost {
			preds = append(preds, query.Pred{Attr: j, R: query.Range{
				Lo: schema.Value(half), Hi: schema.Value(k - 1)}})
		}
	}
	return stats.NewEmpirical(out), query.MustNewQuery(big, preds...)
}

// Scalability runs the study.
func Scalability(e *Env) (ScaleResult, error) {
	var res ScaleResult
	baseRows := 40_000
	rowSteps := []int{10_000, 20_000, 40_000, 80_000}
	kSteps := []int{4, 8, 16, 32}
	mSteps := []int{2, 4, 6, 8, 10}
	exSteps := []int{2, 3, 4, 5, 6}
	if e.Scale == Quick {
		baseRows = 8_000
		rowSteps = []int{2_000, 4_000, 8_000}
		kSteps = []int{4, 8, 16}
		mSteps = []int{2, 4, 6}
		exSteps = []int{2, 3, 4}
	}

	// Heuristic runtime vs dataset size (m=4, K=2).
	for _, rows := range rowSteps {
		d, q := scaleWorld(4, 2, rows, 31)
		ms := timePlanner(e.ctx(), heuristicFor(d), d, q)
		res.DataRows = append(res.DataRows, ScalePoint{X: rows, HeuristicMS: ms})
	}
	// Heuristic runtime vs domain size (m=4).
	for _, k := range kSteps {
		d, q := scaleWorld(4, k, baseRows, 32)
		ms := timePlanner(e.ctx(), heuristicFor(d), d, q)
		res.DomainK = append(res.DomainK, ScalePoint{X: k, HeuristicMS: ms})
	}
	// Heuristic runtime vs number of predicates (K=2, OptSeq base:
	// exponential in m).
	for _, m := range mSteps {
		d, q := scaleWorld(m, 2, baseRows, 33)
		ms := timePlanner(e.ctx(), heuristicFor(d), d, q)
		res.NumPreds = append(res.NumPreds, ScalePoint{X: m, HeuristicMS: ms})
	}
	// Exhaustive subproblems vs domain size (m=3 query attributes).
	for _, k := range exSteps {
		d, q := scaleWorld(3, k, baseRows/4, 34)
		ex := opt.Exhaustive{SPSF: opt.FullSPSF(d.Schema()), Budget: 5_000_000}
		start := time.Now()
		_, _, err := ex.Plan(e.ctx(), d, q)
		elapsed := float64(time.Since(start).Microseconds()) / 1000
		p := ScalePoint{X: k, ExhaustedMS: elapsed, Subproblems: ex.Expanded()}
		if err != nil {
			p.Subproblems = -1 // budget exceeded
		}
		res.Exhausted = append(res.Exhausted, p)
	}
	return res, nil
}

func heuristicFor(d *stats.Empirical) opt.Planner {
	return opt.GreedyPlanner{Greedy: opt.Greedy{
		SPSF:      opt.UniformSPSFSame(d.Schema(), 8),
		MaxSplits: 5,
		Base:      opt.SeqOpt,
	}}
}

func timePlanner(ctx context.Context, p opt.Planner, d stats.Dist, q query.Query) float64 {
	start := time.Now()
	if _, _, err := p.Plan(ctx, d, q); err != nil {
		return -1
	}
	return float64(time.Since(start).Microseconds()) / 1000
}

// WriteTable renders the study.
func (r ScaleResult) WriteTable(w io.Writer) error {
	section := func(title, xname string, pts []ScalePoint, exhaustive bool) error {
		rows := make([][]string, len(pts))
		for i, p := range pts {
			if exhaustive {
				rows[i] = []string{fmt.Sprintf("%d", p.X), f1(p.ExhaustedMS), fmt.Sprintf("%d", p.Subproblems)}
			} else {
				rows[i] = []string{fmt.Sprintf("%d", p.X), f1(p.HeuristicMS)}
			}
		}
		header := []string{xname, "heuristic ms"}
		if exhaustive {
			header = []string{xname, "exhaustive ms", "subproblems"}
		}
		return WriteTable(w, title, header, rows)
	}
	if err := section("Section 6.4: heuristic runtime vs |D| (expect linear)", "rows", r.DataRows, false); err != nil {
		return err
	}
	if err := section("Section 6.4: heuristic runtime vs domain size K (expect ~linear)", "K", r.DomainK, false); err != nil {
		return err
	}
	if err := section("Section 6.4: heuristic runtime vs #predicates (OptSeq base: exponential)", "m", r.NumPreds, false); err != nil {
		return err
	}
	return section("Section 6.4: exhaustive subproblems vs domain size (exponential, base K)", "K", r.Exhausted, true)
}

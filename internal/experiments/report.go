package experiments

import (
	"fmt"
	"io"
	"strings"
)

// WriteTable renders an aligned text table: the output format of
// cmd/acqbench and the experiment result WriteTable methods.
func WriteTable(w io.Writer, title string, header []string, rows [][]string) error {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title + "\n")
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	writeRow(header)
	total := len(widths)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	sb.WriteString(strings.Repeat("-", total) + "\n")
	for _, row := range rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// f3 formats a float with three decimals.
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats a float with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats a float with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }

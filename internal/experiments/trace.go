package experiments

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"reflect"
	"time"

	"acqp/internal/exec"
	"acqp/internal/plan"
	"acqp/internal/trace"
)

// TraceRow is one query of the trace study: the plan's per-node cost
// heatmap summarized as its hottest node, plus the predicted-vs-observed
// per-tuple cost drift.
type TraceRow struct {
	Query      int
	Nodes      int     // plan nodes (pre-order count)
	Splits     int     // conditioning splits
	Predicted  float64 // planner's expected per-tuple cost (training dist)
	Observed   float64 // measured mean per-tuple cost on the test window
	DriftPct   float64 // (observed - predicted) / predicted
	HotNode    int     // node ID carrying the largest observed cost
	HotLabel   string
	HotShare   float64 // fraction of the total cost charged to HotNode
	Candidates int64   // planner search counter for this query's run
	Pruned     int64
}

// TraceStudyResult is the tracing study: the per-node attribution the
// trace subsystem produces, validated against the untraced planner and
// executor. Expected shape: observed cost tracks predicted cost within
// the train/test sampling error, and most plans concentrate their cost
// on one hot node (the first expensive-attribute acquisition).
type TraceStudyResult struct {
	Queries int
	Tuples  int
	Rows    []TraceRow
}

// TraceStudy plans and profiles the lab workload. Beyond producing the
// table it enforces the tracing invariants — a span never changes the
// planner's output (byte-identical encoding, bit-identical cost), a
// profiled run returns exactly the unprofiled executor's Result, and the
// per-node observed costs sum bit-exactly to the executor's total (lab
// acquisition costs are integers, so no rounding slack is tolerated) —
// returning an error on any violation so CI can gate on it.
func TraceStudy(e *Env) (TraceStudyResult, error) {
	w := e.labWorld(e.LabQueryCount())
	s := w.train.Schema()
	heur := heuristicPlanner(s, 5)

	res := TraceStudyResult{Queries: len(w.queries), Tuples: w.test.NumRows() * len(w.queries)}
	for qi, q := range w.queries {
		node, cost, err := heur.Plan(e.ctx(), w.dist, q)
		if err != nil {
			return res, err
		}
		sp := trace.NewSpan(time.Now)
		tnode, tcost, err := heur.Plan(trace.NewContext(e.ctx(), sp), w.dist, q)
		if err != nil {
			return res, err
		}
		if math.Float64bits(cost) != math.Float64bits(tcost) {
			return res, fmt.Errorf("experiments: trace: query %d traced plan cost differs: %v vs %v", qi, tcost, cost)
		}
		if !bytes.Equal(plan.Encode(node), plan.Encode(tnode)) {
			return res, fmt.Errorf("experiments: trace: query %d traced plan differs from untraced plan", qi)
		}

		nodes := node.Preorder()
		prof := trace.NewExecProfile(len(nodes), s.NumAttrs())
		got, err := exec.Execute(e.ctx(), exec.Request{
			Schema: s, Plan: node, Query: q,
			Options: exec.Options{Source: exec.NewTableSource(w.test, 0), Profile: prof},
		})
		if err != nil {
			return res, err
		}
		want, err := exec.Execute(e.ctx(), exec.Request{
			Schema: s, Plan: node, Query: q,
			Options: exec.Options{Source: exec.NewTableSource(w.test, 0)},
		})
		if err != nil {
			return res, err
		}
		if !reflect.DeepEqual(got, want) {
			return res, fmt.Errorf("experiments: trace: query %d profiled run diverges from unprofiled executor", qi)
		}
		if math.Float64bits(prof.SumNodeCost()) != math.Float64bits(want.TotalCost) {
			return res, fmt.Errorf("experiments: trace: query %d node costs sum to %v, executor total %v",
				qi, prof.SumNodeCost(), want.TotalCost)
		}
		if prof.NodeVisits[0] != int64(want.Tuples) {
			return res, fmt.Errorf("experiments: trace: query %d root visits %d != tuples %d",
				qi, prof.NodeVisits[0], want.Tuples)
		}
		for a := range want.Acquisitions {
			if prof.AttrAcquisitions[a] != want.Acquisitions[a] {
				return res, fmt.Errorf("experiments: trace: query %d attr %d acquisitions %d != executor's %d",
					qi, a, prof.AttrAcquisitions[a], want.Acquisitions[a])
			}
		}

		row := TraceRow{
			Query:      qi,
			Nodes:      len(nodes),
			Splits:     node.NumSplits(),
			Predicted:  cost,
			Candidates: sp.Counter(trace.Candidates),
			Pruned:     sp.Counter(trace.Pruned),
		}
		if want.Tuples > 0 {
			row.Observed = want.TotalCost / float64(want.Tuples)
		}
		if cost > 0 {
			row.DriftPct = 100 * (row.Observed - cost) / cost
		}
		for id := range nodes {
			if prof.NodeCost[id] > prof.NodeCost[row.HotNode] {
				row.HotNode = id
			}
		}
		row.HotLabel = plan.NodeLabel(nodes[row.HotNode], s.Name)
		if want.TotalCost > 0 {
			row.HotShare = prof.NodeCost[row.HotNode] / want.TotalCost
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the study.
func (r TraceStudyResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			fmt.Sprintf("%d", row.Query), fmt.Sprintf("%d", row.Nodes), fmt.Sprintf("%d", row.Splits),
			f2(row.Predicted), f2(row.Observed), f1(row.DriftPct),
			fmt.Sprintf("%d", row.HotNode), row.HotLabel, f3(row.HotShare),
			fmt.Sprintf("%d", row.Candidates), fmt.Sprintf("%d", row.Pruned),
		}
	}
	return WriteTable(w,
		fmt.Sprintf("Trace study: per-node cost attribution and predicted-vs-observed drift — lab dataset (%d queries, %d tuple-runs)", r.Queries, r.Tuples),
		[]string{"query", "nodes", "splits", "predicted", "observed", "drift%", "hot", "hot label", "hot share", "candidates", "pruned"},
		rows)
}

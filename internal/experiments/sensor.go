package experiments

import (
	"fmt"
	"io"

	"acqp/internal/opt"
	"acqp/internal/sensornet"
)

// SensorPoint measures one plan-size setting of the Section 2.4 study.
type SensorPoint struct {
	MaxSplits   int
	PlanBytes   int
	Splits      int
	Acquisition float64
	DissemRatio float64 // dissemination / total
	Total       float64
	PerTuple    float64
}

// SensorResult is the Section 2.4 plan-size trade-off: total network
// energy (acquisition + dissemination + result radio) as the plan-size
// bound k grows. Bigger conditional plans acquire less but cost more to
// ship — C(P) + alpha*zeta(P) has an interior optimum when query
// lifetimes are short.
type SensorResult struct {
	Motes  int
	Tuples int
	Points []SensorPoint
}

// SensorTradeoff runs the study on the lab world over a line topology.
func SensorTradeoff(e *Env) (SensorResult, error) {
	w := e.labWorld(1)
	s := w.train.Schema()
	q := w.queries[0]
	motes := e.LabConfig().Motes
	// A short-lived query: few epochs, so dissemination is not amortized
	// away and the trade-off is visible.
	horizon := motes * 40
	world := w.test.Slice(0, minInt(horizon, w.test.NumRows()))

	res := SensorResult{Motes: motes, Tuples: world.NumRows()}
	// An expensive radio (relative to the short query lifetime) makes the
	// paper's alpha = bytes-cost / tuples-processed term significant.
	radio := sensornet.RadioModel{CostPerByte: 4, ResultBytes: 16}
	for _, k := range []int{0, 1, 2, 5, 10, 20} {
		g := opt.Greedy{SPSF: opt.UniformSPSFSame(s, heuristicSPSF), MaxSplits: k, Base: opt.SeqOpt}
		node, _ := g.Plan(e.ctx(), w.dist, q)
		net, err := sensornet.New(s, q, radio, sensornet.LineTopology(motes))
		if err != nil {
			return res, err
		}
		st, err := net.Deploy(node, world)
		if err != nil {
			return res, err
		}
		if st.Mismatches != 0 {
			return res, fmt.Errorf("experiments: sensor: %d mismatches", st.Mismatches)
		}
		res.Points = append(res.Points, SensorPoint{
			MaxSplits:   k,
			PlanBytes:   st.PlanBytes,
			Splits:      node.NumSplits(),
			Acquisition: st.AcquisitionEnergy,
			DissemRatio: st.DisseminationEnergy / st.TotalEnergy(),
			Total:       st.TotalEnergy(),
			PerTuple:    st.EnergyPerTuple(),
		})
	}
	return res, nil
}

// Best returns the MaxSplits value with the minimum total energy.
func (r SensorResult) Best() SensorPoint {
	best := r.Points[0]
	for _, p := range r.Points[1:] {
		if p.Total < best.Total {
			best = p
		}
	}
	return best
}

// WriteTable renders the study.
func (r SensorResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Points))
	for i, p := range r.Points {
		rows[i] = []string{
			fmt.Sprintf("%d", p.MaxSplits), fmt.Sprintf("%d", p.Splits),
			fmt.Sprintf("%d", p.PlanBytes), f1(p.Acquisition),
			fmt.Sprintf("%.0f%%", p.DissemRatio*100), f1(p.Total), f2(p.PerTuple),
		}
	}
	return WriteTable(w,
		fmt.Sprintf("Section 2.4: plan size vs total network energy (%d motes, %d tuples, line topology)", r.Motes, r.Tuples),
		[]string{"max splits", "splits", "plan bytes", "acquisition", "dissem share", "total energy", "per tuple"},
		rows)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package experiments

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

// One shared quick environment: the lab dataset is built once.
var testEnv = NewEnv(Quick)

func TestFig8aShape(t *testing.T) {
	res, err := Fig8a(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries == 0 {
		t.Fatal("no queries completed")
	}
	byName := map[string]Fig8aRow{}
	for _, r := range res.Rows {
		byName[r.Algo] = r
	}
	// Paper shape: "in all cases, our algorithms outperform Naive, and
	// both the worst case and average performance of Heuristic-10 is very
	// close to the performance of Exhaustive."
	if byName["Heuristic-10"].AvgRel > byName["Naive"].AvgRel {
		t.Errorf("Heuristic-10 (%.3f) worse than Naive (%.3f) on average",
			byName["Heuristic-10"].AvgRel, byName["Naive"].AvgRel)
	}
	if byName["Heuristic-10"].AvgRel > 1.1 {
		t.Errorf("Heuristic-10 not close to Exhaustive: %.3f", byName["Heuristic-10"].AvgRel)
	}
	if byName["Heuristic-10"].AvgRel > byName["Heuristic-0"].AvgRel+1e-9 {
		t.Errorf("more splits should not hurt: H10 %.3f vs H0 %.3f",
			byName["Heuristic-10"].AvgRel, byName["Heuristic-0"].AvgRel)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Exhaustive") {
		t.Error("table missing Exhaustive row")
	}
}

func TestFig8bShape(t *testing.T) {
	res, err := Fig8b(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatal("expected at least two SPSF settings")
	}
	// Paper shape: "Exhaustive with smaller SPSF's performs substantially
	// worse than Heuristic with large SPSF's" — the smallest-SPSF row
	// must lose to the heuristic, and quality must not degrade as the
	// SPSF grows.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.AvgRel < 1 {
		t.Errorf("Exhaustive at tiny SPSF beat Heuristic-5: %.3f", first.AvgRel)
	}
	if last.AvgRel > first.AvgRel+1e-9 {
		t.Errorf("larger SPSF degraded exhaustive: %.3f -> %.3f", first.AvgRel, last.AvgRel)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig8cShape(t *testing.T) {
	res, err := Fig8c(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	for name, gains := range res.Gains {
		if len(gains) != testEnv.LabQueryCount() {
			t.Errorf("%s: %d gains, want %d", name, len(gains), testEnv.LabQueryCount())
		}
		if !sort.IsSorted(sort.Reverse(sort.Float64Slice(gains))) {
			t.Errorf("%s: gains not sorted descending", name)
		}
	}
	// The heuristic should beat Naive on at least some queries.
	h := res.Gains["Heuristic-10"]
	if len(h) == 0 || h[0] < 1.05 {
		t.Errorf("Heuristic-10 best gain %v, want > 1.05", h)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig9Shape(t *testing.T) {
	res, err := Fig9(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if res.Splits == 0 {
		t.Error("Figure 9 plan has no conditioning splits")
	}
	// The paper's plan conditions on cheap attributes; ours must too.
	if !strings.Contains(res.Rendered, "hour") && !strings.Contains(res.Rendered, "nodeid") &&
		!strings.Contains(res.Rendered, "voltage") {
		t.Errorf("plan does not condition on a cheap attribute:\n%s", res.Rendered)
	}
	if res.HeurCost > res.NaiveCost {
		t.Errorf("heuristic (%.1f) worse than naive (%.1f)", res.HeurCost, res.NaiveCost)
	}
	if res.Gain() < 1.1 {
		t.Errorf("gain over naive %.2f, want > 1.1", res.Gain())
	}
	if res.PlanBytes <= 0 || !strings.Contains(res.Dot, "digraph") {
		t.Error("plan rendering incomplete")
	}
}

func TestGardenShape(t *testing.T) {
	res, err := Garden(testEnv, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preds != 10 {
		t.Errorf("Garden-5 queries have %d predicates, want 10", res.Preds)
	}
	sn := Summarize(res.RatioNaive)
	if sn.Mean < 1.0 {
		t.Errorf("heuristic loses to naive on average: %.3f", sn.Mean)
	}
	// The paper observes the heuristic can lose slightly on test data but
	// "the penalty in those cases is negligible".
	sc := Summarize(res.RatioCorrSeq)
	if sc.FracBelow09 > 0.2 {
		t.Errorf("heuristic loses >10%% to CorrSeq on %.0f%% of queries", sc.FracBelow09*100)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestFig12Shape(t *testing.T) {
	res, err := Fig12(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range res.Points {
		// Conditional plans must not lose to the sequential baselines by
		// more than noise.
		if p.Heur10 > p.Naive*1.05 {
			t.Errorf("G=%d n=%d sel=%.1f: Heuristic-10 (%.1f) worse than Naive (%.1f)",
				p.Setting.Gamma, p.Setting.N, p.Sel, p.Heur10, p.Naive)
		}
		// "When Gamma = 1, Naive and CorrSeq produce nearly identical
		// query plans."
		if p.Setting.Gamma == 1 {
			ratio := p.Naive / p.CorrSeq
			if ratio < 0.9 || ratio > 1.1 {
				t.Errorf("Gamma=1 sel=%.1f: Naive (%.1f) and CorrSeq (%.1f) should be close",
					p.Sel, p.Naive, p.CorrSeq)
			}
		}
	}
	// At the most selective setting the conditional plan should show a
	// clear win.
	first := res.Points[0] // Gamma=1, lowest sel
	if first.Naive/first.Heur10 < 1.15 {
		t.Errorf("expected a clear conditional-plan win at sel=%.1f: %.2fx", first.Sel, first.Naive/first.Heur10)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestScalabilityShape(t *testing.T) {
	res, err := Scalability(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DataRows) < 2 || len(res.Exhausted) < 2 {
		t.Fatal("missing scale points")
	}
	// Exhaustive subproblem counts grow with the domain size.
	for i := 1; i < len(res.Exhausted); i++ {
		prev, cur := res.Exhausted[i-1], res.Exhausted[i]
		if cur.Subproblems >= 0 && prev.Subproblems >= 0 && cur.Subproblems < prev.Subproblems {
			t.Errorf("exhaustive subproblems shrank with K: %d -> %d", prev.Subproblems, cur.Subproblems)
		}
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestSensorTradeoffShape(t *testing.T) {
	res, err := SensorTradeoff(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 3 {
		t.Fatal("missing points")
	}
	// Plan bytes grow with the split bound; dissemination share grows too.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].PlanBytes < res.Points[i-1].PlanBytes {
			t.Errorf("plan bytes shrank as splits grew")
		}
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	if last.DissemRatio <= first.DissemRatio {
		t.Error("dissemination share did not grow with plan size")
	}
	// With an expensive radio and short query lifetime, unbounded plans
	// must not be optimal (the Section 2.4 trade-off).
	if res.Best().MaxSplits == last.MaxSplits {
		t.Errorf("largest plan is best; no trade-off visible")
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestModelAblationShape(t *testing.T) {
	res, err := ModelAblation(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AblationRow{}
	for _, r := range res.Rows {
		byName[r.Backing] = r
	}
	emp := byName["empirical (full)"]
	ind := byName["independent (full)"]
	cl := byName["chow-liu (full)"]
	// The independence model cannot exploit correlations: it must not
	// beat the empirical oracle.
	if ind.AvgCost < emp.AvgCost-1e-9 {
		t.Errorf("independence oracle (%.1f) beat empirical (%.1f)", ind.AvgCost, emp.AvgCost)
	}
	// Chow-Liu must stay close to the empirical oracle (within 10%).
	if cl.AvgCost > emp.AvgCost*1.1 {
		t.Errorf("chow-liu (%.1f) too far from empirical (%.1f)", cl.AvgCost, emp.AvgCost)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestWriteTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	err := WriteTable(&buf, "title", []string{"a", "long-header"}, [][]string{
		{"xxxxx", "1"},
		{"y", "22"},
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, two rows
		t.Fatalf("lines = %q", lines)
	}
	if !strings.HasPrefix(lines[0], "title") {
		t.Error("missing title")
	}
	if !strings.Contains(lines[1], "long-header") {
		t.Error("missing header")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 2, 1, 0.5})
	if s.Max != 3 || s.Median != 1 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.FracAbove1 != 0.5 || s.FracBelow09 != 0.25 {
		t.Errorf("fractions = %+v", s)
	}
	if z := Summarize(nil); z.Max != 0 {
		t.Error("empty Summarize not zero")
	}
}

func TestLifetimeShape(t *testing.T) {
	res, err := Lifetime(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LifetimeRow{}
	for _, r := range res.Rows {
		byName[r.Algo] = r
	}
	naive := byName["Naive"]
	h5 := byName["Heuristic-5"]
	if naive.Epochs <= 0 || h5.Epochs <= 0 {
		t.Fatalf("degenerate lifetimes: %+v", res.Rows)
	}
	// Per-tuple savings must compound into longer lifetime.
	if h5.Epochs < naive.Epochs {
		t.Errorf("Heuristic-5 lifetime %d below Naive %d", h5.Epochs, naive.Epochs)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "epochs survived") {
		t.Error("table malformed")
	}
}

// Determinism: two independently constructed environments must produce
// byte-identical experiment output — every generator and planner is
// seeded, so any divergence signals nondeterminism creeping in.
func TestExperimentsDeterministic(t *testing.T) {
	render := func() string {
		env := NewEnv(Quick)
		res, err := Fig9(env)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteTable(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Errorf("Fig9 output differs between identical environments:\n%s\n---\n%s", a, b)
	}
}

func TestFaultStudyShape(t *testing.T) {
	res, err := FaultStudy(testEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	byCell := map[string]FaultRow{}
	var maxRate float64
	for _, r := range res.Rows {
		byCell[r.Policy+"@"+f2(r.Rate)] = r
		if r.Rate > maxRate {
			maxRate = r.Rate
		}
	}
	// Rate zero is fault-free for every policy.
	for _, p := range []string{"abstain", "impute", "replan"} {
		r, ok := byCell[p+"@"+f2(0)]
		if !ok {
			t.Fatalf("missing rate-0 row for %s", p)
		}
		if r.Retries != 0 || r.Failures != 0 || r.AnsweredFrac != 1 || r.Accuracy != 1 || r.WrongAnswers != 0 {
			t.Errorf("rate-0 %s row shows fault activity: %+v", p, r)
		}
	}
	// At the highest rate, abstention loses answers while the fallback
	// policies keep answering everything; faults must actually fire.
	ab := byCell["abstain@"+f2(maxRate)]
	im := byCell["impute@"+f2(maxRate)]
	re := byCell["replan@"+f2(maxRate)]
	if ab.Failures == 0 || ab.Retries == 0 {
		t.Errorf("no faults fired at rate %g: %+v", maxRate, ab)
	}
	if ab.AnsweredFrac >= 1 {
		t.Errorf("abstain answered everything at rate %g", maxRate)
	}
	if im.AnsweredFrac <= ab.AnsweredFrac || re.AnsweredFrac <= ab.AnsweredFrac {
		t.Errorf("fallbacks did not answer more than abstain: impute %.3f replan %.3f abstain %.3f",
			im.AnsweredFrac, re.AnsweredFrac, ab.AnsweredFrac)
	}
	if im.Imputed == 0 || re.Replans == 0 {
		t.Errorf("fallback counters empty: imputed %d, replans %d", im.Imputed, re.Replans)
	}
	var buf bytes.Buffer
	if err := res.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
}

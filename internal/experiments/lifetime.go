package experiments

import (
	"fmt"
	"io"

	"acqp/internal/opt"
	"acqp/internal/sensornet"
)

// LifetimeRow is one planner's deployment lifetime.
type LifetimeRow struct {
	Algo    string
	Epochs  int
	Results int
	// RelativeToNaive is this planner's lifetime over Naive's.
	RelativeToNaive float64
}

// LifetimeResult is the network-lifetime study: how many epochs a
// battery-powered deployment survives under each planner's plan. This is
// the paper's energy argument made concrete — per-tuple acquisition
// savings compound into deployment lifetime.
type LifetimeResult struct {
	Motes   int
	Battery float64
	Rows    []LifetimeRow
}

// Lifetime runs the study on the lab world.
func Lifetime(e *Env) (LifetimeResult, error) {
	w := e.labWorld(1)
	s := w.train.Schema()
	q := w.queries[0]
	motes := e.LabConfig().Motes
	battery := 60_000.0 // energy units per mote: a few hundred acquisitions

	res := LifetimeResult{Motes: motes, Battery: battery}
	planners := []opt.Planner{
		opt.NaivePlanner{},
		opt.CorrSeqPlanner{Alg: opt.SeqOpt},
		heuristicPlanner(s, 5),
		heuristicPlanner(s, 10),
	}
	var naiveEpochs int
	for i, p := range planners {
		node, _, err := p.Plan(e.ctx(), w.dist, q)
		if err != nil {
			return res, err
		}
		net, err := sensornet.New(s, q, sensornet.DefaultRadio(), sensornet.StarTopology(motes))
		if err != nil {
			return res, err
		}
		lt, err := net.Lifetime(node, w.test, battery)
		if err != nil {
			return res, err
		}
		row := LifetimeRow{Algo: p.Name(), Epochs: lt.Epochs, Results: lt.ResultsReported}
		if i == 0 {
			naiveEpochs = lt.Epochs
		}
		if naiveEpochs > 0 {
			row.RelativeToNaive = float64(lt.Epochs) / float64(naiveEpochs)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// WriteTable renders the study.
func (r LifetimeResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Algo, fmt.Sprintf("%d", row.Epochs),
			fmt.Sprintf("%d", row.Results), f2(row.RelativeToNaive) + "x",
		}
	}
	return WriteTable(w,
		fmt.Sprintf("Network lifetime: %d motes, %.0f energy units each (epochs until first mote dies)", r.Motes, r.Battery),
		[]string{"planner", "epochs survived", "results reported", "vs naive"},
		rows)
}

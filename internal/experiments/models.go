package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"acqp/internal/model"
	"acqp/internal/opt"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
	"acqp/internal/workload"
)

// ModelStudyRow is one (workload, backend) cell: what the fitted model
// cost to build and plan with, and how well its plans measured on
// held-out data.
type ModelStudyRow struct {
	Workload string
	Model    string
	FitMS    float64 // wall time to fit the backend
	PlanMS   float64 // total planning wall time across the workload
	AvgCost  float64 // mean acquisition cost per tuple on test data
	VsNaive  float64 // naive-ordering cost / this backend's cost, averaged
}

// ModelStudyResult compares the statistics backends of the model registry
// as planning oracles: the same planner run against empirical counts, the
// independence model, the Chow-Liu tree, and the general Bayesian network,
// on three workloads — the lab and garden-5 sensor datasets (tree-shaped
// correlations, where Chow-Liu should track the BN) and a synthetic XOR
// world whose defining dependency no tree can represent. The study
// self-checks its headline claim: on the XOR workload the BN's plans must
// measure strictly cheaper than the Chow-Liu tree's.
type ModelStudyResult struct {
	Rows []ModelStudyRow
}

// modelWorkload is one dataset + query set + planner triple the backends
// compete on.
type modelWorkload struct {
	name        string
	train, test *table.Table
	queries     []query.Query
	planner     opt.Planner
}

// xorWorld generates the synthetic XOR workload: two cheap binary inputs,
// an expensive attribute that is their XOR with 5% noise, and an expensive
// independent noise attribute. Only a bounded-in-degree network with both
// inputs as parents sees that acquiring the cheap pair makes the expensive
// attribute nearly deterministic; every pairwise mutual information
// involving it is ~0, so the Chow-Liu tree is blind here. The planner is
// exhaustive, not greedy: the XOR gain appears only after conditioning on
// BOTH inputs, and greedy's one-split lookahead scores the first split at
// zero — with 4 binary attributes the exhaustive search is trivially cheap.
func xorWorld(e *Env) modelWorkload {
	s := schema.New(
		schema.Attribute{Name: "x0", K: 2, Cost: 1},
		schema.Attribute{Name: "x1", K: 2, Cost: 1},
		schema.Attribute{Name: "x2", K: 2, Cost: 100},
		schema.Attribute{Name: "x3", K: 2, Cost: 100},
	)
	gen := func(rows int, seed int64) *table.Table {
		rng := rand.New(rand.NewSource(seed))
		tbl := table.New(s, rows)
		for i := 0; i < rows; i++ {
			x0 := schema.Value(rng.Intn(2))
			x1 := schema.Value(rng.Intn(2))
			x2 := x0 ^ x1
			if rng.Float64() < 0.05 {
				x2 ^= 1
			}
			tbl.MustAppendRow([]schema.Value{x0, x1, x2, schema.Value(rng.Intn(2))})
		}
		return tbl
	}
	rows := e.SynthRows()
	q := query.MustNewQuery(s,
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 3, R: query.Range{Lo: 1, Hi: 1}},
	)
	return modelWorkload{
		name:    "xor",
		train:   gen(rows*6/10, 2005),
		test:    gen(rows*4/10, 2006),
		queries: []query.Query{q},
		planner: opt.ExhaustivePlanner{Exhaustive: opt.Exhaustive{SPSF: opt.FullSPSF(s), Budget: exhaustiveBudget}},
	}
}

// ModelStudy runs the comparison.
func ModelStudy(e *Env) (ModelStudyResult, error) {
	lab := e.labWorld(e.LabQueryCount())
	gtbl := e.Garden(5)
	gtrain, gtest := gtbl.Split(TrainFrac)
	gcfg := workload.DefaultGardenQueryConfig(5)
	gcfg.Count = e.GardenQueryCount()
	gqueries := workload.GardenQueries(gtrain, gcfg)
	// Planning and fitting are linear in the historical rows; subsample
	// large training sets the same way the Figure 10 study does.
	const maxPlanRows = 8_000
	if gtrain.NumRows() > maxPlanRows {
		gtrain = gtrain.Sample(gtrain.NumRows()/maxPlanRows + 1)
	}

	workloads := []modelWorkload{
		{
			name: "lab", train: lab.train, test: lab.test, queries: lab.queries,
			planner: heuristicPlanner(lab.train.Schema(), 5),
		},
		{
			// Sequential (CorrSeq) planning, not the conditional greedy: with
			// 16 attributes a greedy run issues thousands of conditioning
			// contexts, and each one costs the BN a variable-elimination
			// pass — minutes of wall clock for the same ordering insight the
			// O(n^2) correlated-sequential planner finds in seconds.
			name: "garden-5", train: gtrain, test: gtest, queries: gqueries,
			planner: opt.CorrSeqPlanner{Alg: opt.SeqGreedy},
		},
		xorWorld(e),
	}

	res := ModelStudyResult{}
	for _, w := range workloads {
		s := w.train.Schema()
		// The naive-ordering baseline each backend's gain is measured
		// against; it uses the empirical statistics, like the service does.
		naiveCosts := make([]float64, len(w.queries))
		naiveRef := stats.NewEmpirical(w.train)
		for qi, q := range w.queries {
			node, _, err := (opt.NaivePlanner{}).Plan(e.ctx(), naiveRef, q)
			if err != nil {
				return res, err
			}
			if naiveCosts[qi], err = runCost(e.ctx(), s, node, q, w.test); err != nil {
				return res, err
			}
		}

		avgCost := map[string]float64{}
		for _, name := range model.Names() {
			fitStart := time.Now()
			d, err := model.Fit(name, w.train, model.Opts{})
			if err != nil {
				return res, fmt.Errorf("experiments: models: fit %s on %s: %w", name, w.name, err)
			}
			fitMS := float64(time.Since(fitStart)) / float64(time.Millisecond)

			var planMS, costSum, gainSum float64
			for qi, q := range w.queries {
				planStart := time.Now()
				node, _, err := w.planner.Plan(e.ctx(), d, q)
				if err != nil {
					return res, fmt.Errorf("experiments: models: plan %s on %s: %w", name, w.name, err)
				}
				planMS += float64(time.Since(planStart)) / float64(time.Millisecond)
				c, err := runCost(e.ctx(), s, node, q, w.test)
				if err != nil {
					return res, fmt.Errorf("experiments: models: %s on %s: %w", name, w.name, err)
				}
				costSum += c
				if c > 0 {
					gainSum += naiveCosts[qi] / c
				}
			}
			n := float64(len(w.queries))
			avgCost[name] = costSum / n
			res.Rows = append(res.Rows, ModelStudyRow{
				Workload: w.name, Model: name,
				FitMS: fitMS, PlanMS: planMS,
				AvgCost: costSum / n, VsNaive: gainSum / n,
			})
		}
		if w.name == "xor" {
			// The tentpole claim, gated here so CI catches a regression: the
			// general network must beat the tree where the correlation is
			// higher-order.
			if !(avgCost[model.NameBN] < avgCost[model.NameChowLiu]) {
				return res, fmt.Errorf("experiments: models: BN avg cost %.2f not strictly below Chow-Liu %.2f on the XOR workload",
					avgCost[model.NameBN], avgCost[model.NameChowLiu])
			}
		}
	}
	return res, nil
}

// WriteTable renders the study.
func (r ModelStudyResult) WriteTable(w io.Writer) error {
	rows := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		rows[i] = []string{
			row.Workload, row.Model, f1(row.FitMS), f1(row.PlanMS), f1(row.AvgCost), f2(row.VsNaive) + "x",
		}
	}
	return WriteTable(w,
		"Model study: statistics backends as planning oracles (self-checked: BN < Chow-Liu on xor)",
		[]string{"workload", "model", "fit ms", "plan ms", "avg test cost", "gain vs naive"},
		rows)
}

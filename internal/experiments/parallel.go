package experiments

import (
	"bytes"
	"fmt"
	"io"
	"time"

	"acqp/internal/datagen"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/workload"
)

// ParallelPoint is one (workload, algorithm, parallelism) measurement,
// aggregated over the workload's queries and repeats.
type ParallelPoint struct {
	Workload    string
	Algorithm   string
	Parallelism int
	// MillisPerQuery is the best-of-repeats mean wall-clock planning time.
	MillisPerQuery float64
	// Speedup is the parallelism-1 time divided by this point's time.
	Speedup float64
}

// ParallelResult holds the parallel-search speedup study: wall-clock
// planning time versus worker count on the Garden-11 and Babu synthetic
// workloads, with the plans verified byte-identical at every level.
type ParallelResult struct {
	Points  []ParallelPoint
	Queries int
	Repeats int
}

// parallelWorkload is one dataset/query-set under study.
type parallelWorkload struct {
	name    string
	dist    stats.Dist
	queries []query.Query
	spsf    opt.SPSF
}

// parallelWorkloads builds the two workloads. Garden-11 queries are cut
// down to the first two motes (4 predicates) and the SPSF restricted to
// the time attribute plus the queried attributes, so the exhaustive
// search is heavy but tractable; the synthetic workload uses the paper's
// Gamma=3, n=10 setting whose binary domains keep the full SPSF small.
func parallelWorkloads(e *Env, queries int) []parallelWorkload {
	gtbl := e.Garden(11)
	gtrain, _ := gtbl.Split(TrainFrac)
	gs := gtbl.Schema()
	cfg := workload.DefaultGardenQueryConfig(11)
	cfg.Count = queries
	var gqs []query.Query
	for _, q := range workload.GardenQueries(gtrain, cfg) {
		// Each garden query carries a (temp, hum) predicate pair per mote;
		// keep motes 0 and 1.
		gqs = append(gqs, query.MustNewQuery(gs, q.Preds[:4]...))
	}
	gspsf := gardenParallelSPSF(gs, gqs)

	scfg := datagen.SynthConfig{N: 10, Gamma: 3, Sel: 0.7, Rows: e.SynthRows(), Seed: 61}
	stbl := datagen.Synthetic(scfg)
	strain, _ := stbl.Split(TrainFrac)
	ss := stbl.Schema()
	sqs := make([]query.Query, 0, queries)
	for i := 0; i < queries; i++ {
		sqs = append(sqs, datagen.SynthQuery(ss))
	}

	return []parallelWorkload{
		{name: "Garden-11", dist: stats.NewEmpirical(gtrain), queries: gqs, spsf: gspsf},
		{name: "Babu synthetic", dist: stats.NewEmpirical(strain), queries: sqs, spsf: opt.FullSPSF(ss)},
	}
}

// gardenParallelSPSF allows conditioning only on the cheap time attribute
// and the attributes the workload queries touch; every other attribute
// gets zero split points, which keeps the exhaustive box space bounded on
// the 34-attribute Garden-11 schema.
func gardenParallelSPSF(s *schema.Schema, qs []query.Query) opt.SPSF {
	r := make([]int, s.NumAttrs())
	r[0] = 6 // time drives the correlations
	for _, q := range qs {
		for _, p := range q.Preds {
			r[p.Attr] = 6
		}
	}
	sp, err := opt.UniformSPSF(s, r)
	if err != nil {
		panic("experiments: garden SPSF: " + err.Error())
	}
	return sp
}

// ParallelSpeedup measures the tentpole's payoff: identical plans, less
// wall-clock. For every workload and worker count it plans each query
// with the exhaustive and greedy planners, checks the encoded plan is
// byte-identical to the single-worker run, and reports the speedup.
func ParallelSpeedup(e *Env) (ParallelResult, error) {
	queries, repeats := 4, 3
	levels := []int{1, 2, 4, 8}
	if e.Scale == Quick {
		queries, repeats = 2, 1
		levels = []int{1, 4}
	}
	res := ParallelResult{Queries: queries, Repeats: repeats}
	for _, w := range parallelWorkloads(e, queries) {
		for _, algo := range []string{"Exhaustive", "Heuristic-6"} {
			baseline := 0.0
			var want [][]byte
			for _, par := range levels {
				var best float64
				for rep := 0; rep < repeats; rep++ {
					start := time.Now()
					var encoded [][]byte
					for _, q := range w.queries {
						var node *plan.Node
						var err error
						if algo == "Exhaustive" {
							ex := opt.Exhaustive{SPSF: w.spsf, Budget: 50_000_000, Parallelism: par}
							node, _, err = ex.Plan(e.ctx(), w.dist, q)
						} else {
							g := opt.Greedy{SPSF: w.spsf, MaxSplits: 6, Base: opt.SeqGreedy, Parallelism: par}
							node, _ = g.Plan(e.ctx(), w.dist, q)
							err = e.ctx().Err()
						}
						if err != nil {
							return res, fmt.Errorf("%s/%s parallelism %d: %w", w.name, algo, par, err)
						}
						encoded = append(encoded, plan.Encode(node))
					}
					elapsed := float64(time.Since(start)) / float64(time.Millisecond) / float64(len(w.queries))
					if rep == 0 || elapsed < best {
						best = elapsed
					}
					if want == nil {
						want = encoded
					}
					for i := range encoded {
						if !bytes.Equal(encoded[i], want[i]) {
							return res, fmt.Errorf("%s/%s: plan for query %d differs at parallelism %d",
								w.name, algo, i, par)
						}
					}
				}
				if par == 1 {
					baseline = best
				}
				speedup := 0.0
				if best > 0 {
					speedup = baseline / best
				}
				res.Points = append(res.Points, ParallelPoint{
					Workload: w.name, Algorithm: algo, Parallelism: par,
					MillisPerQuery: best, Speedup: speedup,
				})
			}
		}
	}
	return res, nil
}

// WriteTable renders the study.
func (r ParallelResult) WriteTable(w io.Writer) error {
	var rows [][]string
	for _, p := range r.Points {
		rows = append(rows, []string{
			p.Workload, p.Algorithm, fmt.Sprintf("%d", p.Parallelism),
			f2(p.MillisPerQuery), fmt.Sprintf("%.2fx", p.Speedup),
		})
	}
	return WriteTable(w,
		fmt.Sprintf("Parallel search speedup — %d queries/workload, best of %d runs, plans byte-identical across worker counts",
			r.Queries, r.Repeats),
		[]string{"workload", "algorithm", "workers", "ms/query", "speedup"},
		rows)
}

package exec

import (
	"math"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "h", K: 2, Cost: 0},
		schema.Attribute{Name: "a", K: 2, Cost: 10},
		schema.Attribute{Name: "b", K: 2, Cost: 5},
	)
}

func testTable() *table.Table {
	tbl := table.New(testSchema(), 8)
	for _, r := range [][]schema.Value{
		{0, 1, 1}, {0, 1, 0}, {0, 0, 1}, {0, 0, 0},
		{1, 1, 1}, {1, 1, 0}, {1, 0, 1}, {1, 0, 0},
	} {
		tbl.MustAppendRow(r)
	}
	return tbl
}

func testQuery(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
	)
}

func TestRunMetersCosts(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds) // a then b
	res := Run(s, p, q, testTable())
	if res.Tuples != 8 {
		t.Fatalf("Tuples = %d", res.Tuples)
	}
	if res.Selected != 2 {
		t.Errorf("Selected = %d, want 2", res.Selected)
	}
	if res.Mismatches != 0 {
		t.Errorf("Mismatches = %d", res.Mismatches)
	}
	// All 8 tuples acquire a (10); the 4 with a=1 also acquire b (5).
	want := 8*10.0 + 4*5.0
	if math.Abs(res.TotalCost-want) > 1e-12 {
		t.Errorf("TotalCost = %g, want %g", res.TotalCost, want)
	}
	if res.MaxCost != 15 {
		t.Errorf("MaxCost = %g, want 15", res.MaxCost)
	}
	if res.MeanCost() != want/8 {
		t.Errorf("MeanCost = %g", res.MeanCost())
	}
	if res.Selectivity() != 0.25 {
		t.Errorf("Selectivity = %g", res.Selectivity())
	}
	if res.Acquisitions[1] != 8 || res.Acquisitions[2] != 4 || res.Acquisitions[0] != 0 {
		t.Errorf("Acquisitions = %v", res.Acquisitions)
	}
}

func TestRunDetectsMismatch(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	wrong := plan.NewLeaf(false)
	res := Run(s, wrong, q, testTable())
	if res.Mismatches != 2 {
		t.Errorf("Mismatches = %d, want 2", res.Mismatches)
	}
}

func TestRunEmptyTable(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	res := Run(s, plan.NewSeq(q.Preds), q, table.New(s, 0))
	if res.Tuples != 0 || res.MeanCost() != 0 || res.Selectivity() != 0 {
		t.Errorf("empty table result = %+v", res)
	}
}

func TestRunExists(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	found, idx, cost := RunExists(s, p, testTable())
	if !found || idx != 0 {
		t.Errorf("found=%v idx=%d, want true/0", found, idx)
	}
	if cost != 15 { // first tuple satisfies immediately: a + b
		t.Errorf("cost = %g, want 15", cost)
	}
	// No satisfying tuple.
	never := plan.NewLeaf(false)
	found, idx, _ = RunExists(s, never, testTable())
	if found || idx != -1 {
		t.Errorf("found=%v idx=%d, want false/-1", found, idx)
	}
}

func TestRunLimit(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	rows, cost := RunLimit(s, p, testTable(), 1)
	if len(rows) != 1 || rows[0] != 0 {
		t.Errorf("rows = %v", rows)
	}
	if cost != 15 {
		t.Errorf("cost = %g", cost)
	}
	rows, _ = RunLimit(s, p, testTable(), 10) // more than available
	if len(rows) != 2 {
		t.Errorf("limit beyond matches: rows = %v", rows)
	}
	rows, cost = RunLimit(s, p, testTable(), 0)
	if rows != nil || cost != 0 {
		t.Errorf("limit 0: rows=%v cost=%g", rows, cost)
	}
}

func TestCompareOnTest(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	plans := map[string]*plan.Node{
		"ab": plan.NewSeq(q.Preds),
		"ba": plan.NewSeq([]query.Pred{q.Preds[1], q.Preds[0]}),
	}
	res := CompareOnTest(s, q, testTable(), plans)
	if len(res) != 2 {
		t.Fatalf("results = %v", res)
	}
	// b-first: all 8 acquire b (5); 4 with b=1 acquire a (10).
	if got := res["ba"].TotalCost; math.Abs(got-(8*5+4*10)) > 1e-12 {
		t.Errorf("ba cost = %g", got)
	}
	if res["ab"].Mismatches != 0 || res["ba"].Mismatches != 0 {
		t.Error("mismatches in correct plans")
	}
}

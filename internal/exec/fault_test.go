package exec

import (
	"reflect"
	"sync"
	"testing"

	"acqp/internal/fault"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// corrSchema is a 3-attribute schema with a cheap conditioning attribute
// A, an expensive attribute B perfectly correlated with A, and a medium
// attribute C derived from A.
func corrSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "A", K: 4, Cost: 1},
		schema.Attribute{Name: "B", K: 4, Cost: 10},
		schema.Attribute{Name: "C", K: 2, Cost: 5},
	)
}

// corrTrain holds the pure joint: B = A, C = 1 iff A >= 2.
func corrTrain(s *schema.Schema) *table.Table {
	tbl := table.New(s, 32)
	for a := schema.Value(0); a < 4; a++ {
		c := schema.Value(0)
		if a >= 2 {
			c = 1
		}
		for i := 0; i < 8; i++ {
			tbl.MustAppendRow([]schema.Value{a, a, c})
		}
	}
	return tbl
}

// corrTest is corrTrain plus 4 noise rows where C = 1 but B = 0, so
// optimistic fallbacks (replan dropping B's predicate, imputing B from A)
// produce exactly 4 false positives.
func corrTest(s *schema.Schema) *table.Table {
	train := corrTrain(s)
	tbl := table.New(s, train.NumRows()+4)
	var row []schema.Value
	for r := 0; r < train.NumRows(); r++ {
		row = train.Row(r, row)
		tbl.MustAppendRow(row)
	}
	for i := 0; i < 4; i++ {
		tbl.MustAppendRow([]schema.Value{3, 0, 1})
	}
	return tbl
}

func corrQuery(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 2, Hi: 3}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
	)
}

// corrPlan conditions on A before evaluating the query, so A is already
// acquired evidence when B's acquisition fails.
func corrPlan(q query.Query) *plan.Node {
	return plan.NewSplit(0, 2, plan.NewSeq(q.Preds), plan.NewSeq(q.Preds))
}

func TestRunFaultyZeroFaultEquivalence(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	plans := map[string]*plan.Node{
		"seq":   plan.NewSeq(q.Preds),
		"split": plan.NewSplit(2, 1, plan.NewLeaf(false), plan.NewSeq(q.Preds)),
	}
	for name, p := range plans {
		base := Run(s, p, q, testTable())
		for _, policy := range []FallbackPolicy{Abstain, Replan} {
			for _, inj := range []*fault.Injector{nil, fault.NewInjector(s.NumAttrs(), 7)} {
				res, err := RunFaulty(s, p, q, testTable(), FaultConfig{
					Injector: inj, Retrier: fault.DefaultRetrier(), Policy: policy,
				})
				if err != nil {
					t.Fatalf("%s/%v: %v", name, policy, err)
				}
				if !reflect.DeepEqual(res.Result, base) {
					t.Errorf("%s/%v: fault-free RunFaulty differs from Run:\n got %+v\nwant %+v", name, policy, res.Result, base)
				}
				if res.Failures != 0 || res.Retries != 0 || res.RetryCost != 0 || res.Abstained != 0 || res.Imputed != 0 || res.Replans != 0 {
					t.Errorf("%s/%v: fault counters nonzero without faults: %+v", name, policy, res)
				}
			}
		}
	}
}

func TestRunFaultyFallbackPolicies(t *testing.T) {
	s := corrSchema()
	q := corrQuery(s)
	p := corrPlan(q)
	tbl := corrTest(s)
	model := stats.NewEmpirical(corrTrain(s))

	mkInjector := func() *fault.Injector {
		inj := fault.NewInjector(s.NumAttrs(), 1)
		if err := inj.SetAttr(1, fault.AttrFault{Dead: true}); err != nil {
			t.Fatal(err)
		}
		return inj
	}

	cases := []struct {
		name           string
		cfg            FaultConfig
		wantAnswered   int
		wantAbstained  int
		wantAbsTrue    int
		wantSelected   int
		wantImputed    int
		wantReplans    int
		wantFP, wantFN int
		minAccuracy    float64
	}{
		{
			name:          "abstain",
			cfg:           FaultConfig{Injector: mkInjector(), Policy: Abstain},
			wantAnswered:  0,
			wantAbstained: 36,
			wantAbsTrue:   16,
			minAccuracy:   1, // vacuous: nothing answered, nothing wrong
		},
		{
			name:         "impute",
			cfg:          FaultConfig{Injector: mkInjector(), Policy: Impute, Model: model},
			wantAnswered: 36,
			wantSelected: 20,
			wantImputed:  36,
			wantFP:       4, // noise rows: A=3 imputes B=3, truth has B=0
			minAccuracy:  32.0 / 36,
		},
		{
			name:         "replan",
			cfg:          FaultConfig{Injector: mkInjector(), Policy: Replan},
			wantAnswered: 36,
			wantSelected: 20,
			wantReplans:  36,
			wantFP:       4, // dropped B predicate optimistically satisfied
			minAccuracy:  32.0 / 36,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := RunFaulty(s, p, q, tbl, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Tuples != 36 {
				t.Fatalf("Tuples = %d", res.Tuples)
			}
			if got := res.Answered(); got != tc.wantAnswered {
				t.Errorf("Answered = %d, want %d", got, tc.wantAnswered)
			}
			if res.Abstained != tc.wantAbstained || res.AbstainedTrue != tc.wantAbsTrue {
				t.Errorf("Abstained = %d/%d true, want %d/%d", res.Abstained, res.AbstainedTrue, tc.wantAbstained, tc.wantAbsTrue)
			}
			if res.Selected != tc.wantSelected {
				t.Errorf("Selected = %d, want %d", res.Selected, tc.wantSelected)
			}
			if res.Imputed != tc.wantImputed {
				t.Errorf("Imputed = %d, want %d", res.Imputed, tc.wantImputed)
			}
			if res.Replans != tc.wantReplans {
				t.Errorf("Replans = %d, want %d", res.Replans, tc.wantReplans)
			}
			if res.FalsePositives != tc.wantFP || res.FalseNegatives != tc.wantFN {
				t.Errorf("FP/FN = %d/%d, want %d/%d", res.FalsePositives, res.FalseNegatives, tc.wantFP, tc.wantFN)
			}
			if res.Mismatches != 0 {
				t.Errorf("Mismatches = %d; fault damage must be classed as FP/FN", res.Mismatches)
			}
			if acc := res.Accuracy(); acc < tc.minAccuracy {
				t.Errorf("Accuracy = %.4f, want >= %.4f", acc, tc.minAccuracy)
			}
			// Every tuple hits the dead attribute exactly once.
			if res.Failures != 36 {
				t.Errorf("Failures = %d, want 36", res.Failures)
			}
			// The dead board is only powered once, on the first tuple; the
			// executor learns the sensor is dead and stops paying for it.
			if res.Acquisitions[1] != 1 {
				t.Errorf("Acquisitions[B] = %d, want 1", res.Acquisitions[1])
			}
		})
	}
}

func TestRunFaultyImputeVsAbstainAnswersMore(t *testing.T) {
	// The acceptance invariant: under failures, Impute and Replan answer
	// strictly more tuples than Abstain at bounded extra cost.
	s := corrSchema()
	q := corrQuery(s)
	p := corrPlan(q)
	tbl := corrTest(s)
	model := stats.NewEmpirical(corrTrain(s))
	mk := func() *fault.Injector {
		inj := fault.NewInjector(s.NumAttrs(), 3)
		if err := inj.SetAttr(1, fault.AttrFault{PTransient: 0.5}); err != nil {
			t.Fatal(err)
		}
		return inj
	}
	ret := fault.DefaultRetrier()
	abstain, err := RunFaulty(s, p, q, tbl, FaultConfig{Injector: mk(), Retrier: ret, Policy: Abstain})
	if err != nil {
		t.Fatal(err)
	}
	impute, err := RunFaulty(s, p, q, tbl, FaultConfig{Injector: mk(), Retrier: ret, Policy: Impute, Model: model})
	if err != nil {
		t.Fatal(err)
	}
	replan, err := RunFaulty(s, p, q, tbl, FaultConfig{Injector: mk(), Retrier: ret, Policy: Replan})
	if err != nil {
		t.Fatal(err)
	}
	if abstain.Abstained == 0 {
		t.Fatal("expected some ultimate failures at PTransient=0.5 with 2 retries")
	}
	if impute.Answered() <= abstain.Answered() || replan.Answered() <= abstain.Answered() {
		t.Errorf("Answered: impute=%d replan=%d abstain=%d; fallbacks must answer strictly more",
			impute.Answered(), replan.Answered(), abstain.Answered())
	}
	// Same injector and retrier: identical retry behaviour, so the extra
	// cost of answering more is bounded by the residual work.
	for name, r := range map[string]FaultResult{"impute": impute, "replan": replan} {
		if r.TotalCost < abstain.TotalCost {
			t.Errorf("%s TotalCost %.1f < abstain %.1f: answering more cannot cost less here", name, r.TotalCost, abstain.TotalCost)
		}
		if r.TotalCost > 2*abstain.TotalCost {
			t.Errorf("%s TotalCost %.1f unreasonably above abstain %.1f", name, r.TotalCost, abstain.TotalCost)
		}
	}
}

// TestRunFaultyExactAccounting replays the injector and retrier decision-
// by-decision and checks RunFaulty's cost and counter accounting to the
// last bit.
func TestRunFaultyExactAccounting(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "x", K: 4, Cost: 7},
		schema.Attribute{Name: "y", K: 2, Cost: 3},
	)
	q := query.MustNewQuery(s,
		query.Pred{Attr: 0, R: query.Range{Lo: 1, Hi: 3}},
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}},
	)
	p := plan.NewSeq(q.Preds)
	tbl := table.New(s, 200)
	for r := 0; r < 200; r++ {
		tbl.MustAppendRow([]schema.Value{schema.Value(r % 4), schema.Value((r / 2) % 2)})
	}
	inj := fault.NewInjector(2, 11)
	if err := inj.SetAttr(0, fault.AttrFault{PTransient: 0.3, PTimeout: 0.2, PStale: 0.2}); err != nil {
		t.Fatal(err)
	}
	if err := inj.SetAttr(1, fault.AttrFault{PTransient: 0.4}); err != nil {
		t.Fatal(err)
	}
	ret := fault.Retrier{MaxRetries: 2, BackoffBase: 1.5, BackoffMult: 2, BackoffCap: 5, Jitter: 0.5, TimeoutCostFactor: 2}

	res, err := RunFaulty(s, p, q, tbl, FaultConfig{Injector: inj, Retrier: ret, Policy: Abstain})
	if err != nil {
		t.Fatal(err)
	}

	// Independent replay of the executor's charging contract.
	var want FaultResult
	stale := make([]schema.Value, 2)
	haveStale := make([]bool, 2)
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		var cost, retryCost float64
		answer := query.True
		touched := false
	preds:
		for _, pd := range q.Preds {
			a := pd.Attr
			var val schema.Value
			for attempt := 0; ; attempt++ {
				c := s.Cost(a)
				cost += c
				if attempt > 0 {
					retryCost += c
				}
				o := inj.Attempt(r, a, attempt)
				if o == fault.OK {
					val = row[a]
					stale[a], haveStale[a] = row[a], true
					break
				}
				if o == fault.Stale {
					if haveStale[a] {
						val = stale[a]
						want.StaleReads++
						if val != row[a] {
							touched = true
						}
					} else {
						val = row[a]
						stale[a], haveStale[a] = row[a], true
					}
					break
				}
				if o == fault.FailTimeout {
					surch := ret.TimeoutSurcharge(c)
					cost += surch
					retryCost += surch
				}
				if attempt >= ret.MaxRetries {
					want.Failures++
					answer = query.Unknown
					break preds
				}
				b := ret.Backoff(attempt+1, inj.JitterU(r, a, attempt+1))
				cost += b
				retryCost += b
				want.Retries++
			}
			if !pd.Eval(val) {
				answer = query.False
				break
			}
		}
		want.Tuples++
		want.TotalCost += cost
		if cost > want.MaxCost {
			want.MaxCost = cost
		}
		want.RetryCost += retryCost
		truth := q.Eval(row)
		switch answer {
		case query.Unknown:
			want.Abstained++
			if truth {
				want.AbstainedTrue++
			}
		case query.True:
			want.Selected++
			if !truth && touched {
				want.FalsePositives++
			}
		default:
			if truth && touched {
				want.FalseNegatives++
			}
		}
	}

	if res.TotalCost != want.TotalCost || res.RetryCost != want.RetryCost || res.MaxCost != want.MaxCost {
		t.Errorf("cost accounting: got total=%v retry=%v max=%v, want total=%v retry=%v max=%v",
			res.TotalCost, res.RetryCost, res.MaxCost, want.TotalCost, want.RetryCost, want.MaxCost)
	}
	if res.Retries != want.Retries || res.Failures != want.Failures || res.StaleReads != want.StaleReads {
		t.Errorf("counters: got retries=%d failures=%d stale=%d, want %d/%d/%d",
			res.Retries, res.Failures, res.StaleReads, want.Retries, want.Failures, want.StaleReads)
	}
	if res.Selected != want.Selected || res.Abstained != want.Abstained || res.AbstainedTrue != want.AbstainedTrue {
		t.Errorf("answers: got selected=%d abstained=%d/%d, want %d/%d/%d",
			res.Selected, res.Abstained, res.AbstainedTrue, want.Selected, want.Abstained, want.AbstainedTrue)
	}
	if res.FalsePositives != want.FalsePositives || res.FalseNegatives != want.FalseNegatives {
		t.Errorf("FP/FN: got %d/%d, want %d/%d", res.FalsePositives, res.FalseNegatives, want.FalsePositives, want.FalseNegatives)
	}
	if res.Mismatches != 0 {
		t.Errorf("Mismatches = %d", res.Mismatches)
	}
	if res.Retries == 0 || res.StaleReads == 0 || res.Abstained == 0 {
		t.Errorf("test vacuous: retries=%d stale=%d abstained=%d — want all exercised", res.Retries, res.StaleReads, res.Abstained)
	}
}

func TestRunFaultySharedInjectorParallel(t *testing.T) {
	// One Injector backing concurrent executors must be race-free and give
	// every goroutine bit-identical results (run with -race in CI).
	s := corrSchema()
	q := corrQuery(s)
	p := corrPlan(q)
	tbl := corrTest(s)
	model := stats.NewEmpirical(corrTrain(s))
	inj := fault.NewInjector(s.NumAttrs(), 17)
	if err := inj.SetAll(fault.AttrFault{PTransient: 0.3, PStale: 0.1}); err != nil {
		t.Fatal(err)
	}
	cfg := FaultConfig{Injector: inj, Retrier: fault.DefaultRetrier(), Policy: Impute, Model: model}
	base, err := RunFaulty(s, p, q, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := RunFaulty(s, p, q, tbl, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			if !reflect.DeepEqual(res, base) {
				t.Errorf("concurrent run differs:\n got %+v\nwant %+v", res, base)
			}
		}()
	}
	wg.Wait()
}

func TestNewTupleExecutorValidation(t *testing.T) {
	s := corrSchema()
	q := corrQuery(s)
	p := corrPlan(q)
	if _, err := NewTupleExecutor(s, p, q, FaultConfig{Policy: Impute}); err == nil {
		t.Error("Impute without model accepted")
	}
	if _, err := NewTupleExecutor(s, p, q, FaultConfig{Policy: FallbackPolicy(9)}); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := NewTupleExecutor(s, p, q, FaultConfig{Injector: fault.NewInjector(2, 0)}); err == nil {
		t.Error("injector/schema attribute mismatch accepted")
	}
	if _, err := NewTupleExecutor(s, p, q, FaultConfig{Injector: fault.NewInjector(3, 0)}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestParseFallbackPolicy(t *testing.T) {
	for _, name := range []string{"abstain", "impute", "replan"} {
		pol, err := ParseFallbackPolicy(name)
		if err != nil || pol.String() != name {
			t.Errorf("round trip %q: %v, %v", name, pol, err)
		}
	}
	if _, err := ParseFallbackPolicy("retry-harder"); err == nil {
		t.Error("bad policy name accepted")
	}
}

func TestRunFaultyReplanCustomReplanner(t *testing.T) {
	s := corrSchema()
	q := corrQuery(s)
	p := corrPlan(q)
	tbl := corrTest(s)
	inj := fault.NewInjector(s.NumAttrs(), 1)
	if err := inj.SetAttr(1, fault.AttrFault{Dead: true}); err != nil {
		t.Fatal(err)
	}
	calls := 0
	cfg := FaultConfig{Injector: inj, Policy: Replan,
		Replanner: func(failed []bool, residual query.Query) (*plan.Node, error) {
			calls++
			if !failed[1] || len(residual.Preds) != 1 || residual.Preds[0].Attr != 2 {
				t.Errorf("replanner got failed=%v residual=%+v", failed, residual)
			}
			return plan.NewSeq(residual.Preds), nil
		}}
	res, err := RunFaulty(s, p, q, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("replanner called %d times; residual plans must be cached per dead-set", calls)
	}
	if res.Replans != 36 || res.Answered() != 36 {
		t.Errorf("Replans=%d Answered=%d, want 36/36", res.Replans, res.Answered())
	}

	// A replanner whose plan still touches the dead attribute is rejected
	// in favour of the safe sequential residual.
	cfg.Replanner = func(failed []bool, residual query.Query) (*plan.Node, error) {
		return plan.NewSeq(q.Preds), nil // still references dead B
	}
	res2, err := RunFaulty(s, p, q, tbl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Answered() != 36 {
		t.Errorf("bad replanner output not recovered: answered %d", res2.Answered())
	}
}

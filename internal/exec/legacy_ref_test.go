package exec

import (
	"context"
	"reflect"
	"testing"

	"acqp/internal/datagen"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
	"acqp/internal/trace"
)

// This file pins the streaming executor to the legacy tuple-at-a-time
// implementations it replaced. legacyRun/legacyRunExists/legacyRunLimit/
// legacyRunProfiled are verbatim ports of the pre-iterator entry points
// (per-row table walk, plan.Node.Execute per tuple); every wrapper and
// Execute itself must reproduce their Results bit for bit — float
// accumulation order included — across the paper's three dataset
// families.

func legacyRun(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table) Result {
	res := Result{Acquisitions: make([]int64, s.NumAttrs())}
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, cost := p.Execute(s, row, acquired)
		res.Tuples++
		res.TotalCost += cost
		if cost > res.MaxCost {
			res.MaxCost = cost
		}
		if got {
			res.Selected++
		}
		if got != q.Eval(row) {
			res.Mismatches++
		}
		for i, a := range acquired {
			if a {
				res.Acquisitions[i]++
			}
		}
	}
	return res
}

func legacyRunExists(s *schema.Schema, p *plan.Node, tbl *table.Table) (found bool, rowIdx int, cost float64) {
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, c := p.Execute(s, row, acquired)
		cost += c
		if got {
			return true, r, cost
		}
	}
	return false, -1, cost
}

func legacyRunLimit(s *schema.Schema, p *plan.Node, tbl *table.Table, limit int) (rows []int, cost float64) {
	if limit <= 0 {
		return nil, 0
	}
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows() && len(rows) < limit; r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, c := p.Execute(s, row, acquired)
		cost += c
		if got {
			rows = append(rows, r)
		}
	}
	return rows, cost
}

func legacyRunProfiled(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table, prof *trace.ExecProfile) Result {
	ids := plan.NodeIDs(p)
	res := Result{Acquisitions: make([]int64, s.NumAttrs())}
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, cost := legacyExecuteProfiled(s, p, ids, row, acquired, prof)
		prof.FinishTuple()
		res.Tuples++
		res.TotalCost += cost
		if cost > res.MaxCost {
			res.MaxCost = cost
		}
		if got {
			res.Selected++
		}
		if got != q.Eval(row) {
			res.Mismatches++
		}
		for i, a := range acquired {
			if a {
				res.Acquisitions[i]++
			}
		}
	}
	return res
}

// legacyExecuteProfiled mirrors plan.Node.Execute with per-node charge
// attribution, exactly as the pre-iterator RunProfiled did.
func legacyExecuteProfiled(s *schema.Schema, n *plan.Node, ids map[*plan.Node]int, row []schema.Value, acquired []bool, prof *trace.ExecProfile) (result bool, cost float64) {
	cur := n
	for {
		id, ok := ids[cur]
		if !ok {
			id = -1
		}
		prof.Visit(id)
		switch cur.Kind {
		case plan.Leaf:
			return cur.Result, cost
		case plan.Split:
			if !acquired[cur.Attr] {
				c := s.AcquisitionCost(cur.Attr, acquired)
				cost += c
				acquired[cur.Attr] = true
				prof.Charge(id, cur.Attr, c, 1)
			}
			if row[cur.Attr] >= cur.X {
				cur = cur.Right
			} else {
				cur = cur.Left
			}
		case plan.Seq:
			for _, pd := range cur.Preds {
				if !acquired[pd.Attr] {
					c := s.AcquisitionCost(pd.Attr, acquired)
					cost += c
					acquired[pd.Attr] = true
					prof.Charge(id, pd.Attr, c, 1)
				}
				if !pd.Eval(row[pd.Attr]) {
					return false, cost
				}
			}
			return true, cost
		default:
			panic("legacy ref: invalid node kind")
		}
	}
}

// identityCase is one dataset/seed instance of the sweep.
type identityCase struct {
	name string
	s    *schema.Schema
	q    query.Query
	tbl  *table.Table
	p    *plan.Node
}

// identityCases builds 8 seeded instances per dataset family — Lab,
// Garden, and the Babu-style synthetic — 24 in total, each with a
// greedy conditional plan built on a disjoint training split.
func identityCases(t *testing.T) []identityCase {
	t.Helper()
	var cases []identityCase
	addCase := func(name string, tbl *table.Table, q query.Query) {
		t.Helper()
		s := tbl.Schema()
		train, test := tbl.Split(0.5)
		g := opt.Greedy{SPSF: opt.UniformSPSFSame(s, 4), MaxSplits: 3, Base: opt.SeqOpt}
		p, _ := g.Plan(context.Background(), stats.NewEmpirical(train), q)
		if p == nil {
			t.Fatalf("%s: planner returned no plan", name)
		}
		cases = append(cases, identityCase{name: name, s: s, q: q, tbl: test, p: p})
	}
	for seed := int64(1); seed <= 8; seed++ {
		lab := datagen.Lab(datagen.LabConfig{Motes: 10, Rows: 2400, Seed: seed, QuietMotes: 3})
		ls := lab.Schema()
		addCase("lab", lab, query.MustNewQuery(ls,
			query.Pred{Attr: datagen.LabLight, R: query.Range{Lo: 12, Hi: 31}},
			query.Pred{Attr: datagen.LabTemp, R: query.Range{Lo: schema.Value(4 + seed%4), Hi: 31}},
		))

		garden := datagen.Garden(datagen.GardenConfig{Motes: 3, Rows: 2400, Seed: seed})
		gs := garden.Schema()
		addCase("garden", garden, query.MustNewQuery(gs,
			query.Pred{Attr: datagen.GardenTempAttr(0), R: query.Range{Lo: schema.Value(14 + seed%3), Hi: 31}},
			query.Pred{Attr: datagen.GardenHumAttr(1), R: query.Range{Lo: 0, Hi: 15}},
		))

		synthCfg := datagen.SynthConfig{N: 8, Gamma: 3, Sel: 0.5, Rows: 2400, Seed: seed}
		synth := datagen.Synthetic(synthCfg)
		addCase("synth", synth, datagen.SynthQuery(synth.Schema()))
	}
	return cases
}

// TestExecuteMatchesLegacyAcrossDatasets is the old-vs-new identity
// sweep: 24 seeded dataset instances, each executed through the legacy
// reference and through Execute (plain, profiled, exists, limit). Every
// comparison is bit-exact — reflect.DeepEqual on Results, == on floats.
func TestExecuteMatchesLegacyAcrossDatasets(t *testing.T) {
	for _, tc := range identityCases(t) {
		want := legacyRun(tc.s, tc.p, tc.q, tc.tbl)
		got := Run(tc.s, tc.p, tc.q, tc.tbl)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: Run diverged from legacy:\n got %+v\nwant %+v", tc.name, got, want)
		}

		nNodes := len(tc.p.Preorder())
		wantProf := trace.NewExecProfile(nNodes, tc.s.NumAttrs())
		wantRes := legacyRunProfiled(tc.s, tc.p, tc.q, tc.tbl, wantProf)
		gotProf := trace.NewExecProfile(nNodes, tc.s.NumAttrs())
		gotRes := RunProfiled(tc.s, tc.p, tc.q, tc.tbl, gotProf)
		if !reflect.DeepEqual(gotRes, wantRes) {
			t.Errorf("%s: RunProfiled result diverged from legacy", tc.name)
		}
		if !reflect.DeepEqual(gotProf, wantProf) {
			t.Errorf("%s: execution profile diverged from legacy", tc.name)
		}

		wf, wr, wc := legacyRunExists(tc.s, tc.p, tc.tbl)
		gf, gr, gc := RunExists(tc.s, tc.p, tc.tbl)
		if wf != gf || wr != gr || wc != gc {
			t.Errorf("%s: RunExists = (%v,%d,%v), legacy (%v,%d,%v)", tc.name, gf, gr, gc, wf, wr, wc)
		}

		for _, limit := range []int{0, 1, 5, tc.tbl.NumRows() + 1} {
			wRows, wCost := legacyRunLimit(tc.s, tc.p, tc.tbl, limit)
			gRows, gCost := RunLimit(tc.s, tc.p, tc.tbl, limit)
			if !reflect.DeepEqual(gRows, wRows) || gCost != wCost {
				t.Errorf("%s: RunLimit(%d) = (%v,%v), legacy (%v,%v)",
					tc.name, limit, gRows, gCost, wRows, wCost)
			}
		}
	}
}

// TestExecuteBatchSizeInvariant is the batch-size property test: the
// Result is bit-identical at every batch size, including size 1 (every
// row its own batch) and sizes far beyond the table.
func TestExecuteBatchSizeInvariant(t *testing.T) {
	cases := identityCases(t)
	for _, tc := range []identityCase{cases[0], cases[1], cases[2]} {
		want := Run(tc.s, tc.p, tc.q, tc.tbl)
		for _, bs := range []int{1, 7, 64, 4096} {
			got, err := Execute(context.Background(), Request{
				Schema: tc.s, Plan: tc.p, Query: tc.q,
				Options: Options{Source: NewTableSource(tc.tbl, bs)},
			})
			if err != nil {
				t.Fatalf("%s batch %d: %v", tc.name, bs, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s: batch size %d changed the Result", tc.name, bs)
			}
		}
	}
}

package exec

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
)

// synthRow fills dst with a deterministic pseudo-random binary tuple for
// global row r — the same values every call, so a FuncSource over it can
// be replayed and cross-checked without materializing anything.
func synthRow(dst []schema.Value, r int) {
	x := uint64(r)*6364136223846793005 + 1442695040888963407
	for a := range dst {
		x ^= x >> 33
		x *= 0xff51afd7ed558ccd
		dst[a] = schema.Value((x >> uint(7*a)) & 1)
	}
}

// TestExecuteStreamsLargerThanMemorySource pins the bounded-memory
// contract: a 300k-row source that exists only as a generator function
// executes batch by batch, and the verified Result (Mismatches counts
// every row against ground truth) matches an independent count of the
// satisfying tuples.
func TestExecuteStreamsLargerThanMemorySource(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	const rows = 300_000
	wantSelected := 0
	probe := make([]schema.Value, s.NumAttrs())
	for r := 0; r < rows; r++ {
		synthRow(probe, r)
		if q.Eval(probe) {
			wantSelected++
		}
	}
	emitted := 0
	src := NewFuncSource(s.NumAttrs(), 0, func(dst []schema.Value) (bool, error) {
		if emitted >= rows {
			return false, nil
		}
		synthRow(dst, emitted)
		emitted++
		return true, nil
	})
	res, err := Execute(context.Background(), Request{
		Schema: s, Plan: p, Query: q, Options: Options{Source: src},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tuples != rows {
		t.Errorf("Tuples = %d, want %d", res.Tuples, rows)
	}
	if res.Selected != wantSelected {
		t.Errorf("Selected = %d, want %d", res.Selected, wantSelected)
	}
	if res.Mismatches != 0 {
		t.Errorf("Mismatches = %d", res.Mismatches)
	}
}

// TestExecuteFuncSourceMatchesTable pins that a generator-backed source
// produces a Result bit-identical to the same rows materialized in a
// table.
func TestExecuteFuncSourceMatchesTable(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	tbl := testTable()
	r := 0
	var row []schema.Value
	src := NewFuncSource(s.NumAttrs(), 3, func(dst []schema.Value) (bool, error) {
		if r >= tbl.NumRows() {
			return false, nil
		}
		row = tbl.Row(r, row)
		copy(dst, row)
		r++
		return true, nil
	})
	got, err := Execute(context.Background(), Request{
		Schema: s, Plan: p, Query: q, Options: Options{Source: src},
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := Run(s, p, q, tbl); !reflect.DeepEqual(got, want) {
		t.Errorf("FuncSource result %+v != table result %+v", got, want)
	}
}

// TestExecuteCancellationMidRun pins the context contract: cancellation
// is observed between batches, execution stops with a partial Result,
// and the error wraps ctx.Err().
func TestExecuteCancellationMidRun(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const rows = 10_000
	const cancelAt = 1_000
	emitted := 0
	src := NewFuncSource(s.NumAttrs(), 64, func(dst []schema.Value) (bool, error) {
		if emitted == cancelAt {
			cancel()
		}
		if emitted >= rows {
			return false, nil
		}
		synthRow(dst, emitted)
		emitted++
		return true, nil
	})
	res, err := Execute(ctx, Request{
		Schema: s, Plan: p, Query: q, Options: Options{Source: src},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want a context.Canceled wrap", err)
	}
	if res.Tuples < cancelAt || res.Tuples >= rows {
		t.Errorf("Tuples = %d, want a partial count in [%d,%d)", res.Tuples, cancelAt, rows)
	}
	if want := fmt.Sprintf("exec: execution interrupted after %d tuples", res.Tuples); !contains(err.Error(), want) {
		t.Errorf("error %q does not report the partial tuple count", err)
	}
}

// TestExecuteCancelledBeforeStart pins that an already-cancelled context
// never pulls a batch.
func TestExecuteCancelledBeforeStart(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	pulled := false
	src := NewFuncSource(s.NumAttrs(), 0, func(dst []schema.Value) (bool, error) {
		pulled = true
		return false, nil
	})
	res, err := Execute(ctx, Request{
		Schema: s, Plan: p, Query: q, Options: Options{Source: src},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if pulled {
		t.Error("cancelled execution still pulled a batch")
	}
	if res.Tuples != 0 {
		t.Errorf("Tuples = %d, want 0", res.Tuples)
	}
}

// TestExecuteValidation pins the typed-error contract of the unified
// entry point.
func TestExecuteValidation(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	p := plan.NewSeq(q.Preds)
	tbl := testTable()
	src := NewTableSource(tbl, 0)
	cases := []struct {
		name string
		req  Request
	}{
		{"missing schema", Request{Plan: p, Query: q, Options: Options{Source: src}}},
		{"missing plan", Request{Schema: s, Query: q, Options: Options{Source: src}}},
		{"missing source", Request{Schema: s, Plan: p, Query: q}},
		{"exists+limit", Request{Schema: s, Plan: p, Query: q,
			Options: Options{Source: src, Exists: true, Limit: 2}}},
		{"negative limit", Request{Schema: s, Plan: p, Query: q,
			Options: Options{Source: src, Limit: -1}}},
		{"order without random access", Request{Schema: s, Plan: p, Query: q,
			Options: Options{Source: NewFuncSource(s.NumAttrs(), 0, func([]schema.Value) (bool, error) { return false, nil }), Order: []int{0}}}},
	}
	for _, tc := range cases {
		if _, err := Execute(context.Background(), tc.req); !errors.Is(err, ErrInvalidRequest) {
			t.Errorf("%s: err = %v, want ErrInvalidRequest", tc.name, err)
		}
	}
}

// TestExecuteOrderedVisitsInOrder pins the Order option against a
// hand-computed visit sequence.
func TestExecuteOrderedVisitsInOrder(t *testing.T) {
	s := testSchema()
	p := plan.NewSeq(testQuery(s).Preds)
	tbl := testTable()
	// Row 4 ({1,1,1}) satisfies; visiting it first must make it the
	// existential witness even though row 0 also satisfies.
	res, err := Execute(context.Background(), Request{
		Schema: s, Plan: p, Query: query.Query{},
		Options: Options{
			Source: NewTableSource(tbl, 0), Exists: true, SkipVerify: true,
			Order: []int{4, 0, 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.FoundRow != 4 {
		t.Errorf("Found=%v FoundRow=%d, want witness row 4", res.Found, res.FoundRow)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

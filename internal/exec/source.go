package exec

import (
	"fmt"

	"acqp/internal/schema"
	"acqp/internal/table"
)

// DefaultBatchSize is the number of rows a source yields per pull when
// the request does not set Options.BatchSize. Large enough to amortize
// per-batch overhead (virtual dispatch, context checks), small enough
// that a batch of any realistic schema stays within a few kilobytes of
// cache.
const DefaultBatchSize = 256

// Batch is a bounded, column-major buffer of tuples — the unit of data
// flow between a RowSource and the executor. Like table.Table it stores
// one column per schema attribute, so plan operators read only the
// columns they touch; unlike a table it has fixed capacity and is
// refilled in place, so a source of any length executes in constant
// memory.
type Batch struct {
	// cols[a][i] is the value of attribute a in the batch's i-th row.
	// Sources may point these at shared backing storage (table columns);
	// the executor never mutates them.
	cols [][]schema.Value
	// index[i], when non-nil, is the global row index of the i-th row
	// (ordered sources). When nil, the i-th row's index is base+i.
	index []int
	// base is the global index of row 0 when index is nil.
	base int
	// n is the number of valid rows.
	n int
}

// NewBatch allocates a batch with storage for capacity rows of numAttrs
// columns. Sources that fill batches by copying use it; sources that
// alias existing columns (TableSource) do not need the storage.
func NewBatch(numAttrs, capacity int) *Batch {
	b := &Batch{cols: make([][]schema.Value, numAttrs)}
	backing := make([]schema.Value, numAttrs*capacity)
	for a := range b.cols {
		b.cols[a] = backing[a*capacity : (a+1)*capacity : (a+1)*capacity]
	}
	return b
}

// Len returns the number of valid rows in the batch.
func (b *Batch) Len() int { return b.n }

// Col returns the column slice for attribute a, length Len.
func (b *Batch) Col(a int) []schema.Value { return b.cols[a][:b.n] }

// RowIndex returns the global row index of the batch's i-th row.
func (b *Batch) RowIndex(i int) int {
	if b.index != nil {
		return b.index[i]
	}
	return b.base + i
}

// Row copies the batch's i-th row into dst (allocating if too small).
func (b *Batch) Row(i int, dst []schema.Value) []schema.Value {
	if cap(dst) < len(b.cols) {
		dst = make([]schema.Value, len(b.cols))
	}
	dst = dst[:len(b.cols)]
	for a := range b.cols {
		dst[a] = b.cols[a][i]
	}
	return dst
}

// RowSource produces tuples in batches. It is the executor's only view
// of data: materialized tables, bounded readers over larger-than-memory
// inputs, and live stream windows all implement it.
//
// Next fills the source's current batch with the next rows and returns
// it with n > 0, or (nil, 0, nil) when the source is exhausted. The
// returned batch is only valid until the following Next call — sources
// reuse batch storage, which is what bounds memory.
type RowSource interface {
	Next() (b *Batch, n int, err error)
	// NumAttrs returns the width of every row the source yields.
	NumAttrs() int
}

// RandomAccess is implemented by sources whose rows are addressable by
// index; Options.Order requires it.
type RandomAccess interface {
	RowSource
	// NumRows returns the total number of rows.
	NumRows() int
	// At copies row r into dst (allocating if too small) and returns it.
	At(r int, dst []schema.Value) []schema.Value
}

// TableSource streams a materialized table in batches of column
// sub-slices — zero copies, the batch aliases the table's columns.
type TableSource struct {
	t     *table.Table
	size  int
	pos   int
	batch Batch
}

// NewTableSource wraps a table as a RowSource. size <= 0 selects
// DefaultBatchSize.
func NewTableSource(t *table.Table, size int) *TableSource {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &TableSource{
		t: t, size: size,
		batch: Batch{cols: make([][]schema.Value, t.Schema().NumAttrs())},
	}
}

// NumAttrs implements RowSource.
func (ts *TableSource) NumAttrs() int { return ts.t.Schema().NumAttrs() }

// NumRows implements RandomAccess.
func (ts *TableSource) NumRows() int { return ts.t.NumRows() }

// At implements RandomAccess.
func (ts *TableSource) At(r int, dst []schema.Value) []schema.Value { return ts.t.Row(r, dst) }

// Next implements RowSource.
func (ts *TableSource) Next() (*Batch, int, error) {
	if ts.pos >= ts.t.NumRows() {
		return nil, 0, nil
	}
	hi := ts.pos + ts.size
	if hi > ts.t.NumRows() {
		hi = ts.t.NumRows()
	}
	for a := range ts.batch.cols {
		ts.batch.cols[a] = ts.t.Col(a)[ts.pos:hi]
	}
	ts.batch.base = ts.pos
	ts.batch.n = hi - ts.pos
	ts.pos = hi
	return &ts.batch, ts.batch.n, nil
}

// orderedSource visits a random-access source's rows in an explicit
// order, gathering them into a bounded batch.
type orderedSource struct {
	src   RandomAccess
	order []int
	size  int
	pos   int
	batch *Batch
	row   []schema.Value
}

// NewOrderedSource visits src's rows in the given order (indexes into
// src). size <= 0 selects DefaultBatchSize.
func NewOrderedSource(src RandomAccess, order []int, size int) RowSource {
	if size <= 0 {
		size = DefaultBatchSize
	}
	if size > len(order) && len(order) > 0 {
		size = len(order)
	}
	b := NewBatch(src.NumAttrs(), size)
	b.index = make([]int, 0, size)
	return &orderedSource{src: src, order: order, size: size, batch: b}
}

// NumAttrs implements RowSource.
func (os *orderedSource) NumAttrs() int { return os.src.NumAttrs() }

// Next implements RowSource.
func (os *orderedSource) Next() (*Batch, int, error) {
	if os.pos >= len(os.order) {
		return nil, 0, nil
	}
	hi := os.pos + os.size
	if hi > len(os.order) {
		hi = len(os.order)
	}
	b := os.batch
	b.index = b.index[:0]
	n := 0
	for _, r := range os.order[os.pos:hi] {
		if r < 0 || r >= os.src.NumRows() {
			return nil, 0, fmt.Errorf("exec: ordered source: row index %d out of range [0,%d)", r, os.src.NumRows())
		}
		os.row = os.src.At(r, os.row)
		for a, v := range os.row {
			b.cols[a][n] = v
		}
		b.index = append(b.index, r)
		n++
	}
	b.n = n
	os.pos = hi
	return b, n, nil
}

// FuncSource pulls rows one at a time from a producer callback into a
// bounded batch — the adapter for larger-than-memory inputs (row
// generators, decoded files, network feeds). Memory use is one batch
// regardless of how many rows the producer yields.
type FuncSource struct {
	numAttrs int
	size     int
	produced int
	done     bool
	next     func(dst []schema.Value) (bool, error)
	batch    *Batch
	row      []schema.Value
}

// NewFuncSource wraps a producer: next must fill dst with the next row
// and return true, or return false when exhausted. size <= 0 selects
// DefaultBatchSize.
func NewFuncSource(numAttrs, size int, next func(dst []schema.Value) (bool, error)) *FuncSource {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &FuncSource{
		numAttrs: numAttrs,
		size:     size,
		next:     next,
		batch:    NewBatch(numAttrs, size),
		row:      make([]schema.Value, numAttrs),
	}
}

// NumAttrs implements RowSource.
func (fs *FuncSource) NumAttrs() int { return fs.numAttrs }

// Next implements RowSource.
func (fs *FuncSource) Next() (*Batch, int, error) {
	if fs.done {
		return nil, 0, nil
	}
	b := fs.batch
	b.base = fs.produced
	n := 0
	for n < fs.size {
		ok, err := fs.next(fs.row)
		if err != nil {
			return nil, 0, fmt.Errorf("exec: source: %w", err)
		}
		if !ok {
			fs.done = true
			break
		}
		for a, v := range fs.row {
			b.cols[a][n] = v
		}
		n++
	}
	b.n = n
	fs.produced += n
	if n == 0 {
		return nil, 0, nil
	}
	return b, n, nil
}

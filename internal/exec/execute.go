package exec

import (
	"context"
	"errors"
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/trace"
)

// ErrInvalidRequest is wrapped by every Execute validation failure;
// callers match it with errors.Is.
var ErrInvalidRequest = errors.New("exec: invalid request")

// Options composes the execution features that used to be separate
// entry points. The zero value is a plain metered run over the whole
// source, verified against ground truth.
type Options struct {
	// Source supplies the tuples. Required.
	Source RowSource
	// Profile, when non-nil, receives per-plan-node and per-attribute
	// cost attribution (see trace.ExecProfile). Size it for the plan's
	// Preorder length. Nil disables attribution at zero cost.
	Profile *trace.ExecProfile
	// Faults, when non-nil, runs the fault-aware executor: acquisition
	// attempts are filtered through the injector and failures resolved by
	// the fallback policy, with retry costs metered (see FaultConfig; its
	// own Profile field is ignored — set Options.Profile).
	Faults *FaultConfig
	// Limit, when positive, stops execution once Limit satisfying tuples
	// have been found; their global row indexes are collected in
	// Result.Rows. Mutually exclusive with Exists.
	Limit int
	// Exists stops execution at the first satisfying tuple, reported in
	// Result.Found / Result.FoundRow. Mutually exclusive with Limit.
	Exists bool
	// Order visits the source's rows in this explicit order (global row
	// indexes). Requires a Source implementing RandomAccess.
	Order []int
	// BatchSize overrides the batch size of executor-built adapters (the
	// Order gather source). Sources carry their own batch size; this does
	// not change it. Zero selects DefaultBatchSize.
	BatchSize int
	// SkipVerify disables the ground-truth check that counts
	// Result.Mismatches — the existential and limit wrappers skip it, as
	// their legacy counterparts did.
	SkipVerify bool
}

// Request is one execution: a plan over a source, verified against the
// query, under composable options.
type Request struct {
	Schema  *schema.Schema
	Plan    *plan.Node
	Query   query.Query
	Options Options
}

// FaultStats is the fault-path accounting attached to a Result when
// Options.Faults is set. Field meanings match FaultResult.
type FaultStats struct {
	Failures       int
	Retries        int
	RetryCost      float64
	StaleReads     int
	Abstained      int
	AbstainedTrue  int
	Imputed        int
	Replans        int
	FalsePositives int
	FalseNegatives int
}

// Execute runs one plan over one source with acquisition metering — the
// single entry point behind the legacy Run* wrappers. Profiling, fault
// injection, limits, and existential short-circuiting compose freely;
// with none of them set it produces a Result bit-identical to the
// historical Run.
//
// Execution streams: the source is pulled one bounded batch at a time,
// so sources larger than memory (and live stream windows) execute in
// constant space. ctx is checked between batches; on cancellation the
// partial Result is returned alongside an error wrapping ctx.Err().
func Execute(ctx context.Context, req Request) (Result, error) {
	if err := validate(req); err != nil {
		return Result{}, err
	}
	o := req.Options
	src := o.Source
	if len(o.Order) > 0 {
		src = NewOrderedSource(src.(RandomAccess), o.Order, o.BatchSize)
	}
	if o.Faults != nil {
		return executeFaulty(ctx, req, src)
	}
	return executePristine(ctx, req, src)
}

func validate(req Request) error {
	o := req.Options
	switch {
	case req.Schema == nil || req.Schema.NumAttrs() == 0:
		return fmt.Errorf("%w: missing schema", ErrInvalidRequest)
	case req.Plan == nil:
		return fmt.Errorf("%w: missing plan", ErrInvalidRequest)
	case o.Source == nil:
		return fmt.Errorf("%w: missing source", ErrInvalidRequest)
	case o.Source.NumAttrs() != req.Schema.NumAttrs():
		return fmt.Errorf("%w: source yields %d attributes, schema has %d",
			ErrInvalidRequest, o.Source.NumAttrs(), req.Schema.NumAttrs())
	case o.Exists && o.Limit > 0:
		return fmt.Errorf("%w: Exists and Limit are mutually exclusive", ErrInvalidRequest)
	case o.Limit < 0:
		return fmt.Errorf("%w: negative Limit %d", ErrInvalidRequest, o.Limit)
	}
	if len(o.Order) > 0 {
		if _, ok := o.Source.(RandomAccess); !ok {
			return fmt.Errorf("%w: Order requires a random-access source", ErrInvalidRequest)
		}
	}
	return nil
}

// interrupted wraps a context cancellation observed between batches.
func interrupted(res Result, err error) (Result, error) {
	return res, fmt.Errorf("exec: execution interrupted after %d tuples: %w", res.Tuples, err)
}

// executePristine is the fault-free streaming loop: compile the plan,
// pull batches, evaluate each row against the batch's columns directly
// (no per-row copy), and fold outcomes into the Result in exactly the
// accumulation order of the legacy tuple-at-a-time executor.
func executePristine(ctx context.Context, req Request, src RowSource) (Result, error) {
	s, q, o := req.Schema, req.Query, req.Options
	pg := compile(req.Plan)
	prof := o.Profile
	res := Result{Acquisitions: make([]int64, s.NumAttrs())}
	if o.Exists {
		res.FoundRow = -1
	}
	acquired := make([]bool, s.NumAttrs())
	for {
		if err := ctx.Err(); err != nil {
			return interrupted(res, err)
		}
		b, n, err := src.Next()
		if err != nil {
			return res, err
		}
		if n == 0 {
			return res, nil
		}
		cols := b.cols
		for i := 0; i < n; i++ {
			for j := range acquired {
				acquired[j] = false
			}
			var got bool
			var cost float64
			if prof != nil {
				got, cost = pg.runProfiled(s, cols, i, acquired, prof)
				prof.FinishTuple()
			} else {
				got, cost = pg.run(s, cols, i, acquired)
			}
			res.Tuples++
			res.TotalCost += cost
			if cost > res.MaxCost {
				res.MaxCost = cost
			}
			if got {
				res.Selected++
			}
			if !o.SkipVerify && got != evalCols(q, cols, i) {
				res.Mismatches++
			}
			for a, acq := range acquired {
				if acq {
					res.Acquisitions[a]++
				}
			}
			if got {
				if o.Exists {
					res.Found = true
					res.FoundRow = b.RowIndex(i)
					return res, nil
				}
				if o.Limit > 0 {
					res.Rows = append(res.Rows, b.RowIndex(i))
					if len(res.Rows) >= o.Limit {
						return res, nil
					}
				}
			}
		}
	}
}

// executeFaulty is the streaming loop under fault injection: one
// TupleExecutor carries cross-tuple state (stale latches, learned-dead
// sensors, residual-plan cache) across batches, and outcomes are folded
// with the answered-only accounting of the legacy RunFaulty.
func executeFaulty(ctx context.Context, req Request, src RowSource) (Result, error) {
	s, q, o := req.Schema, req.Query, req.Options
	cfg := *o.Faults
	cfg.Profile = o.Profile
	ex, err := NewTupleExecutor(s, req.Plan, q, cfg)
	if err != nil {
		return Result{}, err
	}
	res := Result{Acquisitions: make([]int64, s.NumAttrs()), Fault: &FaultStats{}}
	fs := res.Fault
	if o.Exists {
		res.FoundRow = -1
	}
	var row []schema.Value
	for {
		if err := ctx.Err(); err != nil {
			copy(res.Acquisitions, ex.AcquisitionCounts())
			return interrupted(res, err)
		}
		b, n, err := src.Next()
		if err != nil {
			copy(res.Acquisitions, ex.AcquisitionCounts())
			return res, err
		}
		if n == 0 {
			copy(res.Acquisitions, ex.AcquisitionCounts())
			return res, nil
		}
		for i := 0; i < n; i++ {
			row = b.Row(i, row)
			out := ex.ExecTuple(b.RowIndex(i), row)
			cfg.Profile.FinishTuple()
			res.Tuples++
			res.TotalCost += out.Cost
			if out.Cost > res.MaxCost {
				res.MaxCost = out.Cost
			}
			fs.RetryCost += out.RetryCost
			fs.Retries += out.Retries
			fs.Failures += out.Failures
			fs.StaleReads += out.StaleReads
			fs.Imputed += out.Imputed
			if out.Replanned {
				fs.Replans++
			}
			var truth bool
			if !o.SkipVerify {
				truth = q.Eval(row)
			}
			switch out.Answer {
			case query.Unknown:
				fs.Abstained++
				if truth {
					fs.AbstainedTrue++
				}
			case query.True:
				res.Selected++
				if !o.SkipVerify && !truth {
					if out.Touched {
						fs.FalsePositives++
					} else {
						res.Mismatches++
					}
				}
			default:
				if !o.SkipVerify && truth {
					if out.Touched {
						fs.FalseNegatives++
					} else {
						res.Mismatches++
					}
				}
			}
			if out.Answer == query.True {
				if o.Exists {
					res.Found = true
					res.FoundRow = b.RowIndex(i)
					copy(res.Acquisitions, ex.AcquisitionCounts())
					return res, nil
				}
				if o.Limit > 0 {
					res.Rows = append(res.Rows, b.RowIndex(i))
					if len(res.Rows) >= o.Limit {
						copy(res.Acquisitions, ex.AcquisitionCounts())
						return res, nil
					}
				}
			}
		}
	}
}

// evalCols is query.Query.Eval over a batch's columns, avoiding the
// per-row copy the slice-based Eval would need.
func evalCols(q query.Query, cols [][]schema.Value, i int) bool {
	for _, p := range q.Preds {
		if !p.Eval(cols[p.Attr][i]) {
			return false
		}
	}
	return true
}

package exec

import (
	"math/rand"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// existsWorld: a cheap beacon strongly predicts the expensive sensor.
func existsWorld(t *testing.T) (*schema.Schema, *table.Table, *table.Table, query.Query) {
	t.Helper()
	s := schema.New(
		schema.Attribute{Name: "beacon", K: 4, Cost: 1},
		schema.Attribute{Name: "sensor", K: 4, Cost: 100},
	)
	rng := rand.New(rand.NewSource(8))
	gen := func(n int, seed int64) *table.Table {
		r := rand.New(rand.NewSource(seed))
		tbl := table.New(s, n)
		for i := 0; i < n; i++ {
			b := r.Intn(4)
			v := b
			if r.Float64() < 0.15 {
				v = r.Intn(4)
			}
			tbl.MustAppendRow([]schema.Value{schema.Value(b), schema.Value(v)})
		}
		return tbl
	}
	_ = rng
	hist := gen(3000, 1)
	// Candidate set: mostly non-matching tuples first, matches late.
	candidates := table.New(s, 40)
	for i := 0; i < 36; i++ {
		candidates.MustAppendRow([]schema.Value{0, 0})
	}
	for i := 0; i < 4; i++ {
		candidates.MustAppendRow([]schema.Value{3, 3})
	}
	q := query.MustNewQuery(s, query.Pred{Attr: 1, R: query.Range{Lo: 3, Hi: 3}})
	return s, hist, candidates, q
}

func TestRankByCheapEvidenceOrdersLikelyFirst(t *testing.T) {
	s, hist, candidates, q := existsWorld(t)
	d := stats.NewEmpirical(hist)
	order, evidenceCost := RankByCheapEvidence(d, q, candidates, 1)
	if len(order) != candidates.NumRows() {
		t.Fatalf("order has %d entries", len(order))
	}
	// Cheap evidence cost: one beacon per candidate.
	if evidenceCost != float64(candidates.NumRows()) {
		t.Errorf("evidence cost = %g, want %d", evidenceCost, candidates.NumRows())
	}
	// The four beacon=3 candidates (rows 36..39) must rank first.
	for i := 0; i < 4; i++ {
		if order[i] < 36 {
			t.Fatalf("order[%d] = %d; beacon=3 rows not ranked first: %v", i, order[i], order[:6])
		}
	}
	_ = s
}

func TestOrderedExistsBeatsNaturalOrder(t *testing.T) {
	s, hist, candidates, q := existsWorld(t)
	d := stats.NewEmpirical(hist)
	p := plan.NewSeq(q.Preds)

	_, _, naturalCost := RunExists(s, p, candidates)
	order, evidenceCost := RankByCheapEvidence(d, q, candidates, 1)
	found, rowIdx, orderedCost := RunExistsOrdered(s, p, candidates, order)
	if !found || rowIdx < 36 {
		t.Fatalf("ordered exists found=%v row=%d", found, rowIdx)
	}
	// Natural order probes 37 tuples at 100 each; ordered probes 1 plus
	// 40 cheap beacons.
	if orderedCost+evidenceCost >= naturalCost {
		t.Errorf("ordered total %g not below natural %g",
			orderedCost+evidenceCost, naturalCost)
	}
}

func TestRunExistsOrderedNoMatch(t *testing.T) {
	s, _, candidates, _ := existsWorld(t)
	never := plan.NewLeaf(false)
	order := make([]int, candidates.NumRows())
	for i := range order {
		order[i] = candidates.NumRows() - 1 - i // reverse order
	}
	found, idx, cost := RunExistsOrdered(s, never, candidates, order)
	if found || idx != -1 || cost != 0 {
		t.Errorf("found=%v idx=%d cost=%g", found, idx, cost)
	}
}

package exec

import (
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
	"acqp/internal/trace"
)

// RunProfiled is Run with optional per-node cost attribution: when prof
// is non-nil, every acquisition charge is attributed to the plan node
// (by pre-order ID, see plan.NodeIDs) and attribute that paid it, and
// node visit counts are recorded. The returned Result is identical to
// Run's — the profiled traversal pays the same charges in the same
// order, so per-tuple and total costs match bit for bit (pinned by
// TestRunProfiledMatchesRun). A nil prof delegates to Run outright.
//
// Deprecated: use Execute with Options.Profile.
func RunProfiled(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table, prof *trace.ExecProfile) Result {
	return mustExecute(s, p, q, Options{Source: NewTableSource(tbl, 0), Profile: prof})
}

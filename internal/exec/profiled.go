package exec

import (
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
	"acqp/internal/trace"
)

// RunProfiled is Run with optional per-node cost attribution: when prof
// is non-nil, every acquisition charge is attributed to the plan node
// (by pre-order ID, see plan.NodeIDs) and attribute that paid it, and
// node visit counts are recorded. The returned Result is identical to
// Run's — the profiled traversal pays the same charges in the same
// order, so per-tuple and total costs match bit for bit (pinned by
// TestRunProfiledMatchesRun). A nil prof delegates to Run outright.
func RunProfiled(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table, prof *trace.ExecProfile) Result {
	if prof == nil {
		return Run(s, p, q, tbl)
	}
	ids := plan.NodeIDs(p)
	res := Result{Acquisitions: make([]int64, s.NumAttrs())}
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, cost := executeProfiled(s, p, ids, row, acquired, prof)
		prof.FinishTuple()
		res.Tuples++
		res.TotalCost += cost
		if cost > res.MaxCost {
			res.MaxCost = cost
		}
		if got {
			res.Selected++
		}
		if got != q.Eval(row) {
			res.Mismatches++
		}
		for i, a := range acquired {
			if a {
				res.Acquisitions[i]++
			}
		}
	}
	return res
}

// executeProfiled mirrors plan.Node.Execute exactly — same traversal,
// same first-touch charging, same cost accumulation order — while
// attributing each charge to the node that paid it. Any divergence from
// Execute here breaks the bit-identity invariant.
func executeProfiled(s *schema.Schema, n *plan.Node, ids map[*plan.Node]int, row []schema.Value, acquired []bool, prof *trace.ExecProfile) (result bool, cost float64) {
	cur := n
	for {
		id, ok := ids[cur]
		if !ok {
			id = -1
		}
		prof.Visit(id)
		switch cur.Kind {
		case plan.Leaf:
			return cur.Result, cost
		case plan.Split:
			if !acquired[cur.Attr] {
				c := s.AcquisitionCost(cur.Attr, acquired)
				cost += c
				acquired[cur.Attr] = true
				prof.Charge(id, cur.Attr, c, 1)
			}
			if row[cur.Attr] >= cur.X {
				cur = cur.Right
			} else {
				cur = cur.Left
			}
		case plan.Seq:
			for _, pd := range cur.Preds {
				if !acquired[pd.Attr] {
					c := s.AcquisitionCost(pd.Attr, acquired)
					cost += c
					acquired[pd.Attr] = true
					prof.Charge(id, pd.Attr, c, 1)
				}
				if !pd.Eval(row[pd.Attr]) {
					return false, cost
				}
			}
			return true, cost
		default:
			panic(fmt.Sprintf("exec: invalid node kind %d", cur.Kind))
		}
	}
}

package exec

import (
	"math"
	"reflect"
	"testing"

	"acqp/internal/fault"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/trace"
)

func TestRunProfiledMatchesRun(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	tbl := testTable()
	// A seq plan and a split tree whose branches order the predicates
	// differently, so both branch nodes see distinct traffic.
	for name, p := range map[string]*plan.Node{
		"seq":   plan.NewSeq(q.Preds),
		"split": plan.NewSplit(0, 1, plan.NewSeq(q.Preds), plan.NewSeq([]query.Pred{q.Preds[1], q.Preds[0]})),
	} {
		want := Run(s, p, q, tbl)
		prof := trace.NewExecProfile(p.NumNodes(), s.NumAttrs())
		got := RunProfiled(s, p, q, tbl, prof)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: RunProfiled result differs:\n got %+v\nwant %+v", name, got, want)
		}
		// Bit-exact accounting: integer costs, so the per-node sum must
		// reproduce the executor's total exactly, not approximately.
		if prof.SumNodeCost() != want.TotalCost {
			t.Errorf("%s: SumNodeCost = %v, TotalCost = %v (bits %x vs %x)",
				name, prof.SumNodeCost(), want.TotalCost,
				math.Float64bits(prof.SumNodeCost()), math.Float64bits(want.TotalCost))
		}
		if prof.TotalCost != want.TotalCost {
			t.Errorf("%s: profile TotalCost = %v, want %v", name, prof.TotalCost, want.TotalCost)
		}
		if prof.Tuples != int64(want.Tuples) {
			t.Errorf("%s: profile Tuples = %d, want %d", name, prof.Tuples, want.Tuples)
		}
		if prof.NodeVisits[0] != int64(want.Tuples) {
			t.Errorf("%s: root visits = %d, want %d", name, prof.NodeVisits[0], want.Tuples)
		}
		for a := range want.Acquisitions {
			if prof.AttrAcquisitions[a] != want.Acquisitions[a] {
				t.Errorf("%s: attr %d acquisitions = %d, want %d", name, a, prof.AttrAcquisitions[a], want.Acquisitions[a])
			}
		}
	}
}

func TestRunProfiledNilDelegatesToRun(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	tbl := testTable()
	p := plan.NewSeq(q.Preds)
	want := Run(s, p, q, tbl)
	got := RunProfiled(s, p, q, tbl, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("nil-profile RunProfiled differs from Run")
	}
}

// TestRunFaultyProfiled checks attribution on the fault path: with an
// inactive injector the profile matches the pristine one; with faults
// the profile's TotalCost still accounts for every charge, including
// retries, surcharges, and backoff.
func TestRunFaultyProfiled(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	tbl := testTable()
	p := plan.NewSeq(q.Preds)

	// p=0: profile identical to the pristine RunProfiled profile.
	inj := fault.NewInjector(s.NumAttrs(), 42)
	prof := trace.NewExecProfile(p.NumNodes(), s.NumAttrs())
	res, err := RunFaulty(s, p, q, tbl, FaultConfig{Injector: inj, Retrier: fault.DefaultRetrier(), Profile: prof})
	if err != nil {
		t.Fatalf("RunFaulty: %v", err)
	}
	pristine := trace.NewExecProfile(p.NumNodes(), s.NumAttrs())
	RunProfiled(s, p, q, tbl, pristine)
	if !reflect.DeepEqual(prof, pristine) {
		t.Errorf("p=0 fault profile differs from pristine profile:\n got %+v\nwant %+v", prof, pristine)
	}
	if prof.TotalCost != res.TotalCost {
		t.Errorf("p=0: profile TotalCost = %v, result TotalCost = %v", prof.TotalCost, res.TotalCost)
	}

	// Faulty run: every charge (retries included) lands in the profile.
	inj2 := fault.NewInjector(s.NumAttrs(), 7)
	if err := inj2.SetAll(fault.AttrFault{PTransient: 0.3}); err != nil {
		t.Fatalf("SetAll: %v", err)
	}
	prof2 := trace.NewExecProfile(p.NumNodes(), s.NumAttrs())
	res2, err := RunFaulty(s, p, q, tbl, FaultConfig{Injector: inj2, Retrier: fault.DefaultRetrier(), Profile: prof2})
	if err != nil {
		t.Fatalf("RunFaulty faulty: %v", err)
	}
	if math.Abs(prof2.TotalCost-res2.TotalCost) > 1e-9 {
		t.Errorf("faulty: profile TotalCost = %v, result TotalCost = %v", prof2.TotalCost, res2.TotalCost)
	}
	if prof2.Tuples != int64(res2.Tuples) {
		t.Errorf("faulty: profile Tuples = %d, want %d", prof2.Tuples, res2.Tuples)
	}
}

// TestRunFaultyProfiledReplan checks that charges made inside a
// replanned residual plan (whose nodes are not in the profiled plan)
// are kept in the run totals without corrupting per-node attribution.
func TestRunFaultyProfiledReplan(t *testing.T) {
	s := testSchema()
	q := testQuery(s)
	tbl := testTable()
	p := plan.NewSeq(q.Preds)

	inj := fault.NewInjector(s.NumAttrs(), 3)
	if err := inj.SetAttr(1, fault.AttrFault{Dead: true}); err != nil {
		t.Fatalf("SetAttr: %v", err)
	}
	prof := trace.NewExecProfile(p.NumNodes(), s.NumAttrs())
	res, err := RunFaulty(s, p, q, tbl, FaultConfig{
		Injector: inj, Retrier: fault.DefaultRetrier(), Policy: Replan, Profile: prof,
	})
	if err != nil {
		t.Fatalf("RunFaulty: %v", err)
	}
	if res.Replans == 0 {
		t.Fatalf("expected replans with a dead attribute")
	}
	if math.Abs(prof.TotalCost-res.TotalCost) > 1e-9 {
		t.Errorf("replan: profile TotalCost = %v, result TotalCost = %v", prof.TotalCost, res.TotalCost)
	}
	// Residual-plan charges are totals-only: the per-node sum may fall
	// short of the total but must never exceed it.
	if prof.SumNodeCost() > prof.TotalCost+1e-9 {
		t.Errorf("replan: SumNodeCost %v exceeds TotalCost %v", prof.SumNodeCost(), prof.TotalCost)
	}
}

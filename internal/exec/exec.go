// Package exec runs query plans over row sources with full acquisition
// metering. It is the measurement harness behind the paper's evaluation:
// plans are built on training data and then costed per-tuple over a
// disjoint test window (Section 6, "Test v. Training"), charging each
// attribute acquisition at its schema cost.
//
// Execute is the entry point: one streaming, batch-at-a-time executor
// over which profiling, fault injection, limits, existential
// short-circuiting, and explicit row orders compose as Options. The
// historical entry points (Run, RunExists, RunLimit, RunExistsOrdered,
// RunProfiled, RunFaulty) remain as thin wrappers.
package exec

import (
	"context"
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// Result summarizes one plan execution over a source.
type Result struct {
	// Tuples is the number of tuples processed.
	Tuples int
	// Selected is the number of tuples the plan output as satisfying.
	Selected int
	// TotalCost is the summed acquisition cost over all tuples.
	TotalCost float64
	// MaxCost is the largest per-tuple acquisition cost observed.
	MaxCost float64
	// Mismatches counts tuples where the plan's output differed from the
	// ground-truth phi(x). A correct plan always reports zero; a nonzero
	// value indicates a planner bug.
	Mismatches int
	// Acquisitions counts, per attribute, how many tuples acquired it.
	Acquisitions []int64

	// Found and FoundRow report the first satisfying tuple under
	// Options.Exists (FoundRow is -1 when none exists, and 0 when the
	// option was not set). Rows collects the selected global row indexes
	// under Options.Limit. Fault carries fault-path accounting when
	// Options.Faults was set, nil otherwise.
	Found    bool
	FoundRow int
	Rows     []int
	Fault    *FaultStats
}

// MeanCost returns the average per-tuple acquisition cost, the quantity
// the paper's figures report.
func (r Result) MeanCost() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return r.TotalCost / float64(r.Tuples)
}

// Selectivity returns the fraction of tuples selected.
func (r Result) Selectivity() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.Selected) / float64(r.Tuples)
}

func (r Result) String() string {
	return fmt.Sprintf("tuples=%d selected=%d mean-cost=%.3f max-cost=%.1f mismatches=%d",
		r.Tuples, r.Selected, r.MeanCost(), r.MaxCost, r.Mismatches)
}

// AsFaultResult converts a Result produced with Options.Faults into the
// legacy FaultResult shape; the embedded Result has the fault stats
// detached so it compares equal to a fault-free Result when no fault
// fired.
func (r Result) AsFaultResult() FaultResult {
	fs := r.Fault
	if fs == nil {
		fs = &FaultStats{}
	}
	r.Fault = nil
	return FaultResult{
		Result:         r,
		Failures:       fs.Failures,
		Retries:        fs.Retries,
		RetryCost:      fs.RetryCost,
		StaleReads:     fs.StaleReads,
		Abstained:      fs.Abstained,
		AbstainedTrue:  fs.AbstainedTrue,
		Imputed:        fs.Imputed,
		Replans:        fs.Replans,
		FalsePositives: fs.FalsePositives,
		FalseNegatives: fs.FalseNegatives,
	}
}

// mustExecute backs the legacy wrappers, whose signatures predate both
// context plumbing and error returns: with a valid schema/plan/table and
// no fault config, Execute cannot fail.
func mustExecute(s *schema.Schema, p *plan.Node, q query.Query, o Options) Result {
	//acqlint:ignore ctxbg legacy wrapper with no ctx parameter; Execute is the context-threading API
	res, err := Execute(context.Background(), Request{Schema: s, Plan: p, Query: q, Options: o})
	if err != nil {
		panic(fmt.Sprintf("exec: legacy wrapper: %v", err))
	}
	return res
}

// Run executes the plan over every tuple of the table, verifying each
// output against the ground-truth query evaluation.
//
// Deprecated: use Execute with a TableSource.
func Run(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table) Result {
	return mustExecute(s, p, q, Options{Source: NewTableSource(tbl, 0)})
}

// RunExists executes the plan over tuples in order until the first
// satisfying tuple is found — the existential-query extension of
// Section 7 ("is there a sensor recording high light and temperature?").
// It returns whether a satisfying tuple exists, its row index (-1 if
// none), and the acquisition cost spent to decide.
//
// Deprecated: use Execute with Options.Exists.
func RunExists(s *schema.Schema, p *plan.Node, tbl *table.Table) (found bool, rowIdx int, cost float64) {
	res := mustExecute(s, p, query.Query{}, Options{
		Source: NewTableSource(tbl, 0), Exists: true, SkipVerify: true,
	})
	return res.Found, res.FoundRow, res.TotalCost
}

// RunLimit executes the plan until limit satisfying tuples have been
// found (the LIMIT-clause extension of Section 7), returning the selected
// row indexes and total cost.
//
// Deprecated: use Execute with Options.Limit.
func RunLimit(s *schema.Schema, p *plan.Node, tbl *table.Table, limit int) (rows []int, cost float64) {
	if limit <= 0 {
		return nil, 0
	}
	res := mustExecute(s, p, query.Query{}, Options{
		Source: NewTableSource(tbl, 0), Limit: limit, SkipVerify: true,
	})
	return res.Rows, res.TotalCost
}

// CompareOnTest builds a convenience ratio table: for each plan, the mean
// per-tuple cost over the test table. Used by the experiment harnesses.
func CompareOnTest(s *schema.Schema, q query.Query, test *table.Table, plans map[string]*plan.Node) map[string]Result {
	out := make(map[string]Result, len(plans))
	for name, p := range plans {
		out[name] = Run(s, p, q, test)
	}
	return out
}

// Package exec runs query plans over test datasets with full acquisition
// metering. It is the measurement harness behind the paper's evaluation:
// plans are built on training data and then costed per-tuple over a
// disjoint test window (Section 6, "Test v. Training"), charging each
// attribute acquisition at its schema cost.
package exec

import (
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// Result summarizes one plan execution over a table.
type Result struct {
	// Tuples is the number of tuples processed.
	Tuples int
	// Selected is the number of tuples the plan output as satisfying.
	Selected int
	// TotalCost is the summed acquisition cost over all tuples.
	TotalCost float64
	// MaxCost is the largest per-tuple acquisition cost observed.
	MaxCost float64
	// Mismatches counts tuples where the plan's output differed from the
	// ground-truth phi(x). A correct plan always reports zero; a nonzero
	// value indicates a planner bug.
	Mismatches int
	// Acquisitions counts, per attribute, how many tuples acquired it.
	Acquisitions []int64
}

// MeanCost returns the average per-tuple acquisition cost, the quantity
// the paper's figures report.
func (r Result) MeanCost() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return r.TotalCost / float64(r.Tuples)
}

// Selectivity returns the fraction of tuples selected.
func (r Result) Selectivity() float64 {
	if r.Tuples == 0 {
		return 0
	}
	return float64(r.Selected) / float64(r.Tuples)
}

func (r Result) String() string {
	return fmt.Sprintf("tuples=%d selected=%d mean-cost=%.3f max-cost=%.1f mismatches=%d",
		r.Tuples, r.Selected, r.MeanCost(), r.MaxCost, r.Mismatches)
}

// Run executes the plan over every tuple of the table, verifying each
// output against the ground-truth query evaluation.
func Run(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table) Result {
	res := Result{Acquisitions: make([]int64, s.NumAttrs())}
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, cost := p.Execute(s, row, acquired)
		res.Tuples++
		res.TotalCost += cost
		if cost > res.MaxCost {
			res.MaxCost = cost
		}
		if got {
			res.Selected++
		}
		if got != q.Eval(row) {
			res.Mismatches++
		}
		for i, a := range acquired {
			if a {
				res.Acquisitions[i]++
			}
		}
	}
	return res
}

// RunExists executes the plan over tuples in order until the first
// satisfying tuple is found — the existential-query extension of
// Section 7 ("is there a sensor recording high light and temperature?").
// It returns whether a satisfying tuple exists, its row index (-1 if
// none), and the acquisition cost spent to decide.
func RunExists(s *schema.Schema, p *plan.Node, tbl *table.Table) (found bool, rowIdx int, cost float64) {
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, c := p.Execute(s, row, acquired)
		cost += c
		if got {
			return true, r, cost
		}
	}
	return false, -1, cost
}

// RunLimit executes the plan until limit satisfying tuples have been
// found (the LIMIT-clause extension of Section 7), returning the selected
// row indexes and total cost.
func RunLimit(s *schema.Schema, p *plan.Node, tbl *table.Table, limit int) (rows []int, cost float64) {
	if limit <= 0 {
		return nil, 0
	}
	acquired := make([]bool, s.NumAttrs())
	var row []schema.Value
	for r := 0; r < tbl.NumRows() && len(rows) < limit; r++ {
		row = tbl.Row(r, row)
		for i := range acquired {
			acquired[i] = false
		}
		got, c := p.Execute(s, row, acquired)
		cost += c
		if got {
			rows = append(rows, r)
		}
	}
	return rows, cost
}

// CompareOnTest builds a convenience ratio table: for each plan, the mean
// per-tuple cost over the test table. Used by the experiment harnesses.
func CompareOnTest(s *schema.Schema, q query.Query, test *table.Table, plans map[string]*plan.Node) map[string]Result {
	out := make(map[string]Result, len(plans))
	for name, p := range plans {
		out[name] = Run(s, p, q, test)
	}
	return out
}

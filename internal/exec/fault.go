package exec

import (
	"context"
	"fmt"

	"acqp/internal/fault"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
	"acqp/internal/trace"
)

// FallbackPolicy selects what the executor does with a tuple when an
// attribute acquisition ultimately fails (all retries exhausted, or the
// sensor is dead).
type FallbackPolicy int8

// Fallback policies.
const (
	// Abstain answers Unknown for the tuple. Never wrong, but every
	// abstained tuple is an unanswered one.
	Abstain FallbackPolicy = iota
	// Impute predicts the missing value from the attributes acquired so
	// far using a fitted joint model (typically the Chow–Liu tree from
	// internal/model) — the same correlations the planner exploits for
	// cost. The plan then proceeds as if the prediction were the reading.
	Impute
	// Replan drops the failed attribute and re-runs planning on the
	// residual query (the conjunction minus any predicate on that
	// attribute, which is optimistically treated as satisfied). Residual
	// plans are cached per failed-attribute set.
	Replan
)

func (p FallbackPolicy) String() string {
	switch p {
	case Abstain:
		return "abstain"
	case Impute:
		return "impute"
	case Replan:
		return "replan"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParseFallbackPolicy parses the textual policy names used by flags and
// the serving API.
func ParseFallbackPolicy(s string) (FallbackPolicy, error) {
	switch s {
	case "abstain":
		return Abstain, nil
	case "impute":
		return Impute, nil
	case "replan":
		return Replan, nil
	default:
		return 0, fmt.Errorf("exec: unknown fallback policy %q (want abstain, impute, or replan)", s)
	}
}

// FaultConfig configures the fault-aware execution path.
type FaultConfig struct {
	// Injector decides per-attempt outcomes; nil injects nothing.
	Injector *fault.Injector
	// Retrier governs retries of transient/timeout failures and the cost
	// charged for them. The zero value never retries.
	Retrier fault.Retrier
	// Policy is the fallback applied when an acquisition ultimately fails.
	Policy FallbackPolicy
	// Model is the joint distribution used by the Impute policy (required
	// for it, ignored otherwise).
	Model stats.Dist
	// Replanner builds a plan for the residual query when the Replan
	// policy drops the failed attributes (marked true in failed). Nil
	// defaults to the correlation-unaware sequential plan over the
	// residual predicates, which is always correct and needs no planner.
	Replanner func(failed []bool, residual query.Query) (*plan.Node, error)
	// Profile, when non-nil, receives per-node and per-attribute cost
	// attribution for the run (see trace.ExecProfile). Charges made while
	// executing a replanned residual plan are attributed to node ID -1
	// (totals only), since residual nodes are not part of the profiled
	// plan. Nil disables attribution at zero cost.
	Profile *trace.ExecProfile
}

// TupleOutcome reports the fault-aware execution of one tuple.
type TupleOutcome struct {
	// Answer is the plan's three-valued output: Unknown iff the tuple was
	// abstained.
	Answer query.Truth
	// Cost is everything charged for the tuple, retries and backoff
	// included.
	Cost float64
	// RetryCost is the portion of Cost beyond fault-free execution: retry
	// sampling costs, backoff waits, and timeout surcharges.
	RetryCost float64
	// Retries counts retry attempts performed.
	Retries int
	// Failures counts attributes whose acquisition ultimately failed.
	Failures int
	// StaleReads counts acquisitions satisfied by a stuck previous value.
	StaleReads int
	// Imputed counts attribute values predicted by the model.
	Imputed int
	// Replanned reports whether a residual plan was used.
	Replanned bool
	// Touched reports whether a fault could have changed the answer: a
	// stale or imputed value differed from the true reading, or a replan
	// dropped an attribute carrying a query predicate. Wrong answers on
	// untouched tuples indicate a planner bug, not fault damage.
	Touched bool
}

// TupleExecutor executes a plan tuple-by-tuple under fault injection. It
// carries cross-tuple state — stale-value latches, learned-dead sensors,
// and the residual-plan cache — so callers that stream tuples (the
// sensornet motes) create one per logical node and feed it rows in order.
//
// With an inactive (or nil) injector the traversal performs exactly the
// same sequence of cost additions as plan.Node.Execute, so results are
// byte-identical to the fault-free path.
type TupleExecutor struct {
	s   *schema.Schema
	p   *plan.Node
	q   query.Query
	cfg FaultConfig

	// Cross-tuple state.
	stale     []schema.Value // last successfully latched reading
	haveStale []bool
	deadKnown []bool // sensor observed dead; later tuples skip it at zero cost
	replans   map[string]*plan.Node
	acq       []int64 // per-attribute tuples-that-paid counts

	// Per-tuple scratch.
	paid    []bool // cost charged (board powered) this tuple
	known   []bool // value available this tuple (fresh, stale, or imputed)
	failed  []bool // acquisition ultimately failed this tuple
	imputed []bool
	vals    []schema.Value

	// Profiling (nil when cfg.Profile is nil).
	ids map[*plan.Node]int
}

// NewTupleExecutor validates the configuration and builds an executor for
// the plan.
func NewTupleExecutor(s *schema.Schema, p *plan.Node, q query.Query, cfg FaultConfig) (*TupleExecutor, error) {
	switch cfg.Policy {
	case Abstain, Replan:
	case Impute:
		if cfg.Model == nil {
			return nil, fmt.Errorf("%w: Impute policy requires a model distribution", ErrInvalidRequest)
		}
		if got := cfg.Model.Schema().NumAttrs(); got != s.NumAttrs() {
			return nil, fmt.Errorf("%w: impute model covers %d attributes, schema has %d", ErrInvalidRequest, got, s.NumAttrs())
		}
	default:
		return nil, fmt.Errorf("%w: unknown fallback policy %d", ErrInvalidRequest, cfg.Policy)
	}
	if cfg.Injector != nil && cfg.Injector.NumAttrs() != s.NumAttrs() {
		return nil, fmt.Errorf("%w: injector covers %d attributes, schema has %d", ErrInvalidRequest, cfg.Injector.NumAttrs(), s.NumAttrs())
	}
	n := s.NumAttrs()
	ex := &TupleExecutor{
		s: s, p: p, q: q, cfg: cfg,
		stale: make([]schema.Value, n), haveStale: make([]bool, n),
		deadKnown: make([]bool, n), acq: make([]int64, n),
		paid: make([]bool, n), known: make([]bool, n), failed: make([]bool, n),
		imputed: make([]bool, n), vals: make([]schema.Value, n),
	}
	if cfg.Profile != nil {
		ex.ids = plan.NodeIDs(p)
	}
	return ex, nil
}

// nodeID returns the profiled plan's pre-order ID for n, or -1 when
// profiling is off or n is not in the profiled plan (replanned residual
// nodes).
func (e *TupleExecutor) nodeID(n *plan.Node) int {
	if e.cfg.Profile == nil {
		return -1
	}
	if id, ok := e.ids[n]; ok {
		return id
	}
	return -1
}

// AcquisitionCounts returns the live per-attribute counts of tuples that
// paid for the attribute so far (the fault-aware analogue of
// Result.Acquisitions).
func (e *TupleExecutor) AcquisitionCounts() []int64 { return e.acq }

// ExecTuple runs the plan on one tuple. rowIdx must be the tuple's global
// index (it seeds the injector's per-tuple randomness) and strictly
// increase across calls for the stale/dead state to make physical sense.
func (e *TupleExecutor) ExecTuple(rowIdx int, row []schema.Value) TupleOutcome {
	for i := range e.paid {
		e.paid[i] = false
		e.known[i] = false
		e.failed[i] = false
		e.imputed[i] = false
	}
	var out TupleOutcome
	out.Answer = e.execPlan(e.p, rowIdx, row, &out, 0)
	for a, p := range e.paid {
		if p {
			e.acq[a]++
		}
	}
	return out
}

// execPlan traverses one plan, consulting the fallback policy on
// acquisition failure. depth bounds replan recursion.
func (e *TupleExecutor) execPlan(p *plan.Node, rowIdx int, row []schema.Value, out *TupleOutcome, depth int) query.Truth {
	cur := p
	for {
		id := e.nodeID(cur)
		e.cfg.Profile.Visit(id)
		switch cur.Kind {
		case plan.Leaf:
			if cur.Result {
				return query.True
			}
			return query.False
		case plan.Split:
			if !e.ensure(rowIdx, cur.Attr, row, out, id) {
				return e.fallback(rowIdx, row, out, depth)
			}
			if e.vals[cur.Attr] >= cur.X {
				cur = cur.Right
			} else {
				cur = cur.Left
			}
		case plan.Seq:
			for _, pd := range cur.Preds {
				if !e.ensure(rowIdx, pd.Attr, row, out, id) {
					return e.fallback(rowIdx, row, out, depth)
				}
				if !pd.Eval(e.vals[pd.Attr]) {
					return query.False
				}
			}
			return query.True
		default:
			panic(fmt.Sprintf("exec: invalid node kind %d", cur.Kind))
		}
	}
}

// ensure makes attribute a's value available in e.vals[a], acquiring (and
// retrying) as needed. It returns false when the acquisition ultimately
// failed and no value could be substituted under the Abstain/Replan
// policies; under Impute it substitutes a prediction and returns true.
// nodeID attributes the charges to the plan node requesting the value.
func (e *TupleExecutor) ensure(rowIdx, a int, row []schema.Value, out *TupleOutcome, nodeID int) bool {
	if e.known[a] {
		return true
	}
	if e.failed[a] {
		return false
	}
	if e.deadKnown[a] {
		// Learned-dead sensors are not re-powered: fail at zero cost.
		return e.attrFailed(rowIdx, a, row, out)
	}
	inj, ret := e.cfg.Injector, e.cfg.Retrier
	for attempt := 0; ; attempt++ {
		// Every attempt pays the sampling cost; the first additionally
		// powers the board, exactly as the fault-free executor charges.
		c := e.s.AcquisitionCost(a, e.paid)
		out.Cost += c
		e.cfg.Profile.Charge(nodeID, a, c, 1)
		if e.paid[a] {
			out.RetryCost += c
		} else {
			e.paid[a] = true
		}
		switch o := inj.Attempt(rowIdx, a, attempt); o {
		case fault.OK:
			e.vals[a] = row[a]
			e.known[a] = true
			e.stale[a], e.haveStale[a] = row[a], true
			return true
		case fault.Stale:
			// Stuck sensor: it reports its previous latched value. With
			// nothing latched yet the first reading is necessarily fresh.
			if e.haveStale[a] {
				e.vals[a] = e.stale[a]
				out.StaleReads++
				if e.vals[a] != row[a] {
					out.Touched = true
				}
			} else {
				e.vals[a] = row[a]
				e.stale[a], e.haveStale[a] = row[a], true
			}
			e.known[a] = true
			return true
		case fault.FailDead:
			e.deadKnown[a] = true
			return e.attrFailed(rowIdx, a, row, out)
		default: // FailTransient, FailTimeout
			if o == fault.FailTimeout {
				surch := ret.TimeoutSurcharge(c)
				out.Cost += surch
				out.RetryCost += surch
				e.cfg.Profile.Charge(nodeID, a, surch, 0)
			}
			if attempt >= ret.MaxRetries {
				return e.attrFailed(rowIdx, a, row, out)
			}
			retry := attempt + 1
			b := ret.Backoff(retry, inj.JitterU(rowIdx, a, retry))
			out.Cost += b
			out.RetryCost += b
			e.cfg.Profile.Charge(nodeID, a, b, 0)
			out.Retries++
		}
	}
}

// attrFailed records an ultimate acquisition failure on attribute a and,
// under the Impute policy, substitutes a model prediction.
func (e *TupleExecutor) attrFailed(rowIdx, a int, row []schema.Value, out *TupleOutcome) bool {
	out.Failures++
	if e.cfg.Policy == Impute {
		v := e.imputeValue(a)
		e.vals[a] = v
		e.known[a] = true
		e.imputed[a] = true
		out.Imputed++
		if v != row[a] {
			out.Touched = true
		}
		return true
	}
	e.failed[a] = true
	return false
}

// imputeValue predicts attribute a from the genuinely observed values of
// this tuple: the model is conditioned on every known, non-imputed
// attribute and the argmax of the resulting histogram is returned.
// Imputed values are not used as evidence, so one bad prediction does not
// compound into the next.
func (e *TupleExecutor) imputeValue(a int) schema.Value {
	c := e.cfg.Model.Root()
	for k := range e.known {
		if k != a && e.known[k] && !e.imputed[k] {
			c = c.RestrictRange(k, query.Range{Lo: e.vals[k], Hi: e.vals[k]})
		}
	}
	h := c.Hist(a)
	best := 0
	for v := 1; v < len(h); v++ {
		if h[v] > h[best] {
			best = v
		}
	}
	return schema.Value(best)
}

// fallback resolves a tuple whose traversal hit a failed acquisition
// under the Abstain or Replan policy (Impute is handled inside ensure).
func (e *TupleExecutor) fallback(rowIdx int, row []schema.Value, out *TupleOutcome, depth int) query.Truth {
	if e.cfg.Policy != Replan || depth >= e.s.NumAttrs() {
		return query.Unknown
	}
	rp, err := e.residualPlan(out)
	if err != nil || rp == nil {
		return query.Unknown
	}
	out.Replanned = true
	return e.execPlan(rp, rowIdx, row, out, depth+1)
}

// residualPlan returns (building and caching on first use) the plan for
// the query minus the predicates on currently failed attributes. Dropping
// a predicate-bearing attribute optimistically treats that predicate as
// satisfied, which marks the tuple as fault-touched.
func (e *TupleExecutor) residualPlan(out *TupleOutcome) (*plan.Node, error) {
	key := make([]byte, (len(e.failed)+7)/8)
	for a, f := range e.failed {
		if f {
			key[a/8] |= 1 << (a % 8)
			if e.q.PredOn(a) >= 0 {
				out.Touched = true
			}
		}
	}
	if p, ok := e.replans[string(key)]; ok {
		return p, nil
	}
	residual := make([]query.Pred, 0, len(e.q.Preds))
	for _, pd := range e.q.Preds {
		if !e.failed[pd.Attr] {
			residual = append(residual, pd)
		}
	}
	var rp *plan.Node
	if e.cfg.Replanner != nil {
		var err error
		rp, err = e.cfg.Replanner(append([]bool(nil), e.failed...), query.Query{Preds: residual})
		if err != nil {
			return nil, err
		}
		// A residual plan that still touches a failed attribute would fail
		// again immediately; fall back to the always-safe sequential plan.
		if rp != nil {
			for a, used := range rp.Attrs(e.s.NumAttrs()) {
				if used && e.failed[a] {
					rp = nil
					break
				}
			}
		}
	}
	if rp == nil {
		rp = plan.NewSeq(residual)
	}
	if e.replans == nil {
		e.replans = make(map[string]*plan.Node)
	}
	e.replans[string(key)] = rp
	return rp, nil
}

// FaultResult extends Result with fault-path accounting. The embedded
// Result fields keep their meanings, with two refinements: Selected and
// Mismatches consider only answered (non-abstained) tuples, and
// Mismatches counts only wrong answers on tuples no fault touched —
// fault-induced errors are classed as FalsePositives/FalseNegatives.
type FaultResult struct {
	Result
	// Failures counts (tuple, attribute) acquisition failures after all
	// retries.
	Failures int
	// Retries counts retry attempts performed.
	Retries int
	// RetryCost is the portion of TotalCost charged to retries, backoff
	// waits, and timeout surcharges.
	RetryCost float64
	// StaleReads counts acquisitions satisfied by a stuck previous value.
	StaleReads int
	// Abstained counts tuples answered Unknown; AbstainedTrue is the
	// subset whose ground truth was positive (answers lost to faults).
	Abstained     int
	AbstainedTrue int
	// Imputed counts model-predicted attribute values.
	Imputed int
	// Replans counts tuples answered by a residual plan.
	Replans int
	// FalsePositives / FalseNegatives count fault-touched tuples answered
	// wrongly (selected-but-false / rejected-but-true).
	FalsePositives int
	FalseNegatives int
}

// Answered returns the number of tuples that received a definite answer.
func (r FaultResult) Answered() int { return r.Tuples - r.Abstained }

// Accuracy returns the fraction of answered tuples answered correctly.
func (r FaultResult) Accuracy() float64 {
	n := r.Answered()
	if n == 0 {
		return 1
	}
	return float64(n-r.Mismatches-r.FalsePositives-r.FalseNegatives) / float64(n)
}

func (r FaultResult) String() string {
	return fmt.Sprintf("%s failures=%d retries=%d retry-cost=%.3f abstained=%d imputed=%d replans=%d fp=%d fn=%d",
		r.Result.String(), r.Failures, r.Retries, r.RetryCost, r.Abstained, r.Imputed, r.Replans, r.FalsePositives, r.FalseNegatives)
}

// RunFaulty executes the plan over every tuple of the table under fault
// injection, verifying answered tuples against ground truth. With an
// inactive injector the embedded Result is byte-identical to Run's.
//
// Deprecated: use Execute with Options.Faults.
func RunFaulty(s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table, cfg FaultConfig) (FaultResult, error) {
	//acqlint:ignore ctxbg legacy wrapper with no ctx parameter; Execute is the context-threading API
	res, err := Execute(context.Background(), Request{
		Schema: s, Plan: p, Query: q,
		Options: Options{Source: NewTableSource(tbl, 0), Faults: &cfg, Profile: cfg.Profile},
	})
	if err != nil {
		return FaultResult{}, err
	}
	return res.AsFaultResult(), nil
}

package exec

import (
	"sort"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// RankByCheapEvidence implements the existential-query idea of Section 7
// of the paper: "we can use conditional plans to significantly reduce the
// number of acquisitions made by determining which of the sensors are
// most likely to satisfy the predicates." For each candidate tuple it
// acquires only the cheap attributes (cost <= cheapThreshold), estimates
// P(phi | cheap evidence) under the distribution, and returns the row
// order sorted by descending likelihood together with the total cost of
// the cheap acquisitions.
//
// Feeding the order to RunExistsOrdered makes the expensive probing visit
// the most promising candidates first.
func RankByCheapEvidence(d stats.Dist, q query.Query, tbl *table.Table, cheapThreshold float64) (order []int, evidenceCost float64) {
	s := d.Schema()
	cheap := s.CheapAttrs(cheapThreshold)
	type scored struct {
		row int
		p   float64
	}
	scores := make([]scored, tbl.NumRows())
	var row []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		row = tbl.Row(r, row)
		c := d.Root()
		for _, a := range cheap {
			evidenceCost += s.Cost(a)
			v := row[a]
			c = c.RestrictRange(a, query.Range{Lo: v, Hi: v})
		}
		p := 1.0
		for _, pred := range q.Preds {
			p *= c.ProbPred(pred)
			if p == 0 {
				break
			}
			c = c.RestrictPred(pred, true)
		}
		scores[r] = scored{row: r, p: p}
	}
	sort.SliceStable(scores, func(i, j int) bool { return scores[i].p > scores[j].p })
	order = make([]int, len(scores))
	for i, sc := range scores {
		order[i] = sc.row
	}
	return order, evidenceCost
}

// RunExistsOrdered is RunExists visiting rows in the given order: it
// returns whether a satisfying tuple exists, its row index in the
// original table (-1 if none), and the acquisition cost spent probing.
//
// Deprecated: use Execute with Options.Exists and Options.Order.
func RunExistsOrdered(s *schema.Schema, p *plan.Node, tbl *table.Table, order []int) (found bool, rowIdx int, cost float64) {
	res := mustExecute(s, p, query.Query{}, Options{
		Source: NewTableSource(tbl, 0), Exists: true, SkipVerify: true, Order: order,
	})
	return res.Found, res.FoundRow, res.TotalCost
}

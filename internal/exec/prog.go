package exec

import (
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/trace"
)

// program is a plan compiled for execution: the node tree flattened into
// a contiguous instruction array in pre-order, with child pointers
// replaced by int32 indexes. Walking a program chases no pointers and
// touches one cache line per couple of nodes instead of one heap object
// per node; an instruction's index is exactly the node's pre-order ID
// (plan.NodeIDs), so per-node profile attribution falls out for free.
type program struct {
	ops []progOp
}

// progOp is one compiled plan node.
type progOp struct {
	kind plan.Kind
	// Leaf.
	result bool
	// Split: test col[attr] >= x, jump to left (false) or right (true).
	attr        int32
	x           schema.Value
	left, right int32
	// Seq.
	preds []query.Pred
}

// compile flattens a plan into a program. The instruction at index i
// corresponds to the i-th node of p.Preorder().
func compile(p *plan.Node) *program {
	pg := &program{ops: make([]progOp, 0, 8)}
	pg.emit(p)
	return pg
}

// emit appends the subtree rooted at n and returns its instruction index.
func (pg *program) emit(n *plan.Node) int32 {
	at := int32(len(pg.ops))
	switch n.Kind {
	case plan.Leaf:
		pg.ops = append(pg.ops, progOp{kind: plan.Leaf, result: n.Result})
	case plan.Split:
		pg.ops = append(pg.ops, progOp{kind: plan.Split, attr: int32(n.Attr), x: n.X})
		l := pg.emit(n.Left)
		r := pg.emit(n.Right)
		pg.ops[at].left, pg.ops[at].right = l, r
	case plan.Seq:
		pg.ops = append(pg.ops, progOp{kind: plan.Seq, preds: n.Preds})
	default:
		panic(fmt.Sprintf("exec: invalid node kind %d", n.Kind))
	}
	return at
}

// run evaluates the program on the batch's row i, reading attribute
// values straight from the batch's columns (no row copy) and charging
// first-touch acquisitions into acquired — exactly the traversal,
// charge, and accumulation order of plan.Node.Execute, so costs are
// bit-identical to the legacy tuple-at-a-time executor.
func (pg *program) run(s *schema.Schema, cols [][]schema.Value, i int, acquired []bool) (result bool, cost float64) {
	op := &pg.ops[0]
	for {
		switch op.kind {
		case plan.Leaf:
			return op.result, cost
		case plan.Split:
			a := op.attr
			if !acquired[a] {
				cost += s.AcquisitionCost(int(a), acquired)
				acquired[a] = true
			}
			if cols[a][i] >= op.x {
				op = &pg.ops[op.right]
			} else {
				op = &pg.ops[op.left]
			}
		default: // plan.Seq
			for _, p := range op.preds {
				if !acquired[p.Attr] {
					cost += s.AcquisitionCost(p.Attr, acquired)
					acquired[p.Attr] = true
				}
				if !p.Eval(cols[p.Attr][i]) {
					return false, cost
				}
			}
			return true, cost
		}
	}
}

// runProfiled is run with per-node attribution: it visits and charges
// the profile in the same order the legacy profiled executor did, so
// profiled results and node cost sums stay bit-exact. The instruction
// index doubles as the node ID.
func (pg *program) runProfiled(s *schema.Schema, cols [][]schema.Value, i int, acquired []bool, prof *trace.ExecProfile) (result bool, cost float64) {
	id := int32(0)
	for {
		op := &pg.ops[id]
		prof.Visit(int(id))
		switch op.kind {
		case plan.Leaf:
			return op.result, cost
		case plan.Split:
			a := op.attr
			if !acquired[a] {
				c := s.AcquisitionCost(int(a), acquired)
				cost += c
				acquired[a] = true
				prof.Charge(int(id), int(a), c, 1)
			}
			if cols[a][i] >= op.x {
				id = op.right
			} else {
				id = op.left
			}
		default: // plan.Seq
			for _, p := range op.preds {
				if !acquired[p.Attr] {
					c := s.AcquisitionCost(p.Attr, acquired)
					cost += c
					acquired[p.Attr] = true
					prof.Charge(int(id), p.Attr, c, 1)
				}
				if !p.Eval(cols[p.Attr][i]) {
					return false, cost
				}
			}
			return true, cost
		}
	}
}

package fault

// Link models a lossy radio hop: each transmission of a message over a
// hop is dropped independently with probability PDrop and retransmitted
// up to MaxRetransmits times. Every transmission — delivered or dropped —
// costs energy at the sender; the sensornet simulator charges them all.
//
// Like the Injector, a Link is stateless: delivery is a pure function of
// (Seed, msg, hop, attempt), so simulations are reproducible and links
// can be shared across goroutines freely. The zero value is a perfect
// link (one transmission, always delivered).
type Link struct {
	// Seed isolates this link's randomness stream.
	Seed int64
	// PDrop is the per-transmission drop probability in [0,1).
	PDrop float64
	// MaxRetransmits bounds retransmissions after the first attempt; a
	// message still undelivered afterwards is lost.
	MaxRetransmits int
}

// Lossy reports whether the link can drop anything.
func (l Link) Lossy() bool { return l.PDrop > 0 }

const streamLink = 0x11c4

// Deliver simulates sending message msg over hop (both caller-chosen
// coordinates that must be unique per logical message/hop). It returns
// the number of transmissions attempted (at least 1) and whether the
// message ultimately got through.
func (l Link) Deliver(msg, hop int) (attempts int, delivered bool) {
	if l.PDrop <= 0 {
		return 1, true
	}
	if l.PDrop >= 1 {
		return 1 + l.MaxRetransmits, false
	}
	for a := 0; ; a++ {
		if u01(uint64(l.Seed), uint64(msg), uint64(hop), uint64(streamLink)+uint64(a)<<16) >= l.PDrop {
			return a + 1, true
		}
		if a >= l.MaxRetransmits {
			return a + 1, false
		}
	}
}

package fault

import (
	"math"
	"sync"
	"testing"
)

func TestNilAndInactiveInjectorAlwaysOK(t *testing.T) {
	var nilInj *Injector
	if nilInj.Active() {
		t.Fatal("nil injector reports Active")
	}
	if got := nilInj.Attempt(3, 1, 0); got != OK {
		t.Fatalf("nil injector Attempt = %v, want OK", got)
	}
	if got := nilInj.JitterU(0, 0, 1); got != 0.5 {
		t.Fatalf("nil injector JitterU = %g, want 0.5", got)
	}
	if nilInj.NumAttrs() != 0 {
		t.Fatalf("nil injector NumAttrs = %d", nilInj.NumAttrs())
	}

	inj := NewInjector(4, 42)
	if inj.Active() {
		t.Fatal("fresh injector reports Active")
	}
	for row := 0; row < 50; row++ {
		for attr := 0; attr < 4; attr++ {
			if got := inj.Attempt(row, attr, 0); got != OK {
				t.Fatalf("inactive injector Attempt(%d,%d) = %v", row, attr, got)
			}
		}
	}
}

func TestInjectorDeterminism(t *testing.T) {
	mk := func() *Injector {
		inj := NewInjector(3, 7)
		if err := inj.SetAttr(0, AttrFault{PTransient: 0.3, PTimeout: 0.1, PStale: 0.2}); err != nil {
			t.Fatal(err)
		}
		if err := inj.SetAttr(1, AttrFault{PTransient: 0.5}); err != nil {
			t.Fatal(err)
		}
		if err := inj.SetAttr(2, AttrFault{DeadFrom: 40}); err != nil {
			t.Fatal(err)
		}
		return inj
	}
	a, b := mk(), mk()
	for row := 0; row < 200; row++ {
		for attr := 0; attr < 3; attr++ {
			for att := 0; att < 3; att++ {
				if ga, gb := a.Attempt(row, attr, att), b.Attempt(row, attr, att); ga != gb {
					t.Fatalf("Attempt(%d,%d,%d) nondeterministic: %v vs %v", row, attr, att, ga, gb)
				}
			}
			if ja, jb := a.JitterU(row, attr, 1), b.JitterU(row, attr, 1); ja != jb {
				t.Fatalf("JitterU(%d,%d) nondeterministic", row, attr)
			}
		}
	}
	// A different seed must give a different outcome sequence.
	c := NewInjector(3, 8)
	if err := c.SetAll(AttrFault{PTransient: 0.5}); err != nil {
		t.Fatal(err)
	}
	same := true
	for row := 0; row < 200 && same; row++ {
		if a.Attempt(row, 1, 0) != c.Attempt(row, 1, 0) {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical outcome sequences")
	}
}

func TestInjectorConcurrentDeterminism(t *testing.T) {
	inj := NewInjector(2, 99)
	if err := inj.SetAll(AttrFault{PTransient: 0.25, PTimeout: 0.25, PStale: 0.3}); err != nil {
		t.Fatal(err)
	}
	const rows = 500
	want := make([]Outcome, rows)
	for r := range want {
		want[r] = inj.Attempt(r, 1, 0)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rows; r++ {
				if got := inj.Attempt(r, 1, 0); got != want[r] {
					t.Errorf("concurrent Attempt(%d) = %v, want %v", r, got, want[r])
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestInjectorFrequencies(t *testing.T) {
	inj := NewInjector(1, 12345)
	f := AttrFault{PTransient: 0.2, PTimeout: 0.1, PStale: 0.25}
	if err := inj.SetAttr(0, f); err != nil {
		t.Fatal(err)
	}
	const n = 200000
	counts := map[Outcome]int{}
	for row := 0; row < n; row++ {
		counts[inj.Attempt(row, 0, 0)]++
	}
	got := func(o Outcome) float64 { return float64(counts[o]) / n }
	check := func(o Outcome, want float64) {
		t.Helper()
		if g := got(o); math.Abs(g-want) > 0.01 {
			t.Errorf("freq(%v) = %.4f, want %.2f ± 0.01", o, g, want)
		}
	}
	check(FailTransient, f.PTransient)
	check(FailTimeout, f.PTimeout)
	// Stale applies only to non-failing attempts.
	check(Stale, (1-f.PTransient-f.PTimeout)*f.PStale)
	check(OK, (1-f.PTransient-f.PTimeout)*(1-f.PStale))
}

func TestDeadModes(t *testing.T) {
	inj := NewInjector(2, 0)
	if err := inj.SetAttr(0, AttrFault{Dead: true}); err != nil {
		t.Fatal(err)
	}
	if err := inj.SetAttr(1, AttrFault{DeadFrom: 10}); err != nil {
		t.Fatal(err)
	}
	if got := inj.Attempt(0, 0, 0); got != FailDead {
		t.Fatalf("Dead sensor Attempt = %v", got)
	}
	if got := inj.Attempt(9, 1, 0); got != OK {
		t.Fatalf("DeadFrom=10 at row 9 = %v, want OK", got)
	}
	if got := inj.Attempt(10, 1, 2); got != FailDead {
		t.Fatalf("DeadFrom=10 at row 10 = %v, want FailDead", got)
	}
	if !FailDead.Failed() || !FailTransient.Failed() || !FailTimeout.Failed() || OK.Failed() || Stale.Failed() {
		t.Fatal("Failed() classification wrong")
	}
}

func TestAttrFaultValidation(t *testing.T) {
	inj := NewInjector(1, 0)
	bad := []AttrFault{
		{PTransient: -0.1},
		{PTimeout: 1.5},
		{PStale: 2},
		{PTransient: 0.7, PTimeout: 0.7},
		{DeadFrom: -1},
	}
	for i, f := range bad {
		if err := inj.SetAttr(0, f); err == nil {
			t.Errorf("case %d: Set(%+v) accepted invalid config", i, f)
		}
	}
	if err := inj.SetAttr(5, AttrFault{}); err == nil {
		t.Error("out-of-range attribute accepted")
	}
	if inj.Active() {
		t.Error("injector became active after rejected configs")
	}
}

func TestRetrierBackoff(t *testing.T) {
	r := Retrier{MaxRetries: 5, BackoffBase: 1, BackoffMult: 2, BackoffCap: 4}
	for retry, want := range map[int]float64{1: 1, 2: 2, 3: 4, 4: 4, 0: 0, -1: 0} {
		if got := r.Backoff(retry, 0.5); got != want {
			t.Errorf("Backoff(%d) = %g, want %g", retry, got, want)
		}
	}
	// Jitter keeps the wait within [1-J/2, 1+J/2] of nominal.
	rj := Retrier{BackoffBase: 2, BackoffMult: 2, Jitter: 0.5}
	for _, u := range []float64{0, 0.25, 0.5, 0.75, 0.999} {
		got := rj.Backoff(1, u)
		if got < 2*0.75 || got > 2*1.25 {
			t.Errorf("jittered Backoff(1,%g) = %g outside [1.5,2.5]", u, got)
		}
	}
	// Zero value: no backoff, no surcharge.
	var z Retrier
	if z.Backoff(1, 0.5) != 0 || z.TimeoutSurcharge(10) != 0 {
		t.Error("zero Retrier charges energy")
	}
	if got := (Retrier{TimeoutCostFactor: 2}).TimeoutSurcharge(3); got != 3 {
		t.Errorf("TimeoutSurcharge = %g, want 3", got)
	}
}

func TestLinkDeliver(t *testing.T) {
	var perfect Link
	if att, ok := perfect.Deliver(1, 2); att != 1 || !ok {
		t.Fatalf("perfect link Deliver = (%d,%v)", att, ok)
	}
	if perfect.Lossy() {
		t.Fatal("zero Link is lossy")
	}

	always := Link{PDrop: 1, MaxRetransmits: 3}
	if att, ok := always.Deliver(0, 0); att != 4 || ok {
		t.Fatalf("PDrop=1 Deliver = (%d,%v), want (4,false)", att, ok)
	}

	l := Link{Seed: 5, PDrop: 0.4, MaxRetransmits: 2}
	delivered, totalAttempts := 0, 0
	const n = 100000
	for m := 0; m < n; m++ {
		att, ok := l.Deliver(m, 1)
		if att < 1 || att > 1+l.MaxRetransmits {
			t.Fatalf("attempts = %d outside [1,%d]", att, 1+l.MaxRetransmits)
		}
		if ok {
			delivered++
		}
		totalAttempts += att
		// Determinism.
		att2, ok2 := l.Deliver(m, 1)
		if att2 != att || ok2 != ok {
			t.Fatalf("Deliver(%d,1) nondeterministic", m)
		}
	}
	// P(lost) = PDrop^(1+MaxRetransmits) = 0.4^3 = 0.064.
	lossRate := 1 - float64(delivered)/n
	if math.Abs(lossRate-0.064) > 0.005 {
		t.Errorf("loss rate = %.4f, want 0.064 ± 0.005", lossRate)
	}
	// E[attempts] = 1 + 0.4 + 0.16 = 1.56.
	if mean := float64(totalAttempts) / n; math.Abs(mean-1.56) > 0.02 {
		t.Errorf("mean attempts = %.4f, want 1.56 ± 0.02", mean)
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{OK: "ok", Stale: "stale", FailTransient: "transient", FailTimeout: "timeout", FailDead: "dead", Outcome(99): "outcome(99)"} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

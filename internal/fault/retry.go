package fault

// Retrier is a retry policy for failed acquisition attempts: up to
// MaxRetries retries with capped exponential backoff plus jitter. In a
// mote there is no separate wall clock to spend — waiting is idle
// listening, which drains the battery — so backoff is charged in the same
// abstract energy units as acquisition costs. The executor charges:
//
//   - every attempt: the attribute's sampling cost (the first attempt
//     additionally pays any board power-up, exactly as a fault-free
//     acquisition would);
//   - a timed-out attempt: the attempt cost multiplied by
//     TimeoutCostFactor (the radio and CPU stayed up for the full window);
//   - before retry i (1-based): Backoff(i, u) energy units of idle wait.
//
// The zero value retries nothing and charges no backoff.
type Retrier struct {
	// MaxRetries bounds retries after the first attempt; 0 means fail on
	// the first unsuccessful attempt.
	MaxRetries int
	// BackoffBase is the energy charged for the wait before the first
	// retry.
	BackoffBase float64
	// BackoffMult grows the wait per retry; values below 1 (including the
	// zero value) mean the conventional doubling.
	BackoffMult float64
	// BackoffCap bounds a single wait's energy; 0 means uncapped.
	BackoffCap float64
	// Jitter in [0,1] spreads each wait uniformly over
	// [1-Jitter/2, 1+Jitter/2] times its nominal value.
	Jitter float64
	// TimeoutCostFactor multiplies the cost of an attempt that fails by
	// timeout; values below 1 (including the zero value) mean no
	// surcharge.
	TimeoutCostFactor float64
}

// DefaultRetrier reflects a mote-style budget: two retries, backoff
// starting at one cost unit and doubling, capped at four units, half-width
// jitter, and timeouts costing twice a clean sample.
func DefaultRetrier() Retrier {
	return Retrier{MaxRetries: 2, BackoffBase: 1, BackoffMult: 2, BackoffCap: 4, Jitter: 0.5, TimeoutCostFactor: 2}
}

// Backoff returns the energy charged for the wait before retry number
// retry (1-based), jittered by the uniform variate u in [0,1).
func (r Retrier) Backoff(retry int, u float64) float64 {
	if retry < 1 || r.BackoffBase <= 0 {
		return 0
	}
	mult := r.BackoffMult
	if mult < 1 {
		mult = 2
	}
	b := r.BackoffBase
	for i := 1; i < retry; i++ {
		b *= mult
		if r.BackoffCap > 0 && b >= r.BackoffCap {
			b = r.BackoffCap
			break
		}
	}
	if r.BackoffCap > 0 && b > r.BackoffCap {
		b = r.BackoffCap
	}
	if r.Jitter > 0 {
		b *= 1 + r.Jitter*(u-0.5)
	}
	return b
}

// TimeoutSurcharge returns the extra cost (beyond the attempt cost c)
// charged when the attempt fails by timeout.
func (r Retrier) TimeoutSurcharge(c float64) float64 {
	if r.TimeoutCostFactor <= 1 {
		return 0
	}
	return c * (r.TimeoutCostFactor - 1)
}

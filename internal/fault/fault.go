// Package fault provides deterministic, seedable fault injection for
// acquisitional query processing: per-attribute sensor failure modes
// (transient loss, permanent death, timeouts, stale reads), a retry
// policy with capped exponential backoff whose waits are charged as
// acquisition cost, and a lossy radio link model for the sensornet
// simulator.
//
// The paper's setting — TinyDB motes sampling sensors over lossy multihop
// radio — is one where acquisitions routinely fail, yet every executor in
// the reproduction assumed success. This package supplies the failure
// substrate those layers inject; the graceful-degradation policies built
// on top of it live in internal/exec (fallbacks) and internal/sensornet
// (retransmission, mote death).
//
// All randomness is counter-based: every draw is a pure hash of
// (seed, row, attribute, attempt, stream). There is no mutable generator
// state, so outcomes are reproducible bit-for-bit regardless of goroutine
// interleaving, and one Injector can back any number of concurrent
// executors without synchronization. The faultdet analyzer (internal/
// analysis) statically forbids math/rand and clock reads in this package
// so that property cannot erode.
package fault

import "fmt"

// Outcome classifies one acquisition attempt.
type Outcome int8

// Acquisition attempt outcomes.
const (
	// OK is a successful fresh reading.
	OK Outcome = iota
	// Stale is a "successful" attempt that returned the sensor's previous
	// latched reading instead of a fresh sample (stuck-at-stale).
	Stale
	// FailTransient is a recoverable failure: the sample was lost and a
	// retry may succeed.
	FailTransient
	// FailTimeout is a recoverable failure where the mote waited out a
	// timeout before giving up; it costs more energy than a fast failure
	// (see Retrier.TimeoutCostFactor).
	FailTimeout
	// FailDead is a permanent failure: the sensor is dead and no retry can
	// succeed.
	FailDead
)

// Failed reports whether the outcome yielded no usable value.
func (o Outcome) Failed() bool { return o == FailTransient || o == FailTimeout || o == FailDead }

func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case Stale:
		return "stale"
	case FailTransient:
		return "transient"
	case FailTimeout:
		return "timeout"
	case FailDead:
		return "dead"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// AttrFault configures one attribute's failure modes. The zero value is a
// perfectly healthy sensor.
type AttrFault struct {
	// PTransient is the probability an acquisition attempt fails fast.
	PTransient float64
	// PTimeout is the probability an attempt fails by timing out (charged
	// extra energy by the retrier's cost model).
	PTimeout float64
	// PStale is the probability a non-failing attempt returns the previous
	// reading instead of a fresh one.
	PStale float64
	// Dead marks the sensor permanently dead from the first tuple.
	Dead bool
	// DeadFrom, when positive, marks the sensor permanently dead for every
	// tuple index at or after it (mote hardware dying mid-run).
	DeadFrom int
}

// deadAt reports whether the sensor is permanently dead at tuple row.
func (f AttrFault) deadAt(row int) bool {
	return f.Dead || (f.DeadFrom > 0 && row >= f.DeadFrom)
}

// active reports whether the configuration can ever produce a non-OK
// outcome.
func (f AttrFault) active() bool {
	return f.PTransient > 0 || f.PTimeout > 0 || f.PStale > 0 || f.Dead || f.DeadFrom > 0
}

// validate checks the probabilities.
func (f AttrFault) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"PTransient", f.PTransient}, {"PTimeout", f.PTimeout}, {"PStale", f.PStale}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("fault: %s = %g outside [0,1]", p.name, p.v)
		}
	}
	if s := f.PTransient + f.PTimeout; s > 1 {
		return fmt.Errorf("fault: PTransient+PTimeout = %g exceeds 1", s)
	}
	if f.DeadFrom < 0 {
		return fmt.Errorf("fault: DeadFrom = %d is negative (use Dead for dead-from-start)", f.DeadFrom)
	}
	return nil
}

// Injector decides the outcome of every acquisition attempt. It is
// immutable after configuration and safe for unsynchronized concurrent
// use: outcomes are pure functions of (seed, row, attr, attempt).
//
// A nil *Injector is valid and injects nothing (every attempt is OK).
type Injector struct {
	seed   uint64
	faults []AttrFault
	any    bool
}

// NewInjector returns an injector over numAttrs attributes, initially
// fault-free.
func NewInjector(numAttrs int, seed int64) *Injector {
	return &Injector{seed: uint64(seed), faults: make([]AttrFault, numAttrs)}
}

// SetAttr configures attribute attr's failure modes.
func (inj *Injector) SetAttr(attr int, f AttrFault) error {
	if attr < 0 || attr >= len(inj.faults) {
		return fmt.Errorf("fault: attribute %d out of range [0,%d)", attr, len(inj.faults))
	}
	if err := f.validate(); err != nil {
		return err
	}
	inj.faults[attr] = f
	inj.any = inj.any || f.active()
	return nil
}

// SetAll configures every attribute with the same failure modes.
func (inj *Injector) SetAll(f AttrFault) error {
	for a := range inj.faults {
		if err := inj.SetAttr(a, f); err != nil {
			return err
		}
	}
	return nil
}

// Fault returns attribute attr's configuration.
func (inj *Injector) Fault(attr int) AttrFault {
	if inj == nil {
		return AttrFault{}
	}
	return inj.faults[attr]
}

// Active reports whether any attribute can fail; executors use it to take
// the exact fault-free fast path when nothing is injected.
func (inj *Injector) Active() bool { return inj != nil && inj.any }

// NumAttrs returns the number of attributes configured.
func (inj *Injector) NumAttrs() int {
	if inj == nil {
		return 0
	}
	return len(inj.faults)
}

// Draw streams: independent uniform variates for one (row, attr, attempt)
// are obtained by hashing with distinct stream tags.
const (
	streamFail   = 0x5fa11 // shared draw deciding transient/timeout failure
	streamStale  = 0x57a1e
	streamJitter = 0x717e6 // exported via JitterU for backoff jitter
)

// Attempt returns the outcome of acquisition attempt number attempt
// (0-based) of attribute attr on tuple row. Identical arguments always
// yield identical outcomes for the same seed.
func (inj *Injector) Attempt(row, attr, attempt int) Outcome {
	if inj == nil || !inj.any {
		return OK
	}
	f := inj.faults[attr]
	if !f.active() {
		return OK
	}
	if f.deadAt(row) {
		return FailDead
	}
	if f.PTransient > 0 || f.PTimeout > 0 {
		u := inj.uniform(row, attr, attempt, streamFail)
		if u < f.PTimeout {
			return FailTimeout
		}
		if u < f.PTimeout+f.PTransient {
			return FailTransient
		}
	}
	if f.PStale > 0 && inj.uniform(row, attr, attempt, streamStale) < f.PStale {
		return Stale
	}
	return OK
}

// JitterU returns the deterministic uniform variate in [0,1) used to
// jitter the backoff before retry number retry (1-based) of attribute
// attr on tuple row.
func (inj *Injector) JitterU(row, attr, retry int) float64 {
	if inj == nil {
		return 0.5
	}
	return inj.uniform(row, attr, retry, streamJitter)
}

// uniform hashes the coordinates into [0,1).
func (inj *Injector) uniform(row, attr, attempt, stream int) float64 {
	return u01(inj.seed, uint64(row), uint64(attr)<<32|uint64(uint32(attempt)), uint64(stream))
}

// mix is the splitmix64 finalizer: a high-quality 64-bit bijection.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps (seed, a, b, c) to a uniform float64 in [0,1): 53 random bits
// scaled by 2^-53.
func u01(seed, a, b, c uint64) float64 {
	h := mix(seed ^ mix(a))
	h = mix(h ^ b)
	h = mix(h ^ c)
	return float64(h>>11) / (1 << 53)
}

package opt

import (
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// Coarsening rediscretizes a schema onto an SPSF grid: each attribute's
// domain collapses to its SPSF segments (plus the query's predicate
// endpoints, so the query remains exactly expressible). This is how the
// evaluation "trains the Exhaustive algorithm at a given SPSF"
// (Section 6.1, Figure 8(b)): the planner runs over the small coarse
// domain, and the resulting plan is expanded back to original-domain
// thresholds for execution.
type Coarsening struct {
	orig       *schema.Schema
	coarse     *schema.Schema
	boundaries [][]schema.Value // per attr: segment i covers [b[i], b[i+1])
}

// NewCoarsening builds the rediscretization induced by the SPSF and query.
func NewCoarsening(s *schema.Schema, spsf SPSF, q query.Query) (*Coarsening, error) {
	aug := spsf.WithQueryEndpoints(s, q)
	co := &Coarsening{orig: s, coarse: schema.New()}
	co.boundaries = make([][]schema.Value, s.NumAttrs())
	for a := 0; a < s.NumAttrs(); a++ {
		b := []schema.Value{0}
		b = append(b, aug.Candidates(a, query.FullRange(s.K(a)))...)
		b = append(b, schema.Value(s.K(a))) // one-past-the-end sentinel
		co.boundaries[a] = b
		k := len(b) - 1 // number of segments
		if k < 2 {
			// A domain collapsed to one segment cannot be conditioned on
			// at all; keep it 2-valued by splitting in the middle so the
			// coarse schema stays valid.
			mid := schema.Value(s.K(a) / 2)
			co.boundaries[a] = []schema.Value{0, mid, schema.Value(s.K(a))}
			k = 2
		}
		if err := co.coarse.Add(schema.Attribute{Name: s.Name(a), K: k, Cost: s.Cost(a)}); err != nil {
			return nil, fmt.Errorf("opt: coarsen: %w", err)
		}
	}
	return co, nil
}

// CoarseSchema returns the rediscretized schema.
func (co *Coarsening) CoarseSchema() *schema.Schema { return co.coarse }

// CoarsenValue maps an original value of attr to its segment index.
func (co *Coarsening) CoarsenValue(attr int, v schema.Value) schema.Value {
	b := co.boundaries[attr]
	// Linear scan: boundary lists are tiny (SPSF-bounded).
	for i := 1; i < len(b); i++ {
		if v < b[i] {
			return schema.Value(i - 1)
		}
	}
	return schema.Value(len(b) - 2)
}

// CoarsenTable maps a table onto the coarse schema.
func (co *Coarsening) CoarsenTable(tbl *table.Table) *table.Table {
	out := table.New(co.coarse, tbl.NumRows())
	n := co.orig.NumAttrs()
	row := make([]schema.Value, n)
	var orig []schema.Value
	for r := 0; r < tbl.NumRows(); r++ {
		orig = tbl.Row(r, orig)
		for a := 0; a < n; a++ {
			row[a] = co.CoarsenValue(a, orig[a])
		}
		out.MustAppendRow(row)
	}
	return out
}

// CoarsenQuery rewrites the query onto the coarse schema. Because the
// coarsening grid contains every predicate endpoint, the rewrite is exact:
// a tuple satisfies the coarse query iff its original satisfies the
// original query.
func (co *Coarsening) CoarsenQuery(q query.Query) (query.Query, error) {
	preds := make([]query.Pred, len(q.Preds))
	for i, p := range q.Preds {
		lo := co.CoarsenValue(p.Attr, p.R.Lo)
		hi := co.CoarsenValue(p.Attr, p.R.Hi)
		// Exactness check: the predicate range must align with segment
		// boundaries.
		b := co.boundaries[p.Attr]
		if b[lo] != p.R.Lo || int(b[hi+1]) != int(p.R.Hi)+1 {
			return query.Query{}, fmt.Errorf(
				"opt: coarsen: predicate on %s (%v) does not align with the grid", co.orig.Name(p.Attr), p.R)
		}
		preds[i] = query.Pred{Attr: p.Attr, R: query.Range{Lo: lo, Hi: hi}, Negated: p.Negated}
	}
	return query.NewQuery(co.coarse, preds...)
}

// ExpandPlan maps a plan built over the coarse schema back to the
// original domain: split thresholds and sequential-predicate ranges are
// replaced by their original boundary values, so the expanded plan
// executes directly on original-domain tuples.
func (co *Coarsening) ExpandPlan(n *plan.Node) *plan.Node {
	switch n.Kind {
	case plan.Leaf:
		return plan.NewLeaf(n.Result)
	case plan.Split:
		// Coarse split "X >= x" means "X in segments x.." which starts at
		// boundary[x] in the original domain.
		return plan.NewSplit(n.Attr, co.boundaries[n.Attr][n.X],
			co.ExpandPlan(n.Left), co.ExpandPlan(n.Right))
	case plan.Seq:
		preds := make([]query.Pred, len(n.Preds))
		for i, p := range n.Preds {
			b := co.boundaries[p.Attr]
			preds[i] = query.Pred{
				Attr:    p.Attr,
				R:       query.Range{Lo: b[p.R.Lo], Hi: b[int(p.R.Hi)+1] - 1},
				Negated: p.Negated,
			}
		}
		return plan.NewSeq(preds)
	default:
		panic("opt: coarsen: invalid node kind")
	}
}

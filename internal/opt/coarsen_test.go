package opt

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"acqp/internal/exec"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

func coarsenSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "h", K: 24, Cost: 1},
		schema.Attribute{Name: "x", K: 32, Cost: 100},
	)
}

func coarsenQuery(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 5, Hi: 20}},
	)
}

func TestCoarseningSchema(t *testing.T) {
	s := coarsenSchema()
	q := coarsenQuery(s)
	co, err := NewCoarsening(s, UniformSPSFSame(s, 3), q)
	if err != nil {
		t.Fatal(err)
	}
	cs := co.CoarseSchema()
	if cs.NumAttrs() != 2 {
		t.Fatalf("coarse attrs = %d", cs.NumAttrs())
	}
	// h: 3 split points -> 4 segments. x: 3 split points (8,16,24) plus
	// query endpoints 5 and 21 -> 6 segments.
	if cs.K(0) != 4 {
		t.Errorf("coarse K(h) = %d, want 4", cs.K(0))
	}
	if cs.K(1) != 6 {
		t.Errorf("coarse K(x) = %d, want 6", cs.K(1))
	}
	if cs.Cost(0) != 1 || cs.Cost(1) != 100 {
		t.Error("coarse costs not preserved")
	}
}

func TestCoarsenValueMapping(t *testing.T) {
	s := coarsenSchema()
	q := coarsenQuery(s)
	co, err := NewCoarsening(s, UniformSPSFSame(s, 0), q)
	if err != nil {
		t.Fatal(err)
	}
	// x boundaries: 0, 5, 21, 32 -> segments [0,5), [5,21), [21,32).
	cases := []struct {
		v    schema.Value
		want schema.Value
	}{
		{0, 0}, {4, 0}, {5, 1}, {20, 1}, {21, 2}, {31, 2},
	}
	for _, tc := range cases {
		if got := co.CoarsenValue(1, tc.v); got != tc.want {
			t.Errorf("CoarsenValue(x, %d) = %d, want %d", tc.v, got, tc.want)
		}
	}
}

func TestCoarsenQueryExact(t *testing.T) {
	s := coarsenSchema()
	q := coarsenQuery(s)
	co, err := NewCoarsening(s, UniformSPSFSame(s, 0), q)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := co.CoarsenQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	// Coarse predicate: segment 1 only.
	if cq.Preds[0].R != (query.Range{Lo: 1, Hi: 1}) {
		t.Errorf("coarse predicate = %v", cq.Preds[0].R)
	}
	// Semantics preserved for every original value.
	for v := 0; v < 32; v++ {
		orig := q.Preds[0].Eval(schema.Value(v))
		coarse := cq.Preds[0].Eval(co.CoarsenValue(1, schema.Value(v)))
		if orig != coarse {
			t.Errorf("value %d: original %v, coarse %v", v, orig, coarse)
		}
	}
}

func TestCoarsenTableAndExpandPlanEndToEnd(t *testing.T) {
	// Build a plan on the coarse view with the exhaustive planner, expand
	// it back, and verify it runs correctly on the original-domain table.
	s := coarsenSchema()
	q := coarsenQuery(s)
	rng := rand.New(rand.NewSource(21))
	tbl := table.New(s, 2000)
	for i := 0; i < 2000; i++ {
		h := rng.Intn(24)
		x := (h*32/24 + rng.Intn(8)) % 32
		tbl.MustAppendRow([]schema.Value{schema.Value(h), schema.Value(x)})
	}
	co, err := NewCoarsening(s, UniformSPSFSame(s, 3), q)
	if err != nil {
		t.Fatal(err)
	}
	ctbl := co.CoarsenTable(tbl)
	if ctbl.NumRows() != tbl.NumRows() {
		t.Fatal("coarse table lost rows")
	}
	cq, err := co.CoarsenQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	e := Exhaustive{SPSF: FullSPSF(co.CoarseSchema())}
	cplan, _, err := e.Plan(context.Background(), stats.NewEmpirical(ctbl), cq)
	if err != nil {
		t.Fatal(err)
	}
	expanded := co.ExpandPlan(cplan)
	if err := expanded.Validate(s); err != nil {
		t.Fatalf("expanded plan invalid: %v", err)
	}
	res, err := exec.Execute(context.Background(), exec.Request{
		Schema: s, Plan: expanded, Query: q,
		Options: exec.Options{Source: exec.NewTableSource(tbl, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatches != 0 {
		t.Errorf("expanded plan has %d mismatches on original data", res.Mismatches)
	}
	// The expanded plan's cost on original data equals the coarse plan's
	// cost on coarse data: coarsening preserves the distribution the plan
	// conditions on.
	cres, err := exec.Execute(context.Background(), exec.Request{
		Schema: co.CoarseSchema(), Plan: cplan, Query: cq,
		Options: exec.Options{Source: exec.NewTableSource(ctbl, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanCost()-cres.MeanCost()) > 1e-9 {
		t.Errorf("expanded cost %g != coarse cost %g", res.MeanCost(), cres.MeanCost())
	}
}

func TestCoarseningDegenerateDomain(t *testing.T) {
	// Zero split points and no query predicate on the attribute: the
	// coarse domain must still have K >= 2.
	s := coarsenSchema()
	q := coarsenQuery(s)
	co, err := NewCoarsening(s, UniformSPSFSame(s, 0), q)
	if err != nil {
		t.Fatal(err)
	}
	if co.CoarseSchema().K(0) < 2 {
		t.Errorf("degenerate coarse domain K = %d", co.CoarseSchema().K(0))
	}
}

func TestCoarsenQueryMisalignedFails(t *testing.T) {
	// If the grid misses the predicate endpoints (constructed manually by
	// not augmenting), CoarsenQuery must report the misalignment rather
	// than silently approximating. We simulate by building the coarsening
	// for a different query.
	s := coarsenSchema()
	qGrid := query.MustNewQuery(s, query.Pred{Attr: 1, R: query.Range{Lo: 8, Hi: 15}})
	co, err := NewCoarsening(s, UniformSPSFSame(s, 0), qGrid)
	if err != nil {
		t.Fatal(err)
	}
	qOther := coarsenQuery(s) // endpoints 5 and 20, not on the grid
	if _, err := co.CoarsenQuery(qOther); err == nil {
		t.Error("misaligned query accepted")
	}
}

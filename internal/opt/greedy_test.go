package opt

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

func TestGreedyFindsFigure2Plan(t *testing.T) {
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)
	g := Greedy{SPSF: FullSPSF(s), MaxSplits: 5, Base: SeqOpt}
	node, cost := g.Plan(context.Background(), d, q)
	// One split on hour suffices to reach the optimal 1.1.
	if math.Abs(cost-1.1) > 1e-9 {
		t.Errorf("greedy cost = %g, want 1.1", cost)
	}
	if node.NumSplits() == 0 {
		t.Error("greedy produced no conditioning splits")
	}
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on domain tuple %d", r)
	}
}

func TestGreedyZeroSplitsIsSequential(t *testing.T) {
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)
	g := Greedy{SPSF: FullSPSF(s), MaxSplits: 0, Base: SeqOpt}
	node, cost := g.Plan(context.Background(), d, q)
	if node.NumSplits() != 0 {
		t.Errorf("MaxSplits=0 produced %d splits", node.NumSplits())
	}
	_, want := SequentialPlan(SeqOpt, s, d.Root(), query.FullBox(s), q)
	if math.Abs(cost-want) > 1e-9 {
		t.Errorf("Heuristic-0 cost %g != OptSeq cost %g", cost, want)
	}
}

func TestGreedyRespectsMaxSplits(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "h", K: 8, Cost: 0},
		schema.Attribute{Name: "a", K: 8, Cost: 100},
		schema.Attribute{Name: "b", K: 8, Cost: 100},
		schema.Attribute{Name: "c", K: 8, Cost: 100},
	)
	rng := rand.New(rand.NewSource(6))
	tbl := table.New(s, 500)
	for i := 0; i < 500; i++ {
		h := rng.Intn(8)
		jitter := func() int { return (h + rng.Intn(3) - 1 + 8) % 8 }
		tbl.MustAppendRow([]schema.Value{
			schema.Value(h), schema.Value(jitter()), schema.Value(jitter()), schema.Value(jitter()),
		})
	}
	d := stats.NewEmpirical(tbl)
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 3}},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 3}},
		query.Pred{Attr: 3, R: query.Range{Lo: 2, Hi: 5}},
	)
	for _, k := range []int{1, 2, 3, 5, 10} {
		g := Greedy{SPSF: FullSPSF(s), MaxSplits: k, Base: SeqOpt}
		node, _ := g.Plan(context.Background(), d, q)
		if got := node.NumSplits(); got > k {
			t.Errorf("MaxSplits=%d produced %d splits", k, got)
		}
		if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
			t.Errorf("MaxSplits=%d: plan wrong on domain tuple %d", k, r)
		}
	}
}

func TestGreedyCostMonotoneInSplits(t *testing.T) {
	s := fig2Schema()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 5; trial++ {
		tbl := table.New(s, 200)
		for i := 0; i < 200; i++ {
			h := schema.Value(rng.Intn(2))
			tmp := h
			if rng.Float64() < 0.3 {
				tmp = 1 - tmp
			}
			lgt := 1 - h
			if rng.Float64() < 0.3 {
				lgt = 1 - lgt
			}
			tbl.MustAppendRow([]schema.Value{h, tmp, lgt})
		}
		d := stats.NewEmpirical(tbl)
		q := fig2Query(s)
		prev := math.Inf(1)
		for _, k := range []int{0, 1, 2, 5, 10} {
			g := Greedy{SPSF: FullSPSF(s), MaxSplits: k, Base: SeqOpt}
			_, cost := g.Plan(context.Background(), d, q)
			if cost > prev+1e-9 {
				t.Errorf("trial %d: Heuristic-%d cost %g worse than smaller k (%g)", trial, k, cost, prev)
			}
			prev = cost
		}
	}
}

func TestGreedyNeverWorseThanBaseSequential(t *testing.T) {
	// On training data, Heuristic-k can never be worse than its own base
	// sequential plan (Section 6.2 makes this observation).
	s := schema.New(
		schema.Attribute{Name: "h", K: 4, Cost: 1},
		schema.Attribute{Name: "a", K: 4, Cost: 100},
		schema.Attribute{Name: "b", K: 4, Cost: 100},
	)
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		tbl := table.New(s, 300)
		for i := 0; i < 300; i++ {
			h := rng.Intn(4)
			tbl.MustAppendRow([]schema.Value{
				schema.Value(h),
				schema.Value((h + rng.Intn(2)) % 4),
				schema.Value(rng.Intn(4)),
			})
		}
		d := stats.NewEmpirical(tbl)
		q := query.MustNewQuery(s,
			query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 2}},
			query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}},
		)
		for _, base := range []SeqAlgorithm{SeqOpt, SeqGreedy} {
			_, seqCost := SequentialPlan(base, s, d.Root(), query.FullBox(s), q)
			g := Greedy{SPSF: FullSPSF(s), MaxSplits: 5, Base: base}
			_, cost := g.Plan(context.Background(), d, q)
			if cost > seqCost+1e-9 {
				t.Errorf("trial %d base %v: greedy %g worse than sequential %g", trial, base, cost, seqCost)
			}
		}
	}
}

func TestGreedyPlannerName(t *testing.T) {
	p := GreedyPlanner{Greedy: Greedy{MaxSplits: 7}}
	if p.Name() != "Heuristic-7" {
		t.Errorf("Name = %q", p.Name())
	}
	if (NaivePlanner{}).Name() != "Naive" {
		t.Error("NaivePlanner name")
	}
	if (CorrSeqPlanner{Alg: SeqGreedy}).Name() != "CorrSeq(GreedySeq)" {
		t.Error("CorrSeqPlanner name")
	}
	if (ExhaustivePlanner{}).Name() != "Exhaustive" {
		t.Error("ExhaustivePlanner name")
	}
}

func TestGreedyNegatedPredicates(t *testing.T) {
	// Garden-style negated range predicates flow through the greedy
	// planner and produce correct plans.
	s := schema.New(
		schema.Attribute{Name: "t", K: 8, Cost: 1},
		schema.Attribute{Name: "a", K: 8, Cost: 100},
		schema.Attribute{Name: "b", K: 8, Cost: 100},
	)
	rng := rand.New(rand.NewSource(23))
	tbl := table.New(s, 400)
	for i := 0; i < 400; i++ {
		tt := rng.Intn(8)
		tbl.MustAppendRow([]schema.Value{
			schema.Value(tt),
			schema.Value((tt + rng.Intn(2)) % 8),
			schema.Value((tt + rng.Intn(3)) % 8),
		})
	}
	d := stats.NewEmpirical(tbl)
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 2, Hi: 5}, Negated: true},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 3}},
	)
	g := Greedy{SPSF: FullSPSF(s), MaxSplits: 4, Base: SeqOpt}
	node, cost := g.Plan(context.Background(), d, q)
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on domain tuple %d", r)
	}
	if got := plan.ExpectedCostRoot(node, d); math.Abs(got-cost) > 1e-9 {
		t.Errorf("reported cost %g != analytic %g", cost, got)
	}
}

// Regression guard: the priority queue must expand the highest-gain leaf
// first; with MaxSplits=1 the single split must equal GreedySplit at the
// root.
func TestGreedyFirstSplitIsRootGreedySplit(t *testing.T) {
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)
	g := Greedy{SPSF: FullSPSF(s), MaxSplits: 1, Base: SeqOpt}
	node, _ := g.Plan(context.Background(), d, q)
	if node.Kind != plan.Split {
		t.Fatalf("root is %v, want Split", node.Kind)
	}
	sp := g.greedySplit(context.Background(), s, d.Root(), query.FullBox(s), q, g.SPSF.WithQueryEndpoints(s, q), nil)
	if !sp.ok || node.Attr != sp.attr || node.X != sp.x {
		t.Errorf("root split (%d,%d) != greedySplit (%d,%d)", node.Attr, node.X, sp.attr, sp.x)
	}
}

func TestGreedyAlphaTradesSplitsForBytes(t *testing.T) {
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)
	// Without alpha: the hour split is taken (saves 0.4 units/tuple).
	free := Greedy{SPSF: FullSPSF(s), MaxSplits: 10, Base: SeqOpt}
	freeNode, freeCost := free.Plan(context.Background(), d, q)
	if freeNode.NumSplits() == 0 {
		t.Fatal("baseline greedy took no splits")
	}
	// A tiny alpha should not change the plan: the split saves 0.4
	// units/tuple, far above the byte charge.
	cheap := Greedy{SPSF: FullSPSF(s), MaxSplits: 10, Base: SeqOpt, Alpha: 1e-6}
	cheapNode, cheapCost := cheap.Plan(context.Background(), d, q)
	if cheapNode.NumSplits() != freeNode.NumSplits() || math.Abs(cheapCost-freeCost) > 1e-9 {
		t.Errorf("negligible alpha changed the plan: %d splits, cost %g", cheapNode.NumSplits(), cheapCost)
	}
	// A huge alpha makes every split unaffordable: plan collapses to the
	// sequential plan.
	dear := Greedy{SPSF: FullSPSF(s), MaxSplits: 10, Base: SeqOpt, Alpha: 1e6}
	dearNode, dearCost := dear.Plan(context.Background(), d, q)
	if dearNode.NumSplits() != 0 {
		t.Errorf("huge alpha still produced %d splits", dearNode.NumSplits())
	}
	_, seqCost := SequentialPlan(SeqOpt, s, d.Root(), query.FullBox(s), q)
	if math.Abs(dearCost-seqCost) > 1e-9 {
		t.Errorf("alpha-collapsed cost %g != sequential %g", dearCost, seqCost)
	}
	// At an intermediate alpha, total objective C(P) + alpha*zeta(P)
	// must not exceed either extreme's objective.
	alpha := 0.4 / 20.0 // split saves 0.4/tuple and costs ~18 extra bytes
	mid := Greedy{SPSF: FullSPSF(s), MaxSplits: 10, Base: SeqOpt, Alpha: alpha}
	midNode, midCost := mid.Plan(context.Background(), d, q)
	objective := func(n *plan.Node, c float64) float64 {
		return c + alpha*float64(plan.Size(n))
	}
	if objective(midNode, midCost) > objective(freeNode, freeCost)+1e-9 {
		t.Errorf("alpha-aware objective %g worse than alpha-blind %g",
			objective(midNode, midCost), objective(freeNode, freeCost))
	}
	if objective(midNode, midCost) > objective(dearNode, dearCost)+1e-9 {
		t.Errorf("alpha-aware objective %g worse than sequential %g",
			objective(midNode, midCost), objective(dearNode, dearCost))
	}
}

package opt

import (
	"math"
	"math/rand"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// corrSchema: three binary query attributes plus one cheap hour attribute.
func corrSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 4, Cost: 1},
		schema.Attribute{Name: "p0", K: 2, Cost: 100},
		schema.Attribute{Name: "p1", K: 2, Cost: 50},
		schema.Attribute{Name: "p2", K: 2, Cost: 10},
	)
}

// corrTable builds data where p0 and p1 are perfectly correlated and p2 is
// independent with P(p2=1)=0.5.
func corrTable() *table.Table {
	tbl := table.New(corrSchema(), 64)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 400; i++ {
		b := schema.Value(rng.Intn(2))
		p2 := schema.Value(rng.Intn(2))
		tbl.MustAppendRow([]schema.Value{schema.Value(rng.Intn(4)), b, b, p2})
	}
	return tbl
}

func corrQuery(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 3, R: query.Range{Lo: 1, Hi: 1}},
	)
}

func TestNaiveOrdersByRank(t *testing.T) {
	s := corrSchema()
	d := stats.NewEmpirical(corrTable())
	q := corrQuery(s)
	node, cost := SequentialPlan(SeqNaive, s, d.Root(), query.FullBox(s), q)
	if node.Kind != plan.Seq {
		t.Fatalf("naive produced %v node", node.Kind)
	}
	// All predicates have P(fail) ~ 0.5, so rank order follows cost:
	// p2 (10), p1 (50), p0 (100).
	want := []int{3, 2, 1}
	for i, p := range node.Preds {
		if p.Attr != want[i] {
			t.Fatalf("naive order = %v, want attrs %v", node.Preds, want)
		}
	}
	if cost <= 0 {
		t.Error("cost not positive")
	}
}

func TestGreedySeqExploitsCorrelation(t *testing.T) {
	s := corrSchema()
	d := stats.NewEmpirical(corrTable())
	q := corrQuery(s)
	// Greedy: picks p2 (cheapest rank), then among p0/p1 given earlier
	// choices. Once p1 (cost 50) is chosen and satisfied, p0 is satisfied
	// with probability ~1, so its rank ~Inf and it goes last; crucially
	// the expected cost reflects that evaluating p0 after p1 almost never
	// prunes.
	_, gCost := SequentialPlan(SeqGreedy, s, d.Root(), query.FullBox(s), q)
	_, nCost := SequentialPlan(SeqNaive, s, d.Root(), query.FullBox(s), q)
	if gCost > nCost+1e-9 {
		t.Errorf("greedy cost %g worse than naive %g", gCost, nCost)
	}
}

// bruteForceBestOrder enumerates all m! predicate orders and returns the
// minimum expected cost, the gold standard for OptSeq.
func bruteForceBestOrder(s *schema.Schema, c stats.Cond, box query.Box, preds []query.Pred) float64 {
	best := math.Inf(1)
	perm := make([]query.Pred, len(preds))
	var rec func(used []bool, depth int)
	rec = func(used []bool, depth int) {
		if depth == len(preds) {
			cost := plan.ExpectedCost(plan.NewSeq(perm), s, c, box)
			if cost < best {
				best = cost
			}
			return
		}
		for i := range preds {
			if used[i] {
				continue
			}
			used[i] = true
			perm[depth] = preds[i]
			rec(used, depth+1)
			used[i] = false
		}
	}
	rec(make([]bool, len(preds)), 0)
	return best
}

func TestOptSeqMatchesBruteForce(t *testing.T) {
	s := corrSchema()
	box := query.FullBox(s)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		tbl := table.New(s, 100)
		for i := 0; i < 100; i++ {
			h := rng.Intn(4)
			b := schema.Value((h + rng.Intn(2)) % 2)
			tbl.MustAppendRow([]schema.Value{
				schema.Value(h), b, schema.Value(rng.Intn(2)), schema.Value(rng.Intn(2)),
			})
		}
		d := stats.NewEmpirical(tbl)
		q := corrQuery(s)
		_, got := SequentialPlan(SeqOpt, s, d.Root(), box, q)
		want := bruteForceBestOrder(s, d.Root(), box, q.Preds)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: OptSeq cost %.12f, brute force %.12f", trial, got, want)
		}
	}
}

func TestOptSeqNeverWorseThanGreedyOrNaive(t *testing.T) {
	s := corrSchema()
	d := stats.NewEmpirical(corrTable())
	q := corrQuery(s)
	box := query.FullBox(s)
	_, opt := SequentialPlan(SeqOpt, s, d.Root(), box, q)
	_, grd := SequentialPlan(SeqGreedy, s, d.Root(), box, q)
	_, nai := SequentialPlan(SeqNaive, s, d.Root(), box, q)
	if opt > grd+1e-9 || opt > nai+1e-9 {
		t.Errorf("OptSeq %g worse than Greedy %g or Naive %g", opt, grd, nai)
	}
}

func TestSequentialPlanDeterminedBox(t *testing.T) {
	s := corrSchema()
	d := stats.NewEmpirical(corrTable())
	q := corrQuery(s)
	// Box that makes predicate on attr 1 false: whole query false.
	box := query.FullBox(s).With(1, query.Range{Lo: 0, Hi: 0})
	node, cost := SequentialPlan(SeqOpt, s, stats.RestrictBox(d.Root(), s, box), box, q)
	if node.Kind != plan.Leaf || node.Result || cost != 0 {
		t.Errorf("determined-false box: node=%+v cost=%g", node, cost)
	}
	// Box that satisfies every predicate: true leaf.
	sat := query.FullBox(s).
		With(1, query.Range{Lo: 1, Hi: 1}).
		With(2, query.Range{Lo: 1, Hi: 1}).
		With(3, query.Range{Lo: 1, Hi: 1})
	node, cost = SequentialPlan(SeqOpt, s, stats.RestrictBox(d.Root(), s, sat), sat, q)
	if node.Kind != plan.Leaf || !node.Result || cost != 0 {
		t.Errorf("determined-true box: node=%+v cost=%g", node, cost)
	}
}

func TestSequentialPlanObservedAttrIsFree(t *testing.T) {
	s := corrSchema()
	d := stats.NewEmpirical(corrTable())
	q := corrQuery(s)
	// Attr 1 observed (restricted) but its predicate still open is
	// impossible for binary domains, so restrict a wider schema instead:
	ws := schema.New(
		schema.Attribute{Name: "a", K: 8, Cost: 100},
		schema.Attribute{Name: "b", K: 8, Cost: 100},
	)
	wtbl := table.New(ws, 64)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 64; i++ {
		wtbl.MustAppendRow([]schema.Value{schema.Value(rng.Intn(8)), schema.Value(rng.Intn(8))})
	}
	wd := stats.NewEmpirical(wtbl)
	wq := query.MustNewQuery(ws,
		query.Pred{Attr: 0, R: query.Range{Lo: 2, Hi: 5}},
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 3}},
	)
	// a observed to [2,7]: predicate on a still open, but free to test.
	box := query.FullBox(ws).With(0, query.Range{Lo: 2, Hi: 7})
	c := stats.RestrictBox(wd.Root(), ws, box)
	node, cost := SequentialPlan(SeqOpt, ws, c, box, wq)
	// Cost must be at most b's acquisition cost: a is already acquired.
	if cost > 100+1e-9 {
		t.Errorf("cost = %g, want <= 100", cost)
	}
	// The free predicate on a should be evaluated first (rank 0).
	if node.Kind != plan.Seq || node.Preds[0].Attr != 0 {
		t.Errorf("free predicate not first: %+v", node)
	}
	_ = d
	_ = q
}

func TestOptSeqFallsBackPastCap(t *testing.T) {
	// 18 predicates exceeds optSeqMaxPreds; OptSeq must not try to build
	// a 2^18 table per leaf but still return a valid plan.
	n := 18
	attrs := make([]schema.Attribute, n)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: string(rune('a' + i)), K: 2, Cost: 100}
	}
	s := schema.New(attrs...)
	tbl := table.New(s, 32)
	rng := rand.New(rand.NewSource(5))
	row := make([]schema.Value, n)
	for i := 0; i < 32; i++ {
		for j := range row {
			row[j] = schema.Value(rng.Intn(2))
		}
		tbl.MustAppendRow(row)
	}
	d := stats.NewEmpirical(tbl)
	preds := make([]query.Pred, n)
	for i := range preds {
		preds[i] = query.Pred{Attr: i, R: query.Range{Lo: 1, Hi: 1}}
	}
	q := query.MustNewQuery(s, preds...)
	node, cost := SequentialPlan(SeqOpt, s, d.Root(), query.FullBox(s), q)
	if node.Kind != plan.Seq || len(node.Preds) != n {
		t.Fatalf("fallback plan malformed: %+v", node)
	}
	if cost <= 0 || math.IsInf(cost, 0) {
		t.Errorf("fallback cost = %g", cost)
	}
}

func TestRankBoundaryCases(t *testing.T) {
	if rank(0, 0) != 0 {
		t.Error("free predicate should rank 0")
	}
	if !math.IsInf(rank(5, 0), 1) {
		t.Error("never-failing predicate should rank +Inf")
	}
	if rank(10, 0.5) != 20 {
		t.Error("rank(10, 0.5) != 20")
	}
}

package opt

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/trace"
)

// Exhaustive implements the optimal dynamic-programming planner of
// Section 3.2 (Figure 5): a search over subproblems — range boxes over the
// attribute-domain space — with memoization keyed by the box and
// cost-bound pruning. Candidate conditioning predicates are restricted to
// the SPSF's split points; with a full SPSF the returned plan is the
// optimal conditional plan P* of Equation (2).
//
// The worst-case complexity is exponential in the number of attributes
// (Theorem 3.1 shows the problem is #P-hard), so this planner is only
// feasible for small schemas and SPSFs; Budget guards against runaway
// searches.
//
// With Parallelism > 1 the candidate splits of each subproblem are
// evaluated concurrently on a bounded goroutine pool over the sharded
// memo, with branch-and-bound pruning against an atomic best-so-far
// bound. The search is plan-deterministic: the returned cost is
// bit-identical and the plan shape identical at every Parallelism (see
// DESIGN.md §9 for the argument — pruning is strict, so cost ties always
// evaluate exactly, and a fixed candidate total order breaks them).
type Exhaustive struct {
	// SPSF restricts candidate split points. Required.
	SPSF SPSF
	// Budget caps the number of subproblems expanded; 0 means no cap.
	// When exceeded, Plan returns ErrBudget. Under Parallelism > 1
	// concurrent workers may re-expand a subproblem another worker is
	// still solving, so the exact point of budget exhaustion can vary
	// with worker count; determinism is guaranteed for runs that finish
	// within budget.
	Budget int
	// Parallelism bounds the goroutines evaluating candidate splits
	// concurrently; values <= 1 search sequentially.
	Parallelism int

	expanded int
}

// ErrBudget is returned when the exhaustive search exceeds its subproblem
// budget.
var ErrBudget = errBudget{}

type errBudget struct{}

func (errBudget) Error() string { return "opt: exhaustive search exceeded its subproblem budget" }

type exhaustiveSearch struct {
	ctx    context.Context
	s      *schema.Schema
	q      query.Query
	spsf   SPSF
	memo   *boxMemo
	sem    *gate
	budget int64
	count  atomic.Int64
	span   *trace.Span // nil unless the caller's ctx carries one
}

// Plan runs the exhaustive search and returns the optimal plan and its
// expected cost under the distribution. The search is not an anytime
// algorithm: when ctx is cancelled or its deadline expires mid-search,
// Plan returns ctx.Err() and callers wanting a plan anyway must fall back
// to a sequential planner.
func (e *Exhaustive) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error) {
	s := d.Schema()
	sp := trace.FromContext(ctx)
	ref := sp.Begin("exhaustive-search")
	es := &exhaustiveSearch{
		ctx:    ctx,
		s:      s,
		q:      q,
		spsf:   e.SPSF.WithQueryEndpoints(s, q),
		memo:   newBoxMemo(),
		sem:    newGate(e.Parallelism, sp),
		budget: int64(e.Budget),
		span:   sp,
	}
	root := d.Root()
	cost, node, err := es.solve(func() stats.Cond { return root }, query.FullBox(s), math.Inf(1))
	e.expanded = int(es.count.Load())
	sp.End(ref)
	if err != nil {
		return nil, 0, err
	}
	return node, cost, nil
}

// Expanded reports the number of subproblems expanded by the last Plan
// call, for the scalability experiments of Section 6.4.
func (e *Exhaustive) Expanded() int { return e.expanded }

// lazyC defers materializing a conditioning context (an O(rows) selection-
// vector partition for empirical distributions) until the search actually
// needs probabilities — base cases and memo hits never pay it.
type lazyC func() stats.Cond

// candResult is one candidate split's evaluation: its exact completion
// cost and plan, or cost = +Inf when pruned (in which case the candidate
// is provably strictly worse than the subproblem's final optimum).
type candResult struct {
	cost float64
	node *plan.Node
}

// solve implements ExhaustivePlan(phi, R_1..R_n, bound) from Figure 5,
// extended with branch-and-bound and bounded-parallel candidate
// evaluation. Its contract: a non-nil node is the subproblem's exact
// optimum; a nil node means the optimum is strictly greater than bound
// (nothing is cached then, per the "only cache results if an optimal plan
// is obtained" rule).
//
// Pruning is deliberately strict (>) rather than >=: a candidate tied
// with the best-so-far cost is still evaluated exactly, so cost ties are
// broken by the fixed candidate order in the final reduction, never by
// evaluation timing. That is what makes the plan shape independent of
// Parallelism.
func (es *exhaustiveSearch) solve(getC lazyC, box query.Box, bound float64) (float64, *plan.Node, error) {
	// Base case 1: the ranges determine the truth value of phi.
	switch es.q.EvalBox(box) {
	case query.True:
		return 0, plan.NewLeaf(true), nil
	case query.False:
		return 0, plan.NewLeaf(false), nil
	}
	// Base case 2: all query attributes observed — finishing is free;
	// emit a zero-cost sequential plan over the open predicates.
	if es.allQueryAttrsObserved(box) {
		return 0, plan.NewSeq(openPreds(es.q, box)), nil
	}
	key := box.Key()
	if hit, exact, prunes := es.memo.lookup(key, bound); exact {
		es.span.Count(trace.MemoHits, 1)
		return hit.cost, hit.node, nil
	} else if prunes {
		es.span.Count(trace.MemoHits, 1)
		return math.Inf(1), nil, nil
	}
	if n := es.count.Add(1); es.budget > 0 && n > es.budget {
		return 0, nil, ErrBudget
	}
	es.span.Count(trace.Expanded, 1)
	// One cancellation check per expanded subproblem: each expansion does
	// orders of magnitude more work than the check (sequential seeding,
	// split enumeration), so deadline overshoot stays within a single
	// subproblem's planning time.
	if err := es.ctx.Err(); err != nil {
		return 0, nil, err
	}
	c := getC()

	// Branch-and-bound seeding: the optimal sequential plan for this
	// subproblem is itself a member of the search space (its predicate
	// tests are splits at query endpoints, which the SPSF always
	// contains), so it provides an immediate incumbent and a tight
	// pruning bound. This extends Figure 5 with the "more elaborate
	// pruning techniques, such as branch-and-bound" the paper suggests.
	seqNode, seqCost := SequentialPlan(SeqOpt, es.s, c, box, es.q)
	best := newMinBound(bound)
	best.lower(seqCost)

	// Candidates in their fixed total order: (attr, x) ascending, with
	// the sequential seed ordered before all of them.
	type candidate struct {
		attr int
		x    schema.Value
	}
	var cands []candidate
	for attr := 0; attr < es.s.NumAttrs(); attr++ {
		for _, x := range es.spsf.Candidates(attr, box[attr]) {
			cands = append(cands, candidate{attr: attr, x: x})
		}
	}
	es.span.Count(trace.Candidates, int64(len(cands)))
	results := make([]candResult, len(cands))
	var wg sync.WaitGroup
	var firstErr errBox
	for i := range cands {
		i := i
		es.sem.run(&wg, func() {
			results[i] = es.evalCandidate(c, box, cands[i].attr, cands[i].x, best, &firstErr)
		})
	}
	wg.Wait()
	if err := firstErr.get(); err != nil {
		return 0, nil, err
	}

	// Deterministic reduction: scan candidates in their fixed order and
	// take strictly better costs only, so the first candidate achieving
	// the optimum wins regardless of evaluation timing. Pruned candidates
	// (cost +Inf, nil node) are provably strictly worse and never win.
	cMin, bestNode := seqCost, seqNode
	for i := range results {
		if results[i].node != nil && results[i].cost < cMin {
			cMin, bestNode = results[i].cost, results[i].node
		}
	}
	if cMin > bound {
		// Nothing met the bound: record "optimum > bound" so re-visits
		// with an equal or tighter bound prune without searching.
		es.memo.recordPruned(key, bound)
		return math.Inf(1), nil, nil
	}
	// cMin is the subproblem's true optimum even under a finite bound:
	// candidates are only discarded when their cost provably exceeds an
	// incumbent that is itself >= the optimum, so the entry is always
	// cacheable.
	es.span.Count(trace.MemoStores, 1)
	es.memo.store(key, exhaustiveMemoEntry{cost: cMin, node: bestNode})
	return cMin, bestNode, nil
}

// evalCandidate evaluates one candidate split exactly, or abandons it as
// soon as its cost provably (strictly) exceeds the shared best-so-far
// bound.
func (es *exhaustiveSearch) evalCandidate(c stats.Cond, box query.Box, attr int, x schema.Value, best *minBound, firstErr *errBox) candResult {
	out := candResult{cost: math.Inf(1)}
	if firstErr.hasErr() {
		return out // a sibling already failed; stop doing work
	}
	cost := predCost(es.s, box, attr)
	if cost > best.get() {
		es.span.Count(trace.Pruned, 1)
		return out // pruning: acquiring this attribute alone exceeds the bound
	}
	r := box[attr]
	loRange := query.Range{Lo: r.Lo, Hi: x - 1}
	hiRange := query.Range{Lo: x, Hi: r.Hi}
	pLo := c.ProbRange(attr, loRange)

	// Each branch with non-zero probability is solved recursively under
	// the remaining budget; a zero-probability branch (no training mass)
	// gets a safe fallback plan so the generated plan stays correct for
	// out-of-distribution test tuples.
	loNode := fallbackNode(es.q, box.With(attr, loRange))
	if pLo > 0 {
		loCost, node, err := es.solve(
			restrictLazy(c, attr, loRange), box.With(attr, loRange), childBound(best.get(), cost, pLo))
		if err != nil {
			firstErr.record(err)
			return out
		}
		if node == nil {
			es.span.Count(trace.Pruned, 1)
			return out // left branch alone pushes the candidate past the bound
		}
		loNode = node
		cost += pLo * loCost
		if cost > best.get() {
			es.span.Count(trace.Pruned, 1)
			return out
		}
	}
	hiNode := fallbackNode(es.q, box.With(attr, hiRange))
	if pHi := 1 - pLo; pHi > 0 {
		hiCost, node, err := es.solve(
			restrictLazy(c, attr, hiRange), box.With(attr, hiRange), childBound(best.get(), cost, pHi))
		if err != nil {
			firstErr.record(err)
			return out
		}
		if node == nil {
			es.span.Count(trace.Pruned, 1)
			return out
		}
		hiNode = node
		cost += pHi * hiCost
	}
	best.lower(cost)
	return candResult{cost: cost, node: plan.NewSplit(attr, x, loNode, hiNode)}
}

// childBound converts the candidate's remaining cost allowance into the
// child subproblem's bound, with slack proportional to the operand
// magnitudes. The slack keeps the search plan-deterministic: when a
// cost-tied sibling has already tightened best to exactly this
// candidate's total cost, (best-cost) suffers catastrophic cancellation
// and the division can round an ulp below the child's true optimum,
// which would prune a candidate that ties the optimum — and then the tie
// would be broken by evaluation timing instead of the fixed candidate
// order. Inflating the bound never costs exactness (children returning a
// plan are exact under any bound) and a pruned candidate remains provably
// strictly worse than the final optimum: its cost exceeds best-so-far,
// which never drops below the subproblem optimum.
func childBound(best, cost, p float64) float64 {
	rem := best - cost
	rem += 1e-9 * (math.Abs(best) + math.Abs(cost) + 1)
	return rem / p
}

func restrictLazy(c stats.Cond, attr int, r query.Range) lazyC {
	return func() stats.Cond { return c.RestrictRange(attr, r) }
}

// fallbackNode returns a plan that is always correct for the given box:
// the determined leaf if the box decides the query, otherwise a
// sequential evaluation of the open predicates. Planners attach it to
// branches their training data says are unreachable.
func fallbackNode(q query.Query, box query.Box) *plan.Node {
	switch q.EvalBox(box) {
	case query.True:
		return plan.NewLeaf(true)
	case query.False:
		return plan.NewLeaf(false)
	default:
		return plan.NewSeq(openPreds(q, box))
	}
}

func (es *exhaustiveSearch) allQueryAttrsObserved(box query.Box) bool {
	for _, p := range es.q.Preds {
		if !box.Observed(p.Attr, es.s.K(p.Attr)) {
			return false
		}
	}
	return true
}

package opt

import (
	"context"
	"math"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
)

// Exhaustive implements the optimal dynamic-programming planner of
// Section 3.2 (Figure 5): a depth-first search over subproblems — range
// boxes over the attribute-domain space — with memoization keyed by the
// box and cost-bound pruning. Candidate conditioning predicates are
// restricted to the SPSF's split points; with a full SPSF the returned
// plan is the optimal conditional plan P* of Equation (2).
//
// The worst-case complexity is exponential in the number of attributes
// (Theorem 3.1 shows the problem is #P-hard), so this planner is only
// feasible for small schemas and SPSFs; Budget guards against runaway
// searches.
type Exhaustive struct {
	// SPSF restricts candidate split points. Required.
	SPSF SPSF
	// Budget caps the number of subproblems expanded; 0 means no cap.
	// When exceeded, Plan returns ErrBudget.
	Budget int

	expanded int
}

// ErrBudget is returned when the exhaustive search exceeds its subproblem
// budget.
var ErrBudget = errBudget{}

type errBudget struct{}

func (errBudget) Error() string { return "opt: exhaustive search exceeded its subproblem budget" }

type exhaustiveMemoEntry struct {
	cost float64
	node *plan.Node
}

type exhaustiveSearch struct {
	ctx  context.Context
	s    *schema.Schema
	q    query.Query
	spsf SPSF
	memo map[string]exhaustiveMemoEntry
	// pruned[key] is the largest bound under which the subproblem was
	// searched without finding a plan: its true optimum is >= that value,
	// so re-visits with a bound at or below it prune instantly.
	pruned map[string]float64
	budget int
	count  int
}

// Plan runs the exhaustive search and returns the optimal plan and its
// expected cost under the distribution. The search is not an anytime
// algorithm: when ctx is cancelled or its deadline expires mid-search,
// Plan returns ctx.Err() and callers wanting a plan anyway must fall back
// to a sequential planner.
func (e *Exhaustive) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error) {
	s := d.Schema()
	es := &exhaustiveSearch{
		ctx:    ctx,
		s:      s,
		q:      q,
		spsf:   e.SPSF.WithQueryEndpoints(s, q),
		memo:   make(map[string]exhaustiveMemoEntry),
		pruned: make(map[string]float64),
		budget: e.Budget,
	}
	root := d.Root()
	cost, node, err := es.solve(func() stats.Cond { return root }, query.FullBox(s), math.Inf(1))
	e.expanded = es.count
	if err != nil {
		return nil, 0, err
	}
	return node, cost, nil
}

// Expanded reports the number of subproblems expanded by the last Plan
// call, for the scalability experiments of Section 6.4.
func (e *Exhaustive) Expanded() int { return e.expanded }

// lazyC defers materializing a conditioning context (an O(rows) selection-
// vector partition for empirical distributions) until the search actually
// needs probabilities — base cases and memo hits never pay it.
type lazyC func() stats.Cond

// solve implements ExhaustivePlan(phi, R_1..R_n, bound) from Figure 5. It
// returns the optimal completion cost and plan for the subproblem, or
// (+Inf, nil) if every candidate exceeded the bound (in which case nothing
// is cached, per the "only cache results if an optimal plan is obtained"
// rule).
func (es *exhaustiveSearch) solve(getC lazyC, box query.Box, bound float64) (float64, *plan.Node, error) {
	// Base case 1: the ranges determine the truth value of phi.
	switch es.q.EvalBox(box) {
	case query.True:
		return 0, plan.NewLeaf(true), nil
	case query.False:
		return 0, plan.NewLeaf(false), nil
	}
	// Base case 2: all query attributes observed — finishing is free;
	// emit a zero-cost sequential plan over the open predicates.
	if es.allQueryAttrsObserved(box) {
		return 0, plan.NewSeq(openPreds(es.q, box)), nil
	}
	key := box.Key()
	if hit, ok := es.memo[key]; ok {
		if hit.cost >= bound {
			return math.Inf(1), nil, nil
		}
		return hit.cost, hit.node, nil
	}
	if lb, ok := es.pruned[key]; ok && bound <= lb {
		return math.Inf(1), nil, nil
	}
	es.count++
	if es.budget > 0 && es.count > es.budget {
		return 0, nil, ErrBudget
	}
	// One cancellation check per expanded subproblem: each expansion does
	// orders of magnitude more work than the check (sequential seeding,
	// split enumeration), so deadline overshoot stays within a single
	// subproblem's planning time.
	if err := es.ctx.Err(); err != nil {
		return 0, nil, err
	}
	c := getC()

	// Branch-and-bound seeding: the optimal sequential plan for this
	// subproblem is itself a member of the search space (its predicate
	// tests are splits at query endpoints, which the SPSF always
	// contains), so it provides an immediate incumbent and a tight
	// pruning bound. This extends Figure 5 with the "more elaborate
	// pruning techniques, such as branch-and-bound" the paper suggests.
	cMin := bound
	var best *plan.Node
	if seqNode, seqCost := SequentialPlan(SeqOpt, es.s, c, box, es.q); seqCost < cMin {
		cMin, best = seqCost, seqNode
	}
	for attr := 0; attr < es.s.NumAttrs(); attr++ {
		atomic := predCost(es.s, box, attr)
		if atomic >= cMin {
			continue // pruning: acquiring this attribute alone exceeds the bound
		}
		r := box[attr]
		for _, x := range es.spsf.Candidates(attr, r) {
			cost := atomic
			loRange := query.Range{Lo: r.Lo, Hi: x - 1}
			hiRange := query.Range{Lo: x, Hi: r.Hi}
			pLo := c.ProbRange(attr, loRange)

			// Each branch with non-zero probability is solved recursively
			// under the remaining budget; a zero-probability branch (no
			// training mass) gets a safe fallback plan so the generated
			// plan stays correct for out-of-distribution test tuples.
			loNode := fallbackNode(es.q, box.With(attr, loRange))
			if pLo > 0 {
				loCost, node, err := es.solve(
					restrictLazy(c, attr, loRange), box.With(attr, loRange), (cMin-cost)/pLo)
				if err != nil {
					return 0, nil, err
				}
				if node == nil {
					continue // left branch alone exceeds the bound
				}
				loNode = node
				cost += pLo * loCost
				if cost >= cMin {
					continue
				}
			}
			hiNode := fallbackNode(es.q, box.With(attr, hiRange))
			if pHi := 1 - pLo; pHi > 0 {
				hiCost, node, err := es.solve(
					restrictLazy(c, attr, hiRange), box.With(attr, hiRange), (cMin-cost)/pHi)
				if err != nil {
					return 0, nil, err
				}
				if node == nil {
					continue
				}
				hiNode = node
				cost += pHi * hiCost
			}
			if cost < cMin {
				cMin = cost
				best = plan.NewSplit(attr, x, loNode, hiNode)
			}
		}
	}
	if best != nil && cMin < bound {
		// cMin is the subproblem's true optimum even under a finite
		// bound: candidates are only discarded when their partial cost
		// already meets an achievable incumbent, and child searches
		// return Inf only when their optimum provably pushes the
		// candidate to cMin or beyond. So the entry is always cacheable
		// (the "only cache results if an optimal plan is obtained" rule
		// of Figure 5 refers to the pruned case below).
		es.memo[key] = exhaustiveMemoEntry{cost: cMin, node: best}
		return cMin, best, nil
	}
	// Nothing beat the bound: record "optimum >= bound" so re-visits with
	// an equal or tighter bound prune without searching.
	if lb, ok := es.pruned[key]; !ok || bound > lb {
		es.pruned[key] = bound
	}
	return math.Inf(1), nil, nil
}

func restrictLazy(c stats.Cond, attr int, r query.Range) lazyC {
	return func() stats.Cond { return c.RestrictRange(attr, r) }
}

// fallbackNode returns a plan that is always correct for the given box:
// the determined leaf if the box decides the query, otherwise a
// sequential evaluation of the open predicates. Planners attach it to
// branches their training data says are unreachable.
func fallbackNode(q query.Query, box query.Box) *plan.Node {
	switch q.EvalBox(box) {
	case query.True:
		return plan.NewLeaf(true)
	case query.False:
		return plan.NewLeaf(false)
	default:
		return plan.NewSeq(openPreds(q, box))
	}
}

func (es *exhaustiveSearch) allQueryAttrsObserved(box query.Box) bool {
	for _, p := range es.q.Preds {
		if !box.Observed(p.Attr, es.s.K(p.Attr)) {
			return false
		}
	}
	return true
}

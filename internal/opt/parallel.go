package opt

import (
	"math"
	"sync"
	"sync/atomic"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/stats"
	"acqp/internal/trace"
)

// This file holds the concurrency substrate shared by the parallel
// planners: an atomic monotonically-decreasing cost bound, a sharded
// subproblem memo, a bounded goroutine gate, and the safe-publication
// helpers that are the only places internal/opt may derive child
// conditioning contexts (enforced by acqlint's condshare analyzer).

// minBound is an atomically updatable best-so-far cost shared by the
// candidate evaluations of one subproblem. Costs are non-negative (or
// +Inf), so the CAS loop over raw float64 bits is well-defined. The bound
// only ever decreases; pruning against it is sound because every stored
// value is either the caller's bound or an achievable plan cost.
type minBound struct {
	bits atomic.Uint64
}

func newMinBound(v float64) *minBound {
	b := &minBound{}
	b.bits.Store(math.Float64bits(v))
	return b
}

func (b *minBound) get() float64 { return math.Float64frombits(b.bits.Load()) }

// lower installs v if it is strictly below the current bound.
func (b *minBound) lower(v float64) {
	for {
		old := b.bits.Load()
		if !(v < math.Float64frombits(old)) {
			return
		}
		if b.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// memoShards is the fixed shard count of boxMemo. Box keys hash uniformly
// (they pack range endpoints), so 64 shards keep lock contention negligible
// at any plausible Parallelism.
const memoShards = 64

type exhaustiveMemoEntry struct {
	cost float64
	node *plan.Node
}

// boxMemo is the concurrency-safe subproblem memo of the exhaustive
// search, sharded by a hash of the box key. Each shard pairs the exact
// results (the "only cache optimal results" rule of Figure 5) with the
// pruned lower bounds recorded when a subproblem was searched under a
// bound no plan could beat.
type boxMemo struct {
	shards [memoShards]memoShard
}

type memoShard struct {
	mu sync.Mutex
	// solved holds exact optima; entries are deterministic values, so a
	// racing duplicate store rewrites an identical result.
	solved map[string]exhaustiveMemoEntry
	// pruned[key] is the largest bound under which the subproblem was
	// searched without finding a plan: its true optimum is > that value,
	// so re-visits with a bound at or below it prune instantly.
	pruned map[string]float64
}

func newBoxMemo() *boxMemo {
	m := &boxMemo{}
	for i := range m.shards {
		m.shards[i].solved = make(map[string]exhaustiveMemoEntry)
		m.shards[i].pruned = make(map[string]float64)
	}
	return m
}

// shard picks the shard for a key by FNV-1a.
func (m *boxMemo) shard(key string) *memoShard {
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &m.shards[h%memoShards]
}

// lookup returns the exact entry if one is cached, else whether the
// recorded pruned lower bound already proves the optimum exceeds bound.
func (m *boxMemo) lookup(key string, bound float64) (entry exhaustiveMemoEntry, exact, prunes bool) {
	sh := m.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.solved[key]; ok {
		return e, true, false
	}
	if lb, ok := sh.pruned[key]; ok && bound <= lb {
		return exhaustiveMemoEntry{}, false, true
	}
	return exhaustiveMemoEntry{}, false, false
}

func (m *boxMemo) store(key string, e exhaustiveMemoEntry) {
	sh := m.shard(key)
	sh.mu.Lock()
	sh.solved[key] = e
	sh.mu.Unlock()
}

// recordPruned remembers "optimum > bound", keeping the largest such bound.
func (m *boxMemo) recordPruned(key string, bound float64) {
	sh := m.shard(key)
	sh.mu.Lock()
	if lb, ok := sh.pruned[key]; !ok || bound > lb {
		sh.pruned[key] = bound
	}
	sh.mu.Unlock()
}

// gate bounds the extra goroutines a parallel search may use. A nil gate
// (Parallelism <= 1) runs everything inline; otherwise run hands fn to a
// new goroutine when a token is free and falls back to running it inline,
// so progress never blocks on pool capacity and recursion cannot deadlock.
// The optional span records the pool's spawn-vs-inline placement
// decisions (trace.Spawned / trace.Inlined).
type gate struct {
	tokens chan struct{}
	span   *trace.Span
}

func newGate(parallelism int, span *trace.Span) *gate {
	if parallelism <= 1 {
		return nil
	}
	return &gate{tokens: make(chan struct{}, parallelism-1), span: span}
}

// run dispatches fn to a pooled goroutine or inline.
//
//acqlint:pure completion order never reaches output: workers fold into the sharded memo and the plan chosen is the cost-minimal one regardless of arrival order (covered by TestExhaustiveParallelDeterminism / TestGreedyParallelDeterminism)
func (g *gate) run(wg *sync.WaitGroup, fn func()) {
	if g != nil {
		select {
		case g.tokens <- struct{}{}:
			g.span.Count(trace.Spawned, 1)
			wg.Add(1) //acqlint:ignore errdrop sync.WaitGroup.Add returns nothing; name-collision with error-returning Add methods
			go func() {
				defer wg.Done()
				defer func() { <-g.tokens }()
				fn()
			}()
			return
		default:
			g.span.Count(trace.Inlined, 1)
		}
	}
	fn()
}

// errBox collects the first error of a fan-out; later evaluations consult
// hasErr to abort early.
type errBox struct {
	mu  sync.Mutex
	err error
	set atomic.Bool
}

func (b *errBox) record(err error) {
	if err == nil {
		return
	}
	b.mu.Lock()
	if b.err == nil {
		b.err = err
		b.set.Store(true)
	}
	b.mu.Unlock()
}

func (b *errBox) hasErr() bool { return b.set.Load() }

func (b *errBox) get() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// childCond derives the child conditioning context for one branch of a
// conditioning split. Together with predTrueCond and restrictLazy it is
// the only place internal/opt may call Cond.RestrictRange/RestrictPred
// (acqlint's condshare analyzer enforces this): derivation reads the
// shared parent and returns a fresh context, so concurrent searches never
// mutate a Cond another goroutine is reading.
func childCond(c stats.Cond, attr int, r query.Range) stats.Cond {
	return c.RestrictRange(attr, r)
}

// predTrueCond conditions on a predicate holding, for sequential-plan
// construction.
func predTrueCond(c stats.Cond, p query.Pred) stats.Cond {
	return c.RestrictPred(p, true)
}

package opt

import (
	"math"

	"acqp/internal/floats"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
)

// SeqAlgorithm selects which sequential planner builds base plans.
type SeqAlgorithm int

// Sequential planning algorithms.
const (
	// SeqNaive orders predicates by cost / P(fail) using marginal
	// selectivities only (Section 4.1.1) — the traditional optimizer
	// baseline that ignores correlations.
	SeqNaive SeqAlgorithm = iota
	// SeqGreedy is the 4-approximate greedy heuristic of Munagala et al.
	// that conditions each choice on the predicates already chosen
	// (Section 4.1.3).
	SeqGreedy
	// SeqOpt is the optimal sequential plan via dynamic programming over
	// predicate subsets, O(m * 2^m) (Section 4.1.2).
	SeqOpt
)

func (a SeqAlgorithm) String() string {
	switch a {
	case SeqNaive:
		return "Naive"
	case SeqGreedy:
		return "GreedySeq"
	case SeqOpt:
		return "OptSeq"
	default:
		return "unknown"
	}
}

// optSeqMaxPreds caps the subset DP: beyond this many open predicates,
// SeqOpt falls back to SeqGreedy, mirroring Section 6's use of OptSeq for
// the small lab queries and GreedySeq for the larger garden/synthetic
// queries.
const optSeqMaxPreds = 16

// openPreds returns the query predicates whose truth is not yet determined
// by the box. A query predicate that is False under the box makes the
// whole conjunction false; callers must check q.EvalBox first.
func openPreds(q query.Query, box query.Box) []query.Pred {
	var open []query.Pred
	for _, p := range q.Preds {
		if p.EvalRange(box[p.Attr]) == query.Unknown {
			open = append(open, p)
		}
	}
	return open
}

// predCost returns C'_i: the acquisition cost of the predicate's
// attribute, or 0 if the box shows it has already been acquired. With
// shared sensor boards (Section 7), the cost is conditional on the
// attributes acquired so far: a board already powered by an observed
// attribute is not charged again.
func predCost(s *schema.Schema, box query.Box, attr int) float64 {
	if box.Observed(attr, s.K(attr)) {
		return 0
	}
	return s.AcquisitionCostWith(attr, func(i int) bool {
		return box.Observed(i, s.K(i))
	})
}

// SequentialPlan computes a sequential plan for the open predicates of q
// under the given evidence (c restricted to box), using the requested
// algorithm. It returns the plan node and its expected cost given the
// evidence. If the box already determines the query, it returns the
// corresponding leaf with zero cost.
func SequentialPlan(alg SeqAlgorithm, s *schema.Schema, c stats.Cond, box query.Box, q query.Query) (*plan.Node, float64) {
	switch q.EvalBox(box) {
	case query.True:
		return plan.NewLeaf(true), 0
	case query.False:
		return plan.NewLeaf(false), 0
	}
	open := openPreds(q, box)
	var order []query.Pred
	switch alg {
	case SeqNaive:
		order = naiveOrder(s, c, box, open)
	case SeqGreedy:
		order = greedyOrder(s, c, box, open)
	case SeqOpt:
		if len(open) > optSeqMaxPreds {
			order = greedyOrder(s, c, box, open)
		} else {
			order = optOrder(s, c, box, open)
		}
	default:
		panic("opt: unknown sequential algorithm")
	}
	node := plan.NewSeq(order)
	return node, plan.ExpectedCost(node, s, c, box)
}

// naiveOrder sorts predicates by rank = C'_i / P(phi_i fails), using
// marginal probabilities under the current evidence. This is the
// traditional System-R-style ordering of Section 4.1.1, which ignores
// correlations between predicates.
func naiveOrder(s *schema.Schema, c stats.Cond, box query.Box, open []query.Pred) []query.Pred {
	type ranked struct {
		p    query.Pred
		rank float64
	}
	rs := make([]ranked, len(open))
	for i, p := range open {
		pFail := 1 - c.ProbPred(p)
		rs[i] = ranked{p, rank(predCost(s, box, p.Attr), pFail)}
	}
	// Stable insertion sort: deterministic and tiny inputs.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && rs[j].rank < rs[j-1].rank; j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
	out := make([]query.Pred, len(rs))
	for i, r := range rs {
		out[i] = r.p
	}
	return out
}

// rank computes C / pFail with the conventional boundary cases: a free
// predicate ranks first, a predicate that can never fail ranks last.
func rank(cost, pFail float64) float64 {
	if floats.Zero(cost) {
		return 0
	}
	if pFail <= 0 {
		return math.Inf(1)
	}
	return cost / pFail
}

// greedyOrder implements the greedy heuristic of Munagala et al.
// (Section 4.1.3): repeatedly choose the predicate minimizing
// C_j / (1 - p_j) where p_j is the probability the predicate is satisfied
// GIVEN that all previously chosen predicates are satisfied.
func greedyOrder(s *schema.Schema, c stats.Cond, box query.Box, open []query.Pred) []query.Pred {
	remaining := append([]query.Pred(nil), open...)
	out := make([]query.Pred, 0, len(open))
	chosen := make(map[int]bool, len(open)) // attributes already in the order
	for len(remaining) > 0 {
		best, bestRank := 0, math.Inf(1)
		for i, p := range remaining {
			r := rank(seqPredCost(s, box, chosen, p.Attr), 1-c.ProbPred(p))
			if r < bestRank {
				best, bestRank = i, r
			}
		}
		pick := remaining[best]
		out = append(out, pick)
		chosen[pick.Attr] = true
		remaining = append(remaining[:best], remaining[best+1:]...)
		c = predTrueCond(c, pick)
	}
	return out
}

// seqPredCost is predCost conditioned additionally on the attributes a
// sequential order has already acquired, so shared-board power-up costs
// (Section 7) are charged once per order, not once per predicate.
func seqPredCost(s *schema.Schema, box query.Box, chosen map[int]bool, attr int) float64 {
	if box.Observed(attr, s.K(attr)) || chosen[attr] {
		return 0
	}
	if !s.HasBoards() {
		return s.Cost(attr)
	}
	return s.AcquisitionCostWith(attr, func(i int) bool {
		return box.Observed(i, s.K(i)) || chosen[i]
	})
}

// optOrder computes the optimal sequential order by dynamic programming
// over subsets of satisfied predicates (Section 4.1.2): the problem is
// rediscretized to the binary attributes X'_i = [phi_i satisfied], and
//
//	J(S) = min_{j not in S} C'_j + P(phi_j | all of S) * J(S + j)
//
// with J(full) = 0. Probabilities come from the joint distribution over
// the rediscretized attributes (Section 5.2), computed in one pass.
func optOrder(s *schema.Schema, c stats.Cond, box query.Box, open []query.Pred) []query.Pred {
	m := len(open)
	if m == 0 {
		return nil
	}
	q := query.Query{Preds: open}
	satProb := stats.PredMaskJoint(c, q) // becomes P(AND_{i in S}) below
	stats.SupersetSums(satProb, m)

	full := uint32(1)<<uint(m) - 1
	j := make([]float64, full+1)   // J(S)
	choice := make([]int8, full+1) // argmin predicate for S
	// Iterate S from full-1 down to 0; S+j is always numerically larger.
	for sMask := int64(full) - 1; sMask >= 0; sMask-- {
		S := uint32(sMask)
		if S == full {
			continue
		}
		best, bestCost := -1, math.Inf(1)
		for i := 0; i < m; i++ {
			if S&(1<<uint(i)) != 0 {
				continue
			}
			// C'_i conditional on the subset already evaluated: with
			// shared boards (Section 7), predicates whose attributes sit
			// on a board powered by a predicate in S are cheaper.
			acq := predCost(s, box, open[i].Attr)
			if s.HasBoards() {
				acq = subsetPredCost(s, box, open, S, i)
			}
			pSat := stats.CondSatProb(satProb, S, i)
			cost := acq + pSat*j[S|1<<uint(i)]
			if cost < bestCost {
				best, bestCost = i, cost
			}
		}
		j[S], choice[S] = bestCost, int8(best)
	}

	out := make([]query.Pred, 0, m)
	for S := uint32(0); S != full; {
		i := int(choice[S])
		out = append(out, open[i])
		S |= 1 << uint(i)
	}
	return out
}

// subsetPredCost returns the acquisition cost of open[i]'s attribute when
// the predicates in subset S have already been evaluated.
func subsetPredCost(s *schema.Schema, box query.Box, open []query.Pred, S uint32, i int) float64 {
	attr := open[i].Attr
	if box.Observed(attr, s.K(attr)) {
		return 0
	}
	return s.AcquisitionCostWith(attr, func(a int) bool {
		if box.Observed(a, s.K(a)) {
			return true
		}
		for j, p := range open {
			if p.Attr == a && S&(1<<uint(j)) != 0 {
				return true
			}
		}
		return false
	})
}

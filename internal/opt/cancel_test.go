package opt

import (
	"context"
	"errors"
	"math/rand"
	"testing"
	"time"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// hardWorld builds a schema and dataset large enough that the exhaustive
// search runs for a long time: m uniform attributes with domain k and a
// query over all of them.
func hardWorld(m, k, rows int, seed int64) (*stats.Empirical, query.Query) {
	attrs := make([]schema.Attribute, m)
	for i := range attrs {
		attrs[i] = schema.Attribute{Name: string(rune('a' + i)), K: k, Cost: float64(1 + i%3)}
	}
	s := schema.New(attrs...)
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(s, rows)
	row := make([]schema.Value, m)
	for r := 0; r < rows; r++ {
		base := rng.Intn(k)
		for i := range row {
			row[i] = schema.Value((base + rng.Intn(2)) % k)
		}
		tbl.MustAppendRow(row)
	}
	preds := make([]query.Pred, m)
	for i := range preds {
		preds[i] = query.Pred{Attr: i, R: query.Range{Lo: 0, Hi: schema.Value(k/2 - 1)}}
	}
	return stats.NewEmpirical(tbl), query.MustNewQuery(s, preds...)
}

func TestExhaustiveHonorsCancelledContext(t *testing.T) {
	d, q := hardWorld(6, 6, 400, 7)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: the search must abort almost immediately
	e := Exhaustive{SPSF: UniformSPSFSame(d.Schema(), 5)}
	_, _, err := e.Plan(ctx, d, q)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExhaustiveHonorsDeadline(t *testing.T) {
	d, q := hardWorld(6, 6, 400, 7)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	e := Exhaustive{SPSF: UniformSPSFSame(d.Schema(), 5)}
	start := time.Now()
	_, _, err := e.Plan(ctx, d, q)
	elapsed := time.Since(start)
	if err == nil {
		t.Skip("search finished inside the deadline; nothing to observe")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	// The check fires once per expanded subproblem, so the overshoot is
	// bounded by one subproblem's work; allow generous CI slack.
	if elapsed > 2*time.Second {
		t.Fatalf("search ran %v past a 10ms deadline", elapsed)
	}
}

func TestGreedyDegradesGracefullyOnCancel(t *testing.T) {
	d, q := hardWorld(8, 4, 400, 9)
	s := d.Schema()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g := Greedy{SPSF: UniformSPSFSame(s, 4), MaxSplits: 5, Base: SeqGreedy}
	node, cost := g.Plan(ctx, d, q)
	if node == nil {
		t.Fatal("cancelled greedy plan returned nil")
	}
	// The degraded plan must still be a complete, correct plan.
	if node.NumSplits() != 0 {
		t.Errorf("cancelled-before-start plan has %d splits, want purely sequential", node.NumSplits())
	}
	if err := node.Validate(s); err != nil {
		t.Fatalf("degraded plan invalid: %v", err)
	}
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Fatalf("degraded plan wrong on domain tuple %d", r)
	}
	if cost <= 0 {
		t.Errorf("degraded plan cost %g, want positive", cost)
	}
	// An uncancelled run from the same state must do no worse.
	full, fullCost := g.Plan(context.Background(), d, q)
	if fullCost > cost+1e-9 {
		t.Errorf("full greedy run (%g) worse than cancelled run (%g)", fullCost, cost)
	}
	if err := full.Validate(s); err != nil {
		t.Fatalf("full plan invalid: %v", err)
	}
}

func TestGreedyMidSearchDeadlineStillValid(t *testing.T) {
	d, q := hardWorld(8, 4, 600, 5)
	s := d.Schema()
	// A deadline likely to fire mid-search: long enough to get past the
	// root sequential plan, short enough to truncate the split loop. The
	// exact truncation point does not matter — any outcome must be valid.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	g := Greedy{SPSF: UniformSPSFSame(s, 6), MaxSplits: 10, Base: SeqOpt}
	node, _ := g.Plan(ctx, d, q)
	if node == nil {
		t.Fatal("deadline-truncated greedy plan returned nil")
	}
	if err := node.Validate(s); err != nil {
		t.Fatalf("truncated plan invalid: %v", err)
	}
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Fatalf("truncated plan wrong on domain tuple %d", r)
	}
	if node.NumSplits() > 10 {
		t.Errorf("truncated plan has %d splits, exceeding MaxSplits", node.NumSplits())
	}
	_ = plan.ExpectedCostRoot(node, d) // must not panic on the truncated tree
}

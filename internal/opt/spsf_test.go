package opt

import (
	"testing"

	"acqp/internal/query"
	"acqp/internal/schema"
)

func spsfSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "a", K: 16, Cost: 1},
		schema.Attribute{Name: "b", K: 9, Cost: 100},
	)
}

func TestUniformSPSFValidation(t *testing.T) {
	s := spsfSchema()
	if _, err := UniformSPSF(s, []int{1}); err == nil {
		t.Error("wrong arity accepted")
	}
	if _, err := UniformSPSF(s, []int{-1, 0}); err == nil {
		t.Error("negative count accepted")
	}
}

func TestUniformSPSFPoints(t *testing.T) {
	s := spsfSchema()
	sp, err := UniformSPSF(s, []int{3, 0})
	if err != nil {
		t.Fatal(err)
	}
	// K=16, r=3: interior endpoints of 4 equal ranges: 4, 8, 12.
	want := []schema.Value{4, 8, 12}
	got := sp.Candidates(0, query.FullRange(16))
	if len(got) != len(want) {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
	if n := sp.NumPoints(1); n != 0 {
		t.Errorf("attribute with r=0 has %d points", n)
	}
	if f := sp.Factor(); f != 3 {
		t.Errorf("Factor = %g, want 3", f)
	}
}

func TestUniformSPSFClampsToDomain(t *testing.T) {
	s := spsfSchema()
	sp, err := UniformSPSF(s, []int{100, 100})
	if err != nil {
		t.Fatal(err)
	}
	// r is clamped to K-1: every split point once.
	if n := sp.NumPoints(0); n != 15 {
		t.Errorf("NumPoints(a) = %d, want 15", n)
	}
	if n := sp.NumPoints(1); n != 8 {
		t.Errorf("NumPoints(b) = %d, want 8", n)
	}
}

func TestFullSPSFEqualsClampedUniform(t *testing.T) {
	s := spsfSchema()
	sp := FullSPSF(s)
	for attr := 0; attr < s.NumAttrs(); attr++ {
		pts := sp.Candidates(attr, query.FullRange(s.K(attr)))
		if len(pts) != s.K(attr)-1 {
			t.Fatalf("attr %d: %d points, want %d", attr, len(pts), s.K(attr)-1)
		}
		for i, x := range pts {
			if int(x) != i+1 {
				t.Fatalf("attr %d: point[%d] = %d, want %d", attr, i, x, i+1)
			}
		}
	}
}

func TestCandidatesRespectRange(t *testing.T) {
	s := spsfSchema()
	sp := FullSPSF(s)
	got := sp.Candidates(0, query.Range{Lo: 5, Hi: 9})
	// Valid splits of [5,9]: x in {6,7,8,9}.
	if len(got) != 4 || got[0] != 6 || got[3] != 9 {
		t.Errorf("Candidates([5,9]) = %v, want [6 7 8 9]", got)
	}
	if got := sp.Candidates(0, query.Range{Lo: 7, Hi: 7}); len(got) != 0 {
		t.Errorf("singleton range has candidates %v", got)
	}
}

func TestWithQueryEndpoints(t *testing.T) {
	s := spsfSchema()
	sp := UniformSPSFSame(s, 1) // only the midpoints 8 and 4..5-ish
	q := query.MustNewQuery(s,
		query.Pred{Attr: 0, R: query.Range{Lo: 3, Hi: 11}},
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 6}},
	)
	aug := sp.WithQueryEndpoints(s, q)
	// Attribute 0 gains 3 and 12.
	has := func(attr int, x schema.Value) bool {
		for _, v := range aug.Candidates(attr, query.FullRange(s.K(attr))) {
			if v == x {
				return true
			}
		}
		return false
	}
	if !has(0, 3) || !has(0, 12) {
		t.Error("attribute 0 missing predicate endpoints")
	}
	// Attribute 1's predicate starts at 0 (no split needed) and ends at 6
	// (split at 7 needed).
	if !has(1, 7) {
		t.Error("attribute 1 missing endpoint 7")
	}
	// The original SPSF is untouched.
	if len(sp.Candidates(0, query.FullRange(16))) != 1 {
		t.Error("WithQueryEndpoints mutated the receiver")
	}
	// Idempotent: applying again adds nothing.
	aug2 := aug.WithQueryEndpoints(s, q)
	if len(aug2.Candidates(0, query.FullRange(16))) != len(aug.Candidates(0, query.FullRange(16))) {
		t.Error("WithQueryEndpoints not idempotent")
	}
}

func TestInsertSortedProperty(t *testing.T) {
	pts := []schema.Value{}
	for _, x := range []schema.Value{5, 1, 9, 5, 3, 9, 7} {
		pts = insertSorted(pts, x)
	}
	want := []schema.Value{1, 3, 5, 7, 9}
	if len(pts) != len(want) {
		t.Fatalf("insertSorted produced %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Fatalf("insertSorted produced %v, want %v", pts, want)
		}
	}
}

package opt

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// randTable fills a table whose expensive attributes noisily track the
// cheap driver attribute, so conditional plans genuinely help.
func randTable(s *schema.Schema, rng *rand.Rand, rows, k int) *table.Table {
	tbl := table.New(s, rows)
	row := make([]schema.Value, s.NumAttrs())
	for i := 0; i < rows; i++ {
		driver := schema.Value(rng.Intn(k))
		row[0] = driver
		for a := 1; a < s.NumAttrs(); a++ {
			v := int(driver) + rng.Intn(3) - 1 // tracks driver with noise
			if rng.Intn(5) == 0 {
				v = rng.Intn(k) // occasional outlier
			}
			if v < 0 {
				v = 0
			}
			if v >= k {
				v = k - 1
			}
			row[a] = schema.Value(v)
		}
		tbl.MustAppendRow(row)
	}
	return tbl
}

// randWorld builds a seeded correlated dataset and query: a cheap driver
// attribute, expensive attributes that noisily track it, and a conjunctive
// query over the expensive ones. This is the Figure 2 shape randomized.
func randWorld(seed int64) (*schema.Schema, stats.Dist, query.Query) {
	rng := rand.New(rand.NewSource(seed))
	k := 4 + rng.Intn(3) // domain size 4..6
	s := schema.New(
		schema.Attribute{Name: "driver", K: k, Cost: 1},
		schema.Attribute{Name: "e1", K: k, Cost: 50 + float64(rng.Intn(100))},
		schema.Attribute{Name: "e2", K: k, Cost: 50 + float64(rng.Intn(100))},
		schema.Attribute{Name: "e3", K: k, Cost: 50 + float64(rng.Intn(100))},
	)
	tbl := randTable(s, rng, 300+rng.Intn(200), k)
	preds := []query.Pred{
		{Attr: 1, R: query.Range{Lo: 0, Hi: schema.Value(rng.Intn(k-1) + 1)}},
		{Attr: 2, R: query.Range{Lo: schema.Value(rng.Intn(k - 1)), Hi: schema.Value(k - 1)}},
	}
	if rng.Intn(2) == 0 {
		preds = append(preds, query.Pred{Attr: 3, R: query.Range{Lo: 0, Hi: schema.Value(rng.Intn(k))}, Negated: rng.Intn(2) == 0})
	}
	q, err := query.NewQuery(s, preds...)
	if err != nil {
		panic("opt: test query invalid: " + err.Error())
	}
	return s, stats.NewEmpirical(tbl), q
}

// encodedOutcome fingerprints a plan run: the cost's exact bit pattern and
// the plan's wire encoding. Determinism means both are byte-identical
// across worker counts.
type encodedOutcome struct {
	costBits uint64
	encoded  []byte
}

func fingerprint(node *plan.Node, cost float64) encodedOutcome {
	return encodedOutcome{costBits: math.Float64bits(cost), encoded: plan.Encode(node)}
}

func parallelismLevels() []int {
	levels := []int{1, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 4 {
		levels = append(levels, p)
	}
	return levels
}

// TestExhaustiveParallelDeterminism asserts the tentpole guarantee: the
// exhaustive search returns a bit-identical cost and byte-identical
// encoded plan at Parallelism 1, 4, and GOMAXPROCS, across many seeded
// distributions. Run under -race it also exercises the sharded memo,
// atomic bound, and shared-Cond statistics layer.
func TestExhaustiveParallelDeterminism(t *testing.T) {
	const seeds = 24
	for seed := int64(0); seed < seeds; seed++ {
		s, d, q := randWorld(seed)
		var want encodedOutcome
		for i, par := range parallelismLevels() {
			e := Exhaustive{SPSF: UniformSPSFSame(s, 4), Parallelism: par}
			node, cost, err := e.Plan(context.Background(), d, q)
			if err != nil {
				t.Fatalf("seed %d parallelism %d: %v", seed, par, err)
			}
			got := fingerprint(node, cost)
			if i == 0 {
				want = got
				continue
			}
			if got.costBits != want.costBits {
				t.Errorf("seed %d: cost differs at parallelism %d: %x vs %x (%g vs %g)",
					seed, par, got.costBits, want.costBits,
					math.Float64frombits(got.costBits), math.Float64frombits(want.costBits))
			}
			if !bytes.Equal(got.encoded, want.encoded) {
				t.Errorf("seed %d: encoded plan differs at parallelism %d", seed, par)
			}
		}
	}
}

// TestGreedyParallelDeterminism is the same property for the greedy
// planner: frontier leaves and candidate splits evaluated concurrently
// must yield the plan the sequential loop yields.
func TestGreedyParallelDeterminism(t *testing.T) {
	const seeds = 24
	for seed := int64(100); seed < 100+seeds; seed++ {
		s, d, q := randWorld(seed)
		var want encodedOutcome
		for i, par := range parallelismLevels() {
			g := Greedy{SPSF: UniformSPSFSame(s, 4), MaxSplits: 4, Base: SeqOpt, Parallelism: par}
			node, cost := g.Plan(context.Background(), d, q)
			got := fingerprint(node, cost)
			if i == 0 {
				want = got
				continue
			}
			if got.costBits != want.costBits {
				t.Errorf("seed %d: cost differs at parallelism %d: %g vs %g",
					seed, par, math.Float64frombits(got.costBits), math.Float64frombits(want.costBits))
			}
			if !bytes.Equal(got.encoded, want.encoded) {
				t.Errorf("seed %d: encoded plan differs at parallelism %d", seed, par)
			}
		}
	}
}

// TestExhaustiveGreedyCostSanity pins the planners' relationship on the
// randomized worlds: the exhaustive optimum never costs more than the
// greedy plan (both evaluated analytically under the same distribution).
func TestExhaustiveGreedyCostSanity(t *testing.T) {
	for seed := int64(200); seed < 210; seed++ {
		s, d, q := randWorld(seed)
		e := Exhaustive{SPSF: UniformSPSFSame(s, 4), Parallelism: 4}
		_, eCost, err := e.Plan(context.Background(), d, q)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		g := Greedy{SPSF: UniformSPSFSame(s, 4), MaxSplits: 4, Base: SeqOpt, Parallelism: 4}
		gNode, _ := g.Plan(context.Background(), d, q)
		gCost := plan.ExpectedCostRoot(gNode, d)
		if eCost > gCost+1e-9 {
			t.Errorf("seed %d: exhaustive cost %g exceeds greedy cost %g", seed, eCost, gCost)
		}
	}
}

// Package opt implements the paper's planning algorithms: the Naive
// predicate ordering (Section 4.1.1), the optimal sequential planner
// OptSeq (Section 4.1.2), the greedy sequential planner GreedySeq of
// Munagala et al. (Section 4.1.3), the exhaustive conditional planner
// (Section 3.2, Figure 5), and the greedy conditional planner
// GreedySplit/GreedyPlan (Section 4.2, Figures 6 and 7), together with the
// split-point-selection-factor (SPSF) restriction of Section 4.3.
package opt

import (
	"fmt"
	"sort"

	"acqp/internal/query"
	"acqp/internal/schema"
)

// SPSF restricts the candidate split points the conditional planners may
// condition on (Section 4.3). For each attribute it holds a sorted list of
// candidate split values x, meaning the planners may only introduce
// conditioning predicates T(X_i >= x) at those x. The Split Point
// Selection Factor is the product of the per-attribute candidate counts.
type SPSF struct {
	points [][]schema.Value // per attribute, sorted ascending, all in [1, K-1]
}

// UniformSPSF builds the paper's equal-width candidate sets: attribute i's
// domain is divided into r[i]+1 equal ranges and the interior endpoints
// become the candidate split points. r[i] == 0 disables conditioning on
// attribute i; r[i] >= K_i-1 allows every possible split.
func UniformSPSF(s *schema.Schema, r []int) (SPSF, error) {
	if len(r) != s.NumAttrs() {
		return SPSF{}, fmt.Errorf("opt: SPSF needs %d split counts, got %d", s.NumAttrs(), len(r))
	}
	sp := SPSF{points: make([][]schema.Value, s.NumAttrs())}
	for i, ri := range r {
		if ri < 0 {
			return SPSF{}, fmt.Errorf("opt: negative split count for attribute %s", s.Name(i))
		}
		k := s.K(i)
		if ri > k-1 {
			ri = k - 1
		}
		pts := make([]schema.Value, 0, ri)
		var prev schema.Value
		for j := 1; j <= ri; j++ {
			// Interior endpoint of the j-th of ri+1 equal-width ranges.
			x := schema.Value((j*k + (ri+1)/2) / (ri + 1))
			if x < 1 {
				x = 1
			}
			if int(x) > k-1 {
				x = schema.Value(k - 1)
			}
			if len(pts) == 0 || x != prev {
				pts = append(pts, x)
				prev = x
			}
		}
		sp.points[i] = pts
	}
	return sp, nil
}

// FullSPSF allows every possible split point of every attribute
// (SPSF equal to the product of domain sizes).
func FullSPSF(s *schema.Schema) SPSF {
	r := make([]int, s.NumAttrs())
	for i := range r {
		r[i] = s.K(i) - 1
	}
	sp, err := UniformSPSF(s, r)
	if err != nil {
		panic("opt: " + err.Error()) // unreachable: counts are valid by construction
	}
	return sp
}

// UniformSPSFSame builds a UniformSPSF with the same split count for every
// attribute.
func UniformSPSFSame(s *schema.Schema, r int) SPSF {
	rs := make([]int, s.NumAttrs())
	for i := range rs {
		rs[i] = r
	}
	sp, err := UniformSPSF(s, rs)
	if err != nil {
		panic("opt: " + err.Error()) // unreachable: counts are valid by construction
	}
	return sp
}

// WithQueryEndpoints returns a copy of the SPSF whose candidate sets
// additionally contain the boundary points of every query predicate
// (p.R.Lo and p.R.Hi+1). This guarantees the exhaustive planner can
// always resolve each predicate with at most two splits, regardless of how
// coarse the configured SPSF is: without it, a query whose range endpoints
// fall between candidate points could never be decided by splits alone.
func (sp SPSF) WithQueryEndpoints(s *schema.Schema, q query.Query) SPSF {
	out := SPSF{points: make([][]schema.Value, len(sp.points))}
	copy(out.points, sp.points)
	for _, p := range q.Preds {
		pts := append([]schema.Value(nil), out.points[p.Attr]...)
		k := s.K(p.Attr)
		for _, x := range []int{int(p.R.Lo), int(p.R.Hi) + 1} {
			if x >= 1 && x <= k-1 {
				pts = insertSorted(pts, schema.Value(x))
			}
		}
		out.points[p.Attr] = pts
	}
	return out
}

func insertSorted(pts []schema.Value, x schema.Value) []schema.Value {
	i := sort.Search(len(pts), func(j int) bool { return pts[j] >= x })
	if i < len(pts) && pts[i] == x {
		return pts
	}
	pts = append(pts, 0)
	copy(pts[i+1:], pts[i:])
	pts[i] = x
	return pts
}

// Candidates returns the candidate split values x for attribute attr that
// split the current range r into two non-empty halves [r.Lo, x-1] and
// [x, r.Hi] — i.e. candidates with r.Lo < x <= r.Hi.
func (sp SPSF) Candidates(attr int, r query.Range) []schema.Value {
	pts := sp.points[attr]
	lo := sort.Search(len(pts), func(i int) bool { return pts[i] > r.Lo })
	hi := sort.Search(len(pts), func(i int) bool { return pts[i] > r.Hi })
	return pts[lo:hi]
}

// NumPoints returns r_i, the number of candidate split points for
// attribute attr.
func (sp SPSF) NumPoints(attr int) int { return len(sp.points[attr]) }

// Factor returns the Split Point Selection Factor, the product of the
// per-attribute candidate counts (attributes with zero candidates count
// as 1: they simply cannot be conditioned on).
func (sp SPSF) Factor() float64 {
	f := 1.0
	for _, pts := range sp.points {
		if len(pts) > 0 {
			f *= float64(len(pts))
		}
	}
	return f
}

package opt

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// fig2Schema and fig2Table reproduce the Figure 2 worked example (see
// internal/plan tests): hour free, temp/light cost 1, strong day/night
// correlation.
func fig2Schema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 2, Cost: 0},
		schema.Attribute{Name: "temp", K: 2, Cost: 1},
		schema.Attribute{Name: "light", K: 2, Cost: 1},
	)
}

func fig2Table() *table.Table {
	tbl := table.New(fig2Schema(), 200)
	add := func(count int, row []schema.Value) {
		for i := 0; i < count; i++ {
			tbl.MustAppendRow(row)
		}
	}
	add(9, []schema.Value{0, 1, 1})
	add(1, []schema.Value{0, 1, 0})
	add(81, []schema.Value{0, 0, 1})
	add(9, []schema.Value{0, 0, 0})
	add(9, []schema.Value{1, 1, 1})
	add(81, []schema.Value{1, 1, 0})
	add(1, []schema.Value{1, 0, 1})
	add(9, []schema.Value{1, 0, 0})
	return tbl
}

func fig2Query(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
	)
}

// allTuples enumerates the full domain cross-product as a table; used to
// check plan correctness beyond the training data.
func allTuples(s *schema.Schema) *table.Table {
	tbl := table.New(s, 64)
	row := make([]schema.Value, s.NumAttrs())
	var rec func(i int)
	rec = func(i int) {
		if i == s.NumAttrs() {
			tbl.MustAppendRow(row)
			return
		}
		for v := 0; v < s.K(i); v++ {
			row[i] = schema.Value(v)
			rec(i + 1)
		}
	}
	rec(0)
	return tbl
}

func TestExhaustiveFindsFigure2ConditionalPlan(t *testing.T) {
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)
	e := Exhaustive{SPSF: FullSPSF(s)}
	node, cost, err := e.Plan(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	// The optimal plan conditions on the free hour attribute and orders
	// the expensive predicates per branch: expected cost 1.1.
	if math.Abs(cost-1.1) > 1e-9 {
		t.Errorf("exhaustive cost = %g, want 1.1", cost)
	}
	// Reported cost must match the plan's analytic cost.
	if got := plan.ExpectedCostRoot(node, d); math.Abs(got-cost) > 1e-9 {
		t.Errorf("reported cost %g != analytic cost %g", cost, got)
	}
	// The plan is correct on every tuple in the domain.
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on domain tuple %d", r)
	}
	if e.Expanded() == 0 {
		t.Error("Expanded() not recorded")
	}
}

func TestExhaustiveBeatsOrMatchesEveryOtherPlanner(t *testing.T) {
	s := fig2Schema()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		// Random correlated binary data.
		tbl := table.New(s, 100)
		for i := 0; i < 100; i++ {
			h := schema.Value(rng.Intn(2))
			tmp := h
			if rng.Float64() < 0.2 {
				tmp = 1 - tmp
			}
			lgt := 1 - h
			if rng.Float64() < 0.2 {
				lgt = 1 - lgt
			}
			tbl.MustAppendRow([]schema.Value{h, tmp, lgt})
		}
		d := stats.NewEmpirical(tbl)
		q := fig2Query(s)
		e := Exhaustive{SPSF: FullSPSF(s)}
		_, exCost, err := e.Plan(context.Background(), d, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []Planner{
			NaivePlanner{},
			CorrSeqPlanner{Alg: SeqOpt},
			CorrSeqPlanner{Alg: SeqGreedy},
			GreedyPlanner{Greedy: Greedy{SPSF: FullSPSF(s), MaxSplits: 5, Base: SeqOpt}},
		} {
			_, cost, err := p.Plan(context.Background(), d, q)
			if err != nil {
				t.Fatal(err)
			}
			if exCost > cost+1e-9 {
				t.Errorf("trial %d: exhaustive %g worse than %s %g", trial, exCost, p.Name(), cost)
			}
		}
	}
}

func TestExhaustiveBudget(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 32, Cost: 1},
		schema.Attribute{Name: "b", K: 32, Cost: 1},
		schema.Attribute{Name: "c", K: 32, Cost: 1},
	)
	rng := rand.New(rand.NewSource(2))
	tbl := table.New(s, 200)
	for i := 0; i < 200; i++ {
		tbl.MustAppendRow([]schema.Value{
			schema.Value(rng.Intn(32)), schema.Value(rng.Intn(32)), schema.Value(rng.Intn(32)),
		})
	}
	d := stats.NewEmpirical(tbl)
	q := query.MustNewQuery(s,
		query.Pred{Attr: 0, R: query.Range{Lo: 8, Hi: 23}},
		query.Pred{Attr: 1, R: query.Range{Lo: 8, Hi: 23}},
		query.Pred{Attr: 2, R: query.Range{Lo: 8, Hi: 23}},
	)
	e := Exhaustive{SPSF: FullSPSF(s), Budget: 10}
	_, _, err := e.Plan(context.Background(), d, q)
	if !errors.Is(err, ErrBudget) {
		t.Errorf("err = %v, want ErrBudget", err)
	}
}

func TestExhaustiveWithCoarseSPSFStillCorrect(t *testing.T) {
	// Even with zero configured split points, WithQueryEndpoints must
	// make the query resolvable and the plan correct on all tuples.
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	q := fig2Query(s)
	e := Exhaustive{SPSF: UniformSPSFSame(s, 0)}
	node, cost, err := e.Plan(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(cost, 0) {
		t.Fatal("coarse SPSF produced infeasible plan")
	}
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on domain tuple %d", r)
	}
}

func TestExhaustiveDeterminedQueries(t *testing.T) {
	s := fig2Schema()
	d := stats.NewEmpirical(fig2Table())
	// Predicate covering the full domain: trivially true.
	q := query.MustNewQuery(s, query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}})
	e := Exhaustive{SPSF: FullSPSF(s)}
	node, cost, err := e.Plan(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 0 || node.Kind != plan.Leaf || !node.Result {
		t.Errorf("trivially-true query: node=%+v cost=%g", node, cost)
	}
}

func TestExhaustiveLargerDomains(t *testing.T) {
	// 3 attributes with K=6; predicate on a correlated with the cheap c.
	s := schema.New(
		schema.Attribute{Name: "c", K: 6, Cost: 1},
		schema.Attribute{Name: "a", K: 6, Cost: 100},
		schema.Attribute{Name: "b", K: 6, Cost: 100},
	)
	rng := rand.New(rand.NewSource(4))
	tbl := table.New(s, 300)
	for i := 0; i < 300; i++ {
		c := rng.Intn(6)
		a := (c + rng.Intn(2)) % 6
		b := rng.Intn(6)
		tbl.MustAppendRow([]schema.Value{schema.Value(c), schema.Value(a), schema.Value(b)})
	}
	d := stats.NewEmpirical(tbl)
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 2}},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 2}},
	)
	e := Exhaustive{SPSF: FullSPSF(s), Budget: 2_000_000}
	node, cost, err := e.Plan(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on domain tuple %d", r)
	}
	// Must not exceed the cost of the best sequential plan.
	_, seqCost := SequentialPlan(SeqOpt, s, d.Root(), query.FullBox(s), q)
	if cost > seqCost+1e-9 {
		t.Errorf("exhaustive %g worse than OptSeq %g", cost, seqCost)
	}
}

// randomConjPlan builds a random valid plan (splits + seq leaves) that
// correctly decides the conjunctive query: every leaf is the fallback for
// its box, so correctness is guaranteed while structure varies.
func randomConjPlan(rng *rand.Rand, s *schema.Schema, q query.Query, box query.Box, depth int) *plan.Node {
	switch q.EvalBox(box) {
	case query.True:
		return plan.NewLeaf(true)
	case query.False:
		return plan.NewLeaf(false)
	}
	if depth <= 0 || rng.Float64() < 0.3 {
		return fallbackNode(q, box)
	}
	attr := rng.Intn(s.NumAttrs())
	r := box[attr]
	if r.Size() < 2 {
		return fallbackNode(q, box)
	}
	x := r.Lo + 1 + schema.Value(rng.Intn(r.Size()-1))
	lo := query.Range{Lo: r.Lo, Hi: x - 1}
	hi := query.Range{Lo: x, Hi: r.Hi}
	return plan.NewSplit(attr, x,
		randomConjPlan(rng, s, q, box.With(attr, lo), depth-1),
		randomConjPlan(rng, s, q, box.With(attr, hi), depth-1))
}

// Property: no randomly generated correct plan beats the exhaustive
// planner's optimum on the training distribution.
func TestExhaustiveDominatesRandomPlans(t *testing.T) {
	s := fig2Schema()
	rng := rand.New(rand.NewSource(73))
	big := schema.New(
		schema.Attribute{Name: "h", K: 4, Cost: 1},
		schema.Attribute{Name: "a", K: 4, Cost: 60},
		schema.Attribute{Name: "b", K: 4, Cost: 100},
	)
	tbl := table.New(big, 400)
	for i := 0; i < 400; i++ {
		h := rng.Intn(4)
		tbl.MustAppendRow([]schema.Value{
			schema.Value(h),
			schema.Value((h + rng.Intn(2)) % 4),
			schema.Value((3 - h + rng.Intn(2)) % 4),
		})
	}
	d := stats.NewEmpirical(tbl)
	q := query.MustNewQuery(big,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 2, Hi: 3}},
	)
	ex := Exhaustive{SPSF: FullSPSF(big), Budget: 2_000_000}
	_, exCost, err := ex.Plan(context.Background(), d, q)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		p := randomConjPlan(rng, big, q, query.FullBox(big), 4)
		if r := p.Equivalent(big, q, tbl); r != -1 {
			t.Fatalf("random plan construction broken at row %d", r)
		}
		if c := plan.ExpectedCostRoot(p, d); c < exCost-1e-9 {
			t.Fatalf("random plan (cost %g) beat exhaustive (%g):\n%s",
				c, exCost, plan.Render(p, big))
		}
	}
	_ = s
}

package opt

import (
	"context"
	"fmt"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/stats"
)

// Planner is the common interface of all planning algorithms compared in
// the paper's evaluation (Section 6, "Algorithms Compared").
type Planner interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// Plan builds a plan for the query under the distribution and
	// returns it with its expected cost on the training distribution.
	// Cancelling the context stops the search: planners that can degrade
	// gracefully (Greedy) return the best valid plan found so far, while
	// anytime-incapable planners (Exhaustive) return the context error.
	Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error)
}

// NaivePlanner is the traditional optimizer baseline: a sequential plan
// ordered by cost / P(fail) using marginal selectivities (Section 4.1.1).
type NaivePlanner struct{}

// Name implements Planner.
func (NaivePlanner) Name() string { return "Naive" }

// Plan implements Planner.
func (NaivePlanner) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	s := d.Schema()
	node, cost := SequentialPlan(SeqNaive, s, d.Root(), query.FullBox(s), q)
	return node, cost, nil
}

// CorrSeqPlanner is the correlation-aware sequential baseline CorrSeq of
// Section 6: OptSeq when the query is small enough, GreedySeq otherwise.
type CorrSeqPlanner struct {
	// Alg selects SeqOpt or SeqGreedy. SeqOpt transparently falls back
	// to SeqGreedy past optSeqMaxPreds predicates.
	Alg SeqAlgorithm
}

// Name implements Planner.
func (p CorrSeqPlanner) Name() string { return "CorrSeq(" + p.Alg.String() + ")" }

// Plan implements Planner.
func (p CorrSeqPlanner) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	s := d.Schema()
	node, cost := SequentialPlan(p.Alg, s, d.Root(), query.FullBox(s), q)
	return node, cost, nil
}

// GreedyPlanner adapts Greedy to the Planner interface; it is the paper's
// Heuristic-k.
type GreedyPlanner struct {
	Greedy Greedy
}

// Name implements Planner.
func (p GreedyPlanner) Name() string { return fmt.Sprintf("Heuristic-%d", p.Greedy.MaxSplits) }

// Plan implements Planner.
func (p GreedyPlanner) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error) {
	node, cost := p.Greedy.Plan(ctx, d, q)
	return node, cost, nil
}

// ExhaustivePlanner adapts Exhaustive to the Planner interface.
type ExhaustivePlanner struct {
	Exhaustive Exhaustive
}

// Name implements Planner.
func (p ExhaustivePlanner) Name() string { return "Exhaustive" }

// Plan implements Planner.
func (p ExhaustivePlanner) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64, error) {
	return p.Exhaustive.Plan(ctx, d, q)
}

package opt

import (
	"bytes"
	"context"
	"testing"
	"time"

	"acqp/internal/trace"
)

// TestExhaustiveByteIdenticalWithSpan pins the tentpole invariant at the
// opt layer: attaching a trace span to the context never changes planner
// output. Cost bits and encoded plan must match the untraced run exactly.
func TestExhaustiveByteIdenticalWithSpan(t *testing.T) {
	sawSearch := false
	for seed := int64(0); seed < 8; seed++ {
		s, d, q := randWorld(seed)
		for _, par := range []int{1, 4} {
			e := Exhaustive{SPSF: UniformSPSFSame(s, 4), Parallelism: par}
			node, cost, err := e.Plan(context.Background(), d, q)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			want := fingerprint(node, cost)

			sp := trace.NewSpan(time.Now)
			e2 := Exhaustive{SPSF: UniformSPSFSame(s, 4), Parallelism: par}
			node2, cost2, err := e2.Plan(trace.NewContext(context.Background(), sp), d, q)
			if err != nil {
				t.Fatalf("seed %d traced: %v", seed, err)
			}
			got := fingerprint(node2, cost2)
			if got.costBits != want.costBits {
				t.Errorf("seed %d par %d: traced cost bits differ", seed, par)
			}
			if !bytes.Equal(got.encoded, want.encoded) {
				t.Errorf("seed %d par %d: traced plan differs", seed, par)
			}

			// A query decided at the root expands nothing, so search
			// counters are asserted across the seed set, not per seed.
			if sp.Counter(trace.Expanded) > 0 {
				sawSearch = true
				if sp.Counter(trace.Candidates) == 0 {
					t.Errorf("seed %d: expansions but no candidates recorded", seed)
				}
				if sp.Counter(trace.MemoStores) == 0 {
					t.Errorf("seed %d: expansions but no memo stores recorded", seed)
				}
				if par > 1 && sp.Counter(trace.Spawned)+sp.Counter(trace.Inlined) == 0 {
					t.Errorf("seed %d: parallel run recorded no pool placements", seed)
				}
			}
			snap := sp.Snapshot()
			if len(snap.Phases) == 0 || snap.Phases[0].Name != "exhaustive-search" {
				t.Errorf("seed %d: missing exhaustive-search phase: %+v", seed, snap.Phases)
			}
		}
	}
	if !sawSearch {
		t.Errorf("no seed recorded any exhaustive expansions")
	}
}

// TestGreedyByteIdenticalWithSpan is the same invariant for the greedy
// planner, plus its phase structure and leaf-expansion counter.
func TestGreedyByteIdenticalWithSpan(t *testing.T) {
	sawCandidates := false
	for seed := int64(100); seed < 108; seed++ {
		s, d, q := randWorld(seed)
		for _, par := range []int{1, 4} {
			g := Greedy{SPSF: UniformSPSFSame(s, 4), MaxSplits: 4, Base: SeqOpt, Parallelism: par}
			node, cost := g.Plan(context.Background(), d, q)
			want := fingerprint(node, cost)

			sp := trace.NewSpan(time.Now)
			g2 := Greedy{SPSF: UniformSPSFSame(s, 4), MaxSplits: 4, Base: SeqOpt, Parallelism: par}
			node2, cost2 := g2.Plan(trace.NewContext(context.Background(), sp), d, q)
			got := fingerprint(node2, cost2)
			if got.costBits != want.costBits {
				t.Errorf("seed %d par %d: traced cost bits differ", seed, par)
			}
			if !bytes.Equal(got.encoded, want.encoded) {
				t.Errorf("seed %d par %d: traced plan differs", seed, par)
			}

			// A root plan that is already a decided leaf evaluates no
			// candidates, so candidate counting is asserted across the
			// seed set rather than per seed.
			if sp.Counter(trace.Candidates) > 0 {
				sawCandidates = true
			}
			if node.NumSplits() > 0 && sp.Counter(trace.LeafExpansions) == 0 {
				t.Errorf("seed %d: plan has splits but no leaf expansions recorded", seed)
			}
			snap := sp.Snapshot()
			names := make(map[string]bool, len(snap.Phases))
			for _, p := range snap.Phases {
				names[p.Name] = true
			}
			for _, want := range []string{"greedy-seed", "greedy-expand", "greedy-simplify"} {
				if !names[want] {
					t.Errorf("seed %d: phase %q missing from %+v", seed, want, snap.Phases)
				}
			}
		}
	}
	if !sawCandidates {
		t.Errorf("no seed recorded any greedy candidates")
	}
}

package opt

import (
	"container/heap"
	"context"
	"math"
	"sync"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/trace"
)

// Greedy is the heuristic conditional planner of Section 4.2: it starts
// from a sequential plan for the whole problem and greedily introduces the
// locally-optimal binary splits of Figure 6, expanding leaves in
// priority-queue order (Figure 7) until MaxSplits conditioning branches
// have been added or no split improves on the sequential plan.
type Greedy struct {
	// SPSF restricts candidate conditioning points. Required.
	SPSF SPSF
	// MaxSplits bounds the number of conditioning splits (the k in the
	// paper's Heuristic-k). Zero yields a pure sequential plan.
	MaxSplits int
	// Base selects the sequential planner used for leaf plans: SeqOpt
	// for small queries, SeqGreedy for large ones (Section 6,
	// "Algorithms Compared"). SeqNaive is allowed for ablations.
	Base SeqAlgorithm
	// Alpha, when positive, switches from the size-bounded formulation
	// to the joint objective of Section 2.4:
	//
	//	argmin_P C(P) + alpha * zeta(P)
	//
	// where zeta(P) is the plan's wire size in bytes and alpha is
	// (cost to transmit a byte) / (tuples processed in the query
	// lifetime). Each leaf expansion is charged alpha times the bytes it
	// adds, so splits are only taken while their expected acquisition
	// saving exceeds their amortized dissemination cost. MaxSplits still
	// applies as a hard cap (set it large to let alpha alone decide).
	Alpha float64
	// Parallelism bounds the goroutines evaluating candidate splits and
	// frontier leaves concurrently; values <= 1 plan sequentially. Plans
	// are identical at every Parallelism (ties are broken by the fixed
	// candidate order, not evaluation timing).
	Parallelism int
}

// greedySplitResult is the outcome of GreedySplit at one leaf.
type greedySplitResult struct {
	ok             bool
	cost           float64 // C-bar: expected cost of split + sequential subplans
	attr           int
	x              schema.Value
	loPlan, hiPlan *plan.Node
	loCost, hiCost float64
	pLo            float64
}

// greedySplit implements GreedySplit(phi, R_1..R_n) from Figure 6: the
// locally optimal split point, assuming the optimal (or greedy)
// sequential plan is used for each resulting subproblem. With a non-nil
// gate the candidates are evaluated concurrently; the deterministic
// reduction picks the same split the sequential loop would (first
// candidate in (attr, x) order achieving the minimum cost).
func (g *Greedy) greedySplit(ctx context.Context, s *schema.Schema, c stats.Cond, box query.Box, q query.Query, spsf SPSF, sem *gate) greedySplitResult {
	if sem == nil {
		return g.greedySplitSeq(ctx, s, c, box, q, spsf)
	}
	type candidate struct {
		attr int
		x    schema.Value
	}
	var cands []candidate
	for attr := 0; attr < s.NumAttrs(); attr++ {
		for _, x := range spsf.Candidates(attr, box[attr]) {
			cands = append(cands, candidate{attr: attr, x: x})
		}
	}
	trace.FromContext(ctx).Count(trace.Candidates, int64(len(cands)))
	best := newMinBound(math.Inf(1))
	results := make([]greedySplitResult, len(cands))
	var wg sync.WaitGroup
	for i := range cands {
		i := i
		sem.run(&wg, func() {
			results[i] = g.evalSplit(ctx, s, c, box, q, cands[i].attr, cands[i].x, best)
		})
	}
	wg.Wait()
	res := greedySplitResult{cost: math.Inf(1)}
	for i := range results {
		if results[i].ok && results[i].cost < res.cost {
			res = results[i]
		}
	}
	return res
}

// evalSplit evaluates one candidate split exactly, or abandons it once its
// partial cost strictly exceeds the shared best-so-far bound. Strict (>)
// pruning means cost ties always evaluate fully, so the reduction's
// fixed-order tie-break sees them.
func (g *Greedy) evalSplit(ctx context.Context, s *schema.Schema, c stats.Cond, box query.Box, q query.Query, attr int, x schema.Value, best *minBound) greedySplitResult {
	if ctx.Err() != nil {
		return greedySplitResult{}
	}
	cost := predCost(s, box, attr)
	if cost > best.get() {
		trace.FromContext(ctx).Count(trace.Pruned, 1)
		return greedySplitResult{}
	}
	r := box[attr]
	loRange := query.Range{Lo: r.Lo, Hi: x - 1}
	hiRange := query.Range{Lo: x, Hi: r.Hi}
	pLo := c.ProbRange(attr, loRange)

	loBox := box.With(attr, loRange)
	loPlan, loCost := fallbackNode(q, loBox), 0.0
	if pLo > 0 {
		loPlan, loCost = SequentialPlan(g.Base, s, childCond(c, attr, loRange), loBox, q)
		cost += pLo * loCost
		if cost > best.get() {
			trace.FromContext(ctx).Count(trace.Pruned, 1)
			return greedySplitResult{}
		}
	}
	hiBox := box.With(attr, hiRange)
	hiPlan, hiCost := fallbackNode(q, hiBox), 0.0
	if pHi := 1 - pLo; pHi > 0 {
		hiPlan, hiCost = SequentialPlan(g.Base, s, childCond(c, attr, hiRange), hiBox, q)
		cost += pHi * hiCost
	}
	best.lower(cost)
	return greedySplitResult{
		ok: true, cost: cost, attr: attr, x: x,
		loPlan: loPlan, hiPlan: hiPlan,
		loCost: loCost, hiCost: hiCost, pLo: pLo,
	}
}

// greedySplitSeq is the sequential candidate loop, kept free of atomics
// and goroutines for the Parallelism <= 1 path.
func (g *Greedy) greedySplitSeq(ctx context.Context, s *schema.Schema, c stats.Cond, box query.Box, q query.Query, spsf SPSF) greedySplitResult {
	sp := trace.FromContext(ctx)
	res := greedySplitResult{cost: math.Inf(1)}
	for attr := 0; attr < s.NumAttrs(); attr++ {
		if ctx.Err() != nil {
			// Cancelled mid-enumeration: report the best split seen so
			// far (possibly none). The caller's plan stays valid either
			// way because leaves are always complete sequential plans.
			return res
		}
		atomic := predCost(s, box, attr)
		if atomic >= res.cost {
			continue
		}
		r := box[attr]
		for _, x := range spsf.Candidates(attr, r) {
			sp.Count(trace.Candidates, 1)
			cost := atomic
			loRange := query.Range{Lo: r.Lo, Hi: x - 1}
			hiRange := query.Range{Lo: x, Hi: r.Hi}
			pLo := c.ProbRange(attr, loRange)

			loBox := box.With(attr, loRange)
			loPlan, loCost := fallbackNode(q, loBox), 0.0
			if pLo > 0 {
				loPlan, loCost = SequentialPlan(g.Base, s, childCond(c, attr, loRange), loBox, q)
				cost += pLo * loCost
				if cost >= res.cost {
					sp.Count(trace.Pruned, 1)
					continue
				}
			}
			hiBox := box.With(attr, hiRange)
			hiPlan, hiCost := fallbackNode(q, hiBox), 0.0
			if pHi := 1 - pLo; pHi > 0 {
				hiPlan, hiCost = SequentialPlan(g.Base, s, childCond(c, attr, hiRange), hiBox, q)
				cost += pHi * hiCost
			}
			if cost < res.cost {
				res = greedySplitResult{
					ok: true, cost: cost, attr: attr, x: x,
					loPlan: loPlan, hiPlan: hiPlan,
					loCost: loCost, hiCost: hiCost, pLo: pLo,
				}
			}
		}
	}
	return res
}

// leafEntry is a priority-queue entry: a leaf of the current plan together
// with its pre-computed greedy split and the expected gain of applying it.
type leafEntry struct {
	node     *plan.Node // the Seq (or Leaf) node to expand in place
	c        stats.Cond
	box      query.Box
	reach    float64 // P(R_1, ..., R_n): probability the plan reaches this leaf
	seqCost  float64 // C(P-hat): cost of the leaf's sequential plan
	split    greedySplitResult
	priority float64 // reach * (seqCost - split.cost)
	index    int
}

type leafQueue []*leafEntry

func (q leafQueue) Len() int            { return len(q) }
func (q leafQueue) Less(i, j int) bool  { return q[i].priority > q[j].priority }
func (q leafQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i]; q[i].index = i; q[j].index = j }
func (q *leafQueue) Push(x interface{}) { e := x.(*leafEntry); e.index = len(*q); *q = append(*q, e) }
func (q *leafQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Plan runs the greedy conditional planning algorithm (Figure 7) and
// returns the plan and its expected cost under the distribution.
//
// Greedy planning is an anytime algorithm: the plan starts as a complete
// sequential plan and every leaf expansion keeps it complete, so when ctx
// is cancelled or its deadline expires the search simply stops expanding
// and returns the best (possibly purely sequential) plan found so far.
// Callers can distinguish a truncated run by checking ctx.Err.
//
// With Parallelism > 1 the two frontier leaves created by each expansion
// are analyzed concurrently, and each analysis evaluates its candidate
// splits concurrently, all on one bounded goroutine pool. The expansion
// loop itself stays sequential — heap order, not evaluation timing,
// decides which leaf is expanded next — so the resulting plan is
// identical at every Parallelism.
func (g *Greedy) Plan(ctx context.Context, d stats.Dist, q query.Query) (*plan.Node, float64) {
	s := d.Schema()
	tsp := trace.FromContext(ctx)
	spsf := g.SPSF.WithQueryEndpoints(s, q)
	rootBox := query.FullBox(s)
	rootCond := d.Root()
	sem := newGate(g.Parallelism, tsp)

	seedRef := tsp.Begin("greedy-seed")
	rootPlan, rootCost := SequentialPlan(g.Base, s, rootCond, rootBox, q)
	root := rootPlan

	pq := &leafQueue{}
	g.enqueue(ctx, pq, s, q, spsf, sem, root, rootCond, rootBox, 1, rootCost)
	tsp.End(seedRef)

	expandRef := tsp.Begin("greedy-expand")
	splits := 0
	for splits < g.MaxSplits && pq.Len() > 0 && ctx.Err() == nil {
		top := heap.Pop(pq).(*leafEntry)
		if top.priority <= 0 {
			break // no remaining split improves on its sequential plan
		}
		sp := top.split
		// Expand the leaf in place into a conditioning split whose
		// children start as the split's sequential plans.
		*top.node = *plan.NewSplit(sp.attr, sp.x, sp.loPlan, sp.hiPlan)
		splits++
		trace.FromContext(ctx).Count(trace.LeafExpansions, 1)
		if splits >= g.MaxSplits {
			break
		}
		loRange := query.Range{Lo: top.box[sp.attr].Lo, Hi: sp.x - 1}
		hiRange := query.Range{Lo: sp.x, Hi: top.box[sp.attr].Hi}
		// The two new frontier leaves are independent subproblems;
		// analyze them concurrently, then push lo before hi so the heap's
		// tie order is fixed.
		var entries [2]*leafEntry
		var wg sync.WaitGroup
		if sp.pLo > 0 {
			sem.run(&wg, func() {
				entries[0] = g.splitEntry(ctx, s, q, spsf, sem,
					top.node.Left, childCond(top.c, sp.attr, loRange),
					top.box.With(sp.attr, loRange), top.reach*sp.pLo, sp.loCost)
			})
		}
		if pHi := 1 - sp.pLo; pHi > 0 {
			sem.run(&wg, func() {
				entries[1] = g.splitEntry(ctx, s, q, spsf, sem,
					top.node.Right, childCond(top.c, sp.attr, hiRange),
					top.box.With(sp.attr, hiRange), top.reach*pHi, sp.hiCost)
			})
		}
		wg.Wait()
		for _, e := range entries {
			if e != nil {
				heap.Push(pq, e)
			}
		}
	}
	tsp.End(expandRef)
	// Canonicalize: drop structure that cannot affect any tuple (decided
	// splits, proven predicates, identical branches) so the disseminated
	// zeta(P) is minimal.
	simplifyRef := tsp.Begin("greedy-simplify")
	root = plan.Simplify(root, s)
	cost := plan.ExpectedCostRoot(root, d)
	tsp.End(simplifyRef)
	return root, cost
}

// splitEntry computes the greedy split for a leaf and builds its queue
// entry with priority P(reach) * (C(seq) - C(split)), the expected gain of
// expanding it (Section 4.2.2). It returns nil when no split applies.
func (g *Greedy) splitEntry(ctx context.Context, s *schema.Schema, q query.Query, spsf SPSF, sem *gate,
	node *plan.Node, c stats.Cond, box query.Box, reach, seqCost float64) *leafEntry {
	if node.Kind == plan.Leaf {
		return nil // already decided; nothing to split
	}
	sp := g.greedySplit(ctx, s, c, box, q, spsf, sem)
	if !sp.ok {
		return nil
	}
	priority := reach * (seqCost - sp.cost)
	if g.Alpha > 0 {
		// Joint objective (Section 2.4): charge the split for the extra
		// plan bytes it would disseminate.
		deltaBytes := plan.Size(plan.NewSplit(sp.attr, sp.x, sp.loPlan, sp.hiPlan)) - plan.Size(node)
		priority -= g.Alpha * float64(deltaBytes)
	}
	return &leafEntry{
		node: node, c: c, box: box, reach: reach,
		seqCost: seqCost, split: sp,
		priority: priority,
	}
}

// enqueue computes the greedy split for a leaf and inserts it into the
// queue.
func (g *Greedy) enqueue(ctx context.Context, pq *leafQueue, s *schema.Schema, q query.Query, spsf SPSF, sem *gate,
	node *plan.Node, c stats.Cond, box query.Box, reach, seqCost float64) {
	if e := g.splitEntry(ctx, s, q, spsf, sem, node, c, box, reach, seqCost); e != nil {
		heap.Push(pq, e)
	}
}

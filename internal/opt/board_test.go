package opt

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// boardWorld: two sensors share an expensive board, a third sensor sits
// alone; all predicates ~50% selective and independent.
func boardWorld(t *testing.T) (*schema.Schema, *table.Table, query.Query) {
	t.Helper()
	s := schema.New(
		schema.Attribute{Name: "s1", K: 4, Cost: 2, Board: 1},
		schema.Attribute{Name: "s2", K: 4, Cost: 2, Board: 1},
		schema.Attribute{Name: "lone", K: 4, Cost: 10},
	)
	if err := s.SetBoardCost(1, 60); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(41))
	tbl := table.New(s, 600)
	for i := 0; i < 600; i++ {
		tbl.MustAppendRow([]schema.Value{
			schema.Value(rng.Intn(4)), schema.Value(rng.Intn(4)), schema.Value(rng.Intn(4)),
		})
	}
	q := query.MustNewQuery(s,
		query.Pred{Attr: 0, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}},
	)
	return s, tbl, q
}

// Board-aware ordering: once the board is powered for s1, evaluating s2
// costs 2 instead of 62, so the optimal order runs the two board sensors
// back to back; a board-blind rank would interleave the cheaper "lone"
// sensor between them.
func TestOptSeqClustersBoardSensors(t *testing.T) {
	s, tbl, q := boardWorld(t)
	d := stats.NewEmpirical(tbl)
	node, cost := SequentialPlan(SeqOpt, s, d.Root(), query.FullBox(s), q)
	if node.Kind != plan.Seq {
		t.Fatalf("node kind %v", node.Kind)
	}
	// Find positions of the two board attrs in the order.
	pos := map[int]int{}
	for i, p := range node.Preds {
		pos[p.Attr] = i
	}
	if d := pos[0] - pos[1]; d != 1 && d != -1 {
		t.Errorf("board sensors not adjacent in optimal order: %v", node.Preds)
	}
	// The DP's cost must equal the analytic cost of the produced order.
	if got := plan.ExpectedCost(node, s, d.Root(), query.FullBox(s)); math.Abs(got-cost) > 1e-9 {
		t.Errorf("reported %g != analytic %g", cost, got)
	}
	// And it must beat the board-blind interleaved order s1, lone, s2.
	interleaved := plan.NewSeq([]query.Pred{q.Preds[0], q.Preds[2], q.Preds[1]})
	if inter := plan.ExpectedCost(interleaved, s, d.Root(), query.FullBox(s)); cost > inter+1e-9 {
		t.Errorf("optimal order (%g) worse than interleaved (%g)", cost, inter)
	}
}

func TestGreedySeqBoardAware(t *testing.T) {
	s, tbl, q := boardWorld(t)
	d := stats.NewEmpirical(tbl)
	node, _ := SequentialPlan(SeqGreedy, s, d.Root(), query.FullBox(s), q)
	pos := map[int]int{}
	for i, p := range node.Preds {
		pos[p.Attr] = i
	}
	if d := pos[0] - pos[1]; d != 1 && d != -1 {
		t.Errorf("greedy did not cluster board sensors: %v", node.Preds)
	}
}

func TestGreedyPlanWithBoardsCorrect(t *testing.T) {
	s, tbl, q := boardWorld(t)
	d := stats.NewEmpirical(tbl)
	g := Greedy{SPSF: FullSPSF(s), MaxSplits: 4, Base: SeqOpt}
	node, cost := g.Plan(context.Background(), d, q)
	if r := node.Equivalent(s, q, allTuples(s)); r != -1 {
		t.Errorf("plan wrong on domain tuple %d", r)
	}
	if got := plan.ExpectedCostRoot(node, d); math.Abs(got-cost) > 1e-9 {
		t.Errorf("reported cost %g != analytic %g", cost, got)
	}
}

// Package query defines multi-predicate range queries of the form the
// paper targets (query (1) in Section 1):
//
//	SELECT a1, ..., an WHERE l1 <= a1 <= r1 AND ... AND lk <= ak <= rk
//
// plus the negated-range predicates used by the Garden workload in
// Section 6.2. Predicates evaluate over single tuples and, three-valued,
// over range boxes (the attribute-domain subspaces that define the
// subproblems of the planning algorithms in Sections 3-4).
package query

import (
	"fmt"
	"strings"

	"acqp/internal/schema"
)

// Truth is a three-valued logic value: a predicate restricted to a range
// box is True if every tuple in the box satisfies it, False if none does,
// and Unknown otherwise.
type Truth int8

// Three-valued truth values.
const (
	False Truth = iota
	True
	Unknown
)

func (t Truth) String() string {
	switch t {
	case False:
		return "F"
	case True:
		return "T"
	default:
		return "?"
	}
}

// Range is an inclusive interval [Lo, Hi] of discretized values of one
// attribute. The planners' subproblems (Section 3.2) restrict each
// attribute X_i to such a range R_i.
type Range struct {
	Lo, Hi schema.Value
}

// FullRange returns the range covering a domain of size k.
func FullRange(k int) Range { return Range{0, schema.Value(k - 1)} }

// Contains reports whether v lies in the range.
func (r Range) Contains(v schema.Value) bool { return r.Lo <= v && v <= r.Hi }

// Size returns the number of values in the range.
func (r Range) Size() int { return int(r.Hi) - int(r.Lo) + 1 }

// Valid reports whether the range is non-empty.
func (r Range) Valid() bool { return r.Lo <= r.Hi }

// IsFull reports whether the range spans the whole domain of size k.
func (r Range) IsFull(k int) bool { return r.Lo == 0 && int(r.Hi) == k-1 }

// Intersect returns the intersection of two ranges and whether it is
// non-empty.
func (r Range) Intersect(o Range) (Range, bool) {
	lo, hi := r.Lo, r.Hi
	if o.Lo > lo {
		lo = o.Lo
	}
	if o.Hi < hi {
		hi = o.Hi
	}
	return Range{lo, hi}, lo <= hi
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d]", r.Lo, r.Hi) }

// Box is a conjunction of per-attribute ranges: the subspace
// (X_1 in R_1) AND ... AND (X_n in R_n). Index i is the schema attribute
// index.
type Box []Range

// FullBox returns the box spanning the entire domain of the schema: the
// root subproblem Subproblem(phi, R_1=[1,K_1], ..., R_n=[1,K_n]).
func FullBox(s *schema.Schema) Box {
	b := make(Box, s.NumAttrs())
	for i := range b {
		b[i] = FullRange(s.K(i))
	}
	return b
}

// Clone returns an independent copy of the box.
func (b Box) Clone() Box { return append(Box(nil), b...) }

// With returns a copy of the box with attribute attr restricted to r.
func (b Box) With(attr int, r Range) Box {
	c := b.Clone()
	c[attr] = r
	return c
}

// Contains reports whether the tuple lies inside the box.
func (b Box) Contains(row []schema.Value) bool {
	for i, r := range b {
		if !r.Contains(row[i]) {
			return false
		}
	}
	return true
}

// Observed reports whether attribute attr has been restricted below its
// full domain — the paper's test for whether the acquisition cost C_i has
// already been paid (Section 3.2: C'_i = 0 iff [a_i,b_i] is a strict
// subset of [1,K_i]).
func (b Box) Observed(attr, k int) bool { return !b[attr].IsFull(k) }

// Key returns a compact string key identifying the box, used to memoize
// subproblems in the exhaustive planner.
func (b Box) Key() string {
	var sb strings.Builder
	sb.Grow(len(b) * 8)
	for _, r := range b {
		sb.WriteByte(byte(r.Lo))
		sb.WriteByte(byte(r.Lo >> 8))
		sb.WriteByte(byte(r.Hi))
		sb.WriteByte(byte(r.Hi >> 8))
	}
	return sb.String()
}

// Pred is a unary range predicate phi(l <= X_attr <= r), optionally
// negated: NOT(l <= X_attr <= r) as used by the Garden workload.
type Pred struct {
	Attr    int
	R       Range
	Negated bool
}

// Eval evaluates the predicate on a single attribute value.
func (p Pred) Eval(v schema.Value) bool { return p.R.Contains(v) != p.Negated }

// EvalRange evaluates the predicate three-valued over the range [lo, hi]
// of its attribute.
func (p Pred) EvalRange(r Range) Truth {
	inter, any := r.Intersect(p.R)
	all := any && inter == r // every value of r lies inside p.R
	switch {
	case all:
		if p.Negated {
			return False
		}
		return True
	case !any:
		if p.Negated {
			return True
		}
		return False
	default:
		return Unknown
	}
}

// Format renders the predicate using the schema's attribute names and, when
// the attribute has a discretizer, raw-unit thresholds.
func (p Pred) Format(s *schema.Schema) string {
	a := s.Attr(p.Attr)
	body := fmt.Sprintf("%d <= %s <= %d", p.R.Lo, a.Name, p.R.Hi)
	if a.Disc != nil {
		body = fmt.Sprintf("%.4g <= %s < %.4g", a.Disc.Lower(p.R.Lo), a.Name, a.Disc.Upper(p.R.Hi))
	}
	if p.Negated {
		return "NOT(" + body + ")"
	}
	return body
}

// Query is a conjunction of range predicates: the WHERE clause phi.
type Query struct {
	Preds []Pred
}

// NewQuery builds a query after validating the predicates against the
// schema.
func NewQuery(s *schema.Schema, preds ...Pred) (Query, error) {
	seen := make(map[int]bool, len(preds))
	for _, p := range preds {
		if p.Attr < 0 || p.Attr >= s.NumAttrs() {
			return Query{}, fmt.Errorf("query: predicate attribute %d out of schema range", p.Attr)
		}
		if !p.R.Valid() {
			return Query{}, fmt.Errorf("query: predicate on %s has empty range %v", s.Name(p.Attr), p.R)
		}
		if int(p.R.Hi) >= s.K(p.Attr) {
			return Query{}, fmt.Errorf("query: predicate on %s range %v exceeds domain [0,%d)", s.Name(p.Attr), p.R, s.K(p.Attr))
		}
		if seen[p.Attr] {
			return Query{}, fmt.Errorf("query: multiple predicates on attribute %s; conjoin them into one range", s.Name(p.Attr))
		}
		seen[p.Attr] = true
	}
	return Query{Preds: append([]Pred(nil), preds...)}, nil
}

// MustNewQuery is NewQuery but panics on error.
func MustNewQuery(s *schema.Schema, preds ...Pred) Query {
	q, err := NewQuery(s, preds...)
	if err != nil {
		panic("query: " + strings.TrimPrefix(err.Error(), "query: "))
	}
	return q
}

// NumPreds returns the number of predicates p in the query.
func (q Query) NumPreds() int { return len(q.Preds) }

// Attrs returns the set of attribute indexes referenced by the query, in
// predicate order.
func (q Query) Attrs() []int {
	out := make([]int, len(q.Preds))
	for i, p := range q.Preds {
		out[i] = p.Attr
	}
	return out
}

// PredOn returns the index within q.Preds of the predicate over attribute
// attr, or -1 if the attribute is not referenced.
func (q Query) PredOn(attr int) int {
	for i, p := range q.Preds {
		if p.Attr == attr {
			return i
		}
	}
	return -1
}

// Eval evaluates phi(x) on a full tuple.
func (q Query) Eval(row []schema.Value) bool {
	for _, p := range q.Preds {
		if !p.Eval(row[p.Attr]) {
			return false
		}
	}
	return true
}

// EvalBox evaluates phi three-valued over a range box: True if every tuple
// in the box satisfies the query, False if none does, Unknown otherwise.
// This is the "ranges are sufficient to determine truth of phi" test of
// the exhaustive algorithm (Figure 5).
func (q Query) EvalBox(b Box) Truth {
	result := True
	for _, p := range q.Preds {
		switch p.EvalRange(b[p.Attr]) {
		case False:
			return False // conjunction is false as soon as one conjunct is
		case Unknown:
			result = Unknown
		}
	}
	return result
}

// Format renders the query's WHERE clause using the schema's names.
func (q Query) Format(s *schema.Schema) string {
	parts := make([]string, len(q.Preds))
	for i, p := range q.Preds {
		parts[i] = p.Format(s)
	}
	return strings.Join(parts, " AND ")
}

package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"acqp/internal/schema"
)

// ErrUnsatisfiable reports that a predicate list admits no satisfying
// tuple (e.g. "a <= 3 AND a >= 7"): the canonical query is the constant
// false and needs no acquisitions at all.
var ErrUnsatisfiable = errors.New("query: predicates are unsatisfiable")

// ErrNotSingleRange reports that a satisfiable predicate list cannot be
// expressed with one (possibly negated) range predicate per attribute —
// the conjunctive form the planners accept. Callers should route such
// clauses to the boolean planner instead.
var ErrNotSingleRange = errors.New("query: conjunction is not expressible as one range predicate per attribute")

// Canonical normalizes a raw predicate conjunction into canonical form:
//
//   - ranges are clamped to the attribute's domain [0, K-1];
//   - duplicate and overlapping predicates on one attribute are merged
//     (positive ranges intersect; negated "holes" union when they overlap
//     or touch);
//   - holes touching the edge of the admissible range are folded into a
//     tighter positive range;
//   - trivially-true predicates (full-domain ranges, holes outside the
//     admissible range) are dropped;
//   - predicates are sorted by attribute index.
//
// Two predicate lists describing the same region of the domain therefore
// canonicalize to the same Query, making Query.Key usable as a cache key.
// Canonical returns an error wrapping ErrUnsatisfiable when no tuple can
// match, and one wrapping ErrNotSingleRange when the region needs more
// than one predicate on some attribute (a sub-domain range with an
// interior hole, or several disjoint interior holes).
func Canonical(s *schema.Schema, preds []Pred) (Query, error) {
	type attrState struct {
		pos   Range // intersection of positive ranges, clamped
		holes []Range
	}
	// Indexed by attribute so the output order is deterministic without a
	// sort; schemas are small (sensor boards, not wide tables).
	states := make([]*attrState, s.NumAttrs())
	for _, p := range preds {
		if p.Attr < 0 || p.Attr >= s.NumAttrs() {
			return Query{}, fmt.Errorf("query: predicate attribute %d out of schema range", p.Attr)
		}
		k := s.K(p.Attr)
		st := states[p.Attr]
		if st == nil {
			st = &attrState{pos: FullRange(k)}
			states[p.Attr] = st
		}
		r := p.R
		if int(r.Hi) >= k {
			r.Hi = schema.Value(k - 1)
		}
		if p.Negated {
			if r.Valid() {
				st.holes = append(st.holes, r)
			}
			// An empty hole excludes nothing: drop it.
			continue
		}
		if !r.Valid() {
			return Query{}, fmt.Errorf("%w: empty range on %s", ErrUnsatisfiable, s.Name(p.Attr))
		}
		inter, ok := st.pos.Intersect(r)
		if !ok {
			return Query{}, fmt.Errorf("%w: disjoint ranges on %s", ErrUnsatisfiable, s.Name(p.Attr))
		}
		st.pos = inter
	}

	out := make([]Pred, 0, len(preds))
	for a, st := range states {
		if st == nil {
			continue
		}
		p, keep, err := canonAttr(s.K(a), st.pos, st.holes)
		if err != nil {
			return Query{}, fmt.Errorf("%w on %s", err, s.Name(a))
		}
		if keep {
			p.Attr = a
			out = append(out, p)
		}
	}
	return Query{Preds: out}, nil
}

// canonAttr reduces one attribute's positive range and negated holes to a
// single predicate. keep is false when the attribute imposes no
// constraint at all.
func canonAttr(k int, pos Range, holes []Range) (p Pred, keep bool, err error) {
	// Fold edge-touching holes into the positive range until fixpoint:
	// clipping an edge can expose another hole to the new edge.
	for changed := true; changed; {
		changed = false
		live := holes[:0]
		for _, h := range holes {
			inter, ok := h.Intersect(pos)
			if !ok {
				continue // hole entirely outside the admissible range
			}
			switch {
			case inter == pos:
				return Pred{}, false, ErrUnsatisfiable
			case inter.Lo == pos.Lo:
				pos.Lo = inter.Hi + 1
				changed = true
			case inter.Hi == pos.Hi:
				pos.Hi = inter.Lo - 1
				changed = true
			default:
				live = append(live, inter)
			}
		}
		holes = live
	}
	if len(holes) == 0 {
		if pos.IsFull(k) {
			return Pred{}, false, nil // trivially true: no constraint
		}
		return Pred{R: pos}, true, nil
	}
	// Remaining holes are strictly interior to pos. Merge overlapping or
	// adjacent ones: NOT[2,3] AND NOT[4,6] == NOT[2,6].
	sort.Slice(holes, func(i, j int) bool { return holes[i].Lo < holes[j].Lo })
	merged := holes[:1]
	for _, h := range holes[1:] {
		last := &merged[len(merged)-1]
		if h.Lo <= last.Hi+1 {
			if h.Hi > last.Hi {
				last.Hi = h.Hi
			}
			continue
		}
		merged = append(merged, h)
	}
	if len(merged) > 1 {
		// Two disjoint interior holes would need two negated predicates.
		return Pred{}, false, ErrNotSingleRange
	}
	if !pos.IsFull(k) {
		// "sub-range AND NOT interior-hole" needs two predicates.
		return Pred{}, false, ErrNotSingleRange
	}
	return Pred{R: merged[0], Negated: true}, true, nil
}

// Key returns a compact deterministic identifier for the query, intended
// for canonical queries (see Canonical): two equivalent predicate lists
// canonicalize to the same Key. The encoding is "attr:lo:hi" per
// predicate, '!'-prefixed when negated, joined with ';'.
func (q Query) Key() string {
	var sb strings.Builder
	sb.Grow(len(q.Preds) * 10)
	for i, p := range q.Preds {
		if i > 0 {
			sb.WriteByte(';')
		}
		if p.Negated {
			sb.WriteByte('!')
		}
		fmt.Fprintf(&sb, "%d:%d:%d", p.Attr, p.R.Lo, p.R.Hi)
	}
	return sb.String()
}

package query

import (
	"strings"
	"testing"
	"testing/quick"

	"acqp/internal/schema"
)

func testSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 24, Cost: 1},
		schema.Attribute{Name: "light", K: 16, Cost: 100, Disc: schema.MustDiscretizer(0, 1600, 16)},
		schema.Attribute{Name: "temp", K: 8, Cost: 100},
	)
}

func TestRangeBasics(t *testing.T) {
	r := Range{3, 7}
	if !r.Contains(3) || !r.Contains(7) || r.Contains(2) || r.Contains(8) {
		t.Error("Contains boundaries wrong")
	}
	if r.Size() != 5 {
		t.Errorf("Size = %d, want 5", r.Size())
	}
	if !r.Valid() || (Range{5, 4}).Valid() {
		t.Error("Valid wrong")
	}
	if !FullRange(24).IsFull(24) || (Range{0, 22}).IsFull(24) {
		t.Error("IsFull wrong")
	}
}

func TestRangeIntersect(t *testing.T) {
	cases := []struct {
		a, b  Range
		want  Range
		wantO bool
	}{
		{Range{0, 5}, Range{3, 9}, Range{3, 5}, true},
		{Range{3, 9}, Range{0, 5}, Range{3, 5}, true},
		{Range{0, 2}, Range{3, 5}, Range{}, false},
		{Range{2, 2}, Range{2, 2}, Range{2, 2}, true},
	}
	for _, tc := range cases {
		got, ok := tc.a.Intersect(tc.b)
		if ok != tc.wantO || (ok && got != tc.want) {
			t.Errorf("%v.Intersect(%v) = %v,%v want %v,%v", tc.a, tc.b, got, ok, tc.want, tc.wantO)
		}
	}
}

func TestBox(t *testing.T) {
	s := testSchema()
	b := FullBox(s)
	if len(b) != 3 || b[0] != (Range{0, 23}) || b[2] != (Range{0, 7}) {
		t.Fatalf("FullBox = %v", b)
	}
	if b.Observed(0, 24) {
		t.Error("full range reported observed")
	}
	b2 := b.With(0, Range{0, 11})
	if !b2.Observed(0, 24) {
		t.Error("restricted range not observed")
	}
	if b.Observed(0, 24) {
		t.Error("With mutated the original box")
	}
	if !b2.Contains([]schema.Value{11, 0, 0}) || b2.Contains([]schema.Value{12, 0, 0}) {
		t.Error("Box.Contains wrong")
	}
}

func TestBoxKeyUniqueness(t *testing.T) {
	s := testSchema()
	b := FullBox(s)
	seen := map[string]bool{}
	for lo := 0; lo < 8; lo++ {
		for hi := lo; hi < 8; hi++ {
			k := b.With(2, Range{schema.Value(lo), schema.Value(hi)}).Key()
			if seen[k] {
				t.Fatalf("duplicate key for range [%d,%d]", lo, hi)
			}
			seen[k] = true
		}
	}
}

func TestPredEval(t *testing.T) {
	p := Pred{Attr: 1, R: Range{2, 5}}
	if !p.Eval(2) || !p.Eval(5) || p.Eval(1) || p.Eval(6) {
		t.Error("Pred.Eval wrong")
	}
	n := Pred{Attr: 1, R: Range{2, 5}, Negated: true}
	if n.Eval(2) || !n.Eval(6) {
		t.Error("negated Pred.Eval wrong")
	}
}

func TestPredEvalRange(t *testing.T) {
	p := Pred{Attr: 0, R: Range{5, 10}}
	cases := []struct {
		r    Range
		want Truth
	}{
		{Range{5, 10}, True},
		{Range{6, 9}, True},
		{Range{0, 4}, False},
		{Range{11, 20}, False},
		{Range{0, 7}, Unknown},
		{Range{8, 15}, Unknown},
		{Range{0, 20}, Unknown},
	}
	for _, tc := range cases {
		if got := p.EvalRange(tc.r); got != tc.want {
			t.Errorf("EvalRange(%v) = %v, want %v", tc.r, got, tc.want)
		}
		// Negation flips True/False and keeps Unknown.
		n := p
		n.Negated = true
		want := tc.want
		switch want {
		case True:
			want = False
		case False:
			want = True
		}
		if got := n.EvalRange(tc.r); got != want {
			t.Errorf("negated EvalRange(%v) = %v, want %v", tc.r, got, want)
		}
	}
}

func TestNewQueryValidation(t *testing.T) {
	s := testSchema()
	cases := []struct {
		name string
		pred Pred
	}{
		{"bad attr", Pred{Attr: 9, R: Range{0, 1}}},
		{"empty range", Pred{Attr: 0, R: Range{5, 4}}},
		{"range exceeds domain", Pred{Attr: 2, R: Range{0, 8}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewQuery(s, tc.pred); err == nil {
				t.Error("invalid predicate accepted")
			}
		})
	}
	if _, err := NewQuery(s, Pred{Attr: 0, R: Range{0, 5}}, Pred{Attr: 0, R: Range{3, 9}}); err == nil {
		t.Error("duplicate attribute predicates accepted")
	}
}

func TestQueryEval(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s,
		Pred{Attr: 1, R: Range{0, 3}},                // dark
		Pred{Attr: 2, R: Range{5, 7}, Negated: true}, // not hot
	)
	if !q.Eval([]schema.Value{0, 2, 1}) {
		t.Error("satisfying tuple rejected")
	}
	if q.Eval([]schema.Value{0, 9, 1}) {
		t.Error("light out of range accepted")
	}
	if q.Eval([]schema.Value{0, 2, 6}) {
		t.Error("negated temp predicate failed to reject")
	}
}

func TestQueryEvalBox(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s,
		Pred{Attr: 1, R: Range{0, 3}},
		Pred{Attr: 2, R: Range{0, 4}},
	)
	full := FullBox(s)
	if got := q.EvalBox(full); got != Unknown {
		t.Errorf("EvalBox(full) = %v, want Unknown", got)
	}
	sat := full.With(1, Range{1, 2}).With(2, Range{0, 4})
	if got := q.EvalBox(sat); got != True {
		t.Errorf("EvalBox(satisfied) = %v, want True", got)
	}
	rej := full.With(1, Range{4, 15})
	if got := q.EvalBox(rej); got != False {
		t.Errorf("EvalBox(rejected) = %v, want False", got)
	}
	// One True conjunct plus one False conjunct is still False.
	mixed := full.With(1, Range{1, 2}).With(2, Range{5, 7})
	if got := q.EvalBox(mixed); got != False {
		t.Errorf("EvalBox(mixed) = %v, want False", got)
	}
}

func TestQueryAccessors(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s,
		Pred{Attr: 2, R: Range{0, 4}},
		Pred{Attr: 1, R: Range{0, 3}},
	)
	if q.NumPreds() != 2 {
		t.Errorf("NumPreds = %d", q.NumPreds())
	}
	if a := q.Attrs(); a[0] != 2 || a[1] != 1 {
		t.Errorf("Attrs = %v", a)
	}
	if q.PredOn(1) != 1 || q.PredOn(0) != -1 {
		t.Error("PredOn wrong")
	}
}

func TestFormat(t *testing.T) {
	s := testSchema()
	q := MustNewQuery(s,
		Pred{Attr: 1, R: Range{0, 3}},
		Pred{Attr: 0, R: Range{8, 17}, Negated: true},
	)
	got := q.Format(s)
	if !strings.Contains(got, "light") || !strings.Contains(got, "NOT(8 <= hour <= 17)") {
		t.Errorf("Format = %q", got)
	}
	// light has a discretizer, so thresholds render in raw units (bin width 100).
	if !strings.Contains(got, "0 <= light < 400") {
		t.Errorf("Format did not use raw units: %q", got)
	}
}

// Property: EvalBox is consistent with Eval — if EvalBox says True/False,
// every tuple inside the box must agree.
func TestEvalBoxConsistencyProperty(t *testing.T) {
	s := schema.New(
		schema.Attribute{Name: "a", K: 8, Cost: 1},
		schema.Attribute{Name: "b", K: 8, Cost: 1},
	)
	q := MustNewQuery(s,
		Pred{Attr: 0, R: Range{2, 5}},
		Pred{Attr: 1, R: Range{0, 3}, Negated: true},
	)
	f := func(alo, ahi, blo, bhi uint8) bool {
		box := Box{
			{schema.Value(alo % 8), schema.Value(ahi % 8)},
			{schema.Value(blo % 8), schema.Value(bhi % 8)},
		}
		if !box[0].Valid() || !box[1].Valid() {
			return true // skip empty boxes
		}
		verdict := q.EvalBox(box)
		for x := box[0].Lo; x <= box[0].Hi; x++ {
			for y := box[1].Lo; y <= box[1].Hi; y++ {
				truth := q.Eval([]schema.Value{x, y})
				if verdict == True && !truth {
					return false
				}
				if verdict == False && truth {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): Intersect is commutative and intersecting a
// range with itself is the identity.
func TestIntersectAlgebraProperty(t *testing.T) {
	f := func(a1, a2, b1, b2 uint16) bool {
		a := Range{Lo: schema.Value(min16(a1, a2)), Hi: schema.Value(max16(a1, a2))}
		b := Range{Lo: schema.Value(min16(b1, b2)), Hi: schema.Value(max16(b1, b2))}
		ab, okAB := a.Intersect(b)
		ba, okBA := b.Intersect(a)
		if okAB != okBA || (okAB && ab != ba) {
			return false
		}
		self, ok := a.Intersect(a)
		return ok && self == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func min16(a, b uint16) uint16 {
	if a < b {
		return a
	}
	return b
}

func max16(a, b uint16) uint16 {
	if a > b {
		return a
	}
	return b
}

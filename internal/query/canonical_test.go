package query

import (
	"errors"
	"math/rand"
	"testing"

	"acqp/internal/schema"
)

func canonSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "a", K: 10, Cost: 1},
		schema.Attribute{Name: "b", K: 10, Cost: 1},
		schema.Attribute{Name: "c", K: 10, Cost: 1},
	)
}

func TestCanonicalOrderInsensitive(t *testing.T) {
	s := canonSchema()
	preds := []Pred{
		{Attr: 2, R: Range{Lo: 1, Hi: 8}},
		{Attr: 0, R: Range{Lo: 0, Hi: 5}},
		{Attr: 1, R: Range{Lo: 3, Hi: 9}},
		{Attr: 0, R: Range{Lo: 2, Hi: 9}}, // overlaps the first a-pred
	}
	want, err := Canonical(s, preds)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Pred(nil), preds...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := Canonical(s, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if got.Key() != want.Key() {
			t.Fatalf("trial %d: key %q != %q", trial, got.Key(), want.Key())
		}
	}
	if want.Key() != "0:2:5;1:3:9;2:1:8" {
		t.Errorf("canonical key = %q", want.Key())
	}
}

func TestCanonicalMergesOverlappingRanges(t *testing.T) {
	s := canonSchema()
	q, err := Canonical(s,
		[]Pred{{Attr: 0, R: Range{Lo: 2, Hi: 7}}, {Attr: 0, R: Range{Lo: 5, Hi: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].R != (Range{Lo: 5, Hi: 7}) {
		t.Errorf("merged query = %+v, want single [5,7] on a", q.Preds)
	}
}

func TestCanonicalDropsTriviallyTrue(t *testing.T) {
	s := canonSchema()
	q, err := Canonical(s, []Pred{
		{Attr: 0, R: Range{Lo: 0, Hi: 9}},                // full domain
		{Attr: 1, R: Range{Lo: 0, Hi: 500}},              // clamps to full domain
		{Attr: 2, R: Range{Lo: 3, Hi: 2}, Negated: true}, // empty hole excludes nothing
		{Attr: 2, R: Range{Lo: 4, Hi: 6}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].Attr != 2 || q.Preds[0].R != (Range{Lo: 4, Hi: 6}) {
		t.Errorf("query = %+v, want only [4,6] on c", q.Preds)
	}
	// All predicates trivially true: the empty conjunction.
	q, err = Canonical(s, []Pred{{Attr: 0, R: Range{Lo: 0, Hi: 9}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 0 || q.Key() != "" {
		t.Errorf("trivially-true query = %+v key %q, want empty", q.Preds, q.Key())
	}
}

func TestCanonicalClampsToDomain(t *testing.T) {
	s := canonSchema()
	q, err := Canonical(s, []Pred{{Attr: 0, R: Range{Lo: 4, Hi: 500}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].R != (Range{Lo: 4, Hi: 9}) {
		t.Errorf("clamped query = %+v, want [4,9]", q.Preds)
	}
}

func TestCanonicalUnsatisfiable(t *testing.T) {
	s := canonSchema()
	cases := [][]Pred{
		{{Attr: 0, R: Range{Lo: 0, Hi: 3}}, {Attr: 0, R: Range{Lo: 7, Hi: 9}}},
		{{Attr: 1, R: Range{Lo: 2, Hi: 6}}, {Attr: 1, R: Range{Lo: 0, Hi: 9}, Negated: true}},
		{{Attr: 2, R: Range{Lo: 5, Hi: 4}}}, // empty positive range
	}
	for i, preds := range cases {
		if _, err := Canonical(s, preds); !errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("case %d: err = %v, want ErrUnsatisfiable", i, err)
		}
	}
}

func TestCanonicalEdgeHolesFoldIntoRange(t *testing.T) {
	s := canonSchema()
	// NOT[0,2] AND NOT[8,9] on a: equivalent to 3 <= a <= 7.
	q, err := Canonical(s, []Pred{
		{Attr: 0, R: Range{Lo: 0, Hi: 2}, Negated: true},
		{Attr: 0, R: Range{Lo: 8, Hi: 9}, Negated: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].Negated || q.Preds[0].R != (Range{Lo: 3, Hi: 7}) {
		t.Errorf("folded query = %+v, want positive [3,7]", q.Preds)
	}
	// Cascading clip: [2,9] positive, NOT[7,9] clips to [2,6], which makes
	// NOT[5,6] edge-touching -> [2,4].
	q, err = Canonical(s, []Pred{
		{Attr: 1, R: Range{Lo: 2, Hi: 9}},
		{Attr: 1, R: Range{Lo: 7, Hi: 9}, Negated: true},
		{Attr: 1, R: Range{Lo: 5, Hi: 6}, Negated: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || q.Preds[0].Negated || q.Preds[0].R != (Range{Lo: 2, Hi: 4}) {
		t.Errorf("cascaded query = %+v, want positive [2,4]", q.Preds)
	}
}

func TestCanonicalInteriorHoles(t *testing.T) {
	s := canonSchema()
	// A single interior hole over the full domain stays negated, and
	// adjacent holes merge first.
	q, err := Canonical(s, []Pred{
		{Attr: 0, R: Range{Lo: 3, Hi: 4}, Negated: true},
		{Attr: 0, R: Range{Lo: 5, Hi: 6}, Negated: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 1 || !q.Preds[0].Negated || q.Preds[0].R != (Range{Lo: 3, Hi: 6}) {
		t.Errorf("merged-hole query = %+v, want NOT[3,6]", q.Preds)
	}
	// Two disjoint interior holes are not a single-range conjunction.
	_, err = Canonical(s, []Pred{
		{Attr: 0, R: Range{Lo: 2, Hi: 3}, Negated: true},
		{Attr: 0, R: Range{Lo: 6, Hi: 7}, Negated: true},
	})
	if !errors.Is(err, ErrNotSingleRange) {
		t.Errorf("disjoint holes: err = %v, want ErrNotSingleRange", err)
	}
	// A sub-domain positive range plus an interior hole likewise.
	_, err = Canonical(s, []Pred{
		{Attr: 0, R: Range{Lo: 1, Hi: 8}},
		{Attr: 0, R: Range{Lo: 4, Hi: 5}, Negated: true},
	})
	if !errors.Is(err, ErrNotSingleRange) {
		t.Errorf("range+hole: err = %v, want ErrNotSingleRange", err)
	}
}

func TestCanonicalSemanticsPreserved(t *testing.T) {
	// Property check: on random predicate soups that canonicalize
	// successfully, the canonical query agrees with the raw conjunction on
	// every tuple of the domain.
	s := schema.New(
		schema.Attribute{Name: "a", K: 6, Cost: 1},
		schema.Attribute{Name: "b", K: 6, Cost: 1},
	)
	rng := rand.New(rand.NewSource(23))
	randRange := func() Range {
		lo := rng.Intn(6)
		return Range{Lo: schema.Value(lo), Hi: schema.Value(lo + rng.Intn(6-lo))}
	}
	evalRaw := func(preds []Pred, row []schema.Value) bool {
		for _, p := range preds {
			if !p.Eval(row[p.Attr]) {
				return false
			}
		}
		return true
	}
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(4)
		preds := make([]Pred, n)
		for i := range preds {
			preds[i] = Pred{Attr: rng.Intn(2), R: randRange(), Negated: rng.Intn(3) == 0}
		}
		q, err := Canonical(s, preds)
		if errors.Is(err, ErrNotSingleRange) {
			continue
		}
		unsat := errors.Is(err, ErrUnsatisfiable)
		if err != nil && !unsat {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for a := 0; a < 6; a++ {
			for b := 0; b < 6; b++ {
				row := []schema.Value{schema.Value(a), schema.Value(b)}
				raw := evalRaw(preds, row)
				canon := !unsat && q.Eval(row)
				if raw != canon {
					t.Fatalf("trial %d: preds %+v canon %+v disagree on %v: raw=%v canon=%v",
						trial, preds, q.Preds, row, raw, canon)
				}
			}
		}
	}
}

func TestQueryKeyDistinguishesNegation(t *testing.T) {
	q1 := Query{Preds: []Pred{{Attr: 0, R: Range{Lo: 1, Hi: 3}}}}
	q2 := Query{Preds: []Pred{{Attr: 0, R: Range{Lo: 1, Hi: 3}, Negated: true}}}
	if q1.Key() == q2.Key() {
		t.Error("negated and positive predicates share a key")
	}
	if q1.Key() != "0:1:3" || q2.Key() != "!0:1:3" {
		t.Errorf("keys = %q, %q", q1.Key(), q2.Key())
	}
}

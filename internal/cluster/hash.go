package cluster

// Rendezvous (highest-random-weight) hashing: every node scores every
// key independently as hash(node, key) and the highest score owns the
// key. All nodes with the same membership view agree on the owner with
// no coordination, and removing a node remaps only the keys it owned —
// exactly the property the plan cache wants, since a remapped key means
// a cold cache on its new owner.

// fnv64a is FNV-1a, inlined so the hot Owner path allocates nothing.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// bijection used both to decorrelate the rendezvous scores (raw FNV of
// similar URLs clusters) and to derive seeded gossip jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// rendezvousScore scores one (node, key) pair. The node URL is hashed
// first and the key folded in before finalizing, so a node's scores
// across keys are independent draws.
func rendezvousScore(node, key string) uint64 {
	return splitmix64(fnv64a(node) ^ splitmix64(fnv64a(key)))
}

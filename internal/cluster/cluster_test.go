package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeLocal is a minimal Local: an epoch counter plus a record of
// AdvanceTo calls.
type fakeLocal struct {
	mu       sync.Mutex
	epoch    uint64
	digest   uint64
	advances []string // "epoch<-N from=URL"
}

func (f *fakeLocal) Epoch() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

func (f *fakeLocal) StatsDigest() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.digest
}

func (f *fakeLocal) AdvanceTo(epoch uint64, from string) (uint64, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if epoch > f.epoch {
		f.epoch = epoch
		f.advances = append(f.advances, fmt.Sprintf("epoch<-%d from=%s", epoch, from))
	}
	return f.epoch, 0
}

// testNow is the injected clock: a fixed instant, since nothing in
// these tests depends on elapsed time.
func testNow() time.Time { return time.Unix(1700000000, 0) }

func newTestNode(t *testing.T, self string, peers []string, local *fakeLocal) *Node {
	t.Helper()
	if local == nil {
		local = &fakeLocal{epoch: 1}
	}
	n, err := New(Config{
		Self:   self,
		Peers:  peers,
		Now:    testNow,
		Client: &http.Client{Timeout: time.Second},
		Local:  local,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", self, err)
	}
	return n
}

// markAlive force-resolves peers in a node's view, standing in for a
// completed gossip exchange.
func markAlive(n *Node, urls ...string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.joined = true
	for _, u := range urls {
		m, ok := n.members[u]
		if !ok {
			m = &member{url: u}
			n.members[u] = m
		}
		m.state = stateAlive
		m.misses = 0
	}
}

func TestOwnerAgreesAcrossNodes(t *testing.T) {
	urls := []string{"http://n1:1", "http://n2:2", "http://n3:3"}
	nodes := make([]*Node, len(urls))
	for i, u := range urls {
		nodes[i] = newTestNode(t, u, urls, nil)
		for j, p := range urls {
			if j != i {
				markAlive(nodes[i], p)
			}
		}
	}
	counts := map[string]int{}
	for i := 0; i < 300; i++ {
		key := fmt.Sprintf("temp:%d:%d;light:!0:50", i, i+10)
		owner0, _ := nodes[0].Owner(key)
		for _, n := range nodes[1:] {
			if got, _ := n.Owner(key); got != owner0 {
				t.Fatalf("key %q: %s says owner %s, %s says %s", key, nodes[0].cfg.Self, owner0, n.cfg.Self, got)
			}
		}
		counts[owner0]++
	}
	// Rendezvous hashing should spread 300 keys roughly evenly; require
	// every node to own a healthy share (expected 100 each).
	for _, u := range urls {
		if counts[u] < 50 {
			t.Errorf("node %s owns only %d/300 keys: %v", u, counts[u], counts)
		}
	}
}

func TestOwnerMinimalDisruption(t *testing.T) {
	urls := []string{"http://n1:1", "http://n2:2", "http://n3:3"}
	full := newTestNode(t, urls[0], urls, nil)
	markAlive(full, urls[1], urls[2])
	before := map[string]string{}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("humid:%d:%d", i, i+5)
		before[key], _ = full.Owner(key)
	}
	// Drop n3: every key not owned by n3 must keep its owner.
	reduced := newTestNode(t, urls[0], urls[:2], nil)
	markAlive(reduced, urls[1])
	moved := 0
	for key, prev := range before {
		got, _ := reduced.Owner(key)
		if prev != urls[2] {
			if got != prev {
				t.Errorf("key %q moved %s -> %s though its owner did not leave", key, prev, got)
			}
		} else if got == urls[2] {
			t.Errorf("key %q still owned by departed node", key)
		} else {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("departed node owned no keys; disruption check is vacuous")
	}
}

func TestMergeAdvancesLocalEpoch(t *testing.T) {
	local := &fakeLocal{epoch: 1}
	n := newTestNode(t, "http://n1:1", []string{"http://n2:2"}, local)
	n.merge(wireDigest{
		From: "http://n2:2",
		Members: []wireMember{
			{URL: "http://n2:2", Epoch: 5, Digest: "00000000000000aa"},
		},
	})
	if got := local.Epoch(); got != 5 {
		t.Fatalf("local epoch = %d after merging epoch-5 digest, want 5", got)
	}
	local.mu.Lock()
	adv := strings.Join(local.advances, ";")
	local.mu.Unlock()
	if !strings.Contains(adv, "epoch<-5 from=http://n2:2") {
		t.Errorf("AdvanceTo not attributed to the gossiping peer: %q", adv)
	}
	st := n.StatsSnapshot()
	if st.MaxEpoch != 5 || st.Alive != 1 || !st.Joined {
		t.Errorf("snapshot after merge = %+v, want MaxEpoch 5, Alive 1, Joined", st)
	}
}

func TestMergeLearnsPeersTransitively(t *testing.T) {
	n := newTestNode(t, "http://n1:1", []string{"http://n2:2"}, nil)
	n.merge(wireDigest{
		From: "http://n2:2",
		Members: []wireMember{
			{URL: "http://n2:2", Epoch: 1},
			{URL: "http://n3:3", Epoch: 1},
		},
	})
	n.mu.Lock()
	m3 := n.members["http://n3:3"]
	n.mu.Unlock()
	if m3 == nil || m3.state != statePending {
		t.Fatalf("gossiped-about peer n3 = %+v, want known and pending until probed", m3)
	}
	if ready, reason := n.Ready(); ready || !strings.Contains(reason, "http://n3:3") {
		t.Errorf("Ready() = %v %q, want not-ready naming the unresolved peer", ready, reason)
	}
}

func TestFailureDetectionAndRevival(t *testing.T) {
	n := newTestNode(t, "http://n1:1", []string{"http://n2:2"}, nil)
	markAlive(n, "http://n2:2")
	for i := 0; i < n.cfg.FailAfter-1; i++ {
		n.ReportFailure("http://n2:2")
		n.mu.Lock()
		st := n.members["http://n2:2"].state
		n.mu.Unlock()
		if st != stateAlive {
			t.Fatalf("peer dead after %d misses, FailAfter is %d", i+1, n.cfg.FailAfter)
		}
	}
	n.ReportFailure("http://n2:2")
	n.mu.Lock()
	st := n.members["http://n2:2"].state
	n.mu.Unlock()
	if st != stateDead {
		t.Fatalf("peer state %v after %d consecutive misses, want dead", st, n.cfg.FailAfter)
	}
	// A dead peer owns nothing.
	for i := 0; i < 50; i++ {
		if owner, self := n.Owner(fmt.Sprintf("key-%d", i)); !self {
			t.Fatalf("dead peer still owns key: %s", owner)
		}
	}
	// Hearing from the peer revives it.
	n.merge(wireDigest{From: "http://n2:2", Members: []wireMember{{URL: "http://n2:2", Epoch: 1}}})
	n.mu.Lock()
	st = n.members["http://n2:2"].state
	misses := n.members["http://n2:2"].misses
	n.mu.Unlock()
	if st != stateAlive || misses != 0 {
		t.Fatalf("revived peer state %v misses %d, want alive with cleared misses", st, misses)
	}
}

func TestLeaveExcludesAndRejoinRevives(t *testing.T) {
	n := newTestNode(t, "http://n1:1", []string{"http://n2:2"}, nil)
	markAlive(n, "http://n2:2")
	n.markLeft("http://n2:2")
	d := n.digest()
	for _, m := range d.Members {
		if m.URL == "http://n2:2" {
			t.Fatal("left peer still advertised in gossip digest")
		}
	}
	if _, self := n.Owner("some-key"); !self {
		t.Fatal("left peer still owns shards")
	}
	// ReportFailure on a left peer must not resurrect or re-kill it.
	n.ReportFailure("http://n2:2")
	n.mu.Lock()
	st := n.members["http://n2:2"].state
	n.mu.Unlock()
	if st != stateLeft {
		t.Fatalf("left peer state %v after a reported failure, want left", st)
	}
	n.merge(wireDigest{From: "http://n2:2", Members: []wireMember{{URL: "http://n2:2", Epoch: 2}}})
	n.mu.Lock()
	st = n.members["http://n2:2"].state
	n.mu.Unlock()
	if st != stateAlive {
		t.Fatalf("rejoining peer state %v, want alive", st)
	}
}

func TestJitterSeededAndBounded(t *testing.T) {
	mk := func(seed uint64) *Node {
		n := newTestNode(t, "http://n1:1", nil, nil)
		n.cfg.Seed = seed
		n.cfg.GossipInterval = time.Second
		return n
	}
	a, b := mk(7), mk(7)
	for i := 0; i < 32; i++ {
		ia, ib := a.nextInterval(), b.nextInterval()
		if ia != ib {
			t.Fatalf("round %d: same seed produced different intervals %v vs %v", i, ia, ib)
		}
		if ia < 800*time.Millisecond || ia >= 1200*time.Millisecond {
			t.Fatalf("round %d: interval %v outside [0.8s, 1.2s)", i, ia)
		}
	}
	c := mk(8)
	same := 0
	for i := 0; i < 32; i++ {
		if a.nextInterval() == c.nextInterval() {
			same++
		}
	}
	if same == 32 {
		t.Error("different seeds produced identical jitter sequences")
	}
}

// TestHTTPJoinGossipLeave drives two nodes over real HTTP: the join
// exchange resolves both views, epoch propagation works end to end, and
// Stop announces a leave the peer honors.
func TestHTTPJoinGossipLeave(t *testing.T) {
	localA := &fakeLocal{epoch: 1, digest: 0xa}
	localB := &fakeLocal{epoch: 3, digest: 0xb}

	var nodeA, nodeB *Node
	srvA := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { nodeA.ServeHTTP(w, r) }))
	defer srvA.Close()
	srvB := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { nodeB.ServeHTTP(w, r) }))
	defer srvB.Close()

	mk := func(self string, peers []string, local *fakeLocal) *Node {
		n, err := New(Config{
			Self:   self,
			Peers:  peers,
			Now:    testNow,
			Client: srvA.Client(),
			Local:  local,
		})
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	nodeA = mk(srvA.URL, []string{srvB.URL}, localA)
	nodeB = mk(srvB.URL, nil, localB) // B has no static peers; it learns of A from the join

	if ok := nodeA.GossipOnce(context.Background()); ok != 1 {
		t.Fatalf("GossipOnce exchanged with %d peers, want 1", ok)
	}
	// Joining B (epoch 3) must have pulled A's local epoch up.
	if got := localA.Epoch(); got != 3 {
		t.Fatalf("A epoch = %d after joining epoch-3 peer, want 3", got)
	}
	if ready, reason := nodeA.Ready(); !ready {
		t.Fatalf("A not ready after successful join: %s", reason)
	}
	if ready, reason := nodeB.Ready(); !ready {
		t.Fatalf("B not ready after receiving join: %s", reason)
	}

	// Introspection from both sides.
	for _, tc := range []struct {
		n    *Node
		peer string
	}{{nodeA, srvB.URL}, {nodeB, srvA.URL}} {
		info := tc.n.Info()
		if len(info.Members) != 2 {
			t.Fatalf("%s reports %d members, want 2: %+v", info.Self, len(info.Members), info)
		}
		found := false
		for _, m := range info.Members {
			if m.URL == tc.peer && m.State == "alive" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%s does not list %s alive: %+v", info.Self, tc.peer, info.Members)
		}
	}

	// GET /v1/cluster over the wire.
	resp, err := srvA.Client().Get(srvA.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/cluster: %d", resp.StatusCode)
	}

	// A leaves; B must stop treating it as a member.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	nodeA.Stop(ctx)
	nodeB.mu.Lock()
	st := nodeB.members[srvA.URL].state
	nodeB.mu.Unlock()
	if st != stateLeft {
		t.Fatalf("after A's leave, B sees state %v, want left", st)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New accepted an empty config")
	}
	if _, err := New(Config{Self: "http://x"}); err == nil {
		t.Error("New accepted a config without Now/Client/Local")
	}
	n := newTestNode(t, "http://self:1", []string{"http://self:1", "", "http://p:2"}, nil)
	if len(n.members) != 1 {
		t.Errorf("self and empty peer entries not filtered: %d members", len(n.members))
	}
	if n.cfg.FailAfter != 3 || n.cfg.Seed != 1 {
		t.Errorf("defaults not applied: FailAfter=%d Seed=%d", n.cfg.FailAfter, n.cfg.Seed)
	}
}

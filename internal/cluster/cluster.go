// Package cluster turns independent planning-service processes into a
// sharded planning cluster: a membership view maintained by HTTP
// join/leave and heartbeat-style gossip, rendezvous (highest-random-
// weight) hashing of canonical query keys to shard owners, and
// anti-entropy propagation of each node's statistics epoch so a
// drift-triggered refresh on one node invalidates every peer's stale
// cache entries coherently.
//
// The package is transport-thin by design: it owns the membership state
// machine, the gossip wire format, and the shard function, while the
// planning service (internal/serve) owns request forwarding, caching,
// and the degraded-partition response path. The two meet at the Local
// interface.
//
// Everything here is replayable: the wall clock is injected through
// Config.Now, and gossip jitter derives from Config.Seed via a
// counter-based splitmix64 hash — the clusterdet acqlint scope enforces
// that no other clock or randomness source creeps in, so cluster tests
// and multi-node simulations are deterministic.
package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Local is the co-located planning node the cluster component reports
// into: the statistics-epoch authority whose cache the gossip layer
// keeps coherent. internal/serve.Server implements it.
type Local interface {
	// Epoch returns the node's current statistics epoch.
	Epoch() uint64
	// StatsDigest returns a hash of the distribution the current epoch's
	// plans are built on. Gossip carries it so diverged statistics at an
	// equal epoch are visible in cluster introspection.
	StatsDigest() uint64
	// AdvanceTo installs a higher epoch learned from the peer at from:
	// the local epoch rises to at least epoch and cache entries planned
	// under older epochs are purged. It returns the resulting epoch and
	// the purge count, and must be a no-op when epoch is not newer.
	AdvanceTo(epoch uint64, from string) (newEpoch uint64, purged int)
}

// Config parameterizes a Node. Self, Now, Client, and Local are
// required; zero values elsewhere select the documented defaults.
type Config struct {
	// Self is this node's advertised base URL (e.g. "http://10.0.0.7:8077"),
	// the identity peers address it by and the rendezvous-hash input for
	// the shards it owns.
	Self string
	// Peers lists the static seed members' base URLs. Entries equal to
	// Self are ignored, so every node of a cluster can share one list.
	Peers []string
	// GossipInterval is the cadence of the background gossip/heartbeat
	// loop (jittered ±20% per round from Seed). Zero disables the loop;
	// exchanges then happen only via JoinOnce/GossipOnce, which tests use
	// to drive the protocol deterministically.
	GossipInterval time.Duration
	// FailAfter is the number of consecutive failed exchanges after
	// which a peer is declared dead and excluded from shard ownership.
	// Default 3.
	FailAfter int
	// Seed drives the gossip jitter. Default 1.
	Seed uint64
	// Now is the injected wall clock (the only one this package may
	// read; see the clusterdet acqlint scope). Required.
	Now func() time.Time
	// Client performs the HTTP exchanges; it should carry a timeout well
	// below GossipInterval. Required.
	Client *http.Client
	// Local is the co-located planning node. Required.
	Local Local
	// Logf, when set, receives one line per membership transition.
	Logf func(format string, args ...any)
}

// memberState is the lifecycle of one peer in the local view.
type memberState int

const (
	// statePending: configured or gossiped about, but never heard from;
	// excluded from shard ownership and blocks readiness until resolved.
	statePending memberState = iota
	// stateAlive: exchanged gossip recently; a shard-ownership candidate.
	stateAlive
	// stateDead: FailAfter consecutive exchanges failed; excluded from
	// ownership but still probed, so it revives on the next success.
	stateDead
	// stateLeft: announced a graceful leave; neither owned shards nor
	// probed until it rejoins.
	stateLeft
)

func (s memberState) String() string {
	switch s {
	case statePending:
		return "pending"
	case stateAlive:
		return "alive"
	case stateDead:
		return "dead"
	default:
		return "left"
	}
}

// member is the local view of one peer.
type member struct {
	url      string
	state    memberState
	epoch    uint64
	digest   uint64
	misses   int       // consecutive failed exchanges
	lastSeen time.Time // last direct exchange (zero if never)
}

// Node is one cluster member: the membership table plus the gossip
// loop. Its ServeHTTP handles the /v1/cluster endpoints.
type Node struct {
	cfg Config

	mu       sync.Mutex
	members  map[string]*member // keyed by base URL; never contains Self
	joined   bool               // at least one exchange (either direction) completed
	maxEpoch uint64             // highest epoch seen anywhere, self included
	round    uint64             // jitter counter for the gossip loop

	rounds   atomic.Int64 // gossip rounds started
	failures atomic.Int64 // failed exchanges

	pokeCh chan struct{}
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// New validates the configuration and builds a Node with every static
// peer pending. Call Start to join the cluster.
func New(cfg Config) (*Node, error) {
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: config needs a Self URL")
	}
	if cfg.Now == nil || cfg.Client == nil || cfg.Local == nil {
		return nil, fmt.Errorf("cluster: config needs Now, Client, and Local")
	}
	if cfg.FailAfter <= 0 {
		cfg.FailAfter = 3
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	n := &Node{
		cfg:     cfg,
		members: make(map[string]*member, len(cfg.Peers)),
		pokeCh:  make(chan struct{}, 1),
	}
	for _, p := range cfg.Peers {
		if p == "" || p == cfg.Self {
			continue
		}
		n.members[p] = &member{url: p, state: statePending}
	}
	return n, nil
}

// Start begins cluster participation: with no configured peers the node
// is immediately joined; otherwise the background loop (when
// GossipInterval is set) exchanges with every known peer each round,
// the first successful exchange completing the join.
func (n *Node) Start(ctx context.Context) {
	n.mu.Lock()
	if len(n.members) == 0 {
		n.joined = true
	}
	n.mu.Unlock()
	if n.cfg.GossipInterval <= 0 {
		return
	}
	ctx, n.cancel = context.WithCancel(ctx)
	n.wg.Add(1)
	go n.loop(ctx)
}

// Stop ends the gossip loop and announces a graceful leave to every
// alive peer (best effort, bounded by ctx).
func (n *Node) Stop(ctx context.Context) {
	if n.cancel != nil {
		n.cancel()
	}
	n.wg.Wait()
	n.leaveAll(ctx)
}

// Poke requests an immediate gossip round out of cadence — the planning
// node calls it right after a drift refresh bumps the local epoch, so
// peers purge their stale cache entries without waiting a full
// interval. A no-op when the background loop is not running.
func (n *Node) Poke() {
	select {
	case n.pokeCh <- struct{}{}:
	default:
	}
}

// loop drives the periodic exchanges until ctx ends.
func (n *Node) loop(ctx context.Context) {
	defer n.wg.Done()
	n.GossipOnce(ctx) // the first round doubles as the join attempt
	for {
		t := time.NewTimer(n.nextInterval())
		select {
		case <-ctx.Done():
			t.Stop()
			return
		case <-n.pokeCh:
			t.Stop()
		case <-t.C:
		}
		n.GossipOnce(ctx)
	}
}

// nextInterval returns the jittered gossip interval: the base spread
// across [0.8, 1.2) deterministically from the seed and round counter,
// so a fleet booted together does not heartbeat in phase yet replays
// identically under a fixed seed.
func (n *Node) nextInterval() time.Duration {
	n.mu.Lock()
	n.round++
	r := n.round
	n.mu.Unlock()
	u := splitmix64(n.cfg.Seed ^ (r * 0x9e3779b97f4a7c15))
	frac := float64(u>>11) / float64(uint64(1)<<53)
	return time.Duration(float64(n.cfg.GossipInterval) * (0.8 + 0.4*frac))
}

// Owner returns the shard owner for a canonical query key under the
// current membership view: the highest-random-weight (rendezvous) hash
// over self plus every alive peer, so each key has exactly one owner in
// any agreed view, and a membership change remaps only the keys the
// departed or arrived node owns.
func (n *Node) Owner(key string) (url string, self bool) {
	n.mu.Lock()
	urls := n.memberURLsLocked(func(m *member) bool { return m.state == stateAlive })
	n.mu.Unlock()
	best := n.cfg.Self
	bestScore := rendezvousScore(n.cfg.Self, key)
	for _, u := range urls {
		if s := rendezvousScore(u, key); s > bestScore {
			best, bestScore = u, s
		}
	}
	return best, best == n.cfg.Self
}

// OwnerOrder returns every current ownership candidate for a key —
// self plus the alive peers — in descending rendezvous-score order.
// The head is the Owner; the tail is the deterministic failover
// sequence the serving layer walks when the owner is unreachable, so
// every node that agrees on the membership view also agrees on who
// answers for a key after k failures.
func (n *Node) OwnerOrder(key string) []string {
	n.mu.Lock()
	urls := n.memberURLsLocked(func(m *member) bool { return m.state == stateAlive })
	n.mu.Unlock()
	urls = append(urls, n.cfg.Self)
	sort.SliceStable(urls, func(i, j int) bool {
		return rendezvousScore(urls[i], key) > rendezvousScore(urls[j], key)
	})
	return urls
}

// memberURLsLocked returns the URLs of members passing keep (nil keeps
// all), sorted. Callers hold n.mu. This is the package's one sanctioned
// range over the member map: the sort erases collection order before any
// caller iterates.
func (n *Node) memberURLsLocked(keep func(*member) bool) []string {
	urls := make([]string, 0, len(n.members))
	//acqlint:ignore maporder collection order is erased by the sort below
	for u, m := range n.members {
		if keep == nil || keep(m) {
			urls = append(urls, u)
		}
	}
	sort.Strings(urls)
	return urls
}

// ReportFailure feeds the failure detector from outside the gossip
// path: the serving layer calls it when a forward to a peer fails, so a
// partitioned shard owner is detected at request rate, not just at
// gossip cadence.
func (n *Node) ReportFailure(url string) {
	n.noteFailure(url)
}

// noteFailure records one failed exchange with a peer and declares it
// dead after FailAfter consecutive misses.
func (n *Node) noteFailure(url string) {
	n.failures.Add(1)
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.members[url]
	if !ok || m.state == stateLeft || m.state == stateDead {
		return
	}
	m.misses++
	if m.misses >= n.cfg.FailAfter {
		m.state = stateDead
		n.logf("cluster: peer %s dead after %d failed exchanges", url, m.misses)
	}
}

// Ready reports whether this node should receive traffic: the join
// completed, no configured or discovered peer is still unresolved
// (pending peers make shard views diverge across nodes), and the local
// statistics epoch has caught up with the gossiped cluster maximum.
func (n *Node) Ready() (bool, string) {
	epoch := n.cfg.Local.Epoch()
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.joined {
		return false, "joining: no gossip exchange completed yet"
	}
	for _, u := range n.memberURLsLocked(nil) {
		if n.members[u].state == statePending {
			return false, fmt.Sprintf("joining: peer %s not yet resolved", u)
		}
	}
	if epoch < n.maxEpoch {
		return false, fmt.Sprintf("stats epoch %d behind cluster maximum %d", epoch, n.maxEpoch)
	}
	return true, ""
}

// Stats is a point-in-time counter snapshot for the /metrics exporter.
type Stats struct {
	Rounds   int64  // gossip rounds started
	Failures int64  // failed exchanges (gossip and reported forwards)
	Alive    int    // peers currently alive (self excluded)
	Known    int    // peers known in any state (self excluded)
	MaxEpoch uint64 // highest statistics epoch seen cluster-wide
	Joined   bool
}

// StatsSnapshot returns the current counters.
func (n *Node) StatsSnapshot() Stats {
	st := Stats{Rounds: n.rounds.Load(), Failures: n.failures.Load()}
	n.mu.Lock()
	defer n.mu.Unlock()
	st.Known = len(n.members)
	for _, m := range n.members {
		if m.state == stateAlive {
			st.Alive++
		}
	}
	st.MaxEpoch = n.maxEpoch
	st.Joined = n.joined
	return st
}

func (n *Node) logf(format string, args ...any) {
	if n.cfg.Logf != nil {
		n.cfg.Logf(format, args...)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// The gossip protocol is anti-entropy push-pull: each round a node
// POSTs its digest — self plus every non-left member it knows, with the
// highest statistics epoch it has seen for each — to every known peer,
// and merges the digest the peer returns. Merging takes the per-member
// epoch maximum, so one node's drift refresh reaches every peer within
// a round (or immediately, via Poke), and member URLs spread
// transitively, so a node configured with one seed peer still discovers
// the whole cluster.

// wireMember is one member entry in a gossip digest.
type wireMember struct {
	URL    string `json:"url"`
	Epoch  uint64 `json:"epoch"`
	Digest string `json:"digest"` // stats digest, hex
}

// wireDigest is the gossip exchange body — sent as the request and
// returned as the response, making every exchange bidirectional.
type wireDigest struct {
	From    string       `json:"from"`
	Members []wireMember `json:"members"`
}

// digest snapshots this node's view: self first, then every non-left
// member in URL order. Local values are read before taking the lock
// (Node methods never call Local while holding mu).
func (n *Node) digest() wireDigest {
	epoch := n.cfg.Local.Epoch()
	dg := n.cfg.Local.StatsDigest()
	d := wireDigest{From: n.cfg.Self}
	d.Members = append(d.Members, wireMember{
		URL:    n.cfg.Self,
		Epoch:  epoch,
		Digest: fmt.Sprintf("%016x", dg),
	})
	n.mu.Lock()
	if epoch > n.maxEpoch {
		n.maxEpoch = epoch
	}
	for _, u := range n.memberURLsLocked(func(m *member) bool { return m.state != stateLeft }) {
		m := n.members[u]
		d.Members = append(d.Members, wireMember{
			URL:    u,
			Epoch:  m.epoch,
			Digest: fmt.Sprintf("%016x", m.digest),
		})
	}
	n.mu.Unlock()
	return d
}

// GossipOnce runs one full round: exchange with every known, non-left
// peer in URL order (pending peers through the join endpoint, the rest
// through gossip). It returns the number of successful exchanges.
// Tests with GossipInterval zero call it directly to step the protocol
// deterministically.
func (n *Node) GossipOnce(ctx context.Context) int {
	n.rounds.Add(1)
	d := n.digest()
	type target struct {
		url     string
		pending bool
	}
	n.mu.Lock()
	targets := make([]target, 0, len(n.members))
	for _, u := range n.memberURLsLocked(func(m *member) bool { return m.state != stateLeft }) {
		targets = append(targets, target{url: u, pending: n.members[u].state == statePending})
	}
	n.mu.Unlock()
	ok := 0
	for _, t := range targets {
		path := "/v1/cluster/gossip"
		if t.pending {
			path = "/v1/cluster/join"
		}
		if n.exchange(ctx, t.url, path, d) {
			ok++
		}
	}
	return ok
}

// exchange POSTs the digest to one peer and merges the reply. A failed
// exchange feeds the failure detector.
func (n *Node) exchange(ctx context.Context, peer, path string, d wireDigest) bool {
	body, err := json.Marshal(d)
	if err != nil {
		n.logf("cluster: marshal digest: %v", err)
		return false
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+path, bytes.NewReader(body))
	if err != nil {
		n.noteFailure(peer)
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		n.noteFailure(peer)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		n.noteFailure(peer)
		return false
	}
	var reply wireDigest
	if err := json.NewDecoder(io.LimitReader(resp.Body, maxDigestBytes)).Decode(&reply); err != nil {
		n.noteFailure(peer)
		return false
	}
	n.merge(reply)
	return true
}

// merge folds a peer's digest into the local view: the sender is
// directly heard from (alive, misses cleared), every listed URL is
// learned (unknown ones enter pending until probed directly), each
// member's epoch ratchets to the maximum seen, and if the cluster
// maximum now exceeds the local statistics epoch the co-located node is
// advanced — purging its stale cache entries — after the lock is
// released.
func (n *Node) merge(d wireDigest) {
	now := n.cfg.Now()
	selfEpoch := n.cfg.Local.Epoch()
	var advanceTo uint64
	n.mu.Lock()
	n.joined = true
	if d.From != "" && d.From != n.cfg.Self {
		m, ok := n.members[d.From]
		if !ok {
			m = &member{url: d.From}
			n.members[d.From] = m
			n.logf("cluster: peer %s joined", d.From)
		} else if m.state != stateAlive {
			n.logf("cluster: peer %s %s -> alive", d.From, m.state)
		}
		m.state = stateAlive
		m.misses = 0
		m.lastSeen = now
	}
	for _, wm := range d.Members {
		if wm.URL == "" {
			continue
		}
		if wm.Epoch > n.maxEpoch {
			n.maxEpoch = wm.Epoch
		}
		if wm.URL == n.cfg.Self {
			continue
		}
		m, ok := n.members[wm.URL]
		if !ok {
			m = &member{url: wm.URL, state: statePending}
			n.members[wm.URL] = m
			n.logf("cluster: learned of peer %s via %s", wm.URL, d.From)
		}
		if wm.Epoch > m.epoch {
			m.epoch = wm.Epoch
			if v, err := strconv.ParseUint(wm.Digest, 16, 64); err == nil {
				m.digest = v
			}
		}
	}
	if selfEpoch > n.maxEpoch {
		n.maxEpoch = selfEpoch
	}
	if n.maxEpoch > selfEpoch {
		advanceTo = n.maxEpoch
	}
	n.mu.Unlock()
	if advanceTo > 0 {
		n.cfg.Local.AdvanceTo(advanceTo, d.From)
	}
}

// leaveAll announces a graceful leave to every alive peer, best effort.
func (n *Node) leaveAll(ctx context.Context) {
	n.mu.Lock()
	urls := n.memberURLsLocked(func(m *member) bool { return m.state == stateAlive })
	n.mu.Unlock()
	body, err := json.Marshal(leaveRequest{From: n.cfg.Self})
	if err != nil {
		return
	}
	for _, u := range urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, u+"/v1/cluster/leave", bytes.NewReader(body))
		if err != nil {
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := n.cfg.Client.Do(req)
		if err != nil {
			n.logf("cluster: leave announcement to %s failed: %v", u, err)
			continue
		}
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
		resp.Body.Close()
	}
}

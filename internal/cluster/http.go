package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"
)

// maxDigestBytes bounds gossip and introspection bodies; a digest is a
// few dozen bytes per member, so 1 MiB is three orders of magnitude of
// headroom.
const maxDigestBytes = 1 << 20

// MemberInfo is one row of the /v1/cluster introspection document.
type MemberInfo struct {
	URL      string `json:"url"`
	State    string `json:"state"`
	Epoch    uint64 `json:"epoch"`
	Digest   string `json:"digest"`
	Misses   int    `json:"misses,omitempty"`
	LastSeen string `json:"last_seen,omitempty"` // RFC 3339, zero when never heard from
}

// Info is the /v1/cluster introspection document: this node's identity
// and view, with members (self included) sorted by URL.
type Info struct {
	Self     string       `json:"self"`
	Joined   bool         `json:"joined"`
	Ready    bool         `json:"ready"`
	Reason   string       `json:"reason,omitempty"`
	MaxEpoch uint64       `json:"max_epoch"`
	Members  []MemberInfo `json:"members"`
}

// Info returns the current introspection document.
func (n *Node) Info() Info {
	epoch := n.cfg.Local.Epoch()
	dg := n.cfg.Local.StatsDigest()
	ready, reason := n.Ready()
	info := Info{Self: n.cfg.Self, Ready: ready, Reason: reason}
	info.Members = append(info.Members, MemberInfo{
		URL:    n.cfg.Self,
		State:  stateAlive.String(),
		Epoch:  epoch,
		Digest: fmt.Sprintf("%016x", dg),
	})
	n.mu.Lock()
	info.Joined = n.joined
	info.MaxEpoch = n.maxEpoch
	for _, u := range n.memberURLsLocked(nil) {
		m := n.members[u]
		mi := MemberInfo{
			URL:    m.url,
			State:  m.state.String(),
			Epoch:  m.epoch,
			Digest: fmt.Sprintf("%016x", m.digest),
			Misses: m.misses,
		}
		if !m.lastSeen.IsZero() {
			mi.LastSeen = m.lastSeen.UTC().Format(time.RFC3339Nano)
		}
		info.Members = append(info.Members, mi)
	}
	n.mu.Unlock()
	sort.Slice(info.Members, func(i, j int) bool { return info.Members[i].URL < info.Members[j].URL })
	return info
}

// leaveRequest is the /v1/cluster/leave body.
type leaveRequest struct {
	From string `json:"from"`
}

// ServeHTTP handles the cluster control endpoints. The serving layer
// mounts it at /v1/cluster and below:
//
//	GET  /v1/cluster        — introspection (Info)
//	POST /v1/cluster/join   — first-contact gossip exchange
//	POST /v1/cluster/gossip — steady-state gossip exchange
//	POST /v1/cluster/leave  — graceful departure announcement
func (n *Node) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/v1/cluster":
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, n.Info())
	case "/v1/cluster/join", "/v1/cluster/gossip":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var d wireDigest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxDigestBytes)).Decode(&d); err != nil {
			http.Error(w, fmt.Sprintf("bad digest: %v", err), http.StatusBadRequest)
			return
		}
		if r.URL.Path == "/v1/cluster/join" {
			n.logf("cluster: join request from %s", d.From)
		}
		n.merge(d)
		writeJSON(w, n.digest())
	case "/v1/cluster/leave":
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		var lr leaveRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, maxDigestBytes)).Decode(&lr); err != nil {
			http.Error(w, fmt.Sprintf("bad leave request: %v", err), http.StatusBadRequest)
			return
		}
		n.markLeft(lr.From)
		w.WriteHeader(http.StatusNoContent)
	default:
		http.NotFound(w, r)
	}
}

// markLeft records a graceful departure: the peer stops owning shards
// and stops being probed until it contacts us again (merge revives it).
func (n *Node) markLeft(url string) {
	if url == "" || url == n.cfg.Self {
		return
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	m, ok := n.members[url]
	if !ok {
		return
	}
	if m.state != stateLeft {
		n.logf("cluster: peer %s left", url)
	}
	m.state = stateLeft
	m.misses = 0
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing to do but note it.
		return
	}
}

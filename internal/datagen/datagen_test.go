package datagen

import (
	"math"
	"testing"

	"acqp/internal/table"
)

// colMeans returns the mean discretized value of attr, conditioned on a
// filter over the rows.
func condMean(tbl *table.Table, attr int, keep func(r int) bool) float64 {
	var sum float64
	var n int
	for r := 0; r < tbl.NumRows(); r++ {
		if keep(r) {
			sum += float64(tbl.Value(r, attr))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// pearson computes the correlation coefficient between two columns.
func pearson(tbl *table.Table, a, b int) float64 {
	n := float64(tbl.NumRows())
	var sa, sb, saa, sbb, sab float64
	for r := 0; r < tbl.NumRows(); r++ {
		x, y := float64(tbl.Value(r, a)), float64(tbl.Value(r, b))
		sa += x
		sb += y
		saa += x * x
		sbb += y * y
		sab += x * y
	}
	cov := sab/n - sa/n*sb/n
	va := saa/n - sa/n*sa/n
	vb := sbb/n - sb/n*sb/n
	if va <= 0 || vb <= 0 {
		return 0
	}
	return cov / math.Sqrt(va*vb)
}

func smallLab() LabConfig {
	return LabConfig{Motes: 10, Rows: 20_000, Seed: 1, QuietMotes: 3}
}

func TestLabDeterministic(t *testing.T) {
	a := Lab(smallLab())
	b := Lab(smallLab())
	if a.NumRows() != b.NumRows() {
		t.Fatal("row counts differ")
	}
	for r := 0; r < a.NumRows(); r += 997 {
		for c := 0; c < a.Schema().NumAttrs(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("value (%d,%d) differs between equal-seed runs", r, c)
			}
		}
	}
	c := Lab(LabConfig{Motes: 10, Rows: 20_000, Seed: 99, QuietMotes: 3})
	same := true
	for r := 0; r < a.NumRows() && same; r += 101 {
		if a.Value(r, LabLight) != c.Value(r, LabLight) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical light columns")
	}
}

func TestLabDiurnalLight(t *testing.T) {
	tbl := Lab(smallLab())
	night := condMean(tbl, LabLight, func(r int) bool { return tbl.Value(r, LabHour) < 5 })
	noon := condMean(tbl, LabLight, func(r int) bool {
		h := tbl.Value(r, LabHour)
		return h >= 11 && h <= 13
	})
	if noon < night+5 {
		t.Errorf("noon light %g not clearly above night light %g", noon, night)
	}
}

func TestLabQuietMotesDarkAtNight(t *testing.T) {
	tbl := Lab(smallLab())
	isNight := func(r int) bool {
		h := tbl.Value(r, LabHour)
		return h >= 20 || h < 5
	}
	quiet := condMean(tbl, LabLight, func(r int) bool { return isNight(r) && tbl.Value(r, LabNodeID) < 3 })
	busy := condMean(tbl, LabLight, func(r int) bool { return isNight(r) && tbl.Value(r, LabNodeID) >= 3 })
	if busy < quiet+1 {
		t.Errorf("late-work motes (%g) not brighter at night than quiet motes (%g)", busy, quiet)
	}
}

func TestLabHumidityHigherAtNight(t *testing.T) {
	tbl := Lab(smallLab())
	night := condMean(tbl, LabHumidity, func(r int) bool { return tbl.Value(r, LabHour) < 5 })
	day := condMean(tbl, LabHumidity, func(r int) bool {
		h := tbl.Value(r, LabHour)
		return h >= 9 && h <= 16
	})
	if night < day+1 {
		t.Errorf("night humidity %g not above day humidity %g (HVAC off at night)", night, day)
	}
}

func TestLabSchemaCosts(t *testing.T) {
	s := LabSchema(smallLab())
	if s.NumAttrs() != 6 {
		t.Fatalf("lab schema has %d attributes", s.NumAttrs())
	}
	for _, i := range []int{LabHour, LabNodeID, LabVoltage} {
		if s.Cost(i) != CheapCost {
			t.Errorf("attribute %s should be cheap", s.Name(i))
		}
	}
	for _, i := range []int{LabLight, LabTemp, LabHumidity} {
		if s.Cost(i) != ExpensiveCost {
			t.Errorf("attribute %s should be expensive", s.Name(i))
		}
	}
}

func TestLabRowCountExact(t *testing.T) {
	cfg := LabConfig{Motes: 7, Rows: 1001, Seed: 3, QuietMotes: 2}
	tbl := Lab(cfg)
	if tbl.NumRows() != 1001 {
		t.Errorf("rows = %d, want 1001", tbl.NumRows())
	}
}

func TestGardenSchemaShape(t *testing.T) {
	cfg := DefaultGardenConfig(5)
	s := GardenSchema(cfg)
	if s.NumAttrs() != 16 {
		t.Fatalf("Garden-5 schema has %d attributes, want 16", s.NumAttrs())
	}
	cfg11 := DefaultGardenConfig(11)
	if GardenSchema(cfg11).NumAttrs() != 34 {
		t.Fatal("Garden-11 schema should have 34 attributes")
	}
	if s.Name(GardenTempAttr(2)) != "m2.temp" || s.Name(GardenVoltAttr(4)) != "m4.volt" {
		t.Error("garden attribute index helpers wrong")
	}
	if s.Cost(GardenTempAttr(0)) != ExpensiveCost || s.Cost(GardenVoltAttr(0)) != CheapCost {
		t.Error("garden costs wrong")
	}
}

func TestGardenCrossMoteCorrelation(t *testing.T) {
	tbl := Garden(GardenConfig{Motes: 5, Rows: 10_000, Seed: 2})
	// Temperatures at different motes track the shared micro-climate.
	if r := pearson(tbl, GardenTempAttr(0), GardenTempAttr(3)); r < 0.5 {
		t.Errorf("cross-mote temp correlation = %g, want > 0.5", r)
	}
	// Humidity is anti-correlated with temperature.
	if r := pearson(tbl, GardenTempAttr(1), GardenHumAttr(1)); r > -0.3 {
		t.Errorf("temp/hum correlation = %g, want < -0.3", r)
	}
	// Cheap time predicts expensive temperature (non-trivially).
	if r := math.Abs(pearson(tbl, 0, GardenTempAttr(2))); r < 0.1 {
		t.Errorf("time/temp correlation = %g, want nontrivial", r)
	}
}

func TestGardenDeterministic(t *testing.T) {
	cfg := GardenConfig{Motes: 3, Rows: 2000, Seed: 5}
	a, b := Garden(cfg), Garden(cfg)
	for r := 0; r < a.NumRows(); r += 37 {
		for c := 0; c < a.Schema().NumAttrs(); c++ {
			if a.Value(r, c) != b.Value(r, c) {
				t.Fatalf("value (%d,%d) differs between equal-seed runs", r, c)
			}
		}
	}
}

func TestSyntheticSelectivity(t *testing.T) {
	for _, sel := range []float64{0.3, 0.5, 0.8} {
		tbl := Synthetic(SynthConfig{N: 8, Gamma: 1, Sel: sel, Rows: 30_000, Seed: 7})
		for j := 0; j < 8; j++ {
			frac := condMean(tbl, j, func(int) bool { return true })
			if math.Abs(frac-sel) > 0.03 {
				t.Errorf("sel=%g attr %d: observed %g", sel, j, frac)
			}
		}
	}
}

func TestSyntheticIntraGroupAgreement(t *testing.T) {
	tbl := Synthetic(SynthConfig{N: 8, Gamma: 3, Sel: 0.5, Rows: 30_000, Seed: 8})
	agree := 0
	for r := 0; r < tbl.NumRows(); r++ {
		if tbl.Value(r, 0) == tbl.Value(r, 1) { // same group (size 4)
			agree++
		}
	}
	frac := float64(agree) / float64(tbl.NumRows())
	if math.Abs(frac-0.8) > 0.03 {
		t.Errorf("intra-group agreement = %g, want ~0.8", frac)
	}
}

func TestSyntheticCrossGroupIndependence(t *testing.T) {
	tbl := Synthetic(SynthConfig{N: 8, Gamma: 1, Sel: 0.5, Rows: 30_000, Seed: 9})
	// Attributes 0 and 2 are in different groups: correlation ~ 0.
	if r := math.Abs(pearson(tbl, 0, 2)); r > 0.03 {
		t.Errorf("cross-group correlation = %g, want ~0", r)
	}
	// Attributes 0 and 1 share a group: strongly correlated.
	if r := pearson(tbl, 0, 1); r < 0.4 {
		t.Errorf("intra-group correlation = %g, want > 0.4", r)
	}
}

func TestSynthQueryCoversExpensiveAttrs(t *testing.T) {
	cases := []struct {
		n, gamma  int
		wantPreds int
	}{
		{10, 1, 5},
		{10, 3, 7},
		{40, 1, 20},
		{40, 3, 30},
	}
	for _, tc := range cases {
		cfg := SynthConfig{N: tc.n, Gamma: tc.gamma, Sel: 0.5, Rows: 10, Seed: 1}
		s := SynthSchema(cfg)
		q := SynthQuery(s)
		if q.NumPreds() != tc.wantPreds {
			t.Errorf("n=%d gamma=%d: %d predicates, want %d (paper Section 6.3)",
				tc.n, tc.gamma, q.NumPreds(), tc.wantPreds)
		}
		for _, p := range q.Preds {
			if s.Cost(p.Attr) != ExpensiveCost {
				t.Errorf("query predicate on cheap attribute %s", s.Name(p.Attr))
			}
			if p.R.Lo != 1 || p.R.Hi != 1 {
				t.Errorf("predicate range %v, want [1,1]", p.R)
			}
		}
	}
}

func TestGeneratorPanicsOnBadConfig(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("lab zero motes", func() { Lab(LabConfig{Motes: 0, Rows: 10}) })
	mustPanic("garden zero rows", func() { Garden(GardenConfig{Motes: 3, Rows: 0}) })
	mustPanic("synth bad sel", func() { Synthetic(SynthConfig{N: 4, Gamma: 1, Sel: 1.5, Rows: 10}) })
}

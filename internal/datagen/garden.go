package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"acqp/internal/schema"
	"acqp/internal/table"
)

// GardenConfig parameterizes the simulated forest deployment of
// Section 6.2. Each row is a snapshot of the whole network at one epoch:
// per mote, an expensive temperature and humidity and a cheap voltage,
// plus one shared cheap time-of-day attribute — 3*Motes + 1 attributes
// (16 for Garden-5, 34 for Garden-11, exactly as the paper counts them).
type GardenConfig struct {
	// Motes is the number of sensor nodes: 5 for Garden-5, 11 for
	// Garden-11.
	Motes int
	// Rows is the number of network snapshots to generate.
	Rows int
	// Seed drives the generator.
	Seed int64
}

// DefaultGardenConfig returns the Garden-N configuration.
func DefaultGardenConfig(motes int) GardenConfig {
	return GardenConfig{Motes: motes, Rows: 40_000, Seed: 2}
}

// Garden domain sizes.
const (
	gardenTempK = 32
	gardenHumK  = 32
	gardenVoltK = 16
)

// GardenSchema returns the garden schema: attribute 0 is "time" (hour of
// day), then per mote i: "m<i>.temp", "m<i>.hum", "m<i>.volt".
func GardenSchema(cfg GardenConfig) *schema.Schema {
	s := schema.New(schema.Attribute{Name: "time", K: 24, Cost: CheapCost})
	for m := 0; m < cfg.Motes; m++ {
		s.MustAdd(schema.Attribute{Name: fmt.Sprintf("m%d.temp", m), K: gardenTempK,
			Cost: ExpensiveCost, Disc: schema.MustDiscretizer(-5, 35, gardenTempK)})
		s.MustAdd(schema.Attribute{Name: fmt.Sprintf("m%d.hum", m), K: gardenHumK,
			Cost: ExpensiveCost, Disc: schema.MustDiscretizer(20, 100, gardenHumK)})
		s.MustAdd(schema.Attribute{Name: fmt.Sprintf("m%d.volt", m), K: gardenVoltK,
			Cost: CheapCost, Disc: schema.MustDiscretizer(2.0, 3.2, gardenVoltK)})
	}
	return s
}

// GardenTempAttr returns the schema index of mote m's temperature.
func GardenTempAttr(m int) int { return 1 + 3*m }

// GardenHumAttr returns the schema index of mote m's humidity.
func GardenHumAttr(m int) int { return 2 + 3*m }

// GardenVoltAttr returns the schema index of mote m's voltage.
func GardenVoltAttr(m int) int { return 3 + 3*m }

// Garden generates the simulated forest dataset in time order. All motes
// observe one shared micro-climate — a diurnal temperature cycle
// modulated by a slow weather random walk — through per-mote biases and
// noise, which is what makes any one mote's (cheap) attributes predictive
// of every other mote's (expensive) attributes.
func Garden(cfg GardenConfig) *table.Table {
	if cfg.Motes <= 0 || cfg.Rows <= 0 {
		panic("datagen: garden config must have positive Motes and Rows")
	}
	s := GardenSchema(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := table.New(s, cfg.Rows)

	tempBias := make([]float64, cfg.Motes)
	humBias := make([]float64, cfg.Motes)
	battery := make([]float64, cfg.Motes)
	for m := 0; m < cfg.Motes; m++ {
		tempBias[m] = noise(rng, 1.2) // canopy cover, elevation
		humBias[m] = noise(rng, 3)
		battery[m] = 3.0 + rng.Float64()*0.2
	}

	weather := 0.0 // slow random walk shared by every mote: fronts passing
	row := make([]schema.Value, s.NumAttrs())
	epochsPerDay := 288 // one snapshot every five minutes
	if cfg.Rows < epochsPerDay {
		// Small datasets still cover one full diurnal cycle.
		epochsPerDay = cfg.Rows
	}
	for e := 0; e < cfg.Rows; e++ {
		dayFrac := float64(e%epochsPerDay) / float64(epochsPerDay)
		hour := int(dayFrac * 24)
		weather = clamp(weather+noise(rng, 0.15), -6, 6)
		// Diurnal forest temperature: coolest before dawn, warmest
		// mid-afternoon.
		base := 12 + 8*math.Sin((dayFrac-0.3)*2*math.Pi) + weather

		row[0] = schema.Value(hour)
		for m := 0; m < cfg.Motes; m++ {
			temp := clamp(base+tempBias[m]+noise(rng, 0.7), -5, 35)
			// Relative humidity moves against temperature and with rain
			// (low-weather fronts are wetter).
			hum := clamp(85-2.2*(temp-10)-1.5*weather+humBias[m]+noise(rng, 2.5), 20, 100)
			// Alkaline cells sag measurably in the cold: the voltage swing
			// over the diurnal temperature range spans several ADC bins,
			// which is what makes this cheap attribute a useful predictor
			// of every mote's expensive temperature (the effect the
			// paper's forest deployment exhibits).
			battery[m] -= 0.3 / float64(cfg.Rows*2)
			volt := clamp(battery[m]-0.02*(12-temp)+noise(rng, 0.005), 2.0, 3.2)

			row[GardenTempAttr(m)] = s.Attr(GardenTempAttr(m)).Disc.Bin(temp)
			row[GardenHumAttr(m)] = s.Attr(GardenHumAttr(m)).Disc.Bin(hum)
			row[GardenVoltAttr(m)] = s.Attr(GardenVoltAttr(m)).Disc.Bin(volt)
		}
		tbl.MustAppendRow(row)
	}
	return tbl
}

package datagen

import (
	"fmt"
	"math/rand"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/table"
)

// SynthConfig parameterizes the synthetic generator adapted from Babu et
// al. [2], exactly as Section 6 describes it: n binary attributes divided
// into groups of Gamma+1; attributes within a group are positively
// correlated and identical for about 80% of tuples; attributes in
// different groups are independent; each attribute equals 1 for about a
// sel fraction of tuples. One attribute per group is cheap (cost 1), the
// rest are expensive (cost 100).
type SynthConfig struct {
	// N is the number of attributes.
	N int
	// Gamma is the correlation factor: group size is Gamma+1.
	Gamma int
	// Sel is the unconditional selectivity of each attribute.
	Sel float64
	// Rows is the number of tuples.
	Rows int
	// Seed drives the generator.
	Seed int64
}

// synthCopyProb is the probability an attribute copies its group's shared
// value rather than drawing a fresh Bernoulli(sel). 0.78 makes two
// same-group attributes agree on ~80% of tuples at sel = 0.5 (they agree
// whenever both copy, and half the time otherwise), matching the paper's
// "identical values for 80% of the tuples".
const synthCopyProb = 0.78

// SynthSchema returns the binary schema for the configuration. Attribute
// j belongs to group j / (Gamma+1); the first attribute of each group is
// the cheap one.
func SynthSchema(cfg SynthConfig) *schema.Schema {
	s := schema.New()
	for j := 0; j < cfg.N; j++ {
		cost := float64(ExpensiveCost)
		if j%(cfg.Gamma+1) == 0 {
			cost = CheapCost
		}
		s.MustAdd(schema.Attribute{Name: fmt.Sprintf("x%d", j), K: 2, Cost: cost})
	}
	return s
}

// Synthetic generates the dataset.
func Synthetic(cfg SynthConfig) *table.Table {
	if cfg.N <= 0 || cfg.Rows <= 0 || cfg.Gamma < 0 {
		panic("datagen: synthetic config must have positive N and Rows and Gamma >= 0")
	}
	if cfg.Sel < 0 || cfg.Sel > 1 {
		panic("datagen: synthetic selectivity must be in [0,1]")
	}
	s := SynthSchema(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := table.New(s, cfg.Rows)
	groupSize := cfg.Gamma + 1
	numGroups := (cfg.N + groupSize - 1) / groupSize
	row := make([]schema.Value, cfg.N)
	groupVal := make([]schema.Value, numGroups)
	for r := 0; r < cfg.Rows; r++ {
		for g := range groupVal {
			groupVal[g] = bernoulli(rng, cfg.Sel)
		}
		for j := 0; j < cfg.N; j++ {
			if rng.Float64() < synthCopyProb {
				row[j] = groupVal[j/groupSize]
			} else {
				row[j] = bernoulli(rng, cfg.Sel)
			}
		}
		tbl.MustAppendRow(row)
	}
	return tbl
}

// SynthQuery returns the paper's query for the synthetic dataset: a
// conjunction checking that every expensive attribute equals 1.
func SynthQuery(s *schema.Schema) query.Query {
	var preds []query.Pred
	for j := 0; j < s.NumAttrs(); j++ {
		if s.Cost(j) > CheapCost {
			preds = append(preds, query.Pred{Attr: j, R: query.Range{Lo: 1, Hi: 1}})
		}
	}
	return query.MustNewQuery(s, preds...)
}

func bernoulli(rng *rand.Rand, p float64) schema.Value {
	if rng.Float64() < p {
		return 1
	}
	return 0
}

package datagen

import (
	"math"
	"math/rand"

	"acqp/internal/schema"
	"acqp/internal/table"
)

// LabConfig parameterizes the simulated Intel-lab-style dataset: rows are
// individual sensor readings with three expensive sensed attributes
// (light, temp, humidity) and three cheap local attributes (nodeid, hour,
// voltage), matching Section 6's Lab dataset.
type LabConfig struct {
	// Motes is the number of sensor nodes (the paper's deployment had
	// about 45).
	Motes int
	// Rows is the total number of readings to generate (the paper used
	// 400,000).
	Rows int
	// Seed drives the generator; equal seeds give identical tables.
	Seed int64
	// QuietMotes is the count of motes (ids 0..QuietMotes-1) located in
	// the part of the lab that is never used at night, so their light
	// level is strongly determined by the hour (the "nodeid < 6" group
	// in the paper's Figure 9 discussion).
	QuietMotes int
}

// DefaultLabConfig mirrors the paper's deployment scale.
func DefaultLabConfig() LabConfig {
	return LabConfig{Motes: 45, Rows: 400_000, Seed: 1, QuietMotes: 6}
}

// Lab domain sizes. Light/temp/humidity are discretized to 32 bins,
// comfortably finer than the SPSF grids the planners use.
const (
	labLightK = 32
	labTempK  = 32
	labHumK   = 32
	labVoltK  = 16
)

// LabSchema returns the 6-attribute lab schema. Attribute order:
// hour, nodeid, voltage (cheap); light, temp, humidity (expensive).
func LabSchema(cfg LabConfig) *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 24, Cost: CheapCost},
		schema.Attribute{Name: "nodeid", K: cfg.Motes, Cost: CheapCost},
		schema.Attribute{Name: "voltage", K: labVoltK, Cost: CheapCost,
			Disc: schema.MustDiscretizer(2.0, 3.2, labVoltK)},
		schema.Attribute{Name: "light", K: labLightK, Cost: ExpensiveCost,
			Disc: schema.MustDiscretizer(0, 1000, labLightK)},
		schema.Attribute{Name: "temp", K: labTempK, Cost: ExpensiveCost,
			Disc: schema.MustDiscretizer(10, 40, labTempK)},
		schema.Attribute{Name: "humidity", K: labHumK, Cost: ExpensiveCost,
			Disc: schema.MustDiscretizer(10, 70, labHumK)},
	)
}

// Lab attribute indexes in the schema returned by LabSchema.
const (
	LabHour = iota
	LabNodeID
	LabVoltage
	LabLight
	LabTemp
	LabHumidity
)

// Lab generates the simulated lab dataset. Rows are emitted in time
// order (all motes for epoch 0, then epoch 1, ...), so table.Split yields
// the paper's non-overlapping train/test time windows.
func Lab(cfg LabConfig) *table.Table {
	if cfg.Motes <= 0 || cfg.Rows <= 0 {
		panic("datagen: lab config must have positive Motes and Rows")
	}
	s := LabSchema(cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))
	tbl := table.New(s, cfg.Rows)

	// Per-mote biases: position in the building shifts temperature and
	// light; a battery started at a random charge level.
	tempBias := make([]float64, cfg.Motes)
	lightBias := make([]float64, cfg.Motes)
	battery := make([]float64, cfg.Motes)
	for m := 0; m < cfg.Motes; m++ {
		tempBias[m] = noise(rng, 1.5)
		lightBias[m] = noise(rng, 40)
		battery[m] = 3.0 + rng.Float64()*0.2
	}

	epochs := (cfg.Rows + cfg.Motes - 1) / cfg.Motes
	row := make([]schema.Value, s.NumAttrs())
	emitted := 0
	epochsPerDay := 720 // one reading every two minutes
	if epochs < epochsPerDay {
		// Small datasets still cover at least one full diurnal cycle, so
		// every hour of day appears in the data.
		epochsPerDay = epochs
	}
	for e := 0; e < epochs && emitted < cfg.Rows; e++ {
		dayFrac := float64(e%epochsPerDay) / float64(epochsPerDay)
		hour := int(dayFrac * 24)
		// Outside brightness: dark before ~6am and after ~4pm (hours 0-5
		// and 16-23 in the paper's Figure 1), with a smooth daylight hump.
		daylight := 0.0
		if dayFrac > 0.25 && dayFrac < 0.67 {
			daylight = math.Sin((dayFrac - 0.25) / 0.42 * math.Pi)
		}
		// Whether the lab is occupied: always possible during work hours,
		// occasionally late into the night (someone working late) — but
		// never in the quiet section.
		lateWork := rng.Float64() < 0.25
		// HVAC runs during the day, holding humidity down and temperature
		// up; at night it is off and humidity drifts up (Figure 9).
		hvacOn := hour >= 7 && hour <= 18
		weather := noise(rng, 1.0)

		for m := 0; m < cfg.Motes && emitted < cfg.Rows; m++ {
			occupied := hvacOn || (lateWork && m >= cfg.QuietMotes)
			light := 30 + 650*daylight + lightBias[m]
			if occupied {
				light += 250 // overhead lights on
			}
			light = clamp(light+noise(rng, 30), 0, 1000)

			temp := 18 + 6*daylight + tempBias[m] + weather
			if hvacOn {
				temp += 3
			}
			temp = clamp(temp+noise(rng, 0.8), 10, 40)

			hum := 45 - 0.6*(temp-20)
			if hvacOn {
				hum -= 12
			}
			hum = clamp(hum+noise(rng, 3), 10, 70)

			// Battery drains slowly; voltage sags in the cold.
			battery[m] -= 0.9 / float64(epochs*2)
			volt := clamp(battery[m]-0.004*(22-temp)+noise(rng, 0.01), 2.0, 3.2)

			row[LabHour] = schema.Value(hour)
			row[LabNodeID] = schema.Value(m)
			row[LabVoltage] = s.Attr(LabVoltage).Disc.Bin(volt)
			row[LabLight] = s.Attr(LabLight).Disc.Bin(light)
			row[LabTemp] = s.Attr(LabTemp).Disc.Bin(temp)
			row[LabHumidity] = s.Attr(LabHumidity).Disc.Bin(hum)
			tbl.MustAppendRow(row)
			emitted++
		}
	}
	return tbl
}

// Package datagen synthesizes the datasets of the paper's evaluation
// (Section 6). The original Lab and Garden mote traces are not publicly
// available, so this package generates statistical stand-ins that
// reproduce the correlation structure the paper describes and exploits:
//
//   - Lab: a single-building deployment where light and temperature follow
//     the hour of day, one group of nodes sits in a part of the lab unused
//     at night, and humidity tracks the HVAC schedule (Figures 1 and 9).
//   - Garden: a forest deployment of motes that all observe a shared
//     micro-climate, giving strong cross-mote correlations between cheap
//     attributes on one mote and expensive attributes on another.
//   - Synthetic: the generator of Babu et al. [2] exactly as specified in
//     Section 6 (n attributes in groups of Gamma+1, ~80% intra-group
//     agreement, per-attribute selectivity sel).
//
// All generators are deterministic given their seed.
package datagen

import "math/rand"

// clamp bounds v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// noise returns a Gaussian sample with the given standard deviation.
func noise(rng *rand.Rand, std float64) float64 { return rng.NormFloat64() * std }

// ExpensiveCost and CheapCost are the acquisition costs the paper assigns:
// 100 units for sensor transducers (light, temperature, humidity), 1 unit
// for locally available attributes (time, node id, battery voltage).
const (
	ExpensiveCost = 100
	CheapCost     = 1
)

package chaos

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newServer returns a test server that answers every request with a
// fixed JSON body.
func newServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = io.WriteString(w, `{"ok":true,"payload":"0123456789abcdef0123456789abcdef"}`)
	}))
	t.Cleanup(srv.Close)
	return srv
}

// outcome classifies one request through a chaos transport.
type outcome struct {
	kind  string // "ok", "drop", "5xx", "trunc", "partition", "err"
	body  string
	delay time.Duration
}

// drive sends n GET requests through a fresh transport configured with
// rule r against srv, recording each outcome. The sleep recorder keeps
// injected delays observable without waiting.
func drive(t *testing.T, srv *httptest.Server, seed uint64, r Rule, n int) []outcome {
	t.Helper()
	var mu sync.Mutex
	var lastDelay time.Duration
	tr := New(Config{
		Seed: seed,
		Self: "http://self.test",
		Sleep: func(d time.Duration) {
			mu.Lock()
			lastDelay = d
			mu.Unlock()
		},
	})
	if err := tr.SetDefault(r); err != nil {
		t.Fatalf("SetDefault: %v", err)
	}
	client := &http.Client{Transport: tr}
	outs := make([]outcome, 0, n)
	for i := 0; i < n; i++ {
		mu.Lock()
		lastDelay = 0
		mu.Unlock()
		var o outcome
		resp, err := client.Get(srv.URL + "/plan")
		switch {
		case err != nil:
			var ce *Error
			if errors.As(err, &ce) {
				o.kind = ce.Op
			} else {
				o.kind = "err"
			}
			o.body = errString(err)
		case resp.StatusCode >= 500:
			o.kind = "5xx"
			b, _ := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			o.body = resp.Status + " " + string(b)
		default:
			b, rerr := io.ReadAll(resp.Body)
			_ = resp.Body.Close()
			o.body = string(b)
			if rerr != nil || len(b) < 32 {
				o.kind = "trunc"
			} else {
				o.kind = "ok"
			}
		}
		mu.Lock()
		o.delay = lastDelay
		mu.Unlock()
		outs = append(outs, o)
	}
	return outs
}

// errString strips the url.Error wrapper's ephemeral port so replayed
// sequences compare equal across runs against different servers.
func errString(err error) string {
	var ce *Error
	if errors.As(err, &ce) {
		return "chaos: " + ce.Op
	}
	return err.Error()
}

func TestReplayBitIdentical(t *testing.T) {
	srv := newServer(t)
	rule := Rule{PDrop: 0.2, P5xx: 0.2, PTruncate: 0.3, Latency: time.Millisecond, LatencyJitter: 4 * time.Millisecond}
	a := drive(t, srv, 42, rule, 200)
	b := drive(t, srv, 42, rule, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d diverged across replays:\n  a=%+v\n  b=%+v", i, a[i], b[i])
		}
	}
	// A different seed must produce a different sequence (astronomically
	// unlikely to collide over 200 draws with these rates).
	c := drive(t, srv, 43, rule, 200)
	same := 0
	for i := range a {
		if a[i].kind == c[i].kind {
			same++
		}
	}
	if same == len(a) {
		t.Fatalf("seed 42 and 43 produced identical outcome sequences")
	}
	// Sanity: all fault modes actually fired at these rates.
	counts := map[string]int{}
	for _, o := range a {
		counts[o.kind]++
	}
	for _, kind := range []string{"ok", "drop", "5xx", "trunc"} {
		if counts[kind] == 0 {
			t.Fatalf("mode %q never fired over 200 requests: %v", kind, counts)
		}
	}
}

// TestReplayConcurrent pins that per-destination decisions are a pure
// function of the sequence number: firing the same 64 requests from 8
// goroutines yields the same multiset of outcomes as the serial run,
// regardless of interleaving. Run under -race in CI.
func TestReplayConcurrent(t *testing.T) {
	srv := newServer(t)
	rule := Rule{PDrop: 0.3, P5xx: 0.3}
	serial := drive(t, srv, 7, rule, 64)
	want := map[string]int{}
	for _, o := range serial {
		want[o.kind]++
	}

	tr := New(Config{Seed: 7, Self: "http://self.test", Sleep: func(time.Duration) {}})
	if err := tr.SetDefault(rule); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	got := map[string]int{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				kind := "ok"
				resp, err := client.Get(srv.URL + "/plan")
				if err != nil {
					var ce *Error
					if errors.As(err, &ce) {
						kind = ce.Op
					} else {
						kind = "err"
					}
				} else {
					if resp.StatusCode >= 500 {
						kind = "5xx"
					}
					_, _ = io.Copy(io.Discard, resp.Body)
					_ = resp.Body.Close()
				}
				mu.Lock()
				got[kind]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for kind, n := range want {
		if got[kind] != n {
			t.Fatalf("outcome multiset diverged: serial=%v concurrent=%v", want, got)
		}
	}
}

func TestPassthroughWhenInactive(t *testing.T) {
	srv := newServer(t)
	outs := drive(t, srv, 99, Rule{}, 20)
	for i, o := range outs {
		if o.kind != "ok" || o.delay != 0 {
			t.Fatalf("request %d perturbed by inactive rule: %+v", i, o)
		}
	}
	// The zero rule must not consume sequence numbers either: enabling
	// chaos after a passthrough phase starts the decision stream at 0.
	tr := New(Config{Seed: 5, Self: "a", Sleep: func(time.Duration) {}})
	client := &http.Client{Transport: tr}
	for i := 0; i < 10; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
	if got := tr.Snapshot(); got.Passed != 10 || got.Dropped+got.Injected+got.Truncated+got.Blocked != 0 {
		t.Fatalf("passthrough stats off: %+v", got)
	}
}

func TestPartitionDirectional(t *testing.T) {
	srv := newServer(t)
	tr := New(Config{Seed: 1, Self: "http://a.test"})
	client := &http.Client{Transport: tr}
	to := strings.TrimSuffix(srv.URL, "/")

	tr.Partition(to)
	_, err := client.Get(srv.URL + "/x")
	var ce *Error
	if !errors.As(err, &ce) || ce.Op != "partition" {
		t.Fatalf("want partition error, got %v", err)
	}
	// Unrelated destinations are unaffected by the partition.
	other := newServer(t)
	resp, err := client.Get(other.URL)
	if err != nil {
		t.Fatalf("partition leaked to unrelated destination: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()

	tr.Heal(to)
	resp, err = client.Get(srv.URL + "/x")
	if err != nil {
		t.Fatalf("heal did not reopen the link: %v", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if got := tr.Snapshot(); got.Blocked != 1 {
		t.Fatalf("blocked counter = %d, want 1", got.Blocked)
	}
}

func TestSyntheticErrorShape(t *testing.T) {
	srv := newServer(t)
	tr := New(Config{Seed: 3, Self: "http://a.test"})
	if err := tr.SetRule(strings.TrimSuffix(srv.URL, "/"), Rule{P5xx: 1, Status: 503}); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Chaos") != "injected" {
		t.Fatalf("missing X-Chaos marker: %v", resp.Header)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "injected 503") {
		t.Fatalf("body = %q", b)
	}
}

func TestTruncationKeepsShortPrefix(t *testing.T) {
	srv := newServer(t)
	tr := New(Config{Seed: 8, Self: "http://a.test"})
	if err := tr.SetDefault(Rule{PTruncate: 1}); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: tr}
	for i := 0; i < 16; i++ {
		resp, err := client.Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if len(b) >= 32 {
			t.Fatalf("request %d: truncated body kept %d bytes, want < 32", i, len(b))
		}
	}
	if got := tr.Snapshot(); got.Truncated != 16 {
		t.Fatalf("truncated counter = %d, want 16", got.Truncated)
	}
}

func TestRuleValidation(t *testing.T) {
	tr := New(Config{})
	bad := []Rule{
		{PDrop: -0.1},
		{P5xx: 1.5},
		{PTruncate: 2},
		{P5xx: 0.5, Status: 404},
		{Latency: -time.Second},
	}
	for i, r := range bad {
		if err := tr.SetDefault(r); err == nil {
			t.Fatalf("rule %d (%+v) accepted, want error", i, r)
		}
		if err := tr.SetRule("http://x", r); err == nil {
			t.Fatalf("rule %d (%+v) accepted by SetRule, want error", i, r)
		}
	}
	if err := tr.SetDefault(Rule{PDrop: 0.5, P5xx: 0.5, PTruncate: 0.5, Status: 599}); err != nil {
		t.Fatalf("valid rule rejected: %v", err)
	}
}

// TestRequestBodyClosedOnInjection pins the RoundTripper contract: the
// request body must be closed even when the request never goes out.
func TestRequestBodyClosedOnInjection(t *testing.T) {
	srv := newServer(t)
	to := strings.TrimSuffix(srv.URL, "/")
	for name, setup := range map[string]func(*Transport){
		"drop":      func(tr *Transport) { _ = tr.SetRule(to, Rule{PDrop: 1}) },
		"5xx":       func(tr *Transport) { _ = tr.SetRule(to, Rule{P5xx: 1}) },
		"partition": func(tr *Transport) { tr.Partition(to) },
	} {
		tr := New(Config{Seed: 2, Self: "http://a.test"})
		setup(tr)
		body := &closeTracker{Reader: strings.NewReader(`{"q":1}`)}
		req, err := http.NewRequest(http.MethodPost, srv.URL, body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := tr.RoundTrip(req)
		if resp != nil {
			_ = resp.Body.Close()
		}
		_ = err
		if !body.closed {
			t.Fatalf("%s: request body not closed", name)
		}
	}
}

type closeTracker struct {
	io.Reader
	closed bool
}

func (c *closeTracker) Close() error {
	c.closed = true
	return nil
}

// TestLatencyDeterministic pins that injected delays (fixed + jitter)
// replay exactly for the same seed.
func TestLatencyDeterministic(t *testing.T) {
	srv := newServer(t)
	rule := Rule{Latency: 2 * time.Millisecond, LatencyJitter: 6 * time.Millisecond}
	a := drive(t, srv, 11, rule, 32)
	b := drive(t, srv, 11, rule, 32)
	sawJitter := false
	for i := range a {
		if a[i].delay != b[i].delay {
			t.Fatalf("request %d delay diverged: %v vs %v", i, a[i].delay, b[i].delay)
		}
		if a[i].delay < 2*time.Millisecond || a[i].delay >= 8*time.Millisecond {
			t.Fatalf("request %d delay %v outside [2ms, 8ms)", i, a[i].delay)
		}
		if a[i].delay != 2*time.Millisecond {
			sawJitter = true
		}
	}
	if !sawJitter {
		t.Fatal("jitter never varied the delay over 32 requests")
	}
}

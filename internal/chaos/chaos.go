// Package chaos provides deterministic, seedable network fault
// injection for the planning cluster: an http.RoundTripper wrapper
// that injects per-destination latency, dropped requests, synthetic
// 5xx responses, truncated response bodies, and directional
// partitions, replayable bit-for-bit from a seed.
//
// The discipline mirrors internal/fault: every probabilistic decision
// is a pure hash of (seed, from, to, request#, stream) through the
// counter-based splitmix64 finalizer — no math/rand, no mutable
// generator state, and no wall-clock reads (the chaosdet acqlint scope
// enforces both statically). The only per-destination state is a
// monotonic request counter, so the n-th request on a given (from, to)
// pair always receives the same injection decision for the same seed,
// regardless of goroutine interleaving elsewhere. Partitions are not
// probabilistic at all: they are explicit directional rules the test
// harness flips, so a partition schedule replays exactly.
//
// Latency injection goes through an injected Sleep function (default
// time.Sleep); deterministic tests substitute a recorder and observe
// the exact injected delays without waiting them out.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Rule configures the probabilistic faults injected on one
// (self, destination) link. The zero value injects nothing.
type Rule struct {
	// PDrop is the probability a request is dropped before reaching the
	// destination: the caller sees a transport error, the peer sees
	// nothing.
	PDrop float64
	// P5xx is the probability the transport answers with a synthetic
	// server error (Status below) without contacting the peer — a
	// misbehaving middlebox or a peer crash mid-accept.
	P5xx float64
	// Status is the synthetic error's HTTP status. Default 502.
	Status int
	// PTruncate is the probability a successfully returned response has
	// its body cut short mid-stream, so the caller reads valid headers
	// and then garbage-length JSON.
	PTruncate float64
	// Latency is the fixed extra delay injected before the request is
	// sent; LatencyJitter adds a seed-deterministic uniform extra in
	// [0, LatencyJitter).
	Latency       time.Duration
	LatencyJitter time.Duration
}

// active reports whether the rule can ever perturb a request.
func (r Rule) active() bool {
	return r.PDrop > 0 || r.P5xx > 0 || r.PTruncate > 0 || r.Latency > 0 || r.LatencyJitter > 0
}

// validate checks the probabilities.
func (r Rule) validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"PDrop", r.PDrop}, {"P5xx", r.P5xx}, {"PTruncate", r.PTruncate}} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %g outside [0,1]", p.name, p.v)
		}
	}
	if r.Status != 0 && (r.Status < 500 || r.Status > 599) {
		return fmt.Errorf("chaos: synthetic status %d outside 5xx", r.Status)
	}
	if r.Latency < 0 || r.LatencyJitter < 0 {
		return fmt.Errorf("chaos: negative latency")
	}
	return nil
}

// Config parameterizes a Transport.
type Config struct {
	// Seed drives every probabilistic decision. Default 1.
	Seed uint64
	// Self identifies the from-side of every link this transport
	// carries (the owning node's advertised URL); it is folded into the
	// decision hash so two nodes with the same seed make independent
	// draws. Required for multi-node setups; "" is a valid single-node
	// identity.
	Self string
	// Next performs the real exchanges. Default http.DefaultTransport.
	Next http.RoundTripper
	// Sleep implements injected latency. Default time.Sleep; tests
	// substitute a recorder to observe delays without waiting.
	Sleep func(time.Duration)
}

// Stats is a point-in-time snapshot of the transport's injection
// counters.
type Stats struct {
	Requests  int64 // requests entering the transport
	Passed    int64 // requests forwarded unperturbed
	Dropped   int64 // requests dropped (transport error)
	Injected  int64 // synthetic 5xx responses returned
	Truncated int64 // response bodies cut short
	Delayed   int64 // requests that paid injected latency
	Blocked   int64 // requests refused by a directional partition
}

// Error is the transport error injected for drops and partitions. It
// satisfies net.Error's Timeout contract (never a timeout) so callers
// treat it like any other connection failure.
type Error struct {
	Op   string // "drop" or "partition"
	From string
	To   string
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: %s %s -> %s", e.Op, e.From, e.To)
}

// Timeout implements net.Error.
func (e *Error) Timeout() bool { return false }

// Temporary implements the legacy net.Error method: injected failures
// are transient by construction.
func (e *Error) Temporary() bool { return true }

// Transport is the chaos-injecting http.RoundTripper. It is safe for
// concurrent use; rule and partition mutation may race with in-flight
// requests (each request reads one consistent snapshot).
type Transport struct {
	seed  uint64
	self  string
	next  http.RoundTripper
	sleep func(time.Duration)

	mu          sync.Mutex
	defaultRule Rule
	rules       map[string]Rule // keyed by destination base URL
	partitioned map[string]bool // directional: self -> destination blocked
	seq         map[string]*atomic.Uint64

	requests  atomic.Int64
	passed    atomic.Int64
	dropped   atomic.Int64
	injected  atomic.Int64
	truncated atomic.Int64
	delayed   atomic.Int64
	blocked   atomic.Int64
}

// New builds a Transport with no rules: until a rule or partition is
// installed, it is a pure passthrough.
func New(cfg Config) *Transport {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Next == nil {
		cfg.Next = http.DefaultTransport
	}
	if cfg.Sleep == nil {
		cfg.Sleep = time.Sleep
	}
	return &Transport{
		seed:        cfg.Seed,
		self:        cfg.Self,
		next:        cfg.Next,
		sleep:       cfg.Sleep,
		rules:       make(map[string]Rule),
		partitioned: make(map[string]bool),
		seq:         make(map[string]*atomic.Uint64),
	}
}

// SetDefault installs the rule applied to every destination without a
// specific rule.
func (t *Transport) SetDefault(r Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	t.mu.Lock()
	t.defaultRule = r
	t.mu.Unlock()
	return nil
}

// SetRule installs a rule for one destination base URL
// (scheme://host:port, no trailing slash), overriding the default.
func (t *Transport) SetRule(to string, r Rule) error {
	if err := r.validate(); err != nil {
		return err
	}
	t.mu.Lock()
	t.rules[to] = r
	t.mu.Unlock()
	return nil
}

// Partition blocks the directional link self -> to: every request to
// that destination fails with a partition Error until Heal. The reverse
// direction is untouched — partition the peer's transport to cut both.
func (t *Transport) Partition(to string) {
	t.mu.Lock()
	t.partitioned[to] = true
	t.mu.Unlock()
}

// Heal reopens the directional link self -> to.
func (t *Transport) Heal(to string) {
	t.mu.Lock()
	delete(t.partitioned, to)
	t.mu.Unlock()
}

// HealAll reopens every partitioned link.
func (t *Transport) HealAll() {
	t.mu.Lock()
	t.partitioned = make(map[string]bool)
	t.mu.Unlock()
}

// Snapshot returns the current injection counters.
func (t *Transport) Snapshot() Stats {
	return Stats{
		Requests:  t.requests.Load(),
		Passed:    t.passed.Load(),
		Dropped:   t.dropped.Load(),
		Injected:  t.injected.Load(),
		Truncated: t.truncated.Load(),
		Delayed:   t.delayed.Load(),
		Blocked:   t.blocked.Load(),
	}
}

// CloseIdleConnections forwards to the wrapped transport so
// http.Client.CloseIdleConnections keeps working through the wrapper.
func (t *Transport) CloseIdleConnections() {
	if c, ok := t.next.(interface{ CloseIdleConnections() }); ok {
		c.CloseIdleConnections()
	}
}

// Draw streams: independent uniform variates for one request are
// obtained by hashing with distinct stream tags.
const (
	streamDrop  = 0x0d40f
	streamErr   = 0x5e77a
	streamTrunc = 0x7c0de
	streamLat   = 0x1a7e1
)

// decision is one request's resolved injection plan, fully determined
// by (seed, self, destination, request#) and the active rule.
type decision struct {
	drop     bool
	inject   bool // synthetic 5xx
	status   int  // status when inject
	truncate bool
	truncAt  int           // bytes kept when truncate
	delay    time.Duration // injected latency (0 = none)
}

// decide computes the injection decision for request number n (0-based)
// on the link self -> to under rule r. It is a pure function; the
// Transport's only job is to assign n monotonically per destination.
func (t *Transport) decide(to string, n uint64, r Rule) decision {
	var d decision
	pair := fnv64a(t.self) ^ splitmix64(fnv64a(to))
	if r.PDrop > 0 && u01(t.seed, pair, n, streamDrop) < r.PDrop {
		d.drop = true
		return d
	}
	if r.P5xx > 0 && u01(t.seed, pair, n, streamErr) < r.P5xx {
		d.inject = true
		d.status = r.Status
		if d.status == 0 {
			d.status = http.StatusBadGateway
		}
		return d
	}
	if r.Latency > 0 || r.LatencyJitter > 0 {
		d.delay = r.Latency
		if r.LatencyJitter > 0 {
			d.delay += time.Duration(u01(t.seed, pair, n, streamLat) * float64(r.LatencyJitter))
		}
	}
	if r.PTruncate > 0 && u01(t.seed, pair, n, streamTrunc) < r.PTruncate {
		d.truncate = true
		// Keep at most 31 bytes: enough to look like a response started,
		// never enough to be a parseable planning payload.
		d.truncAt = int(u01(t.seed, pair, n, streamTrunc^0xffff) * 32)
	}
	return d
}

// link snapshots the state relevant to one request: the rule for the
// destination, whether the link is partitioned, and — when the rule is
// active — the request's sequence number on this link. Inactive links
// do not consume sequence numbers, so enabling chaos later does not
// shift the decision stream by however many passthrough requests
// happened first.
func (t *Transport) link(to string) (Rule, bool, uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.rules[to]
	if !ok {
		r = t.defaultRule
	}
	if t.partitioned[to] {
		return r, true, 0
	}
	if !r.active() {
		return r, false, 0
	}
	s := t.seq[to]
	if s == nil {
		s = new(atomic.Uint64)
		t.seq[to] = s
	}
	return r, false, s.Add(1) - 1
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	to := req.URL.Scheme + "://" + req.URL.Host
	rule, blocked, n := t.link(to)
	if blocked {
		t.blocked.Add(1)
		closeBody(req)
		return nil, &Error{Op: "partition", From: t.self, To: to}
	}
	if !rule.active() {
		t.passed.Add(1)
		return t.next.RoundTrip(req)
	}
	d := t.decide(to, n, rule)
	switch {
	case d.drop:
		t.dropped.Add(1)
		closeBody(req)
		return nil, &Error{Op: "drop", From: t.self, To: to}
	case d.inject:
		t.injected.Add(1)
		closeBody(req)
		return syntheticResponse(req, d.status), nil
	}
	if d.delay > 0 {
		t.delayed.Add(1)
		t.sleep(d.delay)
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if d.truncate {
		t.truncated.Add(1)
		resp.Body = &truncatedBody{r: io.LimitReader(resp.Body, int64(d.truncAt)), c: resp.Body}
	} else {
		t.passed.Add(1)
	}
	return resp, nil
}

// closeBody honors the RoundTripper contract: the request body must be
// closed even when the request never goes out.
func closeBody(req *http.Request) {
	if req.Body != nil {
		_ = req.Body.Close()
	}
}

// syntheticResponse builds the injected server error. The body is a
// small JSON document and the X-Chaos header marks the response as
// injected, so logs and tests can tell it from a real peer error.
func syntheticResponse(req *http.Request, status int) *http.Response {
	body := fmt.Sprintf("{\"error\":\"chaos: injected %d\"}", status)
	h := make(http.Header)
	h.Set("Content-Type", "application/json")
	h.Set("X-Chaos", "injected")
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody cuts the response stream short while still closing the
// real body, so the caller sees a clean EOF mid-payload and the
// underlying connection is released.
type truncatedBody struct {
	r io.Reader
	c io.Closer
}

func (b *truncatedBody) Read(p []byte) (int, error) { return b.r.Read(p) }
func (b *truncatedBody) Close() error               { return b.c.Close() }

// fnv64a is FNV-1a over the string bytes.
func fnv64a(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a high-quality 64-bit
// bijection.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps (seed, pair, n, stream) to a uniform float64 in [0,1): 53
// random bits scaled by 2^-53.
func u01(seed, pair, n uint64, stream uint64) float64 {
	h := splitmix64(seed ^ splitmix64(pair))
	h = splitmix64(h ^ n)
	h = splitmix64(h ^ stream)
	return float64(h>>11) / (1 << 53)
}

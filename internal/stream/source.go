package stream

import (
	"acqp/internal/exec"
	"acqp/internal/schema"
)

// Source adapts the window to the executor: it yields the window's
// current contents in the same order Materialize would, batch by batch,
// without building a table (no per-column storage, no append
// validation, no statistics). The ring contents are snapshotted at
// creation — callers lock only around the Source call itself, not the
// whole execution, and tuples pushed afterwards are not picked up
// mid-run. batchSize <= 0 selects the executor's default.
func (w *Window) Source(batchSize int) exec.RowSource {
	na := w.s.NumAttrs()
	n := w.n
	snap := append([]schema.Value(nil), w.rows[:n*na]...)
	i := 0
	return exec.NewFuncSource(na, batchSize, func(dst []schema.Value) (bool, error) {
		if i >= n {
			return false, nil
		}
		copy(dst, snap[i*na:(i+1)*na])
		i++
		return true, nil
	})
}

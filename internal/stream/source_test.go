package stream

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"acqp/internal/exec"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// planFor builds a small conditional plan for the test data.
func planFor(t *testing.T, s *schema.Schema, q query.Query, tbl *table.Table) *plan.Node {
	t.Helper()
	g := opt.Greedy{SPSF: opt.FullSPSF(s), MaxSplits: 3, Base: opt.SeqOpt}
	p, _ := g.Plan(context.Background(), stats.NewEmpirical(tbl), q)
	return p
}

// TestWindowSourceMatchesMaterialize pins the window adapter's contract:
// executing a plan over Window.Source yields a byte-identical Result to
// materializing the window into a table first, including after the ring
// has wrapped.
func TestWindowSourceMatchesMaterialize(t *testing.T) {
	s := streamSchema()
	q := streamQuery(s)
	rng := rand.New(rand.NewSource(7))
	w, err := NewWindow(s, 100)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]schema.Value, s.NumAttrs())
	for i := 0; i < 250; i++ { // 2.5x capacity: the ring wraps twice
		for a := range row {
			row[a] = schema.Value(rng.Intn(s.K(a)))
		}
		w.Push(row)
	}
	p := planFor(t, s, q, w.Materialize())
	want := mustExecute(t, s, p, q, w.Materialize())
	for _, batch := range []int{0, 1, 7, 64, 1024} {
		got, err := exec.Execute(context.Background(), exec.Request{
			Schema: s, Plan: p, Query: q,
			Options: exec.Options{Source: w.Source(batch)},
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("batch %d: window source result %+v != materialized %+v", batch, got, want)
		}
	}
}

// TestWindowSourceSnapshotsLength pins that a source created before new
// pushes does not see them.
func TestWindowSourceSnapshotsLength(t *testing.T) {
	s := streamSchema()
	w, err := NewWindow(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]schema.Value, s.NumAttrs())
	for i := 0; i < 4; i++ {
		w.Push(row)
	}
	src := w.Source(0)
	for i := 0; i < 3; i++ {
		w.Push(row)
	}
	n := 0
	for {
		b, k, err := src.Next()
		if err != nil {
			t.Fatal(err)
		}
		if k == 0 {
			break
		}
		n += b.Len()
	}
	if n != 4 {
		t.Errorf("source yielded %d rows, want the 4 present at creation", n)
	}
}

package stream

import (
	"context"
	"math/rand"
	"testing"

	"acqp/internal/exec"
	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// mustExecute runs a plan over a table through the unified executor.
func mustExecute(t *testing.T, s *schema.Schema, p *plan.Node, q query.Query, tbl *table.Table) exec.Result {
	t.Helper()
	res, err := exec.Execute(context.Background(), exec.Request{
		Schema: s, Plan: p, Query: q,
		Options: exec.Options{Source: exec.NewTableSource(tbl, 0)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func streamSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "hour", K: 2, Cost: 0},
		schema.Attribute{Name: "a", K: 2, Cost: 10},
		schema.Attribute{Name: "b", K: 2, Cost: 10},
	)
}

func streamQuery(s *schema.Schema) query.Query {
	return query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
	)
}

// phaseTuple draws a tuple from one of two regimes. In phase 0, predicate
// a is selective at night (the Figure 2 world); in phase 1 the
// correlation flips: a is selective during the day.
func phaseTuple(rng *rand.Rand, phase int) []schema.Value {
	h := schema.Value(rng.Intn(2))
	sel := h // phase 0: a passes mostly when h=1
	if phase == 1 {
		sel = 1 - h
	}
	a := sel
	if rng.Float64() < 0.1 {
		a = 1 - a
	}
	b := 1 - sel
	if rng.Float64() < 0.1 {
		b = 1 - b
	}
	return []schema.Value{h, a, b}
}

func phaseTable(s *schema.Schema, n int, phase int, seed int64) *table.Table {
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(s, n)
	for i := 0; i < n; i++ {
		tbl.MustAppendRow(phaseTuple(rng, phase))
	}
	return tbl
}

func TestWindowBasics(t *testing.T) {
	s := streamSchema()
	w, err := NewWindow(s, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewWindow(s, 0); err == nil {
		t.Error("zero capacity accepted")
	}
	w.Push([]schema.Value{0, 0, 0})
	w.Push([]schema.Value{1, 1, 1})
	if w.Len() != 2 {
		t.Fatalf("Len = %d", w.Len())
	}
	w.Push([]schema.Value{0, 1, 0})
	w.Push([]schema.Value{1, 0, 1}) // evicts the first
	if w.Len() != 3 {
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	tbl := w.Materialize()
	if tbl.NumRows() != 3 {
		t.Fatalf("materialized %d rows", tbl.NumRows())
	}
	// The evicted tuple {0,0,0} must be gone.
	for r := 0; r < 3; r++ {
		row := tbl.Row(r, nil)
		if row[0] == 0 && row[1] == 0 && row[2] == 0 {
			t.Error("evicted tuple still present")
		}
	}
}

func TestAdaptiveStationaryStreamDoesNotReplan(t *testing.T) {
	s := streamSchema()
	q := streamQuery(s)
	hist := phaseTable(s, 2000, 0, 1)
	a, err := NewAdaptive(s, q, hist, Config{WindowSize: 1000, DriftThreshold: 0.12})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 4000; i++ {
		a.Process(phaseTuple(rng, 0))
	}
	if a.Replans() != 0 {
		t.Errorf("stationary stream triggered %d replans", a.Replans())
	}
	if a.Processed() != 4000 {
		t.Errorf("Processed = %d", a.Processed())
	}
}

func TestAdaptiveDetectsDriftAndRecovers(t *testing.T) {
	s := streamSchema()
	q := streamQuery(s)
	hist := phaseTable(s, 2000, 0, 3)
	cfg := Config{WindowSize: 800, MinReplanInterval: 200, DriftThreshold: 0.1, MaxSplits: 3}
	a, err := NewAdaptive(s, q, hist, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Static baseline: the phase-0 plan frozen forever.
	frozen := a.Plan()

	rng := rand.New(rand.NewSource(4))
	// Phase 0 traffic, then an abrupt regime change to phase 1.
	for i := 0; i < 2000; i++ {
		a.Process(phaseTuple(rng, 0))
	}
	for i := 0; i < 6000; i++ {
		a.Process(phaseTuple(rng, 1))
	}
	if a.Replans() == 0 {
		t.Fatal("drift never detected")
	}

	// After adaptation, the adaptive plan must beat the frozen plan on
	// phase-1 data.
	test := phaseTable(s, 4000, 1, 5)
	frozenRes := mustExecute(t, s, frozen, q, test)
	adaptedRes := mustExecute(t, s, a.Plan(), q, test)
	if adaptedRes.Mismatches != 0 || frozenRes.Mismatches != 0 {
		t.Fatal("plans mismatch ground truth")
	}
	if adaptedRes.MeanCost() >= frozenRes.MeanCost() {
		t.Errorf("adapted plan (%.2f) not cheaper than frozen plan (%.2f) after drift",
			adaptedRes.MeanCost(), frozenRes.MeanCost())
	}
}

func TestAdaptiveMatchesStaticPlannerQuality(t *testing.T) {
	// On a stationary stream, the adaptive executor's per-tuple cost must
	// track a statically planned Heuristic over the same data.
	s := streamSchema()
	q := streamQuery(s)
	hist := phaseTable(s, 2000, 0, 6)
	a, err := NewAdaptive(s, q, hist, Config{WindowSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	g := opt.Greedy{SPSF: opt.FullSPSF(s), MaxSplits: 5, Base: opt.SeqOpt}
	static, _ := g.Plan(context.Background(), stats.NewEmpirical(hist), q)

	test := phaseTable(s, 3000, 0, 7)
	var row []schema.Value
	for r := 0; r < test.NumRows(); r++ {
		row = test.Row(r, row)
		a.Process(row)
	}
	staticRes := mustExecute(t, s, static, q, test)
	if a.MeanCost() > staticRes.MeanCost()*1.1 {
		t.Errorf("adaptive cost %.2f far above static %.2f on stationary data",
			a.MeanCost(), staticRes.MeanCost())
	}
	if a.Selected() != staticRes.Selected {
		t.Errorf("adaptive selected %d, static %d", a.Selected(), staticRes.Selected)
	}
}

func TestNewAdaptiveRequiresHistory(t *testing.T) {
	s := streamSchema()
	q := streamQuery(s)
	if _, err := NewAdaptive(s, q, table.New(s, 0), Config{}); err == nil {
		t.Error("empty history accepted")
	}
}

// TestAdaptiveHonorsConfigCtx pins the context-plumbing fix for the
// drift replanner: planning runs under Config.Ctx, so a cancelled owner
// context degrades the initial plan (and every replan) to the sequential
// seed instead of running a detached full planning pass. Before the fix
// freshPlan used context.Background() and planned splits regardless.
func TestAdaptiveHonorsConfigCtx(t *testing.T) {
	s := streamSchema()
	q := streamQuery(s)
	hist := phaseTable(s, 2000, 0, 5)

	// Sanity: with a live context the correlated world yields a split plan.
	live, err := NewAdaptive(s, q, hist, Config{WindowSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if live.Plan().NumSplits() == 0 {
		t.Fatal("live-context plan has no splits; the world is supposed to be correlated")
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	a, err := NewAdaptive(s, q, hist, Config{WindowSize: 1000, Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if n := a.Plan().NumSplits(); n != 0 {
		t.Errorf("cancelled-context plan has %d splits, want the sequential seed", n)
	}
}

// Package stream implements the "Queries over data streams" extension of
// Section 7 of the paper: when a continuous query runs over a stream
// whose distribution changes slowly, the probabilities of Section 5 are
// maintained incrementally over a sliding window of recent tuples, and
// the conditional plan is re-generated when the observed predicate
// selectivities drift away from the ones the current plan was built for.
package stream

import (
	"context"
	"fmt"

	"acqp/internal/opt"
	"acqp/internal/plan"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// Window is a sliding window of the most recent tuples, the incremental
// statistics store of Section 7 ("compute probabilities incrementally
// over a sliding window of data").
type Window struct {
	s    *schema.Schema
	cap  int
	rows []schema.Value // ring buffer, row-major
	n    int            // rows currently stored
	next int            // ring insertion index
}

// NewWindow creates a window holding up to capacity tuples.
func NewWindow(s *schema.Schema, capacity int) (*Window, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("stream: window capacity %d must be positive", capacity)
	}
	return &Window{s: s, cap: capacity, rows: make([]schema.Value, capacity*s.NumAttrs())}, nil
}

// Push adds a tuple, evicting the oldest when full.
func (w *Window) Push(row []schema.Value) {
	na := w.s.NumAttrs()
	copy(w.rows[w.next*na:(w.next+1)*na], row)
	w.next = (w.next + 1) % w.cap
	if w.n < w.cap {
		w.n++
	}
}

// Len returns the number of tuples currently held.
func (w *Window) Len() int { return w.n }

// Materialize copies the window contents into a table for planning. Order
// is not the arrival order (planning does not depend on it).
func (w *Window) Materialize() *table.Table {
	tbl := table.New(w.s, w.n)
	na := w.s.NumAttrs()
	for i := 0; i < w.n; i++ {
		tbl.MustAppendRow(w.rows[i*na : (i+1)*na])
	}
	return tbl
}

// Config tunes the adaptive executor.
type Config struct {
	// WindowSize is the number of recent tuples statistics are computed
	// over. Default 2000.
	WindowSize int
	// MinReplanInterval is the number of tuples between plan
	// re-evaluations, bounding planner overhead. Default WindowSize / 4.
	MinReplanInterval int
	// DriftThreshold is the relative expected-cost improvement a freshly
	// planned candidate must offer (under the current window) to replace
	// the running plan. Default 0.1 (10% cheaper). Marginal selectivities
	// are a poor drift signal — a flipped correlation can leave every
	// marginal untouched — so drift is measured on what actually matters:
	// the cost of the running plan versus the best plan for the data the
	// stream is carrying now.
	DriftThreshold float64
	// MaxSplits and SplitPoints configure the greedy planner.
	MaxSplits   int
	SplitPoints int
	// Ctx bounds every replanning run the executor starts. A caller
	// embedding the executor in a service should pass its lifecycle
	// context so shutdown interrupts mid-stream replans; nil means
	// context.Background() (replans are never interrupted).
	Ctx context.Context
}

func (c Config) withDefaults() Config {
	if c.WindowSize == 0 {
		c.WindowSize = 2000
	}
	if c.MinReplanInterval == 0 {
		c.MinReplanInterval = c.WindowSize / 4
	}
	if c.DriftThreshold == 0 {
		c.DriftThreshold = 0.1
	}
	if c.MaxSplits == 0 {
		c.MaxSplits = 5
	}
	if c.SplitPoints == 0 {
		c.SplitPoints = 8
	}
	if c.Ctx == nil {
		c.Ctx = context.Background() //acqlint:ignore ctxbg documented default when Config.Ctx is unset; callers opt in by leaving it nil
	}
	return c
}

// Adaptive executes a continuous query over a stream, replanning when the
// windowed predicate selectivities drift from the ones the current plan
// was trained on.
type Adaptive struct {
	s   *schema.Schema
	q   query.Query
	cfg Config

	window   *Window
	plan     *plan.Node
	plannedN int // tuples processed at last re-evaluation

	processed int
	acquired  []bool

	// Stats.
	totalCost float64
	selected  int
	replans   int
}

// NewAdaptive creates an adaptive executor seeded with historical data
// (used both to warm the window and to build the initial plan).
func NewAdaptive(s *schema.Schema, q query.Query, historical *table.Table, cfg Config) (*Adaptive, error) {
	cfg = cfg.withDefaults()
	w, err := NewWindow(s, cfg.WindowSize)
	if err != nil {
		return nil, err
	}
	a := &Adaptive{
		s: s, q: q, cfg: cfg, window: w,
		acquired: make([]bool, s.NumAttrs()),
	}
	var row []schema.Value
	start := historical.NumRows() - cfg.WindowSize
	if start < 0 {
		start = 0
	}
	for r := start; r < historical.NumRows(); r++ {
		row = historical.Row(r, row)
		w.Push(row)
	}
	if w.Len() == 0 {
		return nil, fmt.Errorf("stream: no historical data to build the initial plan")
	}
	a.plan, _ = a.freshPlan()
	return a, nil
}

// freshPlan builds the best conditional plan for the current window and
// returns it with its expected cost under the window distribution.
func (a *Adaptive) freshPlan() (*plan.Node, float64) {
	d := stats.NewEmpirical(a.window.Materialize())
	g := opt.Greedy{
		SPSF:      opt.UniformSPSFSame(a.s, a.cfg.SplitPoints),
		MaxSplits: a.cfg.MaxSplits,
		Base:      opt.SeqOpt,
	}
	// The configured lifecycle context, not a detached Background: the
	// greedy planner is anytime, so a cancelled context degrades the
	// replan to the sequential seed instead of burning planner time after
	// the owner has shut down.
	return g.Plan(a.cfg.Ctx, d, a.q)
}

// reevaluate compares the running plan against a freshly planned
// candidate under the current window and adopts the candidate if it is
// at least DriftThreshold cheaper — the "re-evaluate the plan and
// consider (greedy) modifications" loop of Section 7.
func (a *Adaptive) reevaluate() {
	a.plannedN = a.processed
	d := stats.NewEmpirical(a.window.Materialize())
	current := plan.ExpectedCostRoot(a.plan, d)
	fresh, freshCost := a.freshPlan()
	if freshCost < current*(1-a.cfg.DriftThreshold) {
		a.plan = fresh
		a.replans++
	}
}

// Process evaluates the query on one stream tuple, returning the result
// and the acquisition cost paid. The tuple joins the statistics window,
// and the plan is re-generated if the window has drifted and the replan
// interval has elapsed.
func (a *Adaptive) Process(row []schema.Value) (bool, float64) {
	for i := range a.acquired {
		a.acquired[i] = false
	}
	result, cost := a.plan.Execute(a.s, row, a.acquired)
	a.processed++
	a.totalCost += cost
	if result {
		a.selected++
	}
	a.window.Push(row)
	if a.processed-a.plannedN >= a.cfg.MinReplanInterval {
		a.reevaluate()
	}
	return result, cost
}

// Plan returns the executor's current plan.
func (a *Adaptive) Plan() *plan.Node { return a.plan }

// Replans returns how many times the plan has been re-generated since
// construction.
func (a *Adaptive) Replans() int { return a.replans }

// Processed returns the number of stream tuples evaluated.
func (a *Adaptive) Processed() int { return a.processed }

// MeanCost returns the average per-tuple acquisition cost so far.
func (a *Adaptive) MeanCost() float64 {
	if a.processed == 0 {
		return 0
	}
	return a.totalCost / float64(a.processed)
}

// Selected returns the number of tuples that satisfied the query.
func (a *Adaptive) Selected() int { return a.selected }

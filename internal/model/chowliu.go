package model

import (
	"math"
	"sort"

	"acqp/internal/floats"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// ChowLiu is a tree-shaped Bayesian network over the schema's attributes:
// the maximum-spanning-tree of pairwise mutual information, with
// Laplace-smoothed CPTs. It answers the planners' conditional probability
// queries by exact belief propagation over the tree in
// O(n * K^2) per conditioning context — independent of the training set
// size, and far more robust than raw counts once several conditioning
// splits have shrunk the support (the two problems Section 7 calls out).
type ChowLiu struct {
	s      *schema.Schema
	rows   float64
	root   int
	parent []int       // parent[v] = -1 for the root
	order  []int       // topological order (parents before children)
	prior  []float64   // P(X_root = v)
	cpt    [][]float64 // cpt[v][pv*K_v + cv] = P(X_v = cv | X_parent = pv); nil for root
}

// FitChowLiu learns the tree and its CPTs from the table with additive
// smoothing alpha. Degenerate inputs degrade instead of corrupting the
// model: a negative alpha is clamped to 0, and parent values with no
// support (including the empty table, which historically panicked here)
// get uniform CPT rows rather than 0/0 = NaN. Use Fit for validated
// fitting with typed errors.
func FitChowLiu(tbl *table.Table, alpha float64) *ChowLiu {
	s := tbl.Schema()
	n := s.NumAttrs()
	if alpha < 0 {
		alpha = 0
	}
	m := &ChowLiu{s: s, rows: float64(tbl.NumRows())}

	// Pairwise mutual information from smoothed joint histograms.
	type edge struct {
		a, b int
		mi   float64
	}
	edges := make([]edge, 0, n*(n-1)/2)
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			edges = append(edges, edge{a, b, mutualInformation(tbl, a, b, alpha)})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		// Strict float inequalities keep the order a valid strict weak
		// ordering; ties (bit-identical MI, common with symmetric data)
		// fall through to the deterministic index order.
		if edges[i].mi > edges[j].mi {
			return true
		}
		if edges[i].mi < edges[j].mi {
			return false
		}
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})

	// Kruskal maximum spanning tree.
	uf := newUnionFind(n)
	adj := make([][]int, n)
	for _, e := range edges {
		if uf.union(e.a, e.b) {
			adj[e.a] = append(adj[e.a], e.b)
			adj[e.b] = append(adj[e.b], e.a)
		}
	}

	// Root at attribute 0; BFS for parents and topological order.
	m.root = 0
	m.parent = make([]int, n)
	for i := range m.parent {
		m.parent[i] = -2 // unvisited
	}
	m.parent[m.root] = -1
	queue := []int{m.root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		m.order = append(m.order, v)
		for _, w := range adj[v] {
			if m.parent[w] == -2 {
				m.parent[w] = v
				queue = append(queue, w)
			}
		}
	}

	// Root prior.
	kr := s.K(m.root)
	m.prior = make([]float64, kr)
	for _, v := range tbl.Col(m.root) {
		m.prior[v]++
	}
	z := m.rows + alpha*float64(kr)
	if z <= 0 {
		for i := range m.prior {
			m.prior[i] = 1 / float64(kr)
		}
	} else {
		for i := range m.prior {
			m.prior[i] = (m.prior[i] + alpha) / z
		}
	}

	// CPTs for non-roots.
	m.cpt = make([][]float64, n)
	for _, v := range m.order[1:] {
		p := m.parent[v]
		kv, kp := s.K(v), s.K(p)
		counts := make([]float64, kp*kv)
		colV, colP := tbl.Col(v), tbl.Col(p)
		for r := range colV {
			counts[int(colP[r])*kv+int(colV[r])]++
		}
		for pv := 0; pv < kp; pv++ {
			var tot float64
			for cv := 0; cv < kv; cv++ {
				tot += counts[pv*kv+cv]
			}
			z := tot + alpha*float64(kv)
			if z <= 0 {
				// Unsupported parent value with no smoothing: the uniform
				// row, not 0/0 = NaN.
				for cv := 0; cv < kv; cv++ {
					counts[pv*kv+cv] = 1 / float64(kv)
				}
				continue
			}
			for cv := 0; cv < kv; cv++ {
				counts[pv*kv+cv] = (counts[pv*kv+cv] + alpha) / z
			}
		}
		m.cpt[v] = counts
	}
	return m
}

// mutualInformation estimates I(X_a; X_b) from a smoothed joint histogram.
func mutualInformation(tbl *table.Table, a, b int, alpha float64) float64 {
	s := tbl.Schema()
	ka, kb := s.K(a), s.K(b)
	joint := make([]float64, ka*kb)
	colA, colB := tbl.Col(a), tbl.Col(b)
	for r := range colA {
		joint[int(colA[r])*kb+int(colB[r])]++
	}
	z := float64(len(colA)) + alpha*float64(ka*kb)
	if z <= 0 {
		return 0 // no rows and no smoothing: no evidence of dependence
	}
	pa := make([]float64, ka)
	pb := make([]float64, kb)
	for i := 0; i < ka; i++ {
		for j := 0; j < kb; j++ {
			p := (joint[i*kb+j] + alpha) / z
			joint[i*kb+j] = p
			pa[i] += p
			pb[j] += p
		}
	}
	var mi float64
	for i := 0; i < ka; i++ {
		for j := 0; j < kb; j++ {
			p := joint[i*kb+j]
			if p > 0 {
				mi += p * math.Log(p/(pa[i]*pb[j]))
			}
		}
	}
	if mi < 0 {
		mi = 0
	}
	return mi
}

// Parent returns the tree parent of attribute v (-1 for the root); useful
// for inspecting the learned structure.
func (m *ChowLiu) Parent(v int) int { return m.parent[v] }

// Schema implements stats.Dist.
func (m *ChowLiu) Schema() *schema.Schema { return m.s }

// Root implements stats.Dist.
func (m *ChowLiu) Root() stats.Cond {
	masks := make([][]float64, m.s.NumAttrs())
	for a := range masks {
		mask := make([]float64, m.s.K(a))
		for v := range mask {
			mask[v] = 1
		}
		masks[a] = mask
	}
	c := &clCond{m: m, masks: masks}
	c.run()
	return c
}

// clCond is a conditioning context over the tree: per-attribute evidence
// masks plus the belief-propagation results computed for them.
type clCond struct {
	m        *ChowLiu
	masks    [][]float64
	beliefs  [][]float64 // normalized posterior marginals
	evidence float64     // P(evidence)
}

// run performs sum-product belief propagation with the current masks:
// one upward (leaves-to-root) pass collecting messages, then a downward
// pass distributing them, yielding every node's posterior marginal and
// the total evidence probability.
func (c *clCond) run() {
	m := c.m
	n := m.s.NumAttrs()
	// up[v][x_v]: product of v's mask and messages from v's children, as
	// a function of v's own value.
	up := make([][]float64, n)
	for i := len(m.order) - 1; i >= 0; i-- {
		v := m.order[i]
		kv := m.s.K(v)
		uv := make([]float64, kv)
		copy(uv, c.masks[v])
		up[v] = uv
	}
	// Children messages: iterate in reverse topological order, pushing
	// each node's message into its parent.
	msgToParent := make([][]float64, n)
	for i := len(m.order) - 1; i >= 1; i-- {
		v := m.order[i]
		p := m.parent[v]
		kv, kp := m.s.K(v), m.s.K(p)
		msg := make([]float64, kp)
		cpt := m.cpt[v]
		for pv := 0; pv < kp; pv++ {
			var sum float64
			row := cpt[pv*kv : (pv+1)*kv]
			for cv := 0; cv < kv; cv++ {
				sum += row[cv] * up[v][cv]
			}
			msg[pv] = sum
		}
		msgToParent[v] = msg
		for pv := 0; pv < kp; pv++ {
			up[p][pv] *= msg[pv]
		}
	}
	// Root belief and evidence.
	c.beliefs = make([][]float64, n)
	kr := m.s.K(m.root)
	rootBelief := make([]float64, kr)
	var z float64
	for x := 0; x < kr; x++ {
		rootBelief[x] = m.prior[x] * up[m.root][x]
		z += rootBelief[x]
	}
	c.evidence = z
	c.beliefs[m.root] = normalizeOrUniform(rootBelief, z)
	// Downward pass: pi[v][x_v] = P(x_v, evidence outside v's subtree).
	pi := make([][]float64, n)
	pi[m.root] = make([]float64, kr)
	for x := 0; x < kr; x++ {
		pi[m.root][x] = m.prior[x]
	}
	for _, v := range m.order[1:] {
		p := m.parent[v]
		kv, kp := m.s.K(v), m.s.K(p)
		cpt := m.cpt[v]
		// Parent's distribution excluding v's own upward message.
		parentExcl := make([]float64, kp)
		for pv := 0; pv < kp; pv++ {
			val := pi[p][pv] * up[p][pv]
			if mv := msgToParent[v][pv]; mv > 0 {
				val /= mv
			} else {
				val = 0
			}
			parentExcl[pv] = val
		}
		piV := make([]float64, kv)
		for pv := 0; pv < kp; pv++ {
			if floats.Zero(parentExcl[pv]) {
				// Parent value carries (numerically) no mass; its CPT
				// row cannot contribute to the child's prior.
				continue
			}
			row := cpt[pv*kv : (pv+1)*kv]
			for cv := 0; cv < kv; cv++ {
				piV[cv] += parentExcl[pv] * row[cv]
			}
		}
		pi[v] = piV
		belief := make([]float64, kv)
		var bz float64
		for cv := 0; cv < kv; cv++ {
			belief[cv] = piV[cv] * up[v][cv]
			bz += belief[cv]
		}
		c.beliefs[v] = normalizeOrUniform(belief, bz)
	}
}

func normalizeOrUniform(h []float64, z float64) []float64 {
	if z <= 0 {
		for i := range h {
			h[i] = 1 / float64(len(h))
		}
		return h
	}
	for i := range h {
		h[i] /= z
	}
	return h
}

func (c *clCond) Weight() float64 { return c.m.rows * c.evidence }

func (c *clCond) Hist(attr int) []float64 { return c.beliefs[attr] }

func (c *clCond) ProbRange(attr int, r query.Range) float64 {
	h := c.Hist(attr)
	var p float64
	for v := int(r.Lo); v <= int(r.Hi) && v < len(h); v++ {
		p += h[v]
	}
	return clampProb(p)
}

func (c *clCond) ProbPred(p query.Pred) float64 {
	in := c.ProbRange(p.Attr, p.R)
	if p.Negated {
		return clampProb(1 - in)
	}
	return in
}

func (c *clCond) RestrictRange(attr int, r query.Range) stats.Cond {
	return c.restrict(attr, func(v int) bool { return r.Contains(schema.Value(v)) })
}

func (c *clCond) RestrictPred(p query.Pred, val bool) stats.Cond {
	return c.restrict(p.Attr, func(v int) bool { return p.Eval(schema.Value(v)) == val })
}

func (c *clCond) restrict(attr int, keep func(v int) bool) stats.Cond {
	masks := make([][]float64, len(c.masks))
	copy(masks, c.masks)
	newMask := make([]float64, len(c.masks[attr]))
	for v := range newMask {
		if keep(v) {
			newMask[v] = c.masks[attr][v]
		}
	}
	masks[attr] = newMask
	nc := &clCond{m: c.m, masks: masks}
	nc.run()
	return nc
}

// unionFind is a minimal disjoint-set structure for Kruskal's algorithm.
type unionFind struct{ parent, rank []int }

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) bool {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return false
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
	return true
}

// Package model provides compact probability models that can stand in for
// the raw historical dataset when computing the conditional probabilities
// the planners need — the "Graphical Models" extension of Section 7 of
// the paper. Estimating probabilities directly from data is linear in the
// dataset size and suffers exponentially-shrinking support after each
// conditioning split; a fitted model answers the same queries in time
// independent of the dataset and smooths away the high-variance estimates.
//
// Three models are provided: Independent (attributes fully independent,
// useful as a baseline and for sanity checks), ChowLiu (a tree-shaped
// Bayesian network maximizing pairwise mutual information, the classic
// compromise between expressiveness and tractability), and BN (a general
// bounded-in-degree Bayesian network learned under a BIC score with
// variable-elimination inference, for the multi-parent structure a tree
// cannot represent). All implement stats.Dist, so every planner runs
// unchanged on top of them; Fit selects a backend by name with input
// validation and typed errors.
package model

import (
	"sync"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// Independent models every attribute as independent with its empirical
// marginal (Laplace-smoothed). It deliberately cannot represent the
// correlations conditional plans exploit; planners running on it collapse
// to Naive-like behaviour, which makes it a useful ablation baseline.
type Independent struct {
	s     *schema.Schema
	marg  [][]float64
	rows  float64
	alpha float64
}

// FitIndependent learns marginals from the table with additive smoothing
// alpha (counts per cell). A negative alpha is clamped to 0, and an
// empty table with no smoothing yields uniform marginals rather than
// 0/0 = NaN; use Fit for validated fitting with typed errors.
func FitIndependent(tbl *table.Table, alpha float64) *Independent {
	s := tbl.Schema()
	if alpha < 0 {
		alpha = 0
	}
	m := &Independent{s: s, rows: float64(tbl.NumRows()), alpha: alpha}
	m.marg = make([][]float64, s.NumAttrs())
	for a := 0; a < s.NumAttrs(); a++ {
		k := s.K(a)
		h := make([]float64, k)
		for _, v := range tbl.Col(a) {
			h[v]++
		}
		total := float64(tbl.NumRows()) + alpha*float64(k)
		if total <= 0 {
			for v := range h {
				h[v] = 1 / float64(k)
			}
		} else {
			for v := range h {
				h[v] = (h[v] + alpha) / total
			}
		}
		m.marg[a] = h
	}
	return m
}

// Schema implements stats.Dist.
func (m *Independent) Schema() *schema.Schema { return m.s }

// Root implements stats.Dist.
func (m *Independent) Root() stats.Cond {
	masks := make([][]float64, m.s.NumAttrs())
	for a := range masks {
		mask := make([]float64, m.s.K(a))
		for v := range mask {
			mask[v] = 1
		}
		masks[a] = mask
	}
	return newIndCond(m, masks, m.rows)
}

func newIndCond(m *Independent, masks [][]float64, weight float64) *indCond {
	return &indCond{m: m, masks: masks, weight: weight, hists: make([]indHist, m.s.NumAttrs())}
}

// indHist is one attribute's lazily published renormalized marginal;
// once makes the publication safe for concurrent readers.
type indHist struct {
	once sync.Once
	h    []float64
}

// indCond conditions the independence model: evidence is a per-attribute
// 0/1 mask; marginals renormalize within the mask.
type indCond struct {
	m      *Independent
	masks  [][]float64
	weight float64
	hists  []indHist
}

func (c *indCond) Weight() float64 { return c.weight }

func (c *indCond) Hist(attr int) []float64 {
	st := &c.hists[attr]
	st.once.Do(func() {
		k := c.m.s.K(attr)
		h := make([]float64, k)
		var z float64
		for v := 0; v < k; v++ {
			h[v] = c.m.marg[attr][v] * c.masks[attr][v]
			z += h[v]
		}
		if z <= 0 {
			for v := range h {
				h[v] = 1 / float64(k)
			}
		} else {
			for v := range h {
				h[v] /= z
			}
		}
		st.h = h
	})
	return st.h
}

func (c *indCond) ProbRange(attr int, r query.Range) float64 {
	h := c.Hist(attr)
	var p float64
	for v := int(r.Lo); v <= int(r.Hi) && v < len(h); v++ {
		p += h[v]
	}
	return clampProb(p)
}

func (c *indCond) ProbPred(p query.Pred) float64 {
	in := c.ProbRange(p.Attr, p.R)
	if p.Negated {
		return clampProb(1 - in)
	}
	return in
}

func (c *indCond) RestrictRange(attr int, r query.Range) stats.Cond {
	return c.restrict(attr, func(v int) bool { return r.Contains(schema.Value(v)) })
}

func (c *indCond) RestrictPred(p query.Pred, val bool) stats.Cond {
	return c.restrict(p.Attr, func(v int) bool { return p.Eval(schema.Value(v)) == val })
}

func (c *indCond) restrict(attr int, keep func(v int) bool) stats.Cond {
	pKeep := 0.0
	h := c.Hist(attr)
	newMask := make([]float64, len(c.masks[attr]))
	for v := range newMask {
		if keep(v) && c.masks[attr][v] > 0 {
			newMask[v] = c.masks[attr][v]
			pKeep += h[v]
		}
	}
	masks := make([][]float64, len(c.masks))
	copy(masks, c.masks)
	masks[attr] = newMask
	return newIndCond(c.m, masks, c.weight*pKeep)
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

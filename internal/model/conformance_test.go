package model

import (
	"math"
	"sync"
	"testing"

	"acqp/internal/query"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// The conformance suite: every statistics backend behind stats.Dist —
// Empirical, Independent, ChowLiu, BN — must satisfy the probabilistic
// invariants the planners assume. Each check runs against the same seeded
// tables so a regression in any one backend fails by name.

func conformanceDists(t *testing.T, tbl *table.Table) map[string]stats.Dist {
	t.Helper()
	out := make(map[string]stats.Dist, len(Names()))
	for _, name := range Names() {
		d, err := Fit(name, tbl, Opts{})
		if err != nil {
			t.Fatalf("Fit(%q): %v", name, err)
		}
		out[name] = d
	}
	return out
}

// restrictChain applies a fixed conditioning chain that leaves plausible
// evidence on the chain fixture.
func restrictChain(c stats.Cond) stats.Cond {
	return c.
		RestrictRange(0, query.Range{Lo: 0, Hi: 1}).
		RestrictPred(query.Pred{Attr: 1, R: query.Range{Lo: 3, Hi: 3}, Negated: true}, true)
}

func TestConformanceHistNormalized(t *testing.T) {
	tbl := chainTable(3000, 41)
	for _, name := range Names() {
		d := conformanceDists(t, tbl)[name]
		for _, c := range []stats.Cond{d.Root(), restrictChain(d.Root())} {
			for a := 0; a < d.Schema().NumAttrs(); a++ {
				var sum float64
				for _, p := range c.Hist(a) {
					if p < 0 || p > 1 || math.IsNaN(p) {
						t.Errorf("%s attr %d: hist entry %g out of [0,1]", name, a, p)
					}
					sum += p
				}
				if math.Abs(sum-1) > 1e-9 {
					t.Errorf("%s attr %d: hist sums to %g", name, a, sum)
				}
			}
		}
	}
}

func TestConformanceProbsInRange(t *testing.T) {
	tbl := chainTable(3000, 42)
	ranges := []query.Range{{Lo: 0, Hi: 0}, {Lo: 1, Hi: 2}, {Lo: 0, Hi: 3}}
	for name, d := range conformanceDists(t, tbl) {
		c := restrictChain(d.Root())
		for a := 0; a < d.Schema().NumAttrs(); a++ {
			for _, r := range ranges {
				p := c.ProbRange(a, r)
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Errorf("%s: ProbRange(%d, %v) = %g", name, a, r, p)
				}
				for _, neg := range []bool{false, true} {
					pp := c.ProbPred(query.Pred{Attr: a, R: r, Negated: neg})
					if pp < 0 || pp > 1 || math.IsNaN(pp) {
						t.Errorf("%s: ProbPred(%d, %v, neg=%v) = %g", name, a, r, neg, pp)
					}
				}
			}
		}
	}
}

// The chain rule ties Restrict* to ProbRange: restricting by a range must
// scale Weight() by exactly the probability the same context assigns to
// that range.
func TestConformanceChainRule(t *testing.T) {
	tbl := chainTable(3000, 43)
	r1 := query.Range{Lo: 0, Hi: 1}
	r2 := query.Range{Lo: 1, Hi: 3}
	for name, d := range conformanceDists(t, tbl) {
		c0 := d.Root()
		p1 := c0.ProbRange(0, r1)
		c1 := c0.RestrictRange(0, r1)
		if got, want := c1.Weight(), c0.Weight()*p1; math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("%s: one-step weight %g, want %g * %g", name, got, c0.Weight(), p1)
		}
		p2 := c1.ProbRange(2, r2)
		c2 := c1.RestrictRange(2, r2)
		if got, want := c2.Weight(), c1.Weight()*p2; math.Abs(got-want) > 1e-6*(1+want) {
			t.Errorf("%s: two-step weight %g, want %g * %g", name, got, c1.Weight(), p2)
		}
	}
}

func TestConformanceWeightMonotone(t *testing.T) {
	tbl := chainTable(3000, 44)
	for name, d := range conformanceDists(t, tbl) {
		c := d.Root()
		prev := c.Weight()
		if prev <= 0 {
			t.Fatalf("%s: root weight %g", name, prev)
		}
		steps := []func(stats.Cond) stats.Cond{
			func(c stats.Cond) stats.Cond { return c.RestrictRange(0, query.Range{Lo: 0, Hi: 2}) },
			func(c stats.Cond) stats.Cond {
				return c.RestrictPred(query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}}, true)
			},
			func(c stats.Cond) stats.Cond { return c.RestrictRange(2, query.Range{Lo: 2, Hi: 3}) },
		}
		for i, step := range steps {
			c = step(c)
			w := c.Weight()
			if w > prev+1e-9 || w < 0 || math.IsNaN(w) {
				t.Errorf("%s: weight not monotone at step %d: %g -> %g", name, i, prev, w)
			}
			prev = w
		}
	}
}

// Backends publish lazily-computed statistics via sync.Once; a shared
// conditioning context must be safe for concurrent planner searches.
// Run with -race to make this meaningful.
func TestConformanceConcurrentUse(t *testing.T) {
	tbl := chainTable(2000, 45)
	for name, d := range conformanceDists(t, tbl) {
		d := d
		t.Run(name, func(t *testing.T) {
			root := d.Root()
			restricted := root.RestrictRange(0, query.Range{Lo: 0, Hi: 1})
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						a := (g + i) % 3
						_ = root.Hist(a)
						_ = restricted.ProbRange(a, query.Range{Lo: 0, Hi: 2})
						_ = restricted.Weight()
						c := root.RestrictRange(a, query.Range{Lo: 1, Hi: 3})
						_ = c.Hist((a + 1) % 3)
					}
				}(g)
			}
			wg.Wait()
		})
	}
}

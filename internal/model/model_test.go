package model

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"acqp/internal/opt"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

func chainSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "x0", K: 4, Cost: 1},
		schema.Attribute{Name: "x1", K: 4, Cost: 100},
		schema.Attribute{Name: "x2", K: 4, Cost: 100},
	)
}

// chainTable samples a Markov chain x0 -> x1 -> x2 where each attribute
// copies its predecessor with probability 0.8 and is uniform otherwise —
// a distribution whose true structure is exactly a Chow-Liu tree.
func chainTable(rows int, seed int64) *table.Table {
	s := chainSchema()
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(s, rows)
	step := func(prev schema.Value) schema.Value {
		if rng.Float64() < 0.8 {
			return prev
		}
		return schema.Value(rng.Intn(4))
	}
	for i := 0; i < rows; i++ {
		x0 := schema.Value(rng.Intn(4))
		x1 := step(x0)
		x2 := step(x1)
		tbl.MustAppendRow([]schema.Value{x0, x1, x2})
	}
	return tbl
}

func TestIndependentMarginals(t *testing.T) {
	tbl := chainTable(5000, 1)
	m := FitIndependent(tbl, 0)
	emp := stats.NewEmpirical(tbl)
	for a := 0; a < 3; a++ {
		mh := m.Root().Hist(a)
		eh := emp.Root().Hist(a)
		for v := range mh {
			if math.Abs(mh[v]-eh[v]) > 1e-9 {
				t.Errorf("attr %d value %d: model %g empirical %g", a, v, mh[v], eh[v])
			}
		}
	}
}

func TestIndependentIgnoresCorrelation(t *testing.T) {
	tbl := chainTable(5000, 2)
	m := FitIndependent(tbl, 0)
	root := m.Root()
	before := root.Hist(1)[0]
	after := root.RestrictRange(0, query.Range{Lo: 0, Hi: 0}).Hist(1)[0]
	if math.Abs(before-after) > 1e-12 {
		t.Errorf("independence model changed P(x1) after conditioning on x0: %g -> %g", before, after)
	}
}

func TestIndependentWeightMultiplies(t *testing.T) {
	tbl := chainTable(1000, 3)
	m := FitIndependent(tbl, 0)
	root := m.Root()
	p := root.ProbRange(0, query.Range{Lo: 0, Hi: 1})
	c := root.RestrictRange(0, query.Range{Lo: 0, Hi: 1})
	if math.Abs(c.Weight()-root.Weight()*p) > 1e-6 {
		t.Errorf("weight %g != %g * %g", c.Weight(), root.Weight(), p)
	}
}

func TestIndependentEmptyEvidenceUniform(t *testing.T) {
	tbl := chainTable(100, 4)
	m := FitIndependent(tbl, 0)
	// Restrict x0 to a value, then restrict it again to a disjoint value:
	// impossible evidence.
	c := m.Root().
		RestrictRange(0, query.Range{Lo: 0, Hi: 0}).
		RestrictRange(0, query.Range{Lo: 3, Hi: 3})
	if c.Weight() != 0 {
		t.Fatalf("impossible evidence has weight %g", c.Weight())
	}
	h := c.Hist(0)
	for _, v := range h {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("impossible-evidence hist not uniform: %v", h)
		}
	}
}

func TestChowLiuRecoversChainStructure(t *testing.T) {
	tbl := chainTable(20000, 5)
	m := FitChowLiu(tbl, 0.01)
	// The MI of (0,1) and (1,2) exceeds (0,2); the tree must use the two
	// chain edges: with root 0, parent(1) = 0 and parent(2) = 1.
	if m.Parent(0) != -1 {
		t.Errorf("root parent = %d", m.Parent(0))
	}
	if m.Parent(1) != 0 || m.Parent(2) != 1 {
		t.Errorf("learned parents (%d, %d), want (0, 1)", m.Parent(1), m.Parent(2))
	}
}

func TestChowLiuMatchesEmpiricalConditionals(t *testing.T) {
	tbl := chainTable(50000, 6)
	m := FitChowLiu(tbl, 0.01)
	emp := stats.NewEmpirical(tbl)
	// P(x2 in [0,1] | x0 = 0): the model must agree with counting within
	// sampling tolerance.
	r0 := query.Range{Lo: 0, Hi: 0}
	target := query.Range{Lo: 0, Hi: 1}
	got := m.Root().RestrictRange(0, r0).ProbRange(2, target)
	want := emp.Root().RestrictRange(0, r0).ProbRange(2, target)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("P(x2 in [0,1] | x0=0): model %g, empirical %g", got, want)
	}
	// And a two-step conditioning chain.
	got = m.Root().RestrictRange(0, r0).RestrictRange(1, r0).ProbRange(2, target)
	want = emp.Root().RestrictRange(0, r0).RestrictRange(1, r0).ProbRange(2, target)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("P(x2 | x0=0, x1=0): model %g, empirical %g", got, want)
	}
}

func TestChowLiuHistNormalized(t *testing.T) {
	tbl := chainTable(2000, 7)
	m := FitChowLiu(tbl, 0.1)
	c := m.Root().
		RestrictPred(query.Pred{Attr: 1, R: query.Range{Lo: 1, Hi: 2}, Negated: true}, true).
		RestrictRange(2, query.Range{Lo: 0, Hi: 2})
	for a := 0; a < 3; a++ {
		var sum float64
		for _, v := range c.Hist(a) {
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("attr %d hist sums to %g", a, sum)
		}
	}
}

func TestChowLiuEvidenceRespectsMasks(t *testing.T) {
	tbl := chainTable(2000, 8)
	m := FitChowLiu(tbl, 0.1)
	c := m.Root().RestrictRange(1, query.Range{Lo: 2, Hi: 3})
	h := c.Hist(1)
	if h[0] != 0 || h[1] != 0 {
		t.Errorf("masked values have probability: %v", h)
	}
	if p := c.ProbRange(1, query.Range{Lo: 2, Hi: 3}); math.Abs(p-1) > 1e-9 {
		t.Errorf("evidence range probability %g, want 1", p)
	}
}

func TestChowLiuWeightDecreases(t *testing.T) {
	tbl := chainTable(2000, 9)
	m := FitChowLiu(tbl, 0.1)
	c0 := m.Root()
	c1 := c0.RestrictRange(0, query.Range{Lo: 0, Hi: 1})
	c2 := c1.RestrictRange(2, query.Range{Lo: 0, Hi: 0})
	if !(c0.Weight() >= c1.Weight() && c1.Weight() >= c2.Weight()) {
		t.Errorf("weights not monotone: %g, %g, %g", c0.Weight(), c1.Weight(), c2.Weight())
	}
	if c2.Weight() <= 0 {
		t.Errorf("plausible evidence has zero weight")
	}
}

func TestChowLiuImpossibleEvidenceUniform(t *testing.T) {
	tbl := chainTable(500, 10)
	m := FitChowLiu(tbl, 0.1)
	c := m.Root().
		RestrictRange(1, query.Range{Lo: 0, Hi: 0}).
		RestrictRange(1, query.Range{Lo: 3, Hi: 3})
	if c.Weight() != 0 {
		t.Fatalf("impossible evidence weight = %g", c.Weight())
	}
	h := c.Hist(2)
	for _, v := range h {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("impossible-evidence hist not uniform: %v", h)
		}
	}
}

// Planners must run unchanged on a model-backed distribution and produce
// correct plans (the Section 7 drop-in property).
func TestPlannersRunOnModels(t *testing.T) {
	tbl := chainTable(5000, 11)
	s := chainSchema()
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}},
	)
	all := table.New(s, 64)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				all.MustAppendRow([]schema.Value{schema.Value(a), schema.Value(b), schema.Value(c)})
			}
		}
	}
	for _, d := range []stats.Dist{FitChowLiu(tbl, 0.1), FitIndependent(tbl, 0.1)} {
		g := opt.Greedy{SPSF: opt.FullSPSF(s), MaxSplits: 3, Base: opt.SeqOpt}
		node, cost := g.Plan(context.Background(), d, q)
		if r := node.Equivalent(s, q, all); r != -1 {
			t.Errorf("model-backed plan wrong on tuple %d", r)
		}
		if cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
			t.Errorf("model-backed plan cost = %g", cost)
		}
	}
}

// The model should give a smoother (lower-variance) estimate than raw
// counting in a shrunken context: after conditioning, empirical contexts
// built from few rows swing wildly, the model does not. We check the
// model's deep-conditioning estimate stays close to the large-sample
// truth while using only a small training set.
func TestChowLiuSmoothsSmallSupport(t *testing.T) {
	truthTbl := chainTable(100000, 12)
	empTruth := stats.NewEmpirical(truthTbl).
		Root().
		RestrictRange(0, query.Range{Lo: 0, Hi: 0}).
		RestrictRange(1, query.Range{Lo: 0, Hi: 0}).
		ProbRange(2, query.Range{Lo: 0, Hi: 0})

	small := chainTable(300, 13)
	mod := FitChowLiu(small, 0.5).
		Root().
		RestrictRange(0, query.Range{Lo: 0, Hi: 0}).
		RestrictRange(1, query.Range{Lo: 0, Hi: 0}).
		ProbRange(2, query.Range{Lo: 0, Hi: 0})
	if math.Abs(mod-empTruth) > 0.12 {
		t.Errorf("model deep conditional %g too far from truth %g", mod, empTruth)
	}
}

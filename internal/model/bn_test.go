package model

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"acqp/internal/exec"
	"acqp/internal/opt"
	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// xorSchema is the 4-attribute fixture no single tree captures: two cheap
// inputs, an expensive XOR of them, and an expensive independent noise
// attribute.
func xorSchema() *schema.Schema {
	return schema.New(
		schema.Attribute{Name: "x0", K: 2, Cost: 1},
		schema.Attribute{Name: "x1", K: 2, Cost: 1},
		schema.Attribute{Name: "x2", K: 2, Cost: 100},
		schema.Attribute{Name: "x3", K: 2, Cost: 100},
	)
}

// xorTable samples x0, x1 ~ uniform, x2 = x0 XOR x1 flipped with
// probability noise, x3 ~ uniform independent. x2 is marginally
// independent of x0 alone and of x1 alone, so every pairwise MI involving
// it is ~0 and a Chow-Liu tree can never predict it; the pair (x0, x1)
// determines it almost surely.
func xorTable(rows int, noise float64, seed int64) *table.Table {
	s := xorSchema()
	rng := rand.New(rand.NewSource(seed))
	tbl := table.New(s, rows)
	for i := 0; i < rows; i++ {
		x0 := schema.Value(rng.Intn(2))
		x1 := schema.Value(rng.Intn(2))
		x2 := x0 ^ x1
		if rng.Float64() < noise {
			x2 ^= 1
		}
		x3 := schema.Value(rng.Intn(2))
		tbl.MustAppendRow([]schema.Value{x0, x1, x2, x3})
	}
	return tbl
}

func TestBNRecoversXORStructure(t *testing.T) {
	tbl := xorTable(4000, 0.05, 21)
	m := FitBN(tbl, 0.5, 2)
	// The only real dependency ties {x0, x1, x2} together; any of the three
	// v-structure orientations (e.g. x1 = x0 XOR x2) encodes the same joint
	// and scores identically, so accept whichever the deterministic
	// tie-break picked: exactly one node of {0,1,2} has the other two as
	// parents. Discovering it at all is the point — every single edge has
	// ~zero gain, so a purely single-edge greedy can never find it.
	vStructs := 0
	for v := 0; v < 3; v++ {
		ps := m.Parents(v)
		if len(ps) == 2 && ps[0] != 3 && ps[1] != 3 {
			vStructs++
		}
	}
	if vStructs != 1 || m.NumEdges() != 2 {
		for v := 0; v < 4; v++ {
			t.Logf("parents[%d] = %v", v, m.Parents(v))
		}
		t.Fatalf("expected exactly one v-structure over {x0,x1,x2}, got %d (edges %d)", vStructs, m.NumEdges())
	}
	if got := m.Parents(3); len(got) != 0 {
		t.Errorf("independent x3 learned parents %v", got)
	}
}

func TestBNMatchesXORConditionals(t *testing.T) {
	tbl := xorTable(8000, 0.05, 22)
	m := FitBN(tbl, 0.5, 2)
	one := query.Range{Lo: 1, Hi: 1}
	zero := query.Range{Lo: 0, Hi: 0}
	// P(x2=1 | x0=0, x1=1) ~= 0.95.
	p := m.Root().RestrictRange(0, zero).RestrictRange(1, one).ProbRange(2, one)
	if math.Abs(p-0.95) > 0.03 {
		t.Errorf("BN P(x2=1 | x0=0, x1=1) = %g, want ~0.95", p)
	}
	// The tree cannot do better than the marginal ~0.5 here.
	cl := FitChowLiu(tbl, 0.5)
	pcl := cl.Root().RestrictRange(0, zero).RestrictRange(1, one).ProbRange(2, one)
	if math.Abs(pcl-0.5) > 0.1 {
		t.Logf("note: Chow-Liu predicted %g for the XOR conditional", pcl)
	}
	if math.Abs(p-0.95) >= math.Abs(pcl-0.95) {
		t.Errorf("BN (%g) no closer to 0.95 than Chow-Liu (%g)", p, pcl)
	}
}

// The acceptance fixture: on the XOR workload, plans built from the BN
// must measure strictly cheaper on held-out data than plans built from
// the Chow-Liu tree, because only the BN sees that acquiring the two
// cheap inputs makes the expensive XOR attribute nearly deterministic.
func TestBNPlansBeatChowLiuOnXOR(t *testing.T) {
	train := xorTable(6000, 0.05, 23)
	test := xorTable(4000, 0.05, 24)
	s := xorSchema()
	q := query.MustNewQuery(s,
		query.Pred{Attr: 2, R: query.Range{Lo: 1, Hi: 1}},
		query.Pred{Attr: 3, R: query.Range{Lo: 1, Hi: 1}},
	)
	// The exhaustive planner, not greedy: the XOR benefit only appears
	// after conditioning on BOTH cheap inputs, and greedy's one-split
	// lookahead sees zero gain for the first split. The schema is 4 binary
	// attributes, so exhaustive search is trivially cheap here.
	e := &opt.Exhaustive{SPSF: opt.FullSPSF(s)}
	measure := func(d stats.Dist) float64 {
		node, _, err := e.Plan(context.Background(), d, q)
		if err != nil {
			t.Fatalf("plan: %v", err)
		}
		res, err := exec.Execute(context.Background(), exec.Request{
			Schema: s, Plan: node, Query: q,
			Options: exec.Options{Source: exec.NewTableSource(test, 0)},
		})
		if err != nil {
			t.Fatalf("execute: %v", err)
		}
		if res.Mismatches != 0 {
			t.Fatalf("plan mismatches ground truth on %d tuples", res.Mismatches)
		}
		return res.MeanCost()
	}
	bnCost := measure(FitBN(train, 0.5, 2))
	clCost := measure(FitChowLiu(train, 0.5))
	if !(bnCost < clCost) {
		t.Errorf("BN plan cost %g not strictly below Chow-Liu %g", bnCost, clCost)
	}
}

// On a distribution whose true structure is a tree, the BN should learn
// (approximately) that tree and agree with empirical conditionals.
func TestBNMatchesEmpiricalOnChain(t *testing.T) {
	tbl := chainTable(50000, 25)
	m := FitBN(tbl, 0.01, 2)
	emp := stats.NewEmpirical(tbl)
	r0 := query.Range{Lo: 0, Hi: 0}
	target := query.Range{Lo: 0, Hi: 1}
	got := m.Root().RestrictRange(0, r0).ProbRange(2, target)
	want := emp.Root().RestrictRange(0, r0).ProbRange(2, target)
	if math.Abs(got-want) > 0.02 {
		t.Errorf("P(x2 in [0,1] | x0=0): BN %g, empirical %g", got, want)
	}
	got = m.Root().RestrictRange(0, r0).RestrictRange(1, r0).ProbRange(2, target)
	want = emp.Root().RestrictRange(0, r0).RestrictRange(1, r0).ProbRange(2, target)
	if math.Abs(got-want) > 0.03 {
		t.Errorf("P(x2 | x0=0, x1=0): BN %g, empirical %g", got, want)
	}
}

func TestBNDeterministicFit(t *testing.T) {
	tbl := xorTable(2000, 0.05, 26)
	a := FitBN(tbl, 0.5, 2)
	b := FitBN(tbl, 0.5, 2)
	for v := 0; v < 4; v++ {
		pa, pb := a.Parents(v), b.Parents(v)
		if len(pa) != len(pb) {
			t.Fatalf("attr %d: parents %v vs %v", v, pa, pb)
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("attr %d: parents %v vs %v", v, pa, pb)
			}
		}
		for i := range a.cpt[v] {
			if math.Abs(a.cpt[v][i]-b.cpt[v][i]) > 0 {
				t.Fatalf("attr %d: CPTs differ at cell %d", v, i)
			}
		}
	}
}

func TestBNImpossibleEvidenceUniform(t *testing.T) {
	tbl := xorTable(500, 0.05, 27)
	m := FitBN(tbl, 0.5, 2)
	c := m.Root().
		RestrictRange(0, query.Range{Lo: 0, Hi: 0}).
		RestrictRange(0, query.Range{Lo: 1, Hi: 1})
	if c.Weight() != 0 {
		t.Fatalf("impossible evidence weight = %g", c.Weight())
	}
	h := c.Hist(2)
	for _, v := range h {
		if math.Abs(v-0.5) > 1e-12 {
			t.Errorf("impossible-evidence hist not uniform: %v", h)
		}
	}
}

func TestBNPlannerDropIn(t *testing.T) {
	tbl := chainTable(5000, 28)
	s := chainSchema()
	q := query.MustNewQuery(s,
		query.Pred{Attr: 1, R: query.Range{Lo: 0, Hi: 1}},
		query.Pred{Attr: 2, R: query.Range{Lo: 0, Hi: 1}},
	)
	all := table.New(s, 64)
	for a := 0; a < 4; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 4; c++ {
				all.MustAppendRow([]schema.Value{schema.Value(a), schema.Value(b), schema.Value(c)})
			}
		}
	}
	g := opt.Greedy{SPSF: opt.FullSPSF(s), MaxSplits: 3, Base: opt.SeqOpt}
	node, cost := g.Plan(context.Background(), FitBN(tbl, 0.1, 2), q)
	if r := node.Equivalent(s, q, all); r != -1 {
		t.Errorf("BN-backed plan wrong on tuple %d", r)
	}
	if cost <= 0 || math.IsInf(cost, 0) || math.IsNaN(cost) {
		t.Errorf("BN-backed plan cost = %g", cost)
	}
}

func TestFitRegistry(t *testing.T) {
	tbl := chainTable(500, 29)
	for _, name := range Names() {
		d, err := Fit(name, tbl, Opts{})
		if err != nil {
			t.Fatalf("Fit(%q): %v", name, err)
		}
		if d == nil || d.Schema() == nil {
			t.Fatalf("Fit(%q) returned nil dist", name)
		}
	}
	if _, err := Fit("nope", tbl, Opts{}); !errors.Is(err, ErrUnknownModel) {
		t.Errorf("unknown name error = %v", err)
	}
	empty := table.New(chainSchema(), 0)
	if _, err := Fit(NameChowLiu, empty, Opts{}); !errors.Is(err, ErrEmptyTable) {
		t.Errorf("empty table error = %v", err)
	}
	if _, err := Fit(NameBN, nil, Opts{}); !errors.Is(err, ErrEmptyTable) {
		t.Errorf("nil table error = %v", err)
	}
	if _, err := Fit(NameBN, tbl, Opts{Alpha: -1}); !errors.Is(err, ErrBadOpts) {
		t.Errorf("negative alpha error = %v", err)
	}
	if _, err := Fit(NameBN, tbl, Opts{MaxParents: -1}); !errors.Is(err, ErrBadOpts) {
		t.Errorf("negative MaxParents error = %v", err)
	}
}

// The historical edge cases must no longer panic or poison the model
// with NaN: empty tables and alpha <= 0 degrade to uniform estimates.
func TestFitEdgeCasesNoNaN(t *testing.T) {
	empty := table.New(chainSchema(), 0)
	one := chainTable(1, 30)
	for _, tc := range []struct {
		name string
		tbl  *table.Table
	}{{"empty", empty}, {"one-row", one}} {
		for _, alpha := range []float64{-1, 0, 0.5} {
			dists := []stats.Dist{
				FitChowLiu(tc.tbl, alpha),
				FitIndependent(tc.tbl, alpha),
				FitBN(tc.tbl, alpha, 2),
			}
			for i, d := range dists {
				c := d.Root()
				for a := 0; a < 3; a++ {
					var sum float64
					for _, p := range c.Hist(a) {
						if math.IsNaN(p) || math.IsInf(p, 0) {
							t.Fatalf("%s alpha=%g dist %d attr %d: hist has NaN/Inf", tc.name, alpha, i, a)
						}
						sum += p
					}
					if math.Abs(sum-1) > 1e-9 {
						t.Errorf("%s alpha=%g dist %d attr %d: hist sums to %g", tc.name, alpha, i, a, sum)
					}
				}
				if w := c.Weight(); math.IsNaN(w) || w < 0 {
					t.Errorf("%s alpha=%g dist %d: weight %g", tc.name, alpha, i, w)
				}
			}
		}
	}
}

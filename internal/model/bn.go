package model

import (
	"math"
	"sort"
	"sync"

	"acqp/internal/query"
	"acqp/internal/schema"
	"acqp/internal/stats"
	"acqp/internal/table"
)

// BN is a general bounded-in-degree Bayesian network over the schema's
// attributes — the lifting of ChowLiu from trees to DAGs that ROADMAP
// item 1 and Halford et al. (arXiv:1907.06295) call for. Structure is
// learned greedily under a BIC/MDL score, CPTs are Laplace-smoothed, and
// the planners' conditional-probability queries are answered by exact
// variable elimination over the learned DAG. A Chow-Liu tree is the
// special case where every node has at most one parent; allowing two (the
// default) captures exactly the multi-parent interactions a tree cannot
// represent, such as x2 = x0 XOR x1 where x2 is pairwise independent of
// each input.
type BN struct {
	s       *schema.Schema
	rows    float64
	parents [][]int     // parents[v], ascending; empty for roots
	order   []int       // topological order (parents before children)
	cpt     [][]float64 // cpt[v][cfg*K_v + x] = P(X_v = x | parents = cfg)
}

const (
	// defaultMaxParents bounds the in-degree of the structure search.
	// Two parents keep every CPT and every elimination clique small while
	// already expressing the pairwise-irreducible dependencies that
	// motivate moving beyond trees.
	defaultMaxParents = 2
	// maxFamilyCells caps a node's CPT size (parent configurations times
	// the node's own cardinality) so high-cardinality attributes cannot
	// blow up fitting time or memory.
	maxFamilyCells = 1 << 16
	// minScoreGain is the threshold a structure move must clear; it
	// absorbs float noise so fitting terminates deterministically.
	minScoreGain = 1e-9
)

// FitBN learns a bounded-in-degree Bayesian network from the table with
// additive smoothing alpha (clamped to 0 if negative) and at most
// maxParents parents per node (0 selects the default). Fitting is
// deterministic: candidate moves are scanned in index order and score
// ties keep the first candidate. An empty table yields the uniform model;
// use Fit for validated fitting with typed errors.
func FitBN(tbl *table.Table, alpha float64, maxParents int) *BN {
	if alpha < 0 {
		alpha = 0
	}
	if maxParents <= 0 {
		maxParents = defaultMaxParents
	}
	s := tbl.Schema()
	n := s.NumAttrs()
	m := &BN{s: s, rows: float64(tbl.NumRows())}

	parents := make([][]int, n)
	children := make([][]int, n)
	scores := make([]float64, n)
	for v := 0; v < n; v++ {
		scores[v] = familyScore(tbl, v, nil)
	}

	// reaches reports whether a directed path from -> to exists.
	var reaches func(from, to int) bool
	reaches = func(from, to int) bool {
		if from == to {
			return true
		}
		for _, c := range children[from] {
			if reaches(c, to) {
				return true
			}
		}
		return false
	}
	okParent := func(v, u int) bool {
		if u == v || containsInt(parents[v], u) {
			return false
		}
		// Adding u -> v creates a cycle iff v already reaches u.
		return !reaches(v, u)
	}
	apply := func(v int, add []int, gain float64) {
		parents[v] = append(append([]int(nil), parents[v]...), add...)
		sort.Ints(parents[v])
		for _, u := range add {
			children[u] = append(children[u], v)
		}
		scores[v] += gain
	}

	// Greedy hill climbing: repeatedly take the best single-edge addition
	// by BIC gain. When no single edge helps, try adding a parent *pair*
	// before giving up — parity-style dependencies (XOR) have zero gain
	// for every individual edge yet large gain for the pair, so a purely
	// single-edge search can never discover them.
	for {
		bestGain, bestV := minScoreGain, -1
		var bestAdd []int
		for v := 0; v < n; v++ {
			if len(parents[v]) >= maxParents {
				continue
			}
			for u := 0; u < n; u++ {
				if !okParent(v, u) {
					continue
				}
				ps := sortedWith(parents[v], u)
				if familyCells(s, v, ps) > maxFamilyCells {
					continue
				}
				if g := familyScore(tbl, v, ps) - scores[v]; g > bestGain {
					bestGain, bestV, bestAdd = g, v, []int{u}
				}
			}
		}
		if bestV < 0 {
			for v := 0; v < n; v++ {
				if len(parents[v])+2 > maxParents {
					continue
				}
				for u := 0; u < n; u++ {
					if !okParent(v, u) {
						continue
					}
					for w := u + 1; w < n; w++ {
						if !okParent(v, w) {
							continue
						}
						ps := sortedWith(sortedWith(parents[v], u), w)
						if familyCells(s, v, ps) > maxFamilyCells {
							continue
						}
						if g := familyScore(tbl, v, ps) - scores[v]; g > bestGain {
							bestGain, bestV, bestAdd = g, v, []int{u, w}
						}
					}
				}
			}
		}
		if bestV < 0 {
			break
		}
		apply(bestV, bestAdd, bestGain)
	}
	m.parents = parents

	// Topological order: Kahn's algorithm, smallest index first so the
	// order (and everything downstream) is deterministic.
	indeg := make([]int, n)
	for v := 0; v < n; v++ {
		indeg[v] = len(parents[v])
	}
	for len(m.order) < n {
		picked := -1
		for v := 0; v < n; v++ {
			if indeg[v] == 0 {
				picked = v
				break
			}
		}
		m.order = append(m.order, picked)
		indeg[picked] = -1
		for _, c := range children[picked] {
			indeg[c]--
		}
	}

	// Smoothed CPTs. A parent configuration with no support (and alpha=0)
	// gets the uniform row instead of 0/0 = NaN.
	m.cpt = make([][]float64, n)
	for v := 0; v < n; v++ {
		kv := s.K(v)
		cfgs := parentConfigs(s, parents[v])
		counts := make([]float64, cfgs*kv)
		colV := tbl.Col(v)
		pcols := make([][]schema.Value, len(parents[v]))
		for i, p := range parents[v] {
			pcols[i] = tbl.Col(p)
		}
		for r := range colV {
			cfg := 0
			for i, p := range parents[v] {
				cfg = cfg*s.K(p) + int(pcols[i][r])
			}
			counts[cfg*kv+int(colV[r])]++
		}
		for cfg := 0; cfg < cfgs; cfg++ {
			row := counts[cfg*kv : (cfg+1)*kv]
			var tot float64
			for _, c := range row {
				tot += c
			}
			z := tot + alpha*float64(kv)
			if z <= 0 {
				for x := range row {
					row[x] = 1 / float64(kv)
				}
				continue
			}
			for x := range row {
				row[x] = (row[x] + alpha) / z
			}
		}
		m.cpt[v] = counts
	}
	return m
}

// familyScore is the BIC/MDL score of node v with the given parent set:
// maximum-likelihood log-likelihood of v's column given the parent
// columns, minus (ln N / 2) per free parameter. (Smoothing applies to the
// CPTs, not the structure score.) Decomposability over families is what
// makes the greedy search cheap.
func familyScore(tbl *table.Table, v int, ps []int) float64 {
	s := tbl.Schema()
	kv := s.K(v)
	cfgs := parentConfigs(s, ps)
	counts := make([]float64, cfgs*kv)
	parentTot := make([]float64, cfgs)
	colV := tbl.Col(v)
	pcols := make([][]schema.Value, len(ps))
	for i, p := range ps {
		pcols[i] = tbl.Col(p)
	}
	for r := range colV {
		cfg := 0
		for i, p := range ps {
			cfg = cfg*s.K(p) + int(pcols[i][r])
		}
		counts[cfg*kv+int(colV[r])]++
		parentTot[cfg]++
	}
	var ll float64
	for cfg := 0; cfg < cfgs; cfg++ {
		for x := 0; x < kv; x++ {
			c := counts[cfg*kv+x]
			if c > 0 {
				ll += c * math.Log(c/parentTot[cfg])
			}
		}
	}
	n := float64(tbl.NumRows())
	if n < 1 {
		n = 1
	}
	penalty := 0.5 * math.Log(n) * float64((kv-1)*cfgs)
	return ll - penalty
}

func parentConfigs(s *schema.Schema, ps []int) int {
	cfgs := 1
	for _, p := range ps {
		cfgs *= s.K(p)
	}
	return cfgs
}

func familyCells(s *schema.Schema, v int, ps []int) int {
	return parentConfigs(s, ps) * s.K(v)
}

func containsInt(xs []int, x int) bool {
	for _, y := range xs {
		if y == x {
			return true
		}
	}
	return false
}

func sortedWith(xs []int, x int) []int {
	out := append(append([]int(nil), xs...), x)
	sort.Ints(out)
	return out
}

// Parents returns attribute v's learned parent set (ascending); useful
// for inspecting the structure in tests and experiments.
func (m *BN) Parents(v int) []int {
	return append([]int(nil), m.parents[v]...)
}

// NumEdges returns the number of edges in the learned DAG.
func (m *BN) NumEdges() int {
	var e int
	for _, ps := range m.parents {
		e += len(ps)
	}
	return e
}

// Schema implements stats.Dist.
func (m *BN) Schema() *schema.Schema { return m.s }

// Root implements stats.Dist.
func (m *BN) Root() stats.Cond {
	masks := make([][]float64, m.s.NumAttrs())
	for a := range masks {
		mask := make([]float64, m.s.K(a))
		for v := range mask {
			mask[v] = 1
		}
		masks[a] = mask
	}
	return newBNCond(m, masks)
}

// factor is a dense potential over a sorted list of attribute variables,
// laid out row-major with the last variable varying fastest.
type factor struct {
	vars []int
	card []int
	vals []float64
}

func newFactor(s *schema.Schema, vars []int) *factor {
	f := &factor{vars: vars, card: make([]int, len(vars))}
	size := 1
	for i, v := range vars {
		f.card[i] = s.K(v)
		size *= f.card[i]
	}
	f.vals = make([]float64, size)
	return f
}

// positions maps each of f's vars to its index in the (sorted) superset
// vars; every f.var must be present.
func (f *factor) positions(vars []int) []int {
	pos := make([]int, len(f.vars))
	for i, v := range f.vars {
		for j, w := range vars {
			if w == v {
				pos[i] = j
				break
			}
		}
	}
	return pos
}

func (f *factor) at(assign []int, pos []int) float64 {
	idx := 0
	for i := range f.vars {
		idx = idx*f.card[i] + assign[pos[i]]
	}
	return f.vals[idx]
}

func unionSorted(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// multiply returns the product factor over the union of scopes.
func multiply(s *schema.Schema, a, b *factor) *factor {
	vars := unionSorted(a.vars, b.vars)
	out := newFactor(s, vars)
	posA, posB := a.positions(vars), b.positions(vars)
	assign := make([]int, len(vars))
	for i := range out.vals {
		out.vals[i] = a.at(assign, posA) * b.at(assign, posB)
		// Odometer increment, last variable fastest.
		for d := len(vars) - 1; d >= 0; d-- {
			assign[d]++
			if assign[d] < out.card[d] {
				break
			}
			assign[d] = 0
		}
	}
	return out
}

// sumOut marginalizes variable v out of f.
func sumOut(s *schema.Schema, f *factor, v int) *factor {
	vars := make([]int, 0, len(f.vars)-1)
	for _, w := range f.vars {
		if w != v {
			vars = append(vars, w)
		}
	}
	out := newFactor(s, vars)
	posOut := make([]int, len(f.vars)) // f var index -> out assign index (-1 for v)
	for i, w := range f.vars {
		posOut[i] = -1
		for j, o := range vars {
			if o == w {
				posOut[i] = j
				break
			}
		}
	}
	assign := make([]int, len(f.vars))
	for i := range f.vals {
		idx := 0
		for i2, p := range posOut {
			if p >= 0 {
				idx = idx*out.card[p] + assign[i2]
			}
		}
		out.vals[idx] += f.vals[i]
		for d := len(f.vars) - 1; d >= 0; d-- {
			assign[d]++
			if assign[d] < f.card[d] {
				break
			}
			assign[d] = 0
		}
	}
	return out
}

// ve runs variable elimination with the given per-attribute evidence
// masks, keeping attribute keep uneliminated (keep < 0 eliminates
// everything). It returns the unnormalized posterior over keep (nil when
// keep < 0) and the total evidence mass. The elimination order greedily
// picks the variable whose elimination produces the smallest resulting
// factor, breaking ties by smallest attribute index — deterministic and
// effective on the small, sparse graphs bounded in-degree produces.
func (m *BN) ve(masks [][]float64, keep int) ([]float64, float64) {
	n := m.s.NumAttrs()
	factors := make([]*factor, 0, n)
	scopeAssign := make([]int, 0, n)
	for v := 0; v < n; v++ {
		scope := sortedWith(m.parents[v], v)
		f := newFactor(m.s, scope)
		// The CPT is laid out over (parents ascending, v last); re-index
		// into the sorted scope.
		cptVars := append(append([]int(nil), m.parents[v]...), v)
		cptCard := make([]int, len(cptVars))
		for i, w := range cptVars {
			cptCard[i] = m.s.K(w)
		}
		pos := make([]int, len(cptVars)) // cpt var index -> scope index
		for i, w := range cptVars {
			for j, sv := range scope {
				if sv == w {
					pos[i] = j
					break
				}
			}
		}
		assign := make([]int, len(cptVars))
		scopeAssign = scopeAssign[:len(scope)]
		for i := range m.cpt[v] {
			for i2, p := range pos {
				scopeAssign[p] = assign[i2]
			}
			idx := 0
			for j := range scope {
				idx = idx*f.card[j] + scopeAssign[j]
			}
			// Fold v's evidence mask directly into its CPT factor.
			f.vals[idx] = m.cpt[v][i] * masks[v][assign[len(assign)-1]]
			for d := len(cptVars) - 1; d >= 0; d-- {
				assign[d]++
				if assign[d] < cptCard[d] {
					break
				}
				assign[d] = 0
			}
		}
		factors = append(factors, f)
	}

	remaining := make([]bool, n)
	for v := 0; v < n; v++ {
		remaining[v] = v != keep
	}
	for {
		// Pick the remaining variable with the smallest resulting factor.
		bestV, bestSize := -1, 0
		for v := 0; v < n; v++ {
			if !remaining[v] {
				continue
			}
			scope := []int{}
			for _, f := range factors {
				if containsInt(f.vars, v) {
					scope = unionSorted(scope, f.vars)
				}
			}
			size := 1
			for _, w := range scope {
				if w != v {
					size *= m.s.K(w)
				}
			}
			if bestV < 0 || size < bestSize {
				bestV, bestSize = v, size
			}
		}
		if bestV < 0 {
			break
		}
		remaining[bestV] = false
		var prod *factor
		kept := factors[:0]
		for _, f := range factors {
			if containsInt(f.vars, bestV) {
				if prod == nil {
					prod = f
				} else {
					prod = multiply(m.s, prod, f)
				}
			} else {
				kept = append(kept, f)
			}
		}
		if prod != nil {
			kept = append(kept, sumOut(m.s, prod, bestV))
		}
		factors = kept
	}

	// Multiply what remains: factors over {keep} and constants.
	var hist []float64
	if keep >= 0 {
		hist = make([]float64, m.s.K(keep))
		for i := range hist {
			hist[i] = 1
		}
	}
	z := 1.0
	for _, f := range factors {
		if len(f.vars) == 0 {
			z *= f.vals[0]
			continue
		}
		// Scope must be exactly {keep} here.
		for i := range hist {
			hist[i] *= f.vals[i]
		}
	}
	if keep < 0 {
		return nil, z
	}
	var tot float64
	for i := range hist {
		hist[i] *= z
		tot += hist[i]
	}
	return hist, tot
}

func newBNCond(m *BN, masks [][]float64) *bnCond {
	return &bnCond{m: m, masks: masks, hists: make([]bnHist, m.s.NumAttrs())}
}

// bnHist is one attribute's lazily published posterior marginal; once
// makes the publication safe for concurrent planner searches sharing the
// conditioning context.
type bnHist struct {
	once sync.Once
	h    []float64
}

// bnCond conditions the network: evidence is a per-attribute 0/1 mask;
// posteriors and the evidence mass are computed by variable elimination
// on first use and published through sync.Once.
type bnCond struct {
	m     *BN
	masks [][]float64

	zOnce sync.Once
	z     float64 // P(evidence)

	hists []bnHist
}

func (c *bnCond) evidence() float64 {
	c.zOnce.Do(func() {
		_, c.z = c.m.ve(c.masks, -1)
		if c.z < 0 {
			c.z = 0
		}
	})
	return c.z
}

func (c *bnCond) Weight() float64 { return c.m.rows * c.evidence() }

func (c *bnCond) Hist(attr int) []float64 {
	st := &c.hists[attr]
	st.once.Do(func() {
		h, z := c.m.ve(c.masks, attr)
		st.h = normalizeOrUniform(h, z)
	})
	return st.h
}

func (c *bnCond) ProbRange(attr int, r query.Range) float64 {
	h := c.Hist(attr)
	var p float64
	for v := int(r.Lo); v <= int(r.Hi) && v < len(h); v++ {
		p += h[v]
	}
	return clampProb(p)
}

func (c *bnCond) ProbPred(p query.Pred) float64 {
	in := c.ProbRange(p.Attr, p.R)
	if p.Negated {
		return clampProb(1 - in)
	}
	return in
}

func (c *bnCond) RestrictRange(attr int, r query.Range) stats.Cond {
	return c.restrict(attr, func(v int) bool { return r.Contains(schema.Value(v)) })
}

func (c *bnCond) RestrictPred(p query.Pred, val bool) stats.Cond {
	return c.restrict(p.Attr, func(v int) bool { return p.Eval(schema.Value(v)) == val })
}

func (c *bnCond) restrict(attr int, keep func(v int) bool) stats.Cond {
	masks := make([][]float64, len(c.masks))
	copy(masks, c.masks)
	newMask := make([]float64, len(c.masks[attr]))
	for v := range newMask {
		if keep(v) {
			newMask[v] = c.masks[attr][v]
		}
	}
	masks[attr] = newMask
	return newBNCond(c.m, masks)
}

package model

import (
	"errors"
	"fmt"

	"acqp/internal/stats"
	"acqp/internal/table"
)

// The model registry: a single validated entry point that maps a model
// name to a fitted stats.Dist. The serving layer, the CLIs, and the
// experiments all select statistics backends through Fit, so input
// validation (empty tables, degenerate smoothing) happens in exactly one
// place and surfaces as typed errors instead of panics or silent NaN
// propagation into CPTs and plan costs.

// Typed fitting errors, matched with errors.Is.
var (
	// ErrUnknownModel reports a model name outside Names().
	ErrUnknownModel = errors.New("model: unknown model name")
	// ErrEmptyTable reports an attempt to fit a model on a table with no
	// rows (there is nothing to estimate from; the uninformative uniform
	// model this would produce is almost never what the caller wants).
	ErrEmptyTable = errors.New("model: cannot fit on an empty table")
	// ErrBadOpts reports invalid fitting options (negative smoothing,
	// negative in-degree bound).
	ErrBadOpts = errors.New("model: invalid fit options")
)

// Model names accepted by Fit.
const (
	// NameEmpirical selects raw empirical counts (stats.Empirical) — not a
	// fitted model, but registered so callers can treat backend selection
	// uniformly.
	NameEmpirical = "empirical"
	// NameIndependent selects the fully-independent baseline.
	NameIndependent = "independent"
	// NameChowLiu selects the tree-shaped Chow-Liu Bayesian network.
	NameChowLiu = "chowliu"
	// NameBN selects the general bounded-in-degree Bayesian network.
	NameBN = "bn"
)

// Names returns the registered model names in deterministic order.
func Names() []string {
	return []string{NameEmpirical, NameIndependent, NameChowLiu, NameBN}
}

// KnownName reports whether Fit accepts the name.
func KnownName(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

// Opts parameterizes Fit. The zero value selects the documented defaults.
type Opts struct {
	// Alpha is the additive (Laplace) smoothing count added to every CPT
	// cell; zero selects the default 0.5. Negative values are rejected
	// with ErrBadOpts: a negative pseudo-count yields negative
	// "probabilities" and NaN mutual-information scores.
	Alpha float64
	// MaxParents bounds the in-degree of the general BN's structure
	// search; zero selects the default 2. Ignored by the other models.
	// Negative values are rejected with ErrBadOpts.
	MaxParents int
}

// defaultAlpha is the smoothing applied when Opts.Alpha is zero.
const defaultAlpha = 0.5

func (o Opts) withDefaults() Opts {
	if o.Alpha <= 0 {
		o.Alpha = defaultAlpha
	}
	if o.MaxParents <= 0 {
		o.MaxParents = defaultMaxParents
	}
	return o
}

func (o Opts) validate() error {
	if o.Alpha < 0 {
		return fmt.Errorf("%w: negative smoothing alpha %g", ErrBadOpts, o.Alpha)
	}
	if o.MaxParents < 0 {
		return fmt.Errorf("%w: negative MaxParents %d", ErrBadOpts, o.MaxParents)
	}
	return nil
}

// Fit fits the named statistics backend on the table and returns it as a
// stats.Dist every planner runs on unchanged. It validates its inputs and
// returns typed errors (ErrUnknownModel, ErrEmptyTable, ErrBadOpts)
// instead of panicking or producing NaN-poisoned CPTs, which the raw
// Fit* constructors historically did on empty tables and non-positive
// smoothing. Fitting is deterministic: the same table and options always
// produce the same model.
func Fit(name string, tbl *table.Table, o Opts) (stats.Dist, error) {
	if !KnownName(name) {
		return nil, fmt.Errorf("%w %q (want one of %v)", ErrUnknownModel, name, Names())
	}
	if tbl == nil || tbl.NumRows() == 0 {
		return nil, fmt.Errorf("%w (model %q)", ErrEmptyTable, name)
	}
	if err := o.validate(); err != nil {
		return nil, err
	}
	o = o.withDefaults()
	switch name {
	case NameEmpirical:
		return stats.NewEmpirical(tbl), nil
	case NameIndependent:
		return FitIndependent(tbl, o.Alpha), nil
	case NameChowLiu:
		return FitChowLiu(tbl, o.Alpha), nil
	default: // NameBN
		return FitBN(tbl, o.Alpha, o.MaxParents), nil
	}
}

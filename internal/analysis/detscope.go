package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// detScope is the config-driven determinism-scope analyzer: a package
// directory whose whole contents must be replayable — no math/rand
// imports (even a seeded *rand.Rand is mutable state whose draws depend
// on call order when it is package-constructed) and no wall-clock reads.
// The PR-4 faultdet and PR-5 tracedet analyzers were copy-paste instances
// of exactly this shape; they are now rows in detScopes below, keeping
// their analyzer names so existing //acqlint:ignore directives and
// -disable flags continue to work.
type detScope struct {
	name string
	dir  string // slash-separated package scope, matched by containment
	doc  string
	// randWhy and clockWhy finish the two diagnostic messages; the
	// leading clauses are fixed so the messages stay stable across the
	// tracedet/faultdet subsumption.
	randWhy  string
	clockWhy string
}

// detScopes lists every determinism scope. Adding a package here is the
// whole cost of extending the discipline to it.
var detScopes = []detScope{
	{
		name:     "faultdet",
		dir:      "internal/fault",
		doc:      "forbid math/rand and wall-clock reads in internal/fault; fault injection must replay from the seed alone",
		randWhy:  "derive randomness from the seed via the counter-based hash",
		clockWhy: "fault schedules must depend only on the seed and attempt counters",
	},
	{
		name:     "tracedet",
		dir:      "internal/trace",
		doc:      "forbid direct wall-clock reads and math/rand in internal/trace; the clock is injected via now func() time.Time",
		randWhy:  "tracing must be deterministic under a test clock",
		clockWhy: "read the clock through the injected now func() time.Time",
	},
	{
		name:     "clusterdet",
		dir:      "internal/cluster",
		doc:      "forbid math/rand and wall-clock reads in internal/cluster; heartbeats and gossip jitter must replay from Config.Seed and the injected Config.Now",
		randWhy:  "derive gossip jitter from Config.Seed via the counter-based splitmix64 hash",
		clockWhy: "read the clock through the injected Config.Now so multi-node tests are deterministic",
	},
	{
		name:     "chaosdet",
		dir:      "internal/chaos",
		doc:      "forbid math/rand and wall-clock reads in internal/chaos; injection decisions must replay bit-identically from Config.Seed and the per-link request counters",
		randWhy:  "derive injection decisions from Config.Seed via the counter-based splitmix64 hash",
		clockWhy: "inject delays through Config.Sleep; chaos schedules must depend only on the seed and request counters",
	},
}

// FaultDet, TraceDet, ClusterDet, and ChaosDet are the detscope
// instances for internal/fault, internal/trace (under their PR-4/PR-5
// names), internal/cluster, and internal/chaos.
var (
	FaultDet   = detScopes[0].analyzer()
	TraceDet   = detScopes[1].analyzer()
	ClusterDet = detScopes[2].analyzer()
	ChaosDet   = detScopes[3].analyzer()
)

func (sc detScope) analyzer() *Analyzer {
	return &Analyzer{Name: sc.name, Doc: sc.doc, Run: sc.run}
}

// scopeClockFuncs are the wall-clock reads banned inside a determinism
// scope. Pure time.Time/time.Duration arithmetic on caller-supplied
// values is fine and not listed.
var scopeClockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func (sc detScope) run(p *Package) []Diagnostic {
	if !p.InDir(sc.dir) {
		return nil
	}
	var out []Diagnostic
	p.walkNonTest(func(_ int, f *ast.File) {
		// The import ban is syntactic in every mode: the import clause is
		// the fact itself.
		timeLocal := ""
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2":
				out = append(out, p.diag(sc.name, imp.Pos(),
					"import of %s in %s; %s", path, sc.dir, sc.randWhy))
			case "time":
				timeLocal = "time"
				if imp.Name != nil {
					timeLocal = imp.Name.Name
				}
			}
		}
		if p.TypesInfo != nil {
			// Typed mode: resolve every identifier that uses a banned
			// "time" function — alias- and dot-import-proof, and it flags
			// time.Now escaping as a value just like a direct read.
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := p.TypesInfo.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on time values are pure arithmetic
				}
				if scopeClockFuncs[fn.Name()] {
					out = append(out, p.diag(sc.name, id.Pos(),
						"wall-clock read time.%s in %s; %s", fn.Name(), sc.dir, sc.clockWhy))
				}
				return true
			})
			return
		}
		// Fallback mode: match the import's local name syntactically.
		if timeLocal == "" || timeLocal == "." {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != timeLocal || !scopeClockFuncs[sel.Sel.Name] {
				return true
			}
			out = append(out, p.diag(sc.name, sel.Pos(),
				"wall-clock read time.%s in %s; %s", sel.Sel.Name, sc.dir, sc.clockWhy))
			return true
		})
	})
	return out
}

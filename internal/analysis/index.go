package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Index is a package-local, purely syntactic symbol table. It records
// which names are float64-, []float64-, map-, and error-shaped based on
// declarations visible in the AST: var/const specs, function signatures,
// struct fields, and short variable declarations whose right-hand side is
// recognizably typed. It is deliberately heuristic — no go/types — so the
// driver needs nothing beyond a parse, at the cost of missing names whose
// types only type inference can recover.
type Index struct {
	// FloatNames holds identifiers (variables, params, consts, struct
	// fields) declared float64.
	FloatNames map[string]bool
	// FloatSlices holds identifiers declared []float64, so a[i] is float.
	FloatSlices map[string]bool
	// FloatFuncs holds package functions and methods whose first result
	// is float64.
	FloatFuncs map[string]bool
	// ErrFuncs holds package functions whose last result is error.
	ErrFuncs map[string]bool
	// ErrMethods holds method names (concrete or interface) whose last
	// result is error and that never appear without one.
	ErrMethods map[string]bool
	// MapNames holds identifiers (variables, params, struct fields) with
	// a map type.
	MapNames map[string]bool
}

// GlobalIndex aggregates exported signatures across every loaded package,
// so analyzers can resolve cross-package calls like plan.ExpectedCost or
// method calls through interfaces like stats.Cond.
type GlobalIndex struct {
	// FloatFuncs and ErrFuncs are keyed "pkgname.FuncName".
	FloatFuncs map[string]bool
	ErrFuncs   map[string]bool
	// FloatMethods and ErrMethods are keyed by bare method name and only
	// contain names whose repo-wide declarations agree on the result
	// shape; ambiguous names are dropped rather than guessed.
	FloatMethods map[string]bool
	ErrMethods   map[string]bool
}

func isIdentType(e ast.Expr, name string) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == name
}

func isFloatType(e ast.Expr) bool { return isIdentType(e, "float64") }
func isErrorType(e ast.Expr) bool { return isIdentType(e, "error") }

func isFloatSliceType(e ast.Expr) bool {
	s, ok := e.(*ast.ArrayType)
	return ok && isFloatType(s.Elt)
}

func isMapType(e ast.Expr) bool {
	_, ok := e.(*ast.MapType)
	return ok
}

// funcResults classifies a function type's results.
func funcResults(ft *ast.FuncType) (firstFloat, lastErr bool) {
	if ft.Results == nil || len(ft.Results.List) == 0 {
		return false, false
	}
	rs := ft.Results.List
	firstFloat = isFloatType(rs[0].Type)
	lastErr = isErrorType(rs[len(rs)-1].Type)
	return
}

// NewIndex builds the package-local index from the non-test files only:
// every index consumer skips test files, and test helpers reusing a name
// with a different type (a float `x` in a test, say) would otherwise
// poison the package-flat name resolution.
func NewIndex(p *Package) *Index {
	idx := &Index{
		FloatNames:  make(map[string]bool),
		FloatSlices: make(map[string]bool),
		FloatFuncs:  make(map[string]bool),
		ErrFuncs:    make(map[string]bool),
		ErrMethods:  make(map[string]bool),
		MapNames:    make(map[string]bool),
	}
	p.Index = idx                          // the propagation passes below resolve through p.isFloatExpr
	errMethodSeen := make(map[string]bool) // name -> some decl lacks error
	p.walkNonTest(func(_ int, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				idx.addFieldList(n.Type.Params)
				idx.addFieldList(n.Type.Results)
				ff, le := funcResults(n.Type)
				if n.Recv == nil {
					if ff {
						idx.FloatFuncs[n.Name.Name] = true
					}
					if le {
						idx.ErrFuncs[n.Name.Name] = true
					}
				} else {
					if ff {
						idx.FloatFuncs[n.Name.Name] = true
					}
					if le {
						idx.ErrMethods[n.Name.Name] = true
					} else {
						errMethodSeen[n.Name.Name] = true
					}
				}
			case *ast.StructType:
				idx.addFieldList(n.Fields)
			case *ast.InterfaceType:
				for _, m := range n.Methods.List {
					ft, ok := m.Type.(*ast.FuncType)
					if !ok {
						continue
					}
					ff, le := funcResults(ft)
					for _, name := range m.Names {
						if ff {
							idx.FloatFuncs[name.Name] = true
						}
						if le {
							idx.ErrMethods[name.Name] = true
						} else {
							errMethodSeen[name.Name] = true
						}
					}
				}
			case *ast.ValueSpec:
				idx.addSpec(n)
			}
			return true
		})
	})
	for name := range errMethodSeen {
		delete(idx.ErrMethods, name)
	}
	// Propagate through short variable declarations; two passes reach
	// chains like x := f(); y := x * 2.
	for pass := 0; pass < 2; pass++ {
		p.walkNonTest(func(_ int, f *ast.File) {
			ast.Inspect(f, func(n ast.Node) bool {
				if as, ok := n.(*ast.AssignStmt); ok {
					idx.addAssign(p, as)
				}
				if rg, ok := n.(*ast.RangeStmt); ok {
					idx.addRange(p, rg)
				}
				return true
			})
		})
	}
	return idx
}

// addFieldList records params/results/fields by declared type.
func (idx *Index) addFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			switch {
			case isFloatType(f.Type):
				idx.FloatNames[name.Name] = true
			case isFloatSliceType(f.Type):
				idx.FloatSlices[name.Name] = true
			case isMapType(f.Type):
				idx.MapNames[name.Name] = true
			}
		}
	}
}

// addSpec records var/const specs, inferring from initializers when no
// explicit type is given.
func (idx *Index) addSpec(vs *ast.ValueSpec) {
	if vs.Type != nil {
		for _, name := range vs.Names {
			switch {
			case isFloatType(vs.Type):
				idx.FloatNames[name.Name] = true
			case isFloatSliceType(vs.Type):
				idx.FloatSlices[name.Name] = true
			case isMapType(vs.Type):
				idx.MapNames[name.Name] = true
			}
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			idx.classifyInit(name.Name, vs.Values[i])
		}
	}
}

// addAssign propagates := initializer shapes onto the declared names.
func (idx *Index) addAssign(p *Package, as *ast.AssignStmt) {
	if as.Tok != token.DEFINE && as.Tok != token.ASSIGN {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			continue
		}
		idx.classifyInit(id.Name, as.Rhs[i])
		if p != nil && p.isFloatExpr(as.Rhs[i]) {
			idx.FloatNames[id.Name] = true
		}
	}
}

// addRange records range variables over float slices: `for _, v := range
// hist` makes v a float.
func (idx *Index) addRange(p *Package, rg *ast.RangeStmt) {
	if rg.Value == nil {
		return
	}
	id, ok := rg.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	x := unparen(rg.X)
	if xid, ok := x.(*ast.Ident); ok && idx.FloatSlices[xid.Name] {
		idx.FloatNames[id.Name] = true
	}
}

// classifyInit records a name whose initializer has a syntactically
// obvious shape: float literal, float64() conversion, make(map...), or a
// map/slice composite literal.
func (idx *Index) classifyInit(name string, rhs ast.Expr) {
	switch v := unparen(rhs).(type) {
	case *ast.BasicLit:
		if v.Kind == token.FLOAT {
			idx.FloatNames[name] = true
		}
	case *ast.CompositeLit:
		switch {
		case isMapType(v.Type):
			idx.MapNames[name] = true
		case isFloatSliceType(v.Type):
			idx.FloatSlices[name] = true
		}
	case *ast.CallExpr:
		switch fn := unparen(v.Fun).(type) {
		case *ast.Ident:
			if fn.Name == "float64" {
				idx.FloatNames[name] = true
			}
			if fn.Name == "make" && len(v.Args) > 0 {
				switch {
				case isMapType(v.Args[0]):
					idx.MapNames[name] = true
				case isFloatSliceType(v.Args[0]):
					idx.FloatSlices[name] = true
				}
			}
		case *ast.ArrayType:
			if isFloatType(fn.Elt) {
				idx.FloatSlices[name] = true
			}
		case *ast.MapType:
			idx.MapNames[name] = true
		}
	}
}

// NewGlobalIndex merges exported signatures of every package.
func NewGlobalIndex(pkgs []*Package) *GlobalIndex {
	g := &GlobalIndex{
		FloatFuncs:   make(map[string]bool),
		ErrFuncs:     make(map[string]bool),
		FloatMethods: make(map[string]bool),
		ErrMethods:   make(map[string]bool),
	}
	errSeen := make(map[string]bool)   // method name declared without trailing error somewhere
	floatSeen := make(map[string]bool) // method name declared without float64 first result somewhere
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncDecl:
					ff, le := funcResults(n.Type)
					if n.Recv == nil {
						key := p.Name + "." + n.Name.Name
						if ff {
							g.FloatFuncs[key] = true
						}
						if le {
							g.ErrFuncs[key] = true
						}
						return true
					}
					recordMethod(g, errSeen, floatSeen, n.Name.Name, ff, le)
				case *ast.InterfaceType:
					for _, m := range n.Methods.List {
						ft, ok := m.Type.(*ast.FuncType)
						if !ok {
							continue
						}
						ff, le := funcResults(ft)
						for _, name := range m.Names {
							recordMethod(g, errSeen, floatSeen, name.Name, ff, le)
						}
					}
				}
				return true
			})
		}
	}
	for name := range errSeen {
		delete(g.ErrMethods, name)
	}
	for name := range floatSeen {
		delete(g.FloatMethods, name)
	}
	return g
}

func recordMethod(g *GlobalIndex, errSeen, floatSeen map[string]bool, name string, firstFloat, lastErr bool) {
	if firstFloat {
		g.FloatMethods[name] = true
	} else {
		floatSeen[name] = true
	}
	if lastErr {
		g.ErrMethods[name] = true
	} else {
		errSeen[name] = true
	}
}

// mathFloatFuncs are math-package functions returning float64 that the
// numeric code compares; calls to any other math.* name are not treated
// as float (Signbit, IsNaN, ...).
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Max": true, "Min": true, "Inf": true, "NaN": true,
	"Sqrt": true, "Pow": true, "Exp": true, "Log": true, "Log2": true,
	"Floor": true, "Ceil": true, "Round": true, "Trunc": true, "Mod": true,
	"Hypot": true, "Copysign": true,
}

func unparen(e ast.Expr) ast.Expr {
	for {
		pe, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = pe.X
	}
}

// isFloatExpr reports whether the expression is recognizably float64
// under the package's heuristic index.
func (p *Package) isFloatExpr(e ast.Expr) bool {
	switch e := unparen(e).(type) {
	case *ast.BasicLit:
		return e.Kind == token.FLOAT
	case *ast.Ident:
		return p.Index.FloatNames[e.Name]
	case *ast.SelectorExpr:
		// x.Field where Field is a known float struct field; package
		// selectors (math.Pi) are not indexed and fall through.
		return p.Index.FloatNames[e.Sel.Name]
	case *ast.IndexExpr:
		if id, ok := unparen(e.X).(*ast.Ident); ok {
			return p.Index.FloatSlices[id.Name]
		}
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return p.isFloatExpr(e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return p.isFloatExpr(e.X) || p.isFloatExpr(e.Y)
		}
	case *ast.CallExpr:
		switch fn := unparen(e.Fun).(type) {
		case *ast.Ident:
			return fn.Name == "float64" || p.Index.FloatFuncs[fn.Name]
		case *ast.SelectorExpr:
			if id, ok := unparen(fn.X).(*ast.Ident); ok {
				if id.Name == "math" && mathFloatFuncs[fn.Sel.Name] {
					return true
				}
				if p.importsRepoPackage(id.Name) && p.Global.FloatFuncs[id.Name+"."+fn.Sel.Name] {
					return true
				}
			}
			return p.Global.FloatMethods[fn.Sel.Name] || p.Index.FloatFuncs[fn.Sel.Name]
		}
	}
	return false
}

// importsRepoPackage reports whether some file of the package imports a
// module-local package under the given local name.
func (p *Package) importsRepoPackage(name string) bool {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if !isRepoImport(path) {
				continue
			}
			local := path[strings.LastIndex(path, "/")+1:]
			if imp.Name != nil {
				local = imp.Name.Name
			}
			if local == name {
				return true
			}
		}
	}
	return false
}

// modulePath is the import-path prefix identifying this repo's packages.
const modulePath = "acqp"

func isRepoImport(path string) bool {
	return path == modulePath || strings.HasPrefix(path, modulePath+"/")
}

package analysis

import (
	"go/ast"
	"strings"
)

// condShareAllowed lists the internal/opt functions permitted to derive
// a child conditioning context, in the order diagnostics cite them.
// Everything else must go through them, so the sharing discipline of the
// parallel search — parent Conds are read concurrently and never
// restricted in place by candidate evaluators — is auditable in one
// screenful of code.
var condShareAllowed = []string{"childCond", "predTrueCond", "restrictLazy"}

func condShareAllows(name string) bool {
	for _, a := range condShareAllowed {
		if a == name {
			return true
		}
	}
	return false
}

// CondShare confines Cond.RestrictRange/RestrictPred calls in
// internal/opt to the blessed derivation helpers. The parallel planners
// hand one Cond to many goroutines; a stray Restrict* call in search
// code either re-derives a context the memo should have shared (a
// silent O(rows) cost) or, worse, races with siblings reading the
// parent. Route new derivations through childCond, predTrueCond, or
// restrictLazy instead.
var CondShare = &Analyzer{
	Name: "condshare",
	Doc:  "confine Cond.Restrict* in internal/opt to the derivation helpers (childCond, predTrueCond, restrictLazy)",
	Run:  runCondShare,
}

func runCondShare(p *Package) []Diagnostic {
	if !p.InDir("internal/opt") {
		return nil
	}
	var out []Diagnostic
	p.walkNonTest(func(_ int, f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Methods never qualify: the allowlist is plain functions, so a
			// receiver disqualifies even a name collision.
			if fd.Recv == nil && condShareAllows(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || (sel.Sel.Name != "RestrictRange" && sel.Sel.Name != "RestrictPred") {
					return true
				}
				out = append(out, p.diag("condshare", sel.Sel.Pos(),
					"Cond.%s outside the derivation helpers (%s); search code must share parent contexts and derive children through them",
					sel.Sel.Name, strings.Join(condShareAllowed, ", ")))
				return true
			})
		}
	})
	return out
}

package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxBg forbids context.Background() and context.TODO() outside binaries
// (cmd/, examples/, any package main) and tests. A library that mints its
// own root context detaches the work from the caller's cancellation and
// deadline — PR 5 fixed four such planner-fallback sites by hand (serve
// degradation, the naive-cost baseline, the residual replanner, stream
// drift-replans); this enforces the rule permanently. Libraries thread a
// ctx parameter or a configured base context instead; the rare justified
// root (a server's own lifecycle context, an explicit documented default)
// takes an //acqlint:ignore ctxbg <reason> directive.
var CtxBg = &Analyzer{
	Name: "ctxbg",
	Doc:  "forbid context.Background/TODO outside cmd/, examples/, package main, and tests; thread the caller's context",
	Run:  runCtxBg,
}

func runCtxBg(p *Package) []Diagnostic {
	if p.InDir("cmd") || p.InDir("examples") || p.Name == "main" {
		return nil
	}
	var out []Diagnostic
	p.walkNonTest(func(_ int, f *ast.File) {
		if p.TypesInfo != nil {
			// Typed mode: resolve uses of the two constructors, alias- and
			// dot-import-proof.
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				fn, ok := p.TypesInfo.Uses[id].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					out = append(out, p.diag("ctxbg", id.Pos(),
						"context.%s outside cmd/ and package main; thread the caller's context (ctx parameter or configured base context) instead", fn.Name()))
				}
				return true
			})
			return
		}
		// Fallback mode: match the import's local name syntactically.
		ctxLocal := ""
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == "context" {
				ctxLocal = "context"
				if imp.Name != nil {
					ctxLocal = imp.Name.Name
				}
			}
		}
		if ctxLocal == "" || ctxLocal == "." {
			return
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != ctxLocal {
				return true
			}
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				out = append(out, p.diag("ctxbg", sel.Pos(),
					"context.%s outside cmd/ and package main; thread the caller's context (ctx parameter or configured base context) instead", sel.Sel.Name))
			}
			return true
		})
	})
	return out
}

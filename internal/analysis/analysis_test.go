package analysis

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// wantRe matches expectation comments in fixture sources. A fixture line
// carrying `want "substring"` (in any comment form) expects exactly one
// diagnostic on that line whose "analyzer: message" contains the
// substring; multiple wants on one line expect multiple diagnostics.
var wantRe = regexp.MustCompile(`want "([^"]+)"`)

type expectation struct {
	substr  string
	matched bool
}

// loadFixtures parses everything under testdata/src and collects the
// want expectations, keyed "file:line".
func loadFixtures(t *testing.T) ([]*Package, map[string][]*expectation) {
	t.Helper()
	pkgs, err := Load(filepath.Join("testdata", "src"), []string{"./..."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no fixture packages loaded")
	}
	wants := make(map[string][]*expectation)
	for _, p := range pkgs {
		for _, name := range p.FileNames {
			data, err := os.ReadFile(name)
			if err != nil {
				t.Fatalf("read fixture: %v", err)
			}
			for i, line := range strings.Split(string(data), "\n") {
				for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
					key := fmt.Sprintf("%s:%d", name, i+1)
					wants[key] = append(wants[key], &expectation{substr: m[1]})
				}
			}
		}
	}
	return pkgs, wants
}

// TestGoldenFixtures runs the full suite over the fixtures and requires
// an exact match between diagnostics and want comments: every diagnostic
// explained by a want on its line, every want satisfied.
func TestGoldenFixtures(t *testing.T) {
	pkgs, wants := loadFixtures(t)
	for _, d := range RunAll(pkgs, Analyzers()) {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		found := false
		for _, e := range wants[key] {
			if !e.matched && strings.Contains(d.Analyzer+": "+d.Message, e.substr) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, es := range wants {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s: expected a diagnostic containing %q, got none", key, e.substr)
			}
		}
	}
}

// TestDisableAnalyzer checks that analyzers are individually toggleable:
// dropping one from the enabled set removes exactly its findings.
func TestDisableAnalyzer(t *testing.T) {
	pkgs, _ := loadFixtures(t)
	for _, skip := range []string{"floatcmp", "errdrop"} {
		var enabled []*Analyzer
		for _, a := range Analyzers() {
			if a.Name != skip {
				enabled = append(enabled, a)
			}
		}
		saw := make(map[string]bool)
		for _, d := range RunAll(pkgs, enabled) {
			saw[d.Analyzer] = true
		}
		if saw[skip] {
			t.Errorf("analyzer %q reported findings while disabled", skip)
		}
		if len(saw) == 0 {
			t.Errorf("disabling %q silenced every analyzer", skip)
		}
	}
}

// TestRepoIsClean is the self-test the CI gate relies on: the repo's own
// tree must produce zero diagnostics.
func TestRepoIsClean(t *testing.T) {
	pkgs, err := Load(filepath.Join("..", ".."), []string{"./..."})
	if err != nil {
		t.Fatalf("Load repo: %v", err)
	}
	for _, d := range RunAll(pkgs, Analyzers()) {
		t.Errorf("repo finding: %s", d)
	}
}

// TestInDir pins the containment semantics scope checks depend on.
func TestInDir(t *testing.T) {
	cases := []struct {
		rel, dir string
		want     bool
	}{
		{"internal/plan", "internal/plan", true},
		{"internal/plan/sub", "internal/plan", true},
		{"internal/analysis/testdata/src/internal/plan/floatfix", "internal/plan", true},
		{"internal/planner", "internal/plan", false},
		{"cmd/acqlint", "cmd", true},
		{"internal/opt", "cmd", false},
	}
	for _, c := range cases {
		p := &Package{RelPath: c.rel}
		if got := p.InDir(c.dir); got != c.want {
			t.Errorf("InDir(%q, %q) = %v, want %v", c.rel, c.dir, got, c.want)
		}
	}
}

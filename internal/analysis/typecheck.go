package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/token"
	"go/types"
	"path/filepath"
	"sync"
)

// The typed layer. Load attempts to type-check every package it parsed
// using stdlib go/types: repo-internal imports resolve against the other
// packages of the same load, standard-library imports are type-checked
// from GOROOT source by a shared go/importer "source"-mode importer (no
// compiled export data, no external tooling, works offline on any box
// with a Go toolchain). Type-checking is strictly best-effort: a package
// that fails — a golden fixture with deliberate type errors, a partial
// load whose dependencies were not named, a stdlib package the source
// importer cannot process — keeps TypesInfo nil and every analyzer falls
// back to the PR-1 syntactic heuristics for it. Analyzers therefore never
// assume types; they ask the typed helpers below, which degrade
// gracefully.

// stdImporterState is the process-wide source importer for standard
// library packages. It is shared across Load calls so the (substantial,
// one-time) cost of type-checking fmt/net/http/... from source is paid
// once per process; srcimporter instances are not documented
// concurrency-safe, so every use holds the mutex. It owns a private
// FileSet — stdlib positions never surface in diagnostics, so they need
// not be comparable with package positions.
var stdImporterState struct {
	once sync.Once
	mu   sync.Mutex
	imp  types.Importer
}

func stdlibImport(path string) (*types.Package, error) {
	stdImporterState.once.Do(func() {
		stdImporterState.imp = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	stdImporterState.mu.Lock()
	defer stdImporterState.mu.Unlock()
	return stdImporterState.imp.Import(path)
}

// typeChecker type-checks one load's packages in dependency order. It is
// the types.Importer handed to go/types: repo import paths resolve to
// sibling packages (checking them on demand), everything else goes to the
// shared stdlib importer.
type typeChecker struct {
	fset   *token.FileSet
	byPath map[string]*Package
	// state guards against import cycles: 0 unseen, 1 in progress, 2 done.
	state map[string]int
}

// typeCheckAll annotates every package with TypesPkg/TypesInfo, or
// records TypeErr and leaves them nil when checking fails.
func typeCheckAll(fset *token.FileSet, pkgs []*Package) {
	tc := &typeChecker{
		fset:   fset,
		byPath: make(map[string]*Package, len(pkgs)),
		state:  make(map[string]int, len(pkgs)),
	}
	for _, p := range pkgs {
		tc.byPath[p.ImportPath] = p
	}
	for _, p := range pkgs {
		//acqlint:ignore errdrop best-effort by design: the error is recorded on p.TypeErr and the package falls back to syntactic mode
		tc.check(p)
	}
}

func (tc *typeChecker) Import(path string) (*types.Package, error) {
	if p, ok := tc.byPath[path]; ok {
		if err := tc.check(p); err != nil {
			return nil, err
		}
		return p.TypesPkg, nil
	}
	if isRepoImport(path) {
		// A repo package outside this load (partial pattern): do not let
		// the stdlib importer hunt for it in GOPATH.
		return nil, fmt.Errorf("package %s is not part of this load", path)
	}
	return stdlibImport(path)
}

func (tc *typeChecker) check(p *Package) error {
	switch tc.state[p.ImportPath] {
	case 2:
		return p.TypeErr
	case 1:
		return fmt.Errorf("import cycle through %s", p.ImportPath)
	}
	tc.state[p.ImportPath] = 1
	defer func() { tc.state[p.ImportPath] = 2 }()

	// Honor build constraints for the type-check file set: the parser keeps
	// every file (so syntactic analyzers still see both halves of a
	// //go:build pair), but type-checking both race_on.go and race_off.go
	// would redeclare their shared names. Files the default build context
	// excludes simply carry no type information.
	var files []*ast.File
	p.walkNonTest(func(_ int, f *ast.File) {
		name := tc.fset.Position(f.Package).Filename
		if match, err := build.Default.MatchFile(filepath.Dir(name), filepath.Base(name)); err == nil && !match {
			return
		}
		files = append(files, f)
	})
	if len(files) == 0 {
		p.TypeErr = fmt.Errorf("no non-test files in %s", p.ImportPath)
		return p.TypeErr
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: tc}
	tpkg, err := conf.Check(p.ImportPath, tc.fset, files, info)
	if err != nil {
		// All or nothing: partial type information would make analyzer
		// behavior depend on *where* checking failed. Fall back cleanly.
		p.TypeErr = err
		return err
	}
	p.TypesPkg, p.TypesInfo = tpkg, info
	return nil
}

// calleeOf resolves the statically-called function or method of a call
// expression, nil when the package is untyped or the call is dynamic (a
// func-typed variable, field, or parameter — exactly the injected escape
// hatches detflow treats as sanitized). Generic instantiations resolve to
// their origin.
func (p *Package) calleeOf(call *ast.CallExpr) *types.Func {
	if p.TypesInfo == nil {
		return nil
	}
	fun := unparen(call.Fun)
	// Unwrap explicit instantiations: f[int](x).
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = unparen(ix.X)
	case *ast.IndexListExpr:
		fun = unparen(ix.X)
	}
	var obj types.Object
	switch fn := fun.(type) {
	case *ast.Ident:
		obj = p.TypesInfo.Uses[fn]
	case *ast.SelectorExpr:
		obj = p.TypesInfo.Uses[fn.Sel]
	}
	if f, ok := obj.(*types.Func); ok {
		return f.Origin()
	}
	return nil
}

// isRepoObject reports whether the object was declared in a package of
// this module (as opposed to the standard library).
func isRepoObject(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && isRepoImport(obj.Pkg().Path())
}

// typedFloat classifies an expression as float-kinded under full type
// information; ok is false when the package is untyped and the caller
// should fall back to the heuristic index.
func (p *Package) typedFloat(e ast.Expr) (isFloat, ok bool) {
	if p.TypesInfo == nil {
		return false, false
	}
	tv, found := p.TypesInfo.Types[e]
	if !found || tv.Type == nil {
		return false, true
	}
	b, isBasic := tv.Type.Underlying().(*types.Basic)
	return isBasic && b.Info()&types.IsFloat != 0, true
}

// typedMap classifies an expression as map-typed under full type
// information; ok is false when the package is untyped.
func (p *Package) typedMap(e ast.Expr) (isMap, ok bool) {
	if p.TypesInfo == nil {
		return false, false
	}
	tv, found := p.TypesInfo.Types[e]
	if !found || tv.Type == nil {
		return false, true
	}
	_, isM := tv.Type.Underlying().(*types.Map)
	return isM, true
}

// errorType is the universe error interface, for signature checks.
var errorType = types.Universe.Lookup("error").Type()

// lastResultIsError reports whether the function's final result is the
// error type.
func lastResultIsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return types.Identical(res.At(res.Len()-1).Type(), errorType)
}

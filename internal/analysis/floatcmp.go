package analysis

import (
	"go/ast"
	"go/token"
)

// floatCmpScope names the numeric packages where exact float equality is
// forbidden: the Eq. (1)-(3) implementations whose probabilities and
// costs accumulate rounding error.
var floatCmpScope = []string{
	"internal/plan",
	"internal/stats",
	"internal/opt",
	"internal/model",
}

// FloatCmp flags == and != between float64 expressions in the numeric
// packages. Probabilities are products and prefix-sum differences and
// costs are branch-weighted sums, so two mathematically equal values
// rarely compare equal; use the helpers in internal/floats (floats.Eq,
// floats.Zero, floats.One) or an explicit <=/>= against a bound instead.
// In typed mode operands resolve exactly (named float types, inferred
// locals); fallback mode uses the heuristic index.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= between float64 expressions in the numeric packages",
	Run:  runFloatCmp,
}

// floatOperand resolves whether an expression is float-kinded, typed
// where available.
func (p *Package) floatOperand(e ast.Expr) bool {
	if isFloat, ok := p.typedFloat(e); ok {
		return isFloat
	}
	return p.isFloatExpr(e)
}

func runFloatCmp(p *Package) []Diagnostic {
	inScope := false
	for _, dir := range floatCmpScope {
		if p.InDir(dir) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	var out []Diagnostic
	p.walkNonTest(func(_ int, f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			// A nil comparison can never be a float comparison, whatever
			// the name-based index thinks of the other operand.
			if isIdentType(unparen(be.X), "nil") || isIdentType(unparen(be.Y), "nil") {
				return true
			}
			if p.floatOperand(be.X) || p.floatOperand(be.Y) {
				out = append(out, p.diag("floatcmp", be.OpPos,
					"exact float64 %s comparison; use floats.Eq/Zero/One (internal/floats) or an inequality with tolerance", be.Op))
			}
			return true
		})
	})
	return out
}
